# Empty dependencies file for pcnn_core.
# This may be replaced when dependencies are built.
