file(REMOVE_RECURSE
  "libpcnn_core.a"
)
