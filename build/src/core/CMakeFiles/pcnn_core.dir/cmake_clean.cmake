file(REMOVE_RECURSE
  "CMakeFiles/pcnn_core.dir/detector.cpp.o"
  "CMakeFiles/pcnn_core.dir/detector.cpp.o.d"
  "CMakeFiles/pcnn_core.dir/pipeline.cpp.o"
  "CMakeFiles/pcnn_core.dir/pipeline.cpp.o.d"
  "libpcnn_core.a"
  "libpcnn_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcnn_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
