file(REMOVE_RECURSE
  "CMakeFiles/pcnn_nn.dir/activations.cpp.o"
  "CMakeFiles/pcnn_nn.dir/activations.cpp.o.d"
  "CMakeFiles/pcnn_nn.dir/conv2d.cpp.o"
  "CMakeFiles/pcnn_nn.dir/conv2d.cpp.o.d"
  "CMakeFiles/pcnn_nn.dir/dense.cpp.o"
  "CMakeFiles/pcnn_nn.dir/dense.cpp.o.d"
  "CMakeFiles/pcnn_nn.dir/loss.cpp.o"
  "CMakeFiles/pcnn_nn.dir/loss.cpp.o.d"
  "CMakeFiles/pcnn_nn.dir/pooling.cpp.o"
  "CMakeFiles/pcnn_nn.dir/pooling.cpp.o.d"
  "libpcnn_nn.a"
  "libpcnn_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcnn_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
