
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/activations.cpp" "src/nn/CMakeFiles/pcnn_nn.dir/activations.cpp.o" "gcc" "src/nn/CMakeFiles/pcnn_nn.dir/activations.cpp.o.d"
  "/root/repo/src/nn/conv2d.cpp" "src/nn/CMakeFiles/pcnn_nn.dir/conv2d.cpp.o" "gcc" "src/nn/CMakeFiles/pcnn_nn.dir/conv2d.cpp.o.d"
  "/root/repo/src/nn/dense.cpp" "src/nn/CMakeFiles/pcnn_nn.dir/dense.cpp.o" "gcc" "src/nn/CMakeFiles/pcnn_nn.dir/dense.cpp.o.d"
  "/root/repo/src/nn/loss.cpp" "src/nn/CMakeFiles/pcnn_nn.dir/loss.cpp.o" "gcc" "src/nn/CMakeFiles/pcnn_nn.dir/loss.cpp.o.d"
  "/root/repo/src/nn/pooling.cpp" "src/nn/CMakeFiles/pcnn_nn.dir/pooling.cpp.o" "gcc" "src/nn/CMakeFiles/pcnn_nn.dir/pooling.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
