file(REMOVE_RECURSE
  "libpcnn_nn.a"
)
