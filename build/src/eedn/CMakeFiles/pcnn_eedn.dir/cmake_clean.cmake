file(REMOVE_RECURSE
  "CMakeFiles/pcnn_eedn.dir/classifier.cpp.o"
  "CMakeFiles/pcnn_eedn.dir/classifier.cpp.o.d"
  "CMakeFiles/pcnn_eedn.dir/mapper.cpp.o"
  "CMakeFiles/pcnn_eedn.dir/mapper.cpp.o.d"
  "CMakeFiles/pcnn_eedn.dir/partitioned.cpp.o"
  "CMakeFiles/pcnn_eedn.dir/partitioned.cpp.o.d"
  "CMakeFiles/pcnn_eedn.dir/serialize.cpp.o"
  "CMakeFiles/pcnn_eedn.dir/serialize.cpp.o.d"
  "CMakeFiles/pcnn_eedn.dir/trinary.cpp.o"
  "CMakeFiles/pcnn_eedn.dir/trinary.cpp.o.d"
  "CMakeFiles/pcnn_eedn.dir/trinary_conv.cpp.o"
  "CMakeFiles/pcnn_eedn.dir/trinary_conv.cpp.o.d"
  "libpcnn_eedn.a"
  "libpcnn_eedn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcnn_eedn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
