file(REMOVE_RECURSE
  "libpcnn_eedn.a"
)
