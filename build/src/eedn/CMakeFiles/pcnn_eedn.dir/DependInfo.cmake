
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/eedn/classifier.cpp" "src/eedn/CMakeFiles/pcnn_eedn.dir/classifier.cpp.o" "gcc" "src/eedn/CMakeFiles/pcnn_eedn.dir/classifier.cpp.o.d"
  "/root/repo/src/eedn/mapper.cpp" "src/eedn/CMakeFiles/pcnn_eedn.dir/mapper.cpp.o" "gcc" "src/eedn/CMakeFiles/pcnn_eedn.dir/mapper.cpp.o.d"
  "/root/repo/src/eedn/partitioned.cpp" "src/eedn/CMakeFiles/pcnn_eedn.dir/partitioned.cpp.o" "gcc" "src/eedn/CMakeFiles/pcnn_eedn.dir/partitioned.cpp.o.d"
  "/root/repo/src/eedn/serialize.cpp" "src/eedn/CMakeFiles/pcnn_eedn.dir/serialize.cpp.o" "gcc" "src/eedn/CMakeFiles/pcnn_eedn.dir/serialize.cpp.o.d"
  "/root/repo/src/eedn/trinary.cpp" "src/eedn/CMakeFiles/pcnn_eedn.dir/trinary.cpp.o" "gcc" "src/eedn/CMakeFiles/pcnn_eedn.dir/trinary.cpp.o.d"
  "/root/repo/src/eedn/trinary_conv.cpp" "src/eedn/CMakeFiles/pcnn_eedn.dir/trinary_conv.cpp.o" "gcc" "src/eedn/CMakeFiles/pcnn_eedn.dir/trinary_conv.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/pcnn_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tn/CMakeFiles/pcnn_tn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
