# Empty compiler generated dependencies file for pcnn_eedn.
# This may be replaced when dependencies are built.
