
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/svm/linear_svm.cpp" "src/svm/CMakeFiles/pcnn_svm.dir/linear_svm.cpp.o" "gcc" "src/svm/CMakeFiles/pcnn_svm.dir/linear_svm.cpp.o.d"
  "/root/repo/src/svm/mining.cpp" "src/svm/CMakeFiles/pcnn_svm.dir/mining.cpp.o" "gcc" "src/svm/CMakeFiles/pcnn_svm.dir/mining.cpp.o.d"
  "/root/repo/src/svm/serialize.cpp" "src/svm/CMakeFiles/pcnn_svm.dir/serialize.cpp.o" "gcc" "src/svm/CMakeFiles/pcnn_svm.dir/serialize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/vision/CMakeFiles/pcnn_vision.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
