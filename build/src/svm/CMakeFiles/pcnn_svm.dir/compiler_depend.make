# Empty compiler generated dependencies file for pcnn_svm.
# This may be replaced when dependencies are built.
