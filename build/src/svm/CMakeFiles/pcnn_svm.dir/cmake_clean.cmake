file(REMOVE_RECURSE
  "CMakeFiles/pcnn_svm.dir/linear_svm.cpp.o"
  "CMakeFiles/pcnn_svm.dir/linear_svm.cpp.o.d"
  "CMakeFiles/pcnn_svm.dir/mining.cpp.o"
  "CMakeFiles/pcnn_svm.dir/mining.cpp.o.d"
  "CMakeFiles/pcnn_svm.dir/serialize.cpp.o"
  "CMakeFiles/pcnn_svm.dir/serialize.cpp.o.d"
  "libpcnn_svm.a"
  "libpcnn_svm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcnn_svm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
