file(REMOVE_RECURSE
  "libpcnn_svm.a"
)
