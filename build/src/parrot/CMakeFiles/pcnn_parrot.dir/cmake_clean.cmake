file(REMOVE_RECURSE
  "CMakeFiles/pcnn_parrot.dir/generator.cpp.o"
  "CMakeFiles/pcnn_parrot.dir/generator.cpp.o.d"
  "CMakeFiles/pcnn_parrot.dir/parrot.cpp.o"
  "CMakeFiles/pcnn_parrot.dir/parrot.cpp.o.d"
  "libpcnn_parrot.a"
  "libpcnn_parrot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcnn_parrot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
