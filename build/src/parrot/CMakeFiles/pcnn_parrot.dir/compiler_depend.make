# Empty compiler generated dependencies file for pcnn_parrot.
# This may be replaced when dependencies are built.
