file(REMOVE_RECURSE
  "libpcnn_parrot.a"
)
