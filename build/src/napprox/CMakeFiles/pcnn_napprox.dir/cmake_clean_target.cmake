file(REMOVE_RECURSE
  "libpcnn_napprox.a"
)
