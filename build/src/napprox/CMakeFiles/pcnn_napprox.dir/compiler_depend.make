# Empty compiler generated dependencies file for pcnn_napprox.
# This may be replaced when dependencies are built.
