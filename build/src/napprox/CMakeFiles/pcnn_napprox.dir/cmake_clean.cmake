file(REMOVE_RECURSE
  "CMakeFiles/pcnn_napprox.dir/corelet.cpp.o"
  "CMakeFiles/pcnn_napprox.dir/corelet.cpp.o.d"
  "CMakeFiles/pcnn_napprox.dir/napprox.cpp.o"
  "CMakeFiles/pcnn_napprox.dir/napprox.cpp.o.d"
  "CMakeFiles/pcnn_napprox.dir/quantized.cpp.o"
  "CMakeFiles/pcnn_napprox.dir/quantized.cpp.o.d"
  "libpcnn_napprox.a"
  "libpcnn_napprox.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcnn_napprox.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
