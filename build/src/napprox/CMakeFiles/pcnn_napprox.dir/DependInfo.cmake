
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/napprox/corelet.cpp" "src/napprox/CMakeFiles/pcnn_napprox.dir/corelet.cpp.o" "gcc" "src/napprox/CMakeFiles/pcnn_napprox.dir/corelet.cpp.o.d"
  "/root/repo/src/napprox/napprox.cpp" "src/napprox/CMakeFiles/pcnn_napprox.dir/napprox.cpp.o" "gcc" "src/napprox/CMakeFiles/pcnn_napprox.dir/napprox.cpp.o.d"
  "/root/repo/src/napprox/quantized.cpp" "src/napprox/CMakeFiles/pcnn_napprox.dir/quantized.cpp.o" "gcc" "src/napprox/CMakeFiles/pcnn_napprox.dir/quantized.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/vision/CMakeFiles/pcnn_vision.dir/DependInfo.cmake"
  "/root/repo/build/src/hog/CMakeFiles/pcnn_hog.dir/DependInfo.cmake"
  "/root/repo/build/src/tn/CMakeFiles/pcnn_tn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
