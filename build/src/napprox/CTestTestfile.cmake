# CMake generated Testfile for 
# Source directory: /root/repo/src/napprox
# Build directory: /root/repo/build/src/napprox
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
