file(REMOVE_RECURSE
  "libpcnn_eval.a"
)
