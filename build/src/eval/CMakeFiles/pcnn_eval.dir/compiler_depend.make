# Empty compiler generated dependencies file for pcnn_eval.
# This may be replaced when dependencies are built.
