file(REMOVE_RECURSE
  "CMakeFiles/pcnn_eval.dir/detection_eval.cpp.o"
  "CMakeFiles/pcnn_eval.dir/detection_eval.cpp.o.d"
  "CMakeFiles/pcnn_eval.dir/pr_curve.cpp.o"
  "CMakeFiles/pcnn_eval.dir/pr_curve.cpp.o.d"
  "CMakeFiles/pcnn_eval.dir/stats.cpp.o"
  "CMakeFiles/pcnn_eval.dir/stats.cpp.o.d"
  "libpcnn_eval.a"
  "libpcnn_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcnn_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
