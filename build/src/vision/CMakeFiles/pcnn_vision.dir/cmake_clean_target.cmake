file(REMOVE_RECURSE
  "libpcnn_vision.a"
)
