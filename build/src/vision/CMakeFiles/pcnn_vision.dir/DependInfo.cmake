
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vision/draw.cpp" "src/vision/CMakeFiles/pcnn_vision.dir/draw.cpp.o" "gcc" "src/vision/CMakeFiles/pcnn_vision.dir/draw.cpp.o.d"
  "/root/repo/src/vision/image.cpp" "src/vision/CMakeFiles/pcnn_vision.dir/image.cpp.o" "gcc" "src/vision/CMakeFiles/pcnn_vision.dir/image.cpp.o.d"
  "/root/repo/src/vision/nms.cpp" "src/vision/CMakeFiles/pcnn_vision.dir/nms.cpp.o" "gcc" "src/vision/CMakeFiles/pcnn_vision.dir/nms.cpp.o.d"
  "/root/repo/src/vision/pgm.cpp" "src/vision/CMakeFiles/pcnn_vision.dir/pgm.cpp.o" "gcc" "src/vision/CMakeFiles/pcnn_vision.dir/pgm.cpp.o.d"
  "/root/repo/src/vision/pyramid.cpp" "src/vision/CMakeFiles/pcnn_vision.dir/pyramid.cpp.o" "gcc" "src/vision/CMakeFiles/pcnn_vision.dir/pyramid.cpp.o.d"
  "/root/repo/src/vision/sliding_window.cpp" "src/vision/CMakeFiles/pcnn_vision.dir/sliding_window.cpp.o" "gcc" "src/vision/CMakeFiles/pcnn_vision.dir/sliding_window.cpp.o.d"
  "/root/repo/src/vision/synth.cpp" "src/vision/CMakeFiles/pcnn_vision.dir/synth.cpp.o" "gcc" "src/vision/CMakeFiles/pcnn_vision.dir/synth.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
