# Empty dependencies file for pcnn_vision.
# This may be replaced when dependencies are built.
