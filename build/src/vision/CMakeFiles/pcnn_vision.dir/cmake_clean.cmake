file(REMOVE_RECURSE
  "CMakeFiles/pcnn_vision.dir/draw.cpp.o"
  "CMakeFiles/pcnn_vision.dir/draw.cpp.o.d"
  "CMakeFiles/pcnn_vision.dir/image.cpp.o"
  "CMakeFiles/pcnn_vision.dir/image.cpp.o.d"
  "CMakeFiles/pcnn_vision.dir/nms.cpp.o"
  "CMakeFiles/pcnn_vision.dir/nms.cpp.o.d"
  "CMakeFiles/pcnn_vision.dir/pgm.cpp.o"
  "CMakeFiles/pcnn_vision.dir/pgm.cpp.o.d"
  "CMakeFiles/pcnn_vision.dir/pyramid.cpp.o"
  "CMakeFiles/pcnn_vision.dir/pyramid.cpp.o.d"
  "CMakeFiles/pcnn_vision.dir/sliding_window.cpp.o"
  "CMakeFiles/pcnn_vision.dir/sliding_window.cpp.o.d"
  "CMakeFiles/pcnn_vision.dir/synth.cpp.o"
  "CMakeFiles/pcnn_vision.dir/synth.cpp.o.d"
  "libpcnn_vision.a"
  "libpcnn_vision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcnn_vision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
