# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("vision")
subdirs("eval")
subdirs("hog")
subdirs("tn")
subdirs("nn")
subdirs("eedn")
subdirs("napprox")
subdirs("parrot")
subdirs("svm")
subdirs("power")
subdirs("core")
