file(REMOVE_RECURSE
  "libpcnn_hog.a"
)
