file(REMOVE_RECURSE
  "CMakeFiles/pcnn_hog.dir/fixed_point.cpp.o"
  "CMakeFiles/pcnn_hog.dir/fixed_point.cpp.o.d"
  "CMakeFiles/pcnn_hog.dir/gradient.cpp.o"
  "CMakeFiles/pcnn_hog.dir/gradient.cpp.o.d"
  "CMakeFiles/pcnn_hog.dir/hog.cpp.o"
  "CMakeFiles/pcnn_hog.dir/hog.cpp.o.d"
  "CMakeFiles/pcnn_hog.dir/visualize.cpp.o"
  "CMakeFiles/pcnn_hog.dir/visualize.cpp.o.d"
  "libpcnn_hog.a"
  "libpcnn_hog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcnn_hog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
