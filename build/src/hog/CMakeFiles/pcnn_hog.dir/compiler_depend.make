# Empty compiler generated dependencies file for pcnn_hog.
# This may be replaced when dependencies are built.
