
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hog/fixed_point.cpp" "src/hog/CMakeFiles/pcnn_hog.dir/fixed_point.cpp.o" "gcc" "src/hog/CMakeFiles/pcnn_hog.dir/fixed_point.cpp.o.d"
  "/root/repo/src/hog/gradient.cpp" "src/hog/CMakeFiles/pcnn_hog.dir/gradient.cpp.o" "gcc" "src/hog/CMakeFiles/pcnn_hog.dir/gradient.cpp.o.d"
  "/root/repo/src/hog/hog.cpp" "src/hog/CMakeFiles/pcnn_hog.dir/hog.cpp.o" "gcc" "src/hog/CMakeFiles/pcnn_hog.dir/hog.cpp.o.d"
  "/root/repo/src/hog/visualize.cpp" "src/hog/CMakeFiles/pcnn_hog.dir/visualize.cpp.o" "gcc" "src/hog/CMakeFiles/pcnn_hog.dir/visualize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/vision/CMakeFiles/pcnn_vision.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
