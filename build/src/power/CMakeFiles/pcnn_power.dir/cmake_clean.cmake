file(REMOVE_RECURSE
  "CMakeFiles/pcnn_power.dir/power.cpp.o"
  "CMakeFiles/pcnn_power.dir/power.cpp.o.d"
  "libpcnn_power.a"
  "libpcnn_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcnn_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
