# Empty dependencies file for pcnn_power.
# This may be replaced when dependencies are built.
