file(REMOVE_RECURSE
  "libpcnn_power.a"
)
