file(REMOVE_RECURSE
  "CMakeFiles/pcnn_tn.dir/core.cpp.o"
  "CMakeFiles/pcnn_tn.dir/core.cpp.o.d"
  "CMakeFiles/pcnn_tn.dir/corelet.cpp.o"
  "CMakeFiles/pcnn_tn.dir/corelet.cpp.o.d"
  "CMakeFiles/pcnn_tn.dir/energy.cpp.o"
  "CMakeFiles/pcnn_tn.dir/energy.cpp.o.d"
  "CMakeFiles/pcnn_tn.dir/model_io.cpp.o"
  "CMakeFiles/pcnn_tn.dir/model_io.cpp.o.d"
  "CMakeFiles/pcnn_tn.dir/network.cpp.o"
  "CMakeFiles/pcnn_tn.dir/network.cpp.o.d"
  "CMakeFiles/pcnn_tn.dir/spike_coding.cpp.o"
  "CMakeFiles/pcnn_tn.dir/spike_coding.cpp.o.d"
  "CMakeFiles/pcnn_tn.dir/util_corelets.cpp.o"
  "CMakeFiles/pcnn_tn.dir/util_corelets.cpp.o.d"
  "libpcnn_tn.a"
  "libpcnn_tn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcnn_tn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
