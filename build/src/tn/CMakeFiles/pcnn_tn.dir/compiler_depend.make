# Empty compiler generated dependencies file for pcnn_tn.
# This may be replaced when dependencies are built.
