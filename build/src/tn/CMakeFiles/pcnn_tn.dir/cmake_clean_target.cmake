file(REMOVE_RECURSE
  "libpcnn_tn.a"
)
