
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tn/core.cpp" "src/tn/CMakeFiles/pcnn_tn.dir/core.cpp.o" "gcc" "src/tn/CMakeFiles/pcnn_tn.dir/core.cpp.o.d"
  "/root/repo/src/tn/corelet.cpp" "src/tn/CMakeFiles/pcnn_tn.dir/corelet.cpp.o" "gcc" "src/tn/CMakeFiles/pcnn_tn.dir/corelet.cpp.o.d"
  "/root/repo/src/tn/energy.cpp" "src/tn/CMakeFiles/pcnn_tn.dir/energy.cpp.o" "gcc" "src/tn/CMakeFiles/pcnn_tn.dir/energy.cpp.o.d"
  "/root/repo/src/tn/model_io.cpp" "src/tn/CMakeFiles/pcnn_tn.dir/model_io.cpp.o" "gcc" "src/tn/CMakeFiles/pcnn_tn.dir/model_io.cpp.o.d"
  "/root/repo/src/tn/network.cpp" "src/tn/CMakeFiles/pcnn_tn.dir/network.cpp.o" "gcc" "src/tn/CMakeFiles/pcnn_tn.dir/network.cpp.o.d"
  "/root/repo/src/tn/spike_coding.cpp" "src/tn/CMakeFiles/pcnn_tn.dir/spike_coding.cpp.o" "gcc" "src/tn/CMakeFiles/pcnn_tn.dir/spike_coding.cpp.o.d"
  "/root/repo/src/tn/util_corelets.cpp" "src/tn/CMakeFiles/pcnn_tn.dir/util_corelets.cpp.o" "gcc" "src/tn/CMakeFiles/pcnn_tn.dir/util_corelets.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
