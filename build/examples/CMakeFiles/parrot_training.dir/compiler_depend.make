# Empty compiler generated dependencies file for parrot_training.
# This may be replaced when dependencies are built.
