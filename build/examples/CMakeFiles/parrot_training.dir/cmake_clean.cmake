file(REMOVE_RECURSE
  "CMakeFiles/parrot_training.dir/parrot_training.cpp.o"
  "CMakeFiles/parrot_training.dir/parrot_training.cpp.o.d"
  "parrot_training"
  "parrot_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parrot_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
