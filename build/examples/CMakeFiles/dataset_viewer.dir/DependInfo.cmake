
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/dataset_viewer.cpp" "examples/CMakeFiles/dataset_viewer.dir/dataset_viewer.cpp.o" "gcc" "examples/CMakeFiles/dataset_viewer.dir/dataset_viewer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/vision/CMakeFiles/pcnn_vision.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/pcnn_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/hog/CMakeFiles/pcnn_hog.dir/DependInfo.cmake"
  "/root/repo/build/src/tn/CMakeFiles/pcnn_tn.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/pcnn_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/eedn/CMakeFiles/pcnn_eedn.dir/DependInfo.cmake"
  "/root/repo/build/src/napprox/CMakeFiles/pcnn_napprox.dir/DependInfo.cmake"
  "/root/repo/build/src/parrot/CMakeFiles/pcnn_parrot.dir/DependInfo.cmake"
  "/root/repo/build/src/svm/CMakeFiles/pcnn_svm.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/pcnn_power.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/pcnn_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
