file(REMOVE_RECURSE
  "CMakeFiles/corelet_inspector.dir/corelet_inspector.cpp.o"
  "CMakeFiles/corelet_inspector.dir/corelet_inspector.cpp.o.d"
  "corelet_inspector"
  "corelet_inspector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/corelet_inspector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
