# Empty compiler generated dependencies file for corelet_inspector.
# This may be replaced when dependencies are built.
