# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_vision[1]_include.cmake")
include("/root/repo/build/tests/test_eval[1]_include.cmake")
include("/root/repo/build/tests/test_hog[1]_include.cmake")
include("/root/repo/build/tests/test_tn[1]_include.cmake")
include("/root/repo/build/tests/test_nn[1]_include.cmake")
include("/root/repo/build/tests/test_eedn[1]_include.cmake")
include("/root/repo/build/tests/test_napprox[1]_include.cmake")
include("/root/repo/build/tests/test_parrot[1]_include.cmake")
include("/root/repo/build/tests/test_svm[1]_include.cmake")
include("/root/repo/build/tests/test_power[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
