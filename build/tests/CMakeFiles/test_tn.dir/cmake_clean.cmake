file(REMOVE_RECURSE
  "CMakeFiles/test_tn.dir/tn_test.cpp.o"
  "CMakeFiles/test_tn.dir/tn_test.cpp.o.d"
  "test_tn"
  "test_tn.pdb"
  "test_tn[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
