# Empty compiler generated dependencies file for test_tn.
# This may be replaced when dependencies are built.
