file(REMOVE_RECURSE
  "CMakeFiles/test_parrot.dir/parrot_test.cpp.o"
  "CMakeFiles/test_parrot.dir/parrot_test.cpp.o.d"
  "test_parrot"
  "test_parrot.pdb"
  "test_parrot[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_parrot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
