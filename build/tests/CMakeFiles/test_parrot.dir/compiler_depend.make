# Empty compiler generated dependencies file for test_parrot.
# This may be replaced when dependencies are built.
