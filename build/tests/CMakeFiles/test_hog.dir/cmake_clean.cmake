file(REMOVE_RECURSE
  "CMakeFiles/test_hog.dir/hog_test.cpp.o"
  "CMakeFiles/test_hog.dir/hog_test.cpp.o.d"
  "test_hog"
  "test_hog.pdb"
  "test_hog[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
