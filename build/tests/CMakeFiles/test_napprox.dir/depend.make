# Empty dependencies file for test_napprox.
# This may be replaced when dependencies are built.
