file(REMOVE_RECURSE
  "CMakeFiles/test_napprox.dir/napprox_test.cpp.o"
  "CMakeFiles/test_napprox.dir/napprox_test.cpp.o.d"
  "test_napprox"
  "test_napprox.pdb"
  "test_napprox[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_napprox.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
