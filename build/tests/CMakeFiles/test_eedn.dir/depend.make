# Empty dependencies file for test_eedn.
# This may be replaced when dependencies are built.
