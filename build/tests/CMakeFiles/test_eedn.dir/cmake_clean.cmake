file(REMOVE_RECURSE
  "CMakeFiles/test_eedn.dir/eedn_test.cpp.o"
  "CMakeFiles/test_eedn.dir/eedn_test.cpp.o.d"
  "test_eedn"
  "test_eedn.pdb"
  "test_eedn[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_eedn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
