file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_parrot_field.dir/ablation_parrot_field.cpp.o"
  "CMakeFiles/bench_ablation_parrot_field.dir/ablation_parrot_field.cpp.o.d"
  "bench_ablation_parrot_field"
  "bench_ablation_parrot_field.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_parrot_field.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
