# Empty compiler generated dependencies file for bench_ablation_parrot_field.
# This may be replaced when dependencies are built.
