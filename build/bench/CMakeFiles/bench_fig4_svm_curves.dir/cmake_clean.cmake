file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_svm_curves.dir/fig4_svm_curves.cpp.o"
  "CMakeFiles/bench_fig4_svm_curves.dir/fig4_svm_curves.cpp.o.d"
  "bench_fig4_svm_curves"
  "bench_fig4_svm_curves.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_svm_curves.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
