file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_eedn_curves.dir/fig5_eedn_curves.cpp.o"
  "CMakeFiles/bench_fig5_eedn_curves.dir/fig5_eedn_curves.cpp.o.d"
  "bench_fig5_eedn_curves"
  "bench_fig5_eedn_curves.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_eedn_curves.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
