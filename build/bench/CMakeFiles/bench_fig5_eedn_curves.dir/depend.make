# Empty dependencies file for bench_fig5_eedn_curves.
# This may be replaced when dependencies are built.
