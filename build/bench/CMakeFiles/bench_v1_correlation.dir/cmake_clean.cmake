file(REMOVE_RECURSE
  "CMakeFiles/bench_v1_correlation.dir/v1_correlation.cpp.o"
  "CMakeFiles/bench_v1_correlation.dir/v1_correlation.cpp.o.d"
  "bench_v1_correlation"
  "bench_v1_correlation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_v1_correlation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
