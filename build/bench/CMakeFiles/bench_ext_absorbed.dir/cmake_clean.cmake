file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_absorbed.dir/ext_absorbed.cpp.o"
  "CMakeFiles/bench_ext_absorbed.dir/ext_absorbed.cpp.o.d"
  "bench_ext_absorbed"
  "bench_ext_absorbed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_absorbed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
