# Empty dependencies file for bench_ext_absorbed.
# This may be replaced when dependencies are built.
