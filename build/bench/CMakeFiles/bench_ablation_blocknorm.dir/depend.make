# Empty dependencies file for bench_ablation_blocknorm.
# This may be replaced when dependencies are built.
