file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_blocknorm.dir/ablation_blocknorm.cpp.o"
  "CMakeFiles/bench_ablation_blocknorm.dir/ablation_blocknorm.cpp.o.d"
  "bench_ablation_blocknorm"
  "bench_ablation_blocknorm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_blocknorm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
