#pragma once

#include <iosfwd>
#include <string>

#include "svm/linear_svm.hpp"

namespace pcnn::svm {

/// Text serialization of a trained linear SVM (weights + bias). The
/// training parameters are stored for provenance but a loaded model is
/// inference-only until retrained.
void saveModel(const LinearSvm& model, std::ostream& out);
LinearSvm loadModel(std::istream& in);

/// File wrappers; throw std::runtime_error on I/O failure.
void saveModelFile(const LinearSvm& model, const std::string& path);
LinearSvm loadModelFile(const std::string& path);

}  // namespace pcnn::svm
