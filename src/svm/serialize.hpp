#pragma once

#include <iosfwd>
#include <string>

#include "common/status.hpp"
#include "svm/linear_svm.hpp"

namespace pcnn::svm {

/// Serialization of a trained linear SVM (weights + bias; the training
/// parameters ride along for provenance, a loaded model is inference-only
/// until retrained).
///
/// The current wire format ("PSVM" v2) is a chunked binary container over
/// the shared io::Writer/io::Reader layer: bitwise-exact double round
/// trips, bounds-checked loads. The v1 whitespace-text format
/// ("pcnn-svm-v1") is still read -- the loader sniffs the magic -- but no
/// longer written.

/// Status-returning save: kFailedPrecondition for an untrained model,
/// kDataLoss on write failure.
Status trySaveModel(const LinearSvm& model, std::ostream& out);
Status trySaveModelFile(const LinearSvm& model, const std::string& path);

/// Bounds-checked load (v2 binary or v1 text, dispatched on magic): a
/// corrupt stream yields kDataLoss, and a header declaring an implausibly
/// large weight vector yields kOutOfRange before anything is allocated.
StatusOr<LinearSvm> tryLoadModel(std::istream& in);
StatusOr<LinearSvm> tryLoadModelFile(const std::string& path);

/// Legacy throwing wrappers over the try* variants. The save forms throw
/// std::invalid_argument for an untrained model and std::runtime_error on
/// write failure; the load forms throw std::runtime_error carrying the
/// status text.
void saveModel(const LinearSvm& model, std::ostream& out);
void saveModelFile(const LinearSvm& model, const std::string& path);
[[deprecated("use tryLoadModel")]] LinearSvm loadModel(std::istream& in);
[[deprecated("use tryLoadModelFile")]] LinearSvm loadModelFile(
    const std::string& path);

}  // namespace pcnn::svm
