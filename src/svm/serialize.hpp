#pragma once

#include <iosfwd>
#include <string>

#include "common/status.hpp"
#include "svm/linear_svm.hpp"

namespace pcnn::svm {

/// Text serialization of a trained linear SVM (weights + bias). The
/// training parameters are stored for provenance but a loaded model is
/// inference-only until retrained.
void saveModel(const LinearSvm& model, std::ostream& out);

/// Bounds-checked load: a corrupt stream yields kDataLoss, and a header
/// declaring an implausibly large weight vector yields kOutOfRange before
/// anything is allocated (a damaged dimension field would otherwise
/// request an arbitrary allocation).
StatusOr<LinearSvm> tryLoadModel(std::istream& in);

/// Legacy wrapper over tryLoadModel; throws std::runtime_error carrying
/// the status text on any failure.
LinearSvm loadModel(std::istream& in);

/// File wrappers. tryLoadModelFile reports an unopenable path as
/// kUnavailable; the legacy forms throw std::runtime_error.
void saveModelFile(const LinearSvm& model, const std::string& path);
StatusOr<LinearSvm> tryLoadModelFile(const std::string& path);
LinearSvm loadModelFile(const std::string& path);

}  // namespace pcnn::svm
