#include "svm/mining.hpp"

#include <stdexcept>

#include "obs/obs.hpp"

namespace pcnn::svm {

MiningResult trainWithHardNegatives(
    LinearSvm& svm, const WindowExtractor& extractor,
    const std::vector<vision::Image>& positiveWindows,
    const std::vector<vision::Image>& negativeWindows,
    const std::vector<vision::Image>& negativeScenes,
    const MiningParams& params) {
  if (positiveWindows.empty() || negativeWindows.empty()) {
    throw std::invalid_argument(
        "trainWithHardNegatives: need both positive and negative windows");
  }
  std::vector<std::vector<float>> features;
  std::vector<int> labels;
  features.reserve(positiveWindows.size() + negativeWindows.size());
  for (const auto& window : positiveWindows) {
    features.push_back(extractor(window));
    labels.push_back(1);
  }
  for (const auto& window : negativeWindows) {
    features.push_back(extractor(window));
    labels.push_back(-1);
  }
  svm.train(features, labels);

  MiningResult result;
  for (int round = 0; round < params.rounds; ++round) {
    int minedThisRound = 0;
    for (const vision::Image& scene : negativeScenes) {
      int minedInScene = 0;
      // Mining wants each window's pixel crop anyway (the extractor runs
      // per window), so the deprecated brute-force scan is the right tool
      // here -- the grid path has nothing to amortize.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
      vision::forEachWindow(
          scene, params.scan,
          [&](const vision::Image& level, const vision::Rect& inLevel,
              const vision::Rect&) {
            if (minedInScene >= params.maxMinedPerScene) return;
            const vision::Image window =
                level.crop(static_cast<int>(inLevel.x),
                           static_cast<int>(inLevel.y),
                           static_cast<int>(inLevel.w),
                           static_cast<int>(inLevel.h));
            std::vector<float> f = extractor(window);
            if (svm.decision(f) > params.mineThreshold) {
              features.push_back(std::move(f));
              labels.push_back(-1);
              ++minedInScene;
            }
          });
#pragma GCC diagnostic pop
      minedThisRound += minedInScene;
    }
    result.minedNegatives += minedThisRound;
    if (minedThisRound == 0) break;
    svm.train(features, labels);
  }
  result.finalTrainAccuracy = svm.accuracy(features, labels);
  return result;
}

MiningResult trainWithHardNegatives(
    LinearSvm& svm, extract::FeatureExtractor& extractor,
    const std::vector<vision::Image>& positiveWindows,
    const std::vector<vision::Image>& negativeWindows,
    const std::vector<vision::Image>& negativeScenes,
    const MiningParams& params) {
  if (positiveWindows.empty() || negativeWindows.empty()) {
    throw std::invalid_argument(
        "trainWithHardNegatives: need both positive and negative windows");
  }
  // A standalone training window IS its own grid (top-left cell 0,0).
  auto windowFeatures = [&extractor](const vision::Image& window) {
    return extractor.windowFromGrid(extractor.cellGrid(window), 0, 0);
  };
  std::vector<std::vector<float>> features;
  std::vector<int> labels;
  features.reserve(positiveWindows.size() + negativeWindows.size());
  for (const auto& window : positiveWindows) {
    features.push_back(windowFeatures(window));
    labels.push_back(1);
  }
  for (const auto& window : negativeWindows) {
    features.push_back(windowFeatures(window));
    labels.push_back(-1);
  }
  svm.train(features, labels);

  MiningResult result;
  for (int round = 0; round < params.rounds; ++round) {
    PCNN_SPAN_ARG("mining.round", "round", round);
    int minedThisRound = 0;
    for (const vision::Image& scene : negativeScenes) {
      int minedInScene = 0;
      long windowsInScene = 0;
      vision::forEachWindowOnGrid(
          scene, params.scan, extractor.cellSize(),
          [&extractor](const vision::Image& img) {
            return extractor.cellGrid(img);
          },
          [&](const vision::Image&, const hog::CellGrid& grid, int cx0,
              int cy0, const vision::Rect&, const vision::Rect&) {
            ++windowsInScene;
            if (minedInScene >= params.maxMinedPerScene) return;
            std::vector<float> f = extractor.windowFromGrid(grid, cx0, cy0);
            if (svm.decision(f) > params.mineThreshold) {
              features.push_back(std::move(f));
              labels.push_back(-1);
              ++minedInScene;
            }
          });
      // Mining shares one cached grid per pyramid level exactly like the
      // detector scan, so its windows count as grid-cache hits too.
      static obs::Counter& windowsScanned = obs::counter("windows_scanned");
      static obs::Counter& gridCacheHits = obs::counter("grid_cache_hits");
      static obs::Counter& mined = obs::counter("mining.hard_negatives");
      windowsScanned.add(windowsInScene);
      gridCacheHits.add(windowsInScene);
      mined.add(minedInScene);
      minedThisRound += minedInScene;
    }
    result.minedNegatives += minedThisRound;
    if (minedThisRound == 0) break;
    svm.train(features, labels);
  }
  result.finalTrainAccuracy = svm.accuracy(features, labels);
  return result;
}

}  // namespace pcnn::svm
