#include "svm/mining.hpp"

#include <stdexcept>

namespace pcnn::svm {

MiningResult trainWithHardNegatives(
    LinearSvm& svm, const WindowExtractor& extractor,
    const std::vector<vision::Image>& positiveWindows,
    const std::vector<vision::Image>& negativeWindows,
    const std::vector<vision::Image>& negativeScenes,
    const MiningParams& params) {
  if (positiveWindows.empty() || negativeWindows.empty()) {
    throw std::invalid_argument(
        "trainWithHardNegatives: need both positive and negative windows");
  }
  std::vector<std::vector<float>> features;
  std::vector<int> labels;
  features.reserve(positiveWindows.size() + negativeWindows.size());
  for (const auto& window : positiveWindows) {
    features.push_back(extractor(window));
    labels.push_back(1);
  }
  for (const auto& window : negativeWindows) {
    features.push_back(extractor(window));
    labels.push_back(-1);
  }
  svm.train(features, labels);

  MiningResult result;
  for (int round = 0; round < params.rounds; ++round) {
    int minedThisRound = 0;
    for (const vision::Image& scene : negativeScenes) {
      int minedInScene = 0;
      vision::forEachWindow(
          scene, params.scan,
          [&](const vision::Image& level, const vision::Rect& inLevel,
              const vision::Rect&) {
            if (minedInScene >= params.maxMinedPerScene) return;
            const vision::Image window =
                level.crop(static_cast<int>(inLevel.x),
                           static_cast<int>(inLevel.y),
                           static_cast<int>(inLevel.w),
                           static_cast<int>(inLevel.h));
            std::vector<float> f = extractor(window);
            if (svm.decision(f) > params.mineThreshold) {
              features.push_back(std::move(f));
              labels.push_back(-1);
              ++minedInScene;
            }
          });
      minedThisRound += minedInScene;
    }
    result.minedNegatives += minedThisRound;
    if (minedThisRound == 0) break;
    svm.train(features, labels);
  }
  result.finalTrainAccuracy = svm.accuracy(features, labels);
  return result;
}

}  // namespace pcnn::svm
