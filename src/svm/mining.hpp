#pragma once

#include <functional>
#include <vector>

#include "extract/extractor.hpp"
#include "hog/hog.hpp"
#include "svm/linear_svm.hpp"
#include "vision/image.hpp"
#include "vision/sliding_window.hpp"

namespace pcnn::svm {

/// Extracts a feature descriptor from a detection window.
using WindowExtractor =
    std::function<std::vector<float>(const vision::Image&)>;

/// Parameters of the hard-negative mining loop.
struct MiningParams {
  int rounds = 1;              ///< re-training rounds after the initial fit
  float mineThreshold = 0.0f;  ///< negatives scoring above this are mined
  int maxMinedPerScene = 40;   ///< cap per negative scene
  vision::SlidingWindowParams scan;  ///< how negative scenes are scanned
};

/// Result of training with mining.
struct MiningResult {
  int minedNegatives = 0;
  double finalTrainAccuracy = 0.0;
};

/// Trains `svm` on the given positive/negative windows, then augments the
/// negative set with false positives mined from person-free scenes and
/// retrains -- the paper's protocol: "after the training of an SVM model is
/// completed, we go through negative training images to filter false
/// positives, to augment the SVM model as negatives" (Sec. 4).
MiningResult trainWithHardNegatives(
    LinearSvm& svm, const WindowExtractor& extractor,
    const std::vector<vision::Image>& positiveWindows,
    const std::vector<vision::Image>& negativeWindows,
    const std::vector<vision::Image>& negativeScenes,
    const MiningParams& params = {});

/// Same protocol against the polymorphic extractor layer: training windows
/// use windowFromGrid(cellGrid(window), 0, 0) and negative scenes are
/// scanned over one cached grid per pyramid level
/// (vision::forEachWindowOnGrid), matching the feature path GridDetector
/// uses at detection time. The extractor may be stateful (grids are
/// computed on the calling thread). Requires cell-aligned scan strides
/// (see forEachWindowOnGrid).
MiningResult trainWithHardNegatives(
    LinearSvm& svm, extract::FeatureExtractor& extractor,
    const std::vector<vision::Image>& positiveWindows,
    const std::vector<vision::Image>& negativeWindows,
    const std::vector<vision::Image>& negativeScenes,
    const MiningParams& params = {});

}  // namespace pcnn::svm
