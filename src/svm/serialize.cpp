#include "svm/serialize.hpp"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "io/io.hpp"

namespace pcnn::svm {

namespace {

constexpr char kMagic[5] = "PSVM";
constexpr std::uint32_t kVersion = 2;

/// The largest weight vector a model file may declare. Far beyond any real
/// descriptor (the block-norm HoG window is 3780 doubles) but small enough
/// that a corrupt dimension field cannot force an absurd allocation.
constexpr std::uint64_t kMaxModelDim = std::uint64_t{1} << 26;

/// The v1 whitespace-text reader, kept so pre-refactor model files (and
/// the corrupt-input regression corpus) still load. Never written anymore.
StatusOr<LinearSvm> tryLoadModelV1(std::istream& in) {
  std::string magic;
  std::size_t dim = 0;
  if (!(in >> magic >> dim) || magic != "pcnn-svm-v1") {
    return Status::DataLoss("loadModel: bad header (expected pcnn-svm-v1)");
  }
  if (dim == 0 || dim > kMaxModelDim) {
    return Status::OutOfRange("loadModel: weight dimension " +
                              std::to_string(dim) + " outside 1.." +
                              std::to_string(kMaxModelDim));
  }
  SvmParams params;
  if (!(in >> params.C >> params.biasScale)) {
    return Status::DataLoss("loadModel: bad params");
  }
  double bias = 0.0;
  if (!(in >> bias)) return Status::DataLoss("loadModel: bad bias");
  std::vector<double> weights(dim);
  for (double& w : weights) {
    if (!(in >> w)) {
      return Status::DataLoss("loadModel: truncated weights (expected " +
                              std::to_string(dim) + ")");
    }
  }
  LinearSvm model(params);
  model.setModel(std::move(weights), bias);
  return model;
}

StatusOr<LinearSvm> tryLoadModelV2(std::istream& in) {
  io::Reader r(in);
  if (!r.header(kMagic, kVersion).ok()) return r.status();
  io::Reader::Chunk chunk;
  bool end = false;
  for (;;) {
    if (!r.nextChunk(chunk, end).ok()) return r.status();
    if (end) return Status::DataLoss("loadModel: no SVMW chunk");
    if (chunk.tag == "SVMW") break;  // unknown chunks skipped
  }
  std::istringstream payload(chunk.payload);
  io::Reader pr(payload);
  std::uint64_t dim = 0;
  if (!pr.u64(dim).ok()) return pr.status();
  if (dim == 0 || dim > kMaxModelDim) {
    return Status::OutOfRange("loadModel: weight dimension " +
                              std::to_string(dim) + " outside 1.." +
                              std::to_string(kMaxModelDim));
  }
  SvmParams params;
  double bias = 0.0;
  pr.f64(params.C);
  pr.f64(params.biasScale);
  pr.f64(bias);
  std::vector<double> weights(static_cast<std::size_t>(dim));
  for (double& w : weights) {
    if (!pr.f64(w).ok()) {
      return Status::DataLoss("loadModel: truncated weights (expected " +
                              std::to_string(dim) + ")");
    }
  }
  if (!pr.status().ok()) return pr.status();
  LinearSvm model(params);
  model.setModel(std::move(weights), bias);
  return model;
}

}  // namespace

Status trySaveModel(const LinearSvm& model, std::ostream& out) {
  if (!model.trained()) {
    return Status::FailedPrecondition("saveModel: model is untrained");
  }
  std::ostringstream payload;
  io::Writer pw(payload);
  pw.u64(model.weights().size());
  pw.f64(model.params().C);
  pw.f64(model.params().biasScale);
  pw.f64(model.bias());
  for (double w : model.weights()) pw.f64(w);
  if (!pw.status().ok()) return pw.status();

  io::Writer w(out);
  w.header(kMagic, kVersion);
  w.chunk("SVMW", payload.str());
  return w.status();
}

Status trySaveModelFile(const LinearSvm& model, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::Unavailable("saveModelFile: cannot open " + path);
  return trySaveModel(model, out);
}

StatusOr<LinearSvm> tryLoadModel(std::istream& in) {
  if (io::peekMagic(in) == kMagic) return tryLoadModelV2(in);
  return tryLoadModelV1(in);
}

StatusOr<LinearSvm> tryLoadModelFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::Unavailable("loadModelFile: cannot open " + path);
  }
  return tryLoadModel(in);
}

namespace {

/// Legacy save wrappers preserve their historical exception types: an
/// untrained model was always std::invalid_argument, anything else
/// std::runtime_error.
void throwForSave(const Status& status) {
  if (status.code() == StatusCode::kFailedPrecondition ||
      status.code() == StatusCode::kInvalidArgument) {
    throw std::invalid_argument(status.message());
  }
  throw std::runtime_error(status.toString());
}

}  // namespace

void saveModel(const LinearSvm& model, std::ostream& out) {
  if (Status status = trySaveModel(model, out); !status.ok()) {
    throwForSave(status);
  }
}

void saveModelFile(const LinearSvm& model, const std::string& path) {
  if (Status status = trySaveModelFile(model, path); !status.ok()) {
    throwForSave(status);
  }
}

LinearSvm loadModel(std::istream& in) {
  StatusOr<LinearSvm> loaded = tryLoadModel(in);
  if (!loaded.ok()) throw std::runtime_error(loaded.status().toString());
  return std::move(loaded).value();
}

LinearSvm loadModelFile(const std::string& path) {
  StatusOr<LinearSvm> loaded = tryLoadModelFile(path);
  if (!loaded.ok()) throw std::runtime_error(loaded.status().toString());
  return std::move(loaded).value();
}

}  // namespace pcnn::svm
