#include "svm/serialize.hpp"

#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace pcnn::svm {

void saveModel(const LinearSvm& model, std::ostream& out) {
  if (!model.trained()) {
    throw std::invalid_argument("saveModel: model is untrained");
  }
  out << "pcnn-svm-v1 " << model.weights().size() << '\n';
  out << model.params().C << ' ' << model.params().biasScale << '\n';
  out.precision(17);
  out << model.bias() << '\n';
  for (double w : model.weights()) out << w << ' ';
  out << '\n';
  if (!out) throw std::runtime_error("saveModel: write failure");
}

namespace {

/// The largest weight vector a model file may declare. Far beyond any real
/// descriptor (the block-norm HoG window is 3780 doubles) but small enough
/// that a corrupt dimension field cannot force an absurd allocation.
constexpr std::size_t kMaxModelDim = std::size_t{1} << 26;

}  // namespace

StatusOr<LinearSvm> tryLoadModel(std::istream& in) {
  std::string magic;
  std::size_t dim = 0;
  if (!(in >> magic >> dim) || magic != "pcnn-svm-v1") {
    return Status::DataLoss("loadModel: bad header (expected pcnn-svm-v1)");
  }
  if (dim == 0 || dim > kMaxModelDim) {
    return Status::OutOfRange("loadModel: weight dimension " +
                              std::to_string(dim) + " outside 1.." +
                              std::to_string(kMaxModelDim));
  }
  SvmParams params;
  if (!(in >> params.C >> params.biasScale)) {
    return Status::DataLoss("loadModel: bad params");
  }
  double bias = 0.0;
  if (!(in >> bias)) return Status::DataLoss("loadModel: bad bias");
  std::vector<double> weights(dim);
  for (double& w : weights) {
    if (!(in >> w)) {
      return Status::DataLoss("loadModel: truncated weights (expected " +
                              std::to_string(dim) + ")");
    }
  }
  LinearSvm model(params);
  model.setModel(std::move(weights), bias);
  return model;
}

LinearSvm loadModel(std::istream& in) {
  StatusOr<LinearSvm> loaded = tryLoadModel(in);
  if (!loaded.ok()) throw std::runtime_error(loaded.status().toString());
  return std::move(loaded).value();
}

void saveModelFile(const LinearSvm& model, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("saveModelFile: cannot open " + path);
  saveModel(model, out);
}

StatusOr<LinearSvm> tryLoadModelFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::Unavailable("loadModelFile: cannot open " + path);
  }
  return tryLoadModel(in);
}

LinearSvm loadModelFile(const std::string& path) {
  StatusOr<LinearSvm> loaded = tryLoadModelFile(path);
  if (!loaded.ok()) throw std::runtime_error(loaded.status().toString());
  return std::move(loaded).value();
}

}  // namespace pcnn::svm
