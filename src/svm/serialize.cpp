#include "svm/serialize.hpp"

#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace pcnn::svm {

void saveModel(const LinearSvm& model, std::ostream& out) {
  if (!model.trained()) {
    throw std::invalid_argument("saveModel: model is untrained");
  }
  out << "pcnn-svm-v1 " << model.weights().size() << '\n';
  out << model.params().C << ' ' << model.params().biasScale << '\n';
  out.precision(17);
  out << model.bias() << '\n';
  for (double w : model.weights()) out << w << ' ';
  out << '\n';
  if (!out) throw std::runtime_error("saveModel: write failure");
}

LinearSvm loadModel(std::istream& in) {
  std::string magic;
  std::size_t dim = 0;
  if (!(in >> magic >> dim) || magic != "pcnn-svm-v1") {
    throw std::runtime_error("loadModel: bad header");
  }
  SvmParams params;
  if (!(in >> params.C >> params.biasScale)) {
    throw std::runtime_error("loadModel: bad params");
  }
  double bias = 0.0;
  if (!(in >> bias)) throw std::runtime_error("loadModel: bad bias");
  std::vector<double> weights(dim);
  for (double& w : weights) {
    if (!(in >> w)) throw std::runtime_error("loadModel: truncated weights");
  }
  LinearSvm model(params);
  model.setModel(std::move(weights), bias);
  return model;
}

void saveModelFile(const LinearSvm& model, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("saveModelFile: cannot open " + path);
  saveModel(model, out);
}

LinearSvm loadModelFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("loadModelFile: cannot open " + path);
  return loadModel(in);
}

}  // namespace pcnn::svm
