#pragma once

#include <cstdint>
#include <utility>
#include <vector>

namespace pcnn::svm {

/// Training parameters of the linear SVM.
struct SvmParams {
  double C = 1.0;            ///< soft-margin cost
  int maxIterations = 200;   ///< outer passes of dual coordinate descent
  double tolerance = 1e-4;   ///< projected-gradient stopping criterion
  double biasScale = 1.0;    ///< features are augmented with this constant
  std::uint64_t seed = 3;
};

/// L2-regularized L1-loss (hinge) linear SVM trained by dual coordinate
/// descent -- the LIBLINEAR algorithm, standing in for the LIBSVM linear
/// classifiers the paper trains on HoG features (Sec. 4).
class LinearSvm {
 public:
  explicit LinearSvm(const SvmParams& params = {});

  /// Trains on row features with labels +1/-1. Throws on shape mismatch or
  /// empty input. Retraining from scratch is intended (hard-negative
  /// mining rounds call this repeatedly).
  void train(const std::vector<std::vector<float>>& features,
             const std::vector<int>& labels);

  /// Decision value w.x + b (positive = person).
  double decision(const std::vector<float>& features) const;

  int predict(const std::vector<float>& features) const {
    return decision(features) >= 0.0 ? 1 : -1;
  }

  double accuracy(const std::vector<std::vector<float>>& features,
                  const std::vector<int>& labels) const;

  bool trained() const { return !weights_.empty(); }
  const std::vector<double>& weights() const { return weights_; }
  double bias() const { return bias_; }
  const SvmParams& params() const { return params_; }

  /// Installs an externally provided hyperplane (deserialization). The
  /// model becomes inference-ready; training from here starts fresh.
  void setModel(std::vector<double> weights, double bias) {
    weights_ = std::move(weights);
    bias_ = bias;
  }

 private:
  SvmParams params_;
  std::vector<double> weights_;
  double bias_ = 0.0;
};

}  // namespace pcnn::svm
