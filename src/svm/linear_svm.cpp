#include "svm/linear_svm.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "common/rng.hpp"

namespace pcnn::svm {

LinearSvm::LinearSvm(const SvmParams& params) : params_(params) {
  if (params.C <= 0.0) {
    throw std::invalid_argument("LinearSvm: C must be positive");
  }
}

void LinearSvm::train(const std::vector<std::vector<float>>& features,
                      const std::vector<int>& labels) {
  if (features.empty() || features.size() != labels.size()) {
    throw std::invalid_argument("LinearSvm::train: bad dataset shape");
  }
  const std::size_t n = features.size();
  const std::size_t dim = features.front().size();
  for (const auto& row : features) {
    if (row.size() != dim) {
      throw std::invalid_argument("LinearSvm::train: ragged features");
    }
  }
  for (int label : labels) {
    if (label != 1 && label != -1) {
      throw std::invalid_argument("LinearSvm::train: labels must be +-1");
    }
  }

  // Augmented weight vector: [w ; b / biasScale].
  std::vector<double> w(dim + 1, 0.0);
  std::vector<double> alpha(n, 0.0);
  std::vector<double> qii(n);
  for (std::size_t i = 0; i < n; ++i) {
    double q = params_.biasScale * params_.biasScale;
    for (float v : features[i]) q += static_cast<double>(v) * v;
    qii[i] = q > 0.0 ? q : 1.0;
  }

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  Rng rng(params_.seed);

  for (int pass = 0; pass < params_.maxIterations; ++pass) {
    for (std::size_t i = n; i > 1; --i) {
      std::swap(order[i - 1],
                order[static_cast<std::size_t>(
                    rng.uniformInt(0, static_cast<int>(i) - 1))]);
    }
    double maxViolation = 0.0;
    for (std::size_t idx : order) {
      const auto& x = features[idx];
      const double y = labels[idx];
      double wx = w[dim] * params_.biasScale;
      for (std::size_t d = 0; d < dim; ++d) {
        wx += w[d] * static_cast<double>(x[d]);
      }
      const double gradient = y * wx - 1.0;
      double projected = gradient;
      if (alpha[idx] <= 0.0) {
        projected = std::min(gradient, 0.0);
      } else if (alpha[idx] >= params_.C) {
        projected = std::max(gradient, 0.0);
      }
      maxViolation = std::max(maxViolation, std::abs(projected));
      if (projected == 0.0) continue;
      const double oldAlpha = alpha[idx];
      alpha[idx] =
          std::clamp(oldAlpha - gradient / qii[idx], 0.0, params_.C);
      const double delta = (alpha[idx] - oldAlpha) * y;
      if (delta == 0.0) continue;
      for (std::size_t d = 0; d < dim; ++d) {
        w[d] += delta * static_cast<double>(x[d]);
      }
      w[dim] += delta * params_.biasScale;
    }
    if (maxViolation < params_.tolerance) break;
  }

  weights_.assign(w.begin(), w.begin() + static_cast<long>(dim));
  bias_ = w[dim] * params_.biasScale;
}

double LinearSvm::decision(const std::vector<float>& features) const {
  if (features.size() != weights_.size()) {
    throw std::invalid_argument("LinearSvm::decision: dimension mismatch");
  }
  double acc = bias_;
  for (std::size_t d = 0; d < features.size(); ++d) {
    acc += weights_[d] * static_cast<double>(features[d]);
  }
  return acc;
}

double LinearSvm::accuracy(const std::vector<std::vector<float>>& features,
                           const std::vector<int>& labels) const {
  if (features.empty() || features.size() != labels.size()) return 0.0;
  std::size_t correct = 0;
  for (std::size_t i = 0; i < features.size(); ++i) {
    if (predict(features[i]) == labels[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(features.size());
}

}  // namespace pcnn::svm
