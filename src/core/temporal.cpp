#include "core/temporal.hpp"

#include <algorithm>

#include "vision/geometry.hpp"

namespace pcnn::core {

std::vector<vision::Detection> TemporalSmoother::apply(
    const std::vector<vision::Detection>& detections) {
  std::vector<vision::Detection> out;
  out.reserve(detections.size());
  std::vector<bool> trackMatched(tracks_.size(), false);
  std::vector<Track> newTracks;

  for (const vision::Detection& det : detections) {
    int best = -1;
    float bestIou = params_.matchIou;
    for (std::size_t t = 0; t < tracks_.size(); ++t) {
      if (trackMatched[t]) continue;
      const float overlap = vision::iou(det.box, tracks_[t].box);
      if (overlap >= bestIou) {
        bestIou = overlap;
        best = static_cast<int>(t);
      }
    }
    vision::Detection smoothed = det;
    if (best >= 0) {
      Track& track = tracks_[static_cast<std::size_t>(best)];
      trackMatched[static_cast<std::size_t>(best)] = true;
      const float a = params_.alpha;
      track.box.x = a * det.box.x + (1.0f - a) * track.box.x;
      track.box.y = a * det.box.y + (1.0f - a) * track.box.y;
      track.box.w = a * det.box.w + (1.0f - a) * track.box.w;
      track.box.h = a * det.box.h + (1.0f - a) * track.box.h;
      track.missedFrames = 0;
      smoothed.box = track.box;
    } else {
      Track track;
      track.box = det.box;
      newTracks.push_back(track);
    }
    out.push_back(smoothed);
  }

  // Unmatched tracks age out; matched and newborn tracks carry over.
  std::vector<Track> kept;
  kept.reserve(tracks_.size() + newTracks.size());
  for (std::size_t t = 0; t < tracks_.size(); ++t) {
    if (trackMatched[t]) {
      kept.push_back(tracks_[t]);
    } else if (++tracks_[t].missedFrames <= params_.maxMissedFrames) {
      kept.push_back(tracks_[t]);
    }
  }
  kept.insert(kept.end(), newTracks.begin(), newTracks.end());
  tracks_ = std::move(kept);
  return out;
}

}  // namespace pcnn::core
