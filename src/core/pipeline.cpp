#include "core/pipeline.hpp"

#include <limits>
#include <stdexcept>
#include <utility>

#include "obs/obs.hpp"
#include "tn/faults.hpp"

namespace pcnn::core {

PartitionedPipeline::PartitionedPipeline(
    std::shared_ptr<extract::FeatureExtractor> extractor,
    const eedn::EednClassifierConfig& classifierConfig)
    : featureExtractor_(std::move(extractor)),
      classifier_(std::make_unique<eedn::EednClassifier>(classifierConfig)) {
  if (!featureExtractor_) {
    throw std::invalid_argument("PartitionedPipeline: null extractor");
  }
}

std::vector<std::vector<float>> PartitionedPipeline::extractAll(
    const std::vector<vision::Image>& windows) const {
  PCNN_SPAN_ARG("pipeline.extract", "windows", windows.size());
  auto features = featureExtractor_->batchFeatures(windows);
  if (features.size() != windows.size()) {
    throw std::logic_error(
        "PartitionedPipeline: batch extractor returned wrong count");
  }
  return features;
}

float PartitionedPipeline::trainClassifier(
    const std::vector<vision::Image>& windows, const std::vector<int>& labels,
    int epochs, float learningRate, float momentum, int batchSize) {
  if (windows.size() != labels.size() || windows.empty()) {
    throw std::invalid_argument("trainClassifier: bad dataset shape");
  }
  eedn::BinaryDataset data;
  data.labels = labels;
  data.features = extractAll(windows);
  PCNN_SPAN_ARG("pipeline.trainClassifier", "epochs", epochs);
  float loss = 0.0f;
  for (int epoch = 0; epoch < epochs; ++epoch) {
    loss = classifier_->trainEpoch(data, learningRate, momentum, batchSize);
  }
  return loss;
}

float PartitionedPipeline::score(const vision::Image& window) const {
  return classifier_->score(featureExtractor_->windowFeatures(window));
}

double PartitionedPipeline::evalAccuracy(
    const std::vector<vision::Image>& windows,
    const std::vector<int>& labels) const {
  if (windows.empty() || windows.size() != labels.size()) return 0.0;
  const auto features = extractAll(windows);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < windows.size(); ++i) {
    const int predicted = classifier_->score(features[i]) >= 0.0f ? 1 : -1;
    if (predicted == (labels[i] > 0 ? 1 : -1)) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(windows.size());
}

std::vector<float> PartitionedPipeline::scoreAllDegraded(
    const std::vector<vision::Image>& windows,
    DegradationReport* report) const {
  PCNN_SPAN_ARG("pipeline.scoreAllDegraded", "windows", windows.size());
  const tn::FaultCounts faultsBefore =
      report != nullptr ? tn::globalFaultCounts() : tn::FaultCounts{};
  constexpr float kLost = std::numeric_limits<float>::quiet_NaN();
  std::vector<float> scores(windows.size(), kLost);
  long lost = 0;
  bool batchOk = false;
  try {
    const auto features = featureExtractor_->batchFeatures(windows);
    if (features.size() == windows.size()) {
      for (std::size_t i = 0; i < windows.size(); ++i) {
        scores[i] = classifier_->score(features[i]);
      }
      batchOk = true;
    }
  } catch (const std::exception&) {
    // Fall through to the per-window path below.
  }
  if (!batchOk) {
    // The batch path failed somewhere; re-run window by window so only the
    // windows that actually fail are lost. Sequential on purpose: the
    // extractor may be stateful, and the fallback is the degraded path.
    for (std::size_t i = 0; i < windows.size(); ++i) {
      StatusOr<std::vector<float>> featuresOr =
          featureExtractor_->tryWindowFeatures(windows[i]);
      if (!featuresOr.ok()) {
        ++lost;
        continue;
      }
      try {
        scores[i] = classifier_->score(*featuresOr);
      } catch (const std::exception&) {
        ++lost;
      }
    }
  }
  if (lost > 0) {
    static obs::Counter& lostWindows =
        obs::counter("pipeline.windows_lost");
    lostWindows.add(lost);
  }
  if (report != nullptr) {
    report->windowsLost += lost;
    report->faults = tn::globalFaultCounts() - faultsBefore;
  }
  return scores;
}

parrot::ParrotHog trainParrotStage(const parrot::ParrotConfig& config,
                                   const parrot::GeneratorParams& genParams,
                                   int numSamples, int epochs,
                                   float learningRate) {
  parrot::ParrotHog hog(config);
  const parrot::OrientedSampleGenerator generator(genParams);
  hog.train(generator, numSamples, epochs, learningRate);
  return hog;
}

std::vector<float> rawPixelFeatures(const vision::Image& window) {
  return window.data();
}

ResourceBudget makeResourceBudget(const extract::ExtractorInfo& info,
                                  int classifierCores) {
  ResourceBudget budget;
  budget.classifierCores = classifierCores;
  if (info.paperCoresPerCell > 0) {
    budget.parrotCoresPerCell = info.paperCoresPerCell;
  } else if (info.coresPerCell > 0) {
    budget.parrotCoresPerCell = info.coresPerCell;
  }
  return budget;
}

std::unique_ptr<eedn::EednClassifier> makeAbsorbedClassifier(
    const ResourceBudget& budget, float tau, std::uint64_t seed) {
  // Raw 64x128 grayscale input. Sized so that its core estimate meets or
  // exceeds the partitioned pipeline's combined budget in our accounting
  // (the paper grants the monolithic network the combined 3888-core budget
  // of extractor + classifier; see EXPERIMENTS.md for the mapping between
  // the paper's counts and ours).
  eedn::EednClassifierConfig config;
  config.inputSize =
      budget.windowCellsX * 8 * budget.windowCellsY * 8;  // 8192 pixels
  config.groupInputSize = 126;
  config.outputsPerGroup = 24;
  config.hiddenWidths = {120, 120};
  config.outputPopulation = 8;
  config.tau = tau;
  config.seed = seed;
  return std::make_unique<eedn::EednClassifier>(config);
}

}  // namespace pcnn::core
