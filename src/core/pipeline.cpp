#include "core/pipeline.hpp"

#include <cstdio>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "eedn/serialize.hpp"
#include "obs/obs.hpp"
#include "obs/provenance.hpp"
#include "tn/faults.hpp"

namespace pcnn::core {

PartitionedPipeline::PartitionedPipeline(
    std::shared_ptr<extract::FeatureExtractor> extractor,
    const eedn::EednClassifierConfig& classifierConfig)
    : featureExtractor_(std::move(extractor)),
      classifier_(std::make_unique<eedn::EednClassifier>(classifierConfig)) {
  if (!featureExtractor_) {
    throw std::invalid_argument("PartitionedPipeline: null extractor");
  }
}

std::vector<std::vector<float>> PartitionedPipeline::extractAll(
    const std::vector<vision::Image>& windows) const {
  PCNN_SPAN_ARG("pipeline.extract", "windows", windows.size());
  auto features = featureExtractor_->batchFeatures(windows);
  if (features.size() != windows.size()) {
    throw std::logic_error(
        "PartitionedPipeline: batch extractor returned wrong count");
  }
  return features;
}

float PartitionedPipeline::trainClassifier(
    const std::vector<vision::Image>& windows, const std::vector<int>& labels,
    int epochs, float learningRate, float momentum, int batchSize) {
  if (windows.size() != labels.size() || windows.empty()) {
    throw std::invalid_argument("trainClassifier: bad dataset shape");
  }
  eedn::BinaryDataset data;
  data.labels = labels;
  data.features = extractAll(windows);
  PCNN_SPAN_ARG("pipeline.trainClassifier", "epochs", epochs);
  float loss = 0.0f;
  for (int epoch = 0; epoch < epochs; ++epoch) {
    loss = classifier_->trainEpoch(data, learningRate, momentum, batchSize);
  }
  return loss;
}

float PartitionedPipeline::score(const vision::Image& window) const {
  return classifier_->score(featureExtractor_->windowFeatures(window));
}

double PartitionedPipeline::evalAccuracy(
    const std::vector<vision::Image>& windows,
    const std::vector<int>& labels) const {
  if (windows.empty() || windows.size() != labels.size()) return 0.0;
  const auto features = extractAll(windows);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < windows.size(); ++i) {
    const int predicted = classifier_->score(features[i]) >= 0.0f ? 1 : -1;
    if (predicted == (labels[i] > 0 ? 1 : -1)) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(windows.size());
}

std::vector<float> PartitionedPipeline::scoreAllDegraded(
    const std::vector<vision::Image>& windows,
    DegradationReport* report) const {
  PCNN_SPAN_ARG("pipeline.scoreAllDegraded", "windows", windows.size());
  const tn::FaultCounts faultsBefore =
      report != nullptr ? tn::globalFaultCounts() : tn::FaultCounts{};
  constexpr float kLost = std::numeric_limits<float>::quiet_NaN();
  std::vector<float> scores(windows.size(), kLost);
  long lost = 0;
  bool batchOk = false;
  try {
    const auto features = featureExtractor_->batchFeatures(windows);
    if (features.size() == windows.size()) {
      for (std::size_t i = 0; i < windows.size(); ++i) {
        scores[i] = classifier_->score(features[i]);
      }
      batchOk = true;
    }
  } catch (const std::exception&) {
    // Fall through to the per-window path below.
  }
  if (!batchOk) {
    // The batch path failed somewhere; re-run window by window so only the
    // windows that actually fail are lost. Sequential on purpose: the
    // extractor may be stateful, and the fallback is the degraded path.
    for (std::size_t i = 0; i < windows.size(); ++i) {
      StatusOr<std::vector<float>> featuresOr =
          featureExtractor_->tryWindowFeatures(windows[i]);
      if (!featuresOr.ok()) {
        ++lost;
        continue;
      }
      try {
        scores[i] = classifier_->score(*featuresOr);
      } catch (const std::exception&) {
        ++lost;
      }
    }
  }
  if (lost > 0) {
    static obs::Counter& lostWindows =
        obs::counter("pipeline.windows_lost");
    lostWindows.add(lost);
  }
  if (report != nullptr) {
    report->windowsLost += lost;
    report->faults = tn::globalFaultCounts() - faultsBefore;
  }
  return scores;
}

namespace {

/// Manifest keys for the classifier half of a pipeline bundle (the
/// extractor half uses io::keys via recordExtractorManifest).
constexpr const char* kKeyInputSize = "classifier_input_size";
constexpr const char* kKeyGroupInputSize = "classifier_group_input_size";
constexpr const char* kKeyOutputsPerGroup = "classifier_outputs_per_group";
constexpr const char* kKeyHiddenWidths = "classifier_hidden_widths";
constexpr const char* kKeyOutputPopulation = "classifier_output_population";
constexpr const char* kKeyTau = "classifier_tau";
constexpr const char* kKeyInputScale = "classifier_input_scale";
constexpr const char* kKeySeed = "classifier_seed";

/// Shortest float rendering that round-trips through strtod.
std::string floatField(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  return buf;
}

std::string hiddenWidthsField(const std::vector<int>& widths) {
  std::string out;
  for (int w : widths) {
    if (!out.empty()) out += ',';
    out += std::to_string(w);
  }
  return out;
}

StatusOr<std::vector<int>> parseHiddenWidths(const std::string& field) {
  std::vector<int> widths;
  std::string token;
  std::istringstream in(field);
  while (std::getline(in, token, ',')) {
    if (token.empty()) continue;
    int value = 0;
    for (char c : token) {
      if (c < '0' || c > '9') {
        return Status::OutOfRange(
            "bundle manifest: unparsable hidden width \"" + token + "\"");
      }
      value = value * 10 + (c - '0');
      if (value > (1 << 20)) {
        return Status::OutOfRange("bundle manifest: hidden width \"" +
                                  token + "\" implausibly large");
      }
    }
    widths.push_back(value);
  }
  return widths;
}

Status readIntField(const io::Manifest& manifest, const char* key,
                    int& out) {
  if (manifest.find(key) == nullptr) return Status::Ok();
  StatusOr<long> value = manifest.getInt(key);
  if (!value.ok()) return value.status();
  out = static_cast<int>(value.value());
  return Status::Ok();
}

Status readFloatField(const io::Manifest& manifest, const char* key,
                      float& out) {
  if (manifest.find(key) == nullptr) return Status::Ok();
  StatusOr<double> value = manifest.getFloat(key);
  if (!value.ok()) return value.status();
  out = static_cast<float>(value.value());
  return Status::Ok();
}

}  // namespace

Status PartitionedPipeline::packBundle(
    io::Bundle& bundle, const extract::ExtractorOptions& extractorOptions) {
  if (Status status = extract::ExtractorRegistry::instance().packExtractor(
          bundle, *featureExtractor_, extractorOptions);
      !status.ok()) {
    return status;
  }

  const eedn::EednClassifierConfig& config = classifier_->config();
  io::Manifest& manifest = bundle.manifest();
  manifest.set(kKeyInputSize, std::to_string(config.inputSize));
  manifest.set(kKeyGroupInputSize, std::to_string(config.groupInputSize));
  manifest.set(kKeyOutputsPerGroup, std::to_string(config.outputsPerGroup));
  manifest.set(kKeyHiddenWidths, hiddenWidthsField(config.hiddenWidths));
  manifest.set(kKeyOutputPopulation,
               std::to_string(config.outputPopulation));
  manifest.set(kKeyTau, floatField(config.tau));
  manifest.set(kKeyInputScale, floatField(config.inputScale));
  manifest.set(kKeySeed, std::to_string(config.seed));
  manifest.set(io::keys::kGitSha, obs::provenance().gitSha);

  std::ostringstream net;
  const eedn::EednClassifier& classifier = *classifier_;
  if (Status status = eedn::trySaveNetwork(classifier.net(), net);
      !status.ok()) {
    return status;
  }
  bundle.setChunk(io::chunks::kEednNetwork, net.str());
  return Status::Ok();
}

Status PartitionedPipeline::trySaveBundle(
    const std::string& path,
    const extract::ExtractorOptions& extractorOptions) {
  io::Bundle bundle;
  if (Status status = packBundle(bundle, extractorOptions); !status.ok()) {
    return status;
  }
  return bundle.trySaveFile(path);
}

StatusOr<PartitionedPipeline> PartitionedPipeline::tryLoadBundle(
    const io::Bundle& bundle) {
  StatusOr<std::shared_ptr<extract::FeatureExtractor>> extractor =
      extract::ExtractorRegistry::instance().tryLoadExtractor(bundle);
  if (!extractor.ok()) return extractor.status();

  const io::Manifest& manifest = bundle.manifest();
  eedn::EednClassifierConfig config;
  config.inputSize = extractor.value()->featureDim();
  if (Status s = readIntField(manifest, kKeyInputSize, config.inputSize);
      !s.ok()) {
    return s;
  }
  if (Status s = readIntField(manifest, kKeyGroupInputSize,
                              config.groupInputSize);
      !s.ok()) {
    return s;
  }
  if (Status s = readIntField(manifest, kKeyOutputsPerGroup,
                              config.outputsPerGroup);
      !s.ok()) {
    return s;
  }
  if (Status s = readIntField(manifest, kKeyOutputPopulation,
                              config.outputPopulation);
      !s.ok()) {
    return s;
  }
  if (const std::string* widths = manifest.find(kKeyHiddenWidths)) {
    StatusOr<std::vector<int>> parsed = parseHiddenWidths(*widths);
    if (!parsed.ok()) return parsed.status();
    config.hiddenWidths = std::move(parsed).value();
  }
  if (Status s = readFloatField(manifest, kKeyTau, config.tau); !s.ok()) {
    return s;
  }
  if (Status s = readFloatField(manifest, kKeyInputScale, config.inputScale);
      !s.ok()) {
    return s;
  }
  if (manifest.find(kKeySeed) != nullptr) {
    StatusOr<long> seed = manifest.getInt(kKeySeed);
    if (!seed.ok()) return seed.status();
    config.seed = static_cast<std::uint64_t>(seed.value());
  }

  if (config.inputSize != extractor.value()->featureDim()) {
    return Status::FailedPrecondition(
        "bundle manifest: classifier input size " +
        std::to_string(config.inputSize) + " does not match the " +
        extractor.value()->name() + " extractor's feature dimension " +
        std::to_string(extractor.value()->featureDim()));
  }

  try {
    PartitionedPipeline pipeline(std::move(extractor).value(), config);
    if (const std::string* net = bundle.chunk(io::chunks::kEednNetwork)) {
      std::istringstream in(*net);
      if (Status status =
              eedn::tryLoadNetwork(pipeline.classifier_->net(), in);
          !status.ok()) {
        return status;
      }
    }
    return StatusOr<PartitionedPipeline>(std::move(pipeline));
  } catch (const std::invalid_argument& e) {
    return Status::InvalidArgument(std::string("tryLoadBundle: ") + e.what());
  } catch (const std::exception& e) {
    return Status::Internal(std::string("tryLoadBundle: ") + e.what());
  }
}

StatusOr<PartitionedPipeline> PartitionedPipeline::tryLoadBundleFile(
    const std::string& path) {
  StatusOr<io::Bundle> bundle = io::Bundle::tryLoadFile(path);
  if (!bundle.ok()) return bundle.status();
  return tryLoadBundle(bundle.value());
}

parrot::ParrotHog trainParrotStage(const parrot::ParrotConfig& config,
                                   const parrot::GeneratorParams& genParams,
                                   int numSamples, int epochs,
                                   float learningRate) {
  parrot::ParrotHog hog(config);
  const parrot::OrientedSampleGenerator generator(genParams);
  hog.train(generator, numSamples, epochs, learningRate);
  return hog;
}

std::vector<float> rawPixelFeatures(const vision::Image& window) {
  return window.data();
}

ResourceBudget makeResourceBudget(const extract::ExtractorInfo& info,
                                  int classifierCores) {
  ResourceBudget budget;
  budget.classifierCores = classifierCores;
  if (info.paperCoresPerCell > 0) {
    budget.parrotCoresPerCell = info.paperCoresPerCell;
  } else if (info.coresPerCell > 0) {
    budget.parrotCoresPerCell = info.coresPerCell;
  }
  return budget;
}

std::unique_ptr<eedn::EednClassifier> makeAbsorbedClassifier(
    const ResourceBudget& budget, float tau, std::uint64_t seed) {
  // Raw 64x128 grayscale input. Sized so that its core estimate meets or
  // exceeds the partitioned pipeline's combined budget in our accounting
  // (the paper grants the monolithic network the combined 3888-core budget
  // of extractor + classifier; see EXPERIMENTS.md for the mapping between
  // the paper's counts and ours).
  eedn::EednClassifierConfig config;
  config.inputSize =
      budget.windowCellsX * 8 * budget.windowCellsY * 8;  // 8192 pixels
  config.groupInputSize = 126;
  config.outputsPerGroup = 24;
  config.hiddenWidths = {120, 120};
  config.outputPopulation = 8;
  config.tau = tau;
  config.seed = seed;
  return std::make_unique<eedn::EednClassifier>(config);
}

}  // namespace pcnn::core
