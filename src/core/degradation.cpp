#include "core/degradation.hpp"

#include <limits>

#include "obs/flight.hpp"

namespace pcnn::core {

namespace {

/// Saturating add: a long-lived serving process merges per-frame reports
/// indefinitely, so the accumulated tallies clamp at the type maximum
/// instead of wrapping into signed-overflow UB.
long saturatingAdd(long a, long b) {
  if (b > 0 && a > std::numeric_limits<long>::max() - b) {
    return std::numeric_limits<long>::max();
  }
  return a + b;
}

}  // namespace

void DegradationReport::addSkip(int level, long windowsLostAtLevel,
                                Status status) {
  // First degradation entry triggers the flight-recorder auto-dump (if
  // armed), preserving the events leading up to the skip.
  obs::noteFaultEvent("degradation.level_skip");
  ++levelsSkipped;
  windowsLost = saturatingAdd(windowsLost, windowsLostAtLevel);
  if (skips.size() < kMaxSkips) {
    skips.push_back({level, windowsLostAtLevel, std::move(status)});
  }
}

void DegradationReport::merge(const DegradationReport& other) {
  faults.droppedSpikes =
      saturatingAdd(faults.droppedSpikes, other.faults.droppedSpikes);
  faults.deadCoreDrops =
      saturatingAdd(faults.deadCoreDrops, other.faults.deadCoreDrops);
  faults.stuckOnSpikes =
      saturatingAdd(faults.stuckOnSpikes, other.faults.stuckOnSpikes);
  faults.stuckOffSuppressed =
      saturatingAdd(faults.stuckOffSuppressed, other.faults.stuckOffSuppressed);
  faults.weightFlips =
      saturatingAdd(faults.weightFlips, other.faults.weightFlips);
  levelsSkipped += other.levelsSkipped;
  windowsLost = saturatingAdd(windowsLost, other.windowsLost);
  for (const LevelSkip& skip : other.skips) {
    if (skips.size() >= kMaxSkips) break;
    skips.push_back(skip);
  }
}

std::string DegradationReport::summary() const {
  if (!degraded()) return "healthy";
  std::string out = "degraded:";
  if (levelsSkipped > 0) {
    out += ' ';
    out += std::to_string(levelsSkipped);
    out += levelsSkipped == 1 ? " level skipped," : " levels skipped,";
  }
  if (windowsLost > 0) {
    out += ' ';
    out += std::to_string(windowsLost);
    out += " windows lost,";
  }
  out += ' ';
  out += std::to_string(faults.total());
  out += " fault events";
  if (faults.total() > 0) {
    out += " (drops=";
    out += std::to_string(faults.droppedSpikes);
    out += " dead=";
    out += std::to_string(faults.deadCoreDrops);
    out += " stuck_on=";
    out += std::to_string(faults.stuckOnSpikes);
    out += " stuck_off=";
    out += std::to_string(faults.stuckOffSuppressed);
    out += " flips=";
    out += std::to_string(faults.weightFlips);
    out += ')';
  }
  return out;
}

}  // namespace pcnn::core
