#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "core/degradation.hpp"
#include "eedn/classifier.hpp"
#include "extract/extractor.hpp"
#include "extract/registry.hpp"
#include "io/bundle.hpp"
#include "parrot/parrot.hpp"
#include "vision/image.hpp"

namespace pcnn::core {

/// Resource accounting for the three paradigms. Paper numbers (Sec. 5.1):
/// the Parrot extractor uses 8 cores per 8x8 cell -> 1024 cores for a
/// 64x128 window; the Eedn classifier uses 2864 cores; the Absorbed
/// monolithic network is granted the combined 3888 cores.
struct ResourceBudget {
  int windowCellsX = 8;
  int windowCellsY = 16;
  int parrotCoresPerCell = 8;
  int classifierCores = 2864;

  int cellsPerWindow() const { return windowCellsX * windowCellsY; }
  int parrotExtractorCores() const {
    return parrotCoresPerCell * cellsPerWindow();  // 1024 in the paper
  }
  int combinedCores() const {
    return parrotExtractorCores() + classifierCores;  // 3888 in the paper
  }
};

/// Budget derived from an extractor's own deployment metadata instead of
/// hard-coded constants: the per-cell core count comes from
/// ExtractorInfo::paperCoresPerCell (falling back to the mapped count,
/// then to the paper's parrot default when the extractor reports no
/// TrueNorth footprint).
ResourceBudget makeResourceBudget(const extract::ExtractorInfo& info,
                                  int classifierCores = 2864);

/// The paper's primary artifact: a *partitioned* network -- an explicit
/// feature-extraction stage (NApprox, Parrot, or classic HoG) feeding a
/// separately trained Eedn classification stage, the two co-trained as a
/// pipeline rather than absorbed into one monolithic network.
class PartitionedPipeline {
 public:
  /// Feature stage behind the polymorphic extractor layer (typically
  /// registry-constructed). Uses the extractor's native batch path for
  /// whole-dataset feature extraction.
  PartitionedPipeline(std::shared_ptr<extract::FeatureExtractor> extractor,
                      const eedn::EednClassifierConfig& classifierConfig);

  /// Extract features for every window, then train the classifier stage.
  /// Returns final-epoch mean loss.
  float trainClassifier(const std::vector<vision::Image>& windows,
                        const std::vector<int>& labels, int epochs,
                        float learningRate, float momentum = 0.9f,
                        int batchSize = 16);

  float score(const vision::Image& window) const;
  int predict(const vision::Image& window) const {
    return score(window) >= 0.0f ? 1 : -1;
  }
  double evalAccuracy(const std::vector<vision::Image>& windows,
                      const std::vector<int>& labels) const;

  /// Graceful whole-batch scoring: tries the extractor's native batch path
  /// first, and if anything in it fails, falls back to scoring windows one
  /// by one so a single poisoned window (or a simulator fault mid-batch)
  /// loses only itself. A lost window scores quiet NaN at its position --
  /// the output always has windows.size() entries in input order. When
  /// `report` is non-null it receives the lost-window count and the
  /// simulator fault activity observed during the call.
  std::vector<float> scoreAllDegraded(
      const std::vector<vision::Image>& windows,
      DegradationReport* report = nullptr) const;

  std::vector<float> features(const vision::Image& window) const {
    return featureExtractor_->windowFeatures(window);
  }
  eedn::EednClassifier& classifier() { return *classifier_; }

  const std::shared_ptr<extract::FeatureExtractor>& extractor() const {
    return featureExtractor_;
  }

  /// Packs the trained pipeline into a bundle: the manifest records the
  /// extractor spec + options, the classifier configuration and the build
  /// provenance (git SHA); the chunks carry the extractor state
  /// (chunks::kExtractorState) and the trained classifier network
  /// (chunks::kEednNetwork). `extractorOptions` must be the options the
  /// extractor was constructed with -- they are not recoverable from the
  /// built instance (the coding seed is consumed into RNG state).
  Status packBundle(io::Bundle& bundle,
                    const extract::ExtractorOptions& extractorOptions);

  /// packBundle + Bundle::trySaveFile.
  Status trySaveBundle(const std::string& path,
                       const extract::ExtractorOptions& extractorOptions);

  /// Reconstructs a trained pipeline from a bundle without re-running
  /// stage A (extractor pretraining) or stage B (classifier training):
  /// the extractor is rebuilt from the manifest spec + state chunk, the
  /// classifier from the manifest config + network chunk. A manifest
  /// whose classifier input size disagrees with the extractor's feature
  /// dimension is kFailedPrecondition.
  static StatusOr<PartitionedPipeline> tryLoadBundle(const io::Bundle& bundle);
  static StatusOr<PartitionedPipeline> tryLoadBundleFile(
      const std::string& path);

 private:
  std::vector<std::vector<float>> extractAll(
      const std::vector<vision::Image>& windows) const;

  std::shared_ptr<extract::FeatureExtractor> featureExtractor_;
  std::unique_ptr<eedn::EednClassifier> classifier_;
};

/// Builds and trains the Parrot feature extractor stage: stage A of the
/// co-training procedure (the classifier stage is stage B, trained on the
/// parrot's outputs by PartitionedPipeline::trainClassifier).
parrot::ParrotHog trainParrotStage(const parrot::ParrotConfig& config,
                                   const parrot::GeneratorParams& genParams,
                                   int numSamples, int epochs,
                                   float learningRate);

/// The Absorbed baseline: a monolithic pixels-to-decision Eedn classifier
/// given (at least) the combined resource budget of extractor + classifier
/// and trained on the same windows (Sec. 3.3 / 5.1). Returns a classifier
/// over raw 64x128 = 8192-pixel inputs.
std::unique_ptr<eedn::EednClassifier> makeAbsorbedClassifier(
    const ResourceBudget& budget, float tau = 0.5f, std::uint64_t seed = 99);

/// Flattens a window's raw pixels (the absorbed network's input).
std::vector<float> rawPixelFeatures(const vision::Image& window);

}  // namespace pcnn::core
