// GridDetector::detectBatch -- the video-rate detection path. A burst of
// same-sized frames shares the pyramid geometry and, when temporal reuse
// is on, persistent per-level cell grids, block grids, and window scores:
// each frame diffs against the previous one at tile granularity and only
// the dirty tiles recompute their cell histograms, affected block
// normalizations, and window scores. The reference per-frame path
// (PCNN_TEMPORAL=off) stays bitwise-identical to detect().
//
// Why the reused scan matches the full scan bitwise (deterministic
// backends; see DESIGN.md Section 5g for the full argument):
//  - resizeBilinearInto refreshes level pixels with the exact per-pixel
//    arithmetic of resizeBilinear, and pixels outside every refreshed
//    rect were computed from unchanged source pixels;
//  - cell histograms depend only on the cell's pixels plus a 1-px
//    gradient border, and tryUpdateCellGrid recomputes with one cell of
//    context (extended to the image border at grid edges, where clamping
//    then behaves identically);
//  - each 2x2 block depends only on its own cells; updateBlocks dilates
//    the dirty cell set by one cell left/up;
//  - a window's score depends only on its covered cells, and every window
//    covering a dirty cell is rescored (clean windows keep the cached
//    score the full scan would recompute to the same bits);
//  - detections are emitted from the score grid in the same row-major
//    level order as the sequential scan, so NMS sees an identical input.

#include "core/detector.hpp"

#include <cmath>
#include <cstring>
#include <limits>
#include <utility>

#include "common/env.hpp"
#include "common/parallel.hpp"
#include "core/temporal.hpp"
#include "obs/flight.hpp"
#include "obs/obs.hpp"

namespace pcnn::core {

namespace {

/// Batch-stage instruments shared by every detector instance.
struct BatchMetrics {
  obs::Counter& frames = obs::counter("detect.frames");
  obs::Counter& tilesReused = obs::counter("detect.tiles_reused");
  obs::Counter& tilesRecomputed = obs::counter("detect.tiles_recomputed");
  obs::Counter& windowsRescored = obs::counter("detect.windows_rescored");
  obs::Counter& windowsReused = obs::counter("detect.windows_reused");
  obs::Counter& levelsDegraded = obs::counter("detect.level.degraded");
  obs::Counter& windowsLost = obs::counter("detect.windows_lost");
  /// Deliberate quality loss (shed / deadline-abandoned levels), kept
  /// separate from failure-driven degradation. Shared names with the
  /// single-scene path in detector.cpp (the registry hands back the same
  /// counters).
  obs::Counter& levelsShed = obs::counter("detect.level.shed");
  obs::Counter& levelsExpired = obs::counter("detect.level.deadline");
  /// Fraction of tiles served from the temporal cache on the most recent
  /// frame, and the most recent frame's instantaneous rate; both are
  /// live-telemetry signals for the streaming exporter.
  obs::Gauge& tileHitRate = obs::gauge("detect.tile_hit_rate");
  obs::Gauge& frameFps = obs::gauge("detect.frame_fps");
  obs::LatencyHistogram& frameUs = obs::histogram("detect.frame_us");
  static BatchMetrics& instance() {
    static BatchMetrics m;
    return m;
  }
};

constexpr float kLostScore = -std::numeric_limits<float>::infinity();

inline int ceilDiv(int a, int b) { return (a + b - 1) / b; }

/// A half-open pixel rectangle (dirty-region bookkeeping).
struct PxRect {
  int x0 = 0, y0 = 0, x1 = 0, y1 = 0;
};

}  // namespace

/// Everything detectBatch keeps alive between frames. One per detector;
/// sized by the first frame's pyramid.
struct GridDetector::TemporalCache {
  explicit TemporalCache(const TemporalSmootherParams& smootherParams)
      : smoother(smootherParams) {}

  struct Level {
    vision::Image image;     ///< the level's (resized) pixels
    float scale = 1.0f;      ///< level-to-scene coordinate scale
    hog::CellGrid grid;      ///< persistent cell histograms
    hog::BlockGrid blocks;   ///< persistent normalized blocks (kBlockNorm)
    std::vector<float> scores;  ///< spanY * spanX cached window scores
    int spanX = 0;
    int spanY = 0;
    bool valid = false;      ///< false -> full recompute next frame
  };

  vision::Image scene;       ///< the previous frame, for tile diffing
  std::vector<Level> levels;
  bool valid = false;        ///< pyramid geometry initialized and current
  TemporalSmoother smoother;
};

void GridDetector::TemporalCacheDeleter::operator()(
    TemporalCache* cache) const {
  delete cache;
}

GridDetector::~GridDetector() = default;

void GridDetector::resetTemporalCache() { temporal_.reset(); }

namespace {

/// Scans every window of a level into `scores` (parallel rows, each row a
/// disjoint slice -- deterministic for any thread count). Windows whose
/// feature assembly or scoring throws keep kLostScore and are tallied.
void scoreAllWindows(const extract::FeatureExtractor& extractor,
                     const WindowScorer& scorer, bool blockPath,
                     const hog::CellGrid& grid, const hog::BlockGrid& blocks,
                     auto& lc,
                     bool parallelScan, long& windowsLost) {
  lc.scores.assign(static_cast<std::size_t>(lc.spanX) * lc.spanY,
                   kLostScore);
  std::vector<long> rowLost(static_cast<std::size_t>(lc.spanY), 0);
  auto scanRow = [&](long wy) {
    float* row = lc.scores.data() + static_cast<std::size_t>(wy) * lc.spanX;
    for (int wx = 0; wx < lc.spanX; ++wx) {
      try {
        const std::vector<float> features =
            blockPath
                ? extractor.windowFromBlocks(blocks, wx, static_cast<int>(wy))
                : extractor.windowFromGrid(grid, wx, static_cast<int>(wy));
        row[wx] = scorer(features);
      } catch (const std::exception&) {
        ++rowLost[static_cast<std::size_t>(wy)];
      }
    }
  };
  if (parallelScan) {
    parallelFor(0, lc.spanY, scanRow);
  } else {
    for (int wy = 0; wy < lc.spanY; ++wy) scanRow(wy);
  }
  for (long lost : rowLost) windowsLost += lost;
}

/// Appends the level's above-threshold windows in row-major order --
/// the same order the sequential scan emits, which is what keeps the NMS
/// input identical between the cached and full paths.
void emitLevelDetections(const auto& lc,
                         const GridDetectorParams& params, float threshold,
                         std::vector<vision::Detection>& out) {
  const float cellPx = static_cast<float>(params.cellSize) * lc.scale;
  const float winW =
      static_cast<float>(params.windowCellsX * params.cellSize) * lc.scale;
  const float winH =
      static_cast<float>(params.windowCellsY * params.cellSize) * lc.scale;
  for (int wy = 0; wy < lc.spanY; ++wy) {
    const float* row =
        lc.scores.data() + static_cast<std::size_t>(wy) * lc.spanX;
    for (int wx = 0; wx < lc.spanX; ++wx) {
      if (row[wx] < threshold) continue;
      vision::Detection det;
      det.score = row[wx];
      det.box.x = static_cast<float>(wx) * cellPx;
      det.box.y = static_cast<float>(wy) * cellPx;
      det.box.w = winW;
      det.box.h = winH;
      out.push_back(det);
    }
  }
}

/// Diffs two same-sized frames at tile granularity. Whole rows are
/// compared first (one memcmp per row -- almost every row of a
/// mostly-static scene is untouched); only rows that differ get per-tile
/// segment checks. Returns the dirty bitmap (tilesY x tilesX, row-major).
std::vector<std::uint8_t> diffSceneTiles(const vision::Image& prev,
                                         const vision::Image& next,
                                         int tilePx, int tilesX, int tilesY) {
  std::vector<std::uint8_t> dirty(
      static_cast<std::size_t>(tilesX) * tilesY, 0);
  const int w = prev.width();
  const int h = prev.height();
  const float* a = prev.data().data();
  const float* b = next.data().data();
  for (int y = 0; y < h; ++y) {
    const float* ra = a + static_cast<std::size_t>(y) * w;
    const float* rb = b + static_cast<std::size_t>(y) * w;
    if (std::memcmp(ra, rb, sizeof(float) * static_cast<std::size_t>(w)) ==
        0) {
      continue;
    }
    std::uint8_t* tileRow =
        dirty.data() + static_cast<std::size_t>(y / tilePx) * tilesX;
    for (int tx = 0; tx < tilesX; ++tx) {
      if (tileRow[tx]) continue;
      const int x0 = tx * tilePx;
      const int x1 = x0 + tilePx < w ? x0 + tilePx : w;
      if (std::memcmp(ra + x0, rb + x0,
                      sizeof(float) * static_cast<std::size_t>(x1 - x0)) !=
          0) {
        tileRow[tx] = 1;
      }
    }
  }
  return dirty;
}

/// Merges horizontal runs of dirty tiles into pixel rectangles.
std::vector<PxRect> dirtyTileRuns(const std::vector<std::uint8_t>& dirty,
                                  int tilePx, int tilesX, int tilesY,
                                  int width, int height) {
  std::vector<PxRect> rects;
  for (int ty = 0; ty < tilesY; ++ty) {
    const std::uint8_t* row =
        dirty.data() + static_cast<std::size_t>(ty) * tilesX;
    int tx = 0;
    while (tx < tilesX) {
      if (!row[tx]) {
        ++tx;
        continue;
      }
      int end = tx;
      while (end < tilesX && row[end]) ++end;
      PxRect r;
      r.x0 = tx * tilePx;
      r.x1 = end * tilePx < width ? end * tilePx : width;
      r.y0 = ty * tilePx;
      r.y1 = (ty + 1) * tilePx < height ? (ty + 1) * tilePx : height;
      rects.push_back(r);
      tx = end;
    }
  }
  return rects;
}

/// Maps a dirty scene rect into the level's pixel space, conservatively
/// covering every level pixel whose bilinear support touches the rect
/// (plus a 1-px guard for float rounding).
PxRect mapRectToLevel(const PxRect& r, const vision::Image& scene,
                      const vision::Image& level) {
  const float sx = static_cast<float>(scene.width()) / level.width();
  const float sy = static_cast<float>(scene.height()) / level.height();
  PxRect out;
  out.x0 = static_cast<int>(std::floor(
               (static_cast<float>(r.x0) - 0.5f) / sx - 0.5f)) -
           1;
  out.y0 = static_cast<int>(std::floor(
               (static_cast<float>(r.y0) - 0.5f) / sy - 0.5f)) -
           1;
  out.x1 = static_cast<int>(std::ceil(
               (static_cast<float>(r.x1) + 0.5f) / sx - 0.5f)) +
           1;
  out.y1 = static_cast<int>(std::ceil(
               (static_cast<float>(r.y1) + 0.5f) / sy - 0.5f)) +
           1;
  out.x0 = out.x0 > 0 ? out.x0 : 0;
  out.y0 = out.y0 > 0 ? out.y0 : 0;
  out.x1 = out.x1 < level.width() ? out.x1 : level.width();
  out.y1 = out.y1 < level.height() ? out.y1 : level.height();
  return out;
}

}  // namespace

BatchDetectResult GridDetector::detectBatch(
    const std::vector<vision::Image>& frames) {
  return detectBatch(frames, BatchOptions{}, nullptr);
}

BatchDetectResult GridDetector::detectBatch(
    const std::vector<vision::Image>& frames, const BatchOptions& options,
    std::vector<DegradationReport>* reports) {
  return detectBatch(static_cast<int>(frames.size()),
                     [&frames](int index) {
                       return frames[static_cast<std::size_t>(index)];
                     },
                     options, reports);
}

BatchDetectResult GridDetector::detectBatch(int numFrames,
                                            const FrameProvider& frames) {
  return detectBatch(numFrames, frames, BatchOptions{}, nullptr);
}

BatchDetectResult GridDetector::detectBatch(
    int numFrames, const FrameProvider& frames, const BatchOptions& options,
    std::vector<DegradationReport>* reports) {
  PCNN_SPAN_ARG("detect.batch", "frames", numFrames);
  BatchMetrics& metrics = BatchMetrics::instance();
  const bool temporalOn =
      params_.temporal.enabled && env::flag("PCNN_TEMPORAL", true);
  const bool smoothOn = temporalOn && params_.temporal.smooth;
  BatchDetectResult result;
  result.temporalEnabled = temporalOn;
  result.frames.reserve(static_cast<std::size_t>(numFrames > 0 ? numFrames
                                                               : 0));
  if (reports != nullptr) {
    reports->assign(static_cast<std::size_t>(numFrames > 0 ? numFrames : 0),
                    DegradationReport{});
  }
  if (!temporal_) {
    TemporalSmootherParams sp;
    sp.alpha = params_.temporal.smoothingAlpha;
    sp.matchIou = params_.temporal.matchIou;
    temporal_.reset(new TemporalCache(sp));
  }
  for (int f = 0; f < numFrames; ++f) {
    const vision::Image frame = frames(f);
    PCNN_SPAN_ARG("detect.frame", "frame", f);
    metrics.frames.add();
    const bool measure = obs::metricsEnabled();
    const double frameStartUs = measure ? obs::nowMicros() : 0.0;
    DegradationReport* report =
        reports != nullptr ? &(*reports)[static_cast<std::size_t>(f)]
                           : nullptr;
    const double deadlineUs =
        static_cast<std::size_t>(f) < options.deadlineUs.size()
            ? options.deadlineUs[static_cast<std::size_t>(f)]
            : 0.0;
    FrameResult fr;
    if (!temporalOn) {
      // The reference path: exactly the single-scene pipeline per frame
      // (bitwise-identical detections at any thread count, no smoothing).
      fr.stats.fullRecompute = true;
      DetectOptions frameOptions = options.detect;
      if (deadlineUs > 0.0) {
        // Fold the frame's absolute deadline into the cancel hook, which
        // detectRaw polls between pyramid levels.
        std::function<bool()> userCancel = frameOptions.cancel;
        frameOptions.cancel = [userCancel, deadlineUs]() {
          return (userCancel && userCancel()) ||
                 obs::nowMicros() > deadlineUs;
        };
      }
      fr.detections =
          detect(frame, params_.scoreThreshold, report, frameOptions);
    } else {
      const tn::FaultCounts faultsBefore =
          report != nullptr ? tn::globalFaultCounts() : tn::FaultCounts{};
      std::vector<vision::Detection> raw = detectFrameTemporal(
          frame, fr.stats, options.detect, deadlineUs, report);
      if (report != nullptr) {
        report->faults = tn::globalFaultCounts() - faultsBefore;
      }
      {
        PCNN_SPAN_ARG("detect.nms", "candidates", raw.size());
        fr.detections = vision::nonMaximumSuppression(std::move(raw),
                                                      params_.nmsEpsilon);
      }
      if (smoothOn) {
        fr.detections = temporal_->smoother.apply(fr.detections);
      }
    }
    if (measure) {
      const double frameUs = obs::nowMicros() - frameStartUs;
      metrics.frameUs.record(frameUs);
      metrics.frameFps.set(frameUs > 0.0 ? 1e6 / frameUs : 0.0);
      const long tiles = fr.stats.tilesReused + fr.stats.tilesRecomputed;
      if (tiles > 0) {
        metrics.tileHitRate.set(static_cast<double>(fr.stats.tilesReused) /
                                static_cast<double>(tiles));
      }
    }
    result.frames.push_back(std::move(fr));
  }
  return result;
}

std::vector<vision::Detection> GridDetector::detectFrameTemporal(
    const vision::Image& frame, FrameStats& stats,
    const DetectOptions& options, double deadlineUs,
    DegradationReport* report) {
  BatchMetrics& metrics = BatchMetrics::instance();
  TemporalCache& cache = *temporal_;
  const float threshold = params_.scoreThreshold;
  const bool blockPath =
      featureExtractor_->layout() == extract::FeatureLayout::kBlockNorm;
  const int cell = params_.cellSize;
  const int tileCells =
      params_.temporal.tileCells > 0 ? params_.temporal.tileCells : 1;
  const int tilePx = tileCells * cell;
  std::vector<vision::Detection> detections;

  // Cold start (or a stream whose dimensions changed): rebuild the
  // pyramid geometry; every level then takes the full-compute branch.
  const bool cold = !cache.valid || cache.scene.width() != frame.width() ||
                    cache.scene.height() != frame.height();
  if (cold) {
    cache.levels.clear();
    vision::PyramidParams pp = params_.pyramid;
    pp.minWidth = params_.windowCellsX * cell;
    pp.minHeight = params_.windowCellsY * cell;
    std::vector<vision::PyramidLevel> pyramid;
    {
      PCNN_SPAN("detect.pyramid");
      pyramid = vision::buildPyramid(frame, pp);
    }
    cache.levels.resize(pyramid.size());
    for (std::size_t li = 0; li < pyramid.size(); ++li) {
      cache.levels[li].image = std::move(pyramid[li].image);
      cache.levels[li].scale = pyramid[li].scale;
      cache.levels[li].valid = false;
    }
    stats.fullRecompute = true;
  }

  // Tile-granular scene diff (warm frames only).
  std::vector<PxRect> sceneDirty;
  if (!cold) {
    const int tilesX = ceilDiv(frame.width(), tilePx);
    const int tilesY = ceilDiv(frame.height(), tilePx);
    const std::vector<std::uint8_t> dirtyTiles =
        diffSceneTiles(cache.scene, frame, tilePx, tilesX, tilesY);
    sceneDirty = dirtyTileRuns(dirtyTiles, tilePx, tilesX, tilesY,
                               frame.width(), frame.height());
  }

  long levelIndex = -1;
  bool abandoned = false;  // the deadline/cancel hook fired mid-frame
  for (TemporalCache::Level& lc : cache.levels) {
    ++levelIndex;
    PCNN_SPAN_ARG("detect.level", "level", levelIndex);
    const int cellsX = lc.image.width() / cell;
    const int cellsY = lc.image.height() / cell;
    const int tilesAcross = ceilDiv(cellsX, tileCells);
    const int tilesDown = ceilDiv(cellsY, tileCells);
    const long levelTiles = static_cast<long>(tilesAcross) * tilesDown;
    lc.spanX = cellsX - params_.windowCellsX + 1;
    lc.spanY = cellsY - params_.windowCellsY + 1;
    if (lc.spanX <= 0 || lc.spanY <= 0) continue;
    const long levelWindowSpan =
        static_cast<long>(lc.spanX) * static_cast<long>(lc.spanY);

    // Deliberate shedding and deadline abandonment (the serving ladder).
    // A skipped level's cached grid goes stale against the live stream, so
    // it is invalidated and rebuilds from the current frame when the
    // ladder re-enables it.
    if (levelIndex < options.skipFinestLevels) {
      metrics.levelsShed.add();
      lc.valid = false;
      if (report != nullptr) {
        report->addSkip(static_cast<int>(levelIndex), levelWindowSpan,
                        Status::Unavailable("detect: level shed by caller"));
      }
      continue;
    }
    if (!abandoned &&
        ((options.cancel && options.cancel()) ||
         (deadlineUs > 0.0 && obs::nowMicros() > deadlineUs))) {
      abandoned = true;
    }
    if (abandoned) {
      metrics.levelsExpired.add();
      lc.valid = false;
      if (report != nullptr) {
        report->addSkip(static_cast<int>(levelIndex), levelWindowSpan,
                        Status::DeadlineExceeded(
                            "detect: level abandoned past deadline"));
      }
      continue;
    }

    auto skipLevel = [&](Status status) {
      PCNN_SPAN_ARG("detect.level.degraded", "level", levelIndex);
      obs::noteFaultEvent("detect.level.degraded");
      metrics.levelsDegraded.add();
      lc.valid = false;  // rebuilt from scratch on the next frame
      if (report != nullptr) {
        report->addSkip(static_cast<int>(levelIndex), levelWindowSpan,
                        std::move(status));
      }
    };

    if (!lc.valid) {
      // Full compute: cold cache, or the level was invalidated by a
      // failed incremental update or a shed/abandoned scan. On a warm
      // cache the level's pixels are stale (the incremental splice only
      // runs for valid levels), so refresh the whole level from the live
      // frame first -- resizeBilinearInto over the full rect reproduces
      // buildPyramid's resize bit for bit.
      if (!cold) {
        if (levelIndex == 0) {
          std::memcpy(&lc.image.at(0, 0), frame.data().data(),
                      sizeof(float) *
                          static_cast<std::size_t>(frame.width()) *
                          static_cast<std::size_t>(frame.height()));
        } else {
          vision::resizeBilinearInto(frame, lc.image, 0, 0,
                                     lc.image.width(), lc.image.height());
        }
      }
      {
        PCNN_SPAN("detect.cellGrid");
        obs::ScopedTimer timer(cellGridUs());
        StatusOr<hog::CellGrid> gridOr =
            featureExtractor_->tryCellGrid(lc.image);
        if (!gridOr.ok()) {
          skipLevel(gridOr.status());
          continue;
        }
        lc.grid = std::move(gridOr).value();
      }
      if (blockPath) {
        PCNN_SPAN("detect.blockGrid");
        try {
          lc.blocks = featureExtractor_->prepareBlocks(lc.grid);
        } catch (const std::exception& e) {
          skipLevel(
              Status::Internal(std::string("prepareBlocks: ") + e.what()));
          continue;
        }
      }
      const long levelWindows =
          static_cast<long>(lc.spanX) * static_cast<long>(lc.spanY);
      PCNN_SPAN_ARG("detect.scan", "windows", levelWindows);
      long lost = 0;
      scoreAllWindows(*featureExtractor_, scorer_, blockPath, lc.grid,
                      lc.blocks, lc, params_.parallelScan, lost);
      if (lost > 0) {
        metrics.windowsLost.add(lost);
        if (report != nullptr) report->windowsLost += lost;
      }
      lc.valid = true;
      stats.tilesRecomputed += levelTiles;
      stats.windowsRescored += levelWindows;
      metrics.tilesRecomputed.add(levelTiles);
      metrics.windowsRescored.add(levelWindows);
      emitLevelDetections(lc, params_, threshold, detections);
      continue;
    }

    // Incremental path: refresh the level's pixels under the dirty scene
    // rects, mark the tiles whose cells they touch, and recompute only
    // those.
    std::vector<std::uint8_t> dirtyTiles(
        static_cast<std::size_t>(tilesAcross) * tilesDown, 0);
    bool anyDirty = false;
    for (const PxRect& sceneRect : sceneDirty) {
      PxRect r;
      if (levelIndex == 0) {
        // Level 0 is a verbatim copy of the scene: splice the rows.
        r = sceneRect;
        const float* src = frame.data().data();
        for (int y = r.y0; y < r.y1; ++y) {
          std::memcpy(&lc.image.at(r.x0, y),
                      src + static_cast<std::size_t>(y) * frame.width() + r.x0,
                      sizeof(float) * static_cast<std::size_t>(r.x1 - r.x0));
        }
      } else {
        r = mapRectToLevel(sceneRect, frame, lc.image);
        if (r.x0 >= r.x1 || r.y0 >= r.y1) continue;
        vision::resizeBilinearInto(frame, lc.image, r.x0, r.y0, r.x1, r.y1);
      }
      // The gradient stencil reads 1 px around a cell, so a changed pixel
      // dirties every cell within 1 px -- then tiles containing them.
      const int cx0 = (r.x0 > 0 ? r.x0 - 1 : 0) / cell;
      const int cy0 = (r.y0 > 0 ? r.y0 - 1 : 0) / cell;
      const int cx1 = std::min(cellsX, ceilDiv(r.x1 + 1, cell));
      const int cy1 = std::min(cellsY, ceilDiv(r.y1 + 1, cell));
      if (cx0 >= cx1 || cy0 >= cy1) continue;
      for (int ty = cy0 / tileCells; ty < ceilDiv(cy1, tileCells); ++ty) {
        for (int tx = cx0 / tileCells; tx < ceilDiv(cx1, tileCells); ++tx) {
          dirtyTiles[static_cast<std::size_t>(ty) * tilesAcross + tx] = 1;
          anyDirty = true;
        }
      }
    }

    const long levelWindows =
        static_cast<long>(lc.spanX) * static_cast<long>(lc.spanY);
    if (!anyDirty) {
      // Nothing under this level changed: every tile and window reused.
      stats.tilesReused += levelTiles;
      stats.windowsReused += levelWindows;
      metrics.tilesReused.add(levelTiles);
      metrics.windowsReused.add(levelWindows);
      emitLevelDetections(lc, params_, threshold, detections);
      continue;
    }

    // Merge dirty tiles into per-row cell rects and refresh cells/blocks.
    std::vector<extract::CellRect> cellRects;
    long dirtyTileCount = 0;
    for (int ty = 0; ty < tilesDown; ++ty) {
      int tx = 0;
      while (tx < tilesAcross) {
        if (!dirtyTiles[static_cast<std::size_t>(ty) * tilesAcross + tx]) {
          ++tx;
          continue;
        }
        int end = tx;
        while (end < tilesAcross &&
               dirtyTiles[static_cast<std::size_t>(ty) * tilesAcross + end]) {
          ++end;
        }
        dirtyTileCount += end - tx;
        extract::CellRect rect;
        rect.cx0 = tx * tileCells;
        rect.cx1 = std::min(cellsX, end * tileCells);
        rect.cy0 = ty * tileCells;
        rect.cy1 = std::min(cellsY, (ty + 1) * tileCells);
        cellRects.push_back(rect);
        tx = end;
      }
    }
    {
      PCNN_SPAN("detect.cellGrid");
      obs::ScopedTimer timer(cellGridUs());
      StatusOr<long> updated = featureExtractor_->tryUpdateCellGrid(
          lc.image, cellRects, lc.grid);
      if (!updated.ok()) {
        skipLevel(updated.status());
        continue;
      }
    }
    if (blockPath) {
      PCNN_SPAN("detect.blockGrid");
      try {
        featureExtractor_->updateBlocks(lc.grid, cellRects, lc.blocks);
      } catch (const std::exception& e) {
        skipLevel(
            Status::Internal(std::string("updateBlocks: ") + e.what()));
        continue;
      }
    }

    // Dirty-window mask via 2-D prefix sums over the tile bitmap: a
    // window is rescored iff any tile intersecting its cell footprint is
    // dirty.
    std::vector<int> prefix(
        static_cast<std::size_t>(tilesDown + 1) * (tilesAcross + 1), 0);
    for (int ty = 0; ty < tilesDown; ++ty) {
      for (int tx = 0; tx < tilesAcross; ++tx) {
        prefix[static_cast<std::size_t>(ty + 1) * (tilesAcross + 1) + tx +
               1] =
            prefix[static_cast<std::size_t>(ty) * (tilesAcross + 1) + tx +
                   1] +
            prefix[static_cast<std::size_t>(ty + 1) * (tilesAcross + 1) +
                   tx] -
            prefix[static_cast<std::size_t>(ty) * (tilesAcross + 1) + tx] +
            dirtyTiles[static_cast<std::size_t>(ty) * tilesAcross + tx];
      }
    }
    auto windowDirty = [&](int wx, int wy) {
      const int txa = wx / tileCells;
      const int txb = (wx + params_.windowCellsX - 1) / tileCells;
      const int tya = wy / tileCells;
      const int tyb = (wy + params_.windowCellsY - 1) / tileCells;
      const int sum =
          prefix[static_cast<std::size_t>(tyb + 1) * (tilesAcross + 1) +
                 txb + 1] -
          prefix[static_cast<std::size_t>(tya) * (tilesAcross + 1) + txb +
                 1] -
          prefix[static_cast<std::size_t>(tyb + 1) * (tilesAcross + 1) +
                 txa] +
          prefix[static_cast<std::size_t>(tya) * (tilesAcross + 1) + txa];
      return sum > 0;
    };

    // Rescore only the dirty windows; rows are disjoint score slices, so
    // the parallel loop is deterministic for any thread count.
    std::vector<long> rowRescored(static_cast<std::size_t>(lc.spanY), 0);
    std::vector<long> rowLost(static_cast<std::size_t>(lc.spanY), 0);
    auto rescanRow = [&](long wy) {
      float* row =
          lc.scores.data() + static_cast<std::size_t>(wy) * lc.spanX;
      for (int wx = 0; wx < lc.spanX; ++wx) {
        if (!windowDirty(wx, static_cast<int>(wy))) continue;
        ++rowRescored[static_cast<std::size_t>(wy)];
        try {
          const std::vector<float> features =
              blockPath ? featureExtractor_->windowFromBlocks(
                              lc.blocks, wx, static_cast<int>(wy))
                        : featureExtractor_->windowFromGrid(
                              lc.grid, wx, static_cast<int>(wy));
          row[wx] = scorer_(features);
        } catch (const std::exception&) {
          row[wx] = kLostScore;
          ++rowLost[static_cast<std::size_t>(wy)];
        }
      }
    };
    {
      PCNN_SPAN_ARG("detect.scan", "windows", levelWindows);
      if (params_.parallelScan) {
        parallelFor(0, lc.spanY, rescanRow);
      } else {
        for (int wy = 0; wy < lc.spanY; ++wy) rescanRow(wy);
      }
    }
    long rescored = 0, lost = 0;
    for (long r : rowRescored) rescored += r;
    for (long l : rowLost) lost += l;
    if (lost > 0) {
      metrics.windowsLost.add(lost);
      if (report != nullptr) report->windowsLost += lost;
    }
    stats.tilesRecomputed += dirtyTileCount;
    stats.tilesReused += levelTiles - dirtyTileCount;
    stats.windowsRescored += rescored;
    stats.windowsReused += levelWindows - rescored;
    metrics.tilesRecomputed.add(dirtyTileCount);
    metrics.tilesReused.add(levelTiles - dirtyTileCount);
    metrics.windowsRescored.add(rescored);
    metrics.windowsReused.add(levelWindows - rescored);
    emitLevelDetections(lc, params_, threshold, detections);
  }

  cache.scene = frame;
  cache.valid = true;
  return detections;
}

}  // namespace pcnn::core
