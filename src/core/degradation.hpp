#pragma once

#include <string>
#include <vector>

#include "common/status.hpp"
#include "tn/faults.hpp"

namespace pcnn::core {

/// One pyramid level the detector had to abandon.
struct LevelSkip {
  int level = 0;        ///< pyramid level index
  long windowsLost = 0; ///< windows that level would have scanned
  Status status;        ///< why the level was poisoned
};

/// Structured account of everything a degraded-but-surviving operation had
/// to give up: fault events the TrueNorth simulator injected while it ran,
/// pyramid levels the detector skipped, and windows whose features could
/// not be extracted or scored. Surfaced by GridDetector::detect(...,
/// DegradationReport*) and PartitionedPipeline::scoreAllDegraded so
/// callers can quantify quality loss instead of discovering it as a crash.
struct DegradationReport {
  /// Fault events injected during the operation (delta of
  /// tn::globalFaultCounts() across it; zeros in fault-free runs).
  tn::FaultCounts faults;
  int levelsSkipped = 0;
  long windowsLost = 0;
  /// Per-level detail for skipped pyramid levels (capped; see kMaxSkips).
  std::vector<LevelSkip> skips;

  /// Cap on stored per-level detail so a pathologically failing extractor
  /// cannot balloon the report; levelsSkipped keeps the true count.
  static constexpr std::size_t kMaxSkips = 32;

  bool degraded() const {
    return levelsSkipped > 0 || windowsLost > 0 || faults.total() > 0;
  }

  void addSkip(int level, long windowsLostAtLevel, Status status);
  void merge(const DegradationReport& other);

  /// One-line human-readable summary, e.g.
  /// "degraded: 2 levels skipped, 1536 windows lost, 412 fault events
  /// (drops=400 dead=12)" or "healthy".
  std::string summary() const;
};

}  // namespace pcnn::core
