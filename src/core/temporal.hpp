#pragma once

#include <vector>

#include "vision/nms.hpp"

namespace pcnn::core {

/// Knobs of the cross-frame box smoother (GridDetector::detectBatch).
struct TemporalSmootherParams {
  float alpha = 0.6f;      ///< EMA weight of the newest frame's box
  float matchIou = 0.4f;   ///< detection-to-track association threshold
  int maxMissedFrames = 2; ///< a track unmatched this long is dropped
};

/// Deterministic temporal box smoothing over a video burst: per-frame NMS
/// output is greedily associated to tracks by IoU (detections in their
/// NMS order, each taking the best still-unmatched track), matched boxes
/// are exponentially averaged to damp the cell-quantized jitter of the
/// sliding-window grid, and unmatched detections open new tracks as-is.
/// Tracks only smooth -- a track that goes unmatched emits nothing and is
/// dropped after maxMissedFrames, so the smoother never invents boxes.
class TemporalSmoother {
 public:
  explicit TemporalSmoother(const TemporalSmootherParams& params = {})
      : params_(params) {}

  const TemporalSmootherParams& params() const { return params_; }

  /// Consumes one frame's NMS output (in its deterministic order) and
  /// returns the same detections with smoothed boxes.
  std::vector<vision::Detection> apply(
      const std::vector<vision::Detection>& detections);

  /// Drops all tracks (start of an unrelated burst).
  void reset() { tracks_.clear(); }

  std::size_t activeTracks() const { return tracks_.size(); }

 private:
  struct Track {
    vision::Rect box;
    int missedFrames = 0;
  };

  TemporalSmootherParams params_;
  std::vector<Track> tracks_;
};

}  // namespace pcnn::core
