#include "core/detector.hpp"

#include <stdexcept>
#include <utility>

#include "common/parallel.hpp"

namespace pcnn::core {

GridDetector::GridDetector(const GridDetectorParams& params,
                           std::shared_ptr<extract::FeatureExtractor> extractor,
                           WindowScorer scorer)
    : params_(params),
      featureExtractor_(std::move(extractor)),
      scorer_(std::move(scorer)) {
  if (!featureExtractor_ || !scorer_) {
    throw std::invalid_argument("GridDetector: null extractor or scorer");
  }
  params_.cellSize = featureExtractor_->cellSize();
  params_.windowCellsX = featureExtractor_->windowCellsX();
  params_.windowCellsY = featureExtractor_->windowCellsY();
}

std::vector<vision::Detection> GridDetector::detectRaw(
    const vision::Image& scene) const {
  return detectRaw(scene, params_.scoreThreshold);
}

std::vector<vision::Detection> GridDetector::detectRaw(
    const vision::Image& scene, float scoreThreshold) const {
  std::vector<vision::Detection> detections;
  vision::PyramidParams pp = params_.pyramid;
  pp.minWidth = params_.windowCellsX * params_.cellSize;
  pp.minHeight = params_.windowCellsY * params_.cellSize;
  const auto levels = vision::buildPyramid(scene, pp);

  const bool blockPath =
      featureExtractor_->layout() == extract::FeatureLayout::kBlockNorm;

  for (const vision::PyramidLevel& level : levels) {
    // The grid is extracted once per level (extractors may be stateful, so
    // this stays on the calling thread); every window over the level then
    // shares it. Block-norm extractors also normalize every block exactly
    // once here -- adjacent windows overlap by all but one cell column, so
    // the per-window path would redo each block's normalization for each
    // of the up to 4 windows covering it. Rows are scored on the pool,
    // each collecting into its own bucket, and buckets are concatenated in
    // row order afterwards so the output is identical to the sequential
    // scan for any thread count.
    const hog::CellGrid grid = featureExtractor_->cellGrid(level.image);
    const hog::BlockGrid blocks =
        blockPath ? featureExtractor_->prepareBlocks(grid) : hog::BlockGrid{};
    const int maxCy = grid.cellsY - params_.windowCellsY;
    const int maxCx = grid.cellsX - params_.windowCellsX;
    if (maxCy < 0 || maxCx < 0) continue;
    std::vector<std::vector<vision::Detection>> rows(
        static_cast<std::size_t>(maxCy) + 1);
    auto scanRow = [&](long cy) {
      std::vector<vision::Detection>& row =
          rows[static_cast<std::size_t>(cy)];
      for (int cx = 0; cx <= maxCx; ++cx) {
        const std::vector<float> features =
            blockPath ? featureExtractor_->windowFromBlocks(
                            blocks, cx, static_cast<int>(cy))
                      : featureExtractor_->windowFromGrid(
                            grid, cx, static_cast<int>(cy));
        const float score = scorer_(features);
        if (score < scoreThreshold) continue;
        vision::Detection det;
        det.score = score;
        det.box.x = static_cast<float>(cx * params_.cellSize) * level.scale;
        det.box.y = static_cast<float>(static_cast<int>(cy) *
                                       params_.cellSize) *
                    level.scale;
        det.box.w = static_cast<float>(params_.windowCellsX *
                                       params_.cellSize) *
                    level.scale;
        det.box.h = static_cast<float>(params_.windowCellsY *
                                       params_.cellSize) *
                    level.scale;
        row.push_back(det);
      }
    };
    if (params_.parallelScan) {
      parallelFor(0, maxCy + 1, scanRow);
    } else {
      for (int cy = 0; cy <= maxCy; ++cy) scanRow(cy);
    }
    for (const auto& row : rows) {
      detections.insert(detections.end(), row.begin(), row.end());
    }
  }
  return detections;
}

std::vector<vision::Detection> GridDetector::detect(
    const vision::Image& scene) const {
  return detect(scene, params_.scoreThreshold);
}

std::vector<vision::Detection> GridDetector::detect(
    const vision::Image& scene, float scoreThreshold) const {
  return vision::nonMaximumSuppression(detectRaw(scene, scoreThreshold),
                                       params_.nmsEpsilon);
}

}  // namespace pcnn::core
