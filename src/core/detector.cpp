#include "core/detector.hpp"

#include <stdexcept>
#include <utility>

#include "common/parallel.hpp"
#include "obs/obs.hpp"

namespace pcnn::core {

namespace {

/// Scan-stage instruments shared by every detector instance.
struct DetectMetrics {
  obs::Counter& windowsScanned = obs::counter("windows_scanned");
  obs::Counter& pyramidLevels = obs::counter("pyramid_levels");
  obs::Counter& gridCacheHits = obs::counter("grid_cache_hits");
  obs::Counter& scenes = obs::counter("detect.scenes");
  static DetectMetrics& instance() {
    static DetectMetrics m;
    return m;
  }
};

}  // namespace

GridDetector::GridDetector(const GridDetectorParams& params,
                           std::shared_ptr<extract::FeatureExtractor> extractor,
                           WindowScorer scorer)
    : params_(params),
      featureExtractor_(std::move(extractor)),
      scorer_(std::move(scorer)) {
  if (!featureExtractor_ || !scorer_) {
    throw std::invalid_argument("GridDetector: null extractor or scorer");
  }
  cellGridUs_ = &obs::histogram("extract." + featureExtractor_->name() +
                                ".cell_grid_us");
  params_.cellSize = featureExtractor_->cellSize();
  params_.windowCellsX = featureExtractor_->windowCellsX();
  params_.windowCellsY = featureExtractor_->windowCellsY();
}

std::vector<vision::Detection> GridDetector::detectRaw(
    const vision::Image& scene) const {
  return detectRaw(scene, params_.scoreThreshold);
}

std::vector<vision::Detection> GridDetector::detectRaw(
    const vision::Image& scene, float scoreThreshold) const {
  PCNN_SPAN("detect.detectRaw");
  DetectMetrics& metrics = DetectMetrics::instance();
  metrics.scenes.add();
  std::vector<vision::Detection> detections;
  vision::PyramidParams pp = params_.pyramid;
  pp.minWidth = params_.windowCellsX * params_.cellSize;
  pp.minHeight = params_.windowCellsY * params_.cellSize;
  std::vector<vision::PyramidLevel> levels;
  {
    PCNN_SPAN("detect.pyramid");
    levels = vision::buildPyramid(scene, pp);
  }
  metrics.pyramidLevels.add(static_cast<long>(levels.size()));

  const bool blockPath =
      featureExtractor_->layout() == extract::FeatureLayout::kBlockNorm;

  long levelIndex = -1;
  for (const vision::PyramidLevel& level : levels) {
    ++levelIndex;
    PCNN_SPAN_ARG("detect.level", "level", levelIndex);
    // The grid is extracted once per level (extractors may be stateful, so
    // this stays on the calling thread); every window over the level then
    // shares it. Block-norm extractors also normalize every block exactly
    // once here -- adjacent windows overlap by all but one cell column, so
    // the per-window path would redo each block's normalization for each
    // of the up to 4 windows covering it. Rows are scored on the pool,
    // each collecting into its own bucket, and buckets are concatenated in
    // row order afterwards so the output is identical to the sequential
    // scan for any thread count.
    hog::CellGrid grid;
    {
      PCNN_SPAN("detect.cellGrid");
      obs::ScopedTimer timer(cellGridUs());
      grid = featureExtractor_->cellGrid(level.image);
    }
    hog::BlockGrid blocks;
    if (blockPath) {
      PCNN_SPAN("detect.blockGrid");
      blocks = featureExtractor_->prepareBlocks(grid);
    }
    const int maxCy = grid.cellsY - params_.windowCellsY;
    const int maxCx = grid.cellsX - params_.windowCellsX;
    if (maxCy < 0 || maxCx < 0) continue;
    // Every window on this level slices the one cached grid instead of
    // recomputing its cells -- each is one grid-cache hit.
    const long levelWindows =
        static_cast<long>(maxCy + 1) * static_cast<long>(maxCx + 1);
    metrics.windowsScanned.add(levelWindows);
    metrics.gridCacheHits.add(levelWindows);
    PCNN_SPAN_ARG("detect.scan", "windows", levelWindows);
    std::vector<std::vector<vision::Detection>> rows(
        static_cast<std::size_t>(maxCy) + 1);
    auto scanRow = [&](long cy) {
      std::vector<vision::Detection>& row =
          rows[static_cast<std::size_t>(cy)];
      for (int cx = 0; cx <= maxCx; ++cx) {
        const std::vector<float> features =
            blockPath ? featureExtractor_->windowFromBlocks(
                            blocks, cx, static_cast<int>(cy))
                      : featureExtractor_->windowFromGrid(
                            grid, cx, static_cast<int>(cy));
        const float score = scorer_(features);
        if (score < scoreThreshold) continue;
        vision::Detection det;
        det.score = score;
        det.box.x = static_cast<float>(cx * params_.cellSize) * level.scale;
        det.box.y = static_cast<float>(static_cast<int>(cy) *
                                       params_.cellSize) *
                    level.scale;
        det.box.w = static_cast<float>(params_.windowCellsX *
                                       params_.cellSize) *
                    level.scale;
        det.box.h = static_cast<float>(params_.windowCellsY *
                                       params_.cellSize) *
                    level.scale;
        row.push_back(det);
      }
    };
    if (params_.parallelScan) {
      parallelFor(0, maxCy + 1, scanRow);
    } else {
      for (int cy = 0; cy <= maxCy; ++cy) scanRow(cy);
    }
    for (const auto& row : rows) {
      detections.insert(detections.end(), row.begin(), row.end());
    }
  }
  return detections;
}

std::vector<vision::Detection> GridDetector::detect(
    const vision::Image& scene) const {
  return detect(scene, params_.scoreThreshold);
}

std::vector<vision::Detection> GridDetector::detect(
    const vision::Image& scene, float scoreThreshold) const {
  std::vector<vision::Detection> raw = detectRaw(scene, scoreThreshold);
  PCNN_SPAN_ARG("detect.nms", "candidates", raw.size());
  return vision::nonMaximumSuppression(std::move(raw), params_.nmsEpsilon);
}

}  // namespace pcnn::core
