#include "core/detector.hpp"

#include <stdexcept>
#include <utility>

#include "common/parallel.hpp"
#include "obs/flight.hpp"
#include "obs/obs.hpp"

namespace pcnn::core {

namespace {

/// Scan-stage instruments shared by every detector instance.
struct DetectMetrics {
  obs::Counter& windowsScanned = obs::counter("windows_scanned");
  obs::Counter& pyramidLevels = obs::counter("pyramid_levels");
  obs::Counter& gridCacheHits = obs::counter("grid_cache_hits");
  obs::Counter& scenes = obs::counter("detect.scenes");
  obs::Counter& levelsDegraded = obs::counter("detect.level.degraded");
  obs::Counter& windowsLost = obs::counter("detect.windows_lost");
  /// Levels deliberately shed (DetectOptions::skipFinestLevels) and levels
  /// abandoned by a deadline/cancel hook -- deliberate quality loss, kept
  /// separate from the failure-driven detect.level.degraded counter.
  obs::Counter& levelsShed = obs::counter("detect.level.shed");
  obs::Counter& levelsExpired = obs::counter("detect.level.deadline");
  static DetectMetrics& instance() {
    static DetectMetrics m;
    return m;
  }
};

/// Windows a level image would contribute, estimated from its dimensions
/// (used when the level's grid never materialized).
long expectedLevelWindows(const vision::Image& image,
                          const GridDetectorParams& params) {
  const int cellsX = image.width() / params.cellSize;
  const int cellsY = image.height() / params.cellSize;
  const long spanX = cellsX - params.windowCellsX + 1;
  const long spanY = cellsY - params.windowCellsY + 1;
  if (spanX <= 0 || spanY <= 0) return 0;
  return spanX * spanY;
}

}  // namespace

GridDetector::GridDetector(const GridDetectorParams& params,
                           std::shared_ptr<extract::FeatureExtractor> extractor,
                           WindowScorer scorer)
    : params_(params),
      featureExtractor_(std::move(extractor)),
      scorer_(std::move(scorer)) {
  if (!featureExtractor_ || !scorer_) {
    throw std::invalid_argument("GridDetector: null extractor or scorer");
  }
  cellGridUs_ = &obs::histogram("extract." + featureExtractor_->name() +
                                ".cell_grid_us");
  params_.cellSize = featureExtractor_->cellSize();
  params_.windowCellsX = featureExtractor_->windowCellsX();
  params_.windowCellsY = featureExtractor_->windowCellsY();
}

std::vector<vision::Detection> GridDetector::detectRaw(
    const vision::Image& scene) const {
  return detectRaw(scene, params_.scoreThreshold);
}

std::vector<vision::Detection> GridDetector::detectRaw(
    const vision::Image& scene, float scoreThreshold) const {
  return detectRaw(scene, scoreThreshold, nullptr);
}

std::vector<vision::Detection> GridDetector::detectRaw(
    const vision::Image& scene, float scoreThreshold,
    DegradationReport* report) const {
  return detectRaw(scene, scoreThreshold, report, DetectOptions{});
}

std::vector<vision::Detection> GridDetector::detectRaw(
    const vision::Image& scene, float scoreThreshold,
    DegradationReport* report, const DetectOptions& options) const {
  PCNN_SPAN("detect.detectRaw");
  DetectMetrics& metrics = DetectMetrics::instance();
  metrics.scenes.add();
  const tn::FaultCounts faultsBefore =
      report != nullptr ? tn::globalFaultCounts() : tn::FaultCounts{};
  std::vector<vision::Detection> detections;
  vision::PyramidParams pp = params_.pyramid;
  pp.minWidth = params_.windowCellsX * params_.cellSize;
  pp.minHeight = params_.windowCellsY * params_.cellSize;
  std::vector<vision::PyramidLevel> levels;
  {
    PCNN_SPAN("detect.pyramid");
    levels = vision::buildPyramid(scene, pp);
  }
  metrics.pyramidLevels.add(static_cast<long>(levels.size()));

  const bool blockPath =
      featureExtractor_->layout() == extract::FeatureLayout::kBlockNorm;

  long levelIndex = -1;
  bool abandoned = false;  // a cancel/deadline hook fired; shed the rest
  for (const vision::PyramidLevel& level : levels) {
    ++levelIndex;
    // Deliberate shedding (the serving layer's coarser-pyramid rung):
    // the finest levels are the most expensive and are given up first,
    // attributed as kUnavailable so the caller can see exactly what
    // quality was traded away.
    if (levelIndex < options.skipFinestLevels) {
      metrics.levelsShed.add();
      if (report != nullptr) {
        report->addSkip(static_cast<int>(levelIndex),
                        expectedLevelWindows(level.image, params_),
                        Status::Unavailable("detect: level shed by caller"));
      }
      continue;
    }
    // Deadline enforcement between pyramid levels: once the hook fires,
    // every remaining level is abandoned and attributed; detections from
    // completed levels survive.
    if (!abandoned && options.cancel && options.cancel()) abandoned = true;
    if (abandoned) {
      metrics.levelsExpired.add();
      if (report != nullptr) {
        report->addSkip(static_cast<int>(levelIndex),
                        expectedLevelWindows(level.image, params_),
                        Status::DeadlineExceeded(
                            "detect: level abandoned past deadline"));
      }
      continue;
    }
    PCNN_SPAN_ARG("detect.level", "level", levelIndex);
    // The grid is extracted once per level (extractors may be stateful, so
    // this stays on the calling thread); every window over the level then
    // shares it. Block-norm extractors also normalize every block exactly
    // once here -- adjacent windows overlap by all but one cell column, so
    // the per-window path would redo each block's normalization for each
    // of the up to 4 windows covering it. Rows are scored on the pool,
    // each collecting into its own bucket, and buckets are concatenated in
    // row order afterwards so the output is identical to the sequential
    // scan for any thread count.
    // A level whose grid cannot be produced -- a backend failure, a
    // poisoned image, a simulator fault -- degrades the scene rather than
    // aborting it: the level is skipped, accounted, and the scan goes on.
    auto skipLevel = [&](Status status) {
      PCNN_SPAN_ARG("detect.level.degraded", "level", levelIndex);
      obs::noteFaultEvent("detect.level.degraded");
      metrics.levelsDegraded.add();
      const long lost = expectedLevelWindows(level.image, params_);
      if (lost > 0) metrics.windowsLost.add(lost);
      if (report != nullptr) {
        report->addSkip(static_cast<int>(levelIndex), lost, std::move(status));
      }
    };
    hog::CellGrid grid;
    {
      PCNN_SPAN("detect.cellGrid");
      obs::ScopedTimer timer(cellGridUs());
      StatusOr<hog::CellGrid> gridOr =
          featureExtractor_->tryCellGrid(level.image);
      if (!gridOr.ok()) {
        skipLevel(gridOr.status());
        continue;
      }
      grid = std::move(gridOr).value();
    }
    hog::BlockGrid blocks;
    if (blockPath) {
      PCNN_SPAN("detect.blockGrid");
      try {
        blocks = featureExtractor_->prepareBlocks(grid);
      } catch (const std::exception& e) {
        skipLevel(Status::Internal(std::string("prepareBlocks: ") + e.what()));
        continue;
      }
    }
    const int maxCy = grid.cellsY - params_.windowCellsY;
    const int maxCx = grid.cellsX - params_.windowCellsX;
    if (maxCy < 0 || maxCx < 0) continue;
    // Every window on this level slices the one cached grid instead of
    // recomputing its cells -- each is one grid-cache hit.
    const long levelWindows =
        static_cast<long>(maxCy + 1) * static_cast<long>(maxCx + 1);
    metrics.windowsScanned.add(levelWindows);
    metrics.gridCacheHits.add(levelWindows);
    PCNN_SPAN_ARG("detect.scan", "windows", levelWindows);
    std::vector<std::vector<vision::Detection>> rows(
        static_cast<std::size_t>(maxCy) + 1);
    // Per-row loss tallies: rows are scanned concurrently, so each row
    // counts its own dropped windows and the tallies are summed after the
    // barrier -- deterministic for any thread count.
    std::vector<long> rowWindowsLost(static_cast<std::size_t>(maxCy) + 1, 0);
    auto scanRow = [&](long cy) {
      std::vector<vision::Detection>& row =
          rows[static_cast<std::size_t>(cy)];
      for (int cx = 0; cx <= maxCx; ++cx) {
        float score;
        try {
          const std::vector<float> features =
              blockPath ? featureExtractor_->windowFromBlocks(
                              blocks, cx, static_cast<int>(cy))
                        : featureExtractor_->windowFromGrid(
                              grid, cx, static_cast<int>(cy));
          score = scorer_(features);
        } catch (const std::exception&) {
          // One window's feature assembly or scoring failing loses that
          // window only; the rest of the row keeps scanning.
          ++rowWindowsLost[static_cast<std::size_t>(cy)];
          continue;
        }
        if (score < scoreThreshold) continue;
        vision::Detection det;
        det.score = score;
        det.box.x = static_cast<float>(cx * params_.cellSize) * level.scale;
        det.box.y = static_cast<float>(static_cast<int>(cy) *
                                       params_.cellSize) *
                    level.scale;
        det.box.w = static_cast<float>(params_.windowCellsX *
                                       params_.cellSize) *
                    level.scale;
        det.box.h = static_cast<float>(params_.windowCellsY *
                                       params_.cellSize) *
                    level.scale;
        row.push_back(det);
      }
    };
    if (params_.parallelScan) {
      parallelFor(0, maxCy + 1, scanRow);
    } else {
      for (int cy = 0; cy <= maxCy; ++cy) scanRow(cy);
    }
    for (const auto& row : rows) {
      detections.insert(detections.end(), row.begin(), row.end());
    }
    long levelWindowsLost = 0;
    for (long lost : rowWindowsLost) levelWindowsLost += lost;
    if (levelWindowsLost > 0) {
      metrics.windowsLost.add(levelWindowsLost);
      if (report != nullptr) report->windowsLost += levelWindowsLost;
    }
  }
  if (report != nullptr) {
    report->faults = tn::globalFaultCounts() - faultsBefore;
  }
  return detections;
}

std::vector<vision::Detection> GridDetector::detect(
    const vision::Image& scene) const {
  return detect(scene, params_.scoreThreshold);
}

std::vector<vision::Detection> GridDetector::detect(
    const vision::Image& scene, float scoreThreshold) const {
  return detect(scene, scoreThreshold, nullptr);
}

std::vector<vision::Detection> GridDetector::detect(
    const vision::Image& scene, float scoreThreshold,
    DegradationReport* report) const {
  return detect(scene, scoreThreshold, report, DetectOptions{});
}

std::vector<vision::Detection> GridDetector::detect(
    const vision::Image& scene, float scoreThreshold,
    DegradationReport* report, const DetectOptions& options) const {
  std::vector<vision::Detection> raw =
      detectRaw(scene, scoreThreshold, report, options);
  PCNN_SPAN_ARG("detect.nms", "candidates", raw.size());
  return vision::nonMaximumSuppression(std::move(raw), params_.nmsEpsilon);
}

}  // namespace pcnn::core
