#include "core/detector.hpp"

#include <stdexcept>
#include <utility>

namespace pcnn::core {

GridDetector::GridDetector(const GridDetectorParams& params,
                           GridExtractor extractor,
                           WindowFeatureAssembler assembler,
                           WindowScorer scorer)
    : params_(params),
      extractor_(std::move(extractor)),
      assembler_(std::move(assembler)),
      scorer_(std::move(scorer)) {
  if (!extractor_ || !assembler_ || !scorer_) {
    throw std::invalid_argument("GridDetector: null callable");
  }
}

std::vector<vision::Detection> GridDetector::detectRaw(
    const vision::Image& scene) const {
  std::vector<vision::Detection> detections;
  vision::PyramidParams pp = params_.pyramid;
  pp.minWidth = params_.windowCellsX * params_.cellSize;
  pp.minHeight = params_.windowCellsY * params_.cellSize;
  const auto levels = vision::buildPyramid(scene, pp);

  for (const vision::PyramidLevel& level : levels) {
    const hog::CellGrid grid = extractor_(level.image);
    const int maxCy = grid.cellsY - params_.windowCellsY;
    const int maxCx = grid.cellsX - params_.windowCellsX;
    for (int cy = 0; cy <= maxCy; ++cy) {
      for (int cx = 0; cx <= maxCx; ++cx) {
        const std::vector<float> features = assembler_(grid, cx, cy);
        const float score = scorer_(features);
        if (score < params_.scoreThreshold) continue;
        vision::Detection det;
        det.score = score;
        det.box.x = static_cast<float>(cx * params_.cellSize) * level.scale;
        det.box.y = static_cast<float>(cy * params_.cellSize) * level.scale;
        det.box.w = static_cast<float>(params_.windowCellsX *
                                       params_.cellSize) *
                    level.scale;
        det.box.h = static_cast<float>(params_.windowCellsY *
                                       params_.cellSize) *
                    level.scale;
        detections.push_back(det);
      }
    }
  }
  return detections;
}

std::vector<vision::Detection> GridDetector::detect(
    const vision::Image& scene) const {
  return vision::nonMaximumSuppression(detectRaw(scene), params_.nmsEpsilon);
}

WindowFeatureAssembler cellFeatureAssembler(int windowCellsX,
                                            int windowCellsY) {
  return [windowCellsX, windowCellsY](const hog::CellGrid& grid, int cx0,
                                      int cy0) {
    std::vector<float> features;
    features.reserve(static_cast<std::size_t>(windowCellsX) * windowCellsY *
                     grid.bins);
    for (int cy = 0; cy < windowCellsY; ++cy) {
      for (int cx = 0; cx < windowCellsX; ++cx) {
        const float* hist = grid.cell(cx0 + cx, cy0 + cy);
        features.insert(features.end(), hist, hist + grid.bins);
      }
    }
    return features;
  };
}

WindowFeatureAssembler blockFeatureAssembler(const hog::HogParams& params,
                                             int windowCellsX,
                                             int windowCellsY) {
  return [params, windowCellsX, windowCellsY](const hog::CellGrid& grid,
                                              int cx0, int cy0) {
    // Copy the window's sub-grid, then reuse the HoG block assembly.
    hog::CellGrid sub;
    sub.cellsX = windowCellsX;
    sub.cellsY = windowCellsY;
    sub.bins = grid.bins;
    sub.data.reserve(static_cast<std::size_t>(windowCellsX) * windowCellsY *
                     grid.bins);
    for (int cy = 0; cy < windowCellsY; ++cy) {
      for (int cx = 0; cx < windowCellsX; ++cx) {
        const float* hist = grid.cell(cx0 + cx, cy0 + cy);
        sub.data.insert(sub.data.end(), hist, hist + grid.bins);
      }
    }
    const hog::HogExtractor assembler(params);
    return assembler.blocksFromGrid(sub);
  };
}

}  // namespace pcnn::core
