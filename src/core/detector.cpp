#include "core/detector.hpp"

#include <stdexcept>
#include <utility>

#include "common/parallel.hpp"

namespace pcnn::core {

GridDetector::GridDetector(const GridDetectorParams& params,
                           std::shared_ptr<extract::FeatureExtractor> extractor,
                           WindowScorer scorer)
    : params_(params),
      featureExtractor_(std::move(extractor)),
      scorer_(std::move(scorer)) {
  if (!featureExtractor_ || !scorer_) {
    throw std::invalid_argument("GridDetector: null extractor or scorer");
  }
  params_.cellSize = featureExtractor_->cellSize();
  params_.windowCellsX = featureExtractor_->windowCellsX();
  params_.windowCellsY = featureExtractor_->windowCellsY();
  const auto ex = featureExtractor_;
  extractor_ = [ex](const vision::Image& img) { return ex->cellGrid(img); };
  assembler_ = [ex](const hog::CellGrid& grid, int cx0, int cy0) {
    return ex->windowFromGrid(grid, cx0, cy0);
  };
}

GridDetector::GridDetector(const GridDetectorParams& params,
                           GridExtractor extractor,
                           WindowFeatureAssembler assembler,
                           WindowScorer scorer)
    : params_(params),
      extractor_(std::move(extractor)),
      assembler_(std::move(assembler)),
      scorer_(std::move(scorer)) {
  if (!extractor_ || !assembler_ || !scorer_) {
    throw std::invalid_argument("GridDetector: null callable");
  }
}

std::vector<vision::Detection> GridDetector::detectRaw(
    const vision::Image& scene) const {
  return detectRaw(scene, params_.scoreThreshold);
}

std::vector<vision::Detection> GridDetector::detectRaw(
    const vision::Image& scene, float scoreThreshold) const {
  std::vector<vision::Detection> detections;
  vision::PyramidParams pp = params_.pyramid;
  pp.minWidth = params_.windowCellsX * params_.cellSize;
  pp.minHeight = params_.windowCellsY * params_.cellSize;
  const auto levels = vision::buildPyramid(scene, pp);

  for (const vision::PyramidLevel& level : levels) {
    // The grid is extracted once per level (extractors may be stateful, so
    // this stays on the calling thread); every window over the level then
    // shares it. Rows are scored on the pool, each collecting into its own
    // bucket, and buckets are concatenated in row order afterwards so the
    // output is identical to the sequential scan for any thread count.
    const hog::CellGrid grid = extractor_(level.image);
    const int maxCy = grid.cellsY - params_.windowCellsY;
    const int maxCx = grid.cellsX - params_.windowCellsX;
    if (maxCy < 0 || maxCx < 0) continue;
    std::vector<std::vector<vision::Detection>> rows(
        static_cast<std::size_t>(maxCy) + 1);
    auto scanRow = [&](long cy) {
      std::vector<vision::Detection>& row =
          rows[static_cast<std::size_t>(cy)];
      for (int cx = 0; cx <= maxCx; ++cx) {
        const std::vector<float> features =
            assembler_(grid, cx, static_cast<int>(cy));
        const float score = scorer_(features);
        if (score < scoreThreshold) continue;
        vision::Detection det;
        det.score = score;
        det.box.x = static_cast<float>(cx * params_.cellSize) * level.scale;
        det.box.y = static_cast<float>(static_cast<int>(cy) *
                                       params_.cellSize) *
                    level.scale;
        det.box.w = static_cast<float>(params_.windowCellsX *
                                       params_.cellSize) *
                    level.scale;
        det.box.h = static_cast<float>(params_.windowCellsY *
                                       params_.cellSize) *
                    level.scale;
        row.push_back(det);
      }
    };
    if (params_.parallelScan) {
      parallelFor(0, maxCy + 1, scanRow);
    } else {
      for (int cy = 0; cy <= maxCy; ++cy) scanRow(cy);
    }
    for (const auto& row : rows) {
      detections.insert(detections.end(), row.begin(), row.end());
    }
  }
  return detections;
}

std::vector<vision::Detection> GridDetector::detect(
    const vision::Image& scene) const {
  return detect(scene, params_.scoreThreshold);
}

std::vector<vision::Detection> GridDetector::detect(
    const vision::Image& scene, float scoreThreshold) const {
  return vision::nonMaximumSuppression(detectRaw(scene, scoreThreshold),
                                       params_.nmsEpsilon);
}

WindowFeatureAssembler cellFeatureAssembler(int windowCellsX,
                                            int windowCellsY) {
  return [windowCellsX, windowCellsY](const hog::CellGrid& grid, int cx0,
                                      int cy0) {
    std::vector<float> features;
    features.reserve(static_cast<std::size_t>(windowCellsX) * windowCellsY *
                     grid.bins);
    for (int cy = 0; cy < windowCellsY; ++cy) {
      for (int cx = 0; cx < windowCellsX; ++cx) {
        const float* hist = grid.cell(cx0 + cx, cy0 + cy);
        features.insert(features.end(), hist, hist + grid.bins);
      }
    }
    return features;
  };
}

WindowFeatureAssembler blockFeatureAssembler(const hog::HogParams& params,
                                             int windowCellsX,
                                             int windowCellsY) {
  // Slice blocks straight out of the shared level grid -- no sub-grid copy
  // and no per-window extractor construction.
  const hog::HogExtractor assembler(params);
  return [assembler, windowCellsX, windowCellsY](const hog::CellGrid& grid,
                                                 int cx0, int cy0) {
    return assembler.windowDescriptorFromGrid(grid, cx0, cy0, windowCellsX,
                                              windowCellsY);
  };
}

}  // namespace pcnn::core
