#pragma once

#include <functional>
#include <vector>

#include "hog/hog.hpp"
#include "vision/image.hpp"
#include "vision/nms.hpp"
#include "vision/pyramid.hpp"

namespace pcnn::core {

/// Computes the per-cell feature grid of a (pyramid-level) image. Cell
/// grids are computed once per level and shared by every window over it --
/// the same economy the hardware pipeline exploits (cells are the unit of
/// work in Sec. 5.2).
using GridExtractor = std::function<hog::CellGrid(const vision::Image&)>;

/// Assembles a window's feature vector from the level grid given the
/// window's top-left cell (cx0, cy0).
using WindowFeatureAssembler = std::function<std::vector<float>(
    const hog::CellGrid&, int cx0, int cy0)>;

/// Scores a window feature vector; higher = more person-like.
using WindowScorer = std::function<float(const std::vector<float>&)>;

/// Multi-scale sliding-window detector over cell grids.
struct GridDetectorParams {
  int cellSize = 8;
  int windowCellsX = 8;   ///< 64-pixel-wide window
  int windowCellsY = 16;  ///< 128-pixel-tall window
  float scoreThreshold = 0.0f;  ///< keep windows scoring at least this
  float nmsEpsilon = 0.2f;      ///< the paper's NMS epsilon
  vision::PyramidParams pyramid;  ///< 1.1x scale steps by default
  /// Scan window rows on the global thread pool (PCNN_NUM_THREADS). The
  /// assembler and scorer are then called concurrently and must be
  /// re-entrant for concurrent reads -- true of the built-in assemblers,
  /// LinearSvm::decision and EednClassifier::score (inference is
  /// read-only). Detections are emitted in the same row-major order as the
  /// sequential scan, so results are identical for any thread count.
  bool parallelScan = true;
};

class GridDetector {
 public:
  GridDetector(const GridDetectorParams& params, GridExtractor extractor,
               WindowFeatureAssembler assembler, WindowScorer scorer);

  /// Scans all pyramid levels with a one-cell stride, scores every window,
  /// keeps those above threshold, and applies NMS. Boxes are in original
  /// scene coordinates.
  std::vector<vision::Detection> detect(const vision::Image& scene) const;

  /// Same but without NMS (for threshold sweeps in the evaluation).
  std::vector<vision::Detection> detectRaw(const vision::Image& scene) const;

  const GridDetectorParams& params() const { return params_; }

 private:
  GridDetectorParams params_;
  GridExtractor extractor_;
  WindowFeatureAssembler assembler_;
  WindowScorer scorer_;
};

/// Assembler producing the flat concatenation of the window's cell
/// histograms (the Eedn feature path -- block normalization elided).
WindowFeatureAssembler cellFeatureAssembler(int windowCellsX,
                                            int windowCellsY);

/// Assembler producing overlapping 2x2-cell blocks, optionally
/// L2-normalized, from the window's sub-grid (the SVM feature path).
WindowFeatureAssembler blockFeatureAssembler(const hog::HogParams& params,
                                             int windowCellsX,
                                             int windowCellsY);

}  // namespace pcnn::core
