#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "core/degradation.hpp"
#include "extract/extractor.hpp"
#include "obs/obs.hpp"
#include "hog/hog.hpp"
#include "vision/image.hpp"
#include "vision/nms.hpp"
#include "vision/pyramid.hpp"

namespace pcnn::core {

/// Scores a window feature vector; higher = more person-like.
using WindowScorer = std::function<float(const std::vector<float>&)>;

/// Multi-scale sliding-window detector over cell grids.
struct GridDetectorParams {
  int cellSize = 8;
  int windowCellsX = 8;   ///< 64-pixel-wide window
  int windowCellsY = 16;  ///< 128-pixel-tall window
  float scoreThreshold = 0.0f;  ///< keep windows scoring at least this
  float nmsEpsilon = 0.2f;      ///< the paper's NMS epsilon
  vision::PyramidParams pyramid;  ///< 1.1x scale steps by default
  /// Scan window rows on the global thread pool (PCNN_NUM_THREADS). The
  /// extractor's windowFromGrid / windowFromBlocks and the scorer are then
  /// called concurrently and must be re-entrant for concurrent reads --
  /// true of FeatureExtractor, LinearSvm::decision and
  /// EednClassifier::score (inference is read-only). Detections are
  /// emitted in the same row-major order as the sequential scan, so
  /// results are identical for any thread count.
  bool parallelScan = true;
};

class GridDetector {
 public:
  /// Detector over a registry-constructed feature extractor. The window
  /// geometry (cellSize, windowCellsX/Y) is taken from the extractor,
  /// overriding the corresponding params fields. The extractor computes
  /// one grid per pyramid level on the calling thread (it may be
  /// stateful); block-norm extractors additionally precompute the level's
  /// normalized block grid once, and window features are then sliced from
  /// it concurrently.
  GridDetector(const GridDetectorParams& params,
               std::shared_ptr<extract::FeatureExtractor> extractor,
               WindowScorer scorer);

  /// Scans all pyramid levels with a one-cell stride, scores every window,
  /// keeps those above threshold, and applies NMS. Boxes are in original
  /// scene coordinates.
  std::vector<vision::Detection> detect(const vision::Image& scene) const;

  /// Same with a score-threshold override, so evaluation sweeps can vary
  /// the operating point without rebuilding the detector.
  std::vector<vision::Detection> detect(const vision::Image& scene,
                                        float scoreThreshold) const;

  /// Same, additionally filling `report` with what the scan had to give
  /// up: a pyramid level whose grid the extractor cannot produce is
  /// skipped (emitting a "detect.level.degraded" span and counter) instead
  /// of aborting the scene, individual windows whose feature assembly or
  /// scoring throws are dropped, and simulator fault activity during the
  /// call is attributed. `report` may be null.
  std::vector<vision::Detection> detect(const vision::Image& scene,
                                        float scoreThreshold,
                                        DegradationReport* report) const;

  /// Same but without NMS (for threshold sweeps in the evaluation).
  std::vector<vision::Detection> detectRaw(const vision::Image& scene) const;
  std::vector<vision::Detection> detectRaw(const vision::Image& scene,
                                           float scoreThreshold) const;
  std::vector<vision::Detection> detectRaw(const vision::Image& scene,
                                           float scoreThreshold,
                                           DegradationReport* report) const;

  const GridDetectorParams& params() const { return params_; }

  const std::shared_ptr<extract::FeatureExtractor>& extractor() const {
    return featureExtractor_;
  }

 private:
  /// Per-backend cell-grid latency histogram
  /// ("extract.<backend>.cell_grid_us"), resolved once at construction so
  /// the per-level hot path never touches the metrics registry lock.
  obs::LatencyHistogram& cellGridUs() const { return *cellGridUs_; }

  GridDetectorParams params_;
  std::shared_ptr<extract::FeatureExtractor> featureExtractor_;
  WindowScorer scorer_;
  obs::LatencyHistogram* cellGridUs_;
};

}  // namespace pcnn::core
