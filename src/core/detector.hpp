#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "extract/extractor.hpp"
#include "hog/hog.hpp"
#include "vision/image.hpp"
#include "vision/nms.hpp"
#include "vision/pyramid.hpp"

namespace pcnn::core {

/// Computes the per-cell feature grid of a (pyramid-level) image. Cell
/// grids are computed once per level and shared by every window over it --
/// the same economy the hardware pipeline exploits (cells are the unit of
/// work in Sec. 5.2).
///
/// DEPRECATED shim: new code should pass an extract::FeatureExtractor to
/// GridDetector instead of a GridExtractor/WindowFeatureAssembler pair.
using GridExtractor = std::function<hog::CellGrid(const vision::Image&)>;

/// Assembles a window's feature vector from the level grid given the
/// window's top-left cell (cx0, cy0). DEPRECATED shim -- see GridExtractor.
using WindowFeatureAssembler = std::function<std::vector<float>(
    const hog::CellGrid&, int cx0, int cy0)>;

/// Scores a window feature vector; higher = more person-like.
using WindowScorer = std::function<float(const std::vector<float>&)>;

/// Multi-scale sliding-window detector over cell grids.
struct GridDetectorParams {
  int cellSize = 8;
  int windowCellsX = 8;   ///< 64-pixel-wide window
  int windowCellsY = 16;  ///< 128-pixel-tall window
  float scoreThreshold = 0.0f;  ///< keep windows scoring at least this
  float nmsEpsilon = 0.2f;      ///< the paper's NMS epsilon
  vision::PyramidParams pyramid;  ///< 1.1x scale steps by default
  /// Scan window rows on the global thread pool (PCNN_NUM_THREADS). The
  /// assembler and scorer are then called concurrently and must be
  /// re-entrant for concurrent reads -- true of FeatureExtractor::
  /// windowFromGrid, LinearSvm::decision and EednClassifier::score
  /// (inference is read-only). Detections are emitted in the same
  /// row-major order as the sequential scan, so results are identical for
  /// any thread count.
  bool parallelScan = true;
};

class GridDetector {
 public:
  /// Primary form: detector over a registry-constructed feature extractor.
  /// The window geometry (cellSize, windowCellsX/Y) is taken from the
  /// extractor, overriding the corresponding params fields. The extractor
  /// computes one grid per pyramid level on the calling thread (it may be
  /// stateful); windowFromGrid then runs concurrently over the shared
  /// grid.
  GridDetector(const GridDetectorParams& params,
               std::shared_ptr<extract::FeatureExtractor> extractor,
               WindowScorer scorer);

  /// DEPRECATED shim for hand-assembled extraction lambdas.
  GridDetector(const GridDetectorParams& params, GridExtractor extractor,
               WindowFeatureAssembler assembler, WindowScorer scorer);

  /// Scans all pyramid levels with a one-cell stride, scores every window,
  /// keeps those above threshold, and applies NMS. Boxes are in original
  /// scene coordinates.
  std::vector<vision::Detection> detect(const vision::Image& scene) const;

  /// Same with a score-threshold override, so evaluation sweeps can vary
  /// the operating point without rebuilding the detector.
  std::vector<vision::Detection> detect(const vision::Image& scene,
                                        float scoreThreshold) const;

  /// Same but without NMS (for threshold sweeps in the evaluation).
  std::vector<vision::Detection> detectRaw(const vision::Image& scene) const;
  std::vector<vision::Detection> detectRaw(const vision::Image& scene,
                                           float scoreThreshold) const;

  const GridDetectorParams& params() const { return params_; }

  /// The feature extractor, or nullptr when built from the legacy shims.
  const std::shared_ptr<extract::FeatureExtractor>& extractor() const {
    return featureExtractor_;
  }

 private:
  GridDetectorParams params_;
  std::shared_ptr<extract::FeatureExtractor> featureExtractor_;
  GridExtractor extractor_;
  WindowFeatureAssembler assembler_;
  WindowScorer scorer_;
};

/// Assembler producing the flat concatenation of the window's cell
/// histograms (the Eedn feature path -- block normalization elided).
/// DEPRECATED shim: FeatureLayout::kFlatCell extractors carry this logic.
WindowFeatureAssembler cellFeatureAssembler(int windowCellsX,
                                            int windowCellsY);

/// Assembler producing overlapping 2x2-cell blocks, optionally
/// L2-normalized, from the window's sub-grid (the SVM feature path).
/// DEPRECATED shim: FeatureLayout::kBlockNorm extractors carry this logic.
WindowFeatureAssembler blockFeatureAssembler(const hog::HogParams& params,
                                             int windowCellsX,
                                             int windowCellsY);

}  // namespace pcnn::core
