#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "core/degradation.hpp"
#include "extract/extractor.hpp"
#include "obs/obs.hpp"
#include "hog/hog.hpp"
#include "vision/image.hpp"
#include "vision/nms.hpp"
#include "vision/pyramid.hpp"

namespace pcnn::core {

/// Scores a window feature vector; higher = more person-like.
using WindowScorer = std::function<float(const std::vector<float>&)>;

/// Cross-frame reuse knobs for GridDetector::detectBatch. The env var
/// PCNN_TEMPORAL (off/0/false) overrides `enabled` and `smooth` at run
/// time, forcing the bitwise-reference per-frame path.
struct TemporalParams {
  /// Keep per-level cell/block/score grids alive across frames and only
  /// recompute the tiles whose pixels changed. Off: every frame runs the
  /// exact single-scene detect() path.
  bool enabled = true;
  /// EMA box smoothing across the burst (TemporalSmoother).
  bool smooth = true;
  /// Dirty-tracking tile edge in cells (tileCells * cellSize pixels).
  int tileCells = 4;
  float smoothingAlpha = 0.6f;  ///< EMA weight of the newest frame's box
  float matchIou = 0.4f;        ///< det-to-track association threshold
};

/// Multi-scale sliding-window detector over cell grids.
struct GridDetectorParams {
  int cellSize = 8;
  int windowCellsX = 8;   ///< 64-pixel-wide window
  int windowCellsY = 16;  ///< 128-pixel-tall window
  float scoreThreshold = 0.0f;  ///< keep windows scoring at least this
  float nmsEpsilon = 0.2f;      ///< the paper's NMS epsilon
  vision::PyramidParams pyramid;  ///< 1.1x scale steps by default
  /// Scan window rows on the global thread pool (PCNN_NUM_THREADS). The
  /// extractor's windowFromGrid / windowFromBlocks and the scorer are then
  /// called concurrently and must be re-entrant for concurrent reads --
  /// true of FeatureExtractor, LinearSvm::decision and
  /// EednClassifier::score (inference is read-only). Detections are
  /// emitted in the same row-major order as the sequential scan, so
  /// results are identical for any thread count.
  bool parallelScan = true;
  TemporalParams temporal;  ///< detectBatch cross-frame reuse knobs
};

/// Per-call scan controls for deliberate quality shedding and deadline
/// abandonment -- the knobs serve::DetectionService turns under overload.
/// Default-constructed options change nothing: the scan is bitwise
/// identical to the plain detect()/detectBatch() overloads.
struct DetectOptions {
  /// Skip the N finest (largest, most expensive) pyramid levels. Each
  /// skipped level is recorded in the DegradationReport as a LevelSkip
  /// with StatusCode::kUnavailable, so shed quality is attributed rather
  /// than silent. Small far-away targets are lost first; coarse levels
  /// (near, large targets) keep scanning.
  int skipFinestLevels = 0;
  /// Polled before every pyramid level; returning true abandons this and
  /// all remaining levels, each recorded as a LevelSkip with
  /// StatusCode::kDeadlineExceeded. Detections from levels that already
  /// completed are still returned.
  std::function<bool()> cancel;
};

/// Per-burst controls for detectBatch.
struct BatchOptions {
  DetectOptions detect;  ///< applied to every frame of the burst
  /// Absolute per-frame deadlines on the obs::nowMicros() clock. Empty =
  /// no deadlines; 0 for a frame = no deadline for that frame. A frame
  /// whose deadline passes mid-scan abandons its remaining pyramid levels
  /// exactly like DetectOptions::cancel.
  std::vector<double> deadlineUs;
};

/// What one frame of a detectBatch burst cost, at tile and window
/// granularity. Tiles are (temporal.tileCells)^2-cell squares of each
/// pyramid level's cell grid; a frame that could not reuse anything (cold
/// cache, PCNN_TEMPORAL=off, a level invalidated by an extraction
/// failure) reports fullRecompute.
struct FrameStats {
  long tilesReused = 0;
  long tilesRecomputed = 0;
  long windowsRescored = 0;
  long windowsReused = 0;
  bool fullRecompute = false;
};

/// One frame's detections (after NMS and, when enabled, temporal
/// smoothing) plus its reuse accounting.
struct FrameResult {
  std::vector<vision::Detection> detections;
  FrameStats stats;
};

/// detectBatch output: per-frame results in frame order.
struct BatchDetectResult {
  std::vector<FrameResult> frames;
  bool temporalEnabled = false;  ///< params AND env agreed to reuse
};

class GridDetector {
 public:
  /// Detector over a registry-constructed feature extractor. The window
  /// geometry (cellSize, windowCellsX/Y) is taken from the extractor,
  /// overriding the corresponding params fields. The extractor computes
  /// one grid per pyramid level on the calling thread (it may be
  /// stateful); block-norm extractors additionally precompute the level's
  /// normalized block grid once, and window features are then sliced from
  /// it concurrently.
  GridDetector(const GridDetectorParams& params,
               std::shared_ptr<extract::FeatureExtractor> extractor,
               WindowScorer scorer);
  ~GridDetector();  // out of line: the temporal cache is an opaque type

  /// Scans all pyramid levels with a one-cell stride, scores every window,
  /// keeps those above threshold, and applies NMS. Boxes are in original
  /// scene coordinates.
  std::vector<vision::Detection> detect(const vision::Image& scene) const;

  /// Same with a score-threshold override, so evaluation sweeps can vary
  /// the operating point without rebuilding the detector.
  std::vector<vision::Detection> detect(const vision::Image& scene,
                                        float scoreThreshold) const;

  /// Same, additionally filling `report` with what the scan had to give
  /// up: a pyramid level whose grid the extractor cannot produce is
  /// skipped (emitting a "detect.level.degraded" span and counter) instead
  /// of aborting the scene, individual windows whose feature assembly or
  /// scoring throws are dropped, and simulator fault activity during the
  /// call is attributed. `report` may be null.
  std::vector<vision::Detection> detect(const vision::Image& scene,
                                        float scoreThreshold,
                                        DegradationReport* report) const;

  /// Same, additionally honoring per-call shed/deadline controls: the
  /// options' skipped and abandoned levels join `report` as LevelSkips
  /// (kUnavailable / kDeadlineExceeded). Default options reproduce the
  /// three-argument overload bitwise.
  std::vector<vision::Detection> detect(const vision::Image& scene,
                                        float scoreThreshold,
                                        DegradationReport* report,
                                        const DetectOptions& options) const;

  /// Produces the frames of a video burst lazily (frame index -> image),
  /// so a full-HD burst never has to be resident all at once.
  using FrameProvider = std::function<vision::Image(int)>;

  /// Runs a burst of same-sized frames through shared pyramid/scan
  /// machinery. Every frame emits a "detect.frame" span (frame-index
  /// argument) with "detect.level" spans nested under it exactly like the
  /// single-scene path, inside one enclosing "detect.batch" span.
  ///
  /// With params.temporal.enabled (and PCNN_TEMPORAL not off), per-level
  /// cell grids, block grids, and window scores persist across frames --
  /// and across detectBatch calls, until resetTemporalCache() or a frame
  /// of different dimensions arrives. Only tiles whose pixels changed
  /// since the previous frame recompute their cell histograms, affected
  /// block normalizations, and window scores ("detect.tiles_reused" /
  /// "detect.tiles_recomputed" counters); whole-frame recompute remains
  /// the always-available fallback (a level whose incremental update
  /// fails is invalidated, degrades the frame, and is rebuilt from
  /// scratch on the next one). For deterministic backends the reused scan
  /// is bitwise-identical to per-frame detect(); the Parrot's stochastic
  /// coding stream is consumed in a different order on the incremental
  /// path, so its detections are equally valid draws but not bitwise
  /// reproductions (DESIGN.md Section 5g).
  ///
  /// With PCNN_TEMPORAL=off (or temporal.enabled=false) each frame runs
  /// the exact single-scene detect() path -- bitwise-identical detections
  /// at any thread count, no smoothing.
  BatchDetectResult detectBatch(const std::vector<vision::Image>& frames);
  BatchDetectResult detectBatch(int numFrames, const FrameProvider& frames);

  /// Same, additionally honoring per-burst shed/deadline controls and --
  /// when `reports` is non-null -- filling one DegradationReport per frame
  /// (shed levels as kUnavailable, deadline-abandoned levels as
  /// kDeadlineExceeded, plus fault attribution). A level skipped on the
  /// temporal path is invalidated so it rebuilds from the live frame when
  /// the ladder re-enables it. Default options with a null `reports`
  /// reproduce the plain overloads bitwise.
  BatchDetectResult detectBatch(int numFrames, const FrameProvider& frames,
                                const BatchOptions& options,
                                std::vector<DegradationReport>* reports);
  BatchDetectResult detectBatch(const std::vector<vision::Image>& frames,
                                const BatchOptions& options,
                                std::vector<DegradationReport>* reports);

  /// Drops the persistent per-level grids and smoother tracks; the next
  /// frame recomputes everything (use between unrelated bursts).
  void resetTemporalCache();

  /// Same but without NMS (for threshold sweeps in the evaluation).
  std::vector<vision::Detection> detectRaw(const vision::Image& scene) const;
  std::vector<vision::Detection> detectRaw(const vision::Image& scene,
                                           float scoreThreshold) const;
  std::vector<vision::Detection> detectRaw(const vision::Image& scene,
                                           float scoreThreshold,
                                           DegradationReport* report) const;
  std::vector<vision::Detection> detectRaw(const vision::Image& scene,
                                           float scoreThreshold,
                                           DegradationReport* report,
                                           const DetectOptions& options) const;

  const GridDetectorParams& params() const { return params_; }

  const std::shared_ptr<extract::FeatureExtractor>& extractor() const {
    return featureExtractor_;
  }

 private:
  struct TemporalCache;  // defined in detector_batch.cpp
  /// Out-of-line deleter so TUs other than detector_batch.cpp can destroy
  /// a GridDetector without seeing the cache's definition.
  struct TemporalCacheDeleter {
    void operator()(TemporalCache* cache) const;
  };

  /// Per-backend cell-grid latency histogram
  /// ("extract.<backend>.cell_grid_us"), resolved once at construction so
  /// the per-level hot path never touches the metrics registry lock.
  obs::LatencyHistogram& cellGridUs() const { return *cellGridUs_; }

  /// One frame of the temporal path: reuse what the cache allows, refresh
  /// the rest, leave the cache describing this frame. `deadlineUs` <= 0
  /// means no deadline; `report` may be null.
  std::vector<vision::Detection> detectFrameTemporal(
      const vision::Image& frame, FrameStats& stats,
      const DetectOptions& options, double deadlineUs,
      DegradationReport* report);

  GridDetectorParams params_;
  std::shared_ptr<extract::FeatureExtractor> featureExtractor_;
  WindowScorer scorer_;
  obs::LatencyHistogram* cellGridUs_;
  std::unique_ptr<TemporalCache, TemporalCacheDeleter> temporal_;
};

}  // namespace pcnn::core
