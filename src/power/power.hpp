#pragma once

#include <string>
#include <utility>
#include <vector>

namespace pcnn::power {

/// The paper's full-HD workload (Sec. 5.2): sliding windows at six scales
/// (1.1x apart), processed in 8x8-pixel cells, 26 fps for parity with the
/// reconfigurable-hardware baseline [1].
struct FullHdWorkload {
  int fps = 26;
  /// Cells per scale layer: {240x135, 160x90, 106x60, 71x40, 47x26, 31x17}.
  std::vector<std::pair<int, int>> cellGrid = {
      {240, 135}, {160, 90}, {106, 60}, {71, 40}, {47, 26}, {31, 17}};

  /// 57,749 cells per image in the paper.
  long cellsPerFrame() const {
    long cells = 0;
    for (const auto& [w, h] : cellGrid) cells += static_cast<long>(w) * h;
    return cells;
  }
  /// ~1.5 million cells/second at 26 fps.
  double cellsPerSecond() const {
    return static_cast<double>(cellsPerFrame()) * fps;
  }
};

/// A deployment estimate for one feature-extraction approach.
struct PowerEstimate {
  std::string approach;
  std::string signalResolution;
  double modules = 0.0;        ///< parallel extractor module instances
  double cellsPerSecondPerModule = 0.0;
  long cores = 0;
  double chips = 0.0;
  double watts = 0.0;
};

/// TrueNorth power model: 4096 cores at 65 mW per chip (Akopyan et al.),
/// i.e. ~15.9 uW per core. Power scales with provisioned cores.
class TrueNorthPowerModel {
 public:
  static constexpr double kChipWatts = 65e-3;
  static constexpr int kCoresPerChip = 4096;
  static constexpr double kTickMilliseconds = 1.0;  ///< 1 ms per tick

  static double corePowerWatts() { return kChipWatts / kCoresPerChip; }

  /// NApprox deployment: rate-coded inputs accumulate for `spikeWindow`
  /// ticks (64 = 6-bit precision), so one module finishes a cell every
  /// spikeWindow + overhead ticks (~15 cells/s at 64 spikes, matching the
  /// paper). The paper's module uses 26 cores.
  PowerEstimate napprox(const FullHdWorkload& workload, int spikeWindow = 64,
                        int coresPerModule = 26,
                        double overheadTicks = 8.0 / 3.0) const;

  /// Parrot deployment: stochastic coding over `spikes` ticks, output every
  /// tick once the pipeline fills, so throughput is ~1000/spikes cells/s
  /// (31 cells/s at 32 spikes, 1000 cells/s at 1 spike). 8 cores per cell
  /// module in the paper's design.
  PowerEstimate parrot(const FullHdWorkload& workload, int spikes,
                       int coresPerModule = 8) const;
};

/// FPGA baseline constants measured in the paper (Virtex-7 690T with a
/// CAPI interface, synthesized with Vivado): HoG logic alone 1.12 W, full
/// system 8.6 W at 16-bit precision.
struct FpgaPowerModel {
  double logicWatts = 1.12;
  double systemWatts = 8.6;
  int bits = 16;
};

/// All rows of the paper's Table 2 for the given workload.
std::vector<PowerEstimate> table2(const FullHdWorkload& workload = {});

/// Power ratio range quoted in the abstract: NApprox watts divided by
/// Parrot watts at 32- and 1-spike coding (6.5x .. 208x).
std::pair<double, double> napproxOverParrotRatio(
    const FullHdWorkload& workload = {});

}  // namespace pcnn::power
