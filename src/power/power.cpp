#include "power/power.hpp"

#include <cmath>
#include <stdexcept>

namespace pcnn::power {

PowerEstimate TrueNorthPowerModel::napprox(const FullHdWorkload& workload,
                                           int spikeWindow,
                                           int coresPerModule,
                                           double overheadTicks) const {
  if (spikeWindow <= 0 || coresPerModule <= 0) {
    throw std::invalid_argument("napprox: bad parameters");
  }
  PowerEstimate estimate;
  estimate.approach = "NApprox HoG on TrueNorth";
  estimate.signalResolution =
      std::to_string(spikeWindow) + "-spike (" +
      std::to_string(static_cast<int>(std::log2(spikeWindow))) + "-bit)";
  estimate.cellsPerSecondPerModule =
      1000.0 / (static_cast<double>(spikeWindow) + overheadTicks);
  estimate.modules =
      std::ceil(workload.cellsPerSecond() / estimate.cellsPerSecondPerModule);
  estimate.cores =
      static_cast<long>(estimate.modules) * static_cast<long>(coresPerModule);
  estimate.chips = static_cast<double>(estimate.cores) / kCoresPerChip;
  estimate.watts = static_cast<double>(estimate.cores) * corePowerWatts();
  return estimate;
}

PowerEstimate TrueNorthPowerModel::parrot(const FullHdWorkload& workload,
                                          int spikes,
                                          int coresPerModule) const {
  if (spikes <= 0 || coresPerModule <= 0) {
    throw std::invalid_argument("parrot: bad parameters");
  }
  PowerEstimate estimate;
  estimate.approach = "Parrot HoG on TrueNorth";
  const int bits = std::max(1, static_cast<int>(std::round(std::log2(spikes)) )) ;
  estimate.signalResolution = std::to_string(spikes) + "-spike (" +
                              std::to_string(spikes == 1 ? 1 : bits) +
                              "-bit)";
  // Stochastic coding emits output every tick; a window of `spikes` ticks
  // bounds one cell's latency, so each module streams 1000/spikes cells/s.
  estimate.cellsPerSecondPerModule = 1000.0 / static_cast<double>(spikes);
  estimate.modules =
      std::ceil(workload.cellsPerSecond() / estimate.cellsPerSecondPerModule);
  estimate.cores =
      static_cast<long>(estimate.modules) * static_cast<long>(coresPerModule);
  estimate.chips = static_cast<double>(estimate.cores) / kCoresPerChip;
  estimate.watts = static_cast<double>(estimate.cores) * corePowerWatts();
  return estimate;
}

std::vector<PowerEstimate> table2(const FullHdWorkload& workload) {
  const TrueNorthPowerModel model;
  const FpgaPowerModel fpga;
  std::vector<PowerEstimate> rows;

  PowerEstimate fpgaRow;
  fpgaRow.approach = "High-precision HoG on FPGA";
  fpgaRow.signalResolution = std::to_string(fpga.bits) + "-bit";
  fpgaRow.watts = fpga.systemWatts;  // system; logic-only is 1.12 W
  rows.push_back(fpgaRow);

  rows.push_back(model.napprox(workload));
  rows.push_back(model.parrot(workload, 32));
  rows.push_back(model.parrot(workload, 4));
  rows.push_back(model.parrot(workload, 1));
  return rows;
}

std::pair<double, double> napproxOverParrotRatio(
    const FullHdWorkload& workload) {
  const TrueNorthPowerModel model;
  const double napproxWatts = model.napprox(workload).watts;
  return {napproxWatts / model.parrot(workload, 32).watts,
          napproxWatts / model.parrot(workload, 1).watts};
}

}  // namespace pcnn::power
