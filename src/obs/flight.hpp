#pragma once

#include <string>

namespace pcnn::obs {

/// Flight recorder: a bounded per-thread ring of the most recent span
/// begin/end and counter events, armed by PCNN_FLIGHT=<path> (or
/// setFlightEnabled). Unlike PCNN_TRACE it never grows: a degraded frame
/// in a week-long run leaves only the last ~kFlightCapacity events per
/// thread, dumped to JSON on the first fault event and on demand.
///
/// Recording is lock-free and single-writer per ring: the owning thread
/// stores the slot fields (relaxed atomics) and publishes by bumping the
/// ring head. A dump taken while threads keep recording may read a slot
/// mid-overwrite; the fields are individually atomic, so the worst case
/// is one logically mixed record at the ring tail -- never undefined
/// behavior, never a torn pointer.

/// Events retained per thread ring (power of two).
inline constexpr long kFlightCapacity = 8192;

/// Writes a JSON dump of the merged rings (all live + retired threads,
/// sorted by timestamp) to `path`; "" uses configuredFlightPath().
/// Returns false when flight recording is compiled out, no path is
/// available, or the write fails.
bool dumpFlightRecorder(const std::string& path = "",
                        const char* reason = "on_demand");

/// Called by the fault-injection layer and DegradationReport on every
/// fault-ish event. The first call (per process, while the recorder is
/// armed and PCNN_FLIGHT is configured) dumps the rings automatically;
/// later calls are a cheap no-op. `reason` must have static storage
/// duration.
void noteFaultEvent(const char* reason);

/// True once noteFaultEvent has auto-dumped.
bool flightAutoDumped();

/// Events currently resident across all rings (capped per thread).
long flightEventCount();

/// Empties every ring and re-arms the noteFaultEvent auto-dump (tests).
void clearFlightRecorder();

}  // namespace pcnn::obs
