#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace pcnn::obs {

/// Pipeline-wide observability layer: scoped trace spans (Chrome
/// trace_event JSON), counters, latency histograms, and string tags,
/// shared by every subsystem so all perf work reports against the same
/// instruments.
///
/// Gating, designed so instrumentation can live permanently in hot paths:
///  - compile time: configuring with -DPCNN_OBS=OFF defines
///    PCNN_OBS_DISABLED for the whole tree; the macros expand to nothing
///    and the inline fast paths fold to constants. The library still
///    links, snapshot() is empty, every call is a no-op.
///  - runtime: PCNN_TRACE=<path> turns on span recording (exported to
///    <path> at exit), PCNN_METRICS=<path|stderr> turns on counters and
///    histograms (snapshot written at exit). PCNN_OBS=off is a master
///    kill switch overriding both. With neither variable set, the entire
///    layer costs one relaxed atomic load + predictable branch per
///    instrumentation site -- no clock reads, no stores.
///
/// Threading: counters and histograms are lock-free atomics after a
/// mutex-protected first lookup (hot sites cache the reference in a
/// function-local static). Spans record into per-thread buffers, so
/// worker threads never contend; buffers are drained under a registry
/// lock at export time.

#ifdef PCNN_OBS_DISABLED
inline constexpr bool kCompiledIn = false;
#else
inline constexpr bool kCompiledIn = true;
#endif

namespace detail {
/// Runtime switches, inlined into every call site. Relaxed is enough:
/// observing a toggle late loses at most a few events, never corrupts.
extern std::atomic<bool> traceOn;
extern std::atomic<bool> metricsOn;
}  // namespace detail

inline bool traceEnabled() {
  return kCompiledIn && detail::traceOn.load(std::memory_order_relaxed);
}
inline bool metricsEnabled() {
  return kCompiledIn && detail::metricsOn.load(std::memory_order_relaxed);
}

/// Programmatic toggles (tests, benches). Enabling metrics/tracing that
/// the env did not request does not register an at-exit export.
void setTraceEnabled(bool on);
void setMetricsEnabled(bool on);

/// Re-reads PCNN_TRACE / PCNN_METRICS / PCNN_OBS and reconfigures the
/// switches and export paths. Called once automatically during static
/// initialization of any binary linking the library; call again after
/// changing the environment to make the new values take effect.
void configureFromEnv();

/// Export paths currently configured from the environment ("" = none).
std::string configuredTracePath();
std::string configuredMetricsPath();

/// Microseconds since process start (steady clock).
double nowMicros();

// --------------------------------------------------------------------------
// Counters

/// A named monotonic counter. add() is safe from any thread and nearly
/// free while metrics are off.
class Counter {
 public:
  void add(long n = 1) {
    if (!metricsEnabled()) return;
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  long value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<long> value_{0};
};

/// Registry lookup (registers on first use). The reference stays valid for
/// the process lifetime; hot call sites should cache it:
///   static obs::Counter& c = obs::counter("windows_scanned");
Counter& counter(const std::string& name);

// --------------------------------------------------------------------------
// Latency histograms

/// Log2-bucketed latency histogram over microseconds, with count / sum /
/// min / max. record() is lock-free.
class LatencyHistogram {
 public:
  static constexpr int kBuckets = 32;  ///< bucket i: [2^i, 2^(i+1)) us

  void record(double us);

  long count() const { return count_.load(std::memory_order_relaxed); }
  double sumMicros() const {
    return static_cast<double>(sumNanos_.load(std::memory_order_relaxed)) *
           1e-3;
  }
  double minMicros() const;
  double maxMicros() const;
  long bucket(int i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  void reset();

 private:
  std::atomic<long> count_{0};
  std::atomic<long long> sumNanos_{0};
  std::atomic<long long> minNanos_{-1};  ///< -1 = no samples yet
  std::atomic<long long> maxNanos_{0};
  std::atomic<long> buckets_[kBuckets] = {};
};

LatencyHistogram& histogram(const std::string& name);

/// RAII timer recording its scope's wall time into a histogram on
/// destruction. No clock read while metrics are off.
class ScopedTimer {
 public:
  explicit ScopedTimer(LatencyHistogram& h)
      : hist_(metricsEnabled() ? &h : nullptr),
        startUs_(hist_ ? nowMicros() : 0.0) {}
  ~ScopedTimer() {
    if (hist_) hist_->record(nowMicros() - startUs_);
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  LatencyHistogram* hist_;
  double startUs_;
};

// --------------------------------------------------------------------------
// Tags (string-valued metrics: dispatch path, SIMD level, ...)

void setTag(const std::string& name, const std::string& value);

// --------------------------------------------------------------------------
// Snapshot

struct HistogramStats {
  std::string name;
  long count = 0;
  double sumUs = 0.0;
  double minUs = 0.0;
  double maxUs = 0.0;
  std::vector<std::pair<double, long>> buckets;  ///< (upper bound us, count)
};

struct MetricsSnapshot {
  std::vector<std::pair<std::string, long>> counters;  ///< nonzero only
  std::vector<HistogramStats> histograms;              ///< nonempty only
  std::vector<std::pair<std::string, std::string>> tags;
  bool empty() const {
    return counters.empty() && histograms.empty() && tags.empty();
  }
};

/// Current values of every nonzero counter / nonempty histogram / tag.
MetricsSnapshot snapshot();
/// snapshot() rendered as a JSON object.
std::string snapshotJson();
/// Zeroes all counters and histograms and clears tags.
void resetMetrics();

// --------------------------------------------------------------------------
// Trace spans

/// RAII span. `name` (and `argKey`) must have static storage duration --
/// pass string literals. Spans may nest freely and may be opened on any
/// thread; each thread records into its own buffer. When tracing is off
/// construction reads no clock.
class Span {
 public:
  explicit Span(const char* name) : Span(name, nullptr, 0) {}
  Span(const char* name, const char* argKey, long argValue);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_;
  const char* argKey_;
  long argValue_;
  double startUs_;  ///< < 0 = inactive (tracing was off at entry)
};

/// All recorded events as Chrome trace_event JSON ("traceEvents" array of
/// "ph":"X" complete events); loadable in chrome://tracing or Perfetto.
std::string traceJson();
/// Number of span events currently buffered across all threads.
long traceEventCount();
/// Discards all buffered events.
void clearTrace();

// --------------------------------------------------------------------------
// Export

/// Writes traceJson() to `path`. Returns false on I/O failure.
bool writeTrace(const std::string& path);
/// Writes snapshotJson() to `path` ("stderr" or "-" writes to stderr).
bool writeMetrics(const std::string& path);
/// Writes whatever PCNN_TRACE / PCNN_METRICS requested (no-op when unset).
/// Also runs automatically at process exit, so ad-hoc runs need no code.
void writeConfiguredReports();

}  // namespace pcnn::obs

// ---------------------------------------------------------------------------
// Macros: the only interface hot code should use for spans, so a
// PCNN_OBS=OFF build removes the objects entirely.

#ifdef PCNN_OBS_DISABLED
#define PCNN_SPAN(name) \
  do {                  \
  } while (0)
#define PCNN_SPAN_ARG(name, key, value) \
  do {                                  \
  } while (0)
#else
#define PCNN_OBS_CONCAT2(a, b) a##b
#define PCNN_OBS_CONCAT(a, b) PCNN_OBS_CONCAT2(a, b)
/// Opens a span covering the rest of the enclosing scope.
#define PCNN_SPAN(name) \
  ::pcnn::obs::Span PCNN_OBS_CONCAT(pcnnObsSpan_, __LINE__)(name)
/// Same, attaching one integer argument (shown in the trace viewer).
#define PCNN_SPAN_ARG(name, key, value)                        \
  ::pcnn::obs::Span PCNN_OBS_CONCAT(pcnnObsSpan_, __LINE__)(   \
      name, key, static_cast<long>(value))
#endif
