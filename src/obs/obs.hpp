#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace pcnn::obs {

/// Pipeline-wide observability layer: scoped trace spans (Chrome
/// trace_event JSON), counters, gauges, latency histograms, and string
/// tags, shared by every subsystem so all perf work reports against the
/// same instruments.
///
/// Gating, designed so instrumentation can live permanently in hot paths:
///  - compile time: configuring with -DPCNN_OBS=OFF defines
///    PCNN_OBS_DISABLED for the whole tree; the macros expand to nothing
///    and the inline fast paths fold to constants. The library still
///    links, snapshot() is empty, every call is a no-op.
///  - runtime: PCNN_TRACE=<path> turns on span recording (exported to
///    <path> at exit), PCNN_METRICS=<path|stderr> turns on counters and
///    histograms (snapshot written at exit, or streamed periodically when
///    PCNN_METRICS_PERIOD_MS is also set), PCNN_FLIGHT=<path> arms the
///    flight recorder (see obs/flight.hpp). PCNN_OBS=off is a master
///    kill switch overriding all of them. With none of the variables set,
///    the entire layer costs a couple of relaxed atomic loads +
///    predictable branches per instrumentation site -- no clock reads,
///    no stores.
///
/// Threading: counters, gauges and histograms are lock-free atomics after
/// a mutex-protected first lookup (hot sites cache the reference in a
/// function-local static). Spans record into per-thread buffers, so
/// worker threads never contend; buffers are drained under a registry
/// lock at export time.

#ifdef PCNN_OBS_DISABLED
inline constexpr bool kCompiledIn = false;
#else
inline constexpr bool kCompiledIn = true;
#endif

namespace detail {
/// Runtime switches, inlined into every call site. Relaxed is enough:
/// observing a toggle late loses at most a few events, never corrupts.
extern std::atomic<bool> traceOn;
extern std::atomic<bool> metricsOn;
extern std::atomic<bool> flightOn;

/// Flight-recorder write hooks (implemented in flight.cpp); call only
/// behind flightEnabled(). `name` must have static storage duration.
void flightRecordBegin(const char* name, long arg);
void flightRecordEnd(const char* name);
void flightRecordCount(const char* name, long delta);
}  // namespace detail

inline bool traceEnabled() {
  return kCompiledIn && detail::traceOn.load(std::memory_order_relaxed);
}
inline bool metricsEnabled() {
  return kCompiledIn && detail::metricsOn.load(std::memory_order_relaxed);
}
inline bool flightEnabled() {
  return kCompiledIn && detail::flightOn.load(std::memory_order_relaxed);
}

/// Programmatic toggles (tests, benches). Enabling metrics/tracing that
/// the env did not request does not register an at-exit export.
void setTraceEnabled(bool on);
void setMetricsEnabled(bool on);
void setFlightEnabled(bool on);

/// Re-reads PCNN_TRACE / PCNN_METRICS / PCNN_METRICS_PERIOD_MS /
/// PCNN_FLIGHT / PCNN_OBS and reconfigures the switches, export paths and
/// the streaming exporter thread. Called once automatically during static
/// initialization of any binary linking the library; call again after
/// changing the environment to make the new values take effect.
void configureFromEnv();

/// Export paths currently configured from the environment ("" = none).
std::string configuredTracePath();
std::string configuredMetricsPath();
std::string configuredFlightPath();
/// Streaming period (ms) from PCNN_METRICS_PERIOD_MS; 0 = exit-time only.
int configuredMetricsPeriodMs();

/// Microseconds since process start (steady clock).
double nowMicros();

// --------------------------------------------------------------------------
// Counters

/// A named monotonic counter. add() is safe from any thread and nearly
/// free while metrics are off. When the flight recorder is armed, add()
/// also leaves a count event in the calling thread's ring.
class Counter {
 public:
  void add(long n = 1) {
    if (metricsEnabled()) value_.fetch_add(n, std::memory_order_relaxed);
    if (flightEnabled() && flightName_ != nullptr) {
      detail::flightRecordCount(flightName_, n);
    }
  }
  long value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

  /// Registry-owned stable name used for flight-recorder events; set once
  /// at registration (the registry map key outlives the process).
  void setFlightName(const char* name) { flightName_ = name; }

 private:
  std::atomic<long> value_{0};
  const char* flightName_ = nullptr;
};

/// Registry lookup (registers on first use). The reference stays valid for
/// the process lifetime; hot call sites should cache it:
///   static obs::Counter& c = obs::counter("windows_scanned");
Counter& counter(const std::string& name);

// --------------------------------------------------------------------------
// Gauges

/// A named point-in-time value (queue depth, hit rate, active cores, fps).
/// Unlike a Counter it is not monotonic: set() overwrites, add() offsets.
/// Lock-free; the double payload travels as its bit pattern through an
/// atomic integer so torn reads are impossible.
class Gauge {
 public:
  void set(double v) {
    if (!metricsEnabled()) return;
    bits_.store(std::bit_cast<long long>(v), std::memory_order_relaxed);
    updates_.fetch_add(1, std::memory_order_relaxed);
  }
  void add(double delta) {
    if (!metricsEnabled()) return;
    long long seen = bits_.load(std::memory_order_relaxed);
    while (!bits_.compare_exchange_weak(
        seen, std::bit_cast<long long>(std::bit_cast<double>(seen) + delta),
        std::memory_order_relaxed)) {
    }
    updates_.fetch_add(1, std::memory_order_relaxed);
  }
  double value() const {
    return std::bit_cast<double>(bits_.load(std::memory_order_relaxed));
  }
  /// Number of set()/add() calls since the last reset; snapshots use this
  /// to tell "never touched" from "legitimately set to 0".
  long updateCount() const {
    return updates_.load(std::memory_order_relaxed);
  }
  void reset() {
    bits_.store(0, std::memory_order_relaxed);
    updates_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<long long> bits_{0};  ///< 0 is the bit pattern of 0.0
  std::atomic<long> updates_{0};
};

Gauge& gauge(const std::string& name);

// --------------------------------------------------------------------------
// Latency histograms

/// Log2-bucketed latency histogram over microseconds, with count / sum /
/// min / max. record() is lock-free.
class LatencyHistogram {
 public:
  static constexpr int kBuckets = 32;  ///< bucket i: [2^i, 2^(i+1)) us

  void record(double us);

  long count() const { return count_.load(std::memory_order_relaxed); }
  double sumMicros() const {
    return static_cast<double>(sumNanos_.load(std::memory_order_relaxed)) *
           1e-3;
  }
  double minMicros() const;
  double maxMicros() const;
  long bucket(int i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  void reset();

 private:
  std::atomic<long> count_{0};
  std::atomic<long long> sumNanos_{0};
  std::atomic<long long> minNanos_{-1};  ///< -1 = no samples yet
  std::atomic<long long> maxNanos_{0};
  std::atomic<long> buckets_[kBuckets] = {};
};

LatencyHistogram& histogram(const std::string& name);

/// RAII timer recording its scope's wall time into a histogram on
/// destruction. No clock read while metrics are off.
class ScopedTimer {
 public:
  explicit ScopedTimer(LatencyHistogram& h)
      : hist_(metricsEnabled() ? &h : nullptr),
        startUs_(hist_ ? nowMicros() : 0.0) {}
  ~ScopedTimer() {
    if (hist_) hist_->record(nowMicros() - startUs_);
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  LatencyHistogram* hist_;
  double startUs_;
};

// --------------------------------------------------------------------------
// Tags (string-valued metrics: dispatch path, SIMD level, ...)

void setTag(const std::string& name, const std::string& value);

// --------------------------------------------------------------------------
// Snapshot (cumulative, since process start / last resetMetrics)

struct HistogramStats {
  std::string name;
  long count = 0;
  double sumUs = 0.0;
  double minUs = 0.0;
  double maxUs = 0.0;
  std::vector<std::pair<double, long>> buckets;  ///< (upper bound us, count)
};

struct MetricsSnapshot {
  std::vector<std::pair<std::string, long>> counters;  ///< nonzero only
  std::vector<std::pair<std::string, double>> gauges;  ///< touched only
  std::vector<HistogramStats> histograms;              ///< nonempty only
  std::vector<std::pair<std::string, std::string>> tags;
  bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty() &&
           tags.empty();
  }
};

/// Current values of every nonzero counter / touched gauge / nonempty
/// histogram / tag.
MetricsSnapshot snapshot();
/// snapshot() rendered as a JSON object.
std::string snapshotJson();
/// Zeroes all counters, gauges and histograms and clears tags. Bumps the
/// window epoch, so a concurrent windowSnapshot() (e.g. the streaming
/// exporter) re-baselines and flags the window instead of reporting
/// negative deltas.
void resetMetrics();

// --------------------------------------------------------------------------
// Windowed snapshot (deltas since the previous windowSnapshot call)

struct WindowHistogramStats {
  std::string name;
  long count = 0;      ///< samples recorded this window
  double sumUs = 0.0;  ///< time accumulated this window
  /// Quantiles interpolated linearly inside the log2 buckets of this
  /// window's samples -- bounded by bucket resolution, not exact.
  double p50Us = 0.0;
  double p95Us = 0.0;
  double p99Us = 0.0;
};

struct WindowSnapshot {
  long long seq = 0;        ///< monotonically increasing window number
  double startUs = 0.0;     ///< window start (process-relative)
  double endUs = 0.0;       ///< window end = snapshot time
  /// True when resetMetrics() landed since the previous window: the
  /// baseline was rebuilt and all deltas suppressed for this window.
  /// Consumers (the exporter) should skip such a window.
  bool baselineReset = false;
  std::vector<std::pair<std::string, long>> counters;  ///< deltas, nonzero
  std::vector<std::pair<std::string, double>> gauges;  ///< current values
  std::vector<WindowHistogramStats> histograms;        ///< count > 0 only
  std::vector<std::pair<std::string, std::string>> tags;
};

/// Advances the global window: returns per-interval counter/histogram
/// deltas since the previous call (plus current gauge values) and makes
/// this instant the new baseline. Thread-safe; concurrent callers see
/// disjoint windows.
WindowSnapshot windowSnapshot();

/// Linear interpolation of the q-quantile inside log2 delta buckets
/// (bucket i covers [2^i, 2^(i+1)) us; bucket 0 covers [0, 2)). This is
/// the interpolation windowSnapshot() uses for its p50/p95/p99 fields,
/// exposed for control loops that window a histogram against their own
/// baseline instead of consuming (and stealing) the global window -- the
/// serving layer's p99 ladder signal (serve::DetectionService).
/// `delta` must point at LatencyHistogram::kBuckets per-window counts and
/// `count` at their total; returns 0 for an empty window.
double quantileFromDeltaBuckets(const long* delta, long count, double q);
/// One compact NDJSON line (no trailing newline) for a window.
std::string windowJson(const WindowSnapshot& w);

// --------------------------------------------------------------------------
// Prometheus-style text exposition (cumulative, for a /metrics endpoint)

/// snapshot() rendered in the Prometheus text exposition format: metric
/// names are prefixed "pcnn_" and sanitized (non-[a-zA-Z0-9_] -> '_'),
/// each metric gets one `# TYPE` line, histograms emit cumulative
/// `_bucket{le="..."}` series plus `_sum`/`_count`, and tags are exposed
/// as labels on a single `pcnn_info` gauge.
std::string expositionText();

// --------------------------------------------------------------------------
// Streaming exporter (background thread, PCNN_METRICS_PERIOD_MS)

/// Starts (or reconfigures) the background exporter appending one
/// windowJson() line per period to `path` ("stderr"/"-" = stderr). A path
/// ending in ".prom" is instead rewritten with expositionText() each
/// period. Idempotent: same path+period is a no-op; a change restarts the
/// thread. Normally driven by configureFromEnv().
void startMetricsExporter(const std::string& path, int periodMs);
/// Stops the exporter thread, flushing one final window. Idempotent; runs
/// automatically at process exit before the exit-time report (which then
/// skips the cumulative metrics write so the final window is not
/// double-written).
void stopMetricsExporter();
bool metricsExporterRunning();

// --------------------------------------------------------------------------
// Trace spans

/// RAII span. `name` (and `argKey`) must have static storage duration --
/// pass string literals. Spans may nest freely and may be opened on any
/// thread; each thread records into its own buffer. When tracing is off
/// construction reads no clock. When the flight recorder is armed the
/// span also leaves begin/end events in the calling thread's ring.
class Span {
 public:
  explicit Span(const char* name) : Span(name, nullptr, 0) {}
  Span(const char* name, const char* argKey, long argValue);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_;
  const char* argKey_;
  long argValue_;
  double startUs_;  ///< < 0 = inactive (neither trace nor flight on)
  bool traceActive_;  ///< push a Chrome trace event at destruction
};

/// All recorded events as Chrome trace_event JSON ("traceEvents" array of
/// "ph":"X" complete events); loadable in chrome://tracing or Perfetto.
std::string traceJson();
/// Number of span events currently buffered across all threads.
long traceEventCount();
/// Discards all buffered events.
void clearTrace();

// --------------------------------------------------------------------------
// Export

/// Writes traceJson() to `path`. Returns false on I/O failure.
bool writeTrace(const std::string& path);
/// Writes snapshotJson() to `path` ("stderr" or "-" writes to stderr); a
/// path ending in ".prom" gets expositionText() instead.
bool writeMetrics(const std::string& path);
/// Writes whatever PCNN_TRACE / PCNN_METRICS requested (no-op when unset).
/// Also runs automatically at process exit, so ad-hoc runs need no code.
/// When the streaming exporter is active it is stopped (flushing its
/// final window) and the cumulative metrics write is skipped.
void writeConfiguredReports();

}  // namespace pcnn::obs

// ---------------------------------------------------------------------------
// Macros: the only interface hot code should use for spans, so a
// PCNN_OBS=OFF build removes the objects entirely.

#ifdef PCNN_OBS_DISABLED
#define PCNN_SPAN(name) \
  do {                  \
  } while (0)
#define PCNN_SPAN_ARG(name, key, value) \
  do {                                  \
  } while (0)
#else
#define PCNN_OBS_CONCAT2(a, b) a##b
#define PCNN_OBS_CONCAT(a, b) PCNN_OBS_CONCAT2(a, b)
/// Opens a span covering the rest of the enclosing scope.
#define PCNN_SPAN(name) \
  ::pcnn::obs::Span PCNN_OBS_CONCAT(pcnnObsSpan_, __LINE__)(name)
/// Same, attaching one integer argument (shown in the trace viewer).
#define PCNN_SPAN_ARG(name, key, value)                        \
  ::pcnn::obs::Span PCNN_OBS_CONCAT(pcnnObsSpan_, __LINE__)(   \
      name, key, static_cast<long>(value))
#endif
