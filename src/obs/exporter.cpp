// Streaming metrics exporter: a background thread gated by
// PCNN_METRICS_PERIOD_MS that turns the exit-time snapshot into a
// periodic stream. Each tick advances the global window (windowSnapshot)
// and either appends one NDJSON line to PCNN_METRICS or -- when the path
// ends in ".prom" -- rewrites the file with the cumulative Prometheus
// exposition. stop() flushes one final window and joins; the exit-time
// report then skips its cumulative metrics write so nothing is emitted
// twice.
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>

#include "obs/json_util.hpp"
#include "obs/obs.hpp"

namespace pcnn::obs {

namespace {

struct Exporter {
  /// Serializes start/stop (held across thread join). The worker thread
  /// never takes it, so joining under it cannot deadlock.
  std::mutex lifecycle;
  bool running = false;  ///< guarded by lifecycle
  std::thread thread;    ///< guarded by lifecycle
  std::string path;      ///< guarded by lifecycle
  int periodMs = 0;      ///< guarded by lifecycle

  std::mutex mutex;  ///< guards stopRequested for the cv
  std::condition_variable cv;
  bool stopRequested = false;

  static Exporter& instance() {
    static Exporter* e = new Exporter();  // never destroyed
    return *e;
  }
};

/// Emits one window to `path`. A window flagged baselineReset (a
/// concurrent resetMetrics() invalidated the deltas) is skipped entirely
/// rather than reported with clamped or negative values.
void emitWindow(const std::string& path) {
  const WindowSnapshot w = windowSnapshot();
  if (w.baselineReset) return;
  if (internal::promFormatPath(path)) {
    internal::writeStringToFile(path, expositionText());
    return;
  }
  const std::string line = windowJson(w);
  if (path == "stderr" || path == "-") {
    std::fprintf(stderr, "%s\n", line.c_str());
    return;
  }
  std::FILE* f = std::fopen(path.c_str(), "a");
  if (!f) return;
  std::fprintf(f, "%s\n", line.c_str());
  std::fclose(f);
}

void exporterLoop(std::string path, int periodMs) {
  auto& e = Exporter::instance();
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(e.mutex);
      e.cv.wait_for(lock, std::chrono::milliseconds(periodMs),
                    [&] { return e.stopRequested; });
      if (e.stopRequested) break;
    }
    emitWindow(path);
  }
  // Final flush: whatever accumulated since the last tick.
  emitWindow(path);
}

/// Caller holds e.lifecycle.
void stopUnderLifecycle(Exporter& e) {
  if (!e.running) return;
  {
    std::lock_guard<std::mutex> lock(e.mutex);
    e.stopRequested = true;
  }
  e.cv.notify_all();
  e.thread.join();
  e.running = false;
}

}  // namespace

void startMetricsExporter(const std::string& path, int periodMs) {
  if (!kCompiledIn) return;
  auto& e = Exporter::instance();
  std::lock_guard<std::mutex> life(e.lifecycle);
  if (e.running && e.path == path && e.periodMs == periodMs) return;
  stopUnderLifecycle(e);
  if (path.empty() || periodMs <= 0) return;
  {
    std::lock_guard<std::mutex> lock(e.mutex);
    e.stopRequested = false;
  }
  e.path = path;
  e.periodMs = periodMs;
  e.thread = std::thread(exporterLoop, path, periodMs);
  e.running = true;
}

void stopMetricsExporter() {
  auto& e = Exporter::instance();
  std::lock_guard<std::mutex> life(e.lifecycle);
  stopUnderLifecycle(e);
}

bool metricsExporterRunning() {
  auto& e = Exporter::instance();
  std::lock_guard<std::mutex> life(e.lifecycle);
  return e.running;
}

}  // namespace pcnn::obs
