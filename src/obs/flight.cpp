#include "obs/flight.hpp"

#include <algorithm>
#include <atomic>
#include <memory>
#include <mutex>
#include <vector>

#include "obs/json_util.hpp"
#include "obs/obs.hpp"

namespace pcnn::obs {

namespace {

using internal::appendJsonEscaped;
using internal::appendNumber;
using internal::writeStringToFile;

enum Kind : int { kBegin = 0, kEnd = 1, kCount = 2 };

const char* kindName(int kind) {
  switch (kind) {
    case kBegin:
      return "begin";
    case kEnd:
      return "end";
    default:
      return "count";
  }
}

/// One ring slot. Every field is an individually relaxed atomic so a dump
/// racing the writer reads stale-or-fresh values, never indeterminate
/// ones; the single writer publishes a slot by bumping `head` (release).
struct Slot {
  std::atomic<double> tsUs{0.0};
  std::atomic<const char*> name{nullptr};
  std::atomic<long> arg{0};
  std::atomic<int> kind{kBegin};
};

struct FlightRing {
  std::atomic<unsigned long> head{0};  ///< events ever written
  int tid = 0;
  Slot slots[kFlightCapacity];
};

/// A record read back out of a ring (or saved from a retired thread).
struct Record {
  double tsUs = 0.0;
  const char* name = nullptr;
  long arg = 0;
  int kind = kBegin;
  int tid = 0;
};

struct FlightRegistry {
  std::mutex mutex;
  std::vector<FlightRing*> live;
  std::vector<Record> retired;  ///< newest kept, capped at kFlightCapacity
  std::atomic<int> nextTid{1};
  std::atomic<bool> autoDumped{false};

  static FlightRegistry& instance() {
    static FlightRegistry* r = new FlightRegistry();  // never destroyed
    return *r;
  }
};

/// Reads the resident events of one ring, oldest first. Caller holds the
/// registry mutex (so the ring cannot retire mid-read); the owner thread
/// may still be appending -- see the Slot comment.
void drainRing(const FlightRing& ring, std::vector<Record>& out) {
  const unsigned long head = ring.head.load(std::memory_order_acquire);
  const unsigned long n =
      head < static_cast<unsigned long>(kFlightCapacity)
          ? head
          : static_cast<unsigned long>(kFlightCapacity);
  for (unsigned long i = head - n; i != head; ++i) {
    const Slot& s =
        ring.slots[i & (static_cast<unsigned long>(kFlightCapacity) - 1)];
    Record r;
    r.tsUs = s.tsUs.load(std::memory_order_relaxed);
    r.name = s.name.load(std::memory_order_relaxed);
    r.arg = s.arg.load(std::memory_order_relaxed);
    r.kind = s.kind.load(std::memory_order_relaxed);
    r.tid = ring.tid;
    if (r.name != nullptr) out.push_back(r);
  }
}

/// Owns one thread's ring; retires its events into the registry so a
/// dump after the thread exits still sees them.
struct RingHolder {
  FlightRing* ring;

  RingHolder() : ring(new FlightRing()) {
    auto& reg = FlightRegistry::instance();
    ring->tid = reg.nextTid.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(reg.mutex);
    reg.live.push_back(ring);
  }

  ~RingHolder() {
    auto& reg = FlightRegistry::instance();
    std::lock_guard<std::mutex> lock(reg.mutex);
    drainRing(*ring, reg.retired);
    if (reg.retired.size() > static_cast<std::size_t>(kFlightCapacity)) {
      reg.retired.erase(
          reg.retired.begin(),
          reg.retired.end() - static_cast<std::size_t>(kFlightCapacity));
    }
    reg.live.erase(std::find(reg.live.begin(), reg.live.end(), ring));
    delete ring;
  }
};

FlightRing& threadRing() {
  static thread_local RingHolder holder;
  return *holder.ring;
}

void record(int kind, const char* name, long arg) {
  FlightRing& ring = threadRing();
  const unsigned long h = ring.head.load(std::memory_order_relaxed);
  Slot& s =
      ring.slots[h & (static_cast<unsigned long>(kFlightCapacity) - 1)];
  s.tsUs.store(nowMicros(), std::memory_order_relaxed);
  s.name.store(name, std::memory_order_relaxed);
  s.arg.store(arg, std::memory_order_relaxed);
  s.kind.store(kind, std::memory_order_relaxed);
  ring.head.store(h + 1, std::memory_order_release);
}

std::vector<Record> collectRecords() {
  auto& reg = FlightRegistry::instance();
  std::vector<Record> out;
  {
    std::lock_guard<std::mutex> lock(reg.mutex);
    out = reg.retired;
    for (const FlightRing* ring : reg.live) drainRing(*ring, out);
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const Record& a, const Record& b) {
                     return a.tsUs < b.tsUs;
                   });
  return out;
}

}  // namespace

namespace detail {

void flightRecordBegin(const char* name, long arg) {
  record(kBegin, name, arg);
}

void flightRecordEnd(const char* name) { record(kEnd, name, 0); }

void flightRecordCount(const char* name, long delta) {
  record(kCount, name, delta);
}

}  // namespace detail

bool dumpFlightRecorder(const std::string& path, const char* reason) {
  if (!kCompiledIn) return false;
  const std::string target = path.empty() ? configuredFlightPath() : path;
  if (target.empty()) return false;
  const std::vector<Record> records = collectRecords();
  std::string out = "{\n  \"reason\": \"";
  appendJsonEscaped(out, reason);
  out += "\",\n  \"dumped_at_us\": ";
  appendNumber(out, nowMicros());
  out += ",\n  \"capacity_per_thread\": " + std::to_string(kFlightCapacity);
  out += ",\n  \"events\": [";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const Record& r = records[i];
    out += i ? ",\n    " : "\n    ";
    out += "{\"ts_us\": ";
    appendNumber(out, r.tsUs);
    out += ", \"tid\": " + std::to_string(r.tid) + ", \"kind\": \"";
    out += kindName(r.kind);
    out += "\", \"name\": \"";
    appendJsonEscaped(out, r.name);
    out += "\", \"arg\": " + std::to_string(r.arg) + "}";
  }
  out += records.empty() ? "]\n" : "\n  ]\n";
  out += "}\n";
  return writeStringToFile(target, out);
}

void noteFaultEvent(const char* reason) {
  if (!flightEnabled()) return;
  auto& reg = FlightRegistry::instance();
  if (reg.autoDumped.load(std::memory_order_relaxed)) return;
  const std::string path = configuredFlightPath();
  if (path.empty()) return;
  if (reg.autoDumped.exchange(true, std::memory_order_acq_rel)) return;
  dumpFlightRecorder(path, reason);
}

bool flightAutoDumped() {
  return FlightRegistry::instance().autoDumped.load(
      std::memory_order_relaxed);
}

long flightEventCount() {
  auto& reg = FlightRegistry::instance();
  std::lock_guard<std::mutex> lock(reg.mutex);
  long total = static_cast<long>(reg.retired.size());
  for (const FlightRing* ring : reg.live) {
    const unsigned long head = ring->head.load(std::memory_order_acquire);
    total += static_cast<long>(
        head < static_cast<unsigned long>(kFlightCapacity)
            ? head
            : static_cast<unsigned long>(kFlightCapacity));
  }
  return total;
}

void clearFlightRecorder() {
  auto& reg = FlightRegistry::instance();
  std::lock_guard<std::mutex> lock(reg.mutex);
  reg.retired.clear();
  for (FlightRing* ring : reg.live) {
    ring->head.store(0, std::memory_order_relaxed);
  }
  reg.autoDumped.store(false, std::memory_order_relaxed);
}

}  // namespace pcnn::obs
