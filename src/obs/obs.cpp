#include "obs/obs.hpp"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>

#include "common/env.hpp"
#include "obs/flight.hpp"
#include "obs/json_util.hpp"

namespace pcnn::obs {

namespace detail {
std::atomic<bool> traceOn{false};
std::atomic<bool> metricsOn{false};
std::atomic<bool> flightOn{false};
}  // namespace detail

namespace {

using internal::appendJsonEscaped;
using internal::appendNumber;
using internal::writeStringToFile;

using Clock = std::chrono::steady_clock;

const Clock::time_point kProcessStart = Clock::now();

/// One recorded span, Chrome trace_event "ph":"X" complete-event shaped.
struct TraceEvent {
  const char* name;
  const char* argKey;  ///< nullptr = no args
  long argValue;
  double tsUs;
  double durUs;
  int tid;
};

/// Per-thread span buffer. The owner thread appends under the buffer's own
/// mutex (uncontended except while an export drains); at thread exit the
/// events move to the global retired list so nothing is lost.
struct ThreadBuffer;

struct TraceRegistry {
  std::mutex mutex;
  std::vector<ThreadBuffer*> live;
  std::vector<TraceEvent> retired;
  std::atomic<int> nextTid{1};
  std::atomic<long> dropped{0};

  static TraceRegistry& instance() {
    static TraceRegistry* r = new TraceRegistry();  // never destroyed:
    return *r;  // thread buffers may retire during static destruction
  }
};

struct ThreadBuffer {
  std::mutex mutex;
  std::vector<TraceEvent> events;
  int tid;
  /// Cap per thread so a forgotten PCNN_TRACE on a long service run cannot
  /// grow without bound; overflow is counted, not silently swallowed.
  static constexpr std::size_t kMaxEvents = 1u << 20;

  ThreadBuffer() {
    auto& reg = TraceRegistry::instance();
    tid = reg.nextTid.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(reg.mutex);
    reg.live.push_back(this);
  }

  ~ThreadBuffer() {
    auto& reg = TraceRegistry::instance();
    std::lock_guard<std::mutex> lock(reg.mutex);
    reg.retired.insert(reg.retired.end(), events.begin(), events.end());
    reg.live.erase(std::find(reg.live.begin(), reg.live.end(), this));
  }

  void push(const TraceEvent& e) {
    std::lock_guard<std::mutex> lock(mutex);
    if (events.size() >= kMaxEvents) {
      TraceRegistry::instance().dropped.fetch_add(1,
                                                  std::memory_order_relaxed);
      return;
    }
    events.push_back(e);
  }
};

ThreadBuffer& threadBuffer() {
  static thread_local ThreadBuffer buffer;
  return buffer;
}

/// Per-histogram window baseline: the cumulative state at the end of the
/// previous window, so the next windowSnapshot() can subtract.
struct HistBaseline {
  long count = 0;
  double sumUs = 0.0;
  long buckets[LatencyHistogram::kBuckets] = {};
};

/// Counter / gauge / histogram / tag registries. Pointers handed out stay
/// valid forever (values are heap-allocated, the maps are never
/// destroyed). Window baselines live here too, guarded by the same mutex.
struct MetricsStore {
  std::mutex mutex;
  std::map<std::string, std::unique_ptr<Counter>> counters;
  std::map<std::string, std::unique_ptr<Gauge>> gauges;
  std::map<std::string, std::unique_ptr<LatencyHistogram>> histograms;
  std::map<std::string, std::string> tags;

  // Windowed-view state (all guarded by `mutex`).
  std::map<std::string, long> counterBase;
  std::map<std::string, HistBaseline> histBase;
  double windowStartUs = 0.0;
  long long windowSeq = 0;
  /// resetMetrics() bumps resetEpoch; windowSnapshot() re-baselines (and
  /// flags the window) whenever it observes a mismatch, so a concurrent
  /// exporter never emits negative deltas.
  unsigned long resetEpoch = 0;
  unsigned long windowEpoch = 0;

  static MetricsStore& instance() {
    static MetricsStore* store = new MetricsStore();
    return *store;
  }
};

struct ExportConfig {
  std::mutex mutex;
  std::string tracePath;
  std::string metricsPath;
  std::string flightPath;
  int metricsPeriodMs = 0;

  static ExportConfig& instance() {
    static ExportConfig* config = new ExportConfig();
    return *config;
  }
};

void atExitExport() { writeConfiguredReports(); }

/// Reads the environment once per process load, so a binary run with
/// PCNN_TRACE / PCNN_METRICS / PCNN_FLIGHT needs no code changes to
/// produce reports.
struct EnvInitializer {
  EnvInitializer() { configureFromEnv(); }
};
const EnvInitializer kEnvInitializer;

}  // namespace

double nowMicros() {
  return std::chrono::duration<double, std::micro>(Clock::now() -
                                                   kProcessStart)
      .count();
}

void setTraceEnabled(bool on) {
  detail::traceOn.store(kCompiledIn && on, std::memory_order_relaxed);
}

void setMetricsEnabled(bool on) {
  detail::metricsOn.store(kCompiledIn && on, std::memory_order_relaxed);
}

void setFlightEnabled(bool on) {
  detail::flightOn.store(kCompiledIn && on, std::memory_order_relaxed);
}

void configureFromEnv() {
  // PCNN_OBS is a master switch defaulting to on; PCNN_TRACE/PCNN_METRICS/
  // PCNN_FLIGHT are output paths, not flags. PCNN_METRICS_PERIOD_MS turns
  // the exit-time metrics snapshot into a periodic stream.
  const bool masterOn = env::flag("PCNN_OBS", true);
  const std::string trace = env::str("PCNN_TRACE");
  const std::string metrics = env::str("PCNN_METRICS");
  const std::string flight = env::str("PCNN_FLIGHT");
  const int periodMs =
      static_cast<int>(env::intValue("PCNN_METRICS_PERIOD_MS", 0, 1,
                                     3'600'000));
  auto& config = ExportConfig::instance();
  bool anyConfigured = false;
  {
    std::lock_guard<std::mutex> lock(config.mutex);
    config.tracePath = masterOn ? trace : "";
    config.metricsPath = masterOn ? metrics : "";
    config.flightPath = masterOn ? flight : "";
    config.metricsPeriodMs = config.metricsPath.empty() ? 0 : periodMs;
    anyConfigured = !config.tracePath.empty() ||
                    !config.metricsPath.empty() ||
                    !config.flightPath.empty();
  }
  setTraceEnabled(masterOn && !trace.empty());
  setMetricsEnabled(masterOn && !metrics.empty());
  setFlightEnabled(masterOn && !flight.empty());
  if (masterOn && !metrics.empty() && periodMs > 0) {
    startMetricsExporter(metrics, periodMs);
  } else {
    stopMetricsExporter();
  }
  if (anyConfigured) {
    static bool atExitRegistered = false;
    static std::mutex registerMutex;
    std::lock_guard<std::mutex> lock(registerMutex);
    if (!atExitRegistered) {
      std::atexit(atExitExport);
      atExitRegistered = true;
    }
  }
}

std::string configuredTracePath() {
  auto& config = ExportConfig::instance();
  std::lock_guard<std::mutex> lock(config.mutex);
  return config.tracePath;
}

std::string configuredMetricsPath() {
  auto& config = ExportConfig::instance();
  std::lock_guard<std::mutex> lock(config.mutex);
  return config.metricsPath;
}

std::string configuredFlightPath() {
  auto& config = ExportConfig::instance();
  std::lock_guard<std::mutex> lock(config.mutex);
  return config.flightPath;
}

int configuredMetricsPeriodMs() {
  auto& config = ExportConfig::instance();
  std::lock_guard<std::mutex> lock(config.mutex);
  return config.metricsPeriodMs;
}

// --------------------------------------------------------------------------
// Counters / gauges / histograms / tags

Counter& counter(const std::string& name) {
  auto& store = MetricsStore::instance();
  std::lock_guard<std::mutex> lock(store.mutex);
  const auto it = store.counters.try_emplace(name).first;
  if (!it->second) {
    it->second = std::make_unique<Counter>();
    // The map key outlives the process (the store is never destroyed), so
    // its c_str() is a stable name for flight-recorder events.
    it->second->setFlightName(it->first.c_str());
  }
  return *it->second;
}

Gauge& gauge(const std::string& name) {
  auto& store = MetricsStore::instance();
  std::lock_guard<std::mutex> lock(store.mutex);
  auto& slot = store.gauges[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

LatencyHistogram& histogram(const std::string& name) {
  auto& store = MetricsStore::instance();
  std::lock_guard<std::mutex> lock(store.mutex);
  auto& slot = store.histograms[name];
  if (!slot) slot = std::make_unique<LatencyHistogram>();
  return *slot;
}

void setTag(const std::string& name, const std::string& value) {
  if (!metricsEnabled()) return;
  auto& store = MetricsStore::instance();
  std::lock_guard<std::mutex> lock(store.mutex);
  store.tags[name] = value;
}

void LatencyHistogram::record(double us) {
  if (!metricsEnabled()) return;
  if (us < 0.0) us = 0.0;
  const auto nanos = static_cast<long long>(us * 1e3);
  count_.fetch_add(1, std::memory_order_relaxed);
  sumNanos_.fetch_add(nanos, std::memory_order_relaxed);
  long long seen = minNanos_.load(std::memory_order_relaxed);
  while ((seen < 0 || nanos < seen) &&
         !minNanos_.compare_exchange_weak(seen, nanos,
                                          std::memory_order_relaxed)) {
  }
  seen = maxNanos_.load(std::memory_order_relaxed);
  while (nanos > seen &&
         !maxNanos_.compare_exchange_weak(seen, nanos,
                                          std::memory_order_relaxed)) {
  }
  // Bucket i holds samples in [2^i, 2^(i+1)) us; sub-microsecond samples
  // land in bucket 0.
  int bucket = 0;
  for (auto u = static_cast<unsigned long>(us); u > 1; u >>= 1) ++bucket;
  if (bucket >= kBuckets) bucket = kBuckets - 1;
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
}

double LatencyHistogram::minMicros() const {
  const long long nanos = minNanos_.load(std::memory_order_relaxed);
  return nanos < 0 ? 0.0 : static_cast<double>(nanos) * 1e-3;
}

double LatencyHistogram::maxMicros() const {
  return static_cast<double>(maxNanos_.load(std::memory_order_relaxed)) *
         1e-3;
}

void LatencyHistogram::reset() {
  count_.store(0, std::memory_order_relaxed);
  sumNanos_.store(0, std::memory_order_relaxed);
  minNanos_.store(-1, std::memory_order_relaxed);
  maxNanos_.store(0, std::memory_order_relaxed);
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

MetricsSnapshot snapshot() {
  MetricsSnapshot snap;
  auto& store = MetricsStore::instance();
  std::lock_guard<std::mutex> lock(store.mutex);
  for (const auto& [name, c] : store.counters) {
    if (c->value() != 0) snap.counters.emplace_back(name, c->value());
  }
  for (const auto& [name, g] : store.gauges) {
    if (g->updateCount() != 0) snap.gauges.emplace_back(name, g->value());
  }
  for (const auto& [name, h] : store.histograms) {
    if (h->count() == 0) continue;
    HistogramStats stats;
    stats.name = name;
    stats.count = h->count();
    stats.sumUs = h->sumMicros();
    stats.minUs = h->minMicros();
    stats.maxUs = h->maxMicros();
    for (int i = 0; i < LatencyHistogram::kBuckets; ++i) {
      if (h->bucket(i) != 0) {
        stats.buckets.emplace_back(static_cast<double>(1ul << (i + 1)),
                                   h->bucket(i));
      }
    }
    snap.histograms.push_back(std::move(stats));
  }
  for (const auto& [name, value] : store.tags) {
    snap.tags.emplace_back(name, value);
  }
  return snap;
}

std::string snapshotJson() {
  const MetricsSnapshot snap = snapshot();
  std::string out = "{\n  \"counters\": {";
  for (std::size_t i = 0; i < snap.counters.size(); ++i) {
    out += i ? ",\n    \"" : "\n    \"";
    appendJsonEscaped(out, snap.counters[i].first.c_str());
    out += "\": " + std::to_string(snap.counters[i].second);
  }
  out += snap.counters.empty() ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  for (std::size_t i = 0; i < snap.gauges.size(); ++i) {
    out += i ? ",\n    \"" : "\n    \"";
    appendJsonEscaped(out, snap.gauges[i].first.c_str());
    out += "\": ";
    appendNumber(out, snap.gauges[i].second);
  }
  out += snap.gauges.empty() ? "},\n" : "\n  },\n";
  out += "  \"tags\": {";
  for (std::size_t i = 0; i < snap.tags.size(); ++i) {
    out += i ? ",\n    \"" : "\n    \"";
    appendJsonEscaped(out, snap.tags[i].first.c_str());
    out += "\": \"";
    appendJsonEscaped(out, snap.tags[i].second.c_str());
    out += "\"";
  }
  out += snap.tags.empty() ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  for (std::size_t i = 0; i < snap.histograms.size(); ++i) {
    const HistogramStats& h = snap.histograms[i];
    out += i ? ",\n    \"" : "\n    \"";
    appendJsonEscaped(out, h.name.c_str());
    out += "\": {\"count\": " + std::to_string(h.count) + ", \"sum_us\": ";
    appendNumber(out, h.sumUs);
    out += ", \"min_us\": ";
    appendNumber(out, h.minUs);
    out += ", \"max_us\": ";
    appendNumber(out, h.maxUs);
    out += ", \"buckets\": [";
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      if (b) out += ", ";
      out += "[";
      appendNumber(out, h.buckets[b].first);
      out += ", " + std::to_string(h.buckets[b].second) + "]";
    }
    out += "]}";
  }
  out += snap.histograms.empty() ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

void resetMetrics() {
  auto& store = MetricsStore::instance();
  std::lock_guard<std::mutex> lock(store.mutex);
  for (auto& [name, c] : store.counters) c->reset();
  for (auto& [name, g] : store.gauges) g->reset();
  for (auto& [name, h] : store.histograms) h->reset();
  store.tags.clear();
  // Invalidate window baselines: the next windowSnapshot() rebuilds them
  // and reports baselineReset instead of negative deltas.
  ++store.resetEpoch;
}

// --------------------------------------------------------------------------
// Windowed snapshot

/// Linear interpolation of the q-quantile inside log2 delta buckets.
/// Bucket i covers [2^i, 2^(i+1)) us (bucket 0: [0, 2)). Public: control
/// loops keeping their own baselines (serve::DetectionService) share the
/// exact interpolation the streaming exporter reports.
double quantileFromDeltaBuckets(const long* delta, long count, double q) {
  if (count <= 0) return 0.0;
  double rank = q * static_cast<double>(count);
  if (rank < 1.0) rank = 1.0;
  long cum = 0;
  double last = 0.0;
  for (int i = 0; i < LatencyHistogram::kBuckets; ++i) {
    if (delta[i] <= 0) continue;
    const double lo = i == 0 ? 0.0 : static_cast<double>(1ul << i);
    const double hi = static_cast<double>(1ul << (i + 1));
    if (static_cast<double>(cum) + static_cast<double>(delta[i]) >= rank) {
      const double frac =
          (rank - static_cast<double>(cum)) / static_cast<double>(delta[i]);
      return lo + frac * (hi - lo);
    }
    cum += delta[i];
    last = hi;
  }
  return last;
}

WindowSnapshot windowSnapshot() {
  WindowSnapshot w;
  auto& store = MetricsStore::instance();
  std::lock_guard<std::mutex> lock(store.mutex);
  w.seq = ++store.windowSeq;
  w.startUs = store.windowStartUs;
  w.endUs = nowMicros();
  store.windowStartUs = w.endUs;
  const bool rebaseline = store.windowEpoch != store.resetEpoch;
  store.windowEpoch = store.resetEpoch;
  w.baselineReset = rebaseline;

  for (const auto& [name, c] : store.counters) {
    const long cur = c->value();
    long& base = store.counterBase[name];
    if (!rebaseline) {
      const long delta = cur - base;
      // A negative delta means someone reset the counter directly without
      // resetMetrics(); swallow it and re-baseline rather than lie.
      if (delta > 0) w.counters.emplace_back(name, delta);
    }
    base = cur;
  }
  for (const auto& [name, h] : store.histograms) {
    HistBaseline& base = store.histBase[name];
    const long curCount = h->count();
    const double curSum = h->sumMicros();
    long curBuckets[LatencyHistogram::kBuckets];
    for (int i = 0; i < LatencyHistogram::kBuckets; ++i) {
      curBuckets[i] = h->bucket(i);
    }
    if (!rebaseline) {
      const long dCount = curCount - base.count;
      if (dCount > 0) {
        WindowHistogramStats stats;
        stats.name = name;
        stats.count = dCount;
        stats.sumUs = curSum - base.sumUs;
        if (stats.sumUs < 0.0) stats.sumUs = 0.0;
        long dBuckets[LatencyHistogram::kBuckets];
        for (int i = 0; i < LatencyHistogram::kBuckets; ++i) {
          const long d = curBuckets[i] - base.buckets[i];
          dBuckets[i] = d > 0 ? d : 0;
        }
        stats.p50Us = quantileFromDeltaBuckets(dBuckets, dCount, 0.50);
        stats.p95Us = quantileFromDeltaBuckets(dBuckets, dCount, 0.95);
        stats.p99Us = quantileFromDeltaBuckets(dBuckets, dCount, 0.99);
        w.histograms.push_back(std::move(stats));
      }
    }
    base.count = curCount;
    base.sumUs = curSum;
    std::memcpy(base.buckets, curBuckets, sizeof(curBuckets));
  }
  for (const auto& [name, g] : store.gauges) {
    if (g->updateCount() != 0) w.gauges.emplace_back(name, g->value());
  }
  for (const auto& [name, value] : store.tags) {
    w.tags.emplace_back(name, value);
  }
  return w;
}

std::string windowJson(const WindowSnapshot& w) {
  std::string out = "{\"seq\": " + std::to_string(w.seq) +
                    ", \"window_start_us\": ";
  appendNumber(out, w.startUs);
  out += ", \"window_end_us\": ";
  appendNumber(out, w.endUs);
  if (w.baselineReset) out += ", \"baseline_reset\": true";
  out += ", \"counters\": {";
  for (std::size_t i = 0; i < w.counters.size(); ++i) {
    if (i) out += ", ";
    out += "\"";
    appendJsonEscaped(out, w.counters[i].first.c_str());
    out += "\": " + std::to_string(w.counters[i].second);
  }
  out += "}, \"gauges\": {";
  for (std::size_t i = 0; i < w.gauges.size(); ++i) {
    if (i) out += ", ";
    out += "\"";
    appendJsonEscaped(out, w.gauges[i].first.c_str());
    out += "\": ";
    appendNumber(out, w.gauges[i].second);
  }
  out += "}, \"histograms\": {";
  for (std::size_t i = 0; i < w.histograms.size(); ++i) {
    const WindowHistogramStats& h = w.histograms[i];
    if (i) out += ", ";
    out += "\"";
    appendJsonEscaped(out, h.name.c_str());
    out += "\": {\"count\": " + std::to_string(h.count) + ", \"sum_us\": ";
    appendNumber(out, h.sumUs);
    out += ", \"p50_us\": ";
    appendNumber(out, h.p50Us);
    out += ", \"p95_us\": ";
    appendNumber(out, h.p95Us);
    out += ", \"p99_us\": ";
    appendNumber(out, h.p99Us);
    out += "}";
  }
  out += "}, \"tags\": {";
  for (std::size_t i = 0; i < w.tags.size(); ++i) {
    if (i) out += ", ";
    out += "\"";
    appendJsonEscaped(out, w.tags[i].first.c_str());
    out += "\": \"";
    appendJsonEscaped(out, w.tags[i].second.c_str());
    out += "\"";
  }
  out += "}}";
  return out;
}

// --------------------------------------------------------------------------
// Prometheus-style exposition

namespace {

std::string promName(const std::string& name) {
  std::string out = "pcnn_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

std::string promLabel(const std::string& name) {
  std::string out;
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) out = "_" + out;
  return out;
}

void appendPromEscaped(std::string& out, const std::string& s) {
  for (const char c : s) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '"') {
      out += "\\\"";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
}

}  // namespace

std::string expositionText() {
  const MetricsSnapshot snap = snapshot();
  std::string out;
  for (const auto& [name, value] : snap.counters) {
    const std::string n = promName(name);
    out += "# TYPE " + n + " counter\n";
    out += n + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : snap.gauges) {
    const std::string n = promName(name);
    out += "# TYPE " + n + " gauge\n";
    out += n + " ";
    appendNumber(out, value);
    out += "\n";
  }
  for (const HistogramStats& h : snap.histograms) {
    const std::string n = promName(h.name);
    out += "# TYPE " + n + " histogram\n";
    long cum = 0;
    for (const auto& [upperUs, count] : h.buckets) {
      cum += count;
      char le[40];
      std::snprintf(le, sizeof(le), "%.0f", upperUs);
      out += n + "_bucket{le=\"" + le + "\"} " + std::to_string(cum) + "\n";
    }
    out += n + "_bucket{le=\"+Inf\"} " + std::to_string(h.count) + "\n";
    out += n + "_sum ";
    appendNumber(out, h.sumUs);
    out += "\n" + n + "_count " + std::to_string(h.count) + "\n";
  }
  if (!snap.tags.empty()) {
    out += "# TYPE pcnn_info gauge\npcnn_info{";
    for (std::size_t i = 0; i < snap.tags.size(); ++i) {
      if (i) out += ",";
      out += promLabel(snap.tags[i].first) + "=\"";
      appendPromEscaped(out, snap.tags[i].second);
      out += "\"";
    }
    out += "} 1\n";
  }
  return out;
}

// --------------------------------------------------------------------------
// Spans

Span::Span(const char* name, const char* argKey, long argValue)
    : name_(name), argKey_(argKey), argValue_(argValue) {
  const bool trace = traceEnabled();
  const bool flight = flightEnabled();
  traceActive_ = trace;
  startUs_ = (trace || flight) ? nowMicros() : -1.0;
  if (flight) detail::flightRecordBegin(name_, argKey_ ? argValue_ : 0);
}

Span::~Span() {
  if (startUs_ < 0.0) return;
  if (flightEnabled()) detail::flightRecordEnd(name_);
  if (!traceActive_) return;
  TraceEvent e;
  e.name = name_;
  e.argKey = argKey_;
  e.argValue = argValue_;
  e.tsUs = startUs_;
  e.durUs = nowMicros() - startUs_;
  ThreadBuffer& buffer = threadBuffer();
  e.tid = buffer.tid;
  buffer.push(e);
}

namespace {

void collectEvents(std::vector<TraceEvent>& out) {
  auto& reg = TraceRegistry::instance();
  std::lock_guard<std::mutex> regLock(reg.mutex);
  out = reg.retired;
  for (ThreadBuffer* buffer : reg.live) {
    std::lock_guard<std::mutex> bufLock(buffer->mutex);
    out.insert(out.end(), buffer->events.begin(), buffer->events.end());
  }
}

}  // namespace

std::string traceJson() {
  std::vector<TraceEvent> events;
  collectEvents(events);
  std::string out = "{\"traceEvents\": [";
  for (std::size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    out += i ? ",\n  " : "\n  ";
    out += "{\"name\": \"";
    appendJsonEscaped(out, e.name);
    out += "\", \"cat\": \"pcnn\", \"ph\": \"X\", \"pid\": 1, \"tid\": " +
           std::to_string(e.tid) + ", \"ts\": ";
    appendNumber(out, e.tsUs);
    out += ", \"dur\": ";
    appendNumber(out, e.durUs);
    if (e.argKey) {
      out += ", \"args\": {\"";
      appendJsonEscaped(out, e.argKey);
      out += "\": " + std::to_string(e.argValue) + "}";
    }
    out += "}";
  }
  out += events.empty() ? "]" : "\n]";
  const long dropped =
      TraceRegistry::instance().dropped.load(std::memory_order_relaxed);
  out += ", \"displayTimeUnit\": \"ms\"";
  if (dropped > 0) {
    out += ", \"pcnnDroppedEvents\": " + std::to_string(dropped);
  }
  out += "}\n";
  return out;
}

long traceEventCount() {
  std::vector<TraceEvent> events;
  collectEvents(events);
  return static_cast<long>(events.size());
}

void clearTrace() {
  auto& reg = TraceRegistry::instance();
  std::lock_guard<std::mutex> regLock(reg.mutex);
  reg.retired.clear();
  for (ThreadBuffer* buffer : reg.live) {
    std::lock_guard<std::mutex> bufLock(buffer->mutex);
    buffer->events.clear();
  }
  reg.dropped.store(0, std::memory_order_relaxed);
}

// --------------------------------------------------------------------------
// Export

bool writeTrace(const std::string& path) {
  return writeStringToFile(path, traceJson());
}

bool writeMetrics(const std::string& path) {
  if (internal::promFormatPath(path)) {
    return writeStringToFile(path, expositionText());
  }
  return writeStringToFile(path, snapshotJson());
}

void writeConfiguredReports() {
  const std::string trace = configuredTracePath();
  const std::string metrics = configuredMetricsPath();
  if (!trace.empty()) writeTrace(trace);
  if (metrics.empty()) return;
  if (configuredMetricsPeriodMs() > 0) {
    // Streaming mode: the exporter owns the metrics file. Stop it (which
    // flushes one final window) instead of overwriting the stream with a
    // cumulative snapshot -- and never write that final window twice.
    stopMetricsExporter();
    return;
  }
  writeMetrics(metrics);
}

}  // namespace pcnn::obs
