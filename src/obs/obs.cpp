#include "obs/obs.hpp"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>

#include "common/env.hpp"

namespace pcnn::obs {

namespace detail {
std::atomic<bool> traceOn{false};
std::atomic<bool> metricsOn{false};
}  // namespace detail

namespace {

using Clock = std::chrono::steady_clock;

const Clock::time_point kProcessStart = Clock::now();

/// One recorded span, Chrome trace_event "ph":"X" complete-event shaped.
struct TraceEvent {
  const char* name;
  const char* argKey;  ///< nullptr = no args
  long argValue;
  double tsUs;
  double durUs;
  int tid;
};

/// Per-thread span buffer. The owner thread appends under the buffer's own
/// mutex (uncontended except while an export drains); at thread exit the
/// events move to the global retired list so nothing is lost.
struct ThreadBuffer;

struct TraceRegistry {
  std::mutex mutex;
  std::vector<ThreadBuffer*> live;
  std::vector<TraceEvent> retired;
  std::atomic<int> nextTid{1};
  std::atomic<long> dropped{0};

  static TraceRegistry& instance() {
    static TraceRegistry* r = new TraceRegistry();  // never destroyed:
    return *r;  // thread buffers may retire during static destruction
  }
};

struct ThreadBuffer {
  std::mutex mutex;
  std::vector<TraceEvent> events;
  int tid;
  /// Cap per thread so a forgotten PCNN_TRACE on a long service run cannot
  /// grow without bound; overflow is counted, not silently swallowed.
  static constexpr std::size_t kMaxEvents = 1u << 20;

  ThreadBuffer() {
    auto& reg = TraceRegistry::instance();
    tid = reg.nextTid.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(reg.mutex);
    reg.live.push_back(this);
  }

  ~ThreadBuffer() {
    auto& reg = TraceRegistry::instance();
    std::lock_guard<std::mutex> lock(reg.mutex);
    reg.retired.insert(reg.retired.end(), events.begin(), events.end());
    reg.live.erase(std::find(reg.live.begin(), reg.live.end(), this));
  }

  void push(const TraceEvent& e) {
    std::lock_guard<std::mutex> lock(mutex);
    if (events.size() >= kMaxEvents) {
      TraceRegistry::instance().dropped.fetch_add(1,
                                                  std::memory_order_relaxed);
      return;
    }
    events.push_back(e);
  }
};

ThreadBuffer& threadBuffer() {
  static thread_local ThreadBuffer buffer;
  return buffer;
}

/// Counter / histogram / tag registries. Pointers handed out stay valid
/// forever (values are heap-allocated, the maps are never destroyed).
struct MetricsStore {
  std::mutex mutex;
  std::map<std::string, std::unique_ptr<Counter>> counters;
  std::map<std::string, std::unique_ptr<LatencyHistogram>> histograms;
  std::map<std::string, std::string> tags;

  static MetricsStore& instance() {
    static MetricsStore* store = new MetricsStore();
    return *store;
  }
};

struct ExportConfig {
  std::mutex mutex;
  std::string tracePath;
  std::string metricsPath;

  static ExportConfig& instance() {
    static ExportConfig* config = new ExportConfig();
    return *config;
  }
};

void appendJsonEscaped(std::string& out, const char* s) {
  for (; *s; ++s) {
    const char c = *s;
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void appendNumber(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  out += buf;
}

bool writeStringToFile(const std::string& path, const std::string& body) {
  if (path == "stderr" || path == "-") {
    std::fputs(body.c_str(), stderr);
    std::fputc('\n', stderr);
    return true;
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  std::fclose(f);
  return ok;
}

void atExitExport() { writeConfiguredReports(); }

/// Reads the environment once per process load, so a binary run with
/// PCNN_TRACE / PCNN_METRICS needs no code changes to produce reports.
struct EnvInitializer {
  EnvInitializer() { configureFromEnv(); }
};
const EnvInitializer kEnvInitializer;

}  // namespace

double nowMicros() {
  return std::chrono::duration<double, std::micro>(Clock::now() -
                                                   kProcessStart)
      .count();
}

void setTraceEnabled(bool on) {
  detail::traceOn.store(kCompiledIn && on, std::memory_order_relaxed);
}

void setMetricsEnabled(bool on) {
  detail::metricsOn.store(kCompiledIn && on, std::memory_order_relaxed);
}

void configureFromEnv() {
  // PCNN_OBS is a master switch defaulting to on; PCNN_TRACE/PCNN_METRICS
  // are output paths, not flags.
  const bool masterOn = env::flag("PCNN_OBS", true);
  const std::string trace = env::str("PCNN_TRACE");
  const std::string metrics = env::str("PCNN_METRICS");
  auto& config = ExportConfig::instance();
  bool anyConfigured = false;
  {
    std::lock_guard<std::mutex> lock(config.mutex);
    config.tracePath = masterOn ? trace : "";
    config.metricsPath = masterOn ? metrics : "";
    anyConfigured = !config.tracePath.empty() || !config.metricsPath.empty();
  }
  setTraceEnabled(masterOn && !trace.empty());
  setMetricsEnabled(masterOn && !metrics.empty());
  if (anyConfigured) {
    static bool atExitRegistered = false;
    static std::mutex registerMutex;
    std::lock_guard<std::mutex> lock(registerMutex);
    if (!atExitRegistered) {
      std::atexit(atExitExport);
      atExitRegistered = true;
    }
  }
}

std::string configuredTracePath() {
  auto& config = ExportConfig::instance();
  std::lock_guard<std::mutex> lock(config.mutex);
  return config.tracePath;
}

std::string configuredMetricsPath() {
  auto& config = ExportConfig::instance();
  std::lock_guard<std::mutex> lock(config.mutex);
  return config.metricsPath;
}

// --------------------------------------------------------------------------
// Counters / histograms / tags

Counter& counter(const std::string& name) {
  auto& store = MetricsStore::instance();
  std::lock_guard<std::mutex> lock(store.mutex);
  auto& slot = store.counters[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

LatencyHistogram& histogram(const std::string& name) {
  auto& store = MetricsStore::instance();
  std::lock_guard<std::mutex> lock(store.mutex);
  auto& slot = store.histograms[name];
  if (!slot) slot = std::make_unique<LatencyHistogram>();
  return *slot;
}

void setTag(const std::string& name, const std::string& value) {
  if (!metricsEnabled()) return;
  auto& store = MetricsStore::instance();
  std::lock_guard<std::mutex> lock(store.mutex);
  store.tags[name] = value;
}

void LatencyHistogram::record(double us) {
  if (!metricsEnabled()) return;
  if (us < 0.0) us = 0.0;
  const auto nanos = static_cast<long long>(us * 1e3);
  count_.fetch_add(1, std::memory_order_relaxed);
  sumNanos_.fetch_add(nanos, std::memory_order_relaxed);
  long long seen = minNanos_.load(std::memory_order_relaxed);
  while ((seen < 0 || nanos < seen) &&
         !minNanos_.compare_exchange_weak(seen, nanos,
                                          std::memory_order_relaxed)) {
  }
  seen = maxNanos_.load(std::memory_order_relaxed);
  while (nanos > seen &&
         !maxNanos_.compare_exchange_weak(seen, nanos,
                                          std::memory_order_relaxed)) {
  }
  // Bucket i holds samples in [2^i, 2^(i+1)) us; sub-microsecond samples
  // land in bucket 0.
  int bucket = 0;
  for (auto u = static_cast<unsigned long>(us); u > 1; u >>= 1) ++bucket;
  if (bucket >= kBuckets) bucket = kBuckets - 1;
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
}

double LatencyHistogram::minMicros() const {
  const long long nanos = minNanos_.load(std::memory_order_relaxed);
  return nanos < 0 ? 0.0 : static_cast<double>(nanos) * 1e-3;
}

double LatencyHistogram::maxMicros() const {
  return static_cast<double>(maxNanos_.load(std::memory_order_relaxed)) *
         1e-3;
}

void LatencyHistogram::reset() {
  count_.store(0, std::memory_order_relaxed);
  sumNanos_.store(0, std::memory_order_relaxed);
  minNanos_.store(-1, std::memory_order_relaxed);
  maxNanos_.store(0, std::memory_order_relaxed);
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

MetricsSnapshot snapshot() {
  MetricsSnapshot snap;
  auto& store = MetricsStore::instance();
  std::lock_guard<std::mutex> lock(store.mutex);
  for (const auto& [name, c] : store.counters) {
    if (c->value() != 0) snap.counters.emplace_back(name, c->value());
  }
  for (const auto& [name, h] : store.histograms) {
    if (h->count() == 0) continue;
    HistogramStats stats;
    stats.name = name;
    stats.count = h->count();
    stats.sumUs = h->sumMicros();
    stats.minUs = h->minMicros();
    stats.maxUs = h->maxMicros();
    for (int i = 0; i < LatencyHistogram::kBuckets; ++i) {
      if (h->bucket(i) != 0) {
        stats.buckets.emplace_back(static_cast<double>(1ul << (i + 1)),
                                   h->bucket(i));
      }
    }
    snap.histograms.push_back(std::move(stats));
  }
  for (const auto& [name, value] : store.tags) {
    snap.tags.emplace_back(name, value);
  }
  return snap;
}

std::string snapshotJson() {
  const MetricsSnapshot snap = snapshot();
  std::string out = "{\n  \"counters\": {";
  for (std::size_t i = 0; i < snap.counters.size(); ++i) {
    out += i ? ",\n    \"" : "\n    \"";
    appendJsonEscaped(out, snap.counters[i].first.c_str());
    out += "\": " + std::to_string(snap.counters[i].second);
  }
  out += snap.counters.empty() ? "},\n" : "\n  },\n";
  out += "  \"tags\": {";
  for (std::size_t i = 0; i < snap.tags.size(); ++i) {
    out += i ? ",\n    \"" : "\n    \"";
    appendJsonEscaped(out, snap.tags[i].first.c_str());
    out += "\": \"";
    appendJsonEscaped(out, snap.tags[i].second.c_str());
    out += "\"";
  }
  out += snap.tags.empty() ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  for (std::size_t i = 0; i < snap.histograms.size(); ++i) {
    const HistogramStats& h = snap.histograms[i];
    out += i ? ",\n    \"" : "\n    \"";
    appendJsonEscaped(out, h.name.c_str());
    out += "\": {\"count\": " + std::to_string(h.count) + ", \"sum_us\": ";
    appendNumber(out, h.sumUs);
    out += ", \"min_us\": ";
    appendNumber(out, h.minUs);
    out += ", \"max_us\": ";
    appendNumber(out, h.maxUs);
    out += ", \"buckets\": [";
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      if (b) out += ", ";
      out += "[";
      appendNumber(out, h.buckets[b].first);
      out += ", " + std::to_string(h.buckets[b].second) + "]";
    }
    out += "]}";
  }
  out += snap.histograms.empty() ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

void resetMetrics() {
  auto& store = MetricsStore::instance();
  std::lock_guard<std::mutex> lock(store.mutex);
  for (auto& [name, c] : store.counters) c->reset();
  for (auto& [name, h] : store.histograms) h->reset();
  store.tags.clear();
}

// --------------------------------------------------------------------------
// Spans

Span::Span(const char* name, const char* argKey, long argValue)
    : name_(name),
      argKey_(argKey),
      argValue_(argValue),
      startUs_(traceEnabled() ? nowMicros() : -1.0) {}

Span::~Span() {
  if (startUs_ < 0.0) return;
  TraceEvent e;
  e.name = name_;
  e.argKey = argKey_;
  e.argValue = argValue_;
  e.tsUs = startUs_;
  e.durUs = nowMicros() - startUs_;
  ThreadBuffer& buffer = threadBuffer();
  e.tid = buffer.tid;
  buffer.push(e);
}

namespace {

void collectEvents(std::vector<TraceEvent>& out) {
  auto& reg = TraceRegistry::instance();
  std::lock_guard<std::mutex> regLock(reg.mutex);
  out = reg.retired;
  for (ThreadBuffer* buffer : reg.live) {
    std::lock_guard<std::mutex> bufLock(buffer->mutex);
    out.insert(out.end(), buffer->events.begin(), buffer->events.end());
  }
}

}  // namespace

std::string traceJson() {
  std::vector<TraceEvent> events;
  collectEvents(events);
  std::string out = "{\"traceEvents\": [";
  for (std::size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    out += i ? ",\n  " : "\n  ";
    out += "{\"name\": \"";
    appendJsonEscaped(out, e.name);
    out += "\", \"cat\": \"pcnn\", \"ph\": \"X\", \"pid\": 1, \"tid\": " +
           std::to_string(e.tid) + ", \"ts\": ";
    appendNumber(out, e.tsUs);
    out += ", \"dur\": ";
    appendNumber(out, e.durUs);
    if (e.argKey) {
      out += ", \"args\": {\"";
      appendJsonEscaped(out, e.argKey);
      out += "\": " + std::to_string(e.argValue) + "}";
    }
    out += "}";
  }
  out += events.empty() ? "]" : "\n]";
  const long dropped =
      TraceRegistry::instance().dropped.load(std::memory_order_relaxed);
  out += ", \"displayTimeUnit\": \"ms\"";
  if (dropped > 0) {
    out += ", \"pcnnDroppedEvents\": " + std::to_string(dropped);
  }
  out += "}\n";
  return out;
}

long traceEventCount() {
  std::vector<TraceEvent> events;
  collectEvents(events);
  return static_cast<long>(events.size());
}

void clearTrace() {
  auto& reg = TraceRegistry::instance();
  std::lock_guard<std::mutex> regLock(reg.mutex);
  reg.retired.clear();
  for (ThreadBuffer* buffer : reg.live) {
    std::lock_guard<std::mutex> bufLock(buffer->mutex);
    buffer->events.clear();
  }
  reg.dropped.store(0, std::memory_order_relaxed);
}

// --------------------------------------------------------------------------
// Export

bool writeTrace(const std::string& path) {
  return writeStringToFile(path, traceJson());
}

bool writeMetrics(const std::string& path) {
  return writeStringToFile(path, snapshotJson());
}

void writeConfiguredReports() {
  const std::string trace = configuredTracePath();
  const std::string metrics = configuredMetricsPath();
  if (!trace.empty()) writeTrace(trace);
  if (!metrics.empty()) writeMetrics(metrics);
}

}  // namespace pcnn::obs
