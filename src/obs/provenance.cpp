#include "obs/provenance.hpp"

#include <cstdio>
#include <thread>

#include "common/env.hpp"
#include "obs/obs.hpp"

#ifndef PCNN_SOURCE_DIR
#define PCNN_SOURCE_DIR "."
#endif

namespace pcnn::obs {

namespace {

std::string envOrUnset(const char* name) {
  return env::str(name, "unset");
}

std::string gitShortSha() {
  // popen rather than a configure-time bake: the SHA tracks the checkout,
  // not the last cmake run. Failure (no git, not a repo) is expected on
  // deployed hosts and degrades to "unknown".
  std::FILE* pipe = ::popen(
      "git -C \"" PCNN_SOURCE_DIR "\" rev-parse --short HEAD 2>/dev/null",
      "r");
  if (!pipe) return "unknown";
  char buf[64] = {};
  const std::size_t n = std::fread(buf, 1, sizeof(buf) - 1, pipe);
  ::pclose(pipe);
  std::string sha(buf, n);
  while (!sha.empty() && (sha.back() == '\n' || sha.back() == '\r')) {
    sha.pop_back();
  }
  return sha.empty() ? "unknown" : sha;
}

}  // namespace

Provenance provenance() {
  Provenance p;
  p.gitSha = gitShortSha();
  p.hardwareThreads = std::thread::hardware_concurrency();
  p.simdEnv = envOrUnset("PCNN_SIMD");
  p.numThreadsEnv = envOrUnset("PCNN_NUM_THREADS");
  p.temporalEnv = envOrUnset("PCNN_TEMPORAL");
  p.faultsEnv = envOrUnset("PCNN_FAULTS");
  p.tnEngineEnv = envOrUnset("PCNN_TN_ENGINE");
  p.serveQueueEnv = envOrUnset("PCNN_SERVE_QUEUE");
  p.serveDeadlineEnv = envOrUnset("PCNN_SERVE_DEADLINE_MS");
  p.obsBuild = kCompiledIn ? "on" : "off";
  return p;
}

std::string provenanceJson(
    const Provenance& p,
    const std::vector<std::pair<std::string, std::string>>& extra) {
  std::string out = "{";
  out += "\"git_sha\": \"" + p.gitSha + "\"";
  out += ", \"hardware_threads\": " + std::to_string(p.hardwareThreads);
  out += ", \"simd_env\": \"" + p.simdEnv + "\"";
  out += ", \"num_threads_env\": \"" + p.numThreadsEnv + "\"";
  out += ", \"temporal_env\": \"" + p.temporalEnv + "\"";
  out += ", \"faults_env\": \"" + p.faultsEnv + "\"";
  out += ", \"tn_engine_env\": \"" + p.tnEngineEnv + "\"";
  out += ", \"serve_queue_env\": \"" + p.serveQueueEnv + "\"";
  out += ", \"serve_deadline_ms_env\": \"" + p.serveDeadlineEnv + "\"";
  out += ", \"obs_build\": \"" + p.obsBuild + "\"";
  for (const auto& [key, value] : extra) {
    out += ", \"" + key + "\": \"" + value + "\"";
  }
  out += "}";
  return out;
}

}  // namespace pcnn::obs
