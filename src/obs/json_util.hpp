#pragma once

// Internal JSON string helpers shared by the obs translation units
// (obs.cpp, flight.cpp, exporter.cpp). Not part of the public API.

#include <cstdio>
#include <string>

namespace pcnn::obs::internal {

inline void appendJsonEscaped(std::string& out, const char* s) {
  for (; *s; ++s) {
    const char c = *s;
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

inline void appendNumber(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  out += buf;
}

inline bool writeStringToFile(const std::string& path,
                              const std::string& body) {
  if (path == "stderr" || path == "-") {
    std::fputs(body.c_str(), stderr);
    std::fputc('\n', stderr);
    return true;
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  std::fclose(f);
  return ok;
}

/// True when the metrics path requests Prometheus exposition format.
inline bool promFormatPath(const std::string& path) {
  return path.size() >= 5 && path.compare(path.size() - 5, 5, ".prom") == 0;
}

}  // namespace pcnn::obs::internal
