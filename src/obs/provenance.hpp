#pragma once

#include <string>
#include <utility>
#include <vector>

namespace pcnn::obs {

/// Build/host provenance shared by every bench and report writer, so each
/// JSON artifact carries the same fields instead of hand-rolling its own
/// subset (BENCH_detect.json used to assemble these inline).
struct Provenance {
  std::string gitSha;         ///< short HEAD SHA, or "unknown"
  unsigned hardwareThreads;   ///< std::thread::hardware_concurrency()
  std::string simdEnv;        ///< PCNN_SIMD value, or "unset"
  std::string numThreadsEnv;  ///< PCNN_NUM_THREADS value, or "unset"
  std::string temporalEnv;    ///< PCNN_TEMPORAL value, or "unset"
  std::string faultsEnv;      ///< PCNN_FAULTS value, or "unset"
  std::string tnEngineEnv;    ///< PCNN_TN_ENGINE value, or "unset"
  std::string serveQueueEnv;  ///< PCNN_SERVE_QUEUE value, or "unset"
  std::string serveDeadlineEnv;  ///< PCNN_SERVE_DEADLINE_MS, or "unset"
  std::string obsBuild;       ///< "on" / "off" (compile-time PCNN_OBS)
};

/// Collects the process-wide provenance fields. The git SHA is resolved at
/// runtime against the source tree the binary was configured from, so a
/// rebuilt binary always reports the current checkout.
Provenance provenance();

/// `provenance()` as a JSON object, with optional caller-supplied extra
/// string fields appended (e.g. the hog layer's resolved kernel dispatch
/// path, which this library cannot know without depending on it).
std::string provenanceJson(
    const Provenance& p,
    const std::vector<std::pair<std::string, std::string>>& extra = {});

}  // namespace pcnn::obs
