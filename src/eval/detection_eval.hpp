#pragma once

#include <vector>

#include "vision/geometry.hpp"
#include "vision/nms.hpp"

namespace pcnn::eval {

/// Detections and ground truth for one image.
struct ImageResult {
  std::vector<vision::Detection> detections;
  std::vector<vision::Rect> groundTruth;
};

/// One operating point on a miss-rate versus false-positives-per-image
/// curve (the standard pedestrian-detection proxy for precision-recall,
/// Dollar et al., used in the paper's Figures 4 and 5).
struct CurvePoint {
  float threshold = 0.0f;  ///< score threshold producing this point
  float fppi = 0.0f;       ///< false positives per image
  float missRate = 0.0f;   ///< 1 - recall
};

/// Full evaluation protocol:
///  - detections with score >= threshold are kept;
///  - each ground-truth box is matched greedily (by descending detection
///    score) to the unmatched detection with the highest IoU >= minOverlap;
///  - unmatched detections are false positives, unmatched ground truths are
///    misses. The paper uses minOverlap = 0.5.
struct EvalParams {
  float minOverlap = 0.5f;
  int numThresholds = 64;  ///< curve resolution (thresholds from score range)
};

/// Computes the miss-rate/FPPI curve over a set of evaluated images by
/// sweeping the detection-score threshold. Points are ordered by
/// descending threshold (i.e. increasing FPPI).
std::vector<CurvePoint> missRateCurve(const std::vector<ImageResult>& results,
                                      const EvalParams& params = {});

/// Log-average miss rate: the standard single-number summary, averaging the
/// miss rate at nine FPPI points evenly log-spaced in [1e-2, 1e0]. Curve
/// values are interpolated; FPPI below the curve's minimum uses the
/// highest-threshold miss rate.
float logAverageMissRate(const std::vector<CurvePoint>& curve);

/// Counts (truePositives, falsePositives, misses) at a fixed threshold.
struct Counts {
  int truePositives = 0;
  int falsePositives = 0;
  int misses = 0;
};
Counts evaluateAtThreshold(const std::vector<ImageResult>& results,
                           float threshold, float minOverlap = 0.5f);

}  // namespace pcnn::eval
