#pragma once

#include <vector>

namespace pcnn::eval {

/// Pearson correlation coefficient between two equal-length sequences.
/// Returns 0 when either sequence has zero variance or they are empty.
/// This is the metric the paper uses to validate the TrueNorth NApprox HoG
/// against its software model (">99.5% correlation", Section 3.1).
double pearsonCorrelation(const std::vector<double>& a,
                          const std::vector<double>& b);

/// Convenience overload for float data.
double pearsonCorrelation(const std::vector<float>& a,
                          const std::vector<float>& b);

/// Fraction of equal elements in two label sequences (classifier accuracy).
double accuracy(const std::vector<int>& predicted,
                const std::vector<int>& actual);

/// Mean of a sequence (0 for empty input).
double mean(const std::vector<double>& values);

/// Sample standard deviation (0 for fewer than two values).
double stddev(const std::vector<double>& values);

/// Root-mean-square error between two equal-length sequences.
double rmse(const std::vector<double>& a, const std::vector<double>& b);

}  // namespace pcnn::eval
