#include "eval/stats.hpp"

#include <cmath>
#include <stdexcept>

namespace pcnn::eval {

double pearsonCorrelation(const std::vector<double>& a,
                          const std::vector<double>& b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("pearsonCorrelation: length mismatch");
  }
  const std::size_t n = a.size();
  if (n == 0) return 0.0;
  double meanA = 0.0, meanB = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    meanA += a[i];
    meanB += b[i];
  }
  meanA /= static_cast<double>(n);
  meanB /= static_cast<double>(n);
  double cov = 0.0, varA = 0.0, varB = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double da = a[i] - meanA;
    const double db = b[i] - meanB;
    cov += da * db;
    varA += da * da;
    varB += db * db;
  }
  if (varA <= 0.0 || varB <= 0.0) return 0.0;
  return cov / std::sqrt(varA * varB);
}

double pearsonCorrelation(const std::vector<float>& a,
                          const std::vector<float>& b) {
  std::vector<double> da(a.begin(), a.end());
  std::vector<double> db(b.begin(), b.end());
  return pearsonCorrelation(da, db);
}

double accuracy(const std::vector<int>& predicted,
                const std::vector<int>& actual) {
  if (predicted.size() != actual.size()) {
    throw std::invalid_argument("accuracy: length mismatch");
  }
  if (predicted.empty()) return 0.0;
  std::size_t correct = 0;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    if (predicted[i] == actual[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(predicted.size());
}

double mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double stddev(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  const double m = mean(values);
  double acc = 0.0;
  for (double v : values) acc += (v - m) * (v - m);
  return std::sqrt(acc / static_cast<double>(values.size() - 1));
}

double rmse(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("rmse: length mismatch");
  }
  if (a.empty()) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc += (a[i] - b[i]) * (a[i] - b[i]);
  }
  return std::sqrt(acc / static_cast<double>(a.size()));
}

}  // namespace pcnn::eval
