#include "eval/detection_eval.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace pcnn::eval {

Counts evaluateAtThreshold(const std::vector<ImageResult>& results,
                           float threshold, float minOverlap) {
  Counts counts;
  for (const ImageResult& image : results) {
    std::vector<vision::Detection> dets;
    for (const auto& d : image.detections) {
      if (d.score >= threshold) dets.push_back(d);
    }
    std::sort(dets.begin(), dets.end(),
              [](const auto& a, const auto& b) { return a.score > b.score; });
    std::vector<bool> gtMatched(image.groundTruth.size(), false);
    int tp = 0;
    for (const auto& det : dets) {
      int best = -1;
      float bestIou = minOverlap;
      for (std::size_t g = 0; g < image.groundTruth.size(); ++g) {
        if (gtMatched[g]) continue;
        const float overlap = vision::iou(det.box, image.groundTruth[g]);
        if (overlap >= bestIou) {
          bestIou = overlap;
          best = static_cast<int>(g);
        }
      }
      if (best >= 0) {
        gtMatched[best] = true;
        ++tp;
      } else {
        ++counts.falsePositives;
      }
    }
    counts.truePositives += tp;
    counts.misses += static_cast<int>(image.groundTruth.size()) - tp;
  }
  return counts;
}

std::vector<CurvePoint> missRateCurve(const std::vector<ImageResult>& results,
                                      const EvalParams& params) {
  // Gather the score range to build thresholds.
  float lo = std::numeric_limits<float>::max();
  float hi = std::numeric_limits<float>::lowest();
  for (const auto& image : results) {
    for (const auto& d : image.detections) {
      lo = std::min(lo, d.score);
      hi = std::max(hi, d.score);
    }
  }
  std::vector<CurvePoint> curve;
  if (results.empty() || lo > hi) return curve;

  long totalGt = 0;
  for (const auto& image : results) {
    totalGt += static_cast<long>(image.groundTruth.size());
  }
  const int n = std::max(2, params.numThresholds);
  for (int i = 0; i < n; ++i) {
    // Descending thresholds: strictest first (lowest FPPI first).
    const float t = hi - (hi - lo) * static_cast<float>(i) /
                             static_cast<float>(n - 1);
    const Counts c = evaluateAtThreshold(results, t, params.minOverlap);
    CurvePoint p;
    p.threshold = t;
    p.fppi = static_cast<float>(c.falsePositives) /
             static_cast<float>(results.size());
    p.missRate = totalGt > 0 ? static_cast<float>(c.misses) /
                                   static_cast<float>(totalGt)
                             : 0.0f;
    curve.push_back(p);
  }
  return curve;
}

float logAverageMissRate(const std::vector<CurvePoint>& curve) {
  if (curve.empty()) return 1.0f;
  float sum = 0.0f;
  int used = 0;
  for (int i = 0; i < 9; ++i) {
    const float targetFppi =
        std::pow(10.0f, -2.0f + 2.0f * static_cast<float>(i) / 8.0f);
    // Curve is ordered by increasing FPPI; find the miss rate at the largest
    // FPPI <= target (conservative: use the point just under the target).
    float missRate = curve.front().missRate;
    for (const CurvePoint& p : curve) {
      if (p.fppi <= targetFppi) {
        missRate = p.missRate;
      } else {
        break;
      }
    }
    sum += std::log(std::max(1e-4f, missRate));
    ++used;
  }
  return std::exp(sum / static_cast<float>(used));
}

}  // namespace pcnn::eval
