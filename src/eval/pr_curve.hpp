#pragma once

#include <vector>

#include "eval/detection_eval.hpp"

namespace pcnn::eval {

/// One precision/recall operating point.
struct PrPoint {
  float threshold = 0.0f;
  float precision = 0.0f;
  float recall = 0.0f;
};

/// Precision-recall curve over evaluated images (the paper describes the
/// miss-rate/FPPI plot as "a proxy for precision-recall curves"; this is
/// the non-proxied version for cross-checking). Points are ordered by
/// descending threshold (increasing recall).
std::vector<PrPoint> precisionRecallCurve(
    const std::vector<ImageResult>& results, const EvalParams& params = {});

/// Average precision: area under the precision-recall curve using the
/// standard all-points interpolation (precision envelope).
float averagePrecision(const std::vector<PrPoint>& curve);

}  // namespace pcnn::eval
