#include "eval/pr_curve.hpp"

#include <algorithm>
#include <limits>

namespace pcnn::eval {

std::vector<PrPoint> precisionRecallCurve(
    const std::vector<ImageResult>& results, const EvalParams& params) {
  std::vector<PrPoint> curve;
  float lo = std::numeric_limits<float>::max();
  float hi = std::numeric_limits<float>::lowest();
  long totalGt = 0;
  for (const auto& image : results) {
    totalGt += static_cast<long>(image.groundTruth.size());
    for (const auto& d : image.detections) {
      lo = std::min(lo, d.score);
      hi = std::max(hi, d.score);
    }
  }
  if (results.empty() || lo > hi || totalGt == 0) return curve;

  const int n = std::max(2, params.numThresholds);
  for (int i = 0; i < n; ++i) {
    const float t = hi - (hi - lo) * static_cast<float>(i) /
                             static_cast<float>(n - 1);
    const Counts c = evaluateAtThreshold(results, t, params.minOverlap);
    PrPoint p;
    p.threshold = t;
    const int detected = c.truePositives + c.falsePositives;
    p.precision = detected > 0 ? static_cast<float>(c.truePositives) /
                                     static_cast<float>(detected)
                               : 1.0f;
    p.recall = static_cast<float>(c.truePositives) /
               static_cast<float>(totalGt);
    curve.push_back(p);
  }
  return curve;
}

float averagePrecision(const std::vector<PrPoint>& curve) {
  if (curve.empty()) return 0.0f;
  // Envelope: precision at recall r is the max precision at recall >= r.
  std::vector<PrPoint> sorted = curve;
  std::sort(sorted.begin(), sorted.end(),
            [](const PrPoint& a, const PrPoint& b) {
              return a.recall < b.recall;
            });
  float ap = 0.0f;
  float prevRecall = 0.0f;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    float envelope = sorted[i].precision;
    for (std::size_t j = i; j < sorted.size(); ++j) {
      envelope = std::max(envelope, sorted[j].precision);
    }
    ap += envelope * (sorted[i].recall - prevRecall);
    prevRecall = sorted[i].recall;
  }
  return ap;
}

}  // namespace pcnn::eval
