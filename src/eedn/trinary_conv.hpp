#pragma once

#include "common/rng.hpp"
#include "eedn/trinary.hpp"
#include "nn/layer.hpp"

namespace pcnn::eedn {

/// 2-D convolution with trinary effective weights -- the convolutional
/// form of the Eedn discipline (Eedn networks are "CNN-like", Sec. 2.2):
/// hidden float weights trinarized in the forward pass, straight-through
/// gradients, hidden values clipped to [-1, 1]. Stride 1, optional zero
/// padding, CHW layout.
///
/// Crossbar sizing: a conv neuron's fan-in is inChannels * kernel^2, which
/// must stay within the 127-input mapping limit for single-core groups --
/// the reason Eedn partitions channels into groups on deep layers.
class TrinaryConv2d : public nn::Layer {
 public:
  TrinaryConv2d(int inChannels, int inHeight, int inWidth, int outChannels,
                int kernel, int padding, pcnn::Rng& rng, float tau = 0.5f);

  std::vector<float> forward(const std::vector<float>& input,
                             bool train) override;
  std::vector<float> backward(const std::vector<float>& gradOutput) override;
  void applyGradients(float learningRate, float momentum, int batch) override;

  int inputSize() const override { return inC_ * inH_ * inW_; }
  int outputSize() const override { return outC_ * outH_ * outW_; }
  long parameterCount() const override {
    return static_cast<long>(outC_) * inC_ * k_ * k_ + outC_;
  }

  int outHeight() const { return outH_; }
  int outWidth() const { return outW_; }
  int fanIn() const { return inC_ * k_ * k_; }

  /// Deployment weight for (outChannel, inChannel, ky, kx): -1, 0, or +1.
  int effectiveWeight(int oc, int ic, int ky, int kx) const {
    return trinarize(
        hidden_[((static_cast<std::size_t>(oc) * inC_ + ic) * k_ + ky) * k_ +
                kx],
        tau_);
  }
  float bias(int oc) const { return b_[static_cast<std::size_t>(oc)]; }

  std::vector<float>& hiddenWeights() { return hidden_; }
  std::vector<float>& biases() { return b_; }

 private:
  float hiddenAt(int oc, int ic, int ky, int kx) const {
    return hidden_[((static_cast<std::size_t>(oc) * inC_ + ic) * k_ + ky) *
                       k_ +
                   kx];
  }
  int inC_, inH_, inW_, outC_, k_, pad_, outH_, outW_;
  float tau_;
  std::vector<float> hidden_, b_, gradW_, gradB_, momW_, momB_;
  std::vector<float> inputCache_;
};

}  // namespace pcnn::eedn
