#pragma once

#include "common/rng.hpp"
#include "nn/layer.hpp"

namespace pcnn::eedn {

/// Projects a hidden high-precision weight onto the trinary deployment
/// alphabet {-1, 0, +1} with dead zone [-tau, tau]. This is the Eedn weight
/// discipline: "weights maintain a high precision hidden value during
/// training which are then mapped to one of the trinary weights (-1, 0, 1)
/// during network operation" (Esser et al., quoted in the paper Sec. 2.2).
inline int trinarize(float hidden, float tau) {
  if (hidden > tau) return 1;
  if (hidden < -tau) return -1;
  return 0;
}

/// Fully connected layer with trinary effective weights.
///
/// Forward always uses the trinarized weights (so training sees exactly the
/// deployment function); gradients flow straight-through to the hidden
/// float weights, which are clipped to [-1, 1] after each step.
class TrinaryDense : public nn::Layer {
 public:
  TrinaryDense(int inputSize, int outputSize, pcnn::Rng& rng,
               float tau = 0.5f);

  std::vector<float> forward(const std::vector<float>& input,
                             bool train) override;
  std::vector<float> backward(const std::vector<float>& gradOutput) override;
  void applyGradients(float learningRate, float momentum, int batch) override;

  int inputSize() const override { return in_; }
  int outputSize() const override { return out_; }
  long parameterCount() const override {
    return static_cast<long>(in_) * out_ + out_;
  }

  /// Deployment weight at (output j, input i): -1, 0, or +1.
  int effectiveWeight(int j, int i) const {
    return trinarize(hidden_[static_cast<std::size_t>(j) * in_ + i], tau_);
  }
  float bias(int j) const { return b_[static_cast<std::size_t>(j)]; }
  float tau() const { return tau_; }

  std::vector<float>& hiddenWeights() { return hidden_; }
  const std::vector<float>& hiddenWeights() const { return hidden_; }
  std::vector<float>& biases() { return b_; }
  const std::vector<float>& biases() const { return b_; }

 private:
  int in_, out_;
  float tau_;
  std::vector<float> hidden_, b_;
  std::vector<float> gradW_, gradB_, momW_, momB_;
  std::vector<float> inputCache_;
};

/// Heaviside (spiking) activation with a straight-through surrogate
/// gradient. Eedn neurons "are spiking neurons which have a threshold
/// activation function; the derivative of this function is approximated for
/// training" -- we use the standard boxcar surrogate: dL/dz = dL/dy when
/// |z| <= steWidth, else 0.
class SpikingThreshold : public nn::Layer {
 public:
  SpikingThreshold(int size, float steWidth);

  std::vector<float> forward(const std::vector<float>& input,
                             bool train) override;
  std::vector<float> backward(const std::vector<float>& gradOutput) override;

  int inputSize() const override { return size_; }
  int outputSize() const override { return size_; }
  float steWidth() const { return steWidth_; }

 private:
  int size_;
  float steWidth_;
  std::vector<float> preActCache_;
};

}  // namespace pcnn::eedn
