#pragma once

#include <cstdint>
#include <vector>

#include "nn/sequential.hpp"

namespace pcnn::eedn {

/// Deployment-weight inference plan compiled from a Sequential of
/// TrinaryDense / PartitionedDense / SpikingThreshold layers.
///
/// The training path re-trinarizes every hidden float weight on every
/// forward() call (so training always sees the deployment function); at
/// inference that work is pure waste -- the parrot extractor alone was
/// re-projecting ~54k weights per cell. Compiling snapshots the trinary
/// weights once (int8) and evaluates many samples at a time over
/// feature-major activation planes, so the inner loops are contiguous
/// float adds that vectorize.
///
/// Bitwise contract: for each (sample, output) pair the accumulation
/// starts from the layer bias and adds/subtracts inputs in ascending
/// input order -- the exact float operation sequence of
/// TrinaryDense::forward -- so results are bit-identical to
/// net.forward(sample, false) per sample. Gated by the parrot parity
/// tests.
///
/// The plan is a snapshot: callers must rebuild after any weight change
/// (ParrotHog invalidates on train() and mutable net() access).
class CompiledTrinaryNet {
 public:
  explicit CompiledTrinaryNet(const nn::Sequential& net);

  int inputSize() const { return inputSize_; }
  int outputSize() const { return outputSize_; }

  /// Evaluates `count` samples. `input` is a feature-major plane of
  /// inputSize() rows by `count` columns (input[i * count + s] = feature i
  /// of sample s); the returned plane has outputSize() rows in the same
  /// layout. Samples are split over the global thread pool; every sample's
  /// column is computed independently, so results are thread-count
  /// invariant.
  std::vector<float> forwardBatch(const std::vector<float>& input,
                                  int count) const;

 private:
  /// One trinary bank: `weights` is outputSize x inputSize row-major int8
  /// in {-1, 0, +1}, reading rows [inputOffset, inputOffset + inputSize)
  /// of the stage input plane and writing rows starting at outputOffset.
  struct DenseGroup {
    int inputOffset = 0;
    int inputSize = 0;
    int outputOffset = 0;
    int outputSize = 0;
    std::vector<std::int8_t> weights;
    std::vector<float> biases;
  };
  /// One dense stage (a TrinaryDense, or every group of a
  /// PartitionedDense) plus an optional fused SpikingThreshold.
  struct Stage {
    int inputSize = 0;
    int outputSize = 0;
    bool thresholdAfter = false;
    std::vector<DenseGroup> groups;
  };

  std::vector<Stage> stages_;
  int inputSize_ = 0;
  int outputSize_ = 0;
  int maxWidth_ = 0;  ///< widest stage activation, sizes the scratch planes
};

}  // namespace pcnn::eedn
