#pragma once

#include <memory>
#include <vector>

#include "nn/sequential.hpp"
#include "tn/network.hpp"

namespace pcnn::eedn {

/// A trained Eedn network deployed onto the TrueNorth simulator.
///
/// Mapping scheme (the standard Eedn deployment, Esser et al.):
///  - trinary weight signs are realised with the *two-axon* encoding: every
///    input of a stage arrives on a pair of axons, one of type 0 (LUT value
///    +1) and one of type 1 (-1); a +1 weight connects the positive axon, a
///    -1 weight the negative axon, a 0 weight neither;
///  - each logical neuron that feeds a later stage is physically duplicated
///    so that one copy drives the positive axon and the other the negative
///    axon of the downstream core (TrueNorth neurons have fan-out 1);
///  - the (rounded) bias of each neuron is delivered on a per-core bias
///    axon of type 2, pulsed by the host exactly at the tick the stage
///    integrates; the per-neuron LUT entry for type 2 is round(bias) + 1
///    with a firing threshold of 1, so a neuron fires iff
///    sum_i w_ij x_i + round(b_j) >= 0;
///  - stages are pipelined one tick apart: inputs at tick 0, stage k fires
///    at tick k, outputs are read at tick depth-1.
///
/// Constraints checked at map time: stage fan-in <= 127 (two axons per
/// input plus the bias axon must fit in 256). Banks wider than 128 logical
/// neurons are split across cores in 128-neuron chunks sharing the input
/// range; producers feeding several chunk cores get one copy pair per
/// consumer, and the total copies per logical neuron must fit the core.
class MappedEedn {
 public:
  /// Binary classification/feature pass: `input` holds 0/1 activations.
  /// Returns the 0/1 outputs of the final stage. Resets network state
  /// afterwards so calls are independent.
  std::vector<int> forwardSpikes(const std::vector<int>& input);

  /// forwardSpikes over a batch of inputs, window-major through this one
  /// network instance: each window reuses the same configured cores (and
  /// the event engine's warm active-set bookkeeping) instead of paying
  /// per-call setup. Results are identical to calling forwardSpikes once
  /// per input; lastRun() afterwards holds the batch's accumulated spike
  /// statistics (output spikes merged across windows).
  std::vector<std::vector<int>> forwardSpikesBatch(
      const std::vector<std::vector<int>>& inputs);

  /// Reference semantics of the mapped network computed in plain C++
  /// (trinary weights, integer-rounded biases, hard thresholds). The
  /// simulator run must agree with this exactly.
  std::vector<int> referenceForward(const std::vector<int>& input) const;

  int inputSize() const { return inputSize_; }
  int outputSize() const { return outputSize_; }
  int depth() const { return static_cast<int>(stages_.size()); }
  int coreCount() const { return network_.coreCount(); }
  tn::Network& network() { return network_; }

  /// Spike statistics of the most recent forwardSpikes() (for measured
  /// energy/power reports; see tn::estimateEnergy).
  const tn::RunResult& lastRun() const { return lastRun_; }

 private:
  friend class TnMapper;

  struct Group {
    int inputOffset = 0;
    int inputSize = 0;
    int core = -1;
    std::vector<std::vector<int>> weights;  ///< [localNeuron][localInput]
    std::vector<int> biases;                ///< rounded
    int logicalNeurons = 0;
  };
  struct Stage {
    std::vector<Group> groups;
    int outputSize = 0;
  };

  tn::Network network_{12345};
  tn::RunResult lastRun_;
  std::vector<Stage> stages_;
  std::vector<int> stageCopies_;  ///< physical copies per logical neuron
  int inputSize_ = 0;
  int outputSize_ = 0;
};

/// Builds a MappedEedn from a Sequential of TrinaryDense / PartitionedDense
/// stages (SpikingThreshold layers are consumed implicitly; a trailing
/// score layer is mapped like any other stage, its neurons firing when the
/// score is >= 0). Throws std::invalid_argument when the network violates
/// the mapping constraints or contains unsupported layer types.
class TnMapper {
 public:
  static std::unique_ptr<MappedEedn> map(const nn::Sequential& net);
};

}  // namespace pcnn::eedn
