#include "eedn/mapper.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "eedn/partitioned.hpp"
#include "eedn/trinary.hpp"

namespace pcnn::eedn {
namespace {

constexpr int kBiasAxonType = 2;

/// Per-group geometry inside a core: input i occupies axons 2i (type 0,
/// +1) and 2i+1 (type 1, -1); the bias axon sits at 2*fanIn.
int positiveAxon(int localInput) { return 2 * localInput; }
int negativeAxon(int localInput) { return 2 * localInput + 1; }
int biasAxon(int fanIn) { return 2 * fanIn; }

}  // namespace

std::unique_ptr<MappedEedn> TnMapper::map(const nn::Sequential& net) {
  auto mapped = std::make_unique<MappedEedn>();

  // 1. Collect the trinary stages (groups with weights and biases).
  for (std::size_t li = 0; li < net.layerCount(); ++li) {
    const nn::Layer& layer = net.layer(li);
    if (dynamic_cast<const SpikingThreshold*>(&layer) != nullptr) {
      continue;  // implicit in the neuron threshold
    }
    MappedEedn::Stage stage;
    // A bank wider than 128 logical neurons is split across cores in
    // chunks (each chunk shares the full input range); this is how wide
    // Eedn banks deploy in practice.
    auto addGroup = [&stage](int offset, int fanIn, const TrinaryDense& td) {
      if (fanIn > 127) {
        throw std::invalid_argument(
            "TnMapper: stage fan-in exceeds 127 (two axons per input plus "
            "bias axon must fit a 256-axon crossbar)");
      }
      for (int chunkStart = 0; chunkStart < td.outputSize();
           chunkStart += 128) {
        const int chunkSize = std::min(128, td.outputSize() - chunkStart);
        MappedEedn::Group group;
        group.inputOffset = offset;
        group.inputSize = fanIn;
        group.logicalNeurons = chunkSize;
        group.weights.resize(static_cast<std::size_t>(chunkSize));
        group.biases.resize(static_cast<std::size_t>(chunkSize));
        for (int j = 0; j < chunkSize; ++j) {
          group.weights[j].resize(static_cast<std::size_t>(fanIn));
          for (int i = 0; i < fanIn; ++i) {
            group.weights[j][i] = td.effectiveWeight(chunkStart + j, i);
          }
          group.biases[j] =
              static_cast<int>(std::lround(td.bias(chunkStart + j)));
        }
        stage.groups.push_back(std::move(group));
        stage.outputSize += chunkSize;
      }
    };

    if (const auto* pd = dynamic_cast<const PartitionedDense*>(&layer)) {
      for (int g = 0; g < pd->groupCount(); ++g) {
        const auto view = pd->group(g);
        addGroup(view.inputOffset, view.inputSize, *view.layer);
      }
    } else if (const auto* td = dynamic_cast<const TrinaryDense*>(&layer)) {
      addGroup(0, td->inputSize(), *td);
    } else {
      throw std::invalid_argument(
          "TnMapper: unsupported layer type in Eedn network");
    }
    if (mapped->stages_.empty()) {
      mapped->inputSize_ = layer.inputSize();
    }
    mapped->stages_.push_back(std::move(stage));
  }
  if (mapped->stages_.empty()) {
    throw std::invalid_argument("TnMapper: network has no trinary stages");
  }
  mapped->outputSize_ = mapped->stages_.back().outputSize;

  // 2. Determine per-stage physical copy counts. A logical neuron needs
  //    two copies (positive/negative axon) per downstream group that reads
  //    its output: chunked wide banks downstream share their input range,
  //    so every producer output feeds each chunk core.
  std::vector<int> stageCopies(mapped->stages_.size(), 1);
  for (std::size_t s = 0; s + 1 < mapped->stages_.size(); ++s) {
    const auto& next = mapped->stages_[s + 1];
    int maxConsumers = 0;
    for (int q = 0; q < mapped->stages_[s].outputSize; ++q) {
      int consumers = 0;
      for (const auto& cand : next.groups) {
        if (q >= cand.inputOffset && q < cand.inputOffset + cand.inputSize) {
          ++consumers;
        }
      }
      maxConsumers = std::max(maxConsumers, consumers);
    }
    stageCopies[s] = 2 * std::max(1, maxConsumers);
  }
  for (std::size_t s = 0; s < mapped->stages_.size(); ++s) {
    for (const auto& group : mapped->stages_[s].groups) {
      if (group.logicalNeurons * stageCopies[s] > tn::kNeuronsPerCore) {
        throw std::invalid_argument(
            "TnMapper: neuron duplication for downstream fan-out overflows "
            "the core (reduce bank width or downstream chunking)");
      }
    }
    mapped->stageCopies_.push_back(stageCopies[s]);
  }

  // 3. Allocate cores and program crossbars.
  tn::Network& network = mapped->network_;
  for (std::size_t s = 0; s < mapped->stages_.size(); ++s) {
    const bool last = (s + 1 == mapped->stages_.size());
    const int copies = stageCopies[s];
    for (auto& group : mapped->stages_[s].groups) {
      group.core = network.addCore();
      tn::Core& core = network.core(group.core);
      for (int i = 0; i < group.inputSize; ++i) {
        core.setAxonType(positiveAxon(i), 0);
        core.setAxonType(negativeAxon(i), 1);
      }
      core.setAxonType(biasAxon(group.inputSize), kBiasAxonType);

      for (int j = 0; j < group.logicalNeurons; ++j) {
        for (int copy = 0; copy < copies; ++copy) {
          const int neuron = copies * j + copy;
          tn::NeuronConfig& cfg = core.neuron(neuron);
          cfg.synapticWeights = {1, -1, group.biases[j] + 1, 0};
          cfg.threshold = 1;
          cfg.resetMode = tn::ResetMode::kAbsolute;
          cfg.resetValue = 0;
          cfg.recordOutput = last && copy == 0;
          for (int i = 0; i < group.inputSize; ++i) {
            const int w = group.weights[j][i];
            if (w == 1) {
              core.setConnection(positiveAxon(i), neuron, true);
            } else if (w == -1) {
              core.setConnection(negativeAxon(i), neuron, true);
            }
          }
          core.setConnection(biasAxon(group.inputSize), neuron, true);
        }
      }
    }
  }

  // 4. Route stage outputs: logical output q drives the positive and
  //    negative axon of every downstream group covering q, one copy pair
  //    per consumer.
  for (std::size_t s = 0; s + 1 < mapped->stages_.size(); ++s) {
    const auto& stage = mapped->stages_[s];
    const auto& next = mapped->stages_[s + 1];
    const int copies = stageCopies[s];
    int globalOut = 0;
    for (const auto& group : stage.groups) {
      for (int j = 0; j < group.logicalNeurons; ++j, ++globalOut) {
        int consumer = 0;
        tn::Core& core = network.core(group.core);
        for (const auto& cand : next.groups) {
          if (globalOut < cand.inputOffset ||
              globalOut >= cand.inputOffset + cand.inputSize) {
            continue;
          }
          const int local = globalOut - cand.inputOffset;
          core.neuron(copies * j + 2 * consumer).dest =
              tn::Destination{cand.core, positiveAxon(local), 1};
          core.neuron(copies * j + 2 * consumer + 1).dest =
              tn::Destination{cand.core, negativeAxon(local), 1};
          ++consumer;
        }
      }
    }
  }
  return mapped;
}

std::vector<int> MappedEedn::forwardSpikes(const std::vector<int>& input) {
  if (static_cast<int>(input.size()) != inputSize_) {
    throw std::invalid_argument("MappedEedn: input size mismatch");
  }
  network_.reset(true);

  // Inputs to stage 0 at tick 0 (both axons of each active input).
  for (const auto& group : stages_.front().groups) {
    for (int i = 0; i < group.inputSize; ++i) {
      if (input[group.inputOffset + i] != 0) {
        network_.scheduleInput(0, group.core, positiveAxon(i));
        network_.scheduleInput(0, group.core, negativeAxon(i));
      }
    }
  }
  // Bias pulses: stage s integrates at tick s.
  for (std::size_t s = 0; s < stages_.size(); ++s) {
    for (const auto& group : stages_[s].groups) {
      network_.scheduleInput(static_cast<long>(s), group.core,
                             biasAxon(group.inputSize));
    }
  }

  const tn::RunResult result = network_.run(static_cast<long>(depth()));
  lastRun_ = result;

  // Decode final-stage spikes (they fire at tick depth-1).
  std::vector<int> out(static_cast<std::size_t>(outputSize_), 0);
  const auto& lastStage = stages_.back();
  for (const tn::OutputSpike& spike : result.outputSpikes) {
    if (spike.tick != static_cast<long>(depth()) - 1) continue;
    int globalOut = 0;
    for (const auto& group : lastStage.groups) {
      if (spike.core == group.core) {
        out[globalOut + spike.neuron] = 1;  // last stage: 1 copy per neuron
        break;
      }
      globalOut += group.logicalNeurons;
    }
  }
  network_.reset(true);
  return out;
}

std::vector<std::vector<int>> MappedEedn::forwardSpikesBatch(
    const std::vector<std::vector<int>>& inputs) {
  std::vector<std::vector<int>> out;
  out.reserve(inputs.size());
  tn::RunResult total;
  for (const std::vector<int>& input : inputs) {
    out.push_back(forwardSpikes(input));
    total.accumulate(lastRun_, true);
  }
  lastRun_ = std::move(total);
  return out;
}

std::vector<int> MappedEedn::referenceForward(
    const std::vector<int>& input) const {
  if (static_cast<int>(input.size()) != inputSize_) {
    throw std::invalid_argument("MappedEedn: input size mismatch");
  }
  std::vector<int> activ = input;
  for (const Stage& stage : stages_) {
    std::vector<int> next;
    next.reserve(static_cast<std::size_t>(stage.outputSize));
    for (const Group& group : stage.groups) {
      for (int j = 0; j < group.logicalNeurons; ++j) {
        int acc = group.biases[j];
        for (int i = 0; i < group.inputSize; ++i) {
          acc += group.weights[j][i] * activ[group.inputOffset + i];
        }
        next.push_back(acc >= 0 ? 1 : 0);
      }
    }
    activ = std::move(next);
  }
  return activ;
}

}  // namespace pcnn::eedn
