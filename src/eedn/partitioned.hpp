#pragma once

#include <vector>

#include "eedn/trinary.hpp"

namespace pcnn::eedn {

/// Grouped (partitioned) trinary layer.
///
/// Eedn "partitions layers and the corresponding filters into multiple
/// groups to ensure the filters are sized such that they can be implemented
/// using the 256x256 TrueNorth core crossbars" (Sec. 2.2). With the
/// two-axon sign encoding used when mapping trinary weights onto the
/// crossbar, each neuron may read at most 128 distinct inputs, so the input
/// vector is split into contiguous groups of at most `groupInputSize`
/// (default 128) inputs, each feeding its own bank of `outputsPerGroup`
/// neurons. The layer output is the concatenation of all banks.
class PartitionedDense : public nn::Layer {
 public:
  PartitionedDense(int inputSize, int groupInputSize, int outputsPerGroup,
                   pcnn::Rng& rng, float tau = 0.5f);

  std::vector<float> forward(const std::vector<float>& input,
                             bool train) override;
  std::vector<float> backward(const std::vector<float>& gradOutput) override;
  void applyGradients(float learningRate, float momentum, int batch) override;

  int inputSize() const override { return in_; }
  int outputSize() const override { return out_; }
  long parameterCount() const override;

  int groupCount() const { return static_cast<int>(groups_.size()); }
  int groupInputSize() const { return groupInputSize_; }
  int outputsPerGroup() const { return outputsPerGroup_; }

  /// Input range and sub-layer of one group (for the TrueNorth mapper).
  struct GroupView {
    int inputOffset;
    int inputSize;
    const TrinaryDense* layer;
  };
  GroupView group(int g) const;

  /// Mutable access to one group's sub-layer (weight I/O).
  TrinaryDense& mutableGroupLayer(int g);

 private:
  struct Group {
    int offset;
    TrinaryDense layer;
  };
  int in_, out_, groupInputSize_, outputsPerGroup_;
  std::vector<Group> groups_;
};

}  // namespace pcnn::eedn
