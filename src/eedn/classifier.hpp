#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "eedn/partitioned.hpp"
#include "nn/sequential.hpp"

namespace pcnn::eedn {

/// Configuration of an Eedn binary classifier (person / not-person).
///
/// Layer structure: PartitionedDense over the feature vector, a spiking
/// threshold, zero or more TrinaryDense+spike hidden layers, and a final
/// TrinaryDense producing `outputPopulation` score neurons per class whose
/// summed activity is the class score (population coding, as in Eedn).
struct EednClassifierConfig {
  int inputSize = 0;
  int groupInputSize = 128;   ///< crossbar fan-in limit with sign encoding
  int outputsPerGroup = 16;
  std::vector<int> hiddenWidths = {128};
  int outputPopulation = 8;   ///< score neurons per class
  float tau = 0.5f;           ///< trinarization dead zone
  /// Multiplier applied to input features before the first layer. On the
  /// chip, features arrive as spike *rates* in [0, 1]; count-scaled
  /// features (e.g. HoG cell votes, 0..64) should use 1/64 so the network
  /// trains in the regime it is deployed in.
  float inputScale = 1.0f;
  std::uint64_t seed = 7;
};

/// Dataset for binary training: labels are +1 (person) / -1 (background).
struct BinaryDataset {
  std::vector<std::vector<float>> features;
  std::vector<int> labels;
};

/// Trainable Eedn binary classifier.
class EednClassifier {
 public:
  explicit EednClassifier(const EednClassifierConfig& config);

  /// Raw detection score: mean positive-class minus mean negative-class
  /// population pre-activation. Positive means "person".
  float score(const std::vector<float>& features);

  /// +1 for person, -1 for background.
  int predict(const std::vector<float>& features) {
    return score(features) >= 0.0f ? 1 : -1;
  }

  /// One epoch of mini-batch SGD with softmax cross-entropy over the two
  /// population-summed class scores. Returns the mean loss.
  float trainEpoch(const BinaryDataset& data, float learningRate,
                   float momentum = 0.9f, int batchSize = 16);

  /// Fraction of correctly classified samples.
  double evalAccuracy(const BinaryDataset& data);

  /// Fraction of samples assigned to the majority predicted class. 1.0
  /// means the classifier makes "blind decisions (all-positive or
  /// all-negative)" -- the degenerate behaviour the paper reports for the
  /// Absorbed monolithic network (Sec. 5.1).
  double blindDecisionRate(const BinaryDataset& data);

  /// Estimated TrueNorth cores needed to deploy this network with the
  /// two-axon sign encoding (one core per <=128-input, <=256-neuron bank;
  /// larger fan-ins use input-splitting trees).
  long coreCountEstimate() const;

  nn::Sequential& net() { return net_; }
  const nn::Sequential& net() const { return net_; }
  const EednClassifierConfig& config() const { return config_; }

 private:
  std::vector<float> classScores(const std::vector<float>& features,
                                 bool train);
  EednClassifierConfig config_;
  pcnn::Rng rng_;
  nn::Sequential net_;
  std::vector<int> layerFanIns_;   ///< fan-in of each trinary stage
  std::vector<int> layerWidths_;   ///< outputs of each trinary stage
  std::vector<long> stageCores_;   ///< core estimate per trinary stage
};

}  // namespace pcnn::eedn
