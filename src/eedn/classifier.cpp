#include "eedn/classifier.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "nn/loss.hpp"

namespace pcnn::eedn {

EednClassifier::EednClassifier(const EednClassifierConfig& config)
    : config_(config), rng_(config.seed) {
  if (config.inputSize <= 0) {
    throw std::invalid_argument("EednClassifier: inputSize must be set");
  }
  if (config.outputPopulation <= 0) {
    throw std::invalid_argument("EednClassifier: outputPopulation must be >0");
  }
  auto front = std::make_unique<PartitionedDense>(
      config.inputSize, config.groupInputSize, config.outputsPerGroup, rng_,
      config.tau);
  int width = front->outputSize();
  // One core per group: with the two-axon sign encoding a 128-input group
  // occupies a full 256-axon crossbar, so groups cannot share cores.
  stageCores_.push_back(front->groupCount());
  layerFanIns_.push_back(config.groupInputSize);
  layerWidths_.push_back(width);
  net_.add(std::move(front));
  net_.add(std::make_unique<SpikingThreshold>(
      width, std::sqrt(static_cast<float>(config.groupInputSize))));

  auto denseCores = [](int fanIn, int outWidth) {
    const long fanInSplits = std::max(1, (fanIn + 127) / 128);
    const long neuronBanks = std::max(1, (outWidth + 255) / 256);
    return fanInSplits * neuronBanks;
  };

  for (int hidden : config.hiddenWidths) {
    stageCores_.push_back(denseCores(width, hidden));
    layerFanIns_.push_back(width);
    layerWidths_.push_back(hidden);
    net_.add(std::make_unique<TrinaryDense>(width, hidden, rng_, config.tau));
    net_.add(std::make_unique<SpikingThreshold>(
        hidden, std::sqrt(static_cast<float>(width))));
    width = hidden;
  }

  const int outWidth = 2 * config.outputPopulation;
  stageCores_.push_back(denseCores(width, outWidth));
  layerFanIns_.push_back(width);
  layerWidths_.push_back(outWidth);
  net_.add(std::make_unique<TrinaryDense>(width, outWidth, rng_, config.tau));
}

std::vector<float> EednClassifier::classScores(
    const std::vector<float>& features, bool train) {
  std::vector<float> scaled;
  const std::vector<float>* input = &features;
  if (config_.inputScale != 1.0f) {
    scaled.resize(features.size());
    for (std::size_t i = 0; i < features.size(); ++i) {
      scaled[i] = features[i] * config_.inputScale;
    }
    input = &scaled;
  }
  const std::vector<float> out = net_.forward(*input, train);
  const int population = config_.outputPopulation;
  float background = 0.0f;
  float person = 0.0f;
  for (int i = 0; i < population; ++i) background += out[i];
  for (int i = 0; i < population; ++i) person += out[population + i];
  const float inv = 1.0f / static_cast<float>(population);
  return {background * inv, person * inv};
}

float EednClassifier::score(const std::vector<float>& features) {
  const auto scores = classScores(features, false);
  return scores[1] - scores[0];
}

float EednClassifier::trainEpoch(const BinaryDataset& data,
                                 float learningRate, float momentum,
                                 int batchSize) {
  if (data.features.size() != data.labels.size()) {
    throw std::invalid_argument("trainEpoch: features/labels mismatch");
  }
  if (data.features.empty()) return 0.0f;
  std::vector<std::size_t> order(data.features.size());
  std::iota(order.begin(), order.end(), 0);
  for (std::size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1],
              order[static_cast<std::size_t>(rng_.uniformInt(
                  0, static_cast<int>(i) - 1))]);
  }

  const int population = config_.outputPopulation;
  const float inv = 1.0f / static_cast<float>(population);
  double lossSum = 0.0;
  int inBatch = 0;
  for (std::size_t idx : order) {
    const auto scores = classScores(data.features[idx], true);
    const int target = data.labels[idx] > 0 ? 1 : 0;
    const nn::LossResult loss = nn::softmaxCrossEntropy(scores, target);
    lossSum += loss.value;

    // Spread the per-class gradient uniformly over the class population.
    std::vector<float> grad(static_cast<std::size_t>(2 * population));
    for (int i = 0; i < population; ++i) {
      grad[i] = loss.grad[0] * inv;
      grad[population + i] = loss.grad[1] * inv;
    }
    net_.backward(grad);
    if (++inBatch == batchSize) {
      net_.applyGradients(learningRate, momentum, inBatch);
      inBatch = 0;
    }
  }
  if (inBatch > 0) net_.applyGradients(learningRate, momentum, inBatch);
  return static_cast<float>(lossSum / static_cast<double>(order.size()));
}

double EednClassifier::evalAccuracy(const BinaryDataset& data) {
  if (data.features.empty()) return 0.0;
  std::size_t correct = 0;
  for (std::size_t i = 0; i < data.features.size(); ++i) {
    if (predict(data.features[i]) == (data.labels[i] > 0 ? 1 : -1)) {
      ++correct;
    }
  }
  return static_cast<double>(correct) /
         static_cast<double>(data.features.size());
}

double EednClassifier::blindDecisionRate(const BinaryDataset& data) {
  if (data.features.empty()) return 0.0;
  std::size_t positive = 0;
  for (const auto& f : data.features) {
    if (predict(f) > 0) ++positive;
  }
  const double p = static_cast<double>(positive) /
                   static_cast<double>(data.features.size());
  return std::max(p, 1.0 - p);
}

long EednClassifier::coreCountEstimate() const {
  long cores = 0;
  for (long c : stageCores_) cores += c;
  return cores;
}

}  // namespace pcnn::eedn
