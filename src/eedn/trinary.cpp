#include "eedn/trinary.hpp"

#include <algorithm>
#include <stdexcept>

namespace pcnn::eedn {

TrinaryDense::TrinaryDense(int inputSize, int outputSize, pcnn::Rng& rng,
                           float tau)
    : in_(inputSize), out_(outputSize), tau_(tau) {
  if (inputSize <= 0 || outputSize <= 0) {
    throw std::invalid_argument("TrinaryDense: sizes must be positive");
  }
  if (tau <= 0.0f || tau >= 1.0f) {
    throw std::invalid_argument("TrinaryDense: tau must be in (0, 1)");
  }
  hidden_.resize(static_cast<std::size_t>(in_) * out_);
  // Uniform init across [-1, 1]: roughly half the weights start inside the
  // dead zone (effective 0) and the rest split between +-1.
  for (float& v : hidden_) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  b_.assign(static_cast<std::size_t>(out_), 0.0f);
  gradW_.assign(hidden_.size(), 0.0f);
  gradB_.assign(b_.size(), 0.0f);
  momW_.assign(hidden_.size(), 0.0f);
  momB_.assign(b_.size(), 0.0f);
}

std::vector<float> TrinaryDense::forward(const std::vector<float>& input,
                                         bool train) {
  if (static_cast<int>(input.size()) != in_) {
    throw std::invalid_argument("TrinaryDense::forward: input size mismatch");
  }
  if (train) inputCache_ = input;
  std::vector<float> out(static_cast<std::size_t>(out_));
  for (int j = 0; j < out_; ++j) {
    const float* row = hidden_.data() + static_cast<std::size_t>(j) * in_;
    float acc = b_[j];
    for (int i = 0; i < in_; ++i) {
      const int w = trinarize(row[i], tau_);
      if (w == 1) {
        acc += input[i];
      } else if (w == -1) {
        acc -= input[i];
      }
    }
    out[j] = acc;
  }
  return out;
}

std::vector<float> TrinaryDense::backward(
    const std::vector<float>& gradOutput) {
  if (static_cast<int>(gradOutput.size()) != out_) {
    throw std::invalid_argument("TrinaryDense::backward: grad size mismatch");
  }
  std::vector<float> gradIn(static_cast<std::size_t>(in_), 0.0f);
  for (int j = 0; j < out_; ++j) {
    const float g = gradOutput[j];
    if (g == 0.0f) continue;
    const float* row = hidden_.data() + static_cast<std::size_t>(j) * in_;
    float* gRow = gradW_.data() + static_cast<std::size_t>(j) * in_;
    for (int i = 0; i < in_; ++i) {
      // Straight-through: the hidden weight receives the gradient the
      // effective weight would, while the input gradient uses the effective
      // (deployed) value.
      gRow[i] += g * inputCache_[i];
      const int w = trinarize(row[i], tau_);
      if (w == 1) {
        gradIn[i] += g;
      } else if (w == -1) {
        gradIn[i] -= g;
      }
    }
    gradB_[j] += g;
  }
  return gradIn;
}

void TrinaryDense::applyGradients(float learningRate, float momentum,
                                  int batch) {
  const float scale = 1.0f / static_cast<float>(batch > 0 ? batch : 1);
  for (std::size_t i = 0; i < hidden_.size(); ++i) {
    momW_[i] = momentum * momW_[i] - learningRate * gradW_[i] * scale;
    hidden_[i] = std::clamp(hidden_[i] + momW_[i], -1.0f, 1.0f);
    gradW_[i] = 0.0f;
  }
  for (std::size_t i = 0; i < b_.size(); ++i) {
    momB_[i] = momentum * momB_[i] - learningRate * gradB_[i] * scale;
    b_[i] += momB_[i];
    gradB_[i] = 0.0f;
  }
}

SpikingThreshold::SpikingThreshold(int size, float steWidth)
    : size_(size), steWidth_(steWidth) {
  if (size <= 0 || steWidth <= 0.0f) {
    throw std::invalid_argument("SpikingThreshold: bad parameters");
  }
}

std::vector<float> SpikingThreshold::forward(const std::vector<float>& input,
                                             bool train) {
  if (static_cast<int>(input.size()) != size_) {
    throw std::invalid_argument("SpikingThreshold::forward: size mismatch");
  }
  if (train) preActCache_ = input;
  std::vector<float> out(input.size());
  for (std::size_t i = 0; i < input.size(); ++i) {
    out[i] = input[i] >= 0.0f ? 1.0f : 0.0f;
  }
  return out;
}

std::vector<float> SpikingThreshold::backward(
    const std::vector<float>& gradOutput) {
  std::vector<float> gradIn(gradOutput.size(), 0.0f);
  for (std::size_t i = 0; i < gradOutput.size(); ++i) {
    if (preActCache_[i] >= -steWidth_ && preActCache_[i] <= steWidth_) {
      gradIn[i] = gradOutput[i];
    }
  }
  return gradIn;
}

}  // namespace pcnn::eedn
