#include "eedn/partitioned.hpp"

#include <stdexcept>

namespace pcnn::eedn {

PartitionedDense::PartitionedDense(int inputSize, int groupInputSize,
                                   int outputsPerGroup, pcnn::Rng& rng,
                                   float tau)
    : in_(inputSize),
      groupInputSize_(groupInputSize),
      outputsPerGroup_(outputsPerGroup) {
  if (inputSize <= 0 || groupInputSize <= 0 || outputsPerGroup <= 0) {
    throw std::invalid_argument("PartitionedDense: sizes must be positive");
  }
  for (int offset = 0; offset < inputSize; offset += groupInputSize) {
    const int size = std::min(groupInputSize, inputSize - offset);
    groups_.push_back(
        Group{offset, TrinaryDense(size, outputsPerGroup, rng, tau)});
  }
  out_ = static_cast<int>(groups_.size()) * outputsPerGroup;
}

std::vector<float> PartitionedDense::forward(const std::vector<float>& input,
                                             bool train) {
  if (static_cast<int>(input.size()) != in_) {
    throw std::invalid_argument("PartitionedDense::forward: size mismatch");
  }
  std::vector<float> out;
  out.reserve(static_cast<std::size_t>(out_));
  for (Group& g : groups_) {
    const int size = g.layer.inputSize();
    std::vector<float> slice(input.begin() + g.offset,
                             input.begin() + g.offset + size);
    std::vector<float> y = g.layer.forward(slice, train);
    out.insert(out.end(), y.begin(), y.end());
  }
  return out;
}

std::vector<float> PartitionedDense::backward(
    const std::vector<float>& gradOutput) {
  if (static_cast<int>(gradOutput.size()) != out_) {
    throw std::invalid_argument("PartitionedDense::backward: size mismatch");
  }
  std::vector<float> gradIn(static_cast<std::size_t>(in_), 0.0f);
  int outOffset = 0;
  for (Group& g : groups_) {
    std::vector<float> slice(gradOutput.begin() + outOffset,
                             gradOutput.begin() + outOffset + outputsPerGroup_);
    std::vector<float> gi = g.layer.backward(slice);
    for (int i = 0; i < g.layer.inputSize(); ++i) {
      gradIn[g.offset + i] += gi[i];
    }
    outOffset += outputsPerGroup_;
  }
  return gradIn;
}

void PartitionedDense::applyGradients(float learningRate, float momentum,
                                      int batch) {
  for (Group& g : groups_) {
    g.layer.applyGradients(learningRate, momentum, batch);
  }
}

long PartitionedDense::parameterCount() const {
  long count = 0;
  for (const Group& g : groups_) count += g.layer.parameterCount();
  return count;
}

PartitionedDense::GroupView PartitionedDense::group(int g) const {
  const Group& grp = groups_.at(static_cast<std::size_t>(g));
  return GroupView{grp.offset, grp.layer.inputSize(), &grp.layer};
}

TrinaryDense& PartitionedDense::mutableGroupLayer(int g) {
  return groups_.at(static_cast<std::size_t>(g)).layer;
}

}  // namespace pcnn::eedn
