#include "eedn/serialize.hpp"

#include <cmath>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "eedn/partitioned.hpp"
#include "eedn/trinary.hpp"
#include "io/io.hpp"

namespace pcnn::eedn {
namespace {

constexpr char kMagic[5] = "PEDN";
constexpr std::uint32_t kVersion = 2;

// --- v1 whitespace-text reader (legacy files; never written anymore) ----

Status loadTrinaryV1(TrinaryDense& layer, std::istream& in) {
  std::string tag;
  int inSize = 0, outSize = 0;
  if (!(in >> tag >> inSize >> outSize) || tag != "TrinaryDense" ||
      inSize != layer.inputSize() || outSize != layer.outputSize()) {
    return Status::DataLoss("loadNetwork: TrinaryDense shape mismatch");
  }
  for (float& w : layer.hiddenWeights()) {
    if (!(in >> w)) {
      return Status::DataLoss("loadNetwork: truncated weights");
    }
    if (!std::isfinite(w)) {
      return Status::OutOfRange("loadNetwork: non-finite weight");
    }
  }
  for (float& b : layer.biases()) {
    if (!(in >> b)) {
      return Status::DataLoss("loadNetwork: truncated biases");
    }
    if (!std::isfinite(b)) {
      return Status::OutOfRange("loadNetwork: non-finite bias");
    }
  }
  return Status::Ok();
}

Status tryLoadNetworkV1(nn::Sequential& net, std::istream& in) {
  std::string magic;
  std::size_t layerCount = 0;
  if (!(in >> magic >> layerCount) || magic != "pcnn-eedn-v1" ||
      layerCount != net.layerCount()) {
    return Status::DataLoss("loadNetwork: bad header or layer count");
  }
  for (std::size_t i = 0; i < net.layerCount(); ++i) {
    nn::Layer& layer = net.layer(i);
    if (auto* td = dynamic_cast<TrinaryDense*>(&layer)) {
      if (Status status = loadTrinaryV1(*td, in); !status.ok()) {
        return status;
      }
    } else if (auto* pd = dynamic_cast<PartitionedDense*>(&layer)) {
      std::string tag;
      int groups = 0;
      if (!(in >> tag >> groups) || tag != "PartitionedDense" ||
          groups != pd->groupCount()) {
        return Status::DataLoss("loadNetwork: PartitionedDense mismatch");
      }
      for (int g = 0; g < groups; ++g) {
        if (Status status = loadTrinaryV1(pd->mutableGroupLayer(g), in);
            !status.ok()) {
          return status;
        }
      }
    } else if (dynamic_cast<SpikingThreshold*>(&layer) != nullptr) {
      std::string tag;
      int size = 0;
      float width = 0.0f;
      if (!(in >> tag >> size >> width) || tag != "SpikingThreshold" ||
          size != layer.inputSize()) {
        return Status::DataLoss("loadNetwork: SpikingThreshold mismatch");
      }
    } else {
      return Status::InvalidArgument(
          "loadNetwork: unsupported layer type in Eedn network");
    }
  }
  return Status::Ok();
}

// --- v2 chunked binary over io::Writer/io::Reader ------------------------

void packTrinary(const TrinaryDense& layer, io::Writer& w) {
  w.u32(static_cast<std::uint32_t>(layer.inputSize()));
  w.u32(static_cast<std::uint32_t>(layer.outputSize()));
  for (float weight : layer.hiddenWeights()) w.f32(weight);
  for (float bias : layer.biases()) w.f32(bias);
}

Status unpackTrinary(TrinaryDense& layer, io::Reader& r) {
  std::uint32_t inSize = 0, outSize = 0;
  r.u32(inSize);
  if (!r.u32(outSize).ok()) return r.status();
  if (inSize != static_cast<std::uint32_t>(layer.inputSize()) ||
      outSize != static_cast<std::uint32_t>(layer.outputSize())) {
    return Status::DataLoss("loadNetwork: TrinaryDense shape mismatch");
  }
  for (float& w : layer.hiddenWeights()) {
    if (!r.f32(w).ok()) {
      return Status::DataLoss("loadNetwork: truncated weights");
    }
    if (!std::isfinite(w)) {
      return Status::OutOfRange("loadNetwork: non-finite weight");
    }
  }
  for (float& b : layer.biases()) {
    if (!r.f32(b).ok()) {
      return Status::DataLoss("loadNetwork: truncated biases");
    }
    if (!std::isfinite(b)) {
      return Status::OutOfRange("loadNetwork: non-finite bias");
    }
  }
  return Status::Ok();
}

Status tryLoadNetworkV2(nn::Sequential& net, std::istream& in) {
  io::Reader r(in);
  if (!r.header(kMagic, kVersion).ok()) return r.status();

  io::Reader::Chunk chunk;
  bool end = false;
  if (!r.nextChunk(chunk, end).ok()) return r.status();
  if (end || chunk.tag != "NETW") {
    return Status::DataLoss("loadNetwork: missing NETW chunk");
  }
  {
    std::istringstream payload(chunk.payload);
    io::Reader pr(payload);
    std::uint32_t layerCount = 0;
    if (!pr.u32(layerCount).ok()) return pr.status();
    if (layerCount != net.layerCount()) {
      return Status::DataLoss("loadNetwork: bad header or layer count");
    }
  }

  for (std::size_t i = 0; i < net.layerCount(); ++i) {
    // One chunk per layer, unknown tags skipped for forward compat.
    for (;;) {
      if (!r.nextChunk(chunk, end).ok()) return r.status();
      if (end) {
        return Status::DataLoss("loadNetwork: truncated layer sequence");
      }
      if (chunk.tag == "TDNS" || chunk.tag == "PDNS" ||
          chunk.tag == "SPKT") {
        break;
      }
    }
    std::istringstream payload(chunk.payload);
    io::Reader pr(payload);
    nn::Layer& layer = net.layer(i);
    if (auto* td = dynamic_cast<TrinaryDense*>(&layer)) {
      if (chunk.tag != "TDNS") {
        return Status::DataLoss("loadNetwork: TrinaryDense layer mismatch");
      }
      if (Status status = unpackTrinary(*td, pr); !status.ok()) {
        return status;
      }
    } else if (auto* pd = dynamic_cast<PartitionedDense*>(&layer)) {
      if (chunk.tag != "PDNS") {
        return Status::DataLoss("loadNetwork: PartitionedDense mismatch");
      }
      std::uint32_t groups = 0;
      if (!pr.u32(groups).ok()) return pr.status();
      if (groups != static_cast<std::uint32_t>(pd->groupCount())) {
        return Status::DataLoss("loadNetwork: PartitionedDense mismatch");
      }
      for (std::uint32_t g = 0; g < groups; ++g) {
        if (Status status =
                unpackTrinary(pd->mutableGroupLayer(static_cast<int>(g)), pr);
            !status.ok()) {
          return status;
        }
      }
    } else if (dynamic_cast<SpikingThreshold*>(&layer) != nullptr) {
      if (chunk.tag != "SPKT") {
        return Status::DataLoss("loadNetwork: SpikingThreshold mismatch");
      }
      std::uint32_t size = 0;
      float width = 0.0f;
      pr.u32(size);
      if (!pr.f32(width).ok()) return pr.status();
      if (size != static_cast<std::uint32_t>(layer.inputSize())) {
        return Status::DataLoss("loadNetwork: SpikingThreshold mismatch");
      }
    } else {
      return Status::InvalidArgument(
          "loadNetwork: unsupported layer type in Eedn network");
    }
  }
  return Status::Ok();
}

}  // namespace

Status trySaveNetwork(const nn::Sequential& net, std::ostream& out) {
  io::Writer w(out);
  w.header(kMagic, kVersion);
  {
    std::ostringstream payload;
    io::Writer pw(payload);
    pw.u32(static_cast<std::uint32_t>(net.layerCount()));
    w.chunk("NETW", payload.str());
  }
  for (std::size_t i = 0; i < net.layerCount(); ++i) {
    const nn::Layer& layer = net.layer(i);
    std::ostringstream payload;
    io::Writer pw(payload);
    if (const auto* td = dynamic_cast<const TrinaryDense*>(&layer)) {
      packTrinary(*td, pw);
      if (!pw.status().ok()) return pw.status();
      w.chunk("TDNS", payload.str());
    } else if (const auto* pd =
                   dynamic_cast<const PartitionedDense*>(&layer)) {
      pw.u32(static_cast<std::uint32_t>(pd->groupCount()));
      for (int g = 0; g < pd->groupCount(); ++g) {
        packTrinary(*pd->group(g).layer, pw);
      }
      if (!pw.status().ok()) return pw.status();
      w.chunk("PDNS", payload.str());
    } else if (const auto* spike =
                   dynamic_cast<const SpikingThreshold*>(&layer)) {
      pw.u32(static_cast<std::uint32_t>(spike->inputSize()));
      pw.f32(spike->steWidth());
      if (!pw.status().ok()) return pw.status();
      w.chunk("SPKT", payload.str());
    } else {
      return Status::InvalidArgument(
          "saveNetwork: unsupported layer type in Eedn network");
    }
  }
  return w.status();
}

Status trySaveNetworkFile(const nn::Sequential& net,
                          const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return Status::Unavailable("saveNetworkFile: cannot open " + path);
  }
  return trySaveNetwork(net, out);
}

Status tryLoadNetwork(nn::Sequential& net, std::istream& in) {
  if (io::peekMagic(in) == kMagic) return tryLoadNetworkV2(net, in);
  return tryLoadNetworkV1(net, in);
}

Status tryLoadNetworkFile(nn::Sequential& net, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::Unavailable("loadNetworkFile: cannot open " + path);
  }
  return tryLoadNetwork(net, in);
}

namespace {

/// Legacy save wrappers preserve their historical exception types: an
/// unsupported layer was always std::invalid_argument, anything else
/// std::runtime_error.
void throwForSave(const Status& status) {
  if (status.code() == StatusCode::kInvalidArgument ||
      status.code() == StatusCode::kFailedPrecondition) {
    throw std::invalid_argument(status.message());
  }
  throw std::runtime_error(status.toString());
}

}  // namespace

void saveNetwork(const nn::Sequential& net, std::ostream& out) {
  if (Status status = trySaveNetwork(net, out); !status.ok()) {
    throwForSave(status);
  }
}

void saveNetworkFile(const nn::Sequential& net, const std::string& path) {
  if (Status status = trySaveNetworkFile(net, path); !status.ok()) {
    throwForSave(status);
  }
}

void loadNetwork(nn::Sequential& net, std::istream& in) {
  if (Status status = tryLoadNetwork(net, in); !status.ok()) {
    throw std::runtime_error(status.toString());
  }
}

void loadNetworkFile(nn::Sequential& net, const std::string& path) {
  if (Status status = tryLoadNetworkFile(net, path); !status.ok()) {
    throw std::runtime_error(status.toString());
  }
}

}  // namespace pcnn::eedn
