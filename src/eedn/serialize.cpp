#include "eedn/serialize.hpp"

#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "eedn/partitioned.hpp"
#include "eedn/trinary.hpp"

namespace pcnn::eedn {
namespace {

void saveTrinary(const TrinaryDense& layer, std::ostream& out) {
  out << "TrinaryDense " << layer.inputSize() << ' ' << layer.outputSize()
      << '\n';
  for (float w : layer.hiddenWeights()) out << w << ' ';
  out << '\n';
  for (float b : layer.biases()) out << b << ' ';
  out << '\n';
}

void loadTrinary(TrinaryDense& layer, std::istream& in) {
  std::string tag;
  int inSize = 0, outSize = 0;
  if (!(in >> tag >> inSize >> outSize) || tag != "TrinaryDense" ||
      inSize != layer.inputSize() || outSize != layer.outputSize()) {
    throw std::runtime_error("loadNetwork: TrinaryDense shape mismatch");
  }
  for (float& w : layer.hiddenWeights()) {
    if (!(in >> w)) throw std::runtime_error("loadNetwork: truncated weights");
  }
  for (float& b : layer.biases()) {
    if (!(in >> b)) throw std::runtime_error("loadNetwork: truncated biases");
  }
}

}  // namespace

void saveNetwork(const nn::Sequential& net, std::ostream& out) {
  out.precision(9);  // float max_digits10: exact decimal round trip
  out << "pcnn-eedn-v1 " << net.layerCount() << '\n';
  for (std::size_t i = 0; i < net.layerCount(); ++i) {
    const nn::Layer& layer = net.layer(i);
    if (const auto* td = dynamic_cast<const TrinaryDense*>(&layer)) {
      saveTrinary(*td, out);
    } else if (const auto* pd =
                   dynamic_cast<const PartitionedDense*>(&layer)) {
      out << "PartitionedDense " << pd->groupCount() << '\n';
      for (int g = 0; g < pd->groupCount(); ++g) {
        saveTrinary(*pd->group(g).layer, out);
      }
    } else if (const auto* spike =
                   dynamic_cast<const SpikingThreshold*>(&layer)) {
      out << "SpikingThreshold " << spike->inputSize() << ' '
          << spike->steWidth() << '\n';
    } else {
      throw std::invalid_argument(
          "saveNetwork: unsupported layer type in Eedn network");
    }
  }
  if (!out) throw std::runtime_error("saveNetwork: write failure");
}

void loadNetwork(nn::Sequential& net, std::istream& in) {
  std::string magic;
  std::size_t layerCount = 0;
  if (!(in >> magic >> layerCount) || magic != "pcnn-eedn-v1" ||
      layerCount != net.layerCount()) {
    throw std::runtime_error("loadNetwork: bad header or layer count");
  }
  for (std::size_t i = 0; i < net.layerCount(); ++i) {
    nn::Layer& layer = net.layer(i);
    if (auto* td = dynamic_cast<TrinaryDense*>(&layer)) {
      loadTrinary(*td, in);
    } else if (auto* pd = dynamic_cast<PartitionedDense*>(&layer)) {
      std::string tag;
      int groups = 0;
      if (!(in >> tag >> groups) || tag != "PartitionedDense" ||
          groups != pd->groupCount()) {
        throw std::runtime_error("loadNetwork: PartitionedDense mismatch");
      }
      for (int g = 0; g < groups; ++g) {
        loadTrinary(pd->mutableGroupLayer(g), in);
      }
    } else if (dynamic_cast<SpikingThreshold*>(&layer) != nullptr) {
      std::string tag;
      int size = 0;
      float width = 0.0f;
      if (!(in >> tag >> size >> width) || tag != "SpikingThreshold" ||
          size != layer.inputSize()) {
        throw std::runtime_error("loadNetwork: SpikingThreshold mismatch");
      }
    } else {
      throw std::invalid_argument(
          "loadNetwork: unsupported layer type in Eedn network");
    }
  }
}

void saveNetworkFile(const nn::Sequential& net, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("saveNetworkFile: cannot open " + path);
  saveNetwork(net, out);
}

void loadNetworkFile(nn::Sequential& net, const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("loadNetworkFile: cannot open " + path);
  loadNetwork(net, in);
}

}  // namespace pcnn::eedn
