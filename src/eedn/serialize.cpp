#include "eedn/serialize.hpp"

#include <cmath>
#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "eedn/partitioned.hpp"
#include "eedn/trinary.hpp"

namespace pcnn::eedn {
namespace {

void saveTrinary(const TrinaryDense& layer, std::ostream& out) {
  out << "TrinaryDense " << layer.inputSize() << ' ' << layer.outputSize()
      << '\n';
  for (float w : layer.hiddenWeights()) out << w << ' ';
  out << '\n';
  for (float b : layer.biases()) out << b << ' ';
  out << '\n';
}

Status loadTrinary(TrinaryDense& layer, std::istream& in) {
  std::string tag;
  int inSize = 0, outSize = 0;
  if (!(in >> tag >> inSize >> outSize) || tag != "TrinaryDense" ||
      inSize != layer.inputSize() || outSize != layer.outputSize()) {
    return Status::DataLoss("loadNetwork: TrinaryDense shape mismatch");
  }
  for (float& w : layer.hiddenWeights()) {
    if (!(in >> w)) {
      return Status::DataLoss("loadNetwork: truncated weights");
    }
    if (!std::isfinite(w)) {
      return Status::OutOfRange("loadNetwork: non-finite weight");
    }
  }
  for (float& b : layer.biases()) {
    if (!(in >> b)) {
      return Status::DataLoss("loadNetwork: truncated biases");
    }
    if (!std::isfinite(b)) {
      return Status::OutOfRange("loadNetwork: non-finite bias");
    }
  }
  return Status::Ok();
}

}  // namespace

void saveNetwork(const nn::Sequential& net, std::ostream& out) {
  out.precision(9);  // float max_digits10: exact decimal round trip
  out << "pcnn-eedn-v1 " << net.layerCount() << '\n';
  for (std::size_t i = 0; i < net.layerCount(); ++i) {
    const nn::Layer& layer = net.layer(i);
    if (const auto* td = dynamic_cast<const TrinaryDense*>(&layer)) {
      saveTrinary(*td, out);
    } else if (const auto* pd =
                   dynamic_cast<const PartitionedDense*>(&layer)) {
      out << "PartitionedDense " << pd->groupCount() << '\n';
      for (int g = 0; g < pd->groupCount(); ++g) {
        saveTrinary(*pd->group(g).layer, out);
      }
    } else if (const auto* spike =
                   dynamic_cast<const SpikingThreshold*>(&layer)) {
      out << "SpikingThreshold " << spike->inputSize() << ' '
          << spike->steWidth() << '\n';
    } else {
      throw std::invalid_argument(
          "saveNetwork: unsupported layer type in Eedn network");
    }
  }
  if (!out) throw std::runtime_error("saveNetwork: write failure");
}

Status tryLoadNetwork(nn::Sequential& net, std::istream& in) {
  std::string magic;
  std::size_t layerCount = 0;
  if (!(in >> magic >> layerCount) || magic != "pcnn-eedn-v1" ||
      layerCount != net.layerCount()) {
    return Status::DataLoss("loadNetwork: bad header or layer count");
  }
  for (std::size_t i = 0; i < net.layerCount(); ++i) {
    nn::Layer& layer = net.layer(i);
    if (auto* td = dynamic_cast<TrinaryDense*>(&layer)) {
      if (Status status = loadTrinary(*td, in); !status.ok()) return status;
    } else if (auto* pd = dynamic_cast<PartitionedDense*>(&layer)) {
      std::string tag;
      int groups = 0;
      if (!(in >> tag >> groups) || tag != "PartitionedDense" ||
          groups != pd->groupCount()) {
        return Status::DataLoss("loadNetwork: PartitionedDense mismatch");
      }
      for (int g = 0; g < groups; ++g) {
        if (Status status = loadTrinary(pd->mutableGroupLayer(g), in);
            !status.ok()) {
          return status;
        }
      }
    } else if (dynamic_cast<SpikingThreshold*>(&layer) != nullptr) {
      std::string tag;
      int size = 0;
      float width = 0.0f;
      if (!(in >> tag >> size >> width) || tag != "SpikingThreshold" ||
          size != layer.inputSize()) {
        return Status::DataLoss("loadNetwork: SpikingThreshold mismatch");
      }
    } else {
      return Status::InvalidArgument(
          "loadNetwork: unsupported layer type in Eedn network");
    }
  }
  return Status::Ok();
}

void loadNetwork(nn::Sequential& net, std::istream& in) {
  if (Status status = tryLoadNetwork(net, in); !status.ok()) {
    throw std::runtime_error(status.toString());
  }
}

void saveNetworkFile(const nn::Sequential& net, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("saveNetworkFile: cannot open " + path);
  saveNetwork(net, out);
}

Status tryLoadNetworkFile(nn::Sequential& net, const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::Unavailable("loadNetworkFile: cannot open " + path);
  }
  return tryLoadNetwork(net, in);
}

void loadNetworkFile(nn::Sequential& net, const std::string& path) {
  if (Status status = tryLoadNetworkFile(net, path); !status.ok()) {
    throw std::runtime_error(status.toString());
  }
}

}  // namespace pcnn::eedn
