#include "eedn/compiled.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/parallel.hpp"
#include "common/target_clones.hpp"
#include "eedn/partitioned.hpp"
#include "eedn/trinary.hpp"

namespace pcnn::eedn {
namespace {

/// Contiguous column-slice kernels; +=/-= per lane, so both clones
/// auto-vectorize. Adding in ascending input order per output row keeps
/// the float sequence identical to the scalar layer.
PCNN_TARGET_CLONES
void addRow(float* out, const float* in, int n) {
  for (int s = 0; s < n; ++s) out[s] += in[s];
}

PCNN_TARGET_CLONES
void subRow(float* out, const float* in, int n) {
  for (int s = 0; s < n; ++s) out[s] -= in[s];
}

PCNN_TARGET_CLONES
void thresholdRow(float* row, int n) {
  for (int s = 0; s < n; ++s) row[s] = row[s] >= 0.0f ? 1.0f : 0.0f;
}

}  // namespace

CompiledTrinaryNet::CompiledTrinaryNet(const nn::Sequential& net) {
  auto compileBank = [](const TrinaryDense& layer, int inputOffset,
                        int outputOffset) {
    DenseGroup group;
    group.inputOffset = inputOffset;
    group.inputSize = layer.inputSize();
    group.outputOffset = outputOffset;
    group.outputSize = layer.outputSize();
    group.weights.resize(static_cast<std::size_t>(group.outputSize) *
                         group.inputSize);
    group.biases.resize(static_cast<std::size_t>(group.outputSize));
    for (int j = 0; j < group.outputSize; ++j) {
      for (int i = 0; i < group.inputSize; ++i) {
        group.weights[static_cast<std::size_t>(j) * group.inputSize + i] =
            static_cast<std::int8_t>(layer.effectiveWeight(j, i));
      }
      group.biases[static_cast<std::size_t>(j)] = layer.bias(j);
    }
    return group;
  };

  for (std::size_t l = 0; l < net.layerCount(); ++l) {
    const nn::Layer& layer = net.layer(l);
    if (const auto* dense = dynamic_cast<const TrinaryDense*>(&layer)) {
      Stage stage;
      stage.inputSize = dense->inputSize();
      stage.outputSize = dense->outputSize();
      stage.groups.push_back(compileBank(*dense, 0, 0));
      stages_.push_back(std::move(stage));
    } else if (const auto* part =
                   dynamic_cast<const PartitionedDense*>(&layer)) {
      Stage stage;
      stage.inputSize = part->inputSize();
      stage.outputSize = part->outputSize();
      for (int g = 0; g < part->groupCount(); ++g) {
        const PartitionedDense::GroupView view = part->group(g);
        stage.groups.push_back(compileBank(*view.layer, view.inputOffset,
                                           g * part->outputsPerGroup()));
      }
      stages_.push_back(std::move(stage));
    } else if (dynamic_cast<const SpikingThreshold*>(&layer) != nullptr) {
      if (stages_.empty() || stages_.back().thresholdAfter) {
        throw std::invalid_argument(
            "CompiledTrinaryNet: SpikingThreshold must follow a dense stage");
      }
      stages_.back().thresholdAfter = true;
    } else {
      throw std::invalid_argument(
          "CompiledTrinaryNet: unsupported layer type");
    }
  }
  if (stages_.empty()) {
    throw std::invalid_argument("CompiledTrinaryNet: empty network");
  }
  inputSize_ = stages_.front().inputSize;
  outputSize_ = stages_.back().outputSize;
  for (const Stage& stage : stages_) {
    maxWidth_ = std::max(maxWidth_, std::max(stage.inputSize,
                                             stage.outputSize));
  }
}

std::vector<float> CompiledTrinaryNet::forwardBatch(
    const std::vector<float>& input, int count) const {
  if (count < 0 ||
      input.size() != static_cast<std::size_t>(inputSize_) * count) {
    throw std::invalid_argument(
        "CompiledTrinaryNet::forwardBatch: input plane size mismatch");
  }
  std::vector<float> output(static_cast<std::size_t>(outputSize_) * count);
  if (count == 0) return output;

  // Ping-pong scratch planes shared by all chunks: every chunk reads and
  // writes only its own column range [lo, hi), so the split is race-free
  // and the per-column results do not depend on the chunking.
  std::vector<float> bufferA(static_cast<std::size_t>(maxWidth_) * count);
  std::vector<float> bufferB(static_cast<std::size_t>(maxWidth_) * count);

  parallelForChunked(
      0, count, suggestedGrain(count), [&](long lo64, long hi64) {
        const int lo = static_cast<int>(lo64);
        const int width = static_cast<int>(hi64 - lo64);
        const float* src = input.data();
        for (std::size_t s = 0; s < stages_.size(); ++s) {
          const Stage& stage = stages_[s];
          float* dst = s + 1 == stages_.size() ? output.data()
                       : s % 2 == 0           ? bufferA.data()
                                              : bufferB.data();
          for (const DenseGroup& group : stage.groups) {
            for (int j = 0; j < group.outputSize; ++j) {
              float* row =
                  dst +
                  static_cast<std::size_t>(group.outputOffset + j) * count +
                  lo;
              std::fill(row, row + width,
                        group.biases[static_cast<std::size_t>(j)]);
              const std::int8_t* weights =
                  group.weights.data() +
                  static_cast<std::size_t>(j) * group.inputSize;
              for (int i = 0; i < group.inputSize; ++i) {
                const int w = weights[i];
                if (w == 0) continue;
                const float* inRow =
                    src +
                    static_cast<std::size_t>(group.inputOffset + i) * count +
                    lo;
                if (w > 0) {
                  addRow(row, inRow, width);
                } else {
                  subRow(row, inRow, width);
                }
              }
            }
          }
          if (stage.thresholdAfter) {
            for (int r = 0; r < stage.outputSize; ++r) {
              thresholdRow(dst + static_cast<std::size_t>(r) * count + lo,
                           width);
            }
          }
          src = dst;
        }
      });
  return output;
}

}  // namespace pcnn::eedn
