#pragma once

#include <iosfwd>
#include <string>

#include "nn/sequential.hpp"

namespace pcnn::eedn {

/// Text serialization of trained Eedn networks (TrinaryDense,
/// PartitionedDense, and SpikingThreshold layers).
///
/// Format: one line per layer header, whitespace-separated numbers for
/// parameters. The *structure* is not serialized -- loading requires a
/// network built with the same configuration (the usual
/// construct-then-load pattern); mismatched shapes throw
/// std::runtime_error. Hidden (float) weights are stored so that training
/// can resume after a round trip, not just the trinarized deployment
/// values.
void saveNetwork(const nn::Sequential& net, std::ostream& out);
void loadNetwork(nn::Sequential& net, std::istream& in);

/// Convenience file wrappers; throw std::runtime_error on I/O failure.
void saveNetworkFile(const nn::Sequential& net, const std::string& path);
void loadNetworkFile(nn::Sequential& net, const std::string& path);

}  // namespace pcnn::eedn
