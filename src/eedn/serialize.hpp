#pragma once

#include <iosfwd>
#include <string>

#include "common/status.hpp"
#include "nn/sequential.hpp"

namespace pcnn::eedn {

/// Serialization of trained Eedn networks (TrinaryDense,
/// PartitionedDense, and SpikingThreshold layers).
///
/// The *structure* is not serialized -- loading requires a network built
/// with the same configuration (the usual construct-then-load pattern).
/// Hidden (float) weights are stored so that training can resume after a
/// round trip, not just the trinarized deployment values.
///
/// The current wire format ("PEDN" v2) is a chunked binary container over
/// the shared io::Writer/io::Reader layer -- one chunk per layer,
/// bitwise-exact float round trips. The v1 whitespace-text format
/// ("pcnn-eedn-v1") is still read (the loader sniffs the magic) but no
/// longer written.

/// Status-returning save: kInvalidArgument for an unsupported layer type,
/// kDataLoss on write failure.
Status trySaveNetwork(const nn::Sequential& net, std::ostream& out);
Status trySaveNetworkFile(const nn::Sequential& net, const std::string& path);

/// Bounds-checked load into a pre-built network: every layer tag, shape
/// and group count is validated against the target structure, truncation
/// yields kDataLoss and a non-finite stored weight yields kOutOfRange.
/// On failure the network may be partially overwritten (layers parsed
/// before the error keep the loaded values) -- reload or rebuild before
/// using it.
Status tryLoadNetwork(nn::Sequential& net, std::istream& in);
Status tryLoadNetworkFile(nn::Sequential& net, const std::string& path);

/// Legacy throwing wrappers over the try* variants. The save forms throw
/// std::invalid_argument for an unsupported layer type and
/// std::runtime_error on write failure; the load forms throw
/// std::runtime_error carrying the status text.
void saveNetwork(const nn::Sequential& net, std::ostream& out);
void saveNetworkFile(const nn::Sequential& net, const std::string& path);
[[deprecated("use tryLoadNetwork")]] void loadNetwork(nn::Sequential& net,
                                                      std::istream& in);
[[deprecated("use tryLoadNetworkFile")]] void loadNetworkFile(
    nn::Sequential& net, const std::string& path);

}  // namespace pcnn::eedn
