#pragma once

#include <iosfwd>
#include <string>

#include "common/status.hpp"
#include "nn/sequential.hpp"

namespace pcnn::eedn {

/// Text serialization of trained Eedn networks (TrinaryDense,
/// PartitionedDense, and SpikingThreshold layers).
///
/// Format: one line per layer header, whitespace-separated numbers for
/// parameters. The *structure* is not serialized -- loading requires a
/// network built with the same configuration (the usual
/// construct-then-load pattern); mismatched shapes throw
/// std::runtime_error. Hidden (float) weights are stored so that training
/// can resume after a round trip, not just the trinarized deployment
/// values.
void saveNetwork(const nn::Sequential& net, std::ostream& out);

/// Bounds-checked load into a pre-built network: every layer tag, shape
/// and group count is validated against the target structure, truncation
/// yields kDataLoss and a non-finite stored weight yields kOutOfRange.
/// On failure the network may be partially overwritten (layers parsed
/// before the error keep the loaded values) -- reload or rebuild before
/// using it.
Status tryLoadNetwork(nn::Sequential& net, std::istream& in);

/// Legacy wrapper over tryLoadNetwork; throws std::runtime_error carrying
/// the status text on any failure.
void loadNetwork(nn::Sequential& net, std::istream& in);

/// Convenience file wrappers. tryLoadNetworkFile reports an unopenable
/// path as kUnavailable; the legacy forms throw std::runtime_error.
void saveNetworkFile(const nn::Sequential& net, const std::string& path);
Status tryLoadNetworkFile(nn::Sequential& net, const std::string& path);
void loadNetworkFile(nn::Sequential& net, const std::string& path);

}  // namespace pcnn::eedn
