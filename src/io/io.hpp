#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "common/status.hpp"

namespace pcnn::io {

/// Shared binary serialization substrate for every persisted artifact
/// (TN model files, Eedn networks, SVM hyperplanes, deployment bundles).
///
/// Wire shape: a 4-byte magic + u32 version header, then a sequence of
/// length-prefixed chunks (4-byte tag, u64 payload length, payload).
/// Integers are little-endian fixed-width; floats are their IEEE-754 bit
/// patterns, so numeric round trips are bitwise. Readers never trust a
/// declared length: chunk and string sizes are capped before any
/// allocation, truncation is kDataLoss, an implausible size is
/// kOutOfRange. Writers carry the same Status contract as readers --
/// a failed write poisons the Writer instead of throwing, so save paths
/// can return typed errors (the PR-5 load-side pattern, now symmetric).

/// Largest payload a single chunk may declare. A corrupt length field
/// must fail before it drives an allocation.
constexpr std::uint64_t kMaxChunkBytes = std::uint64_t{1} << 30;

/// Largest length-prefixed string (tags, manifest keys/values, names).
constexpr std::uint32_t kMaxStringBytes = std::uint32_t{1} << 20;

/// Binary writer over an ostream with a sticky Status: the first failed
/// write latches the error and every later call becomes a no-op returning
/// it, so a save routine checks once at the end.
class Writer {
 public:
  explicit Writer(std::ostream& out);

  /// 4-byte magic + u32 format version.
  Status header(const char (&magic)[5], std::uint32_t version);

  Status u8(std::uint8_t v);
  Status u32(std::uint32_t v);
  Status u64(std::uint64_t v);
  Status i32(std::int32_t v);
  Status f32(float v);
  Status f64(double v);
  Status bytes(const void* data, std::size_t n);
  /// u32 length + raw bytes; rejects strings over kMaxStringBytes.
  Status str(const std::string& s);
  /// One length-prefixed chunk: 4-byte tag, u64 size, payload.
  Status chunk(const char (&tag)[5], const std::string& payload);

  const Status& status() const { return status_; }

 private:
  Status put(const void* data, std::size_t n);
  std::ostream& out_;
  Status status_;
};

/// Bounds-checked binary reader over an istream, sticky-Status like
/// Writer. All multi-byte reads validate stream health; the chunk
/// iterator distinguishes clean end-of-stream from a torn chunk header.
class Reader {
 public:
  explicit Reader(std::istream& in);

  /// Validates the 4-byte magic and reads the version, which must be in
  /// 1..maxVersion (a newer file than this binary understands is
  /// kOutOfRange, a wrong magic kDataLoss).
  Status header(const char (&magic)[5], std::uint32_t maxVersion,
                std::uint32_t* version = nullptr);

  Status u8(std::uint8_t& v);
  Status u32(std::uint32_t& v);
  Status u64(std::uint64_t& v);
  Status i32(std::int32_t& v);
  Status f32(float& v);
  Status f64(double& v);
  Status bytes(void* data, std::size_t n);
  Status str(std::string& s, std::uint32_t maxBytes = kMaxStringBytes);

  /// One chunk read by nextChunk. Payloads are capped by kMaxChunkBytes.
  struct Chunk {
    std::string tag;      ///< 4 characters
    std::string payload;  ///< raw bytes; parse with a nested Reader
  };

  /// Reads the next chunk. Clean end of stream sets `end` and returns OK;
  /// a partial chunk header or short payload is kDataLoss, an oversized
  /// declared length kOutOfRange.
  Status nextChunk(Chunk& chunk, bool& end);

  const Status& status() const { return status_; }

 private:
  Status get(void* data, std::size_t n);
  std::istream& in_;
  Status status_;
};

/// Peeks the first four bytes of a seekable stream (model-format
/// sniffing: the v2 binary formats are dispatched from the v1 text
/// parsers by magic). The stream is restored to its starting position;
/// returns an empty string when fewer than four bytes are available.
std::string peekMagic(std::istream& in);

/// FNV-1a 64 over a byte string; the bundle content hash.
std::uint64_t fnv1a64(const std::string& data,
                      std::uint64_t seed = 0xcbf29ce484222325ull);

/// 16-hex-digit rendering of a hash.
std::string hashHex(std::uint64_t hash);

}  // namespace pcnn::io
