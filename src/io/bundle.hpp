#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "io/io.hpp"

namespace pcnn::io {

/// Well-known bundle chunk names. A bundle may carry any subset (plus
/// chunks this build has never heard of -- loaders keep them, consumers
/// ignore what they do not recognize, so bundles are forward-extensible).
namespace chunks {
inline constexpr const char* kExtractorState = "extractor_state";
inline constexpr const char* kEednNetwork = "eedn_network";
inline constexpr const char* kSvmModel = "svm_model";
inline constexpr const char* kTnModel = "tn_model";
}  // namespace chunks

/// Well-known manifest keys.
namespace keys {
inline constexpr const char* kFormat = "format";      ///< "pcnn-bundle"
inline constexpr const char* kSpec = "spec";          ///< "parrot:4spike"
inline constexpr const char* kLayout = "layout";      ///< layoutName()
inline constexpr const char* kWindowCellsX = "window_cells_x";
inline constexpr const char* kWindowCellsY = "window_cells_y";
inline constexpr const char* kSeed = "seed";          ///< extractor RNG seed
inline constexpr const char* kGitSha = "git_sha";
inline constexpr const char* kContentHash = "content_hash";
}  // namespace keys

/// The deployment manifest: ordered string key/value pairs describing how
/// to reconstruct the pipeline the bundle's chunks belong to (extractor
/// spec + options, classifier config, provenance). Ordered so the
/// serialized form -- and anything hashed over it -- is deterministic.
class Manifest {
 public:
  void set(const std::string& key, const std::string& value) {
    fields_[key] = value;
  }
  /// nullptr when absent.
  const std::string* find(const std::string& key) const;
  /// Value or fallback when absent.
  std::string get(const std::string& key,
                  const std::string& fallback = "") const;
  /// Typed accessors; kDataLoss when absent, kOutOfRange when unparsable.
  StatusOr<long> getInt(const std::string& key) const;
  StatusOr<double> getFloat(const std::string& key) const;

  const std::map<std::string, std::string>& fields() const { return fields_; }

 private:
  std::map<std::string, std::string> fields_;
};

/// One versioned container for everything a trained deployment needs: the
/// manifest plus named binary chunks (SVM weights, Eedn network, compiled
/// TN model, extractor state). The serving layer, benches and examples
/// reload a co-trained pipeline from one file by name instead of
/// re-running stage A/B training.
///
/// Wire format (all via io::Writer -- magic "PCNB", version 1):
///   header | MANF chunk (u32 count, (str key, str value)*)
///          | BLOB chunk per named chunk (str name, u64 size, bytes),
///            sorted by name so equal content serializes identically.
/// Unknown top-level chunk tags are skipped on load (forward compat);
/// unknown BLOB names are kept and reachable via chunk().
class Bundle {
 public:
  Manifest& manifest() { return manifest_; }
  const Manifest& manifest() const { return manifest_; }

  void setChunk(const std::string& name, std::string payload);
  /// nullptr when the bundle has no chunk of that name.
  const std::string* chunk(const std::string& name) const;
  bool hasChunk(const std::string& name) const;
  std::vector<std::string> chunkNames() const;

  /// FNV-1a 64 (hex) over the sorted (name, payload) chunk sequence --
  /// the identity of the trained artifact, independent of manifest
  /// cosmetics. Stamped into the manifest as keys::kContentHash on save.
  std::string contentHash() const;

  /// OK when the manifest's recorded content hash matches the chunks
  /// actually present (kDataLoss on mismatch, kFailedPrecondition when
  /// the manifest has no recorded hash to check against).
  Status verifyContentHash() const;

  Status trySave(std::ostream& out) const;
  Status trySaveFile(const std::string& path) const;
  static StatusOr<Bundle> tryLoad(std::istream& in);
  static StatusOr<Bundle> tryLoadFile(const std::string& path);

  /// Reads only the header + manifest of a bundle file -- cheap enough
  /// for every bench to stamp bundle provenance without inflating the
  /// chunks (the manifest is always the first chunk).
  static StatusOr<Manifest> tryLoadManifestFile(const std::string& path);

 private:
  Manifest manifest_;
  std::map<std::string, std::string> chunks_;
};

}  // namespace pcnn::io
