#include "io/bundle.hpp"

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <utility>

namespace pcnn::io {

namespace {

constexpr char kBundleMagic[5] = "PCNB";
constexpr std::uint32_t kBundleVersion = 1;

/// The manifest may not bloat without bound; chunk payloads carry the
/// heavy data.
constexpr std::uint32_t kMaxManifestEntries = 4096;

std::string packManifest(const Manifest& manifest) {
  std::ostringstream buffer;
  Writer w(buffer);
  w.u32(static_cast<std::uint32_t>(manifest.fields().size()));
  for (const auto& [key, value] : manifest.fields()) {
    w.str(key);
    w.str(value);
  }
  return buffer.str();
}

Status unpackManifest(const std::string& payload, Manifest& manifest) {
  std::istringstream buffer(payload);
  Reader r(buffer);
  std::uint32_t count = 0;
  if (!r.u32(count).ok()) return r.status();
  if (count > kMaxManifestEntries) {
    return Status::OutOfRange("Bundle: manifest declares " +
                              std::to_string(count) + " entries, over the " +
                              std::to_string(kMaxManifestEntries) + " limit");
  }
  for (std::uint32_t i = 0; i < count; ++i) {
    std::string key, value;
    if (!r.str(key).ok() || !r.str(value).ok()) return r.status();
    manifest.set(key, value);
  }
  return Status::Ok();
}

}  // namespace

const std::string* Manifest::find(const std::string& key) const {
  const auto it = fields_.find(key);
  return it == fields_.end() ? nullptr : &it->second;
}

std::string Manifest::get(const std::string& key,
                          const std::string& fallback) const {
  const std::string* value = find(key);
  return value != nullptr ? *value : fallback;
}

StatusOr<long> Manifest::getInt(const std::string& key) const {
  const std::string* value = find(key);
  if (value == nullptr) {
    return Status::DataLoss("Bundle: manifest missing \"" + key + "\"");
  }
  char* end = nullptr;
  const long parsed = std::strtol(value->c_str(), &end, 10);
  if (end == value->c_str() || *end != '\0') {
    return Status::OutOfRange("Bundle: manifest \"" + key + "\" = \"" +
                              *value + "\" is not an integer");
  }
  return parsed;
}

StatusOr<double> Manifest::getFloat(const std::string& key) const {
  const std::string* value = find(key);
  if (value == nullptr) {
    return Status::DataLoss("Bundle: manifest missing \"" + key + "\"");
  }
  char* end = nullptr;
  const double parsed = std::strtod(value->c_str(), &end);
  if (end == value->c_str() || *end != '\0') {
    return Status::OutOfRange("Bundle: manifest \"" + key + "\" = \"" +
                              *value + "\" is not a number");
  }
  return parsed;
}

void Bundle::setChunk(const std::string& name, std::string payload) {
  chunks_[name] = std::move(payload);
}

const std::string* Bundle::chunk(const std::string& name) const {
  const auto it = chunks_.find(name);
  return it == chunks_.end() ? nullptr : &it->second;
}

bool Bundle::hasChunk(const std::string& name) const {
  return chunks_.count(name) > 0;
}

std::vector<std::string> Bundle::chunkNames() const {
  std::vector<std::string> names;
  names.reserve(chunks_.size());
  for (const auto& [name, payload] : chunks_) names.push_back(name);
  return names;
}

std::string Bundle::contentHash() const {
  std::uint64_t hash = fnv1a64("pcnn-bundle-content");
  for (const auto& [name, payload] : chunks_) {
    hash = fnv1a64(name, hash);
    hash = fnv1a64(payload, hash);
  }
  return hashHex(hash);
}

Status Bundle::verifyContentHash() const {
  const std::string* recorded = manifest_.find(keys::kContentHash);
  if (recorded == nullptr) {
    return Status::FailedPrecondition(
        "Bundle: manifest records no content hash");
  }
  const std::string actual = contentHash();
  if (*recorded != actual) {
    return Status::DataLoss("Bundle: content hash mismatch (manifest " +
                            *recorded + ", chunks " + actual + ")");
  }
  return Status::Ok();
}

Status Bundle::trySave(std::ostream& out) const {
  // The manifest written to disk always records the identity of the
  // chunks it travels with; the in-memory bundle stays untouched.
  Manifest stamped = manifest_;
  stamped.set(keys::kFormat, "pcnn-bundle");
  stamped.set(keys::kContentHash, contentHash());

  Writer w(out);
  w.header(kBundleMagic, kBundleVersion);
  w.chunk("MANF", packManifest(stamped));
  for (const auto& [name, payload] : chunks_) {
    std::ostringstream blob;
    Writer bw(blob);
    bw.str(name);
    bw.u64(payload.size());
    bw.bytes(payload.data(), payload.size());
    if (!bw.status().ok()) return bw.status();
    w.chunk("BLOB", blob.str());
  }
  return w.status();
}

Status Bundle::trySaveFile(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::Unavailable("Bundle: cannot open " + path);
  Status status = trySave(out);
  if (status.ok() && !out.flush()) {
    status = Status::DataLoss("Bundle: write failure on " + path);
  }
  return status;
}

StatusOr<Bundle> Bundle::tryLoad(std::istream& in) {
  Reader r(in);
  if (!r.header(kBundleMagic, kBundleVersion).ok()) return r.status();
  Bundle bundle;
  bool sawManifest = false;
  for (;;) {
    Reader::Chunk chunk;
    bool end = false;
    if (!r.nextChunk(chunk, end).ok()) return r.status();
    if (end) break;
    if (chunk.tag == "MANF") {
      if (Status status = unpackManifest(chunk.payload, bundle.manifest_);
          !status.ok()) {
        return status;
      }
      sawManifest = true;
    } else if (chunk.tag == "BLOB") {
      std::istringstream blob(chunk.payload);
      Reader br(blob);
      std::string name;
      std::uint64_t size = 0;
      if (!br.str(name).ok() || !br.u64(size).ok()) return br.status();
      if (size > kMaxChunkBytes ||
          size > chunk.payload.size()) {  // cannot exceed its container
        return Status::OutOfRange("Bundle: chunk \"" + name + "\" declares " +
                                  std::to_string(size) + " bytes");
      }
      std::string payload(static_cast<std::size_t>(size), '\0');
      if (!br.bytes(payload.data(), payload.size()).ok()) return br.status();
      bundle.chunks_[name] = std::move(payload);
    }
    // Unknown tags: a newer writer's extension; skipped by construction
    // (the chunk length already moved the stream past the payload).
  }
  if (!sawManifest) {
    return Status::DataLoss("Bundle: no manifest chunk");
  }
  return bundle;
}

StatusOr<Bundle> Bundle::tryLoadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::Unavailable("Bundle: cannot open " + path);
  return tryLoad(in);
}

StatusOr<Manifest> Bundle::tryLoadManifestFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::Unavailable("Bundle: cannot open " + path);
  Reader r(in);
  if (!r.header(kBundleMagic, kBundleVersion).ok()) return r.status();
  for (;;) {
    Reader::Chunk chunk;
    bool end = false;
    if (!r.nextChunk(chunk, end).ok()) return r.status();
    if (end) break;
    if (chunk.tag == "MANF") {
      Manifest manifest;
      if (Status status = unpackManifest(chunk.payload, manifest);
          !status.ok()) {
        return status;
      }
      return manifest;
    }
  }
  return Status::DataLoss("Bundle: no manifest chunk");
}

}  // namespace pcnn::io
