#include "io/io.hpp"

#include <cstring>
#include <istream>
#include <ostream>

namespace pcnn::io {

namespace {

void encodeLe(std::uint64_t v, unsigned char* out, int n) {
  for (int i = 0; i < n; ++i) {
    out[i] = static_cast<unsigned char>(v >> (8 * i));
  }
}

std::uint64_t decodeLe(const unsigned char* in, int n) {
  std::uint64_t v = 0;
  for (int i = 0; i < n; ++i) {
    v |= static_cast<std::uint64_t>(in[i]) << (8 * i);
  }
  return v;
}

}  // namespace

Writer::Writer(std::ostream& out) : out_(out) {}

Status Writer::put(const void* data, std::size_t n) {
  if (!status_.ok()) return status_;
  out_.write(static_cast<const char*>(data),
             static_cast<std::streamsize>(n));
  if (!out_) status_ = Status::DataLoss("io::Writer: write failure");
  return status_;
}

Status Writer::header(const char (&magic)[5], std::uint32_t version) {
  put(magic, 4);
  return u32(version);
}

Status Writer::u8(std::uint8_t v) { return put(&v, 1); }

Status Writer::u32(std::uint32_t v) {
  unsigned char buf[4];
  encodeLe(v, buf, 4);
  return put(buf, 4);
}

Status Writer::u64(std::uint64_t v) {
  unsigned char buf[8];
  encodeLe(v, buf, 8);
  return put(buf, 8);
}

Status Writer::i32(std::int32_t v) {
  return u32(static_cast<std::uint32_t>(v));
}

Status Writer::f32(float v) {
  std::uint32_t bits = 0;
  std::memcpy(&bits, &v, 4);
  return u32(bits);
}

Status Writer::f64(double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, 8);
  return u64(bits);
}

Status Writer::bytes(const void* data, std::size_t n) {
  return put(data, n);
}

Status Writer::str(const std::string& s) {
  if (!status_.ok()) return status_;
  if (s.size() > kMaxStringBytes) {
    status_ = Status::OutOfRange("io::Writer: string of " +
                                 std::to_string(s.size()) +
                                 " bytes exceeds the limit");
    return status_;
  }
  u32(static_cast<std::uint32_t>(s.size()));
  return put(s.data(), s.size());
}

Status Writer::chunk(const char (&tag)[5], const std::string& payload) {
  if (!status_.ok()) return status_;
  if (payload.size() > kMaxChunkBytes) {
    status_ = Status::OutOfRange("io::Writer: chunk " + std::string(tag) +
                                 " of " + std::to_string(payload.size()) +
                                 " bytes exceeds the limit");
    return status_;
  }
  put(tag, 4);
  u64(payload.size());
  return put(payload.data(), payload.size());
}

Reader::Reader(std::istream& in) : in_(in) {}

Status Reader::get(void* data, std::size_t n) {
  if (!status_.ok()) return status_;
  in_.read(static_cast<char*>(data), static_cast<std::streamsize>(n));
  if (static_cast<std::size_t>(in_.gcount()) != n) {
    status_ = Status::DataLoss("io::Reader: truncated stream (wanted " +
                               std::to_string(n) + " bytes)");
  }
  return status_;
}

Status Reader::header(const char (&magic)[5], std::uint32_t maxVersion,
                      std::uint32_t* version) {
  char got[4] = {};
  if (!get(got, 4).ok()) return status_;
  if (std::memcmp(got, magic, 4) != 0) {
    status_ = Status::DataLoss(std::string("io::Reader: bad magic "
                                           "(expected ") +
                               magic + ")");
    return status_;
  }
  std::uint32_t v = 0;
  if (!u32(v).ok()) return status_;
  if (v < 1 || v > maxVersion) {
    status_ = Status::OutOfRange(std::string("io::Reader: ") + magic +
                                 " version " + std::to_string(v) +
                                 " outside 1.." + std::to_string(maxVersion));
    return status_;
  }
  if (version != nullptr) *version = v;
  return status_;
}

Status Reader::u8(std::uint8_t& v) { return get(&v, 1); }

Status Reader::u32(std::uint32_t& v) {
  unsigned char buf[4];
  if (!get(buf, 4).ok()) return status_;
  v = static_cast<std::uint32_t>(decodeLe(buf, 4));
  return status_;
}

Status Reader::u64(std::uint64_t& v) {
  unsigned char buf[8];
  if (!get(buf, 8).ok()) return status_;
  v = decodeLe(buf, 8);
  return status_;
}

Status Reader::i32(std::int32_t& v) {
  std::uint32_t raw = 0;
  if (!u32(raw).ok()) return status_;
  v = static_cast<std::int32_t>(raw);
  return status_;
}

Status Reader::f32(float& v) {
  std::uint32_t bits = 0;
  if (!u32(bits).ok()) return status_;
  std::memcpy(&v, &bits, 4);
  return status_;
}

Status Reader::f64(double& v) {
  std::uint64_t bits = 0;
  if (!u64(bits).ok()) return status_;
  std::memcpy(&v, &bits, 8);
  return status_;
}

Status Reader::bytes(void* data, std::size_t n) { return get(data, n); }

Status Reader::str(std::string& s, std::uint32_t maxBytes) {
  std::uint32_t size = 0;
  if (!u32(size).ok()) return status_;
  if (size > maxBytes) {
    status_ = Status::OutOfRange("io::Reader: string of " +
                                 std::to_string(size) +
                                 " bytes exceeds the limit of " +
                                 std::to_string(maxBytes));
    return status_;
  }
  s.resize(size);
  return get(s.data(), size);
}

Status Reader::nextChunk(Chunk& chunk, bool& end) {
  end = false;
  if (!status_.ok()) return status_;
  char tag[4];
  in_.read(tag, 4);
  const std::streamsize got = in_.gcount();
  if (got == 0 && in_.eof()) {
    end = true;  // clean end: the previous chunk was the last one
    return status_;
  }
  if (got != 4) {
    status_ = Status::DataLoss("io::Reader: torn chunk tag");
    return status_;
  }
  chunk.tag.assign(tag, 4);
  std::uint64_t size = 0;
  if (!u64(size).ok()) {
    status_ = Status::DataLoss("io::Reader: torn chunk header (" +
                               chunk.tag + ")");
    return status_;
  }
  if (size > kMaxChunkBytes) {
    status_ = Status::OutOfRange("io::Reader: chunk " + chunk.tag +
                                 " declares " + std::to_string(size) +
                                 " bytes, over the " +
                                 std::to_string(kMaxChunkBytes) +
                                 "-byte limit");
    return status_;
  }
  chunk.payload.resize(static_cast<std::size_t>(size));
  if (!get(chunk.payload.data(), chunk.payload.size()).ok()) {
    status_ = Status::DataLoss("io::Reader: chunk " + chunk.tag +
                               " truncated (declared " +
                               std::to_string(size) + " bytes)");
    return status_;
  }
  return status_;
}

std::string peekMagic(std::istream& in) {
  const std::istream::pos_type start = in.tellg();
  if (start == std::istream::pos_type(-1)) return {};
  char buf[4];
  in.read(buf, 4);
  const std::streamsize got = in.gcount();
  in.clear();
  in.seekg(start);
  if (got != 4) return {};
  return std::string(buf, 4);
}

std::uint64_t fnv1a64(const std::string& data, std::uint64_t seed) {
  std::uint64_t hash = seed;
  for (unsigned char c : data) {
    hash ^= c;
    hash *= 0x100000001b3ull;
  }
  return hash;
}

std::string hashHex(std::uint64_t hash) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[hash & 0xF];
    hash >>= 4;
  }
  return out;
}

}  // namespace pcnn::io
