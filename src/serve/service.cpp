#include "serve/service.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <utility>

#include "common/env.hpp"
#include "obs/flight.hpp"

namespace pcnn::serve {

namespace {

/// Registry instruments, resolved once. The service keeps its own
/// always-on ServiceStats; these mirrors exist so the streaming exporter
/// and flight recorder see the same story when PCNN_METRICS is on.
struct ServeMetrics {
  obs::Counter& admitted = obs::counter("serve.admitted");
  obs::Counter& rejected = obs::counter("serve.rejected");
  obs::Counter& expired = obs::counter("serve.expired");
  obs::Counter& degraded = obs::counter("serve.degraded");
  obs::Counter& completed = obs::counter("serve.completed");
  obs::Counter& transitions = obs::counter("serve.level.transitions");
  obs::Gauge& level = obs::gauge("serve.level");
  obs::Gauge& queueDepth = obs::gauge("serve.queue_depth");
  obs::LatencyHistogram& latencyUs = obs::histogram("serve.latency_us");
  obs::LatencyHistogram& queueUs = obs::histogram("serve.queue_us");
  obs::LatencyHistogram& detectUs = obs::histogram("serve.detect_us");
};

ServeMetrics& metrics() {
  static ServeMetrics m;
  return m;
}

/// Same bucketing as LatencyHistogram::record, for the service's local
/// (ungated) control window: bucket i holds [2^i, 2^(i+1)) us.
int latencyBucket(double us) {
  if (us < 0.0) us = 0.0;
  int bucket = 0;
  for (auto u = static_cast<unsigned long>(us); u > 1; u >>= 1) ++bucket;
  return std::min(bucket, obs::LatencyHistogram::kBuckets - 1);
}

int clampLevel(int level) {
  return std::clamp(level, 0, static_cast<int>(ServiceLevel::kReject));
}

}  // namespace

const char* serviceLevelName(ServiceLevel level) {
  switch (level) {
    case ServiceLevel::kFull: return "full";
    case ServiceLevel::kCoarse: return "coarse";
    case ServiceLevel::kFallback: return "fallback";
    case ServiceLevel::kReject: return "reject";
  }
  return "unknown";
}

int LoadController::onTick(std::size_t queueDepth, std::size_t queueCapacity,
                           double p99Us, double deadlineUs) {
  const double util =
      queueCapacity == 0
          ? 0.0
          : static_cast<double>(queueDepth) / static_cast<double>(queueCapacity);
  const bool latencySignal = deadlineUs > 0.0;
  const bool pressured =
      util > params_.degradeQueueFrac ||
      (latencySignal && p99Us > params_.degradeLatencyFrac * deadlineUs);
  // Calm is stricter than "not pressured": both signals must sit well
  // below their degrade thresholds, so the level cannot flap around a
  // single threshold.
  const bool calm =
      util < params_.recoverQueueFrac &&
      (!latencySignal || p99Us < params_.recoverLatencyFrac * deadlineUs);

  if (pressured) {
    calmTicks_ = 0;
    if (level_ < params_.maxLevel) ++level_;
  } else if (calm && level_ > 0) {
    if (++calmTicks_ >= params_.recoverHoldTicks) {
      --level_;
      calmTicks_ = 0;
    }
  } else {
    calmTicks_ = 0;
  }
  return level_;
}

DetectionService::DetectionService(
    const ServiceParams& params,
    std::shared_ptr<core::GridDetector> primary,
    std::shared_ptr<core::GridDetector> fallback)
    : params_(params),
      primary_(std::move(primary)),
      fallback_(std::move(fallback)),
      controller_(params.controller) {
  if (!primary_) {
    throw std::invalid_argument("DetectionService: primary detector is null");
  }
  if (params_.readEnv) {
    params_.queueCapacity = static_cast<std::size_t>(env::intValue(
        "PCNN_SERVE_QUEUE", static_cast<int>(params_.queueCapacity), 1,
        1 << 20));
    params_.deadlineMs = env::intValue(
        "PCNN_SERVE_DEADLINE_MS", static_cast<int>(params_.deadlineMs), 0,
        1 << 30);
  }
  if (params_.maxBatch < 1) params_.maxBatch = 1;
  if (params_.idleTickMs < 1) params_.idleTickMs = 1;
  metrics().level.set(0.0);
  worker_ = std::thread([this] { workerLoop(); });
}

DetectionService::~DetectionService() { stop(); }

StatusOr<std::future<Response>> DetectionService::submit(vision::Image frame,
                                                         double deadlineMs) {
  std::future<Response> future;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stop_) {
      return Status::Unavailable("serve: service stopped");
    }
    {
      std::lock_guard<std::mutex> statsLock(statsMutex_);
      if (stats_.level >= static_cast<int>(ServiceLevel::kReject)) {
        ++stats_.rejected;
        metrics().rejected.add();
        return Status::Unavailable(
            "serve: admission closed (degradation ladder at reject)");
      }
      if (queue_.size() >= params_.queueCapacity) {
        ++stats_.rejected;
        metrics().rejected.add();
        return Status::Unavailable("serve: admission queue full");
      }
      ++stats_.admitted;
      stats_.queueDepth = queue_.size() + 1;
    }
    double budgetMs = deadlineMs;
    if (budgetMs == 0.0) budgetMs = params_.deadlineMs;
    Pending pending;
    pending.frame = std::move(frame);
    pending.enqueueUs = obs::nowMicros();
    pending.deadlineUs =
        budgetMs > 0.0 ? pending.enqueueUs + budgetMs * 1000.0 : 0.0;
    future = pending.promise.get_future();
    queue_.push_back(std::move(pending));
    metrics().admitted.add();
    metrics().queueDepth.set(static_cast<double>(queue_.size()));
  }
  cv_.notify_all();
  return future;
}

Response DetectionService::detectNow(vision::Image frame, double deadlineMs) {
  StatusOr<std::future<Response>> admitted =
      submit(std::move(frame), deadlineMs);
  if (!admitted.ok()) {
    Response response;
    response.status = admitted.status();
    return response;
  }
  return admitted.value().get();
}

ServiceStats DetectionService::stats() const {
  std::lock_guard<std::mutex> lock(statsMutex_);
  return stats_;
}

void DetectionService::stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stop_ && !worker_.joinable()) return;
    stop_ = true;
  }
  cv_.notify_all();
  if (worker_.joinable()) worker_.join();
}

void DetectionService::workerLoop() {
  const auto idleTick = std::chrono::milliseconds(params_.idleTickMs);
  std::vector<Pending> expired;
  std::vector<Pending> batch;
  for (;;) {
    expired.clear();
    batch.clear();
    std::size_t depthAfter = 0;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait_for(lock, idleTick,
                   [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) break;
      // Dequeue: drop expired requests first (no detector work spent on
      // them), then gather up to maxBatch same-sized frames. A frame of
      // different dimensions stays queued and starts the next batch.
      const double nowUs = obs::nowMicros();
      while (!queue_.empty() &&
             static_cast<int>(batch.size()) < params_.maxBatch) {
        Pending& head = queue_.front();
        if (head.deadlineUs > 0.0 && nowUs > head.deadlineUs) {
          expired.push_back(std::move(head));
          queue_.pop_front();
          continue;
        }
        if (!batch.empty() &&
            (head.frame.width() != batch.front().frame.width() ||
             head.frame.height() != batch.front().frame.height())) {
          break;
        }
        batch.push_back(std::move(head));
        queue_.pop_front();
      }
      depthAfter = queue_.size();
    }
    metrics().queueDepth.set(static_cast<double>(depthAfter));
    {
      std::lock_guard<std::mutex> statsLock(statsMutex_);
      stats_.queueDepth = depthAfter;
    }

    for (Pending& pending : expired) {
      Response response;
      response.status = Status::DeadlineExceeded(
          "serve: request expired on the admission queue");
      response.queueUs = obs::nowMicros() - pending.enqueueUs;
      {
        std::lock_guard<std::mutex> statsLock(statsMutex_);
        ++stats_.expired;
        ++stats_.completed;
        stats_.queueDepth = depthAfter;
      }
      metrics().expired.add();
      metrics().completed.add();
      pending.promise.set_value(std::move(response));
    }

    if (!batch.empty()) processBatch(batch);
    // The tick reads the depth NOW, not the dequeue-time snapshot: the
    // queue refills while a batch is being served, and that refill is
    // exactly the pressure signal the ladder must see.
    std::size_t depthNow;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      depthNow = queue_.size();
    }
    {
      std::lock_guard<std::mutex> statsLock(statsMutex_);
      stats_.queueDepth = depthNow;
    }
    metrics().queueDepth.set(static_cast<double>(depthNow));
    controlTick(depthNow);
  }
}

void DetectionService::processBatch(std::vector<Pending>& batch) {
  // Even at the reject rung, already-admitted work drains -- at the
  // fallback configuration, never dropped.
  const int level =
      std::min(controller_.level(), static_cast<int>(ServiceLevel::kFallback));
  PCNN_SPAN_ARG("serve.batch", "level", level);

  core::GridDetector* detector = primary_.get();
  core::BatchOptions options;
  if (level >= static_cast<int>(ServiceLevel::kFallback)) {
    if (fallback_) {
      detector = fallback_.get();
    } else {
      // No cheaper backend available: degrade by shedding twice as deep.
      options.detect.skipFinestLevels = 2 * params_.coarseSkipLevels;
    }
  } else if (level == static_cast<int>(ServiceLevel::kCoarse)) {
    options.detect.skipFinestLevels = params_.coarseSkipLevels;
  }

  std::vector<vision::Image> frames;
  frames.reserve(batch.size());
  options.deadlineUs.reserve(batch.size());
  const double dequeueUs = obs::nowMicros();
  for (Pending& pending : batch) {
    frames.push_back(std::move(pending.frame));
    options.deadlineUs.push_back(pending.deadlineUs);
  }

  std::vector<core::DegradationReport> reports;
  const double detectStartUs = obs::nowMicros();
  core::BatchDetectResult result =
      detector->detectBatch(frames, options, &reports);
  const double detectUs = obs::nowMicros() - detectStartUs;
  metrics().detectUs.record(detectUs);

  const bool degradedLevel = level > 0;
  {
    std::lock_guard<std::mutex> statsLock(statsMutex_);
    stats_.completed += static_cast<long>(batch.size());
    if (degradedLevel) stats_.degraded += static_cast<long>(batch.size());
  }
  for (std::size_t i = 0; i < batch.size(); ++i) {
    Response response;
    response.detections = std::move(result.frames[i].detections);
    if (i < reports.size()) response.degradation = reports[i];
    response.servedAt = static_cast<ServiceLevel>(level);
    response.queueUs = dequeueUs - batch[i].enqueueUs;
    response.detectUs = detectUs;
    metrics().completed.add();
    if (degradedLevel) metrics().degraded.add();
    metrics().queueUs.record(response.queueUs);
    const double latencyUs = obs::nowMicros() - batch[i].enqueueUs;
    metrics().latencyUs.record(latencyUs);
    ++latencyBuckets_[latencyBucket(latencyUs)];
    ++latencyCount_;
    batch[i].promise.set_value(std::move(response));
  }
}

void DetectionService::controlTick(std::size_t depthNow) {
  // Window the local latency buckets against the previous tick's baseline
  // -- the same delta-quantile math the streaming exporter uses, but on a
  // private baseline so the control loop neither depends on PCNN_METRICS
  // nor steals the exporter's global window.
  long delta[obs::LatencyHistogram::kBuckets];
  for (int i = 0; i < obs::LatencyHistogram::kBuckets; ++i) {
    delta[i] = latencyBuckets_[i] - latencyBaseline_[i];
  }
  const long deltaCount = latencyCount_ - latencyBaselineCount_;
  const double p99Us = obs::quantileFromDeltaBuckets(delta, deltaCount, 0.99);
  std::memcpy(latencyBaseline_, latencyBuckets_, sizeof(latencyBaseline_));
  latencyBaselineCount_ = latencyCount_;

  const int before = controller_.level();
  const int after = controller_.onTick(depthNow, params_.queueCapacity, p99Us,
                                       params_.deadlineMs * 1000.0);
  if (after == before) return;

  const int level = clampLevel(after);
  {
    std::lock_guard<std::mutex> statsLock(statsMutex_);
    ++stats_.transitions;
    stats_.level = level;
    stats_.queueDepth = depthNow;
  }
  metrics().transitions.add();
  metrics().level.set(static_cast<double>(level));
  PCNN_SPAN_ARG("serve.level", "level", level);
  if (after > before) {
    // Degrading is fault-ish: leave the recent history in the flight
    // recorder so a shed window in a long run can be reconstructed.
    obs::noteFaultEvent("serve.level.degrade");
  }
}

}  // namespace pcnn::serve
