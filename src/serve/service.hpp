#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.hpp"
#include "core/degradation.hpp"
#include "core/detector.hpp"
#include "obs/obs.hpp"
#include "vision/image.hpp"
#include "vision/nms.hpp"

namespace pcnn::serve {

/// Detection-as-a-service: a long-lived DetectionService that accepts
/// frame requests on a bounded admission queue, batches compatible
/// (same-sized) requests through GridDetector::detectBatch, enforces
/// per-request deadlines -- checked at dequeue (expired work is dropped
/// before any detector cycles are spent on it) and between pyramid levels
/// (via core::BatchOptions deadlines) -- and sheds load under pressure
/// through an explicit, hysteresis-guarded degradation ladder:
///
///   level 0  full      primary detector, full pyramid
///   level 1  coarse    primary detector, finest pyramid level(s) shed
///   level 2  fallback  cheaper fallback detector (e.g. parrot ->
///                      fixedpoint, the HOG-vs-CNN energy tradeoff of
///                      Suleiman et al. 1703.05853), or deeper shedding
///                      when no fallback detector was provided
///   level 3  reject    admission closed: new submissions are refused
///                      with kUnavailable; queued work still drains at
///                      the fallback configuration
///
/// The ladder is driven by two signals evaluated on every control tick
/// (after each batch, and periodically while idle): admission-queue
/// utilization and the windowed p99 of end-to-end latency, computed with
/// the same log2-bucket interpolation the src/obs streaming exporter uses
/// (obs::quantileFromDeltaBuckets) against the service's own baseline, so
/// the signal works even when PCNN_METRICS is unset.

/// Degradation-ladder rungs, coarsest quality last.
enum class ServiceLevel : int {
  kFull = 0,
  kCoarse = 1,
  kFallback = 2,
  kReject = 3,
};

/// Stable lower-case name ("full", "coarse", "fallback", "reject").
const char* serviceLevelName(ServiceLevel level);

/// Hysteresis thresholds for the degradation ladder. The ladder steps
/// *up* (degrades) immediately when either signal crosses its degrade
/// threshold, but steps *down* (recovers) only after `recoverHoldTicks`
/// consecutive calm ticks -- one flapping-guard per direction, so a queue
/// oscillating around a threshold cannot toggle quality every batch.
struct ControllerParams {
  double degradeQueueFrac = 0.75;   ///< step up when depth > frac*capacity
  double recoverQueueFrac = 0.25;   ///< calm requires depth < frac*capacity
  /// Latency signal, as fractions of the deadline budget: step up when
  /// windowed p99 > degradeLatencyFrac * deadline; calm requires p99 <
  /// recoverLatencyFrac * deadline. Disabled when the service has no
  /// deadline budget.
  double degradeLatencyFrac = 0.90;
  double recoverLatencyFrac = 0.50;
  int recoverHoldTicks = 3;  ///< calm ticks required before stepping down
  int maxLevel = static_cast<int>(ServiceLevel::kReject);
};

/// The ladder's state machine, separated from the service so the
/// hysteresis logic is deterministic and unit-testable: feed it queue
/// depth and windowed p99, read the level.
class LoadController {
 public:
  explicit LoadController(const ControllerParams& params = {})
      : params_(params) {}

  int level() const { return level_; }

  /// One control tick. `p99Us` is the windowed end-to-end p99 (0 for an
  /// empty window); `deadlineUs` <= 0 disables the latency signal.
  /// Returns the (possibly changed) level. Steps at most one rung per
  /// tick in either direction.
  int onTick(std::size_t queueDepth, std::size_t queueCapacity, double p99Us,
             double deadlineUs);

 private:
  ControllerParams params_;
  int level_ = 0;
  int calmTicks_ = 0;
};

/// Service configuration. Environment overrides (applied at construction
/// unless `readEnv` is false): PCNN_SERVE_QUEUE (admission-queue
/// capacity) and PCNN_SERVE_DEADLINE_MS (default per-request deadline
/// budget; 0 disables deadlines).
struct ServiceParams {
  std::size_t queueCapacity = 64;
  /// Default per-request deadline budget in ms; <= 0 = no deadline.
  double deadlineMs = 0.0;
  /// Max compatible requests folded into one detectBatch call.
  int maxBatch = 4;
  /// Finest pyramid levels shed at the coarse rung (level 2 doubles this
  /// when no fallback detector was provided).
  int coarseSkipLevels = 1;
  ControllerParams controller;
  /// Worker wake-up period while the queue is idle, so the ladder can
  /// recover (hysteresis ticks) without traffic.
  int idleTickMs = 2;
  bool readEnv = true;  ///< apply PCNN_SERVE_* overrides in the ctor
};

/// One served (or refused) request.
struct Response {
  /// OK for served requests (possibly degraded -- see `degradation`);
  /// kDeadlineExceeded for requests that expired on the queue and were
  /// dropped at dequeue without any detector work.
  Status status;
  std::vector<vision::Detection> detections;
  /// What the request gave up: shed levels (kUnavailable), levels
  /// abandoned past the deadline mid-scan (kDeadlineExceeded), plus any
  /// failure-driven skips and fault attribution from the detector.
  core::DegradationReport degradation;
  ServiceLevel servedAt = ServiceLevel::kFull;  ///< ladder rung served at
  double queueUs = 0.0;   ///< admission -> dequeue
  double detectUs = 0.0;  ///< detector wall time for the request's batch
};

/// Monotonic service accounting (always on, independent of PCNN_METRICS;
/// the same values are mirrored into obs counters/gauges for export).
struct ServiceStats {
  long admitted = 0;
  long rejected = 0;   ///< refused at admission (queue full / reject rung)
  long expired = 0;    ///< dropped at dequeue past their deadline
  long degraded = 0;   ///< served below full quality (rung > 0)
  long completed = 0;  ///< responses delivered (incl. expired/drained)
  long transitions = 0;  ///< ladder level changes
  int level = 0;         ///< current ladder level
  std::size_t queueDepth = 0;
};

class DetectionService {
 public:
  /// `primary` serves levels 0-1; `fallback` (may be null) serves levels
  /// 2-3. Both detectors are driven only from the service worker thread,
  /// so their temporal caches are safe. With a null fallback, levels 2-3
  /// serve from `primary` with 2x the coarse shedding.
  DetectionService(const ServiceParams& params,
                   std::shared_ptr<core::GridDetector> primary,
                   std::shared_ptr<core::GridDetector> fallback = nullptr);
  ~DetectionService();  ///< stop() -- drains the queue, joins the worker

  DetectionService(const DetectionService&) = delete;
  DetectionService& operator=(const DetectionService&) = delete;

  /// Admission gate. Returns a future for the response, or a typed
  /// rejection without enqueuing anything: kUnavailable when the bounded
  /// queue is full, when the ladder sits at the reject rung, or when the
  /// service is stopped. `deadlineMs` overrides the service default for
  /// this request (< 0 = explicitly no deadline; 0 = use the default).
  StatusOr<std::future<Response>> submit(vision::Image frame,
                                         double deadlineMs = 0.0);

  /// submit + wait. A rejected submission comes back as a Response whose
  /// status carries the rejection (empty detections).
  Response detectNow(vision::Image frame, double deadlineMs = 0.0);

  /// Point-in-time counters and ladder state.
  ServiceStats stats() const;

  const ServiceParams& params() const { return params_; }

  /// Stops admission, serves every request still queued (except expired
  /// ones, which are dropped as usual), and joins the worker. Idempotent;
  /// called by the destructor.
  void stop();

 private:
  struct Pending {
    vision::Image frame;
    double deadlineUs = 0.0;  ///< absolute, obs::nowMicros() clock; 0=none
    double enqueueUs = 0.0;
    std::promise<Response> promise;
  };

  void workerLoop();
  /// Serves one dequeued batch outside the queue lock.
  void processBatch(std::vector<Pending>& batch);
  /// Controller tick + level bookkeeping (gauge, counters, flight event).
  void controlTick(std::size_t depthNow);

  ServiceParams params_;
  std::shared_ptr<core::GridDetector> primary_;
  std::shared_ptr<core::GridDetector> fallback_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Pending> queue_;
  bool stop_ = false;

  LoadController controller_;
  /// Windowed end-to-end latency for the controller: local log2 buckets
  /// (recorded unconditionally -- obs histograms are gated on
  /// PCNN_METRICS) read with obs::quantileFromDeltaBuckets against a
  /// per-tick baseline. Worker-thread only.
  long latencyBuckets_[obs::LatencyHistogram::kBuckets] = {};
  long latencyCount_ = 0;
  long latencyBaseline_[obs::LatencyHistogram::kBuckets] = {};
  long latencyBaselineCount_ = 0;

  /// Always-on accounting (stats()); mirrored into obs instruments.
  mutable std::mutex statsMutex_;
  ServiceStats stats_;

  std::thread worker_;
};

}  // namespace pcnn::serve
