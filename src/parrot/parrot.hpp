#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "eedn/compiled.hpp"
#include "hog/hog.hpp"
#include "nn/sequential.hpp"
#include "parrot/generator.hpp"
#include "vision/image.hpp"

namespace pcnn::parrot {

/// Configuration of the Parrot HoG cell network.
///
/// Three trinary stages sized to deploy on ~9 TrueNorth cores (the paper's
/// parrot module uses 8 cores per cell):
///   TrinaryDense(100 -> hiddenWidth)            4 cores (128-neuron chunks)
///   PartitionedDense(hiddenWidth/mergeGroupInput groups -> merge width)
///                                               4 cores
///   TrinaryDense(merge width -> bins)           1 core
struct ParrotConfig {
  int bins = 18;
  int hiddenWidth = 504;       ///< <= 504 so the merged width stays <= 127
  int mergeGroupInput = 126;   ///< crossbar fan-in of the merge stage
  int mergeOutputsPerGroup = 26;
  float tau = 0.5f;            ///< trinarization dead zone
  std::uint64_t seed = 21;
  /// Stochastic input coding window in spikes: 0 = exact (float) inputs;
  /// k > 0 replaces each pixel v by Binomial(k, v)/k, the rate the
  /// hardware's k-spike stochastic code delivers (paper Fig. 6 sweeps
  /// 32-spike down to 1-spike).
  int inputSpikes = 0;
  /// Cores per 8x8 cell for the resource/power accounting. The paper's
  /// parrot design uses 8 cores per cell; our smaller mapped net uses 2 --
  /// both are reported, and the power model defaults to the paper's value.
  int paperCoresPerCell = 8;
};

/// The Parrot HoG: a small Eedn network trained to mimic NApprox HoG cell
/// histograms ("parrot transformation", Sec. 3.2). The first layer sees
/// the cell's entire 10x10 input field -- the paper found training fails
/// when the first layer receives only local subsets. The paper uses a
/// 2-layer, 8-core module; our deployment-mappable equivalent needs a
/// grouped merge stage between the wide hidden bank and the output stage
/// (fan-in limits of the two-axon sign encoding), landing at 9 cores.
class ParrotHog {
 public:
  explicit ParrotHog(const ParrotConfig& config = {});

  const ParrotConfig& config() const { return config_; }

  /// Trains against randomly generated labelled samples. Returns the final
  /// epoch's mean MSE loss.
  float train(const OrientedSampleGenerator& generator, int numSamples,
              int epochs, float learningRate, float momentum = 0.9f);

  /// Mean per-bin MSE on freshly generated validation samples.
  float validate(const OrientedSampleGenerator& generator, int numSamples);

  /// Fraction of validation samples whose predicted dominant bin matches
  /// the reference dominant bin ("classifier accuracy" in Fig. 6).
  double dominantBinAccuracy(const OrientedSampleGenerator& generator,
                             int numSamples);

  /// Histogram (confidences scaled back to vote counts, i.e. x64) of the
  /// cell whose top-left pixel is (x0, y0).
  std::vector<float> cellHistogram(const vision::Image& img, int x0, int y0);

  /// Per-cell feature grid over a whole image (layout matches
  /// hog::CellGrid so downstream classifiers are extractor-agnostic).
  hog::CellGrid computeCells(const vision::Image& img);

  /// Flat cell features of a window (Eedn classifier path, no block norm).
  std::vector<float> cellDescriptor(const vision::Image& window);

  /// cellDescriptor over a batch of windows, run on the global thread
  /// pool. One stochastic-coding seed is drawn per window up front (from
  /// this extractor's coding stream), so the result is deterministic for a
  /// given extractor state regardless of the thread count. Inference
  /// through the trained net is read-only and safe to share.
  std::vector<std::vector<float>> cellDescriptorBatch(
      const std::vector<vision::Image>& windows);

  /// Block-normalized window descriptor (SVM path).
  std::vector<float> windowDescriptor(const vision::Image& window,
                                      bool l2Normalize = true);

  /// Raw network output for a 100-pixel patch: per-bin vote-count
  /// estimates on the reference histogram's 0..64 scale.
  std::vector<float> infer(const std::vector<float>& patch);

  /// Changes the input spike coding without retraining.
  void setInputSpikes(int spikes) { config_.inputSpikes = spikes; }

  /// Mutable access invalidates the compiled inference plan (the caller
  /// may change weights); the next batched inference recompiles.
  nn::Sequential& net() {
    compiledStale_ = true;
    return net_;
  }

  /// Read-only access (serialization); leaves the compiled plan valid.
  const nn::Sequential& net() const { return net_; }

  /// Compiled deployment-weight plan for batched inference. Lazily built;
  /// bitwise-identical outputs to net().forward(patch, false). Rebuilt
  /// after train() or any mutable net() access.
  const eedn::CompiledTrinaryNet& compiledNet();

  /// TrueNorth cores per cell for this network when mapped.
  int mappedCoresPerCell() const;

 private:
  std::vector<float> encodeInput(const std::vector<float>& patch);
  std::vector<float> encodeInputWith(const std::vector<float>& patch,
                                     pcnn::Rng& rng) const;
  std::vector<float> inferWith(const std::vector<float>& patch,
                               pcnn::Rng& rng);
  std::vector<float> cellHistogramWith(const vision::Image& img, int x0,
                                       int y0, pcnn::Rng& rng);
  hog::CellGrid computeCellsWith(const vision::Image& img, pcnn::Rng& rng);
  ParrotConfig config_;
  pcnn::Rng rng_;
  pcnn::Rng codingRng_;
  nn::Sequential net_;
  /// Compiled snapshot of net_'s trinary weights (see compiledNet()).
  std::unique_ptr<eedn::CompiledTrinaryNet> compiled_;
  bool compiledStale_ = true;
};

}  // namespace pcnn::parrot
