#pragma once

#include <vector>

#include "common/rng.hpp"
#include "napprox/napprox.hpp"
#include "vision/image.hpp"

namespace pcnn::parrot {

/// One labelled parrot-training sample: a 10x10 pixel patch (the input
/// neighbourhood of an 8x8 cell) and the reference HoG histogram the parrot
/// must learn to emit (normalized to [0, 1]).
struct ParrotSample {
  std::vector<float> pixels;  ///< 100 values in [0, 1]
  std::vector<float> target;  ///< `bins` reference vote counts in [0, 64]
  int dominantBin = -1;       ///< argmax of target, -1 if empty histogram
};

/// Parameters of the random sample generator (paper Figure 3).
struct GeneratorParams {
  int bins = 18;
  float noiseFlipProbability = 0.03f;  ///< salt-and-pepper corruption
  float minFill = 0.15f;  ///< min fraction of 1s ("different ratio of 1's
                          ///< and 0's so that the extractor learns to deal
                          ///< with samples with offsets")
  float maxFill = 0.85f;
  float gratingProbability = 0.3f;  ///< use a periodic grating vs step edge
  float randomProbability = 0.05f;  ///< unstructured random patch
  /// Smooth value-noise texture patches: cells in deployment are often
  /// texture rather than clean edges, and the parrot must mimic the
  /// reference histogram there too.
  float textureProbability = 0.25f;
  /// Gray-level rendering: the binary pattern is mapped to random
  /// foreground/background intensities with additive Gaussian noise, so
  /// the parrot sees the distribution the deployed extractor sees --
  /// including low-contrast patches whose reference histogram is (nearly)
  /// empty. Set grayLevels=false for the paper-figure binary patterns.
  bool grayLevels = true;
  float minLevel = 0.05f;
  float maxLevel = 0.9f;
  float minContrast = 0.02f;  ///< deliberately spans below the vote
                              ///< threshold so "no vote" cells are learned
  float maxContrast = 0.5f;
  float noiseSigma = 0.02f;
};

/// Generates randomly oriented, automatically labelled training data for
/// the Parrot HoG. "Automatic generation of labeled data is possible
/// because HoG is a well-defined function of the input pixels" (Sec. 3.2):
/// the label is the reference NApprox(fp) histogram of the generated patch.
class OrientedSampleGenerator {
 public:
  explicit OrientedSampleGenerator(const GeneratorParams& params = {});

  /// One random sample (the full 8x8-cell input field -- the paper found
  /// the first layer must see all inputs of the cell).
  ParrotSample sample(Rng& rng) const;

  /// A batch of samples.
  std::vector<ParrotSample> batch(int count, Rng& rng) const;

  /// Renders the 10x10 patch only (exposed for tests).
  vision::Image patch(Rng& rng) const;

  const GeneratorParams& params() const { return params_; }

 private:
  GeneratorParams params_;
  napprox::NApproxHog reference_;
};

}  // namespace pcnn::parrot
