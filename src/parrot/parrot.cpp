#include "parrot/parrot.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "common/parallel.hpp"
#include "eedn/partitioned.hpp"
#include "eedn/trinary.hpp"
#include "nn/loss.hpp"

namespace pcnn::parrot {
namespace {
constexpr int kPatchSize = 100;  // 10x10 input field

/// Reads the 10x10 input field of the cell whose top-left pixel is
/// (x0, y0), in the same pixel order as cellHistogramWith.
void gatherPatch(const vision::Image& img, int x0, int y0,
                 std::vector<float>& patch) {
  int i = 0;
  for (int y = 0; y < 10; ++y) {
    for (int x = 0; x < 10; ++x) {
      patch[static_cast<std::size_t>(i++)] =
          img.atClamped(x0 - 1 + x, y0 - 1 + y);
    }
  }
}

}  // namespace

ParrotHog::ParrotHog(const ParrotConfig& config)
    : config_(config), rng_(config.seed), codingRng_(config.seed ^ 0xABCDu) {
  if (config.hiddenWidth <= 0 || config.mergeGroupInput <= 0 ||
      config.mergeGroupInput > 127 || config.mergeOutputsPerGroup <= 0) {
    throw std::invalid_argument("ParrotHog: invalid layer sizes");
  }
  const int mergeGroups =
      (config.hiddenWidth + config.mergeGroupInput - 1) /
      config.mergeGroupInput;
  const int mergeWidth = mergeGroups * config.mergeOutputsPerGroup;
  if (mergeWidth > 127) {
    throw std::invalid_argument(
        "ParrotHog: merged width exceeds the 127-input TrueNorth mapping "
        "limit of the output stage (reduce hiddenWidth or "
        "mergeOutputsPerGroup)");
  }
  net_.add(std::make_unique<eedn::TrinaryDense>(kPatchSize,
                                                config.hiddenWidth, rng_,
                                                config.tau));
  net_.add(std::make_unique<eedn::SpikingThreshold>(
      config.hiddenWidth, std::sqrt(static_cast<float>(kPatchSize))));
  net_.add(std::make_unique<eedn::PartitionedDense>(
      config.hiddenWidth, config.mergeGroupInput,
      config.mergeOutputsPerGroup, rng_, config.tau));
  net_.add(std::make_unique<eedn::SpikingThreshold>(
      mergeWidth, std::sqrt(static_cast<float>(config.mergeGroupInput))));
  net_.add(std::make_unique<eedn::TrinaryDense>(mergeWidth, config.bins,
                                                rng_, config.tau));
}

int ParrotHog::mappedCoresPerCell() const {
  const int hiddenCores = (config_.hiddenWidth + 127) / 128;
  const int mergeCores =
      (config_.hiddenWidth + config_.mergeGroupInput - 1) /
      config_.mergeGroupInput;
  return hiddenCores + mergeCores + 1;
}

std::vector<float> ParrotHog::encodeInput(const std::vector<float>& patch) {
  return encodeInputWith(patch, codingRng_);
}

std::vector<float> ParrotHog::encodeInputWith(const std::vector<float>& patch,
                                              pcnn::Rng& rng) const {
  if (config_.inputSpikes <= 0) return patch;
  std::vector<float> coded(patch.size());
  const int k = config_.inputSpikes;
  for (std::size_t i = 0; i < patch.size(); ++i) {
    const float v = std::clamp(patch[i], 0.0f, 1.0f);
    int spikes = 0;
    for (int s = 0; s < k; ++s) {
      if (rng.bernoulli(v)) ++spikes;
    }
    coded[i] = static_cast<float>(spikes) / static_cast<float>(k);
  }
  return coded;
}

std::vector<float> ParrotHog::infer(const std::vector<float>& patch) {
  return inferWith(patch, codingRng_);
}

std::vector<float> ParrotHog::inferWith(const std::vector<float>& patch,
                                        pcnn::Rng& rng) {
  if (static_cast<int>(patch.size()) != kPatchSize) {
    throw std::invalid_argument("ParrotHog::infer: patch must be 10x10");
  }
  return net_.forward(encodeInputWith(patch, rng), false);
}

const eedn::CompiledTrinaryNet& ParrotHog::compiledNet() {
  if (compiledStale_ || !compiled_) {
    compiled_ = std::make_unique<eedn::CompiledTrinaryNet>(net_);
    compiledStale_ = false;
  }
  return *compiled_;
}

float ParrotHog::train(const OrientedSampleGenerator& generator,
                       int numSamples, int epochs, float learningRate,
                       float momentum) {
  const std::vector<ParrotSample> samples = generator.batch(numSamples, rng_);
  std::vector<std::size_t> order(samples.size());
  std::iota(order.begin(), order.end(), 0);

  float lastEpochLoss = 0.0f;
  constexpr int kBatch = 16;
  for (int epoch = 0; epoch < epochs; ++epoch) {
    for (std::size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1],
                order[static_cast<std::size_t>(
                    rng_.uniformInt(0, static_cast<int>(i) - 1))]);
    }
    double lossSum = 0.0;
    int inBatch = 0;
    for (std::size_t idx : order) {
      const ParrotSample& sample = samples[idx];
      // Training uses exact inputs; spike coding is a deployment-time
      // representation choice (the Fig. 6 sweep).
      const std::vector<float> out = net_.forward(sample.pixels, true);
      const nn::LossResult loss = nn::mseLoss(out, sample.target);
      lossSum += loss.value;
      net_.backward(loss.grad);
      if (++inBatch == kBatch) {
        net_.applyGradients(learningRate, momentum, inBatch);
        inBatch = 0;
      }
    }
    if (inBatch > 0) net_.applyGradients(learningRate, momentum, inBatch);
    lastEpochLoss =
        static_cast<float>(lossSum / static_cast<double>(samples.size()));
  }
  compiledStale_ = true;  // weights moved; the inference plan is a snapshot
  return lastEpochLoss;
}

float ParrotHog::validate(const OrientedSampleGenerator& generator,
                          int numSamples) {
  const std::vector<ParrotSample> samples = generator.batch(numSamples, rng_);
  double lossSum = 0.0;
  for (const ParrotSample& sample : samples) {
    const std::vector<float> out = infer(sample.pixels);
    lossSum += nn::mseLoss(out, sample.target).value;
  }
  return samples.empty() ? 0.0f
                         : static_cast<float>(
                               lossSum / static_cast<double>(samples.size()));
}

double ParrotHog::dominantBinAccuracy(const OrientedSampleGenerator& generator,
                                      int numSamples) {
  const std::vector<ParrotSample> samples = generator.batch(numSamples, rng_);
  int evaluated = 0;
  int correct = 0;
  for (const ParrotSample& sample : samples) {
    if (sample.dominantBin < 0) continue;
    const std::vector<float> out = infer(sample.pixels);
    const int predicted = static_cast<int>(
        std::max_element(out.begin(), out.end()) - out.begin());
    ++evaluated;
    if (predicted == sample.dominantBin) ++correct;
  }
  return evaluated > 0
             ? static_cast<double>(correct) / static_cast<double>(evaluated)
             : 0.0;
}

std::vector<float> ParrotHog::cellHistogram(const vision::Image& img, int x0,
                                            int y0) {
  return cellHistogramWith(img, x0, y0, codingRng_);
}

std::vector<float> ParrotHog::cellHistogramWith(const vision::Image& img,
                                                int x0, int y0,
                                                pcnn::Rng& rng) {
  std::vector<float> patch(static_cast<std::size_t>(kPatchSize));
  int i = 0;
  for (int y = 0; y < 10; ++y) {
    for (int x = 0; x < 10; ++x) {
      patch[i++] = img.atClamped(x0 - 1 + x, y0 - 1 + y);
    }
  }
  std::vector<float> out = inferWith(patch, rng);
  // The parrot regresses vote counts directly; clamp to the physical range
  // (a cell casts at most 64 votes) so features match NApprox's scale.
  for (float& v : out) v = std::clamp(v, 0.0f, 64.0f);
  return out;
}

hog::CellGrid ParrotHog::computeCells(const vision::Image& img) {
  return computeCellsWith(img, codingRng_);
}

hog::CellGrid ParrotHog::computeCellsWith(const vision::Image& img,
                                          pcnn::Rng& rng) {
  hog::CellGrid grid;
  grid.cellsX = img.width() / 8;
  grid.cellsY = img.height() / 8;
  grid.bins = config_.bins;
  const int count = grid.cellsX * grid.cellsY;
  grid.data.assign(static_cast<std::size_t>(count) * grid.bins, 0.0f);
  if (count == 0) return grid;
  const eedn::CompiledTrinaryNet& net = compiledNet();

  // Gather and spike-encode every cell's patch in row-major cell order --
  // the exact coding-stream draw order of the per-cell path -- into a
  // feature-major activation plane, then run the whole grid through the
  // compiled net in one batch.
  std::vector<float> plane(static_cast<std::size_t>(kPatchSize) * count);
  std::vector<float> patch(static_cast<std::size_t>(kPatchSize));
  int cell = 0;
  for (int cy = 0; cy < grid.cellsY; ++cy) {
    for (int cx = 0; cx < grid.cellsX; ++cx, ++cell) {
      gatherPatch(img, cx * 8, cy * 8, patch);
      const std::vector<float> coded = encodeInputWith(patch, rng);
      for (int i = 0; i < kPatchSize; ++i) {
        plane[static_cast<std::size_t>(i) * count + cell] = coded[i];
      }
    }
  }
  const std::vector<float> out = net.forwardBatch(plane, count);
  // The parrot regresses vote counts directly; clamp to the physical range
  // (a cell casts at most 64 votes) so features match NApprox's scale.
  for (int c = 0; c < count; ++c) {
    for (int b = 0; b < grid.bins; ++b) {
      grid.data[static_cast<std::size_t>(c) * grid.bins + b] = std::clamp(
          out[static_cast<std::size_t>(b) * count + c], 0.0f, 64.0f);
    }
  }
  return grid;
}

std::vector<float> ParrotHog::cellDescriptor(const vision::Image& window) {
  hog::CellGrid grid = computeCells(window);
  return std::move(grid.data);
}

std::vector<std::vector<float>> ParrotHog::cellDescriptorBatch(
    const std::vector<vision::Image>& windows) {
  // Draw the per-window coding seeds sequentially so the realization each
  // window receives depends only on the extractor's stream position, not
  // on how the pool schedules the batch.
  std::vector<std::uint64_t> seeds(windows.size());
  for (auto& seed : seeds) seed = codingRng_.nextU64();
  // Build the compiled plan before fanning out: the pool workers below
  // only read it.
  (void)compiledNet();
  std::vector<std::vector<float>> out(windows.size());
  parallelFor(0, static_cast<long>(windows.size()), [&](long i) {
    const auto idx = static_cast<std::size_t>(i);
    pcnn::Rng rng(seeds[idx]);
    // One window-major batch through the compiled net; the grid's data
    // layout (row-major cells, bins per cell) is exactly the flat feature
    // vector the per-cell path assembled.
    out[idx] = std::move(computeCellsWith(windows[idx], rng).data);
  });
  return out;
}

std::vector<float> ParrotHog::windowDescriptor(const vision::Image& window,
                                               bool l2Normalize) {
  hog::HogParams hp;
  hp.cellSize = 8;
  hp.numBins = config_.bins;
  hp.signedOrientation = true;
  hp.blockCells = 2;
  hp.blockStrideCells = 1;
  hp.l2Normalize = l2Normalize;
  const hog::HogExtractor assembler(hp);
  return assembler.blocksFromGrid(computeCells(window));
}

}  // namespace pcnn::parrot
