#include "parrot/generator.hpp"

#include <algorithm>
#include <cmath>

#include "vision/synth.hpp"

namespace pcnn::parrot {
namespace {
constexpr int kSide = 10;
constexpr float kTwoPi = 6.28318530717958647692f;

napprox::NApproxParams referenceParams(int bins) {
  napprox::NApproxParams p;
  p.bins = bins;
  return p;
}
}  // namespace

OrientedSampleGenerator::OrientedSampleGenerator(const GeneratorParams& params)
    : params_(params), reference_(referenceParams(params.bins)) {}

vision::Image OrientedSampleGenerator::patch(Rng& rng) const {
  vision::Image img(kSide, kSide, 0.0f);
  const double roll = rng.uniform();
  if (roll < params_.textureProbability) {
    // Smooth texture patch: already gray-level, returned directly.
    const float base = 0.2f + 0.6f * static_cast<float>(rng.uniform());
    img = vision::valueNoise(kSide, kSide, 3 + rng.uniformInt(0, 3), base,
                             0.05f + 0.15f * static_cast<float>(rng.uniform()),
                             rng);
    if (params_.noiseSigma > 0.0f) {
      vision::addGaussianNoise(img, params_.noiseSigma, rng);
    }
    return img;
  }
  if (roll < params_.textureProbability + params_.randomProbability) {
    // Unstructured patch: teaches the parrot what "no dominant
    // orientation" looks like.
    for (float& v : img.data()) {
      v = rng.bernoulli(rng.uniform()) ? 1.0f : 0.0f;
    }
  } else {
    const float theta = static_cast<float>(rng.uniform(0.0, kTwoPi));
    const float c = std::cos(theta);
    const float s = std::sin(theta);
    const float fill = static_cast<float>(
        rng.uniform(params_.minFill, params_.maxFill));
    const bool grating =
        rng.uniform() < static_cast<double>(params_.gratingProbability);
    // Project each pixel on the edge normal; a step edge thresholds the
    // projection at a fill-dependent offset, a grating thresholds a
    // sinusoid of the projection.
    const float period = 3.0f + 5.0f * static_cast<float>(rng.uniform());
    const float phase = static_cast<float>(rng.uniform(0.0, kTwoPi));
    // Offset such that `fill` of the projection range is foreground.
    const float span = 0.5f * static_cast<float>(kSide) *
                       (std::abs(c) + std::abs(s));
    const float offset = span * (1.0f - 2.0f * fill);
    for (int y = 0; y < kSide; ++y) {
      for (int x = 0; x < kSide; ++x) {
        const float proj = c * (static_cast<float>(x) - 4.5f) +
                           s * (static_cast<float>(y) - 4.5f);
        bool on;
        if (grating) {
          on = std::sin(proj * kTwoPi / period + phase) >
               (1.0f - 2.0f * fill);
        } else {
          on = proj > offset;
        }
        img.at(x, y) = on ? 1.0f : 0.0f;
      }
    }
  }
  // Salt-and-pepper corruption.
  if (params_.noiseFlipProbability > 0.0f) {
    for (float& v : img.data()) {
      if (rng.bernoulli(params_.noiseFlipProbability)) v = 1.0f - v;
    }
  }
  if (params_.grayLevels) {
    // Map the binary pattern onto random gray levels with noise so the
    // training distribution matches deployed cell content.
    const float contrast =
        params_.minContrast +
        (params_.maxContrast - params_.minContrast) *
            static_cast<float>(rng.uniform());
    const float lo = params_.minLevel +
                     (params_.maxLevel - params_.minLevel - contrast) *
                         static_cast<float>(rng.uniform());
    for (float& v : img.data()) {
      v = lo + contrast * v +
          params_.noiseSigma * static_cast<float>(rng.normal());
    }
    img.clampValues(0.0f, 1.0f);
  }
  return img;
}

ParrotSample OrientedSampleGenerator::sample(Rng& rng) const {
  ParrotSample out;
  const vision::Image img = patch(rng);
  out.pixels = img.data();

  // Reference histogram of the central 8x8 cell, in raw vote counts
  // (0..64). Count scale keeps the regression targets on the integer
  // granularity the trinary network's outputs naturally have.
  out.target = reference_.cellHistogram(img, 1, 1);
  float best = 0.0f;
  for (std::size_t k = 0; k < out.target.size(); ++k) {
    if (out.target[k] > best) {
      best = out.target[k];
      out.dominantBin = static_cast<int>(k);
    }
  }
  return out;
}

std::vector<ParrotSample> OrientedSampleGenerator::batch(int count,
                                                         Rng& rng) const {
  std::vector<ParrotSample> samples;
  samples.reserve(static_cast<std::size_t>(std::max(0, count)));
  for (int i = 0; i < count; ++i) samples.push_back(sample(rng));
  return samples;
}

}  // namespace pcnn::parrot
