#include "extract/extractor.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "common/parallel.hpp"

namespace pcnn::extract {

namespace {

hog::HogParams blockAssemblyParams(int bins) {
  hog::HogParams hp;
  hp.numBins = bins;
  hp.blockCells = 2;
  hp.blockStrideCells = 1;
  hp.l2Normalize = true;
  return hp;
}

}  // namespace

const char* layoutName(FeatureLayout layout) {
  switch (layout) {
    case FeatureLayout::kFlatCell:
      return "flat-cell";
    case FeatureLayout::kBlockNorm:
      return "block-norm";
  }
  return "?";
}

FeatureExtractor::FeatureExtractor(std::string name, FeatureLayout layout,
                                   int bins, int windowCellsX,
                                   int windowCellsY, int cellSize)
    : name_(std::move(name)),
      layout_(layout),
      bins_(bins),
      cellSize_(cellSize),
      windowCellsX_(windowCellsX),
      windowCellsY_(windowCellsY),
      blockAssembler_(blockAssemblyParams(bins)) {
  if (bins_ <= 0 || cellSize_ <= 0 || windowCellsX_ <= 0 ||
      windowCellsY_ <= 0) {
    throw std::invalid_argument("FeatureExtractor: invalid geometry");
  }
  batchUs_ = &obs::histogram("extract." + name_ + ".batch_us");
}

FeatureExtractor::BatchScope::BatchScope(FeatureExtractor& extractor,
                                         std::size_t windows)
    : span_("extract.batch", "windows", static_cast<long>(windows)),
      timer_(*extractor.batchUs_) {
  static obs::Counter& extracted = obs::counter("extract.windows");
  extracted.add(static_cast<long>(windows));
}

int FeatureExtractor::featureDim() const {
  switch (layout_) {
    case FeatureLayout::kFlatCell:
      return windowCellsX_ * windowCellsY_ * bins_;
    case FeatureLayout::kBlockNorm: {
      const int blocksX = windowCellsX_ - 1;  // 2x2 blocks, 1-cell stride
      const int blocksY = windowCellsY_ - 1;
      return blocksX * blocksY * 4 * bins_;
    }
  }
  return 0;
}

std::vector<float> FeatureExtractor::windowFromGrid(const hog::CellGrid& grid,
                                                    int cx0, int cy0) const {
  if (layout_ == FeatureLayout::kBlockNorm) {
    return blockAssembler_.windowDescriptorFromGrid(grid, cx0, cy0,
                                                    windowCellsX_,
                                                    windowCellsY_);
  }
  if (cx0 < 0 || cy0 < 0 || cx0 + windowCellsX_ > grid.cellsX ||
      cy0 + windowCellsY_ > grid.cellsY) {
    throw std::invalid_argument("windowFromGrid: window exceeds grid");
  }
  std::vector<float> features;
  features.reserve(static_cast<std::size_t>(windowCellsX_) * windowCellsY_ *
                   grid.bins);
  for (int cy = 0; cy < windowCellsY_; ++cy) {
    for (int cx = 0; cx < windowCellsX_; ++cx) {
      const float* hist = grid.cell(cx0 + cx, cy0 + cy);
      features.insert(features.end(), hist, hist + grid.bins);
    }
  }
  return features;
}

hog::BlockGrid FeatureExtractor::prepareBlocks(
    const hog::CellGrid& grid) const {
  if (layout_ != FeatureLayout::kBlockNorm) return {};
  return blockAssembler_.blockGridFromCells(grid);
}

std::vector<float> FeatureExtractor::windowFromBlocks(
    const hog::BlockGrid& blocks, int cx0, int cy0) const {
  if (layout_ != FeatureLayout::kBlockNorm) {
    throw std::logic_error(
        "windowFromBlocks: only block-norm extractors have a block grid");
  }
  return blockAssembler_.windowDescriptorFromBlocks(blocks, cx0, cy0,
                                                    windowCellsX_,
                                                    windowCellsY_);
}

std::vector<float> FeatureExtractor::windowFeatures(
    const vision::Image& window) {
  return windowFromGrid(cellGrid(window), 0, 0);
}

namespace {

/// Maps an escaping exception to the closest StatusCode; backends signal
/// caller errors with std::invalid_argument / std::out_of_range and
/// anything else (including simulator faults) lands in kInternal.
Status statusFromException(const std::string& where) {
  try {
    throw;  // rethrow the in-flight exception
  } catch (const std::invalid_argument& e) {
    return Status::InvalidArgument(where + ": " + e.what());
  } catch (const std::out_of_range& e) {
    return Status::OutOfRange(where + ": " + e.what());
  } catch (const std::exception& e) {
    return Status::Internal(where + ": " + e.what());
  } catch (...) {
    return Status::Internal(where + ": unknown exception");
  }
}

obs::Counter& extractFailures() {
  static obs::Counter& failures = obs::counter("extract.failures");
  return failures;
}

}  // namespace

StatusOr<hog::CellGrid> FeatureExtractor::tryCellGrid(
    const vision::Image& image) {
  if (image.empty()) {
    extractFailures().add();
    return Status::InvalidArgument("tryCellGrid(" + name_ + "): empty image");
  }
  if (image.width() < cellSize_ || image.height() < cellSize_) {
    extractFailures().add();
    return Status::InvalidArgument(
        "tryCellGrid(" + name_ + "): image " + std::to_string(image.width()) +
        "x" + std::to_string(image.height()) + " smaller than one " +
        std::to_string(cellSize_) + "px cell");
  }
  try {
    return cellGrid(image);
  } catch (...) {
    extractFailures().add();
    return statusFromException("tryCellGrid(" + name_ + ")");
  }
}

StatusOr<std::vector<float>> FeatureExtractor::tryWindowFeatures(
    const vision::Image& window) {
  if (window.width() < windowCellsX_ * cellSize_ ||
      window.height() < windowCellsY_ * cellSize_) {
    extractFailures().add();
    return Status::InvalidArgument(
        "tryWindowFeatures(" + name_ + "): window " +
        std::to_string(window.width()) + "x" +
        std::to_string(window.height()) + " smaller than the " +
        std::to_string(windowCellsX_ * cellSize_) + "x" +
        std::to_string(windowCellsY_ * cellSize_) + " detection window");
  }
  try {
    return windowFeatures(window);
  } catch (...) {
    extractFailures().add();
    return statusFromException("tryWindowFeatures(" + name_ + ")");
  }
}

StatusOr<long> FeatureExtractor::tryUpdateCellGrid(
    const vision::Image& image, const std::vector<CellRect>& dirty,
    hog::CellGrid& grid) {
  if (image.empty()) {
    extractFailures().add();
    return Status::InvalidArgument("tryUpdateCellGrid(" + name_ +
                                   "): empty image");
  }
  const int cellsX = image.width() / cellSize_;
  const int cellsY = image.height() / cellSize_;
  if (grid.cellsX != cellsX || grid.cellsY != cellsY ||
      grid.bins != bins_ ||
      grid.data.size() != static_cast<std::size_t>(cellsX) * cellsY * bins_) {
    extractFailures().add();
    return Status::InvalidArgument(
        "tryUpdateCellGrid(" + name_ + "): grid " +
        std::to_string(grid.cellsX) + "x" + std::to_string(grid.cellsY) +
        " does not match image " + std::to_string(image.width()) + "x" +
        std::to_string(image.height()));
  }
  long recomputed = 0;
  for (const CellRect& rect : dirty) {
    const int cx0 = std::max(0, rect.cx0);
    const int cy0 = std::max(0, rect.cy0);
    const int cx1 = std::min(cellsX, rect.cx1);
    const int cy1 = std::min(cellsY, rect.cy1);
    if (cx0 >= cx1 || cy0 >= cy1) continue;
    // One cell of context on every side: the gradient stencil reads one
    // pixel beyond the cell, so target cells sitting one full cell inside
    // the crop (or on the image border, where clamping behaves alike) see
    // exactly the pixels the full-image computation would.
    const int ecx0 = std::max(0, cx0 - 1);
    const int ecy0 = std::max(0, cy0 - 1);
    const int ecx1 = std::min(cellsX, cx1 + 1);
    const int ecy1 = std::min(cellsY, cy1 + 1);
    const int px0 = ecx0 * cellSize_;
    const int py0 = ecy0 * cellSize_;
    // Extending the crop to the image border when the rect reaches the
    // last cell column/row keeps border clamping identical to the full
    // image (partial leftover pixels < cellSize, so the crop's own cell
    // count is unchanged).
    const int px1 = ecx1 == cellsX ? image.width() : ecx1 * cellSize_;
    const int py1 = ecy1 == cellsY ? image.height() : ecy1 * cellSize_;
    try {
      const vision::Image region =
          image.crop(px0, py0, px1 - px0, py1 - py0);
      const hog::CellGrid sub = cellGrid(region);
      if (sub.cellsX != ecx1 - ecx0 || sub.cellsY != ecy1 - ecy0 ||
          sub.bins != bins_) {
        extractFailures().add();
        return Status::Internal("tryUpdateCellGrid(" + name_ +
                                "): backend produced a mismatched sub-grid");
      }
      const std::size_t rowBytes =
          sizeof(float) * static_cast<std::size_t>(cx1 - cx0) * bins_;
      for (int cy = cy0; cy < cy1; ++cy) {
        std::memcpy(grid.cell(cx0, cy),
                    sub.cell(cx0 - ecx0, cy - ecy0), rowBytes);
      }
      recomputed += static_cast<long>(cx1 - cx0) * (cy1 - cy0);
    } catch (...) {
      extractFailures().add();
      return statusFromException("tryUpdateCellGrid(" + name_ + ")");
    }
  }
  return recomputed;
}

long FeatureExtractor::updateBlocks(const hog::CellGrid& grid,
                                    const std::vector<CellRect>& dirtyCells,
                                    hog::BlockGrid& blocks) const {
  if (layout_ != FeatureLayout::kBlockNorm) return 0;
  long refreshed = 0;
  for (const CellRect& rect : dirtyCells) {
    // A 2x2 block covers cells [bx, bx+1] x [by, by+1]: blocks one to the
    // left/top of a dirty cell also change.
    refreshed += blockAssembler_.refreshBlockRect(
        grid, blocks, rect.cx0 - 1, rect.cy0 - 1, rect.cx1, rect.cy1);
  }
  return refreshed;
}

std::vector<std::vector<float>> FeatureExtractor::batchFeatures(
    const std::vector<vision::Image>& windows) {
  BatchScope scope(*this, windows.size());
  std::vector<std::vector<float>> out(windows.size());
  if (statelessExtraction()) {
    parallelFor(0, static_cast<long>(windows.size()), [&](long i) {
      out[static_cast<std::size_t>(i)] =
          windowFeatures(windows[static_cast<std::size_t>(i)]);
    });
  } else {
    for (std::size_t i = 0; i < windows.size(); ++i) {
      out[i] = windowFeatures(windows[i]);
    }
  }
  return out;
}

namespace {

constexpr char kStateMagic[5] = "PXST";
constexpr std::uint32_t kStateVersion = 1;

std::uint8_t layoutCode(FeatureLayout layout) {
  return layout == FeatureLayout::kBlockNorm ? 1 : 0;
}

}  // namespace

Status FeatureExtractor::trySaveState(std::ostream& out) {
  io::Writer w(out);
  w.header(kStateMagic, kStateVersion);
  {
    std::ostringstream payload;
    io::Writer pw(payload);
    pw.str(name_);
    pw.u8(layoutCode(layout_));
    pw.u32(static_cast<std::uint32_t>(bins_));
    pw.u32(static_cast<std::uint32_t>(cellSize_));
    pw.u32(static_cast<std::uint32_t>(windowCellsX_));
    pw.u32(static_cast<std::uint32_t>(windowCellsY_));
    if (!pw.status().ok()) return pw.status();
    w.chunk("META", payload.str());
  }
  if (Status status = saveStateBody(w); !status.ok()) return status;
  return w.status();
}

Status FeatureExtractor::trySaveStateFile(const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return Status::Unavailable("saveStateFile: cannot open " + path);
  }
  return trySaveState(out);
}

Status FeatureExtractor::tryLoadState(std::istream& in) {
  io::Reader r(in);
  if (!r.header(kStateMagic, kStateVersion).ok()) return r.status();

  io::Reader::Chunk chunk;
  bool end = false;
  for (;;) {
    if (!r.nextChunk(chunk, end).ok()) return r.status();
    if (end) return Status::DataLoss("loadState: missing META chunk");
    if (chunk.tag == "META") break;  // unknown chunks skipped
  }
  {
    std::istringstream payload(chunk.payload);
    io::Reader pr(payload);
    std::string name;
    std::uint8_t layout = 0;
    std::uint32_t bins = 0, cellSize = 0, cellsX = 0, cellsY = 0;
    pr.str(name);
    pr.u8(layout);
    pr.u32(bins);
    pr.u32(cellSize);
    pr.u32(cellsX);
    if (!pr.u32(cellsY).ok()) return pr.status();
    if (name != name_) {
      return Status::FailedPrecondition("loadState: state for extractor \"" +
                                        name + "\" does not match \"" +
                                        name_ + "\"");
    }
    if (layout != layoutCode(layout_) ||
        bins != static_cast<std::uint32_t>(bins_) ||
        cellSize != static_cast<std::uint32_t>(cellSize_) ||
        cellsX != static_cast<std::uint32_t>(windowCellsX_) ||
        cellsY != static_cast<std::uint32_t>(windowCellsY_)) {
      return Status::FailedPrecondition(
          "loadState: geometry mismatch for extractor \"" + name_ + "\"");
    }
  }

  std::vector<io::Reader::Chunk> body;
  for (;;) {
    if (!r.nextChunk(chunk, end).ok()) return r.status();
    if (end) break;
    body.push_back(std::move(chunk));
  }
  return loadStateBody(body);
}

Status FeatureExtractor::tryLoadStateFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::Unavailable("loadStateFile: cannot open " + path);
  }
  return tryLoadState(in);
}

Status FeatureExtractor::saveStateBody(io::Writer&) { return Status::Ok(); }

Status FeatureExtractor::loadStateBody(
    const std::vector<io::Reader::Chunk>&) {
  return Status::Ok();
}

float FeatureExtractor::pretrain(int, int, float) { return 0.0f; }

void FeatureExtractor::setInputSpikes(int) {}

std::optional<power::PowerEstimate> FeatureExtractor::powerEstimate(
    const power::FullHdWorkload& workload) const {
  const ExtractorInfo meta = info();
  const power::TrueNorthPowerModel model;
  switch (meta.coding) {
    case CodingScheme::kRateAccumulate:
      return model.napprox(workload, meta.spikeWindow,
                           meta.paperCoresPerCell);
    case CodingScheme::kStochasticStream:
      return model.parrot(workload, meta.spikeWindow, meta.paperCoresPerCell);
    case CodingScheme::kNone:
      break;
  }
  if (meta.fpgaBaseline) {
    const power::FpgaPowerModel fpga;
    power::PowerEstimate estimate;
    estimate.approach = "High-precision HoG on FPGA";
    estimate.signalResolution = std::to_string(fpga.bits) + "-bit";
    estimate.watts = fpga.systemWatts;  // system; logic-only is 1.12 W
    return estimate;
  }
  return std::nullopt;
}

}  // namespace pcnn::extract
