#pragma once

#include <memory>
#include <string>
#include <vector>

#include "extract/extractor.hpp"
#include "hog/fixed_point.hpp"
#include "hog/hog.hpp"
#include "napprox/napprox.hpp"
#include "napprox/quantized.hpp"
#include "parrot/parrot.hpp"

namespace pcnn::extract {

/// Classic floating-point Dalal-Triggs HoG (9 unsigned bins, weighted
/// voting) -- the software reference every other backend is compared to.
class HogBackend final : public FeatureExtractor {
 public:
  HogBackend(std::string name, FeatureLayout layout,
             const hog::HogParams& params = {}, int windowCellsX = 8,
             int windowCellsY = 16);

  hog::CellGrid cellGrid(const vision::Image& image) override;
  std::vector<float> windowFeatures(const vision::Image& window) override;
  ExtractorInfo info() const override;

  const hog::HogExtractor& model() const { return model_; }

 private:
  hog::HogExtractor model_;
};

/// Integer-only FPGA-style HoG ("FPGA-HoG" in Fig. 4). Cell histograms are
/// integer; the shared block stage consumes them dequantized so both heads
/// see the same float feature space as every other backend.
class FixedPointBackend final : public FeatureExtractor {
 public:
  FixedPointBackend(std::string name, FeatureLayout layout,
                    const hog::FixedPointHogParams& params = {},
                    int windowCellsX = 8, int windowCellsY = 16);

  hog::CellGrid cellGrid(const vision::Image& image) override;
  ExtractorInfo info() const override;

  const hog::FixedPointHog& model() const { return model_; }

 private:
  hog::FixedPointHog model_;
};

/// NApprox HoG, float ("NApprox(fp)" in Fig. 4): 18 signed bins, count
/// voting, TrueNorth-friendly primitives in full precision.
class NApproxBackend final : public FeatureExtractor {
 public:
  NApproxBackend(std::string name, FeatureLayout layout,
                 const napprox::NApproxParams& params = {},
                 int windowCellsX = 8, int windowCellsY = 16);

  hog::CellGrid cellGrid(const vision::Image& image) override;
  std::vector<float> windowFeatures(const vision::Image& window) override;
  std::vector<std::vector<float>> batchFeatures(
      const std::vector<vision::Image>& windows) override;
  ExtractorInfo info() const override;

  const napprox::NApproxHog& model() const { return model_; }

 private:
  napprox::NApproxHog model_;
};

/// NApprox HoG at TrueNorth precision ("NApprox" in Fig. 4): rate-coded
/// inputs over a spike window, integer projections.
class QuantizedNApproxBackend final : public FeatureExtractor {
 public:
  QuantizedNApproxBackend(std::string name, FeatureLayout layout,
                          const napprox::NApproxParams& params = {},
                          const napprox::QuantizedParams& quant = {},
                          int windowCellsX = 8, int windowCellsY = 16);

  hog::CellGrid cellGrid(const vision::Image& image) override;
  std::vector<float> windowFeatures(const vision::Image& window) override;
  ExtractorInfo info() const override;

  const napprox::QuantizedNApproxHog& model() const { return model_; }

 protected:
  /// Persists the quantization point plus the compiled NApprox corelet's
  /// TrueNorth model (the deployable artifact); loading re-derives both
  /// and verifies the stored copy matches -- a bundle compiled by another
  /// build must describe the same hardware mapping.
  Status saveStateBody(io::Writer& writer) override;
  Status loadStateBody(const std::vector<io::Reader::Chunk>& chunks) override;

 private:
  napprox::QuantizedNApproxHog model_;
};

/// TrueNorth cores per cell of our deployed NApprox corelet (the paper's
/// module uses 26). Computed once from the tick-accurate corelet mapping.
int napproxCoreletCoresPerCell();

/// Parrot HoG: the trained Eedn cell network with optional stochastic
/// input coding. Stateful -- stochastic draws come from the extractor's
/// coding RNG stream -- so batches pre-draw per-window seeds instead of
/// fanning windowFeatures out directly.
class ParrotBackend final : public FeatureExtractor {
 public:
  ParrotBackend(std::string name, FeatureLayout layout,
                const parrot::ParrotConfig& config = {}, int windowCellsX = 8,
                int windowCellsY = 16);

  hog::CellGrid cellGrid(const vision::Image& image) override;
  std::vector<float> windowFeatures(const vision::Image& window) override;
  std::vector<std::vector<float>> batchFeatures(
      const std::vector<vision::Image>& windows) override;
  ExtractorInfo info() const override;
  float pretrain(int numSamples, int epochs, float learningRate) override;
  void setInputSpikes(int spikes) override;
  bool statelessExtraction() const override { return false; }
  bool hasTrainedState() const override { return true; }

  parrot::ParrotHog& parrot() { return model_; }

 protected:
  /// Persists the trained Eedn cell network (an embedded "PEDN" stream),
  /// so a loaded Parrot skips stage-A pretraining entirely.
  Status saveStateBody(io::Writer& writer) override;
  Status loadStateBody(const std::vector<io::Reader::Chunk>& chunks) override;

 private:
  parrot::ParrotHog model_;
};

}  // namespace pcnn::extract
