#include "extract/registry.hpp"

#include <sstream>
#include <stdexcept>
#include <utility>

#include "extract/backends.hpp"

namespace pcnn::extract {

namespace {

/// Parses "<N>spike" -> N; returns -1 when the variant has another shape.
int parseSpikes(const std::string& variant) {
  const std::string suffix = "spike";
  if (variant.size() <= suffix.size() ||
      variant.compare(variant.size() - suffix.size(), suffix.size(),
                      suffix) != 0) {
    return -1;
  }
  const std::string digits = variant.substr(0, variant.size() - suffix.size());
  int value = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') return -1;
    value = value * 10 + (c - '0');
  }
  return digits.empty() ? -1 : value;
}

/// The spec grammar of the built-in backends, appended to every rejection
/// so a typo'd CLI flag tells the user what would have been accepted.
const char* specGrammar() {
  return "known specs: hog, fixedpoint, napprox[:fp|:<N>spike], "
         "parrot[:exact|:<N>spike], with N a power of two in 1..64 "
         "(e.g. \"parrot:32spike\")";
}

[[noreturn]] void badVariant(const std::string& spec) {
  throw std::invalid_argument("ExtractorRegistry: unknown variant in \"" +
                              spec + "\"; " + specGrammar());
}

/// Every spike-coded deployment in the paper uses a power-of-two window
/// (Table 2: 64/32/4/1; Fig. 6: 32..1), and the corelet builders assume
/// one -- so "parrot:9spike" is a malformed spec, not a new operating
/// point.
void checkSpikeCount(const std::string& spec, int spikes) {
  const bool powerOfTwo = spikes > 0 && (spikes & (spikes - 1)) == 0;
  if (!powerOfTwo || spikes > 64) {
    throw std::invalid_argument(
        "ExtractorRegistry: spike count " + std::to_string(spikes) +
        " in \"" + spec + "\" must be a power of two in 1..64; " +
        specGrammar());
  }
}

}  // namespace

ExtractorRegistry& ExtractorRegistry::instance() {
  static ExtractorRegistry registry;
  return registry;
}

ExtractorRegistry::ExtractorRegistry() {
  add("hog", [](const std::string& spec, const std::string& variant,
                const ExtractorOptions& options)
          -> std::shared_ptr<FeatureExtractor> {
    if (!variant.empty()) badVariant(spec);
    return std::make_shared<HogBackend>(spec, options.layout,
                                        hog::HogParams{},
                                        options.windowCellsX,
                                        options.windowCellsY);
  });
  add("fixedpoint", [](const std::string& spec, const std::string& variant,
                       const ExtractorOptions& options)
          -> std::shared_ptr<FeatureExtractor> {
    if (!variant.empty()) badVariant(spec);
    return std::make_shared<FixedPointBackend>(spec, options.layout,
                                               hog::FixedPointHogParams{},
                                               options.windowCellsX,
                                               options.windowCellsY);
  });
  add("napprox", [](const std::string& spec, const std::string& variant,
                    const ExtractorOptions& options)
          -> std::shared_ptr<FeatureExtractor> {
    if (variant.empty() || variant == "fp") {
      return std::make_shared<NApproxBackend>(spec, options.layout,
                                              napprox::NApproxParams{},
                                              options.windowCellsX,
                                              options.windowCellsY);
    }
    const int spikes = parseSpikes(variant);
    if (spikes <= 0) badVariant(spec);
    checkSpikeCount(spec, spikes);
    napprox::QuantizedParams quant;
    quant.spikeWindow = spikes;
    return std::make_shared<QuantizedNApproxBackend>(
        spec, options.layout, napprox::NApproxParams{}, quant,
        options.windowCellsX, options.windowCellsY);
  });
  add("parrot", [](const std::string& spec, const std::string& variant,
                   const ExtractorOptions& options)
          -> std::shared_ptr<FeatureExtractor> {
    parrot::ParrotConfig config;
    config.seed = options.seed;
    if (variant.empty() || variant == "exact") {
      config.inputSpikes = 0;
    } else {
      const int spikes = parseSpikes(variant);
      if (spikes <= 0) badVariant(spec);
      checkSpikeCount(spec, spikes);
      config.inputSpikes = spikes;
    }
    return std::make_shared<ParrotBackend>(spec, options.layout, config,
                                           options.windowCellsX,
                                           options.windowCellsY);
  });
}

void ExtractorRegistry::add(const std::string& base, Factory factory) {
  factories_[base] = std::move(factory);
}

bool ExtractorRegistry::contains(const std::string& base) const {
  return factories_.count(base) > 0;
}

std::vector<std::string> ExtractorRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [base, factory] : factories_) out.push_back(base);
  return out;
}

std::shared_ptr<FeatureExtractor> ExtractorRegistry::create(
    const std::string& spec, const ExtractorOptions& options) const {
  const std::size_t colon = spec.find(':');
  const std::string base = spec.substr(0, colon);
  const std::string variant =
      colon == std::string::npos ? "" : spec.substr(colon + 1);
  const auto it = factories_.find(base);
  if (it == factories_.end()) {
    std::string registered;
    for (const auto& [name, factory] : factories_) {
      if (!registered.empty()) registered += ", ";
      registered += name;
    }
    throw std::invalid_argument("ExtractorRegistry: unknown extractor \"" +
                                base + "\" (registered: " + registered +
                                "); " + specGrammar());
  }
  return it->second(spec, variant, options);
}

StatusOr<std::shared_ptr<FeatureExtractor>> ExtractorRegistry::tryCreate(
    const std::string& spec, const ExtractorOptions& options) const {
  try {
    return create(spec, options);
  } catch (const std::invalid_argument& e) {
    return Status::InvalidArgument(e.what());
  } catch (const std::exception& e) {
    return Status::Internal(std::string("ExtractorRegistry: ") + e.what());
  }
}

void recordExtractorManifest(io::Manifest& manifest, const std::string& spec,
                             const ExtractorOptions& options) {
  manifest.set(io::keys::kSpec, spec);
  manifest.set(io::keys::kLayout, layoutName(options.layout));
  manifest.set(io::keys::kWindowCellsX,
               std::to_string(options.windowCellsX));
  manifest.set(io::keys::kWindowCellsY,
               std::to_string(options.windowCellsY));
  manifest.set(io::keys::kSeed, std::to_string(options.seed));
}

StatusOr<ExtractorOptions> extractorOptionsFromManifest(
    const io::Manifest& manifest) {
  ExtractorOptions options;
  const std::string layout =
      manifest.get(io::keys::kLayout, layoutName(options.layout));
  if (layout == layoutName(FeatureLayout::kFlatCell)) {
    options.layout = FeatureLayout::kFlatCell;
  } else if (layout == layoutName(FeatureLayout::kBlockNorm)) {
    options.layout = FeatureLayout::kBlockNorm;
  } else {
    return Status::InvalidArgument(
        "bundle manifest: unknown feature layout \"" + layout + "\"");
  }
  // Cell counts and seed default to ExtractorOptions{} when absent -- a
  // minimal manifest with only a spec still reconstructs.
  if (manifest.find(io::keys::kWindowCellsX) != nullptr) {
    StatusOr<long> cells = manifest.getInt(io::keys::kWindowCellsX);
    if (!cells.ok()) return cells.status();
    options.windowCellsX = static_cast<int>(cells.value());
  }
  if (manifest.find(io::keys::kWindowCellsY) != nullptr) {
    StatusOr<long> cells = manifest.getInt(io::keys::kWindowCellsY);
    if (!cells.ok()) return cells.status();
    options.windowCellsY = static_cast<int>(cells.value());
  }
  if (options.windowCellsX < 1 || options.windowCellsX > 4096 ||
      options.windowCellsY < 1 || options.windowCellsY > 4096) {
    return Status::OutOfRange(
        "bundle manifest: window cell counts " +
        std::to_string(options.windowCellsX) + "x" +
        std::to_string(options.windowCellsY) + " outside 1..4096");
  }
  if (manifest.find(io::keys::kSeed) != nullptr) {
    StatusOr<long> seed = manifest.getInt(io::keys::kSeed);
    if (!seed.ok()) return seed.status();
    options.seed = static_cast<std::uint64_t>(seed.value());
  }
  return options;
}

Status ExtractorRegistry::packExtractor(io::Bundle& bundle,
                                        FeatureExtractor& extractor,
                                        const ExtractorOptions& options) const {
  recordExtractorManifest(bundle.manifest(), extractor.name(), options);
  std::ostringstream state;
  if (Status status = extractor.trySaveState(state); !status.ok()) {
    return status;
  }
  bundle.setChunk(io::chunks::kExtractorState, state.str());
  return Status::Ok();
}

StatusOr<std::shared_ptr<FeatureExtractor>> ExtractorRegistry::tryLoadExtractor(
    const io::Bundle& bundle) const {
  const std::string* spec = bundle.manifest().find(io::keys::kSpec);
  if (spec == nullptr) {
    return Status::DataLoss("bundle manifest: no extractor spec");
  }
  StatusOr<ExtractorOptions> options =
      extractorOptionsFromManifest(bundle.manifest());
  if (!options.ok()) return options.status();
  StatusOr<std::shared_ptr<FeatureExtractor>> extractor =
      tryCreate(*spec, options.value());
  if (!extractor.ok()) return extractor.status();
  if (const std::string* state =
          bundle.chunk(io::chunks::kExtractorState)) {
    std::istringstream in(*state);
    if (Status status = extractor.value()->tryLoadState(in); !status.ok()) {
      return status;
    }
  }
  return extractor;
}

Status ExtractorRegistry::trySaveBundle(FeatureExtractor& extractor,
                                        const ExtractorOptions& options,
                                        const std::string& path) const {
  io::Bundle bundle;
  if (Status status = packExtractor(bundle, extractor, options);
      !status.ok()) {
    return status;
  }
  return bundle.trySaveFile(path);
}

StatusOr<std::shared_ptr<FeatureExtractor>> ExtractorRegistry::tryLoadBundle(
    const std::string& path) const {
  StatusOr<io::Bundle> bundle = io::Bundle::tryLoadFile(path);
  if (!bundle.ok()) return bundle.status();
  return tryLoadExtractor(bundle.value());
}

std::shared_ptr<FeatureExtractor> makeExtractor(const std::string& spec,
                                                FeatureLayout layout) {
  ExtractorOptions options;
  options.layout = layout;
  return ExtractorRegistry::instance().create(spec, options);
}

std::shared_ptr<FeatureExtractor> makeExtractor(
    const std::string& spec, const ExtractorOptions& options) {
  return ExtractorRegistry::instance().create(spec, options);
}

const std::vector<std::string>& table2Specs() {
  static const std::vector<std::string> specs = {
      "fixedpoint", "napprox:64spike", "parrot:32spike", "parrot:4spike",
      "parrot:1spike"};
  return specs;
}

std::vector<power::PowerEstimate> table2FromRegistry(
    const power::FullHdWorkload& workload) {
  std::vector<power::PowerEstimate> rows;
  for (const std::string& spec : table2Specs()) {
    const auto extractor = makeExtractor(spec);
    if (const auto row = extractor->powerEstimate(workload)) {
      rows.push_back(*row);
    }
  }
  return rows;
}

}  // namespace pcnn::extract
