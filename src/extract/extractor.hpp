#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "hog/hog.hpp"
#include "io/io.hpp"
#include "obs/obs.hpp"
#include "power/power.hpp"
#include "vision/image.hpp"

namespace pcnn::extract {

/// Which feature vector an extractor emits for a detection window.
///
/// The paper runs every extractor through the same two downstream heads:
/// the SVM consumes overlapping 2x2-cell L2-normalized blocks (Fig. 4),
/// while the Eedn classifier consumes the flat concatenation of cell
/// histograms with block normalization elided (Fig. 5, Sec. 5 -- the norm
/// is costly on TrueNorth). Both layouts are assembled from the same
/// per-cell histogram grid, so one extractor instance serves either head.
enum class FeatureLayout {
  kFlatCell,   ///< windowCellsX * windowCellsY * bins, no normalization
  kBlockNorm,  ///< 2x2-cell blocks, 1-cell stride, L2-normalized
};

const char* layoutName(FeatureLayout layout);

/// How the extractor's inputs are delivered on TrueNorth -- determines the
/// throughput (and therefore the module count and power) of a deployment.
enum class CodingScheme {
  kNone,              ///< not spike-coded (software model / FPGA)
  kRateAccumulate,    ///< rate code accumulated for spikeWindow ticks
                      ///< (NApprox: one cell per spikeWindow+overhead ticks)
  kStochasticStream,  ///< stochastic code, pipelined output every tick
                      ///< (Parrot: 1000/spikes cells/s per module)
};

/// Deployment metadata an extractor reports about itself: the resource and
/// precision numbers that feed the Table-2 power model and the Sec. 5.1
/// core accounting (core::ResourceBudget). Zeroed fields mean "not
/// applicable" -- e.g. a float software model has no TrueNorth mapping.
struct ExtractorInfo {
  std::string precision;        ///< human-readable signal resolution
  CodingScheme coding = CodingScheme::kNone;
  int spikeWindow = 0;          ///< coding window in ticks (0 = exact)
  int coresPerCell = 0;         ///< our mapped TrueNorth cores per 8x8 cell
  int paperCoresPerCell = 0;    ///< the paper module's cores per cell
  bool fpgaBaseline = false;    ///< true for the fixed-point FPGA design
};

/// A half-open rectangle of cells [cx0, cx1) x [cy0, cy1) inside a cell
/// grid -- the unit of incremental recomputation (tryUpdateCellGrid /
/// updateBlocks).
struct CellRect {
  int cx0 = 0;
  int cy0 = 0;
  int cx1 = 0;
  int cy1 = 0;
};

/// Polymorphic feature-extraction stage of the partitioned pipeline.
///
/// Captures the contract the system grew implicitly across PR 1: features
/// are assembled from a per-cell histogram grid (hog::CellGrid) that is
/// computed once per image and shared by every window over it, plus
/// whole-window and whole-batch convenience paths. The four backends
/// (classic HoG, fixed-point FPGA HoG, NApprox, Parrot) all implement this
/// interface in both feature layouts; consumers (core::GridDetector,
/// core::PartitionedPipeline, svm mining, the benches) are written against
/// it, so a new backend is a single registry entry away from every harness.
///
/// Threading contract: cellGrid / windowFeatures / batchFeatures may be
/// stateful (the Parrot draws stochastic-coding noise from an internal RNG
/// stream) and must be called from one thread at a time. windowFromGrid is
/// const and re-entrant: the detector scans window rows concurrently over
/// one shared grid.
class FeatureExtractor {
 public:
  virtual ~FeatureExtractor() = default;

  const std::string& name() const { return name_; }
  FeatureLayout layout() const { return layout_; }
  int bins() const { return bins_; }
  int cellSize() const { return cellSize_; }
  int windowCellsX() const { return windowCellsX_; }
  int windowCellsY() const { return windowCellsY_; }

  /// Length of the feature vector windowFromGrid / windowFeatures emit.
  int featureDim() const;

  /// Per-cell histogram grid of a whole (pyramid-level) image. Computed
  /// once per level and sliced by every window over it.
  virtual hog::CellGrid cellGrid(const vision::Image& image) = 0;

  /// Graceful variant of cellGrid: validates the input and converts any
  /// backend failure (a poisoned level image, a simulator fault taking the
  /// cell computation down) into a typed Status instead of an exception,
  /// so consumers like GridDetector can skip the level and keep the scene.
  /// Failures count into the "extract.failures" obs counter. The failure
  /// unit is one grid -- i.e. every cell of one pyramid level.
  StatusOr<hog::CellGrid> tryCellGrid(const vision::Image& image);

  /// Graceful variant of windowFeatures with the same contract.
  StatusOr<std::vector<float>> tryWindowFeatures(const vision::Image& window);

  /// Incrementally refreshes the given cell rectangles of `grid` from
  /// `image` -- the temporal-reuse path: a persistent per-level grid stays
  /// valid across frames and only the cells whose pixels changed are
  /// recomputed. Each rect is expanded by one cell of pixel context (the
  /// gradient stencil reads 1 px beyond the cell), the expanded region is
  /// cropped and run through the backend's own cellGrid, and the interior
  /// target cells are spliced back. For deterministic backends the
  /// refreshed cells are bitwise-identical to a full-image cellGrid;
  /// stochastic backends (the Parrot's coding RNG is consumed in cell
  /// order) produce valid but differently-coded histograms. `grid` must
  /// have the exact geometry cellGrid(image) would produce. Returns the
  /// number of cells recomputed; on failure the grid contents are
  /// unspecified and the caller should fall back to a full recompute.
  StatusOr<long> tryUpdateCellGrid(const vision::Image& image,
                                   const std::vector<CellRect>& dirty,
                                   hog::CellGrid& grid);

  /// Companion of tryUpdateCellGrid for kBlockNorm extractors: refreshes
  /// every block of `blocks` that covers a cell in `dirtyCells` (each 2x2
  /// block dilates the dirty region by one cell leftward/upward). Returns
  /// the number of blocks refreshed; 0 for kFlatCell layouts.
  long updateBlocks(const hog::CellGrid& grid,
                    const std::vector<CellRect>& dirtyCells,
                    hog::BlockGrid& blocks) const;

  /// Features of the window whose top-left cell is (cx0, cy0), sliced out
  /// of a cached grid. Bitwise-identical to extracting the same window's
  /// sub-grid and assembling it standalone. Const and re-entrant.
  std::vector<float> windowFromGrid(const hog::CellGrid& grid, int cx0,
                                    int cy0) const;

  /// Precomputes the per-level normalized block grid (kBlockNorm only --
  /// returns an empty grid for kFlatCell, which has no block structure).
  /// Every block is assembled and L2-normalized once; windowFromBlocks
  /// then slices windows out of it with plain copies, instead of
  /// re-normalizing each block for each of the up to 4 windows covering
  /// it. Const and re-entrant.
  hog::BlockGrid prepareBlocks(const hog::CellGrid& grid) const;

  /// windowFromGrid equivalent over a grid prepared by prepareBlocks:
  /// bitwise-identical features, amortized block normalization. Only valid
  /// for kBlockNorm extractors. Const and re-entrant.
  std::vector<float> windowFromBlocks(const hog::BlockGrid& blocks, int cx0,
                                      int cy0) const;

  /// Features of one standalone window (== windowFromGrid(cellGrid(w),0,0)
  /// by default; backends with a native per-window path override to share
  /// it, and the conformance suite checks the two stay bitwise-identical).
  virtual std::vector<float> windowFeatures(const vision::Image& window);

  /// windowFeatures over a batch. Stateless backends run on the global
  /// thread pool; results match the sequential loop bit-for-bit at any
  /// thread count. Stateful backends (Parrot) pre-draw one coding seed per
  /// window so their batch is deterministic for a given extractor state
  /// regardless of the thread count (but consumes the RNG stream
  /// differently than the sequential loop would).
  virtual std::vector<std::vector<float>> batchFeatures(
      const std::vector<vision::Image>& windows);

  /// Deployment metadata (precision, coding, core counts).
  virtual ExtractorInfo info() const = 0;

  /// Stage A of the paper's co-training: trains the extractor itself
  /// (Sec. 3.2 -- the Parrot mimics NApprox on generated oriented samples).
  /// Returns the final-epoch loss; no-op returning 0 for fixed-function
  /// extractors.
  virtual float pretrain(int numSamples, int epochs, float learningRate);

  /// Changes the input spike-coding window without retraining (the Fig. 6
  /// precision sweep). No-op for extractors without a coded input stage.
  virtual void setInputSpikes(int spikes);

  /// True when feature extraction mutates no state, so batches may fan out
  /// per-window on the thread pool.
  virtual bool statelessExtraction() const { return true; }

  /// True when the extractor carries state worth persisting beyond its
  /// construction parameters (the Parrot's trained Eedn weights). Fixed-
  /// function extractors return false -- their saved state is just the
  /// geometry header, and loading it only validates compatibility.
  virtual bool hasTrainedState() const { return false; }

  /// Serializes the extractor's state ("PXST" v1 over io::Writer): a META
  /// chunk carrying name + geometry, then backend-specific chunks
  /// (saveStateBody). Together with the registry spec this is everything
  /// needed to reconstruct the extractor without re-running stage-A
  /// pretraining. May mutate transient caches (compiled plans) but not the
  /// extracted features.
  Status trySaveState(std::ostream& out);
  Status trySaveStateFile(const std::string& path);

  /// Restores state saved by trySaveState into this extractor. The META
  /// chunk must match this instance's name and geometry exactly
  /// (kFailedPrecondition otherwise): state is loaded into an extractor
  /// built from the same spec + options, never coerced across specs.
  /// Unknown chunks are skipped (forward compat).
  Status tryLoadState(std::istream& in);
  Status tryLoadStateFile(const std::string& path);

  /// Table-2 power row for this extractor under the given workload, or
  /// nullopt when the extractor has no hardware deployment (pure software
  /// models). Derived from info() via power::TrueNorthPowerModel /
  /// power::FpgaPowerModel.
  std::optional<power::PowerEstimate> powerEstimate(
      const power::FullHdWorkload& workload = {}) const;

 protected:
  FeatureExtractor(std::string name, FeatureLayout layout, int bins,
                   int windowCellsX, int windowCellsY, int cellSize = 8);

  /// RAII instrumentation for one batchFeatures call: a trace span plus
  /// the backend's "extract.<name>.batch_us" latency histogram and the
  /// global "extract.windows" counter. Backends overriding batchFeatures
  /// open one at entry so every implementation reports identically.
  class BatchScope {
   public:
    BatchScope(FeatureExtractor& extractor, std::size_t windows);

   private:
    obs::Span span_;
    obs::ScopedTimer timer_;
  };

  /// Backend hook appending state chunks after the META chunk. The default
  /// writes nothing (fixed-function extractors are fully described by
  /// their construction parameters).
  virtual Status saveStateBody(io::Writer& writer);

  /// Backend hook consuming the chunks that followed META. Receives every
  /// remaining chunk (unknown tags included -- ignore what you do not
  /// recognize). The default accepts anything.
  virtual Status loadStateBody(const std::vector<io::Reader::Chunk>& chunks);

 private:
  std::string name_;
  FeatureLayout layout_;
  int bins_;
  int cellSize_;
  int windowCellsX_;
  int windowCellsY_;
  hog::HogExtractor blockAssembler_;  ///< block slicing for kBlockNorm
  /// Resolved once at construction; see BatchScope.
  obs::LatencyHistogram* batchUs_;
};

}  // namespace pcnn::extract
