#include "extract/backends.hpp"

#include <sstream>
#include <utility>

#include "eedn/serialize.hpp"
#include "napprox/corelet.hpp"
#include "parrot/generator.hpp"
#include "tn/model_io.hpp"

namespace pcnn::extract {

// --- HogBackend -----------------------------------------------------------

HogBackend::HogBackend(std::string name, FeatureLayout layout,
                       const hog::HogParams& params, int windowCellsX,
                       int windowCellsY)
    : FeatureExtractor(std::move(name), layout, params.numBins, windowCellsX,
                       windowCellsY, params.cellSize),
      model_(params) {}

hog::CellGrid HogBackend::cellGrid(const vision::Image& image) {
  return model_.computeCells(image);
}

std::vector<float> HogBackend::windowFeatures(const vision::Image& window) {
  return layout() == FeatureLayout::kFlatCell
             ? model_.cellDescriptor(window)
             : model_.windowDescriptor(window);
}

ExtractorInfo HogBackend::info() const {
  ExtractorInfo meta;
  meta.precision = "float (software reference)";
  return meta;
}

// --- FixedPointBackend ----------------------------------------------------

FixedPointBackend::FixedPointBackend(std::string name, FeatureLayout layout,
                                     const hog::FixedPointHogParams& params,
                                     int windowCellsX, int windowCellsY)
    : FeatureExtractor(std::move(name), layout, params.numBins, windowCellsX,
                       windowCellsY, params.cellSize),
      model_(params) {}

hog::CellGrid FixedPointBackend::cellGrid(const vision::Image& image) {
  const hog::FixedPointHog::IntCellGrid intGrid = model_.computeCells(image);
  hog::CellGrid grid;
  grid.cellsX = intGrid.cellsX;
  grid.cellsY = intGrid.cellsY;
  grid.bins = intGrid.bins;
  grid.data.assign(intGrid.data.begin(), intGrid.data.end());
  return grid;
}

ExtractorInfo FixedPointBackend::info() const {
  ExtractorInfo meta;
  meta.precision = "16-bit fixed point";
  meta.fpgaBaseline = true;
  return meta;
}

// --- NApproxBackend -------------------------------------------------------

NApproxBackend::NApproxBackend(std::string name, FeatureLayout layout,
                               const napprox::NApproxParams& params,
                               int windowCellsX, int windowCellsY)
    : FeatureExtractor(std::move(name), layout, params.bins, windowCellsX,
                       windowCellsY, params.cellSize),
      model_(params) {}

hog::CellGrid NApproxBackend::cellGrid(const vision::Image& image) {
  return model_.computeCells(image);
}

std::vector<float> NApproxBackend::windowFeatures(
    const vision::Image& window) {
  return layout() == FeatureLayout::kFlatCell
             ? model_.cellDescriptor(window)
             : model_.windowDescriptor(window);
}

std::vector<std::vector<float>> NApproxBackend::batchFeatures(
    const std::vector<vision::Image>& windows) {
  if (layout() == FeatureLayout::kFlatCell) {
    BatchScope scope(*this, windows.size());
    return model_.cellDescriptorBatch(windows);
  }
  return FeatureExtractor::batchFeatures(windows);
}

ExtractorInfo NApproxBackend::info() const {
  ExtractorInfo meta;
  meta.precision = "float";
  // The float model maps to the same corelet structure once quantized, so
  // report the mapping's footprint for the Sec. 5.1 core accounting.
  meta.coresPerCell = napproxCoreletCoresPerCell();
  meta.paperCoresPerCell = 26;
  return meta;
}

// --- QuantizedNApproxBackend ----------------------------------------------

QuantizedNApproxBackend::QuantizedNApproxBackend(
    std::string name, FeatureLayout layout,
    const napprox::NApproxParams& params,
    const napprox::QuantizedParams& quant, int windowCellsX, int windowCellsY)
    : FeatureExtractor(std::move(name), layout, params.bins, windowCellsX,
                       windowCellsY, params.cellSize),
      model_(params, quant) {}

hog::CellGrid QuantizedNApproxBackend::cellGrid(const vision::Image& image) {
  return model_.computeCells(image);
}

std::vector<float> QuantizedNApproxBackend::windowFeatures(
    const vision::Image& window) {
  return layout() == FeatureLayout::kFlatCell
             ? model_.cellDescriptor(window)
             : model_.windowDescriptor(window);
}

ExtractorInfo QuantizedNApproxBackend::info() const {
  ExtractorInfo meta;
  const int spikes = model_.quant().spikeWindow;
  meta.precision = std::to_string(spikes) + "-spike rate code";
  meta.coding = CodingScheme::kRateAccumulate;
  meta.spikeWindow = spikes;
  meta.coresPerCell = napproxCoreletCoresPerCell();
  meta.paperCoresPerCell = 26;
  return meta;
}

int napproxCoreletCoresPerCell() {
  static const int cores = [] {
    const napprox::QuantizedNApproxHog model(
        {}, {}, napprox::QuantizedMode::kTickAccurate);
    return napprox::NApproxCorelet(model).coreCount();
  }();
  return cores;
}

// --- ParrotBackend --------------------------------------------------------

ParrotBackend::ParrotBackend(std::string name, FeatureLayout layout,
                             const parrot::ParrotConfig& config,
                             int windowCellsX, int windowCellsY)
    : FeatureExtractor(std::move(name), layout, config.bins, windowCellsX,
                       windowCellsY),
      model_(config) {}

hog::CellGrid ParrotBackend::cellGrid(const vision::Image& image) {
  return model_.computeCells(image);
}

std::vector<float> ParrotBackend::windowFeatures(const vision::Image& window) {
  if (layout() == FeatureLayout::kFlatCell) {
    return model_.cellDescriptor(window);
  }
  return FeatureExtractor::windowFeatures(window);
}

std::vector<std::vector<float>> ParrotBackend::batchFeatures(
    const std::vector<vision::Image>& windows) {
  BatchScope scope(*this, windows.size());
  // The parrot's own batch path pre-draws one coding seed per window, so
  // the batch is deterministic for any thread count. The block layout
  // reshapes each flat result back into its cell grid and runs the shared
  // block stage over it -- identical to assembling from cellGrid().
  std::vector<std::vector<float>> flat = model_.cellDescriptorBatch(windows);
  if (layout() == FeatureLayout::kFlatCell) return flat;
  std::vector<std::vector<float>> out(windows.size());
  for (std::size_t i = 0; i < windows.size(); ++i) {
    hog::CellGrid grid;
    grid.cellsX = windows[i].width() / cellSize();
    grid.cellsY = windows[i].height() / cellSize();
    grid.bins = bins();
    grid.data = std::move(flat[i]);
    out[i] = windowFromGrid(grid, 0, 0);
  }
  return out;
}

ExtractorInfo ParrotBackend::info() const {
  ExtractorInfo meta;
  const int spikes = model_.config().inputSpikes;
  meta.precision = spikes > 0
                       ? std::to_string(spikes) + "-spike stochastic"
                       : "float (exact inputs)";
  meta.coding = spikes > 0 ? CodingScheme::kStochasticStream
                           : CodingScheme::kNone;
  meta.spikeWindow = spikes;
  meta.coresPerCell = model_.mappedCoresPerCell();
  meta.paperCoresPerCell = model_.config().paperCoresPerCell;
  return meta;
}

float ParrotBackend::pretrain(int numSamples, int epochs,
                              float learningRate) {
  const parrot::OrientedSampleGenerator generator;
  return model_.train(generator, numSamples, epochs, learningRate);
}

void ParrotBackend::setInputSpikes(int spikes) {
  model_.setInputSpikes(spikes);
}

Status QuantizedNApproxBackend::saveStateBody(io::Writer& writer) {
  std::ostringstream payload;
  io::Writer pw(payload);
  pw.u32(static_cast<std::uint32_t>(model_.quant().spikeWindow));
  pw.i32(model_.quant().weightScale);
  pw.i32(model_.quant().rampLeak);
  pw.i32(model_.effectiveThreshold());
  if (!pw.status().ok()) return pw.status();
  if (Status status = writer.chunk("QNAP", payload.str()); !status.ok()) {
    return status;
  }

  napprox::NApproxCorelet corelet(model_);
  std::ostringstream tnModel;
  if (Status status = tn::trySaveModel(corelet.network(), tnModel);
      !status.ok()) {
    return status;
  }
  return writer.chunk("TNMD", tnModel.str());
}

Status QuantizedNApproxBackend::loadStateBody(
    const std::vector<io::Reader::Chunk>& chunks) {
  bool sawParams = false;
  for (const io::Reader::Chunk& chunk : chunks) {
    if (chunk.tag == "QNAP") {
      std::istringstream payload(chunk.payload);
      io::Reader pr(payload);
      std::uint32_t spikeWindow = 0;
      std::int32_t weightScale = 0, rampLeak = 0, threshold = 0;
      pr.u32(spikeWindow);
      pr.i32(weightScale);
      pr.i32(rampLeak);
      if (!pr.i32(threshold).ok()) return pr.status();
      if (spikeWindow != static_cast<std::uint32_t>(
                             model_.quant().spikeWindow) ||
          weightScale != model_.quant().weightScale ||
          rampLeak != model_.quant().rampLeak ||
          threshold != model_.effectiveThreshold()) {
        return Status::FailedPrecondition(
            "loadState: quantization point mismatch for \"" + name() + "\"");
      }
      sawParams = true;
    } else if (chunk.tag == "TNMD") {
      // The stored corelet model must describe the same hardware mapping
      // this build derives from the quantization point.
      std::istringstream payload(chunk.payload);
      StatusOr<std::unique_ptr<tn::Network>> stored =
          tn::tryLoadModel(payload);
      if (!stored.ok()) return stored.status();
      napprox::NApproxCorelet corelet(model_);
      if (stored.value()->coreCount() != corelet.coreCount()) {
        return Status::DataLoss(
            "loadState: stored corelet has " +
            std::to_string(stored.value()->coreCount()) + " cores, this " +
            "build maps " + std::to_string(corelet.coreCount()));
      }
    }
  }
  if (!sawParams) {
    return Status::DataLoss("loadState: napprox state has no QNAP chunk");
  }
  return Status::Ok();
}

Status ParrotBackend::saveStateBody(io::Writer& writer) {
  std::ostringstream net;
  const parrot::ParrotHog& model = model_;
  if (Status status = eedn::trySaveNetwork(model.net(), net); !status.ok()) {
    return status;
  }
  return writer.chunk("EEDN", net.str());
}

Status ParrotBackend::loadStateBody(
    const std::vector<io::Reader::Chunk>& chunks) {
  for (const io::Reader::Chunk& chunk : chunks) {
    if (chunk.tag != "EEDN") continue;
    std::istringstream payload(chunk.payload);
    // net() marks the compiled inference plan stale, so the next batch
    // recompiles from the loaded weights.
    return eedn::tryLoadNetwork(model_.net(), payload);
  }
  return Status::DataLoss("loadState: parrot state has no EEDN chunk");
}

}  // namespace pcnn::extract
