#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "extract/extractor.hpp"
#include "io/bundle.hpp"

namespace pcnn::extract {

/// Construction-time options shared by every backend factory. The spec
/// string picks the backend and its precision variant; these pick the
/// downstream-facing geometry and layout.
struct ExtractorOptions {
  FeatureLayout layout = FeatureLayout::kFlatCell;
  int windowCellsX = 8;   ///< 64-pixel-wide window at 8-px cells
  int windowCellsY = 16;  ///< 128-pixel-tall window
  std::uint64_t seed = 21;  ///< RNG seed for trained/stochastic backends
};

/// Name -> factory registry for feature-extraction backends.
///
/// A spec string is `base` or `base:variant` -- e.g. "hog", "fixedpoint",
/// "napprox", "napprox:64spike", "parrot:4spike". Pipelines, detectors and
/// benches construct extractors from these strings instead of hand-wiring
/// per-backend lambdas, so adding a backend means registering one factory
/// and every harness picks it up.
///
/// Built-in backends (registered on first use):
///   hog         classic float HoG, 9 unsigned bins, weighted voting
///   fixedpoint  FPGA-style integer HoG (the paper's baseline)
///   napprox     NApprox HoG; variants: "fp" (default, float) or
///               "<N>spike" (TrueNorth-precision rate coding, e.g. 64spike)
///   parrot      Parrot HoG cell network; variants: "exact" (default) or
///               "<N>spike" (stochastic input coding, e.g. 32spike).
///               Construct then pretrain() -- stage A of the co-training.
class ExtractorRegistry {
 public:
  using Factory = std::function<std::shared_ptr<FeatureExtractor>(
      const std::string& spec, const std::string& variant,
      const ExtractorOptions& options)>;

  static ExtractorRegistry& instance();

  /// Registers (or replaces) the factory for a base name.
  void add(const std::string& base, Factory factory);

  bool contains(const std::string& base) const;

  /// Sorted base names of every registered backend.
  std::vector<std::string> names() const;

  /// Constructs an extractor from a spec string. Throws
  /// std::invalid_argument for unknown base names or variants.
  std::shared_ptr<FeatureExtractor> create(
      const std::string& spec, const ExtractorOptions& options = {}) const;

  /// Graceful variant of create: a malformed spec ("parrot:9spike" -- the
  /// spike count must be a power of two -- or an unknown base) yields
  /// kInvalidArgument whose message names the offending spec, lists the
  /// registered backends and spells out the accepted grammar, instead of
  /// an exception. Spec strings often arrive from CLI flags and config
  /// files, so this is the validation point for untrusted input.
  StatusOr<std::shared_ptr<FeatureExtractor>> tryCreate(
      const std::string& spec, const ExtractorOptions& options = {}) const;

  /// Packs an extractor into a bundle: the manifest records the spec (the
  /// extractor's name) and construction options, and the extractor's
  /// serialized state lands in chunks::kExtractorState -- everything
  /// tryLoadExtractor needs to rebuild it without stage-A pretraining.
  Status packExtractor(io::Bundle& bundle, FeatureExtractor& extractor,
                       const ExtractorOptions& options) const;

  /// Reconstructs an extractor from a bundle: tryCreate on the manifest's
  /// spec + options, then state restore from chunks::kExtractorState when
  /// present. A bundle whose manifest lacks a spec is kDataLoss; an
  /// unknown spec reports kInvalidArgument exactly like tryCreate.
  StatusOr<std::shared_ptr<FeatureExtractor>> tryLoadExtractor(
      const io::Bundle& bundle) const;

  /// One-call file forms: pack + save, and load + reconstruct.
  Status trySaveBundle(FeatureExtractor& extractor,
                       const ExtractorOptions& options,
                       const std::string& path) const;
  StatusOr<std::shared_ptr<FeatureExtractor>> tryLoadBundle(
      const std::string& path) const;

 private:
  ExtractorRegistry();
  std::map<std::string, Factory> factories_;
};

/// Stamps an extractor spec + options into a bundle manifest
/// (keys::kSpec, kLayout, kWindowCellsX/Y, kSeed).
void recordExtractorManifest(io::Manifest& manifest, const std::string& spec,
                             const ExtractorOptions& options);

/// Reconstructs ExtractorOptions from a bundle manifest, validating the
/// layout name and the cell counts before anything is built from them.
StatusOr<ExtractorOptions> extractorOptionsFromManifest(
    const io::Manifest& manifest);

/// Convenience: ExtractorRegistry::instance().create(spec, {layout}).
std::shared_ptr<FeatureExtractor> makeExtractor(
    const std::string& spec, FeatureLayout layout = FeatureLayout::kFlatCell);
std::shared_ptr<FeatureExtractor> makeExtractor(
    const std::string& spec, const ExtractorOptions& options);

/// The spec strings whose deployments form the paper's Table 2, in row
/// order: FPGA baseline, NApprox at 64-spike, Parrot at 32/4/1 spikes.
const std::vector<std::string>& table2Specs();

/// Table-2 power rows derived from registry-constructed extractors (one
/// row per table2Specs() entry, via FeatureExtractor::powerEstimate).
std::vector<power::PowerEstimate> table2FromRegistry(
    const power::FullHdWorkload& workload = {});

}  // namespace pcnn::extract
