#pragma once

#include <string>

#include "vision/image.hpp"

namespace pcnn::vision {

/// Writes `img` as a binary PGM (P5, maxval 255). Pixel values are clamped
/// to [0, 1] and scaled to 8 bits. Throws std::runtime_error on I/O failure.
void writePgm(const Image& img, const std::string& path);

/// Reads a binary (P5) or ASCII (P2) PGM file into an Image scaled to
/// [0, 1]. Throws std::runtime_error on malformed input or I/O failure.
Image readPgm(const std::string& path);

}  // namespace pcnn::vision
