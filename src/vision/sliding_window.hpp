#pragma once

#include <functional>
#include <stdexcept>

#include "vision/geometry.hpp"
#include "vision/image.hpp"
#include "vision/pyramid.hpp"

namespace pcnn::vision {

/// Parameters for dense multi-scale window scanning.
struct SlidingWindowParams {
  int windowWidth = 64;
  int windowHeight = 128;
  int strideX = 8;  ///< the paper strides by one HoG cell (8 px)
  int strideY = 8;
  PyramidParams pyramid;
};

/// Calls `fn(levelImage, windowRectInLevel, windowRectInOriginal)` for every
/// window position across all pyramid levels. The original-coordinates rect
/// is the level rect scaled back by the level's scale factor.
///
/// Deprecated: every caller re-crops and re-extracts features one window at
/// a time, recomputing each cell up to 64x. Use forEachWindowOnGrid (one
/// grid per level, windows slice it) or core::GridDetector, which adds
/// parallel scanning, graceful degradation, and the temporal detectBatch
/// path on top. Kept only as the brute-force oracle the benches compare
/// the grid paths against.
[[deprecated(
    "re-extracts features per window; use forEachWindowOnGrid or "
    "core::GridDetector")]]
void forEachWindow(
    const Image& src, const SlidingWindowParams& params,
    const std::function<void(const Image&, const Rect&, const Rect&)>& fn);

/// Total number of windows the scan will visit (for budgeting and tests).
///
/// Deprecated alongside forEachWindow; grid consumers get the same number
/// from the level spans ((cellsX - windowCellsX + 1) etc. per level).
[[deprecated(
    "companion of forEachWindow; compute spans from the level grids")]]
long countWindows(const Image& src, const SlidingWindowParams& params);

/// Grid-aware scan: instead of handing each window its pixel crop (which
/// makes every caller re-extract features a window at a time), the
/// per-level feature grid is computed ONCE by `gridFn` and every window
/// over that level reuses it -- the redundancy-elimination the paper's
/// hardware pipeline is built around (an 8-px stride over 64-px windows
/// recomputes each cell up to 64x otherwise).
///
/// Requirements: strideX/strideY and the window dimensions must be
/// multiples of `cellSize`, so that every window lands on a whole cell.
///
/// `gridFn(levelImage)` returns any grid type (e.g. hog::CellGrid or
/// FixedPointHog::IntCellGrid -- templated so vision stays independent of
/// hog). `fn(levelImage, grid, cx0, cy0, inLevel, inOriginal)` is called
/// per window with the window's top-left cell in the level grid.
template <typename GridFn, typename WindowFn>
void forEachWindowOnGrid(const Image& src, const SlidingWindowParams& params,
                         int cellSize, GridFn&& gridFn, WindowFn&& fn) {
  if (cellSize <= 0 || params.strideX % cellSize != 0 ||
      params.strideY % cellSize != 0 ||
      params.windowWidth % cellSize != 0 ||
      params.windowHeight % cellSize != 0) {
    throw std::invalid_argument(
        "forEachWindowOnGrid: strides and window must be cell-aligned");
  }
  PyramidParams pp = params.pyramid;
  pp.minWidth = params.windowWidth;
  pp.minHeight = params.windowHeight;
  const auto levels = buildPyramid(src, pp);
  const int strideCellsX = params.strideX / cellSize;
  const int strideCellsY = params.strideY / cellSize;
  const int windowCellsX = params.windowWidth / cellSize;
  const int windowCellsY = params.windowHeight / cellSize;
  for (const PyramidLevel& level : levels) {
    const Image& img = level.image;
    const auto grid = gridFn(img);
    const int cellsX = img.width() / cellSize;
    const int cellsY = img.height() / cellSize;
    for (int cy0 = 0; cy0 + windowCellsY <= cellsY; cy0 += strideCellsY) {
      for (int cx0 = 0; cx0 + windowCellsX <= cellsX; cx0 += strideCellsX) {
        Rect inLevel{static_cast<float>(cx0 * cellSize),
                     static_cast<float>(cy0 * cellSize),
                     static_cast<float>(params.windowWidth),
                     static_cast<float>(params.windowHeight)};
        Rect inOriginal{inLevel.x * level.scale, inLevel.y * level.scale,
                        inLevel.w * level.scale, inLevel.h * level.scale};
        fn(img, grid, cx0, cy0, inLevel, inOriginal);
      }
    }
  }
}

}  // namespace pcnn::vision
