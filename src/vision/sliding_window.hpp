#pragma once

#include <functional>

#include "vision/geometry.hpp"
#include "vision/image.hpp"
#include "vision/pyramid.hpp"

namespace pcnn::vision {

/// Parameters for dense multi-scale window scanning.
struct SlidingWindowParams {
  int windowWidth = 64;
  int windowHeight = 128;
  int strideX = 8;  ///< the paper strides by one HoG cell (8 px)
  int strideY = 8;
  PyramidParams pyramid;
};

/// Calls `fn(levelImage, windowRectInLevel, windowRectInOriginal)` for every
/// window position across all pyramid levels. The original-coordinates rect
/// is the level rect scaled back by the level's scale factor.
void forEachWindow(
    const Image& src, const SlidingWindowParams& params,
    const std::function<void(const Image&, const Rect&, const Rect&)>& fn);

/// Total number of windows the scan will visit (for budgeting and tests).
long countWindows(const Image& src, const SlidingWindowParams& params);

}  // namespace pcnn::vision
