#include "vision/nms.hpp"

#include <algorithm>

namespace pcnn::vision {

std::vector<Detection> nonMaximumSuppression(std::vector<Detection> dets,
                                             float epsilon) {
  std::sort(dets.begin(), dets.end(),
            [](const Detection& a, const Detection& b) {
              return a.score > b.score;
            });
  const float threshold = 1.0f - epsilon;
  std::vector<Detection> kept;
  kept.reserve(dets.size());
  for (const Detection& d : dets) {
    bool suppressed = false;
    for (const Detection& k : kept) {
      if (overlapOverMin(d.box, k.box) > threshold) {
        suppressed = true;
        break;
      }
    }
    if (!suppressed) kept.push_back(d);
  }
  return kept;
}

}  // namespace pcnn::vision
