#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "vision/geometry.hpp"
#include "vision/image.hpp"

namespace pcnn::vision {

/// Parameters controlling the synthetic pedestrian dataset.
///
/// The paper trains and evaluates on the INRIA Person Dataset, which is not
/// redistributable here. This generator is the documented substitution
/// (DESIGN.md Section 2): it procedurally renders person-like silhouettes --
/// head, torso, arms and legs with randomized pose, contrast, and clothing
/// texture -- over textured backgrounds, together with structured negatives
/// (poles, boxes, blobs, gratings) that exercise hard-negative mining. What
/// matters for the paper's comparisons is that class separation is carried
/// by oriented-gradient structure, which this preserves.
struct SynthParams {
  int windowWidth = 64;    ///< detection window width (paper: 64)
  int windowHeight = 128;  ///< detection window height (paper: 128)
  int personHeight = 96;   ///< nominal person height inside the window
  float noiseSigma = 0.02f;      ///< additive pixel noise
  float minContrast = 0.12f;     ///< minimum |person - background| intensity
  float maxContrast = 0.45f;
  float poseJitter = 0.12f;      ///< relative limb/pose randomization
};

/// A full scene with ground-truth person boxes (window-aligned, i.e. each
/// box has the 1:2 aspect of the detection window centred on the person).
struct Scene {
  Image image;
  std::vector<Rect> groundTruth;
};

/// Procedural pedestrian dataset generator.
class SyntheticPersonDataset {
 public:
  explicit SyntheticPersonDataset(const SynthParams& params = {})
      : params_(params) {}

  const SynthParams& params() const { return params_; }

  /// A positive training/testing window: one person roughly centred,
  /// randomized pose, contrast polarity, background texture, and noise.
  Image positiveWindow(Rng& rng) const;

  /// A negative window: background texture plus randomly chosen structured
  /// clutter (vertical pole, box, blob, diagonal grating, or plain noise).
  Image negativeWindow(Rng& rng) const;

  /// A full scene of the given size containing `numPersons` people at scales
  /// in [minPersonHeight, maxPersonHeight] plus clutter; ground truth boxes
  /// are window-aligned around each person.
  Scene scene(Rng& rng, int width, int height, int numPersons,
              int minPersonHeight = 96, int maxPersonHeight = 320) const;

  /// Renders a person of pixel height `h`, feet at (footX, footY), into
  /// `img` with the given intensity. Exposed for tests and for composing
  /// custom scenes.
  void renderPerson(Image& img, float footX, float footY, float h,
                    float intensity, Rng& rng) const;

 private:
  void renderClutter(Image& img, Rng& rng, int count) const;
  SynthParams params_;
};

/// Smooth "value noise" texture: coarse random lattice upsampled bilinearly,
/// centred on `base` with amplitude `amplitude`.
Image valueNoise(int width, int height, int cellSize, float base,
                 float amplitude, Rng& rng);

/// Adds i.i.d. Gaussian noise with the given sigma and re-clamps to [0,1].
void addGaussianNoise(Image& img, float sigma, Rng& rng);

}  // namespace pcnn::vision
