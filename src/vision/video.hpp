#pragma once

#include <cstdint>
#include <vector>

#include "vision/geometry.hpp"
#include "vision/image.hpp"
#include "vision/synth.hpp"

namespace pcnn::vision {

/// Parameters of the deterministic synthetic video source.
///
/// Defaults produce the full-HD stream the Table-2 throughput claim is
/// measured against: a textured 1920x1080 background with a handful of
/// persons translating horizontally, entering and leaving at the frame
/// edges, and slowly changing apparent scale.
struct VideoParams {
  int width = 1920;
  int height = 1080;
  int numPersons = 3;
  std::uint64_t seed = 1;
  int minPersonHeight = 140;
  int maxPersonHeight = 280;
  float maxSpeedPx = 4.0f;       ///< max |horizontal speed| in px/frame
  float scaleAmplitude = 0.08f;  ///< relative height oscillation amplitude
  float scalePeriodFrames = 150.0f;  ///< height oscillation period
  SynthParams synth;             ///< person rendering parameters
};

/// Deterministic, seeded synthetic video: persons moving over a static
/// textured background. `frame(i)` is a pure function of (params, i) --
/// frames can be generated in any order, and the same seed reproduces the
/// stream bit for bit.
///
/// The background (texture + clutter + sensor noise) is rendered once at
/// construction and shared by every frame: per-frame i.i.d. noise would
/// touch every pixel and make temporal dirty-tile tracking pointless, so
/// the source deliberately models a static camera with noise folded into
/// the fixed background. Each actor's pose is drawn from a fixed per-actor
/// seed, so its silhouette is rigid across frames and the only
/// frame-to-frame change is the actors' translation and scale.
class SyntheticVideo {
 public:
  explicit SyntheticVideo(const VideoParams& params = {});

  const VideoParams& params() const { return params_; }
  const Image& background() const { return background_; }
  int numActors() const { return static_cast<int>(actors_.size()); }

  /// The frame at `index` (>= 0): background plus every actor at its
  /// position for that frame. Ground-truth boxes are window-aligned like
  /// SyntheticPersonDataset::scene and included for actors whose box
  /// centre is inside the frame.
  Scene frame(int index) const;

  /// The actor's window-aligned box at `index`, whether or not it is
  /// on-screen (for motion-continuity tests).
  Rect actorBox(int actor, int index) const;

  /// True when the actor's box centre is horizontally inside the frame at
  /// `index` (the ground-truth inclusion criterion).
  bool actorVisible(int actor, int index) const;

 private:
  struct Actor {
    float baseHeight = 0.0f;  ///< nominal person height in px
    float speed = 0.0f;       ///< signed horizontal px/frame
    float startX = 0.0f;      ///< foot x at frame 0, in wrap coordinates
    float footY = 0.0f;
    float intensity = 0.0f;
    float scalePhase = 0.0f;
    std::uint64_t poseSeed = 0;  ///< fixed pose -> rigid silhouette
  };

  float actorHeight(const Actor& actor, int index) const;
  float actorFootX(const Actor& actor, int index) const;

  VideoParams params_;
  Image background_;
  std::vector<Actor> actors_;
  float wrapSpan_ = 0.0f;  ///< off-screen margin + width + margin
  float margin_ = 0.0f;
};

}  // namespace pcnn::vision
