#include "vision/image.hpp"

#include <algorithm>
#include <cmath>

namespace pcnn::vision {

float Image::sampleBilinear(float x, float y) const {
  const int x0 = static_cast<int>(std::floor(x));
  const int y0 = static_cast<int>(std::floor(y));
  const float fx = x - static_cast<float>(x0);
  const float fy = y - static_cast<float>(y0);
  const float v00 = atClamped(x0, y0);
  const float v10 = atClamped(x0 + 1, y0);
  const float v01 = atClamped(x0, y0 + 1);
  const float v11 = atClamped(x0 + 1, y0 + 1);
  const float top = v00 + fx * (v10 - v00);
  const float bot = v01 + fx * (v11 - v01);
  return top + fy * (bot - top);
}

Image Image::crop(int x, int y, int w, int h) const {
  Image out(w, h);
  for (int j = 0; j < h; ++j) {
    for (int i = 0; i < w; ++i) {
      out.at(i, j) = atClamped(x + i, y + j);
    }
  }
  return out;
}

void Image::clampValues(float lo, float hi) {
  for (float& v : data_) v = std::clamp(v, lo, hi);
}

Image resizeBilinear(const Image& src, int newWidth, int newHeight) {
  if (newWidth <= 0 || newHeight <= 0) {
    throw std::invalid_argument("resizeBilinear: non-positive target size");
  }
  Image out(newWidth, newHeight);
  if (src.empty()) return out;
  resizeBilinearInto(src, out, 0, 0, newWidth, newHeight);
  return out;
}

void resizeBilinearInto(const Image& src, Image& dst, int x0, int y0, int x1,
                        int y1) {
  if (src.empty() || dst.empty()) return;
  x0 = std::max(0, x0);
  y0 = std::max(0, y0);
  x1 = std::min(dst.width(), x1);
  y1 = std::min(dst.height(), y1);
  const float sx = static_cast<float>(src.width()) / dst.width();
  const float sy = static_cast<float>(src.height()) / dst.height();
  for (int y = y0; y < y1; ++y) {
    for (int x = x0; x < x1; ++x) {
      // Sample at the centre of the destination pixel mapped into source
      // coordinates; -0.5 keeps the mapping symmetric.
      const float srcX = (static_cast<float>(x) + 0.5f) * sx - 0.5f;
      const float srcY = (static_cast<float>(y) + 0.5f) * sy - 0.5f;
      dst.at(x, y) = src.sampleBilinear(srcX, srcY);
    }
  }
}

Image rgbToGray(const unsigned char* rgb, int width, int height) {
  Image out(width, height);
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      const std::size_t base =
          (static_cast<std::size_t>(y) * width + x) * 3;
      const float r = rgb[base] / 255.0f;
      const float g = rgb[base + 1] / 255.0f;
      const float b = rgb[base + 2] / 255.0f;
      out.at(x, y) = 0.299f * r + 0.587f * g + 0.114f * b;
    }
  }
  return out;
}

float meanValue(const Image& img) {
  if (img.empty()) return 0.0f;
  double sum = 0.0;
  for (float v : img.data()) sum += v;
  return static_cast<float>(sum / img.data().size());
}

}  // namespace pcnn::vision
