#pragma once

#include <vector>

#include "vision/image.hpp"

namespace pcnn::vision {

/// One level of a scale pyramid. `scale` maps level coordinates back to the
/// original image: original = level * scale.
struct PyramidLevel {
  Image image;
  float scale = 1.0f;
};

/// Parameters for pyramid construction. The paper uses a per-level scale
/// factor of 1.1x; the SVM evaluation uses 15 levels, while the full-HD
/// power analysis uses 6 levels.
struct PyramidParams {
  float scaleFactor = 1.1f;
  int maxLevels = 64;       ///< hard cap; also stops when window no longer fits
  int minWidth = 64;        ///< stop when level is smaller than the window
  int minHeight = 128;
};

/// Builds a downscaling pyramid: level 0 is the original image, each
/// subsequent level shrinks by `scaleFactor`.
std::vector<PyramidLevel> buildPyramid(const Image& src,
                                       const PyramidParams& params);

}  // namespace pcnn::vision
