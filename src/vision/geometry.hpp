#pragma once

#include <algorithm>

namespace pcnn::vision {

/// Axis-aligned box in pixel coordinates: [x, x+w) x [y, y+h).
struct Rect {
  float x = 0;
  float y = 0;
  float w = 0;
  float h = 0;

  float area() const { return (w > 0 && h > 0) ? w * h : 0.0f; }
  float right() const { return x + w; }
  float bottom() const { return y + h; }
};

/// Area of intersection of two boxes.
inline float intersectionArea(const Rect& a, const Rect& b) {
  const float ix = std::max(0.0f, std::min(a.right(), b.right()) -
                                      std::max(a.x, b.x));
  const float iy = std::max(0.0f, std::min(a.bottom(), b.bottom()) -
                                      std::max(a.y, b.y));
  return ix * iy;
}

/// Intersection-over-union (PASCAL overlap criterion). The paper follows
/// Dollar et al.: a detection is a true positive when its overlap with the
/// ground truth is >= 0.5.
inline float iou(const Rect& a, const Rect& b) {
  const float inter = intersectionArea(a, b);
  const float uni = a.area() + b.area() - inter;
  return uni > 0.0f ? inter / uni : 0.0f;
}

/// Intersection over the smaller box's area; used by the greedy
/// non-maximum-suppression grouping with epsilon = 0.2.
inline float overlapOverMin(const Rect& a, const Rect& b) {
  const float inter = intersectionArea(a, b);
  const float m = std::min(a.area(), b.area());
  return m > 0.0f ? inter / m : 0.0f;
}

}  // namespace pcnn::vision
