#include "vision/synth.hpp"

#include <algorithm>
#include <cmath>

namespace pcnn::vision {
namespace {

// Fills the axis-aligned ellipse centred at (cx, cy) with radii (rx, ry).
void fillEllipse(Image& img, float cx, float cy, float rx, float ry,
                 float value) {
  const int x0 = std::max(0, static_cast<int>(std::floor(cx - rx)));
  const int x1 = std::min(img.width() - 1, static_cast<int>(std::ceil(cx + rx)));
  const int y0 = std::max(0, static_cast<int>(std::floor(cy - ry)));
  const int y1 = std::min(img.height() - 1, static_cast<int>(std::ceil(cy + ry)));
  for (int y = y0; y <= y1; ++y) {
    for (int x = x0; x <= x1; ++x) {
      const float dx = (static_cast<float>(x) - cx) / rx;
      const float dy = (static_cast<float>(y) - cy) / ry;
      if (dx * dx + dy * dy <= 1.0f) img.at(x, y) = value;
    }
  }
}

// Fills a rotated thick line segment (capsule) from (x0,y0) to (x1,y1).
void fillCapsule(Image& img, float x0, float y0, float x1, float y1,
                 float radius, float value) {
  const float minX = std::min(x0, x1) - radius;
  const float maxX = std::max(x0, x1) + radius;
  const float minY = std::min(y0, y1) - radius;
  const float maxY = std::max(y0, y1) + radius;
  const int ix0 = std::max(0, static_cast<int>(std::floor(minX)));
  const int ix1 = std::min(img.width() - 1, static_cast<int>(std::ceil(maxX)));
  const int iy0 = std::max(0, static_cast<int>(std::floor(minY)));
  const int iy1 = std::min(img.height() - 1, static_cast<int>(std::ceil(maxY)));
  const float vx = x1 - x0;
  const float vy = y1 - y0;
  const float len2 = std::max(1e-6f, vx * vx + vy * vy);
  for (int y = iy0; y <= iy1; ++y) {
    for (int x = ix0; x <= ix1; ++x) {
      const float px = static_cast<float>(x) - x0;
      const float py = static_cast<float>(y) - y0;
      const float t = std::clamp((px * vx + py * vy) / len2, 0.0f, 1.0f);
      const float dx = px - t * vx;
      const float dy = py - t * vy;
      if (dx * dx + dy * dy <= radius * radius) img.at(x, y) = value;
    }
  }
}

void fillRect(Image& img, int x, int y, int w, int h, float value) {
  const int x0 = std::max(0, x);
  const int y0 = std::max(0, y);
  const int x1 = std::min(img.width(), x + w);
  const int y1 = std::min(img.height(), y + h);
  for (int yy = y0; yy < y1; ++yy) {
    for (int xx = x0; xx < x1; ++xx) img.at(xx, yy) = value;
  }
}

}  // namespace

Image valueNoise(int width, int height, int cellSize, float base,
                 float amplitude, Rng& rng) {
  const int gw = width / std::max(1, cellSize) + 2;
  const int gh = height / std::max(1, cellSize) + 2;
  Image lattice(gw, gh);
  for (float& v : lattice.data()) {
    v = base + amplitude * static_cast<float>(rng.uniform(-1.0, 1.0));
  }
  Image out(width, height);
  const float inv = 1.0f / static_cast<float>(std::max(1, cellSize));
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      out.at(x, y) = lattice.sampleBilinear(static_cast<float>(x) * inv,
                                            static_cast<float>(y) * inv);
    }
  }
  out.clampValues(0.0f, 1.0f);
  return out;
}

void addGaussianNoise(Image& img, float sigma, Rng& rng) {
  if (sigma <= 0.0f) return;
  for (float& v : img.data()) {
    v += sigma * static_cast<float>(rng.normal());
  }
  img.clampValues(0.0f, 1.0f);
}

void SyntheticPersonDataset::renderPerson(Image& img, float footX, float footY,
                                          float h, float intensity,
                                          Rng& rng) const {
  const float j = params_.poseJitter;
  auto jitter = [&](float nominal) {
    return nominal * (1.0f + j * static_cast<float>(rng.uniform(-1.0, 1.0)));
  };

  // Proportions relative to total height h (classic 7.5-head figure).
  const float headR = jitter(h * 0.065f);
  const float headCy = footY - h + headR * 1.2f;
  const float neckY = headCy + headR * 1.3f;
  const float shoulderW = jitter(h * 0.14f);
  const float hipY = footY - h * 0.48f;
  const float hipW = jitter(h * 0.10f);
  const float torsoR = shoulderW * 0.5f;
  const float legR = jitter(h * 0.035f);
  const float armR = jitter(h * 0.028f);

  // Stance: legs splayed by a random amount; arms hang with a random swing.
  const float stance = h * (0.03f + 0.07f * static_cast<float>(rng.uniform()));
  const float armSwing =
      h * 0.06f * static_cast<float>(rng.uniform(-1.0, 1.0));
  const float lean = h * 0.02f * static_cast<float>(rng.uniform(-1.0, 1.0));

  // Head.
  fillEllipse(img, footX + lean, headCy, headR, headR * 1.15f, intensity);
  // Torso: capsule from neck to hip, slightly tapering represented by two
  // overlapping capsules.
  fillCapsule(img, footX + lean, neckY, footX, hipY, torsoR, intensity);
  fillCapsule(img, footX + lean, neckY + h * 0.08f, footX, hipY, hipW,
              intensity);
  // Arms.
  const float shoulderY = neckY + h * 0.03f;
  fillCapsule(img, footX + lean - torsoR, shoulderY,
              footX - torsoR - armSwing, hipY + h * 0.02f, armR, intensity);
  fillCapsule(img, footX + lean + torsoR, shoulderY,
              footX + torsoR + armSwing, hipY + h * 0.02f, armR, intensity);
  // Legs.
  fillCapsule(img, footX - hipW * 0.5f, hipY, footX - stance, footY, legR,
              intensity);
  fillCapsule(img, footX + hipW * 0.5f, hipY, footX + stance, footY, legR,
              intensity);
}

Image SyntheticPersonDataset::positiveWindow(Rng& rng) const {
  const int w = params_.windowWidth;
  const int h = params_.windowHeight;
  const float bg = 0.25f + 0.5f * static_cast<float>(rng.uniform());
  // Layered texture (coarse + fine) so cells carry INRIA-like gradient
  // density rather than being flat between object edges.
  Image img = valueNoise(w, h, 8 + rng.uniformInt(0, 8), bg, 0.12f, rng);
  {
    Image fine = valueNoise(w, h, 4, 0.5f, 0.12f, rng);
    for (std::size_t i = 0; i < img.data().size(); ++i) {
      img.data()[i] += fine.data()[i] - 0.5f;
    }
    img.clampValues(0.0f, 1.0f);
  }

  // Person intensity: randomly brighter or darker than the background, with
  // contrast drawn from [minContrast, maxContrast].
  const float contrast =
      params_.minContrast +
      (params_.maxContrast - params_.minContrast) *
          static_cast<float>(rng.uniform());
  const float sign = rng.bernoulli(0.5) ? 1.0f : -1.0f;
  const float intensity = std::clamp(bg + sign * contrast, 0.02f, 0.98f);

  const float personH =
      static_cast<float>(params_.personHeight) *
      (0.92f + 0.16f * static_cast<float>(rng.uniform()));
  const float footX =
      static_cast<float>(w) * 0.5f +
      static_cast<float>(rng.uniform(-3.0, 3.0));
  const float footY = (static_cast<float>(h) + personH) * 0.5f +
                      static_cast<float>(rng.uniform(-3.0, 3.0));
  renderPerson(img, footX, footY, personH, intensity, rng);
  addGaussianNoise(img, params_.noiseSigma, rng);
  return img;
}

Image SyntheticPersonDataset::negativeWindow(Rng& rng) const {
  const int w = params_.windowWidth;
  const int h = params_.windowHeight;
  const float bg = 0.2f + 0.6f * static_cast<float>(rng.uniform());
  Image img = valueNoise(w, h, 6 + rng.uniformInt(0, 10), bg, 0.12f, rng);
  {
    Image fine = valueNoise(w, h, 4, 0.5f, 0.12f, rng);
    for (std::size_t i = 0; i < img.data().size(); ++i) {
      img.data()[i] += fine.data()[i] - 0.5f;
    }
    img.clampValues(0.0f, 1.0f);
  }

  const float contrast =
      params_.minContrast +
      (params_.maxContrast - params_.minContrast) *
          static_cast<float>(rng.uniform());
  const float sign = rng.bernoulli(0.5) ? 1.0f : -1.0f;
  const float fg = std::clamp(bg + sign * contrast, 0.02f, 0.98f);

  switch (rng.uniformInt(0, 4)) {
    case 0: {  // vertical pole(s): a classic HoG hard negative
      const int poles = rng.uniformInt(1, 2);
      for (int p = 0; p < poles; ++p) {
        const int px = rng.uniformInt(4, w - 8);
        const int pw = rng.uniformInt(3, 9);
        fillRect(img, px, 0, pw, h, fg);
      }
      break;
    }
    case 1: {  // box / building-like structure
      const int bw = rng.uniformInt(w / 4, w - 8);
      const int bh = rng.uniformInt(h / 6, h / 2);
      fillRect(img, rng.uniformInt(0, w - bw), rng.uniformInt(0, h - bh), bw,
               bh, fg);
      break;
    }
    case 2: {  // blob
      fillEllipse(img, static_cast<float>(rng.uniformInt(8, w - 8)),
                  static_cast<float>(rng.uniformInt(12, h - 12)),
                  static_cast<float>(rng.uniformInt(5, w / 3)),
                  static_cast<float>(rng.uniformInt(5, h / 4)), fg);
      break;
    }
    case 3: {  // diagonal grating
      const float angle = static_cast<float>(rng.uniform(0.0, 3.14159));
      const float freq = 0.15f + 0.3f * static_cast<float>(rng.uniform());
      const float c = std::cos(angle), s = std::sin(angle);
      for (int y = 0; y < h; ++y) {
        for (int x = 0; x < w; ++x) {
          const float phase = (c * x + s * y) * freq;
          if (std::sin(phase * 6.28318f) > 0.3f) img.at(x, y) = fg;
        }
      }
      break;
    }
    default:
      break;  // plain texture
  }
  addGaussianNoise(img, params_.noiseSigma, rng);
  return img;
}

void SyntheticPersonDataset::renderClutter(Image& img, Rng& rng,
                                           int count) const {
  for (int i = 0; i < count; ++i) {
    const float fg = 0.1f + 0.8f * static_cast<float>(rng.uniform());
    switch (rng.uniformInt(0, 2)) {
      case 0:
        fillRect(img, rng.uniformInt(0, img.width() - 10),
                 rng.uniformInt(0, img.height() - 10),
                 rng.uniformInt(8, img.width() / 4),
                 rng.uniformInt(8, img.height() / 4), fg);
        break;
      case 1:
        fillRect(img, rng.uniformInt(0, img.width() - 6), 0,
                 rng.uniformInt(3, 10), img.height(), fg);
        break;
      default:
        fillEllipse(img, static_cast<float>(rng.uniformInt(0, img.width())),
                    static_cast<float>(rng.uniformInt(0, img.height())),
                    static_cast<float>(rng.uniformInt(6, 40)),
                    static_cast<float>(rng.uniformInt(6, 40)), fg);
        break;
    }
  }
}

Scene SyntheticPersonDataset::scene(Rng& rng, int width, int height,
                                    int numPersons, int minPersonHeight,
                                    int maxPersonHeight) const {
  Scene out;
  const float bg = 0.3f + 0.4f * static_cast<float>(rng.uniform());
  out.image = valueNoise(width, height, 24, bg, 0.10f, rng);
  {
    Image fine = valueNoise(width, height, 4, 0.5f, 0.12f, rng);
    for (std::size_t i = 0; i < out.image.data().size(); ++i) {
      out.image.data()[i] += fine.data()[i] - 0.5f;
    }
    out.image.clampValues(0.0f, 1.0f);
  }
  renderClutter(out.image, rng, std::max(2, width * height / 250000));

  for (int i = 0; i < numPersons; ++i) {
    const int ph = rng.uniformInt(minPersonHeight,
                                  std::min(maxPersonHeight, height - 16));
    const float contrast =
        params_.minContrast +
        (params_.maxContrast - params_.minContrast) *
            static_cast<float>(rng.uniform());
    const float sign = rng.bernoulli(0.5) ? 1.0f : -1.0f;
    const float intensity = std::clamp(bg + sign * contrast, 0.02f, 0.98f);

    // Window-aligned ground truth: the detection window scaled so that the
    // person occupies personHeight/windowHeight of it, as in the positive
    // training windows.
    const float winH = static_cast<float>(ph) *
                       static_cast<float>(params_.windowHeight) /
                       static_cast<float>(params_.personHeight);
    const float winW = winH * static_cast<float>(params_.windowWidth) /
                       static_cast<float>(params_.windowHeight);
    const float margin = winW * 0.6f;
    const float footX = static_cast<float>(
        rng.uniform(margin, std::max(margin + 1.0f, width - margin)));
    const float footY = static_cast<float>(rng.uniform(
        winH * 0.9f, std::max(winH * 0.9f + 1.0f, height - 4.0f)));
    renderPerson(out.image, footX, footY, static_cast<float>(ph), intensity,
                 rng);
    Rect gt;
    gt.w = winW;
    gt.h = winH;
    gt.x = footX - winW * 0.5f;
    gt.y = footY - (winH + static_cast<float>(ph)) * 0.5f;
    out.groundTruth.push_back(gt);
  }
  addGaussianNoise(out.image, params_.noiseSigma, rng);
  return out;
}

}  // namespace pcnn::vision
