#pragma once

#include <string>
#include <vector>

#include "vision/geometry.hpp"
#include "vision/image.hpp"

namespace pcnn::vision {

/// Minimal interleaved-RGB image for visualization output (detections,
/// ground truth, HoG glyphs). Values in [0, 1] per channel.
class RgbImage {
 public:
  RgbImage() = default;
  RgbImage(int width, int height, float r = 0, float g = 0, float b = 0);

  /// Converts a grayscale image (replicating the value to all channels).
  explicit RgbImage(const Image& gray);

  int width() const { return width_; }
  int height() const { return height_; }
  float& at(int x, int y, int channel);
  float at(int x, int y, int channel) const;
  std::vector<float>& data() { return data_; }
  const std::vector<float>& data() const { return data_; }

 private:
  int width_ = 0;
  int height_ = 0;
  std::vector<float> data_;
};

/// Simple RGB color triple.
struct Color {
  float r = 1, g = 1, b = 1;
};

/// Draws a 1-pixel rectangle outline (clipped to the image).
void drawRect(RgbImage& img, const Rect& rect, const Color& color);

/// Draws a line segment with integer rasterization (clipped).
void drawLine(RgbImage& img, float x0, float y0, float x1, float y1,
              const Color& color);

/// Writes a binary PPM (P6, 8-bit). Throws std::runtime_error on failure.
void writePpm(const RgbImage& img, const std::string& path);

}  // namespace pcnn::vision
