#include "vision/pgm.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace pcnn::vision {
namespace {

// Skips whitespace and '#' comment lines between PGM header tokens.
void skipSeparators(std::istream& in) {
  while (true) {
    const int c = in.peek();
    if (c == '#') {
      std::string line;
      std::getline(in, line);
    } else if (std::isspace(c)) {
      in.get();
    } else {
      return;
    }
  }
}

int readHeaderInt(std::istream& in) {
  skipSeparators(in);
  int value = 0;
  if (!(in >> value)) {
    throw std::runtime_error("readPgm: malformed header");
  }
  return value;
}

}  // namespace

void writePgm(const Image& img, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    throw std::runtime_error("writePgm: cannot open " + path);
  }
  out << "P5\n" << img.width() << " " << img.height() << "\n255\n";
  for (float v : img.data()) {
    const float clamped = std::clamp(v, 0.0f, 1.0f);
    out.put(static_cast<char>(std::lround(clamped * 255.0f)));
  }
  if (!out) {
    throw std::runtime_error("writePgm: write failure on " + path);
  }
}

Image readPgm(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("readPgm: cannot open " + path);
  }
  std::string magic;
  in >> magic;
  if (magic != "P5" && magic != "P2") {
    throw std::runtime_error("readPgm: unsupported magic " + magic);
  }
  const int width = readHeaderInt(in);
  const int height = readHeaderInt(in);
  const int maxval = readHeaderInt(in);
  if (width <= 0 || height <= 0 || maxval <= 0 || maxval > 65535) {
    throw std::runtime_error("readPgm: invalid header values");
  }
  Image img(width, height);
  const float scale = 1.0f / static_cast<float>(maxval);
  if (magic == "P5") {
    in.get();  // single whitespace after maxval
    if (maxval < 256) {
      std::vector<unsigned char> row(static_cast<std::size_t>(width));
      for (int y = 0; y < height; ++y) {
        in.read(reinterpret_cast<char*>(row.data()), width);
        if (!in) throw std::runtime_error("readPgm: truncated data");
        for (int x = 0; x < width; ++x) img.at(x, y) = row[x] * scale;
      }
    } else {
      for (int y = 0; y < height; ++y) {
        for (int x = 0; x < width; ++x) {
          const int hi = in.get();
          const int lo = in.get();
          if (hi < 0 || lo < 0) throw std::runtime_error("readPgm: truncated");
          img.at(x, y) = static_cast<float>((hi << 8) | lo) * scale;
        }
      }
    }
  } else {  // P2 ASCII
    for (int y = 0; y < height; ++y) {
      for (int x = 0; x < width; ++x) {
        int value = 0;
        if (!(in >> value)) throw std::runtime_error("readPgm: truncated");
        img.at(x, y) = static_cast<float>(value) * scale;
      }
    }
  }
  return img;
}

}  // namespace pcnn::vision
