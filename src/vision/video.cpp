#include "vision/video.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/rng.hpp"

namespace pcnn::vision {

namespace {

constexpr float kTau = 6.28318530717958647692f;

/// Wraps x into [0, span).
float wrapInto(float x, float span) {
  const float wrapped = std::fmod(x, span);
  return wrapped < 0.0f ? wrapped + span : wrapped;
}

}  // namespace

SyntheticVideo::SyntheticVideo(const VideoParams& params) : params_(params) {
  if (params_.width <= 0 || params_.height <= 0 || params_.numPersons < 0) {
    throw std::invalid_argument("SyntheticVideo: invalid params");
  }
  SyntheticPersonDataset dataset(params_.synth);
  Rng rng(params_.seed);

  // Static background: layered texture, clutter, and sensor noise baked
  // once (see the class comment for why noise is not per-frame).
  const float bg = 0.3f + 0.4f * static_cast<float>(rng.uniform());
  background_ = valueNoise(params_.width, params_.height, 24, bg, 0.10f, rng);
  {
    Image fine = valueNoise(params_.width, params_.height, 4, 0.5f, 0.12f,
                            rng);
    for (std::size_t i = 0; i < background_.data().size(); ++i) {
      background_.data()[i] += fine.data()[i] - 0.5f;
    }
    background_.clampValues(0.0f, 1.0f);
  }
  addGaussianNoise(background_, params_.synth.noiseSigma, rng);

  // The off-screen margin is sized for the largest possible box so actors
  // fully leave the frame before wrapping to the other side.
  const float maxH = static_cast<float>(params_.maxPersonHeight) *
                     (1.0f + params_.scaleAmplitude);
  const float maxWinW = maxH *
                        static_cast<float>(params_.synth.windowHeight) /
                        static_cast<float>(params_.synth.personHeight) * 0.5f;
  margin_ = maxWinW + 8.0f;
  wrapSpan_ = static_cast<float>(params_.width) + 2.0f * margin_;

  const SynthParams& sp = params_.synth;
  actors_.reserve(static_cast<std::size_t>(params_.numPersons));
  for (int i = 0; i < params_.numPersons; ++i) {
    Actor actor;
    const int maxFit =
        std::min(params_.maxPersonHeight, params_.height - 16);
    actor.baseHeight = static_cast<float>(
        rng.uniformInt(std::min(params_.minPersonHeight, maxFit), maxFit));
    const float speedMag = params_.maxSpeedPx *
                           (0.35f + 0.65f * static_cast<float>(rng.uniform()));
    actor.speed = rng.bernoulli(0.5) ? speedMag : -speedMag;
    // Actor 0 starts on-screen so every video has visible motion from
    // frame 0; the rest spawn anywhere on the wrap track (possibly in the
    // off-screen margin, entering later -- that is the enter/leave test).
    actor.startX =
        i == 0 ? margin_ + static_cast<float>(
                               rng.uniform(0.0, params_.width))
               : static_cast<float>(rng.uniform(0.0, wrapSpan_));
    const float minFootY = actor.baseHeight * (1.0f + params_.scaleAmplitude);
    actor.footY = static_cast<float>(rng.uniform(
        minFootY, std::max(minFootY + 1.0f,
                           static_cast<float>(params_.height) - 8.0f)));
    const float contrast =
        sp.minContrast +
        (sp.maxContrast - sp.minContrast) * static_cast<float>(rng.uniform());
    const float sign = rng.bernoulli(0.5) ? 1.0f : -1.0f;
    actor.intensity = std::clamp(bg + sign * contrast, 0.02f, 0.98f);
    actor.scalePhase = static_cast<float>(rng.uniform(0.0, kTau));
    actor.poseSeed = rng.nextU64();
    actors_.push_back(actor);
  }
}

float SyntheticVideo::actorHeight(const Actor& actor, int index) const {
  const float period = std::max(1.0f, params_.scalePeriodFrames);
  const float phase =
      kTau * static_cast<float>(index) / period + actor.scalePhase;
  return actor.baseHeight *
         (1.0f + params_.scaleAmplitude * std::sin(phase));
}

float SyntheticVideo::actorFootX(const Actor& actor, int index) const {
  // Position in wrap coordinates [0, span); shift by -margin so the
  // on-screen range is [0, width) and actors enter/leave at the edges.
  const float x =
      wrapInto(actor.startX + actor.speed * static_cast<float>(index),
               wrapSpan_);
  return x - margin_;
}

Rect SyntheticVideo::actorBox(int actor, int index) const {
  const Actor& a = actors_.at(static_cast<std::size_t>(actor));
  const float h = actorHeight(a, index);
  const float footX = actorFootX(a, index);
  const float winH = h * static_cast<float>(params_.synth.windowHeight) /
                     static_cast<float>(params_.synth.personHeight);
  const float winW = winH * static_cast<float>(params_.synth.windowWidth) /
                     static_cast<float>(params_.synth.windowHeight);
  Rect box;
  box.w = winW;
  box.h = winH;
  box.x = footX - winW * 0.5f;
  box.y = a.footY - (winH + h) * 0.5f;
  return box;
}

bool SyntheticVideo::actorVisible(int actor, int index) const {
  const Rect box = actorBox(actor, index);
  const float cx = box.x + box.w * 0.5f;
  return cx >= 0.0f && cx < static_cast<float>(params_.width);
}

Scene SyntheticVideo::frame(int index) const {
  if (index < 0) throw std::invalid_argument("SyntheticVideo: frame < 0");
  Scene out;
  out.image = background_;
  SyntheticPersonDataset dataset(params_.synth);
  for (std::size_t i = 0; i < actors_.size(); ++i) {
    const Actor& actor = actors_[i];
    // A fresh Rng from the fixed pose seed every frame: the silhouette is
    // a rigid function of the actor, so the only temporal change is the
    // translation/scale -- which is what keeps dirty tiles sparse.
    Rng poseRng(actor.poseSeed);
    dataset.renderPerson(out.image, actorFootX(actor, index), actor.footY,
                         actorHeight(actor, index), actor.intensity, poseRng);
    if (actorVisible(static_cast<int>(i), index)) {
      out.groundTruth.push_back(actorBox(static_cast<int>(i), index));
    }
  }
  return out;
}

}  // namespace pcnn::vision
