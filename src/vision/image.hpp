#pragma once

#include <cstddef>
#include <stdexcept>
#include <vector>

namespace pcnn::vision {

/// Single-channel (grayscale) floating-point image with values nominally in
/// [0, 1]. Row-major storage. All pipeline stages in this library operate on
/// grayscale images, matching the paper's reduction from RGB to grayscale to
/// fit TrueNorth resource constraints (Section 4).
class Image {
 public:
  Image() = default;

  /// Creates a width x height image filled with `fill`.
  Image(int width, int height, float fill = 0.0f)
      : width_(width), height_(height) {
    if (width < 0 || height < 0) {
      throw std::invalid_argument("Image: negative dimensions");
    }
    data_.assign(static_cast<std::size_t>(width) * height, fill);
  }

  int width() const { return width_; }
  int height() const { return height_; }
  bool empty() const { return data_.empty(); }

  /// Unchecked pixel access (debug builds may still catch via vector).
  float& at(int x, int y) { return data_[idx(x, y)]; }
  float at(int x, int y) const { return data_[idx(x, y)]; }

  /// Pixel access with coordinates clamped to the image border. This is the
  /// border policy used by the gradient operators (replicate-edge).
  float atClamped(int x, int y) const {
    x = x < 0 ? 0 : (x >= width_ ? width_ - 1 : x);
    y = y < 0 ? 0 : (y >= height_ ? height_ - 1 : y);
    return data_[idx(x, y)];
  }

  /// Bilinearly interpolated sample at a real-valued coordinate, clamped.
  float sampleBilinear(float x, float y) const;

  /// Raw pixel buffer (row-major).
  std::vector<float>& data() { return data_; }
  const std::vector<float>& data() const { return data_; }

  /// Returns the sub-image [x, x+w) x [y, y+h); clamps reads at borders.
  Image crop(int x, int y, int w, int h) const;

  /// Clamp every pixel into [lo, hi].
  void clampValues(float lo, float hi);

 private:
  std::size_t idx(int x, int y) const {
    return static_cast<std::size_t>(y) * width_ + x;
  }
  int width_ = 0;
  int height_ = 0;
  std::vector<float> data_;
};

/// Resizes `src` to the exact target size with bilinear interpolation.
Image resizeBilinear(const Image& src, int newWidth, int newHeight);

/// Recomputes only the destination rectangle [x0, x1) x [y0, y1) of `dst`
/// from `src`, using the same per-pixel sampling as resizeBilinear at
/// dst's dimensions. Because every destination pixel is an independent
/// function of the source, the refreshed region is bitwise-identical to
/// the corresponding region of a full resizeBilinear(src, dst.width(),
/// dst.height()) -- the property the temporal detection path relies on to
/// propagate dirty scene rectangles into pyramid levels without paying a
/// full per-level resize. The rect is clamped to dst's bounds.
void resizeBilinearInto(const Image& src, Image& dst, int x0, int y0, int x1,
                        int y1);

/// Converts interleaved 8-bit RGB data to a grayscale Image using the
/// Rec.601 luma weights. `rgb` must hold width*height*3 bytes.
Image rgbToGray(const unsigned char* rgb, int width, int height);

/// Mean pixel value of the image (0 for an empty image).
float meanValue(const Image& img);

}  // namespace pcnn::vision
