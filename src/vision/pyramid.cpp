#include "vision/pyramid.hpp"

#include <cmath>
#include <stdexcept>

namespace pcnn::vision {

std::vector<PyramidLevel> buildPyramid(const Image& src,
                                       const PyramidParams& params) {
  if (params.scaleFactor <= 1.0f) {
    throw std::invalid_argument("buildPyramid: scaleFactor must be > 1");
  }
  std::vector<PyramidLevel> levels;
  float scale = 1.0f;
  for (int level = 0; level < params.maxLevels; ++level) {
    const int w = static_cast<int>(std::lround(src.width() / scale));
    const int h = static_cast<int>(std::lround(src.height() / scale));
    if (w < params.minWidth || h < params.minHeight) break;
    PyramidLevel pl;
    pl.scale = scale;
    pl.image = (level == 0) ? src : resizeBilinear(src, w, h);
    levels.push_back(std::move(pl));
    scale *= params.scaleFactor;
  }
  return levels;
}

}  // namespace pcnn::vision
