#include "vision/draw.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <stdexcept>

namespace pcnn::vision {

RgbImage::RgbImage(int width, int height, float r, float g, float b)
    : width_(width), height_(height) {
  if (width < 0 || height < 0) {
    throw std::invalid_argument("RgbImage: negative dimensions");
  }
  data_.resize(static_cast<std::size_t>(width) * height * 3);
  for (std::size_t i = 0; i < data_.size(); i += 3) {
    data_[i] = r;
    data_[i + 1] = g;
    data_[i + 2] = b;
  }
}

RgbImage::RgbImage(const Image& gray)
    : width_(gray.width()), height_(gray.height()) {
  data_.resize(static_cast<std::size_t>(width_) * height_ * 3);
  for (int y = 0; y < height_; ++y) {
    for (int x = 0; x < width_; ++x) {
      const float v = gray.at(x, y);
      const std::size_t base =
          (static_cast<std::size_t>(y) * width_ + x) * 3;
      data_[base] = v;
      data_[base + 1] = v;
      data_[base + 2] = v;
    }
  }
}

float& RgbImage::at(int x, int y, int channel) {
  return data_[(static_cast<std::size_t>(y) * width_ + x) * 3 + channel];
}

float RgbImage::at(int x, int y, int channel) const {
  return data_[(static_cast<std::size_t>(y) * width_ + x) * 3 + channel];
}

namespace {

void setPixel(RgbImage& img, int x, int y, const Color& color) {
  if (x < 0 || x >= img.width() || y < 0 || y >= img.height()) return;
  img.at(x, y, 0) = color.r;
  img.at(x, y, 1) = color.g;
  img.at(x, y, 2) = color.b;
}

}  // namespace

void drawRect(RgbImage& img, const Rect& rect, const Color& color) {
  const int x0 = static_cast<int>(std::lround(rect.x));
  const int y0 = static_cast<int>(std::lround(rect.y));
  const int x1 = static_cast<int>(std::lround(rect.right())) - 1;
  const int y1 = static_cast<int>(std::lround(rect.bottom())) - 1;
  for (int x = x0; x <= x1; ++x) {
    setPixel(img, x, y0, color);
    setPixel(img, x, y1, color);
  }
  for (int y = y0; y <= y1; ++y) {
    setPixel(img, x0, y, color);
    setPixel(img, x1, y, color);
  }
}

void drawLine(RgbImage& img, float x0, float y0, float x1, float y1,
              const Color& color) {
  const float dx = x1 - x0;
  const float dy = y1 - y0;
  const int steps = std::max(
      1, static_cast<int>(std::ceil(std::max(std::abs(dx), std::abs(dy)))));
  for (int i = 0; i <= steps; ++i) {
    const float t = static_cast<float>(i) / static_cast<float>(steps);
    setPixel(img, static_cast<int>(std::lround(x0 + t * dx)),
             static_cast<int>(std::lround(y0 + t * dy)), color);
  }
}

void writePpm(const RgbImage& img, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("writePpm: cannot open " + path);
  out << "P6\n" << img.width() << " " << img.height() << "\n255\n";
  for (float v : img.data()) {
    out.put(static_cast<char>(
        std::lround(std::clamp(v, 0.0f, 1.0f) * 255.0f)));
  }
  if (!out) throw std::runtime_error("writePpm: write failure on " + path);
}

}  // namespace pcnn::vision
