#pragma once

#include <vector>

#include "vision/geometry.hpp"

namespace pcnn::vision {

/// A scored detection window in original-image coordinates.
struct Detection {
  Rect box;
  float score = 0.0f;
};

/// Greedy non-maximum suppression. Detections are processed in descending
/// score order; a detection is suppressed when its overlap (intersection
/// over the smaller box) with an already-kept detection exceeds
/// 1 - epsilon. The paper performs NMS with epsilon = 0.2, i.e. boxes that
/// overlap a stronger detection by more than 80 % of the smaller area are
/// merged into it.
std::vector<Detection> nonMaximumSuppression(std::vector<Detection> dets,
                                             float epsilon = 0.2f);

}  // namespace pcnn::vision
