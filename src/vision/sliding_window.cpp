#include "vision/sliding_window.hpp"

// This TU defines the deprecated brute-force scan; its own internal call
// (countWindows -> forEachWindow) is not a misuse worth warning about.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

namespace pcnn::vision {

void forEachWindow(
    const Image& src, const SlidingWindowParams& params,
    const std::function<void(const Image&, const Rect&, const Rect&)>& fn) {
  PyramidParams pp = params.pyramid;
  pp.minWidth = params.windowWidth;
  pp.minHeight = params.windowHeight;
  const auto levels = buildPyramid(src, pp);
  for (const PyramidLevel& level : levels) {
    const Image& img = level.image;
    for (int y = 0; y + params.windowHeight <= img.height();
         y += params.strideY) {
      for (int x = 0; x + params.windowWidth <= img.width();
           x += params.strideX) {
        Rect inLevel{static_cast<float>(x), static_cast<float>(y),
                     static_cast<float>(params.windowWidth),
                     static_cast<float>(params.windowHeight)};
        Rect inOriginal{inLevel.x * level.scale, inLevel.y * level.scale,
                        inLevel.w * level.scale, inLevel.h * level.scale};
        fn(img, inLevel, inOriginal);
      }
    }
  }
}

long countWindows(const Image& src, const SlidingWindowParams& params) {
  long count = 0;
  forEachWindow(src, params,
                [&count](const Image&, const Rect&, const Rect&) { ++count; });
  return count;
}

}  // namespace pcnn::vision

#pragma GCC diagnostic pop
