#pragma once

#include <functional>

namespace pcnn {

/// Minimal shared thread pool for the library's embarrassingly parallel hot
/// loops (pyramid scanning, convolution channels, TrueNorth core ticks,
/// batch feature extraction).
///
/// Determinism contract: work is split into chunks whose boundaries depend
/// only on the iteration range and the grain -- never on the thread count
/// or on scheduling -- so any body that writes disjoint outputs per index
/// produces bit-identical results whether the pool runs 1 thread or 64.
///
/// The pool size is taken from the PCNN_NUM_THREADS environment variable at
/// first use (falling back to std::thread::hardware_concurrency) and can be
/// changed at runtime with setThreadCount. A value of 1 disables threading
/// entirely; every parallelFor then runs inline on the calling thread.

/// Current pool size (calling threads + workers).
int threadCount();

/// Resizes the global pool. Values < 1 are clamped to 1. Not safe to call
/// concurrently with an in-flight parallelFor.
void setThreadCount(int n);

/// Runs body(i) for every i in [begin, end). Iterations must be
/// independent; the order in which they run is unspecified.
void parallelFor(long begin, long end, const std::function<void(long)>& body);

/// Chunked form: body(chunkBegin, chunkEnd) over [begin, end) in chunks of
/// `grain` indices (the final chunk may be shorter). Chunk boundaries are a
/// pure function of (begin, end, grain). Use this form when per-index
/// dispatch would dominate, or when the body accumulates floats and the
/// accumulation order within a chunk must be fixed.
void parallelForChunked(long begin, long end, long grain,
                        const std::function<void(long, long)>& body);

/// Work-sized grain for parallelForChunked: splits `items` into about four
/// chunks per pool thread (enough slack for load balancing without paying
/// per-index dispatch), and collapses to a single chunk on a 1-thread pool
/// so the inline path runs with zero pool overhead.
///
/// The returned grain depends on the pool size, so chunk *boundaries* vary
/// with the thread count. That is safe exactly when every index writes its
/// own disjoint output (the library's hot loops all do); a body whose
/// within-chunk accumulation order matters must pass an explicit grain to
/// keep results thread-count-independent.
long suggestedGrain(long items);

}  // namespace pcnn
