#include "common/status.hpp"

namespace pcnn {

const char* statusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kDataLoss:
      return "DATA_LOSS";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
  }
  return "UNKNOWN";
}

std::string Status::toString() const {
  if (ok()) return "OK";
  std::string out = statusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace pcnn
