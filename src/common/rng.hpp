#pragma once

#include <cmath>
#include <cstdint>

namespace pcnn {

/// Deterministic, fast pseudo-random generator (xoshiro256** seeded via
/// splitmix64). Used everywhere randomness is needed so that experiments are
/// reproducible from a single seed. Not cryptographic.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  /// Re-initialise the state from a 64-bit seed.
  void reseed(std::uint64_t seed) {
    // splitmix64 to spread the seed across the four state words.
    auto next = [&seed]() {
      seed += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      return z ^ (z >> 31);
    };
    for (auto& word : state_) word = next();
  }

  /// Raw 64 uniformly random bits.
  std::uint64_t nextU64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>(nextU64() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int uniformInt(int lo, int hi) {
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<int>(nextU64() % span);
  }

  /// Bernoulli trial with probability p of returning true.
  bool bernoulli(double p) { return uniform() < p; }

  /// Standard normal via Box-Muller (one value per call; no caching to keep
  /// the generator state trivially reproducible).
  double normal() {
    double u1 = uniform();
    if (u1 < 1e-300) u1 = 1e-300;
    const double u2 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  }

  /// Normal with explicit mean and standard deviation.
  double normal(double mean, double stddev) { return mean + stddev * normal(); }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4]{};
};

}  // namespace pcnn
