#pragma once

// Shared function-multi-versioning attribute for the library's batched
// kernels (hog cell rows, tn core ticks, eedn compiled inference).
//
// On x86-64 GCC builds, emit a baseline clone plus an AVX2+FMA
// (x86-64-v3) clone; glibc's ifunc resolver picks per process at load
// time. The baseline clone still auto-vectorizes at SSE2 width, so
// non-v3 hosts get batched kernels too. Clang and non-x86 targets get a
// single clone -- the kernels are plain loops either way, only the
// vector width changes.
//
// Under ThreadSanitizer the clones must be disabled: the ifunc
// resolvers GCC generates are themselves tsan-instrumented, and the
// dynamic loader invokes them while processing IRELATIVE relocations --
// before any constructor (even the runtime's .preinit_array hook) has
// initialized tsan's thread state. The instrumented resolver prologue
// then reads unset sanitizer TLS and the process segfaults before
// main. A single baseline clone keeps every kernel race-checkable.
#if defined(__x86_64__) && defined(__GNUC__) && !defined(__clang__) && \
    !defined(__SANITIZE_THREAD__)
#define PCNN_TARGET_CLONES \
  __attribute__((target_clones("default", "arch=x86-64-v3")))
#else
#define PCNN_TARGET_CLONES
#endif
