#include "common/parallel.hpp"

#include <atomic>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "common/env.hpp"
#include "obs/obs.hpp"

namespace pcnn {
namespace {

/// Pool instruments, registered once. Counters cost one relaxed branch
/// when metrics are off; the clock is only read while they are on.
struct PoolMetrics {
  obs::Counter& jobs = obs::counter("pool.jobs");
  obs::Counter& inlineJobs = obs::counter("pool.inline_jobs");
  obs::Counter& chunks = obs::counter("pool.chunks");
  obs::Counter& busyUs = obs::counter("pool.busy_us");
  obs::LatencyHistogram& jobUs = obs::histogram("pool.job_us");
  obs::LatencyHistogram& queueUs = obs::histogram("pool.queue_us");
  /// Unclaimed chunks of the in-flight job; 0 between jobs. Sampled by
  /// the streaming exporter as a load signal.
  obs::Gauge& queueDepth = obs::gauge("pool.queue_depth");
  static PoolMetrics& instance() {
    static PoolMetrics m;
    return m;
  }
};

int defaultThreadCount() {
  const unsigned hw = std::thread::hardware_concurrency();
  const int hwThreads = hw > 0 ? static_cast<int>(hw) : 1;
  return env::intValue("PCNN_NUM_THREADS", hwThreads, 1, 1024);
}

/// A worker pulls chunk indices from the shared job via fetch_add; the
/// caller participates too, so a pool of size N holds N-1 threads.
class ThreadPool {
 public:
  static ThreadPool& instance() {
    static ThreadPool pool;
    return pool;
  }

  ThreadPool() { resize(defaultThreadCount()); }

  ~ThreadPool() { stopWorkers(); }

  int size() {
    std::lock_guard<std::mutex> lock(mutex_);
    return static_cast<int>(workers_.size()) + 1;
  }

  void resize(int n) {
    if (n < 1) n = 1;
    stopWorkers();
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = false;
    for (int i = 0; i < n - 1; ++i) {
      workers_.emplace_back([this] { workerLoop(); });
    }
  }

  void run(long numChunks, const std::function<void(long)>& chunk) {
    if (numChunks <= 0) return;
    // Nested parallelFor (a body that itself calls parallelFor) and the
    // single-threaded configuration both run inline: correct, deterministic
    // and deadlock-free.
    if (insideJob_ || numChunks == 1 || workers_.empty()) {
      PoolMetrics& metrics = PoolMetrics::instance();
      metrics.inlineJobs.add();
      metrics.chunks.add(numChunks);
      if (obs::metricsEnabled()) {
        const double t0 = obs::nowMicros();
        for (long c = 0; c < numChunks; ++c) chunk(c);
        const double elapsed = obs::nowMicros() - t0;
        metrics.jobUs.record(elapsed);
        metrics.busyUs.add(static_cast<long>(elapsed));
      } else {
        for (long c = 0; c < numChunks; ++c) chunk(c);
      }
      return;
    }
    PoolMetrics& metrics = PoolMetrics::instance();
    metrics.jobs.add();
    metrics.chunks.add(numChunks);
    const bool measure = obs::metricsEnabled();
    const double t0 = measure ? obs::nowMicros() : 0.0;
    jobStartUs_.store(measure ? static_cast<long>(t0) : -1,
                      std::memory_order_relaxed);
    PCNN_SPAN_ARG("pool.job", "chunks", numChunks);
    std::exception_ptr firstError;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      jobChunk_ = &chunk;
      jobError_ = &firstError;
      jobSize_.store(numChunks, std::memory_order_relaxed);
      pending_.store(numChunks, std::memory_order_relaxed);
      ++generation_;
      // Release-store last: a worker that claims a chunk index below
      // numChunks is guaranteed (acquire on the claim) to see every field
      // written above. A straggler from the previous job reads a counter
      // value >= the old job size and exits without touching them.
      nextChunk_.store(0, std::memory_order_release);
    }
    metrics.queueDepth.set(static_cast<double>(numChunks));
    wake_.notify_all();
    insideJob_ = true;
    drainChunks();
    insideJob_ = false;
    {
      // Wait until every chunk has finished (not merely been claimed).
      std::unique_lock<std::mutex> lock(mutex_);
      done_.wait(lock, [this] {
        return pending_.load(std::memory_order_acquire) == 0;
      });
      jobChunk_ = nullptr;
      jobError_ = nullptr;
    }
    if (measure) metrics.jobUs.record(obs::nowMicros() - t0);
    if (firstError) std::rethrow_exception(firstError);
  }

 private:
  static thread_local bool insideJob_;

  void workerLoop() {
    insideJob_ = true;  // workers never re-dispatch to the pool
    std::uint64_t seenGeneration = 0;
    while (true) {
      {
        std::unique_lock<std::mutex> lock(mutex_);
        wake_.wait(lock, [&] {
          return stopping_ || generation_ != seenGeneration;
        });
        if (stopping_) return;
        seenGeneration = generation_;
      }
      drainChunks();
    }
  }

  void drainChunks() {
    bool firstClaim = true;
    while (true) {
      const long c = nextChunk_.fetch_add(1, std::memory_order_acquire);
      const long size = jobSize_.load(std::memory_order_relaxed);
      if (c >= size) return;
      const long unclaimed = size - (c + 1);
      PoolMetrics::instance().queueDepth.set(
          static_cast<double>(unclaimed > 0 ? unclaimed : 0));
      // Queue latency (job publish -> this thread's first claim) and busy
      // time per chunk; both only measured while metrics are on, and the
      // job-start stamp doubles as the job's measurement flag so a toggle
      // mid-job cannot record a nonsense latency.
      const long jobStart = jobStartUs_.load(std::memory_order_relaxed);
      const bool measure = jobStart >= 0 && obs::metricsEnabled();
      double claimUs = 0.0;
      if (measure) {
        claimUs = obs::nowMicros();
        if (firstClaim) {
          PoolMetrics::instance().queueUs.record(
              claimUs - static_cast<double>(jobStart));
          firstClaim = false;
        }
      }
      try {
        (*jobChunk_)(c);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mutex_);
        if (jobError_ && !*jobError_) *jobError_ = std::current_exception();
      }
      if (measure) {
        PoolMetrics::instance().busyUs.add(
            static_cast<long>(obs::nowMicros() - claimUs));
      }
      if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        // Last chunk: release the caller blocked in run().
        std::lock_guard<std::mutex> lock(mutex_);
        done_.notify_all();
      }
    }
  }

  void stopWorkers() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stopping_ = true;
    }
    wake_.notify_all();
    for (std::thread& worker : workers_) worker.join();
    workers_.clear();
  }

  std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable done_;
  std::vector<std::thread> workers_;
  bool stopping_ = false;
  std::uint64_t generation_ = 0;

  const std::function<void(long)>* jobChunk_ = nullptr;
  std::exception_ptr* jobError_ = nullptr;
  std::atomic<long> jobSize_{0};
  std::atomic<long> nextChunk_{0};
  std::atomic<long> pending_{0};
  /// Current job's publish time in whole microseconds (-1 = unmeasured).
  std::atomic<long> jobStartUs_{-1};
};

thread_local bool ThreadPool::insideJob_ = false;

}  // namespace

int threadCount() { return ThreadPool::instance().size(); }

void setThreadCount(int n) { ThreadPool::instance().resize(n); }

void parallelForChunked(long begin, long end, long grain,
                        const std::function<void(long, long)>& body) {
  if (end <= begin) return;
  if (grain < 1) grain = 1;
  const long numChunks = (end - begin + grain - 1) / grain;
  ThreadPool::instance().run(numChunks, [&](long c) {
    const long lo = begin + c * grain;
    const long hi = lo + grain < end ? lo + grain : end;
    body(lo, hi);
  });
}

void parallelFor(long begin, long end,
                 const std::function<void(long)>& body) {
  parallelForChunked(begin, end, 1, [&](long lo, long hi) {
    for (long i = lo; i < hi; ++i) body(i);
  });
}

long suggestedGrain(long items) {
  if (items < 1) return 1;
  const long threads = threadCount();
  if (threads <= 1) return items;  // one chunk, dispatched inline
  constexpr long kChunksPerThread = 4;
  const long grain = items / (threads * kChunksPerThread);
  return grain < 1 ? 1 : grain;
}

}  // namespace pcnn
