#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

namespace pcnn {

/// Typed-error layer for recoverable failures.
///
/// The library throws for programmer errors (null extractor, index out of
/// range on a hand-built core) but *returns* a Status for conditions a
/// robust deployment must survive: corrupt model files, malformed spec
/// strings, a backend failing on one pyramid level, a fault-injected
/// simulator run going off the rails. Callers on the graceful path branch
/// on ok() and degrade (skip the level, drop the window, fall back);
/// legacy throwing entry points wrap the try* variants and convert a bad
/// Status into the exception they always threw.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,     ///< caller-supplied value failed validation
  kOutOfRange,          ///< index/size outside the valid domain
  kDataLoss,            ///< truncated or corrupt serialized data
  kFailedPrecondition,  ///< operation needs state the object is not in
  kUnavailable,         ///< resource missing (file, backend) or shedding load
  kInternal,            ///< unexpected failure escaping a lower layer
  kDeadlineExceeded,    ///< work abandoned because its deadline passed
};

/// Stable upper-case name ("INVALID_ARGUMENT") for logs and messages.
const char* statusCodeName(StatusCode code);

class Status {
 public:
  /// Default-constructed Status is OK.
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  static Status OutOfRange(std::string message) {
    return Status(StatusCode::kOutOfRange, std::move(message));
  }
  static Status DataLoss(std::string message) {
    return Status(StatusCode::kDataLoss, std::move(message));
  }
  static Status FailedPrecondition(std::string message) {
    return Status(StatusCode::kFailedPrecondition, std::move(message));
  }
  static Status Unavailable(std::string message) {
    return Status(StatusCode::kUnavailable, std::move(message));
  }
  static Status Internal(std::string message) {
    return Status(StatusCode::kInternal, std::move(message));
  }
  static Status DeadlineExceeded(std::string message) {
    return Status(StatusCode::kDeadlineExceeded, std::move(message));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "DATA_LOSS: loadModel: truncated neuron" (or "OK").
  std::string toString() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Either a value or the Status explaining why there is none. Supports
/// move-only payloads (e.g. std::unique_ptr<tn::Network>). Accessing
/// value() on an error throws std::runtime_error carrying the status text,
/// which is exactly what the legacy throwing wrappers want.
template <typename T>
class StatusOr {
 public:
  /// Error state; `status` must not be OK.
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT(implicit)
    if (status_.ok()) {
      status_ = Status::Internal("StatusOr constructed from OK status");
    }
  }
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT(implicit)

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    ensureOk();
    return *value_;
  }
  T& value() & {
    ensureOk();
    return *value_;
  }
  T&& value() && {
    ensureOk();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void ensureOk() const {
    if (!value_.has_value()) {
      throw std::runtime_error(status_.toString());
    }
  }

  Status status_;
  std::optional<T> value_;
};

}  // namespace pcnn
