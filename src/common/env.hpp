#pragma once

// Single home for PCNN_* environment-variable parsing. Every runtime knob
// (PCNN_SIMD, PCNN_TRACE, PCNN_METRICS, PCNN_FAULTS, PCNN_TN_ENGINE,
// PCNN_BUNDLE, PCNN_NUM_THREADS, PCNN_TEMPORAL, ...) reads through these
// typed getters instead of hand-rolling getenv + strtol + tolower at its
// call site, so malformed values produce one consistent stderr diagnostic
// (once per variable) and fall back to the documented default instead of
// being silently misread.
//
// Header-only on purpose: pcnn_obs sits below pcnn_common in the link
// order, and both layers parse env vars.

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <optional>
#include <set>
#include <string>

namespace pcnn::env {

/// The variable's value, or nullopt when unset or empty (the two are
/// treated identically everywhere in this codebase).
inline std::optional<std::string> raw(const char* name) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return std::nullopt;
  return std::string(value);
}

/// String getter with a default for unset/empty.
inline std::string str(const char* name, const std::string& fallback = "") {
  std::optional<std::string> value = raw(name);
  return value ? *value : fallback;
}

/// The value lowercased, for case-insensitive token comparison
/// ("PCNN_SIMD=OFF" and "off" behave identically). nullopt when unset.
inline std::optional<std::string> loweredToken(const char* name) {
  std::optional<std::string> value = raw(name);
  if (!value) return std::nullopt;
  for (char& c : *value) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return value;
}

/// Emits one "ignoring malformed ..." diagnostic per variable name per
/// process, so a knob misspelled in a long-running service does not spam
/// stderr on every query.
inline void warnMalformed(const char* name, const std::string& value,
                          const char* expected) {
  static std::mutex mutex;
  static std::set<std::string>* warned = new std::set<std::string>();
  std::lock_guard<std::mutex> lock(mutex);
  if (!warned->insert(name).second) return;
  std::fprintf(stderr, "pcnn: ignoring malformed %s=\"%s\" (expected %s)\n",
               name, value.c_str(), expected);
}

/// Boolean knob: on/1/true/yes enable, off/0/false/no disable
/// (case-insensitive). Unset or malformed -> `fallback`, with a one-time
/// diagnostic for malformed values.
inline bool flag(const char* name, bool fallback) {
  std::optional<std::string> token = loweredToken(name);
  if (!token) return fallback;
  if (*token == "on" || *token == "1" || *token == "true" ||
      *token == "yes") {
    return true;
  }
  if (*token == "off" || *token == "0" || *token == "false" ||
      *token == "no") {
    return false;
  }
  warnMalformed(name, *token, "on/off/1/0/true/false/yes/no");
  return fallback;
}

/// Integer knob constrained to [minValue, maxValue]. The whole value must
/// parse ("8x" is malformed, not 8); out-of-range or malformed values fall
/// back with a one-time diagnostic.
inline int intValue(const char* name, int fallback, int minValue,
                    int maxValue) {
  std::optional<std::string> value = raw(name);
  if (!value) return fallback;
  char* end = nullptr;
  const long parsed = std::strtol(value->c_str(), &end, 10);
  if (end == value->c_str() || *end != '\0' || parsed < minValue ||
      parsed > maxValue) {
    char expected[64];
    std::snprintf(expected, sizeof(expected), "integer in [%d, %d]",
                  minValue, maxValue);
    warnMalformed(name, *value, expected);
    return fallback;
  }
  return static_cast<int>(parsed);
}

}  // namespace pcnn::env
