#include "hog/fixed_point.hpp"

#include <cmath>
#include <stdexcept>

#include "common/parallel.hpp"

namespace pcnn::hog {
namespace {
constexpr double kPi = 3.14159265358979323846;
}

FixedPointHog::FixedPointHog(const FixedPointHogParams& params)
    : params_(params) {
  if (params.numBins <= 0 || params.numBins % 2 == 0) {
    // The fold-to-[0,90] binning below relies on the 90-degree boundary
    // falling in the middle of a bin, which requires an odd bin count
    // (9 bins of 20 degrees in the baseline).
    throw std::invalid_argument(
        "FixedPointHog: numBins must be odd (e.g. 9)");
  }
  const double binWidth = 180.0 / params.numBins;
  const int boundariesBelow90 = params.numBins / 2;  // e.g. 20,40,60,80
  const std::int64_t one = std::int64_t{1} << params.tanFractionBits;
  tanLut_.clear();
  for (int k = 1; k <= boundariesBelow90; ++k) {
    const double boundary = binWidth * k * kPi / 180.0;
    tanLut_.push_back(
        static_cast<std::int64_t>(std::llround(std::tan(boundary) * one)));
  }
}

std::int32_t FixedPointHog::approxMagnitude(int ix, int iy) {
  const std::int32_t ax = ix < 0 ? -ix : ix;
  const std::int32_t ay = iy < 0 ? -iy : iy;
  const std::int32_t mx = ax > ay ? ax : ay;
  const std::int32_t mn = ax > ay ? ay : ax;
  return mx + ((3 * mn) >> 3);
}

std::uint32_t FixedPointHog::isqrt(std::uint64_t value) {
  std::uint64_t result = 0;
  std::uint64_t bit = std::uint64_t{1} << 62;
  while (bit > value) bit >>= 2;
  while (bit != 0) {
    if (value >= result + bit) {
      value -= result + bit;
      result = (result >> 1) + bit;
    } else {
      result >>= 1;
    }
    bit >>= 2;
  }
  return static_cast<std::uint32_t>(result);
}

int FixedPointHog::orientationBin(int ix, int iy) const {
  // Fold to unsigned orientation [0, 180): a gradient and its negation map
  // to the same bin.
  if (iy < 0 || (iy == 0 && ix < 0)) {
    ix = -ix;
    iy = -iy;
  }
  const std::int64_t ax = ix < 0 ? -ix : ix;
  const std::int64_t ay = iy;
  // Sub-angle s of atan2(ay, ax) in [0, 90], found with LUT comparisons:
  // ay * 2^f >= tan(boundary_k) * ax  <=>  angle >= boundary_k.
  int s = 0;
  for (const std::int64_t tanQ : tanLut_) {
    if ((ay << params_.tanFractionBits) >= tanQ * ax) {
      ++s;
    } else {
      break;
    }
  }
  // Mirror for the second quadrant: angle = 180 - a.
  return ix >= 0 ? s : (params_.numBins - 1) - s;
}

FixedPointHog::IntCellGrid FixedPointHog::computeCells(
    const vision::Image& img) const {
  IntCellGrid grid;
  grid.cellsX = img.width() / params_.cellSize;
  grid.cellsY = img.height() / params_.cellSize;
  grid.bins = params_.numBins;
  grid.data.assign(static_cast<std::size_t>(grid.cellsX) * grid.cellsY *
                       grid.bins,
                   0);
  if (grid.cellsX <= 0 || grid.cellsY <= 0) return grid;

  // Quantize pixels once (hardware receives 8-bit camera data).
  const int maxLevel = (1 << params_.pixelBits) - 1;
  const int w = img.width();
  const int h = img.height();
  std::vector<std::int32_t> pix(static_cast<std::size_t>(w) * h);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      float v = img.at(x, y);
      v = v < 0.0f ? 0.0f : (v > 1.0f ? 1.0f : v);
      pix[static_cast<std::size_t>(y) * w + x] =
          static_cast<std::int32_t>(std::lround(v * maxLevel));
    }
  }
  auto at = [&](int x, int y) {
    x = x < 0 ? 0 : (x >= w ? w - 1 : x);
    y = y < 0 ? 0 : (y >= h ? h - 1 : y);
    return pix[static_cast<std::size_t>(y) * w + x];
  };

  // Cell rows write disjoint histogram slices: safe to scan in parallel.
  parallelFor(0, grid.cellsY, [&](long cyL) {
    const int cy = static_cast<int>(cyL);
    for (int cx = 0; cx < grid.cellsX; ++cx) {
      std::int32_t* hist =
          grid.data.data() +
          (static_cast<std::size_t>(cy) * grid.cellsX + cx) * grid.bins;
      for (int dy = 0; dy < params_.cellSize; ++dy) {
        for (int dx = 0; dx < params_.cellSize; ++dx) {
          const int x = cx * params_.cellSize + dx;
          const int y = cy * params_.cellSize + dy;
          const int ix = at(x + 1, y) - at(x - 1, y);
          const int iy = at(x, y - 1) - at(x, y + 1);
          if (ix == 0 && iy == 0) continue;
          hist[orientationBin(ix, iy)] += approxMagnitude(ix, iy);
        }
      }
    }
  });
  return grid;
}

std::vector<float> FixedPointHog::windowDescriptor(
    const vision::Image& window) const {
  return blocksFromGrid(computeCells(window));
}

std::vector<float> FixedPointHog::blocksFromGrid(
    const IntCellGrid& grid) const {
  return windowDescriptorFromGrid(grid, 0, 0, grid.cellsX, grid.cellsY);
}

std::vector<float> FixedPointHog::windowDescriptorFromGrid(
    const IntCellGrid& grid, int cx0, int cy0, int windowCellsX,
    int windowCellsY) const {
  const int bc = params_.blockCells;
  const int stride = params_.blockStrideCells;
  const int blocksX = (windowCellsX - bc) / stride + 1;
  const int blocksY = (windowCellsY - bc) / stride + 1;
  std::vector<float> out;
  if (blocksX <= 0 || blocksY <= 0) return out;
  if (cx0 < 0 || cy0 < 0 || cx0 + windowCellsX > grid.cellsX ||
      cy0 + windowCellsY > grid.cellsY) {
    throw std::invalid_argument(
        "windowDescriptorFromGrid: window exceeds grid");
  }

  const int blockLen = bc * bc * grid.bins;
  std::vector<std::int64_t> block(static_cast<std::size_t>(blockLen));
  const float dequant =
      1.0f / static_cast<float>(1 << params_.normFractionBits);
  out.reserve(static_cast<std::size_t>(blocksX) * blocksY * blockLen);

  for (int by = 0; by < blocksY; ++by) {
    for (int bx = 0; bx < blocksX; ++bx) {
      int k = 0;
      for (int cy = 0; cy < bc; ++cy) {
        for (int cx = 0; cx < bc; ++cx) {
          const std::int32_t* hist =
              grid.cell(cx0 + bx * stride + cx, cy0 + by * stride + cy);
          for (int b = 0; b < grid.bins; ++b) block[k++] = hist[b];
        }
      }
      if (params_.l2Normalize) {
        std::uint64_t sumSq = 1;  // +1 plays the epsilon role, avoids /0
        for (int i = 0; i < blockLen; ++i) {
          sumSq += static_cast<std::uint64_t>(block[i] * block[i]);
        }
        const std::uint32_t norm = isqrt(sumSq);
        for (int i = 0; i < blockLen; ++i) {
          // v / ||v|| in Q(normFractionBits), then dequantized for the SVM.
          const std::int64_t q =
              (block[i] << params_.normFractionBits) / norm;
          out.push_back(static_cast<float>(q) * dequant);
        }
      } else {
        for (int i = 0; i < blockLen; ++i) {
          out.push_back(static_cast<float>(block[i]));
        }
      }
    }
  }
  return out;
}

}  // namespace pcnn::hog
