#include "hog/fixed_point.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "common/parallel.hpp"
#include "hog/cell_kernels.hpp"

namespace pcnn::hog {
namespace {
constexpr double kPi = 3.14159265358979323846;
}

FixedPointHog::FixedPointHog(const FixedPointHogParams& params)
    : params_(params) {
  if (params.numBins <= 0 || params.numBins % 2 == 0) {
    // The fold-to-[0,90] binning below relies on the 90-degree boundary
    // falling in the middle of a bin, which requires an odd bin count
    // (9 bins of 20 degrees in the baseline).
    throw std::invalid_argument(
        "FixedPointHog: numBins must be odd (e.g. 9)");
  }
  const double binWidth = 180.0 / params.numBins;
  const int boundariesBelow90 = params.numBins / 2;  // e.g. 20,40,60,80
  const std::int64_t one = std::int64_t{1} << params.tanFractionBits;
  tanLut_.clear();
  for (int k = 1; k <= boundariesBelow90; ++k) {
    const double boundary = binWidth * k * kPi / 180.0;
    tanLut_.push_back(
        static_cast<std::int64_t>(std::llround(std::tan(boundary) * one)));
  }
}

std::int32_t FixedPointHog::approxMagnitude(int ix, int iy) {
  const std::int32_t ax = ix < 0 ? -ix : ix;
  const std::int32_t ay = iy < 0 ? -iy : iy;
  const std::int32_t mx = ax > ay ? ax : ay;
  const std::int32_t mn = ax > ay ? ay : ax;
  return mx + ((3 * mn) >> 3);
}

std::uint32_t FixedPointHog::isqrt(std::uint64_t value) {
  std::uint64_t result = 0;
  std::uint64_t bit = std::uint64_t{1} << 62;
  while (bit > value) bit >>= 2;
  while (bit != 0) {
    if (value >= result + bit) {
      value -= result + bit;
      result = (result >> 1) + bit;
    } else {
      result >>= 1;
    }
    bit >>= 2;
  }
  return static_cast<std::uint32_t>(result);
}

int FixedPointHog::orientationBin(int ix, int iy) const {
  // Fold to unsigned orientation [0, 180): a gradient and its negation map
  // to the same bin.
  if (iy < 0 || (iy == 0 && ix < 0)) {
    ix = -ix;
    iy = -iy;
  }
  const std::int64_t ax = ix < 0 ? -ix : ix;
  const std::int64_t ay = iy;
  // Sub-angle s of atan2(ay, ax) in [0, 90], found with LUT comparisons:
  // ay * 2^f >= tan(boundary_k) * ax  <=>  angle >= boundary_k.
  int s = 0;
  for (const std::int64_t tanQ : tanLut_) {
    if ((ay << params_.tanFractionBits) >= tanQ * ax) {
      ++s;
    } else {
      break;
    }
  }
  // Mirror for the second quadrant: angle = 180 - a.
  return ix >= 0 ? s : (params_.numBins - 1) - s;
}

FixedPointHog::IntCellGrid FixedPointHog::computeCells(
    const vision::Image& img) const {
  IntCellGrid grid;
  grid.cellsX = img.width() / params_.cellSize;
  grid.cellsY = img.height() / params_.cellSize;
  grid.bins = params_.numBins;
  grid.data.assign(static_cast<std::size_t>(grid.cellsX) * grid.cellsY *
                       grid.bins,
                   0);
  if (grid.cellsX <= 0 || grid.cellsY <= 0) return grid;

  // Quantize pixels once (hardware receives 8-bit camera data).
  const int w = img.width();
  const int h = img.height();
  const std::vector<std::int32_t> pix =
      kernels::quantizePixels(img, params_.pixelBits);

  // The batched kernel works in int32 rows; exotic pixelBits/
  // tanFractionBits combinations that could overflow it fall back to the
  // scalar int64 path regardless of the dispatch setting.
  kernels::Kind kind = kernels::activeKind();
  if (kind == kernels::Kind::kBatched && !kernels::fixedBatchedFits(*this)) {
    kind = kernels::Kind::kScalar;
  }
  kernels::recordDispatch(kind);

  // Cell rows write disjoint histogram slices: safe to scan in parallel
  // (both kernels are integer-exact, so chunking never changes results).
  parallelForChunked(
      0, grid.cellsY, suggestedGrain(grid.cellsY), [&](long lo, long hi) {
        if (kind == kernels::Kind::kBatched) {
          kernels::fixedCellRowsBatched(*this, pix.data(), w, h, grid,
                                        static_cast<int>(lo),
                                        static_cast<int>(hi));
        } else {
          kernels::fixedCellRowsScalar(*this, pix.data(), w, h, grid,
                                       static_cast<int>(lo),
                                       static_cast<int>(hi));
        }
      });
  return grid;
}

std::vector<float> FixedPointHog::windowDescriptor(
    const vision::Image& window) const {
  return blocksFromGrid(computeCells(window));
}

std::vector<float> FixedPointHog::blocksFromGrid(
    const IntCellGrid& grid) const {
  return windowDescriptorFromGrid(grid, 0, 0, grid.cellsX, grid.cellsY);
}

std::vector<float> FixedPointHog::windowDescriptorFromGrid(
    const IntCellGrid& grid, int cx0, int cy0, int windowCellsX,
    int windowCellsY) const {
  const int bc = params_.blockCells;
  const int stride = params_.blockStrideCells;
  const int blocksX = (windowCellsX - bc) / stride + 1;
  const int blocksY = (windowCellsY - bc) / stride + 1;
  std::vector<float> out;
  if (blocksX <= 0 || blocksY <= 0) return out;
  if (cx0 < 0 || cy0 < 0 || cx0 + windowCellsX > grid.cellsX ||
      cy0 + windowCellsY > grid.cellsY) {
    throw std::invalid_argument(
        "windowDescriptorFromGrid: window exceeds grid");
  }

  const int blockLen = bc * bc * grid.bins;
  std::vector<std::int64_t> block(static_cast<std::size_t>(blockLen));
  const float dequant =
      1.0f / static_cast<float>(1 << params_.normFractionBits);
  out.resize(static_cast<std::size_t>(blocksX) * blocksY * blockLen);
  float* dst = out.data();

  // The histogram values are bounded by cellSize^2 pixels of
  // alpha-max-beta-min magnitude; when shifting them into
  // Q(normFractionBits) still fits an int32 (true for the 8-bit/Q8
  // defaults), the normalization quotient can use 32-bit unsigned division
  // -- several times cheaper than the general 64-bit form and exactly
  // equal on non-negative operands.
  const std::int64_t maxLevel = (std::int64_t{1} << params_.pixelBits) - 1;
  const std::int64_t maxMag = maxLevel + ((3 * maxLevel) >> 3);
  const std::int64_t maxCell = static_cast<std::int64_t>(params_.cellSize) *
                               params_.cellSize * maxMag;
  const bool narrowDivide =
      params_.normFractionBits >= 0 && params_.normFractionBits < 31 &&
      (maxCell << params_.normFractionBits) <=
          std::numeric_limits<std::int32_t>::max();

  for (int by = 0; by < blocksY; ++by) {
    for (int bx = 0; bx < blocksX; ++bx) {
      int k = 0;
      for (int cy = 0; cy < bc; ++cy) {
        for (int cx = 0; cx < bc; ++cx) {
          const std::int32_t* hist =
              grid.cell(cx0 + bx * stride + cx, cy0 + by * stride + cy);
          for (int b = 0; b < grid.bins; ++b) block[k++] = hist[b];
        }
      }
      if (params_.l2Normalize) {
        std::uint64_t sumSq = 1;  // +1 plays the epsilon role, avoids /0
        for (int i = 0; i < blockLen; ++i) {
          sumSq += static_cast<std::uint64_t>(block[i] * block[i]);
        }
        const std::uint32_t norm = isqrt(sumSq);
        if (narrowDivide) {
          for (int i = 0; i < blockLen; ++i) {
            const std::uint32_t q =
                (static_cast<std::uint32_t>(block[i])
                 << params_.normFractionBits) /
                norm;
            dst[i] = static_cast<float>(q) * dequant;
          }
        } else {
          for (int i = 0; i < blockLen; ++i) {
            // v / ||v|| in Q(normFractionBits), dequantized for the SVM.
            const std::int64_t q =
                (block[i] << params_.normFractionBits) / norm;
            dst[i] = static_cast<float>(q) * dequant;
          }
        }
      } else {
        for (int i = 0; i < blockLen; ++i) {
          dst[i] = static_cast<float>(block[i]);
        }
      }
      dst += blockLen;
    }
  }
  return out;
}

}  // namespace pcnn::hog
