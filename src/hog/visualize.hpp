#pragma once

#include "hog/hog.hpp"
#include "vision/draw.hpp"

namespace pcnn::hog {

/// Renders the classic HoG "glyph" visualization: for each cell, every
/// orientation bin is drawn as a line through the cell centre,
/// perpendicular to the gradient direction (i.e. along the edge it
/// represents), with brightness proportional to the bin's share of the
/// cell's total. Works for both unsigned (9-bin) and signed (18-bin)
/// grids -- signed bins fold onto the same edge direction.
///
/// `cellPixels` is the rendered size of one cell (the source cell size is
/// irrelevant here). Returns a grayscale-ish RGB image of size
/// (cellsX * cellPixels) x (cellsY * cellPixels).
vision::RgbImage renderHogGlyphs(const CellGrid& grid,
                                 bool signedOrientation,
                                 int cellPixels = 16);

}  // namespace pcnn::hog
