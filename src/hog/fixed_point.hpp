#pragma once

#include <cstdint>
#include <vector>

#include "vision/image.hpp"

namespace pcnn::hog {

/// Parameters of the fixed-point HoG pipeline modelled on the FPGA design
/// of Advani et al. [1, 2] that the paper uses as its baseline ("FPGA-HoG:
/// an HoG of 9 orientation bins, weighted voting in magnitude, fixed-point
/// computation").
struct FixedPointHogParams {
  int pixelBits = 8;        ///< input quantization (8-bit grayscale)
  int numBins = 9;          ///< unsigned orientation bins over 0-180 deg
  int tanFractionBits = 12; ///< Q-format of the tan() boundary LUT
  int cellSize = 8;
  int blockCells = 2;
  int blockStrideCells = 1;
  bool l2Normalize = true;
  int normFractionBits = 8; ///< Q-format of normalized block outputs
};

/// Integer-only HoG extractor.
///
/// Hardware-style choices, all standard in FPGA HoG implementations:
///  - gradients from 8-bit pixels ([-1,0,1] masks, integer subtraction);
///  - magnitude via the alpha-max-plus-beta-min approximation
///    (max + 3*min/8) instead of a square root;
///  - orientation binning by comparing |Iy| against tan(boundary)*|Ix|
///    using a 4-entry fixed-point tan lookup table -- no arctangent;
///  - block L2 normalization with an integer square root, emitting
///    Q(normFractionBits) values.
class FixedPointHog {
 public:
  explicit FixedPointHog(const FixedPointHogParams& params = {});

  const FixedPointHogParams& params() const { return params_; }

  /// Per-cell integer histograms (cellsY x cellsX x numBins, row-major).
  struct IntCellGrid {
    int cellsX = 0;
    int cellsY = 0;
    int bins = 0;
    std::vector<std::int32_t> data;
    const std::int32_t* cell(int cx, int cy) const {
      return data.data() +
             (static_cast<std::size_t>(cy) * cellsX + cx) * bins;
    }
  };

  IntCellGrid computeCells(const vision::Image& img) const;

  /// Full block-structured window descriptor, dequantized to float so the
  /// same SVM front-end consumes every extractor's features. All math up to
  /// the final scaling is integer.
  std::vector<float> windowDescriptor(const vision::Image& window) const;

  /// Block assembly + integer L2 normalization over a whole precomputed
  /// grid (the fixed-point analogue of HogExtractor::blocksFromGrid).
  std::vector<float> blocksFromGrid(const IntCellGrid& grid) const;

  /// Descriptor of the window whose top-left cell is (cx0, cy0), sliced
  /// out of a cached per-level grid. Bitwise-identical to recomputing the
  /// window's sub-grid and running the block stage over it.
  std::vector<float> windowDescriptorFromGrid(const IntCellGrid& grid,
                                              int cx0, int cy0,
                                              int windowCellsX,
                                              int windowCellsY) const;

  /// Orientation bin of an integer gradient, exposed for unit tests.
  int orientationBin(int ix, int iy) const;

  /// Alpha-max-beta-min magnitude approximation, exposed for unit tests.
  static std::int32_t approxMagnitude(int ix, int iy);

  /// Integer square root (floor), exposed for unit tests.
  static std::uint32_t isqrt(std::uint64_t value);

  /// tan(boundary) LUT in Q(tanFractionBits), exposed for the batched
  /// cell kernels (hog/cell_kernels.hpp), which re-run the same boundary
  /// comparisons over whole pixel rows.
  const std::vector<std::int64_t>& tanLut() const { return tanLut_; }

 private:
  FixedPointHogParams params_;
  std::vector<std::int64_t> tanLut_;  ///< tan(boundary) in Q(tanFractionBits)
};

}  // namespace pcnn::hog
