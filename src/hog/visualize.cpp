#include "hog/visualize.hpp"

#include <algorithm>
#include <cmath>

namespace pcnn::hog {

vision::RgbImage renderHogGlyphs(const CellGrid& grid, bool signedOrientation,
                                 int cellPixels) {
  vision::RgbImage out(grid.cellsX * cellPixels, grid.cellsY * cellPixels,
                       0.05f, 0.05f, 0.08f);
  const float range = signedOrientation ? 2.0f * 3.14159265f : 3.14159265f;
  const float radius = 0.45f * static_cast<float>(cellPixels);
  for (int cy = 0; cy < grid.cellsY; ++cy) {
    for (int cx = 0; cx < grid.cellsX; ++cx) {
      const float* hist = grid.cell(cx, cy);
      float total = 0.0f;
      float maxBin = 0.0f;
      for (int k = 0; k < grid.bins; ++k) {
        total += hist[k];
        maxBin = std::max(maxBin, hist[k]);
      }
      if (total <= 0.0f) continue;
      const float centreX =
          (static_cast<float>(cx) + 0.5f) * static_cast<float>(cellPixels);
      const float centreY =
          (static_cast<float>(cy) + 0.5f) * static_cast<float>(cellPixels);
      for (int k = 0; k < grid.bins; ++k) {
        if (hist[k] <= 0.0f) continue;
        const float gradAngle =
            range * static_cast<float>(k) / static_cast<float>(grid.bins);
        // Edge direction is perpendicular to the gradient.
        const float edgeAngle = gradAngle + 1.57079633f;
        const float c = std::cos(edgeAngle);
        const float s = std::sin(edgeAngle);
        const float w = hist[k] / maxBin;
        vision::Color color{0.2f + 0.8f * w, 0.2f + 0.8f * w,
                            0.3f + 0.5f * w};
        vision::drawLine(out, centreX - radius * c, centreY - radius * s,
                         centreX + radius * c, centreY + radius * s, color);
      }
    }
  }
  return out;
}

}  // namespace pcnn::hog
