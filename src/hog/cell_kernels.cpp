#include "hog/cell_kernels.hpp"

#include <cmath>
#include <limits>
#include <optional>
#include <string>

#include "common/env.hpp"
#include "common/target_clones.hpp"
#include "obs/obs.hpp"

// Compiled with -fno-math-errno (see src/hog/CMakeLists.txt) so sqrtf
// lowers to the sqrt instruction instead of a libm call, which is what
// lets the float row pass vectorize.

namespace pcnn::hog::kernels {
namespace {

constexpr float kPi = 3.14159265358979323846f;
constexpr float kHalfPi = 1.57079632679489661923f;
constexpr float kTwoPi = 6.28318530717958647692f;

/// Per-pixel angle + vote weight, written entirely as selects so the row
/// passes below vectorize (any genuine branch kills the vectorizer).
/// foldLimit/foldSub encode the unsigned-orientation fold (pi/pi, or
/// never-taken for signed); wSel is 1 for magnitude-weighted votes, 0 for
/// voting by count.
struct AngleWeight {
  float t;       ///< orientation in [0, range)
  float weight;  ///< vote weight (0 for zero-magnitude pixels)
};

inline AngleWeight angleWeight(float x, float y, float foldLimit,
                               float foldSub, float wSel) {
  // Odd minimax polynomial for atan on [0,1]; max error ~1e-5 rad.
  constexpr float c1 = 0.99997726f;
  constexpr float c3 = -0.33262347f;
  constexpr float c5 = 0.19354346f;
  constexpr float c7 = -0.11643287f;
  constexpr float c9 = 0.05265332f;
  constexpr float c11 = -0.01172120f;
  const float ax = x < 0.0f ? -x : x;
  const float ay = y < 0.0f ? -y : y;
  const float mx = ax > ay ? ax : ay;
  const float mn = ax > ay ? ay : ax;
  const float mag = std::sqrt(x * x + y * y);
  // Quadrant-reduced argument a = min/max in [0,1]; the select keeps the
  // zero-gradient lane finite (its vote weight is zeroed below anyway).
  const float den = mx > 0.0f ? mx : 1.0f;
  const float a = mn / den;
  const float z = a * a;
  float t = a * (c1 + z * (c3 + z * (c5 + z * (c7 + z * (c9 + z * c11)))));
  // Reconstruct atan2(y, x) mapped to [0, 2pi), mirroring the scalar
  // path's "atan2 then +2pi if negative", then fold for unsigned bins.
  t = ay > ax ? kHalfPi - t : t;
  t = x < 0.0f ? kPi - t : t;
  t = y < 0.0f ? kTwoPi - t : t;
  t = t >= foldLimit ? t - foldSub : t;
  float weight = mag * wSel + (1.0f - wSel);
  weight = mag < 1e-9f ? 0.0f : weight;
  return {t, weight};
}

/// Bilinear voting: fills bin-index pairs and split weights per pixel.
PCNN_TARGET_CLONES
void hogRowPassBilinear(const float* __restrict gx,
                        const float* __restrict gy, int n, float foldLimit,
                        float foldSub, float wSel, int numBins,
                        float binWidth, std::int32_t* __restrict b0,
                        std::int32_t* __restrict b1, float* __restrict w0,
                        float* __restrict w1) {
  for (int i = 0; i < n; ++i) {
    const AngleWeight aw = angleWeight(gx[i], gy[i], foldLimit, foldSub,
                                       wSel);
    const float pos = aw.t / binWidth - 0.5f;
    // floor(pos) for pos >= -0.5 without an SSE4.1 rounding instruction.
    const int f = static_cast<int>(pos + 1.0f) - 1;
    const float frac = pos - static_cast<float>(f);
    int i0 = f;
    int i1 = f + 1;
    i0 = i0 < 0 ? i0 + numBins : i0;
    i1 = i1 >= numBins ? i1 - numBins : i1;
    b0[i] = i0;
    b1[i] = i1;
    w0[i] = aw.weight * (1.0f - frac);
    w1[i] = aw.weight * frac;
  }
}

/// Hard voting: the whole vote goes to the nearest-bin index.
PCNN_TARGET_CLONES
void hogRowPassHard(const float* __restrict gx, const float* __restrict gy,
                    int n, float foldLimit, float foldSub, float wSel,
                    int numBins, float binWidth,
                    std::int32_t* __restrict b0, float* __restrict w0) {
  for (int i = 0; i < n; ++i) {
    const AngleWeight aw = angleWeight(gx[i], gy[i], foldLimit, foldSub,
                                       wSel);
    int bin = static_cast<int>(aw.t / binWidth);
    bin = bin >= numBins ? numBins - 1 : bin;
    b0[i] = bin;
    w0[i] = aw.weight;
  }
}

/// Folds integer gradients to unsigned orientation and precomputes the
/// LUT-comparison operands: fy12 = folded_iy << tanFractionBits (always
/// from a non-negative folded iy), axv = |folded_ix|, mag = alpha-max-
/// beta-min of the *unfolded* gradient (sign-invariant anyway).
PCNN_TARGET_CLONES
void fixedRowFold(const std::int32_t* __restrict ix,
                  const std::int32_t* __restrict iy, int n,
                  int tanFractionBits, std::int32_t* __restrict fx,
                  std::int32_t* __restrict fy12,
                  std::int32_t* __restrict axv,
                  std::int32_t* __restrict mag) {
  for (int i = 0; i < n; ++i) {
    const std::int32_t x = ix[i];
    const std::int32_t y = iy[i];
    const bool flip = y < 0 || (y == 0 && x < 0);
    const std::int32_t fxi = flip ? -x : x;
    const std::int32_t fyi = flip ? -y : y;
    fx[i] = fxi;
    fy12[i] = fyi << tanFractionBits;
    axv[i] = fxi < 0 ? -fxi : fxi;
    const std::int32_t ax = x < 0 ? -x : x;
    const std::int32_t ay = y < 0 ? -y : y;
    const std::int32_t hi = ax > ay ? ax : ay;
    const std::int32_t lo = ax > ay ? ay : ax;
    mag[i] = hi + ((3 * lo) >> 3);
  }
}

/// Counts LUT boundaries passed per pixel. Because tan is increasing on
/// (0, 90deg) the LUT is monotone, so counting every passed boundary
/// equals the scalar kernel's count-until-first-failure.
PCNN_TARGET_CLONES
void fixedRowCount(const std::int32_t* __restrict fy12,
                   const std::int32_t* __restrict axv, int n,
                   const std::int32_t* __restrict tanQ, int lutLen,
                   std::int32_t* __restrict s) {
  for (int i = 0; i < n; ++i) s[i] = 0;
  for (int k = 0; k < lutLen; ++k) {
    const std::int32_t tq = tanQ[k];
    for (int i = 0; i < n; ++i) {
      s[i] += fy12[i] >= tq * axv[i] ? 1 : 0;
    }
  }
}

PCNN_TARGET_CLONES
void fixedRowBin(const std::int32_t* __restrict fx,
                 const std::int32_t* __restrict s, int n, int numBins,
                 std::int32_t* __restrict bin) {
  for (int i = 0; i < n; ++i) {
    bin[i] = fx[i] >= 0 ? s[i] : (numBins - 1) - s[i];
  }
}

/// Centered [-1,0,1] gradients of one row of quantized pixels with
/// replicate-clamped borders, written for the first `n` columns (n <=
/// width; border cells past the last whole cell are dropped upstream).
void fixedGradientRow(const std::int32_t* pix, int width, int height, int y,
                      int n, std::int32_t* __restrict ix,
                      std::int32_t* __restrict iy) {
  const std::int32_t* row = pix + static_cast<std::size_t>(y) * width;
  const std::int32_t* up =
      pix + static_cast<std::size_t>(y > 0 ? y - 1 : 0) * width;
  const std::int32_t* dn =
      pix + static_cast<std::size_t>(y < height - 1 ? y + 1 : height - 1) *
                width;
  if (n <= 0) return;
  ix[0] = row[width > 1 ? 1 : 0] - row[0];
  const int mid = n < width - 1 ? n : width - 1;
  for (int x = 1; x < mid; ++x) ix[x] = row[x + 1] - row[x - 1];
  for (int x = mid; x < n; ++x) {
    if (x >= 1) ix[x] = row[width - 1] - row[x - 1];
  }
  for (int x = 0; x < n; ++x) iy[x] = up[x] - dn[x];
}

bool envForcesScalar() {
  const std::optional<std::string> v = env::loweredToken("PCNN_SIMD");
  if (!v) return false;
  return *v == "off" || *v == "0" || *v == "scalar" || *v == "false";
}

}  // namespace

Kind activeKind() {
  return envForcesScalar() ? Kind::kScalar : Kind::kBatched;
}

const char* kindName(Kind kind) {
  return kind == Kind::kScalar ? "scalar" : "batched";
}

void recordDispatch(Kind kind) {
  static obs::Counter& batched = obs::counter("kernel.grids_batched");
  static obs::Counter& scalar = obs::counter("kernel.grids_scalar");
  (kind == Kind::kBatched ? batched : scalar).add();
  if (obs::metricsEnabled()) {
    obs::setTag("kernel_dispatch", kindName(kind));
    obs::setTag("simd_level", simdLevel());
  }
}

const char* simdLevel() {
#if defined(__x86_64__) && defined(__GNUC__)
  if (__builtin_cpu_supports("avx512f")) return "avx512";
  if (__builtin_cpu_supports("avx2")) return "avx2";
  if (__builtin_cpu_supports("sse4.2")) return "sse4.2";
  return "sse2";
#else
  return "generic";
#endif
}

void voteForPixel(const HogParams& params, float gx, float gy,
                  float* histogram) {
  const float mag = std::sqrt(gx * gx + gy * gy);
  if (mag < 1e-9f) return;  // no orientation: contributes nothing
  float angle = std::atan2(gy, gx);  // [-pi, pi]
  const float range = params.signedOrientation ? 2.0f * kPi : kPi;
  if (angle < 0.0f) angle += 2.0f * kPi;                        // [0, 2pi)
  if (!params.signedOrientation && angle >= kPi) angle -= kPi;  // [0, pi)

  const float weight = params.weightedVote ? mag : 1.0f;
  const float binWidth = range / static_cast<float>(params.numBins);
  if (params.bilinearBinning) {
    // Vote split between the two nearest bin centres (aliasing mitigation,
    // Dalal & Triggs; the paper's NApprox intentionally omits this).
    const float pos = angle / binWidth - 0.5f;
    int b0 = static_cast<int>(std::floor(pos));
    const float frac = pos - static_cast<float>(b0);
    int b1 = b0 + 1;
    if (b0 < 0) b0 += params.numBins;
    if (b1 >= params.numBins) b1 -= params.numBins;
    histogram[b0] += weight * (1.0f - frac);
    histogram[b1] += weight * frac;
  } else {
    int bin = static_cast<int>(angle / binWidth);
    if (bin >= params.numBins) bin = params.numBins - 1;
    histogram[bin] += weight;
  }
}

void hogCellRowsScalar(const GradientField& field, const HogParams& params,
                       CellGrid& grid, int cyBegin, int cyEnd) {
  for (int cy = cyBegin; cy < cyEnd; ++cy) {
    for (int cx = 0; cx < grid.cellsX; ++cx) {
      float* hist = grid.cell(cx, cy);
      for (int dy = 0; dy < params.cellSize; ++dy) {
        for (int dx = 0; dx < params.cellSize; ++dx) {
          const int x = cx * params.cellSize + dx;
          const int y = cy * params.cellSize + dy;
          voteForPixel(params, field.gx(x, y), field.gy(x, y), hist);
        }
      }
    }
  }
}

void hogCellRowsBatched(const GradientField& field, const HogParams& params,
                        CellGrid& grid, int cyBegin, int cyEnd) {
  const int cs = params.cellSize;
  const int width = grid.cellsX * cs;
  if (width <= 0) return;
  const float range = params.signedOrientation ? 2.0f * kPi : kPi;
  const float binWidth = range / static_cast<float>(params.numBins);
  // Signed orientations never fold; an unreachable limit keeps the select.
  const float foldLimit =
      params.signedOrientation ? std::numeric_limits<float>::max() : kPi;
  const float foldSub = params.signedOrientation ? 0.0f : kPi;
  const float wSel = params.weightedVote ? 1.0f : 0.0f;
  std::vector<std::int32_t> b0(width), b1(width);
  std::vector<float> w0(width), w1(width);
  for (int cy = cyBegin; cy < cyEnd; ++cy) {
    float* rowHist = grid.cell(0, cy);
    for (int dy = 0; dy < cs; ++dy) {
      const int y = cy * cs + dy;
      const float* gx =
          field.ix.data() + static_cast<std::size_t>(y) * field.width;
      const float* gy =
          field.iy.data() + static_cast<std::size_t>(y) * field.width;
      if (params.bilinearBinning) {
        hogRowPassBilinear(gx, gy, width, foldLimit, foldSub, wSel,
                           params.numBins, binWidth, b0.data(), b1.data(),
                           w0.data(), w1.data());
        for (int cx = 0; cx < grid.cellsX; ++cx) {
          float* hist = rowHist + static_cast<std::size_t>(cx) * grid.bins;
          const int base = cx * cs;
          for (int dx = 0; dx < cs; ++dx) {
            hist[b0[base + dx]] += w0[base + dx];
            hist[b1[base + dx]] += w1[base + dx];
          }
        }
      } else {
        hogRowPassHard(gx, gy, width, foldLimit, foldSub, wSel,
                       params.numBins, binWidth, b0.data(), w0.data());
        for (int cx = 0; cx < grid.cellsX; ++cx) {
          float* hist = rowHist + static_cast<std::size_t>(cx) * grid.bins;
          const int base = cx * cs;
          for (int dx = 0; dx < cs; ++dx) {
            hist[b0[base + dx]] += w0[base + dx];
          }
        }
      }
    }
  }
}

std::vector<std::int32_t> quantizePixels(const vision::Image& img,
                                         int pixelBits) {
  const int maxLevel = (1 << pixelBits) - 1;
  const int w = img.width();
  const int h = img.height();
  std::vector<std::int32_t> pix(static_cast<std::size_t>(w) * h);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      float v = img.at(x, y);
      v = v < 0.0f ? 0.0f : (v > 1.0f ? 1.0f : v);
      pix[static_cast<std::size_t>(y) * w + x] =
          static_cast<std::int32_t>(std::lround(v * maxLevel));
    }
  }
  return pix;
}

bool fixedBatchedFits(const FixedPointHog& model) {
  const FixedPointHogParams& p = model.params();
  if (p.pixelBits < 1 || p.pixelBits > 30) return false;
  const std::int64_t maxGrad = (std::int64_t{1} << p.pixelBits) - 1;
  const std::int64_t int32Max = std::numeric_limits<std::int32_t>::max();
  // fy << tanFractionBits must fit int32...
  if ((maxGrad << p.tanFractionBits) > int32Max) return false;
  // ...and so must every tanQ * |fx| product (and the LUT entries
  // themselves, which get narrowed to an int32 working copy).
  for (const std::int64_t tq : model.tanLut()) {
    if (tq < 0 || tq > int32Max || tq * maxGrad > int32Max) return false;
  }
  return true;
}

void fixedCellRowsScalar(const FixedPointHog& model, const std::int32_t* pix,
                         int width, int height,
                         FixedPointHog::IntCellGrid& grid, int cyBegin,
                         int cyEnd) {
  const FixedPointHogParams& p = model.params();
  auto at = [&](int x, int y) {
    x = x < 0 ? 0 : (x >= width ? width - 1 : x);
    y = y < 0 ? 0 : (y >= height ? height - 1 : y);
    return pix[static_cast<std::size_t>(y) * width + x];
  };
  for (int cy = cyBegin; cy < cyEnd; ++cy) {
    for (int cx = 0; cx < grid.cellsX; ++cx) {
      std::int32_t* hist =
          grid.data.data() +
          (static_cast<std::size_t>(cy) * grid.cellsX + cx) * grid.bins;
      for (int dy = 0; dy < p.cellSize; ++dy) {
        for (int dx = 0; dx < p.cellSize; ++dx) {
          const int x = cx * p.cellSize + dx;
          const int y = cy * p.cellSize + dy;
          const int ix = at(x + 1, y) - at(x - 1, y);
          const int iy = at(x, y - 1) - at(x, y + 1);
          if (ix == 0 && iy == 0) continue;
          hist[model.orientationBin(ix, iy)] +=
              FixedPointHog::approxMagnitude(ix, iy);
        }
      }
    }
  }
}

void fixedCellRowsBatched(const FixedPointHog& model, const std::int32_t* pix,
                          int width, int height,
                          FixedPointHog::IntCellGrid& grid, int cyBegin,
                          int cyEnd) {
  const FixedPointHogParams& p = model.params();
  const int cs = p.cellSize;
  const int n = grid.cellsX * cs;
  if (n <= 0) return;
  const std::vector<std::int32_t> tanQ(model.tanLut().begin(),
                                       model.tanLut().end());
  const int lutLen = static_cast<int>(tanQ.size());
  std::vector<std::int32_t> ix(n), iy(n), fx(n), fy12(n), axv(n), s(n),
      bin(n), mag(n);
  for (int cy = cyBegin; cy < cyEnd; ++cy) {
    std::int32_t* rowHist =
        grid.data.data() +
        static_cast<std::size_t>(cy) * grid.cellsX * grid.bins;
    for (int dy = 0; dy < cs; ++dy) {
      const int y = cy * cs + dy;
      fixedGradientRow(pix, width, height, y, n, ix.data(), iy.data());
      fixedRowFold(ix.data(), iy.data(), n, p.tanFractionBits, fx.data(),
                   fy12.data(), axv.data(), mag.data());
      fixedRowCount(fy12.data(), axv.data(), n, tanQ.data(), lutLen,
                    s.data());
      fixedRowBin(fx.data(), s.data(), n, p.numBins, bin.data());
      // Zero-gradient pixels land in the middle bin with magnitude 0; the
      // integer += 0 keeps this bitwise-identical to the scalar "skip".
      for (int cx = 0; cx < grid.cellsX; ++cx) {
        std::int32_t* hist =
            rowHist + static_cast<std::size_t>(cx) * grid.bins;
        const int base = cx * cs;
        for (int dx = 0; dx < cs; ++dx) {
          hist[bin[base + dx]] += mag[base + dx];
        }
      }
    }
  }
}

}  // namespace pcnn::hog::kernels
