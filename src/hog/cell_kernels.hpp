#pragma once

#include <cstdint>
#include <vector>

#include "hog/fixed_point.hpp"
#include "hog/gradient.hpp"
#include "hog/hog.hpp"
#include "vision/image.hpp"

namespace pcnn::hog::kernels {

/// Cell-histogram kernel layer.
///
/// Both HoG voting loops (float HogExtractor and integer FixedPointHog)
/// exist in two implementations:
///
///  - *scalar*: the reference per-pixel loop, bit-for-bit the code the
///    extractors shipped with (atan2/sqrt per pixel for float, LUT
///    comparisons per pixel for fixed-point);
///  - *batched*: a structure-of-arrays row kernel. One pass walks a whole
///    pixel row and fills bin-index / vote-weight arrays with branch-free
///    selects (the float path replaces atan2 with a quadrant-reduced odd
///    polynomial, the fixed-point path hoists the tan-LUT loop so each
///    boundary is one vectorized compare over the row), then a scatter
///    pass accumulates into the cell histograms. The hot row passes are
///    compiled with gcc target_clones, so an AVX2/FMA (x86-64-v3) clone is
///    picked by the dynamic linker on capable CPUs and the baseline build
///    stays runnable anywhere.
///
/// Numerics contract: the batched fixed-point kernel is bitwise-identical
/// to the scalar one (integer math, same per-cell accumulation, monotone
/// LUT counting == early-exit counting). The batched float kernel tracks
/// the scalar one within the polynomial's ~1e-5 rad angle error (worst
/// case a few 1e-3 absolute per histogram bin); tests/cell_kernels_test.cpp
/// pins both contracts down.
///
/// Dispatch: activeKind() reads PCNN_SIMD on every call, so setting
/// PCNN_SIMD=off (or 0/scalar/false) forces the scalar path at any point,
/// including from a test or CI re-run of an already-built binary.

enum class Kind {
  kScalar,   ///< reference per-pixel loops
  kBatched,  ///< SoA row kernels (default)
};

/// Kernel selected by the PCNN_SIMD environment variable (re-read on every
/// call; unset/on means batched).
Kind activeKind();

/// "scalar" or "batched".
const char* kindName(Kind kind);

/// Observability hook called once per computed grid: bumps the per-path
/// grid counter ("kernel.grids_batched" / "kernel.grids_scalar") and keeps
/// the "kernel_dispatch" / "simd_level" snapshot tags current, so every
/// metrics report carries the dispatch path that actually ran. A few
/// relaxed branches when metrics are off.
void recordDispatch(Kind kind);

/// Best instruction set the *CPU* reports for the cloned row passes:
/// "avx512", "avx2", "sse4.2", "sse2" or "generic" (non-x86 builds). The
/// batched kernels run everywhere; this is what the ifunc resolver has to
/// work with, recorded into bench output for provenance.
const char* simdLevel();

/// Reference single-pixel vote (exactly HogExtractor's original private
/// voteForPixel). Shared by the scalar kernel and cellHistogram.
void voteForPixel(const HogParams& params, float gx, float gy,
                  float* histogram);

/// Accumulates cell rows [cyBegin, cyEnd) of `grid` from a precomputed
/// gradient field. The grid must be pre-sized and zeroed; each call writes
/// only its own rows, so disjoint ranges can run on different threads.
void hogCellRowsScalar(const GradientField& field, const HogParams& params,
                       CellGrid& grid, int cyBegin, int cyEnd);
void hogCellRowsBatched(const GradientField& field, const HogParams& params,
                        CellGrid& grid, int cyBegin, int cyEnd);

/// Clamps img to [0,1] and quantizes to pixelBits integer levels -- the
/// shared front half of FixedPointHog::computeCells, exposed so benches
/// and tests can drive the integer row kernels directly.
std::vector<std::int32_t> quantizePixels(const vision::Image& img,
                                         int pixelBits);

/// True when the batched fixed-point kernel's int32 row math cannot
/// overflow for this model's pixelBits/tanFractionBits (holds for the
/// defaults: 8-bit pixels, Q12 LUT). When false the dispatcher silently
/// stays on the scalar int64 path.
bool fixedBatchedFits(const FixedPointHog& model);

/// Integer analogues of the float row kernels, over quantized pixels
/// (width x height, row-major; gradients are recomputed per row with
/// replicate-clamped borders, matching the scalar extractor).
void fixedCellRowsScalar(const FixedPointHog& model, const std::int32_t* pix,
                         int width, int height,
                         FixedPointHog::IntCellGrid& grid, int cyBegin,
                         int cyEnd);
void fixedCellRowsBatched(const FixedPointHog& model, const std::int32_t* pix,
                          int width, int height,
                          FixedPointHog::IntCellGrid& grid, int cyBegin,
                          int cyEnd);

}  // namespace pcnn::hog::kernels
