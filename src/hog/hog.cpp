#include "hog/hog.hpp"

#include <cmath>
#include <stdexcept>

#include "common/parallel.hpp"

namespace pcnn::hog {
namespace {
constexpr float kPi = 3.14159265358979323846f;
}

HogExtractor::HogExtractor(const HogParams& params) : params_(params) {
  if (params.cellSize <= 0 || params.numBins <= 0) {
    throw std::invalid_argument("HogExtractor: invalid params");
  }
}

void HogExtractor::voteForPixel(float gx, float gy, float* histogram) const {
  const float mag = std::sqrt(gx * gx + gy * gy);
  if (mag < 1e-9f) return;  // no orientation: contributes nothing
  float angle = std::atan2(gy, gx);  // [-pi, pi]
  const float range = params_.signedOrientation ? 2.0f * kPi : kPi;
  if (angle < 0.0f) angle += 2.0f * kPi;           // [0, 2pi)
  if (!params_.signedOrientation && angle >= kPi) angle -= kPi;  // [0, pi)

  const float weight = params_.weightedVote ? mag : 1.0f;
  const float binWidth = range / static_cast<float>(params_.numBins);
  if (params_.bilinearBinning) {
    // Vote split between the two nearest bin centres (aliasing mitigation,
    // Dalal & Triggs; the paper's NApprox intentionally omits this).
    const float pos = angle / binWidth - 0.5f;
    int b0 = static_cast<int>(std::floor(pos));
    const float frac = pos - static_cast<float>(b0);
    int b1 = b0 + 1;
    if (b0 < 0) b0 += params_.numBins;
    if (b1 >= params_.numBins) b1 -= params_.numBins;
    histogram[b0] += weight * (1.0f - frac);
    histogram[b1] += weight * frac;
  } else {
    int bin = static_cast<int>(angle / binWidth);
    if (bin >= params_.numBins) bin = params_.numBins - 1;
    histogram[bin] += weight;
  }
}

std::vector<float> HogExtractor::cellHistogram(const vision::Image& img,
                                               int x0, int y0) const {
  std::vector<float> histogram(static_cast<std::size_t>(params_.numBins),
                               0.0f);
  for (int dy = 0; dy < params_.cellSize; ++dy) {
    for (int dx = 0; dx < params_.cellSize; ++dx) {
      const int x = x0 + dx;
      const int y = y0 + dy;
      const float gx = img.atClamped(x + 1, y) - img.atClamped(x - 1, y);
      const float gy = img.atClamped(x, y - 1) - img.atClamped(x, y + 1);
      voteForPixel(gx, gy, histogram.data());
    }
  }
  return histogram;
}

CellGrid HogExtractor::computeCells(const vision::Image& img) const {
  CellGrid grid;
  grid.cellsX = img.width() / params_.cellSize;
  grid.cellsY = img.height() / params_.cellSize;
  grid.bins = params_.numBins;
  grid.data.assign(static_cast<std::size_t>(grid.cellsX) * grid.cellsY *
                       grid.bins,
                   0.0f);
  const GradientField field = computeGradients(img);
  // Each cell row writes a disjoint slice of grid.data, so rows can run on
  // any thread without changing the result.
  parallelFor(0, grid.cellsY, [&](long cy) {
    for (int cx = 0; cx < grid.cellsX; ++cx) {
      float* hist = grid.cell(cx, static_cast<int>(cy));
      for (int dy = 0; dy < params_.cellSize; ++dy) {
        for (int dx = 0; dx < params_.cellSize; ++dx) {
          const int x = cx * params_.cellSize + dx;
          const int y = static_cast<int>(cy) * params_.cellSize + dy;
          voteForPixel(field.gx(x, y), field.gy(x, y), hist);
        }
      }
    }
  });
  return grid;
}

std::vector<float> HogExtractor::blocksFromGrid(const CellGrid& grid) const {
  return windowDescriptorFromGrid(grid, 0, 0, grid.cellsX, grid.cellsY);
}

std::vector<float> HogExtractor::windowDescriptorFromGrid(
    const CellGrid& grid, int cx0, int cy0, int windowCellsX,
    int windowCellsY) const {
  const int bc = params_.blockCells;
  const int stride = params_.blockStrideCells;
  const int blocksX = (windowCellsX - bc) / stride + 1;
  const int blocksY = (windowCellsY - bc) / stride + 1;
  std::vector<float> out;
  if (blocksX <= 0 || blocksY <= 0) return out;
  if (cx0 < 0 || cy0 < 0 || cx0 + windowCellsX > grid.cellsX ||
      cy0 + windowCellsY > grid.cellsY) {
    throw std::invalid_argument(
        "windowDescriptorFromGrid: window exceeds grid");
  }
  out.reserve(static_cast<std::size_t>(blocksX) * blocksY * bc * bc *
              grid.bins);
  for (int by = 0; by < blocksY; ++by) {
    for (int bx = 0; bx < blocksX; ++bx) {
      const std::size_t blockStart = out.size();
      for (int cy = 0; cy < bc; ++cy) {
        for (int cx = 0; cx < bc; ++cx) {
          const float* hist =
              grid.cell(cx0 + bx * stride + cx, cy0 + by * stride + cy);
          out.insert(out.end(), hist, hist + grid.bins);
        }
      }
      if (params_.l2Normalize) {
        double sumSq = 0.0;
        for (std::size_t i = blockStart; i < out.size(); ++i) {
          sumSq += static_cast<double>(out[i]) * out[i];
        }
        const float norm = static_cast<float>(
            std::sqrt(sumSq + params_.l2Epsilon * params_.l2Epsilon));
        for (std::size_t i = blockStart; i < out.size(); ++i) {
          out[i] /= norm;
        }
      }
    }
  }
  return out;
}

std::vector<float> HogExtractor::windowDescriptor(
    const vision::Image& window) const {
  return blocksFromGrid(computeCells(window));
}

std::vector<float> HogExtractor::cellDescriptor(
    const vision::Image& window) const {
  CellGrid grid = computeCells(window);
  return std::move(grid.data);
}

int HogExtractor::descriptorSize(int windowWidth, int windowHeight) const {
  const int cellsX = windowWidth / params_.cellSize;
  const int cellsY = windowHeight / params_.cellSize;
  const int bc = params_.blockCells;
  const int stride = params_.blockStrideCells;
  const int blocksX = (cellsX - bc) / stride + 1;
  const int blocksY = (cellsY - bc) / stride + 1;
  if (blocksX <= 0 || blocksY <= 0) return 0;
  return blocksX * blocksY * bc * bc * params_.numBins;
}

}  // namespace pcnn::hog
