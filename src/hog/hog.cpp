#include "hog/hog.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "common/parallel.hpp"
#include "hog/cell_kernels.hpp"
#include "obs/obs.hpp"

namespace pcnn::hog {

HogExtractor::HogExtractor(const HogParams& params) : params_(params) {
  if (params.cellSize <= 0 || params.numBins <= 0) {
    throw std::invalid_argument("HogExtractor: invalid params");
  }
}

std::vector<float> HogExtractor::cellHistogram(const vision::Image& img,
                                               int x0, int y0) const {
  std::vector<float> histogram(static_cast<std::size_t>(params_.numBins),
                               0.0f);
  for (int dy = 0; dy < params_.cellSize; ++dy) {
    for (int dx = 0; dx < params_.cellSize; ++dx) {
      const int x = x0 + dx;
      const int y = y0 + dy;
      const float gx = img.atClamped(x + 1, y) - img.atClamped(x - 1, y);
      const float gy = img.atClamped(x, y - 1) - img.atClamped(x, y + 1);
      kernels::voteForPixel(params_, gx, gy, histogram.data());
    }
  }
  return histogram;
}

CellGrid HogExtractor::computeCells(const vision::Image& img) const {
  CellGrid grid;
  grid.cellsX = img.width() / params_.cellSize;
  grid.cellsY = img.height() / params_.cellSize;
  grid.bins = params_.numBins;
  grid.data.assign(static_cast<std::size_t>(grid.cellsX) * grid.cellsY *
                       grid.bins,
                   0.0f);
  if (grid.cellsX <= 0 || grid.cellsY <= 0) return grid;
  const GradientField field = computeGradients(img);
  const kernels::Kind kind = kernels::activeKind();
  kernels::recordDispatch(kind);
  // Each cell row writes a disjoint slice of grid.data, so row blocks can
  // run on any thread without changing the result; the grain amortizes
  // pool dispatch and the batched kernel's row-buffer allocation.
  parallelForChunked(
      0, grid.cellsY, suggestedGrain(grid.cellsY), [&](long lo, long hi) {
        if (kind == kernels::Kind::kBatched) {
          kernels::hogCellRowsBatched(field, params_, grid,
                                      static_cast<int>(lo),
                                      static_cast<int>(hi));
        } else {
          kernels::hogCellRowsScalar(field, params_, grid,
                                     static_cast<int>(lo),
                                     static_cast<int>(hi));
        }
      });
  return grid;
}

std::vector<float> HogExtractor::blocksFromGrid(const CellGrid& grid) const {
  return windowDescriptorFromGrid(grid, 0, 0, grid.cellsX, grid.cellsY);
}

std::vector<float> HogExtractor::windowDescriptorFromGrid(
    const CellGrid& grid, int cx0, int cy0, int windowCellsX,
    int windowCellsY) const {
  const int bc = params_.blockCells;
  const int stride = params_.blockStrideCells;
  const int blocksX = (windowCellsX - bc) / stride + 1;
  const int blocksY = (windowCellsY - bc) / stride + 1;
  std::vector<float> out;
  if (blocksX <= 0 || blocksY <= 0) return out;
  if (cx0 < 0 || cy0 < 0 || cx0 + windowCellsX > grid.cellsX ||
      cy0 + windowCellsY > grid.cellsY) {
    throw std::invalid_argument(
        "windowDescriptorFromGrid: window exceeds grid");
  }
  const int blockLen = bc * bc * grid.bins;
  out.resize(static_cast<std::size_t>(blocksX) * blocksY * blockLen);
  float* dst = out.data();
  for (int by = 0; by < blocksY; ++by) {
    for (int bx = 0; bx < blocksX; ++bx) {
      assembleBlock(grid, cx0 + bx * stride, cy0 + by * stride, dst);
      dst += blockLen;
    }
  }
  return out;
}

void HogExtractor::assembleBlock(const CellGrid& grid, int cellX, int cellY,
                                 float* dst) const {
  const int bc = params_.blockCells;
  const int blockLen = bc * bc * grid.bins;
  float* block = dst;
  for (int cy = 0; cy < bc; ++cy) {
    for (int cx = 0; cx < bc; ++cx) {
      const float* hist = grid.cell(cellX + cx, cellY + cy);
      std::memcpy(dst, hist, sizeof(float) * grid.bins);
      dst += grid.bins;
    }
  }
  if (params_.l2Normalize) {
    double sumSq = 0.0;
    for (int i = 0; i < blockLen; ++i) {
      sumSq += static_cast<double>(block[i]) * block[i];
    }
    // One divide + blockLen multiplies; detection assembles thousands of
    // overlapping blocks per frame, and per-element division was a
    // measurable share of the cached-grid scan.
    const float invNorm = 1.0f /
                          static_cast<float>(std::sqrt(
                              sumSq + params_.l2Epsilon * params_.l2Epsilon));
    for (int i = 0; i < blockLen; ++i) block[i] *= invNorm;
  }
}

BlockGrid HogExtractor::blockGridFromCells(const CellGrid& grid) const {
  if (params_.blockStrideCells != 1) {
    throw std::invalid_argument(
        "blockGridFromCells: requires blockStrideCells == 1 so every "
        "window origin lines up with a precomputed block");
  }
  const int bc = params_.blockCells;
  BlockGrid blocks;
  blocks.blocksX = grid.cellsX - bc + 1;
  blocks.blocksY = grid.cellsY - bc + 1;
  blocks.blockLen = bc * bc * grid.bins;
  if (blocks.blocksX <= 0 || blocks.blocksY <= 0) {
    blocks.blocksX = 0;
    blocks.blocksY = 0;
    return blocks;
  }
  blocks.data.resize(static_cast<std::size_t>(blocks.blocksX) *
                     blocks.blocksY * blocks.blockLen);
  static obs::Counter& blocksNormalized = obs::counter("blocks_normalized");
  blocksNormalized.add(static_cast<long>(blocks.blocksX) * blocks.blocksY);
  // Block rows write disjoint output rows; assembleBlock only reads the
  // grid, so chunk boundaries cannot change any value.
  parallelForChunked(
      0, blocks.blocksY, suggestedGrain(blocks.blocksY),
      [&](long lo, long hi) {
        for (long by = lo; by < hi; ++by) {
          float* dst = blocks.data.data() +
                       static_cast<std::size_t>(by) * blocks.blocksX *
                           blocks.blockLen;
          for (int bx = 0; bx < blocks.blocksX; ++bx) {
            assembleBlock(grid, bx, static_cast<int>(by), dst);
            dst += blocks.blockLen;
          }
        }
      });
  return blocks;
}

long HogExtractor::refreshBlockRect(const CellGrid& grid, BlockGrid& blocks,
                                    int bx0, int by0, int bx1,
                                    int by1) const {
  if (params_.blockStrideCells != 1) {
    throw std::invalid_argument(
        "refreshBlockRect: requires blockStrideCells == 1");
  }
  if (blocks.blocksX != grid.cellsX - params_.blockCells + 1 ||
      blocks.blocksY != grid.cellsY - params_.blockCells + 1 ||
      blocks.blockLen != params_.blockCells * params_.blockCells * grid.bins) {
    throw std::invalid_argument(
        "refreshBlockRect: block grid does not match cell grid");
  }
  bx0 = std::max(0, bx0);
  by0 = std::max(0, by0);
  bx1 = std::min(blocks.blocksX, bx1);
  by1 = std::min(blocks.blocksY, by1);
  if (bx0 >= bx1 || by0 >= by1) return 0;
  for (int by = by0; by < by1; ++by) {
    for (int bx = bx0; bx < bx1; ++bx) {
      assembleBlock(grid, bx, by, blocks.block(bx, by));
    }
  }
  return static_cast<long>(bx1 - bx0) * (by1 - by0);
}

std::vector<float> HogExtractor::windowDescriptorFromBlocks(
    const BlockGrid& blocks, int cx0, int cy0, int windowCellsX,
    int windowCellsY) const {
  const int bc = params_.blockCells;
  const int wbx = windowCellsX - bc + 1;
  const int wby = windowCellsY - bc + 1;
  std::vector<float> out;
  if (wbx <= 0 || wby <= 0) return out;
  if (cx0 < 0 || cy0 < 0 || cx0 + wbx > blocks.blocksX ||
      cy0 + wby > blocks.blocksY) {
    throw std::invalid_argument(
        "windowDescriptorFromBlocks: window exceeds block grid");
  }
  // With stride 1 the window's blocks are wby contiguous runs of wbx
  // blocks in the level-wide grid: a straight row-wise copy.
  out.resize(static_cast<std::size_t>(wbx) * wby * blocks.blockLen);
  const std::size_t rowLen = static_cast<std::size_t>(wbx) * blocks.blockLen;
  float* dst = out.data();
  for (int by = 0; by < wby; ++by) {
    std::memcpy(dst, blocks.block(cx0, cy0 + by), sizeof(float) * rowLen);
    dst += rowLen;
  }
  return out;
}

std::vector<float> HogExtractor::windowDescriptor(
    const vision::Image& window) const {
  return blocksFromGrid(computeCells(window));
}

std::vector<float> HogExtractor::cellDescriptor(
    const vision::Image& window) const {
  CellGrid grid = computeCells(window);
  return std::move(grid.data);
}

int HogExtractor::descriptorSize(int windowWidth, int windowHeight) const {
  const int cellsX = windowWidth / params_.cellSize;
  const int cellsY = windowHeight / params_.cellSize;
  const int bc = params_.blockCells;
  const int stride = params_.blockStrideCells;
  const int blocksX = (cellsX - bc) / stride + 1;
  const int blocksY = (cellsY - bc) / stride + 1;
  if (blocksX <= 0 || blocksY <= 0) return 0;
  return blocksX * blocksY * bc * bc * params_.numBins;
}

}  // namespace pcnn::hog
