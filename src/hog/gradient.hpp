#pragma once

#include <vector>

#include "vision/image.hpp"

namespace pcnn::hog {

/// Per-pixel centred gradients computed with the 1-D point-derivative mask
/// [-1, 0, 1] (and its transpose), the mask Dalal & Triggs found optimal and
/// the one the paper's Figure 2 illustrates: Ix = P5 - P3, Iy = P1 - P7.
/// Borders use replicate-clamping.
struct GradientField {
  int width = 0;
  int height = 0;
  std::vector<float> ix;
  std::vector<float> iy;

  float gx(int x, int y) const { return ix[static_cast<std::size_t>(y) * width + x]; }
  float gy(int x, int y) const { return iy[static_cast<std::size_t>(y) * width + x]; }
};

/// Computes the gradient field of a grayscale image.
///
/// Note on the sign convention: Iy = row above - row below (P1 - P7 with
/// rows numbered top-down), matching the paper's pixel diagram.
GradientField computeGradients(const vision::Image& img);

}  // namespace pcnn::hog
