#include "hog/gradient.hpp"

#include "common/parallel.hpp"

namespace pcnn::hog {

GradientField computeGradients(const vision::Image& img) {
  GradientField field;
  const int w = img.width();
  const int h = img.height();
  field.width = w;
  field.height = h;
  const std::size_t n = static_cast<std::size_t>(w) * h;
  field.ix.resize(n);
  field.iy.resize(n);
  if (w <= 0 || h <= 0) return field;
  const float* px = img.data().data();
  // Row blocks write disjoint slices of ix/iy; interior columns use the
  // branch-free centred form so the compiler vectorizes both subtractions.
  parallelForChunked(0, h, suggestedGrain(h), [&](long lo, long hi) {
    for (long y = lo; y < hi; ++y) {
      const float* row = px + static_cast<std::size_t>(y) * w;
      const float* up =
          px + static_cast<std::size_t>(y > 0 ? y - 1 : 0) * w;
      const float* dn =
          px + static_cast<std::size_t>(y < h - 1 ? y + 1 : h - 1) * w;
      float* ix = field.ix.data() + static_cast<std::size_t>(y) * w;
      float* iy = field.iy.data() + static_cast<std::size_t>(y) * w;
      ix[0] = row[w > 1 ? 1 : 0] - row[0];
      for (int x = 1; x < w - 1; ++x) ix[x] = row[x + 1] - row[x - 1];
      if (w > 1) ix[w - 1] = row[w - 1] - row[w - 2];
      for (int x = 0; x < w; ++x) iy[x] = up[x] - dn[x];
    }
  });
  return field;
}

}  // namespace pcnn::hog
