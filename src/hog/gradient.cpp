#include "hog/gradient.hpp"

#include "common/parallel.hpp"

namespace pcnn::hog {

GradientField computeGradients(const vision::Image& img) {
  GradientField field;
  field.width = img.width();
  field.height = img.height();
  const std::size_t n =
      static_cast<std::size_t>(img.width()) * img.height();
  field.ix.resize(n);
  field.iy.resize(n);
  // Rows are independent (each writes its own slice of ix/iy).
  parallelFor(0, img.height(), [&](long y) {
    for (int x = 0; x < img.width(); ++x) {
      const std::size_t i =
          static_cast<std::size_t>(y) * img.width() + x;
      field.ix[i] = img.atClamped(x + 1, static_cast<int>(y)) -
                    img.atClamped(x - 1, static_cast<int>(y));
      field.iy[i] = img.atClamped(x, static_cast<int>(y) - 1) -
                    img.atClamped(x, static_cast<int>(y) + 1);
    }
  });
  return field;
}

}  // namespace pcnn::hog
