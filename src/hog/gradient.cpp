#include "hog/gradient.hpp"

namespace pcnn::hog {

GradientField computeGradients(const vision::Image& img) {
  GradientField field;
  field.width = img.width();
  field.height = img.height();
  const std::size_t n =
      static_cast<std::size_t>(img.width()) * img.height();
  field.ix.resize(n);
  field.iy.resize(n);
  for (int y = 0; y < img.height(); ++y) {
    for (int x = 0; x < img.width(); ++x) {
      const std::size_t i = static_cast<std::size_t>(y) * img.width() + x;
      field.ix[i] = img.atClamped(x + 1, y) - img.atClamped(x - 1, y);
      field.iy[i] = img.atClamped(x, y - 1) - img.atClamped(x, y + 1);
    }
  }
  return field;
}

}  // namespace pcnn::hog
