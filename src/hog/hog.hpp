#pragma once

#include <vector>

#include "hog/gradient.hpp"
#include "vision/image.hpp"

namespace pcnn::hog {

/// Configuration of a Histogram-of-Oriented-Gradients extractor.
///
/// The two reference configurations used in the paper's Figure 4 are:
///  - FPGA-HoG: 9 unsigned bins (0-180), weighted voting by magnitude,
///    fixed-point arithmetic (see FixedPointHog);
///  - NApprox(fp): 18 signed bins (0-360), voting by count, float math
///    (see napprox::NApproxHog, which shares this histogram layout).
/// Both exploit contrast normalization over 2x2-cell blocks with a stride
/// of one cell, using the L2 norm v / ||v||_2.
struct HogParams {
  int cellSize = 8;          ///< pixels per cell edge (paper: 8)
  int numBins = 9;           ///< orientation bins
  bool signedOrientation = false;  ///< false: 0-180 deg, true: 0-360 deg
  bool weightedVote = true;  ///< vote by gradient magnitude (vs. by count)
  bool bilinearBinning = true;     ///< bilinear interpolation between bins
  int blockCells = 2;        ///< cells per block edge (paper: 2x2)
  int blockStrideCells = 1;  ///< block stride in cells (paper: 1)
  bool l2Normalize = true;   ///< L2 block normalization (elided on TrueNorth)
  float l2Epsilon = 1e-3f;   ///< epsilon added under the sqrt of the norm
};

/// A dense grid of per-cell orientation histograms.
struct CellGrid {
  int cellsX = 0;
  int cellsY = 0;
  int bins = 0;
  std::vector<float> data;  ///< cellsY * cellsX * bins, row-major

  float* cell(int cx, int cy) {
    return data.data() + (static_cast<std::size_t>(cy) * cellsX + cx) * bins;
  }
  const float* cell(int cx, int cy) const {
    return data.data() + (static_cast<std::size_t>(cy) * cellsX + cx) * bins;
  }
};

/// A dense grid of assembled (and normalized) blocks over a whole cell
/// grid. Each block's values depend only on its own cells, never on the
/// window asking for it -- so one normalization pass per pyramid level can
/// be shared by every overlapping detection window, where the per-window
/// path re-normalizes each block for each of the up-to-blockCells^2
/// windows covering it.
struct BlockGrid {
  int blocksX = 0;
  int blocksY = 0;
  int blockLen = 0;  ///< blockCells^2 * bins floats per block
  std::vector<float> data;  ///< blocksY * blocksX * blockLen, row-major

  float* block(int bx, int by) {
    return data.data() +
           (static_cast<std::size_t>(by) * blocksX + bx) * blockLen;
  }
  const float* block(int bx, int by) const {
    return data.data() +
           (static_cast<std::size_t>(by) * blocksX + bx) * blockLen;
  }
};

/// Reference floating-point HoG extractor (Dalal & Triggs).
class HogExtractor {
 public:
  explicit HogExtractor(const HogParams& params = {});

  const HogParams& params() const { return params_; }

  /// Computes per-cell histograms for the whole image. Cells are
  /// non-overlapping cellSize x cellSize tiles; partial border cells are
  /// dropped.
  CellGrid computeCells(const vision::Image& img) const;

  /// Histogram of a single cell whose top-left pixel is (x0, y0). The
  /// gradients at the cell border use pixels outside the cell (the paper's
  /// "10x10 pixels are fed to HoG" for an 8x8 cell).
  std::vector<float> cellHistogram(const vision::Image& img, int x0,
                                   int y0) const;

  /// Full window descriptor: overlapping blocks of blockCells^2 cells,
  /// each block L2-normalized when l2Normalize is set, concatenated.
  /// For a 64x128 window this yields 7*15*4*numBins features (3780 at 9
  /// bins; 7560 at 18 bins, the count quoted in the paper).
  std::vector<float> windowDescriptor(const vision::Image& window) const;

  /// Flat per-cell descriptor with no block structure or normalization --
  /// the feature layout used when feeding the Eedn classifier, where the
  /// paper elides block normalization (Section 5). 8*16*numBins features
  /// for a 64x128 window.
  std::vector<float> cellDescriptor(const vision::Image& window) const;

  /// Descriptor length of windowDescriptor for the given window size.
  int descriptorSize(int windowWidth, int windowHeight) const;

  /// Assembles (and optionally normalizes) blocks from a precomputed grid.
  std::vector<float> blocksFromGrid(const CellGrid& grid) const;

  /// Assembles the block-normalized descriptor of the window whose top-left
  /// cell is (cx0, cy0) by slicing a cached grid -- the shared-cell-grid
  /// detection path: the grid is computed once per pyramid level and every
  /// overlapping window reuses it instead of re-extracting its cells.
  /// Bitwise-identical to blocksFromGrid over the window's sub-grid.
  std::vector<float> windowDescriptorFromGrid(const CellGrid& grid, int cx0,
                                              int cy0, int windowCellsX,
                                              int windowCellsY) const;

  /// Assembles and normalizes every block of the grid once. Requires
  /// blockStrideCells == 1 (the library-wide default) so that any window
  /// origin lines up with the precomputed blocks.
  BlockGrid blockGridFromCells(const CellGrid& grid) const;

  /// Descriptor of the window whose top-left cell is (cx0, cy0), sliced
  /// out of a precomputed block grid. Bitwise-identical to
  /// windowDescriptorFromGrid over the corresponding cell grid; the block
  /// normalization work is amortized across all windows sharing the grid.
  std::vector<float> windowDescriptorFromBlocks(const BlockGrid& blocks,
                                                int cx0, int cy0,
                                                int windowCellsX,
                                                int windowCellsY) const;

  /// Re-assembles (and re-normalizes) the blocks [bx0, bx1) x [by0, by1)
  /// of a grid previously built by blockGridFromCells from the (updated)
  /// cell grid -- the incremental path behind temporal detection, where
  /// only the blocks touching recomputed cells change. Each block depends
  /// only on its own cells, so the refreshed blocks are bitwise-identical
  /// to a full blockGridFromCells rebuild. The rect is clamped to the
  /// grid; returns the number of blocks refreshed.
  long refreshBlockRect(const CellGrid& grid, BlockGrid& blocks, int bx0,
                        int by0, int bx1, int by1) const;

 private:
  /// Copies one block's cells to dst and L2-normalizes in place -- the
  /// single implementation behind every block-assembly path, which is what
  /// makes the from-grid and from-blocks descriptors bitwise-identical.
  void assembleBlock(const CellGrid& grid, int cellX, int cellY,
                     float* dst) const;
  HogParams params_;
};

}  // namespace pcnn::hog
