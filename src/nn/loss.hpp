#pragma once

#include <vector>

namespace pcnn::nn {

/// Loss value plus gradient with respect to the prediction.
struct LossResult {
  float value = 0.0f;
  std::vector<float> grad;
};

/// Mean squared error: used to train the Parrot HoG to mimic reference
/// histograms (a regression onto feature values).
LossResult mseLoss(const std::vector<float>& predicted,
                   const std::vector<float>& target);

/// Softmax cross-entropy over class scores; `target` is the class index.
LossResult softmaxCrossEntropy(const std::vector<float>& scores, int target);

/// Two-class hinge loss on a single score: max(0, 1 - label*score) with
/// label in {-1, +1}. Used by the Eedn pedestrian classifier head.
LossResult hingeLoss(float score, int label);

/// Softmax probabilities (numerically stable), exposed for tests.
std::vector<float> softmax(const std::vector<float>& scores);

}  // namespace pcnn::nn
