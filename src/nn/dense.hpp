#pragma once

#include "common/rng.hpp"
#include "nn/layer.hpp"

namespace pcnn::nn {

/// Fully connected layer: y = W x + b with float weights (the unconstrained
/// baseline against which the Eedn trinary layers are compared).
class Dense : public Layer {
 public:
  Dense(int inputSize, int outputSize, Rng& rng, float initScale = 0.0f);

  std::vector<float> forward(const std::vector<float>& input,
                             bool train) override;
  std::vector<float> backward(const std::vector<float>& gradOutput) override;
  void applyGradients(float learningRate, float momentum, int batch) override;

  int inputSize() const override { return in_; }
  int outputSize() const override { return out_; }
  long parameterCount() const override {
    return static_cast<long>(in_) * out_ + out_;
  }

  std::vector<float>& weights() { return w_; }           ///< out x in, row-major
  const std::vector<float>& weights() const { return w_; }
  std::vector<float>& biases() { return b_; }
  const std::vector<float>& biases() const { return b_; }

 private:
  int in_;
  int out_;
  std::vector<float> w_, b_;
  std::vector<float> gradW_, gradB_;
  std::vector<float> momW_, momB_;
  std::vector<float> inputCache_;
};

}  // namespace pcnn::nn
