#pragma once

#include "nn/layer.hpp"

namespace pcnn::nn {

/// Rectified linear unit (baseline activation for unconstrained networks).
class Relu : public Layer {
 public:
  explicit Relu(int size) : size_(size) {}
  std::vector<float> forward(const std::vector<float>& input,
                             bool train) override;
  std::vector<float> backward(const std::vector<float>& gradOutput) override;
  int inputSize() const override { return size_; }
  int outputSize() const override { return size_; }

 private:
  int size_;
  std::vector<float> mask_;
};

/// Logistic sigmoid, used where a bounded [0,1] output is needed (e.g. the
/// float-parrot ablation).
class Sigmoid : public Layer {
 public:
  explicit Sigmoid(int size) : size_(size) {}
  std::vector<float> forward(const std::vector<float>& input,
                             bool train) override;
  std::vector<float> backward(const std::vector<float>& gradOutput) override;
  int inputSize() const override { return size_; }
  int outputSize() const override { return size_; }

 private:
  int size_;
  std::vector<float> outputCache_;
};

}  // namespace pcnn::nn
