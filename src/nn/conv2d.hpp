#pragma once

#include "common/rng.hpp"
#include "nn/layer.hpp"

namespace pcnn::nn {

/// Plain 2-D convolution over CHW-flattened vectors. Stride 1, optional
/// zero padding. Provided for the CNN form of the Eedn networks; the
/// partitioned experiments mostly use dense/grouped layers, but convolution
/// is part of the substrate the paper's classifier family (Esser et al.)
/// is built from.
class Conv2d : public Layer {
 public:
  Conv2d(int inChannels, int inHeight, int inWidth, int outChannels,
         int kernel, int padding, Rng& rng);

  std::vector<float> forward(const std::vector<float>& input,
                             bool train) override;
  std::vector<float> backward(const std::vector<float>& gradOutput) override;
  void applyGradients(float learningRate, float momentum, int batch) override;

  int inputSize() const override { return inC_ * inH_ * inW_; }
  int outputSize() const override { return outC_ * outH_ * outW_; }
  long parameterCount() const override {
    return static_cast<long>(outC_) * inC_ * k_ * k_ + outC_;
  }

  int outHeight() const { return outH_; }
  int outWidth() const { return outW_; }
  std::vector<float>& weights() { return w_; }  ///< outC x inC x k x k

 private:
  float& wAt(int oc, int ic, int ky, int kx) {
    return w_[((static_cast<std::size_t>(oc) * inC_ + ic) * k_ + ky) * k_ +
              kx];
  }
  int inC_, inH_, inW_, outC_, k_, pad_, outH_, outW_;
  std::vector<float> w_, b_, gradW_, gradB_, momW_, momB_;
  std::vector<float> inputCache_;
};

}  // namespace pcnn::nn
