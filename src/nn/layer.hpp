#pragma once

#include <vector>

namespace pcnn::nn {

/// Minimal single-sample layer interface used by the from-scratch training
/// framework. Layers cache what they need in forward() and consume it in
/// backward(); gradients accumulate across samples until applyGradients()
/// (mini-batch SGD by accumulation).
class Layer {
 public:
  virtual ~Layer() = default;

  /// Computes the layer output. `train` enables caching for backward().
  virtual std::vector<float> forward(const std::vector<float>& input,
                                     bool train) = 0;

  /// Consumes dLoss/dOutput, accumulates parameter gradients, and returns
  /// dLoss/dInput.
  virtual std::vector<float> backward(const std::vector<float>& gradOutput) = 0;

  /// SGD step with momentum over the accumulated gradients (averaged over
  /// `batch` samples), then clears them. Layers without parameters ignore it.
  virtual void applyGradients(float learningRate, float momentum, int batch) {
    (void)learningRate;
    (void)momentum;
    (void)batch;
  }

  virtual int inputSize() const = 0;
  virtual int outputSize() const = 0;

  /// Number of learnable parameters (0 for stateless layers).
  virtual long parameterCount() const { return 0; }
};

}  // namespace pcnn::nn
