#pragma once

#include <memory>
#include <stdexcept>
#include <vector>

#include "nn/layer.hpp"

namespace pcnn::nn {

/// Ordered stack of layers with whole-network forward/backward/update.
class Sequential : public Layer {
 public:
  Sequential() = default;

  /// Appends a layer; checks size compatibility with the previous layer.
  void add(std::unique_ptr<Layer> layer) {
    if (!layers_.empty() &&
        layers_.back()->outputSize() != layer->inputSize()) {
      throw std::invalid_argument("Sequential: layer size mismatch");
    }
    layers_.push_back(std::move(layer));
  }

  std::vector<float> forward(const std::vector<float>& input,
                             bool train) override {
    std::vector<float> x = input;
    for (auto& layer : layers_) x = layer->forward(x, train);
    return x;
  }

  std::vector<float> backward(const std::vector<float>& gradOutput) override {
    std::vector<float> g = gradOutput;
    for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
      g = (*it)->backward(g);
    }
    return g;
  }

  void applyGradients(float learningRate, float momentum, int batch) override {
    for (auto& layer : layers_) {
      layer->applyGradients(learningRate, momentum, batch);
    }
  }

  int inputSize() const override {
    return layers_.empty() ? 0 : layers_.front()->inputSize();
  }
  int outputSize() const override {
    return layers_.empty() ? 0 : layers_.back()->outputSize();
  }
  long parameterCount() const override {
    long count = 0;
    for (const auto& layer : layers_) count += layer->parameterCount();
    return count;
  }

  std::size_t layerCount() const { return layers_.size(); }
  Layer& layer(std::size_t i) { return *layers_.at(i); }
  const Layer& layer(std::size_t i) const { return *layers_.at(i); }

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

}  // namespace pcnn::nn
