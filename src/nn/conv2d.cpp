#include "nn/conv2d.hpp"

#include <cmath>
#include <stdexcept>

#include "common/parallel.hpp"

namespace pcnn::nn {

Conv2d::Conv2d(int inChannels, int inHeight, int inWidth, int outChannels,
               int kernel, int padding, Rng& rng)
    : inC_(inChannels),
      inH_(inHeight),
      inW_(inWidth),
      outC_(outChannels),
      k_(kernel),
      pad_(padding),
      outH_(inHeight + 2 * padding - kernel + 1),
      outW_(inWidth + 2 * padding - kernel + 1) {
  if (inChannels <= 0 || outChannels <= 0 || kernel <= 0 || padding < 0 ||
      outH_ <= 0 || outW_ <= 0) {
    throw std::invalid_argument("Conv2d: invalid geometry");
  }
  const float scale =
      std::sqrt(2.0f / static_cast<float>(inC_ * k_ * k_));
  w_.resize(static_cast<std::size_t>(outC_) * inC_ * k_ * k_);
  for (float& v : w_) v = scale * static_cast<float>(rng.normal());
  b_.assign(static_cast<std::size_t>(outC_), 0.0f);
  gradW_.assign(w_.size(), 0.0f);
  gradB_.assign(b_.size(), 0.0f);
  momW_.assign(w_.size(), 0.0f);
  momB_.assign(b_.size(), 0.0f);
}

std::vector<float> Conv2d::forward(const std::vector<float>& input,
                                   bool train) {
  if (static_cast<int>(input.size()) != inputSize()) {
    throw std::invalid_argument("Conv2d::forward: input size mismatch");
  }
  if (train) inputCache_ = input;
  std::vector<float> out(static_cast<std::size_t>(outputSize()), 0.0f);
  auto in = [&](int c, int y, int x) -> float {
    if (y < 0 || y >= inH_ || x < 0 || x >= inW_) return 0.0f;
    return input[(static_cast<std::size_t>(c) * inH_ + y) * inW_ + x];
  };
  // Output channels write disjoint planes of `out`: parallel over oc, with
  // the per-pixel accumulation order unchanged, so the result is
  // bit-identical for any thread count.
  parallelFor(0, outC_, [&](long ocL) {
    const int oc = static_cast<int>(ocL);
    for (int oy = 0; oy < outH_; ++oy) {
      for (int ox = 0; ox < outW_; ++ox) {
        float acc = b_[oc];
        for (int ic = 0; ic < inC_; ++ic) {
          for (int ky = 0; ky < k_; ++ky) {
            for (int kx = 0; kx < k_; ++kx) {
              acc += wAt(oc, ic, ky, kx) *
                     in(ic, oy - pad_ + ky, ox - pad_ + kx);
            }
          }
        }
        out[(static_cast<std::size_t>(oc) * outH_ + oy) * outW_ + ox] = acc;
      }
    }
  });
  return out;
}

std::vector<float> Conv2d::backward(const std::vector<float>& gradOutput) {
  if (static_cast<int>(gradOutput.size()) != outputSize()) {
    throw std::invalid_argument("Conv2d::backward: grad size mismatch");
  }
  std::vector<float> gradIn(static_cast<std::size_t>(inputSize()), 0.0f);
  auto inIdx = [&](int c, int y, int x) {
    return (static_cast<std::size_t>(c) * inH_ + y) * inW_ + x;
  };
  // Two passes so each can parallelize over an axis whose writes are
  // disjoint: weight/bias gradients per output channel, then the input
  // gradient per input channel. Each accumulator sees its contributions in
  // the same (oc, oy, ox, ky, kx) order as the sequential loop, keeping
  // backward bit-deterministic under threading.
  parallelFor(0, outC_, [&](long ocL) {
    const int oc = static_cast<int>(ocL);
    for (int oy = 0; oy < outH_; ++oy) {
      for (int ox = 0; ox < outW_; ++ox) {
        const float g =
            gradOutput[(static_cast<std::size_t>(oc) * outH_ + oy) * outW_ +
                       ox];
        if (g == 0.0f) continue;
        gradB_[oc] += g;
        for (int ic = 0; ic < inC_; ++ic) {
          for (int ky = 0; ky < k_; ++ky) {
            const int y = oy - pad_ + ky;
            if (y < 0 || y >= inH_) continue;
            for (int kx = 0; kx < k_; ++kx) {
              const int x = ox - pad_ + kx;
              if (x < 0 || x >= inW_) continue;
              gradW_[((static_cast<std::size_t>(oc) * inC_ + ic) * k_ + ky) *
                         k_ +
                     kx] += g * inputCache_[inIdx(ic, y, x)];
            }
          }
        }
      }
    }
  });
  parallelFor(0, inC_, [&](long icL) {
    const int ic = static_cast<int>(icL);
    for (int oc = 0; oc < outC_; ++oc) {
      for (int oy = 0; oy < outH_; ++oy) {
        for (int ox = 0; ox < outW_; ++ox) {
          const float g =
              gradOutput[(static_cast<std::size_t>(oc) * outH_ + oy) *
                             outW_ +
                         ox];
          if (g == 0.0f) continue;
          for (int ky = 0; ky < k_; ++ky) {
            const int y = oy - pad_ + ky;
            if (y < 0 || y >= inH_) continue;
            for (int kx = 0; kx < k_; ++kx) {
              const int x = ox - pad_ + kx;
              if (x < 0 || x >= inW_) continue;
              gradIn[inIdx(ic, y, x)] += g * wAt(oc, ic, ky, kx);
            }
          }
        }
      }
    }
  });
  return gradIn;
}

void Conv2d::applyGradients(float learningRate, float momentum, int batch) {
  const float scale = 1.0f / static_cast<float>(batch > 0 ? batch : 1);
  for (std::size_t i = 0; i < w_.size(); ++i) {
    momW_[i] = momentum * momW_[i] - learningRate * gradW_[i] * scale;
    w_[i] += momW_[i];
    gradW_[i] = 0.0f;
  }
  for (std::size_t i = 0; i < b_.size(); ++i) {
    momB_[i] = momentum * momB_[i] - learningRate * gradB_[i] * scale;
    b_[i] += momB_[i];
    gradB_[i] = 0.0f;
  }
}

}  // namespace pcnn::nn
