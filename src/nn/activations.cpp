#include "nn/activations.hpp"

#include <cmath>
#include <stdexcept>

namespace pcnn::nn {

std::vector<float> Relu::forward(const std::vector<float>& input, bool train) {
  if (static_cast<int>(input.size()) != size_) {
    throw std::invalid_argument("Relu::forward: size mismatch");
  }
  std::vector<float> out(input.size());
  if (train) mask_.assign(input.size(), 0.0f);
  for (std::size_t i = 0; i < input.size(); ++i) {
    if (input[i] > 0.0f) {
      out[i] = input[i];
      if (train) mask_[i] = 1.0f;
    }
  }
  return out;
}

std::vector<float> Relu::backward(const std::vector<float>& gradOutput) {
  std::vector<float> gradIn(gradOutput.size());
  for (std::size_t i = 0; i < gradOutput.size(); ++i) {
    gradIn[i] = gradOutput[i] * mask_[i];
  }
  return gradIn;
}

std::vector<float> Sigmoid::forward(const std::vector<float>& input,
                                    bool train) {
  if (static_cast<int>(input.size()) != size_) {
    throw std::invalid_argument("Sigmoid::forward: size mismatch");
  }
  std::vector<float> out(input.size());
  for (std::size_t i = 0; i < input.size(); ++i) {
    out[i] = 1.0f / (1.0f + std::exp(-input[i]));
  }
  if (train) outputCache_ = out;
  return out;
}

std::vector<float> Sigmoid::backward(const std::vector<float>& gradOutput) {
  std::vector<float> gradIn(gradOutput.size());
  for (std::size_t i = 0; i < gradOutput.size(); ++i) {
    gradIn[i] = gradOutput[i] * outputCache_[i] * (1.0f - outputCache_[i]);
  }
  return gradIn;
}

}  // namespace pcnn::nn
