#include "nn/pooling.hpp"

#include <stdexcept>

namespace pcnn::nn {

AvgPool2d::AvgPool2d(int channels, int inHeight, int inWidth, int pool)
    : channels_(channels),
      inH_(inHeight),
      inW_(inWidth),
      pool_(pool),
      outH_(inHeight / pool),
      outW_(inWidth / pool) {
  if (channels <= 0 || pool <= 0 || inHeight % pool != 0 ||
      inWidth % pool != 0) {
    throw std::invalid_argument(
        "AvgPool2d: dimensions must divide evenly by the pool size");
  }
}

std::vector<float> AvgPool2d::forward(const std::vector<float>& input,
                                      bool train) {
  (void)train;
  if (static_cast<int>(input.size()) != inputSize()) {
    throw std::invalid_argument("AvgPool2d::forward: size mismatch");
  }
  std::vector<float> out(static_cast<std::size_t>(outputSize()), 0.0f);
  const float inv = 1.0f / static_cast<float>(pool_ * pool_);
  for (int c = 0; c < channels_; ++c) {
    for (int oy = 0; oy < outH_; ++oy) {
      for (int ox = 0; ox < outW_; ++ox) {
        float sum = 0.0f;
        for (int py = 0; py < pool_; ++py) {
          for (int px = 0; px < pool_; ++px) {
            sum += input[(static_cast<std::size_t>(c) * inH_ +
                          oy * pool_ + py) *
                             inW_ +
                         ox * pool_ + px];
          }
        }
        out[(static_cast<std::size_t>(c) * outH_ + oy) * outW_ + ox] =
            sum * inv;
      }
    }
  }
  return out;
}

std::vector<float> AvgPool2d::backward(const std::vector<float>& gradOutput) {
  if (static_cast<int>(gradOutput.size()) != outputSize()) {
    throw std::invalid_argument("AvgPool2d::backward: size mismatch");
  }
  std::vector<float> gradIn(static_cast<std::size_t>(inputSize()), 0.0f);
  const float inv = 1.0f / static_cast<float>(pool_ * pool_);
  for (int c = 0; c < channels_; ++c) {
    for (int oy = 0; oy < outH_; ++oy) {
      for (int ox = 0; ox < outW_; ++ox) {
        const float g =
            gradOutput[(static_cast<std::size_t>(c) * outH_ + oy) * outW_ +
                       ox] *
            inv;
        for (int py = 0; py < pool_; ++py) {
          for (int px = 0; px < pool_; ++px) {
            gradIn[(static_cast<std::size_t>(c) * inH_ + oy * pool_ + py) *
                       inW_ +
                   ox * pool_ + px] += g;
          }
        }
      }
    }
  }
  return gradIn;
}

MaxPool2d::MaxPool2d(int channels, int inHeight, int inWidth, int pool)
    : channels_(channels),
      inH_(inHeight),
      inW_(inWidth),
      pool_(pool),
      outH_(inHeight / pool),
      outW_(inWidth / pool) {
  if (channels <= 0 || pool <= 0 || inHeight % pool != 0 ||
      inWidth % pool != 0) {
    throw std::invalid_argument(
        "MaxPool2d: dimensions must divide evenly by the pool size");
  }
}

std::vector<float> MaxPool2d::forward(const std::vector<float>& input,
                                      bool train) {
  if (static_cast<int>(input.size()) != inputSize()) {
    throw std::invalid_argument("MaxPool2d::forward: size mismatch");
  }
  std::vector<float> out(static_cast<std::size_t>(outputSize()));
  if (train) argmaxCache_.assign(static_cast<std::size_t>(outputSize()), 0);
  for (int c = 0; c < channels_; ++c) {
    for (int oy = 0; oy < outH_; ++oy) {
      for (int ox = 0; ox < outW_; ++ox) {
        float best = -1e30f;
        int bestIdx = 0;
        for (int py = 0; py < pool_; ++py) {
          for (int px = 0; px < pool_; ++px) {
            const int idx = static_cast<int>(
                (static_cast<std::size_t>(c) * inH_ + oy * pool_ + py) *
                    inW_ +
                ox * pool_ + px);
            if (input[idx] > best) {
              best = input[idx];
              bestIdx = idx;
            }
          }
        }
        const std::size_t outIdx =
            (static_cast<std::size_t>(c) * outH_ + oy) * outW_ + ox;
        out[outIdx] = best;
        if (train) argmaxCache_[outIdx] = bestIdx;
      }
    }
  }
  return out;
}

std::vector<float> MaxPool2d::backward(const std::vector<float>& gradOutput) {
  if (static_cast<int>(gradOutput.size()) != outputSize()) {
    throw std::invalid_argument("MaxPool2d::backward: size mismatch");
  }
  std::vector<float> gradIn(static_cast<std::size_t>(inputSize()), 0.0f);
  for (std::size_t i = 0; i < gradOutput.size(); ++i) {
    gradIn[static_cast<std::size_t>(argmaxCache_[i])] += gradOutput[i];
  }
  return gradIn;
}

}  // namespace pcnn::nn
