#include "nn/dense.hpp"

#include <cmath>
#include <stdexcept>

namespace pcnn::nn {

Dense::Dense(int inputSize, int outputSize, Rng& rng, float initScale)
    : in_(inputSize), out_(outputSize) {
  if (inputSize <= 0 || outputSize <= 0) {
    throw std::invalid_argument("Dense: sizes must be positive");
  }
  const float scale = initScale > 0.0f
                          ? initScale
                          : std::sqrt(2.0f / static_cast<float>(inputSize));
  w_.resize(static_cast<std::size_t>(in_) * out_);
  for (float& v : w_) v = scale * static_cast<float>(rng.normal());
  b_.assign(static_cast<std::size_t>(out_), 0.0f);
  gradW_.assign(w_.size(), 0.0f);
  gradB_.assign(b_.size(), 0.0f);
  momW_.assign(w_.size(), 0.0f);
  momB_.assign(b_.size(), 0.0f);
}

std::vector<float> Dense::forward(const std::vector<float>& input,
                                  bool train) {
  if (static_cast<int>(input.size()) != in_) {
    throw std::invalid_argument("Dense::forward: input size mismatch");
  }
  if (train) inputCache_ = input;
  std::vector<float> out(static_cast<std::size_t>(out_));
  for (int j = 0; j < out_; ++j) {
    const float* row = w_.data() + static_cast<std::size_t>(j) * in_;
    float acc = b_[j];
    for (int i = 0; i < in_; ++i) acc += row[i] * input[i];
    out[j] = acc;
  }
  return out;
}

std::vector<float> Dense::backward(const std::vector<float>& gradOutput) {
  if (static_cast<int>(gradOutput.size()) != out_) {
    throw std::invalid_argument("Dense::backward: grad size mismatch");
  }
  std::vector<float> gradIn(static_cast<std::size_t>(in_), 0.0f);
  for (int j = 0; j < out_; ++j) {
    const float g = gradOutput[j];
    if (g == 0.0f) continue;
    const float* row = w_.data() + static_cast<std::size_t>(j) * in_;
    float* gRow = gradW_.data() + static_cast<std::size_t>(j) * in_;
    for (int i = 0; i < in_; ++i) {
      gradIn[i] += row[i] * g;
      gRow[i] += inputCache_[i] * g;
    }
    gradB_[j] += g;
  }
  return gradIn;
}

void Dense::applyGradients(float learningRate, float momentum, int batch) {
  const float scale = 1.0f / static_cast<float>(batch > 0 ? batch : 1);
  for (std::size_t i = 0; i < w_.size(); ++i) {
    momW_[i] = momentum * momW_[i] - learningRate * gradW_[i] * scale;
    w_[i] += momW_[i];
    gradW_[i] = 0.0f;
  }
  for (std::size_t i = 0; i < b_.size(); ++i) {
    momB_[i] = momentum * momB_[i] - learningRate * gradB_[i] * scale;
    b_[i] += momB_[i];
    gradB_[i] = 0.0f;
  }
}

}  // namespace pcnn::nn
