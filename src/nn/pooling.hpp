#pragma once

#include "nn/layer.hpp"

namespace pcnn::nn {

/// Non-overlapping average pooling over CHW input. Average (rather than
/// max) pooling matches spiking-rate semantics: the pooled rate of a
/// neuron population is the mean rate, which TrueNorth realises with a
/// single integrate-and-fire neuron summing the pool's spikes.
class AvgPool2d : public Layer {
 public:
  AvgPool2d(int channels, int inHeight, int inWidth, int pool);

  std::vector<float> forward(const std::vector<float>& input,
                             bool train) override;
  std::vector<float> backward(const std::vector<float>& gradOutput) override;

  int inputSize() const override { return channels_ * inH_ * inW_; }
  int outputSize() const override { return channels_ * outH_ * outW_; }
  int outHeight() const { return outH_; }
  int outWidth() const { return outW_; }

 private:
  int channels_, inH_, inW_, pool_, outH_, outW_;
};

/// Non-overlapping max pooling over CHW input (the conventional CNN
/// choice, provided for ablations against AvgPool2d).
class MaxPool2d : public Layer {
 public:
  MaxPool2d(int channels, int inHeight, int inWidth, int pool);

  std::vector<float> forward(const std::vector<float>& input,
                             bool train) override;
  std::vector<float> backward(const std::vector<float>& gradOutput) override;

  int inputSize() const override { return channels_ * inH_ * inW_; }
  int outputSize() const override { return channels_ * outH_ * outW_; }
  int outHeight() const { return outH_; }
  int outWidth() const { return outW_; }

 private:
  int channels_, inH_, inW_, pool_, outH_, outW_;
  std::vector<int> argmaxCache_;
};

}  // namespace pcnn::nn
