#include "nn/loss.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace pcnn::nn {

LossResult mseLoss(const std::vector<float>& predicted,
                   const std::vector<float>& target) {
  if (predicted.size() != target.size()) {
    throw std::invalid_argument("mseLoss: size mismatch");
  }
  LossResult result;
  result.grad.resize(predicted.size());
  const float n = static_cast<float>(predicted.size());
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    const float diff = predicted[i] - target[i];
    result.value += diff * diff / n;
    result.grad[i] = 2.0f * diff / n;
  }
  return result;
}

std::vector<float> softmax(const std::vector<float>& scores) {
  std::vector<float> probs(scores.size());
  const float maxScore = *std::max_element(scores.begin(), scores.end());
  float sum = 0.0f;
  for (std::size_t i = 0; i < scores.size(); ++i) {
    probs[i] = std::exp(scores[i] - maxScore);
    sum += probs[i];
  }
  for (float& p : probs) p /= sum;
  return probs;
}

LossResult softmaxCrossEntropy(const std::vector<float>& scores, int target) {
  if (target < 0 || target >= static_cast<int>(scores.size())) {
    throw std::invalid_argument("softmaxCrossEntropy: bad target index");
  }
  LossResult result;
  result.grad = softmax(scores);
  result.value = -std::log(std::max(1e-12f, result.grad[target]));
  result.grad[target] -= 1.0f;
  return result;
}

LossResult hingeLoss(float score, int label) {
  if (label != 1 && label != -1) {
    throw std::invalid_argument("hingeLoss: label must be +1 or -1");
  }
  LossResult result;
  result.grad.assign(1, 0.0f);
  const float margin = 1.0f - static_cast<float>(label) * score;
  if (margin > 0.0f) {
    result.value = margin;
    result.grad[0] = -static_cast<float>(label);
  }
  return result;
}

}  // namespace pcnn::nn
