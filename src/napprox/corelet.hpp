#pragma once

#include <vector>

#include "napprox/quantized.hpp"
#include "tn/corelet.hpp"
#include "tn/network.hpp"
#include "vision/image.hpp"

namespace pcnn::napprox {

/// TrueNorth corelet computing the NApprox HoG histogram of one 8x8 cell
/// from its 10x10 pixel input neighbourhood.
///
/// Three stages, all built from the chip's primitives (paper Table 1):
///
///  1. *Integration + ramp race* (pattern matching, inner product, and
///     comparison): per gradient pixel and direction k, a neuron with
///     synaptic LUT (+cos_k, -cos_k, +sin_k, -sin_k) over axon types
///     E/W/N/S accumulates Ix*cos_k + Iy*sin_k from the rate-coded input
///     spikes -- the paper's "clock signals to accumulate the weighted sum
///     for multiple clock ticks in the membrane potentials, so that we can
///     provide more precise inner-product results". A constant positive
///     leak plus a threshold no membrane can reach during the input window
///     turns the readout into a race: once inputs stop, the *largest*
///     projection crosses threshold *first* (comparison by timing),
///     realising the paper's argmax angle computation.
///  2. *Winner-take-all*: per pixel, the first arriving direction spike
///     latches the winner and recurrent -1000 feedback suppresses the
///     rest; same-tick ties all pass. A blanking pulse at the race tick
///     corresponding to the vote threshold closes the latch, so pixels
///     with no sufficiently strong projection cast no vote. A relay
///     neuron per direction forwards the winning vote (fan-out-1
///     discipline).
///  3. *Histogram* (count binning): per-direction counter neurons with
///     linear reset emit one spike per received vote; the output spike
///     count over the run window is the 18-bin histogram.
///
/// The tick-accurate QuantizedNApproxHog is the software twin of this
/// corelet; tests assert bit-exact agreement and the V1 experiment
/// reproduces the paper's >99.5 % hardware-vs-software correlation.
class NApproxCorelet {
 public:
  /// Builds the corelet using the model's quantized weights, threshold and
  /// spike window.
  explicit NApproxCorelet(const QuantizedNApproxHog& model);

  /// Runs the corelet on the cell whose top-left pixel is (x0, y0) and
  /// returns the 18-bin histogram (vote counts). Resets network state
  /// between calls.
  std::vector<float> extract(const vision::Image& img, int x0, int y0);

  int coreCount() const { return network_.coreCount(); }
  int ticksPerCell() const { return runTicks_; }
  tn::Network& network() { return network_; }

  /// Spike statistics of the most recent extract() (for energy reports).
  const tn::RunResult& lastRun() const { return lastRun_; }

 private:
  static constexpr int kCell = 8;
  static constexpr int kSide = kCell + 2;  ///< 10x10 input neighbourhood

  int bins_;
  int window_;
  int runTicks_;
  QuantizedParams quant_;
  int threshold_;
  int rampThreshold_;
  int cutoffBucket_;
  std::vector<int> cosQ_, sinQ_;

  tn::Network network_{99};
  tn::RunResult lastRun_;

  // Geometry.
  int pixelsPerCore1_;
  int pixelsPerCore2_;
  std::vector<int> stage1Cores_, stage2Cores_, stage3Cores_;
  /// inputAxons_[inputPixel] = (core, axon) axon bindings for each of the
  /// 100 input lines (one line fans out to every role-axon representing
  /// that pixel).
  std::vector<std::vector<std::pair<int, int>>> inputAxons_;
  /// Output decode: counterLocation_[core3Index] maps neuron k -> bin k.
  void build();
};

}  // namespace pcnn::napprox
