#pragma once

#include <vector>

#include "hog/hog.hpp"
#include "vision/image.hpp"

namespace pcnn::napprox {

/// Configuration shared by every NApprox HoG flavour.
///
/// NApprox re-expresses HoG with TrueNorth-friendly primitives (paper
/// Table 1):
///  - gradient vector by pattern matching with the four filters
///    (-1 0 1), (1 0 -1) and their transposes, yielding Ix, -Ix, Iy, -Iy;
///  - gradient angle as the theta among `bins` evenly spaced directions for
///    which Ix*cos(theta) + Iy*sin(theta) is maximum (comparison);
///  - gradient magnitude as that same inner product at the winning theta;
///  - histogram binned *by count* with 18 bins over 0..360 degrees
///    (vs. magnitude-weighted 9-bin voting in classic HoG), with bin
///    aliasing deliberately ignored (no bilinear interpolation).
struct NApproxParams {
  int cellSize = 8;
  int bins = 18;            ///< directions over 0..360 deg
  float minMagnitude = 0.04f;  ///< pixels whose best projection is below
                               ///< this cast no vote (maps to the spiking
                               ///< threshold on hardware)
  int blockCells = 2;       ///< Figure-4 configs use 2x2-cell L2 blocks
  int blockStrideCells = 1;
  bool l2Normalize = true;  ///< elided when feeding the Eedn classifier
};

/// Full-precision software model of NApprox HoG -- "NApprox(fp)" in
/// Figure 4: float inputs, float cos/sin projections.
class NApproxHog {
 public:
  explicit NApproxHog(const NApproxParams& params = {});

  const NApproxParams& params() const { return params_; }

  /// Per-cell count histograms over the whole image.
  hog::CellGrid computeCells(const vision::Image& img) const;

  /// Histogram of one cell with top-left pixel (x0, y0).
  std::vector<float> cellHistogram(const vision::Image& img, int x0,
                                   int y0) const;

  /// Block-structured window descriptor (layout identical to
  /// hog::HogExtractor so the same SVM consumes either).
  std::vector<float> windowDescriptor(const vision::Image& window) const;

  /// Block descriptor of the window with top-left cell (cx0, cy0), sliced
  /// from a cached per-level grid (shared-cell-grid detection path).
  std::vector<float> windowDescriptorFromGrid(const hog::CellGrid& grid,
                                              int cx0, int cy0,
                                              int windowCellsX,
                                              int windowCellsY) const;

  /// Flat cell histograms without blocks/normalization (Eedn feature path).
  std::vector<float> cellDescriptor(const vision::Image& window) const;

  /// cellDescriptor over a batch of windows, extracted in parallel on the
  /// global thread pool (the extractor is stateless, so this is safe and
  /// bit-deterministic for any thread count).
  std::vector<std::vector<float>> cellDescriptorBatch(
      const std::vector<vision::Image>& windows) const;

  /// Winning direction of a float gradient, or -1 when no direction's
  /// projection reaches minMagnitude. Strict argmax (first maximum wins);
  /// exposed for tests and Table 1 checks.
  int bestDirection(float ix, float iy) const;

  /// Directions receiving this gradient's vote: every k whose projection
  /// ties the maximum (within float rounding). Gradients along the axes
  /// fall exactly between two of the 18 directions -- e.g. a vertical
  /// gradient projects identically onto 80 and 100 degrees -- and the
  /// hardware's winner-take-all admits all same-tick ties, so the software
  /// models vote the full tie set to match. Empty when below minMagnitude.
  std::vector<int> voteDirections(float ix, float iy) const;

  /// Projection of (ix, iy) onto direction k -- the paper's magnitude
  /// approximation when k is the winner.
  float projection(float ix, float iy, int k) const;

 private:
  hog::HogParams blockParams() const;
  NApproxParams params_;
  std::vector<float> cosTable_, sinTable_;
};

}  // namespace pcnn::napprox
