#include "napprox/quantized.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/parallel.hpp"
#include "tn/spike_coding.hpp"

namespace pcnn::napprox {
namespace {
constexpr float kTwoPi = 6.28318530717958647692f;
}

QuantizedNApproxHog::QuantizedNApproxHog(const NApproxParams& params,
                                         const QuantizedParams& quant,
                                         QuantizedMode mode)
    : params_(params), quant_(quant), mode_(mode) {
  if (quant.spikeWindow <= 0 || quant.spikeWindow > 64) {
    throw std::invalid_argument(
        "QuantizedNApproxHog: spikeWindow must be 1..64");
  }
  if (quant.weightScale <= 0 || quant.weightScale > 255) {
    throw std::invalid_argument("QuantizedNApproxHog: bad weightScale");
  }
  if (quant.rampLeak <= 0) {
    throw std::invalid_argument("QuantizedNApproxHog: bad rampLeak");
  }
  threshold_ = quant.threshold > 0
                   ? quant.threshold
                   : std::max(1, static_cast<int>(std::lround(
                                     params.minMagnitude * quant.weightScale *
                                     quant.spikeWindow)));
  // No neuron may fire while inputs accumulate: per-tick input is bounded
  // by 2*weightScale and the leak adds rampLeak, so over spikeWindow ticks
  // the membrane stays strictly below this threshold.
  rampThreshold_ =
      (2 * quant.weightScale + quant.rampLeak) * quant.spikeWindow + 1;
  cutoffBucket_ =
      (rampThreshold_ - threshold_ + quant.rampLeak - 1) / quant.rampLeak;
  cosQ_.resize(static_cast<std::size_t>(params.bins));
  sinQ_.resize(static_cast<std::size_t>(params.bins));
  for (int k = 0; k < params.bins; ++k) {
    const float theta =
        kTwoPi * static_cast<float>(k) / static_cast<float>(params.bins);
    cosQ_[k] = static_cast<int>(
        std::lround(std::cos(theta) * static_cast<float>(quant.weightScale)));
    sinQ_[k] = static_cast<int>(
        std::lround(std::sin(theta) * static_cast<float>(quant.weightScale)));
  }
}

int QuantizedNApproxHog::quantizePixel(float value) const {
  return tn::rateCodeCount(value, quant_.spikeWindow);
}

std::vector<float> QuantizedNApproxHog::cellHistogram(const vision::Image& img,
                                                      int x0, int y0) const {
  return mode_ == QuantizedMode::kTickAccurate
             ? cellHistogramTick(img, x0, y0)
             : cellHistogramAnalytic(img, x0, y0);
}

std::vector<float> QuantizedNApproxHog::cellHistogramAnalytic(
    const vision::Image& img, int x0, int y0) const {
  std::vector<float> histogram(static_cast<std::size_t>(params_.bins), 0.0f);
  for (int dy = 0; dy < params_.cellSize; ++dy) {
    for (int dx = 0; dx < params_.cellSize; ++dx) {
      const int x = x0 + dx;
      const int y = y0 + dy;
      // Whole-window spike totals stand in for the pixel values.
      const int e = quantizePixel(img.atClamped(x + 1, y));
      const int w = quantizePixel(img.atClamped(x - 1, y));
      const int n = quantizePixel(img.atClamped(x, y - 1));
      const int s = quantizePixel(img.atClamped(x, y + 1));
      const int ix = e - w;
      const int iy = n - s;
      int bestValue = threshold_;
      for (int k = 0; k < params_.bins; ++k) {
        const int u = cosQ_[k] * ix + sinQ_[k] * iy;
        if (u > bestValue) bestValue = u;
      }
      if (bestValue == threshold_) continue;
      // Exact integer ties all vote (matching the tie semantics of the
      // float model and the hardware's winner-take-all latch).
      for (int k = 0; k < params_.bins; ++k) {
        if (cosQ_[k] * ix + sinQ_[k] * iy == bestValue) {
          histogram[k] += 1.0f;
        }
      }
    }
  }
  return histogram;
}

std::vector<float> QuantizedNApproxHog::cellHistogramTick(
    const vision::Image& img, int x0, int y0) const {
  // Ramp-race semantics (see QuantizedMode::kTickAccurate): during the
  // input window nothing can fire, so the accumulated projection totals
  // fully determine the race. A direction with total U fires at race tick
  // ceil((rampThreshold - U) / rampLeak); the winner-take-all admits every
  // direction on the earliest tick, and the blanking cutoff rejects pixels
  // whose best projection is below the vote threshold. This closed form is
  // bit-exact against simulating the corelet tick by tick (asserted in
  // tests and the V1 bench).
  const int cell = params_.cellSize;
  const int bins = params_.bins;
  const int leak = quant_.rampLeak;
  std::vector<float> histogram(static_cast<std::size_t>(bins), 0.0f);
  std::vector<int> bucket(static_cast<std::size_t>(bins));
  for (int dy = 0; dy < cell; ++dy) {
    for (int dx = 0; dx < cell; ++dx) {
      const int x = x0 + dx;
      const int y = y0 + dy;
      const int e = quantizePixel(img.atClamped(x + 1, y));
      const int w = quantizePixel(img.atClamped(x - 1, y));
      const int n = quantizePixel(img.atClamped(x, y - 1));
      const int s = quantizePixel(img.atClamped(x, y + 1));
      const int ix = e - w;
      const int iy = n - s;
      int minBucket = cutoffBucket_ + 1;
      for (int k = 0; k < bins; ++k) {
        const int u = cosQ_[k] * ix + sinQ_[k] * iy;
        bucket[k] = (rampThreshold_ - u + leak - 1) / leak;
        if (bucket[k] < minBucket) minBucket = bucket[k];
      }
      if (minBucket > cutoffBucket_) continue;  // below the vote threshold
      for (int k = 0; k < bins; ++k) {
        if (bucket[k] == minBucket) histogram[k] += 1.0f;
      }
    }
  }
  return histogram;
}

hog::CellGrid QuantizedNApproxHog::computeCells(
    const vision::Image& img) const {
  hog::CellGrid grid;
  grid.cellsX = img.width() / params_.cellSize;
  grid.cellsY = img.height() / params_.cellSize;
  grid.bins = params_.bins;
  grid.data.assign(static_cast<std::size_t>(grid.cellsX) * grid.cellsY *
                       grid.bins,
                   0.0f);
  // The simulated cells are independent of one another: scan rows on the
  // pool (the tick-accurate race model in particular is expensive).
  parallelFor(0, grid.cellsY, [&](long cyL) {
    const int cy = static_cast<int>(cyL);
    for (int cx = 0; cx < grid.cellsX; ++cx) {
      const std::vector<float> hist = cellHistogram(
          img, cx * params_.cellSize, cy * params_.cellSize);
      std::copy(hist.begin(), hist.end(),
                grid.data.begin() +
                    (static_cast<std::size_t>(cy) * grid.cellsX + cx) *
                        grid.bins);
    }
  });
  return grid;
}

std::vector<float> QuantizedNApproxHog::windowDescriptor(
    const vision::Image& window) const {
  hog::HogParams hp;
  hp.cellSize = params_.cellSize;
  hp.numBins = params_.bins;
  hp.signedOrientation = true;
  hp.blockCells = params_.blockCells;
  hp.blockStrideCells = params_.blockStrideCells;
  hp.l2Normalize = params_.l2Normalize;
  const hog::HogExtractor assembler(hp);
  return assembler.blocksFromGrid(computeCells(window));
}

std::vector<float> QuantizedNApproxHog::cellDescriptor(
    const vision::Image& window) const {
  hog::CellGrid grid = computeCells(window);
  return std::move(grid.data);
}

}  // namespace pcnn::napprox
