#pragma once

#include <cstdint>
#include <vector>

#include "hog/hog.hpp"
#include "napprox/napprox.hpp"
#include "vision/image.hpp"

namespace pcnn::napprox {

/// Quantization parameters for the TrueNorth-compatible NApprox HoG.
struct QuantizedParams {
  /// Input rate-code window in ticks: 64 spikes = the paper's 6-bit
  /// fixed-point input resolution.
  int spikeWindow = 64;
  /// cos/sin projection weights are rounded to integers in
  /// [-weightScale, weightScale]; 64 keeps them well inside the chip's
  /// signed 9-bit synaptic range while resolving the ~6% projection
  /// difference between adjacent 20-degree directions.
  int weightScale = 64;
  /// Vote threshold in accumulated-membrane units: a pixel only votes when
  /// its best projection reaches this. <= 0 derives it from
  /// NApproxParams::minMagnitude as
  /// round(minMagnitude * weightScale * spikeWindow).
  int threshold = 0;
  /// Ramp-race leak (membrane units per tick) used by the readout phase of
  /// the tick-accurate model and the corelet. Smaller = finer argmax
  /// resolution but a longer race. See QuantizedMode::kTickAccurate.
  int rampLeak = 8;
};

/// Evaluation semantics of the quantized model.
enum class QuantizedMode {
  /// Exact semantics of the NApprox corelet's accumulate-then-race scheme
  /// (the paper: "we use clock signals to accumulate the weighted sum for
  /// multiple clock ticks in the membrane potentials, so that we can
  /// provide more precise inner-product results"). Direction neurons carry
  /// a constant positive leak and a threshold high enough that nothing can
  /// fire while the rate-coded inputs accumulate; once the input window
  /// ends, the leak ramp races the accumulated projections to threshold
  /// and the *largest* projection fires first (comparison by timing).
  /// Projections within one leak step of each other land on the same tick
  /// and all pass the winner-take-all latch; a blanking signal ends the
  /// race where the vote threshold falls. Bit-exact vs NApproxCorelet.
  kTickAccurate,
  /// Whole-window totals: strict argmax over the accumulated integer
  /// projections with a total-threshold test (no ramp bucketing, single
  /// vote per pixel). Differs from tick-accurate only in tie granularity.
  kAnalytic,
};

/// Reduced-precision software model of NApprox HoG -- "NApprox" in
/// Figure 4. The paper validated such a software model against the
/// TrueNorth implementation at >99.5 % correlation (Sec. 3.1); here the
/// tick-accurate mode is the software twin of napprox::NApproxCorelet.
class QuantizedNApproxHog {
 public:
  QuantizedNApproxHog(const NApproxParams& params = {},
                      const QuantizedParams& quant = {},
                      QuantizedMode mode = QuantizedMode::kAnalytic);

  const NApproxParams& params() const { return params_; }
  const QuantizedParams& quant() const { return quant_; }
  QuantizedMode mode() const { return mode_; }
  int effectiveThreshold() const { return threshold_; }

  /// Firing threshold of the ramp-race direction neurons:
  /// (2*weightScale + rampLeak) * spikeWindow + 1, chosen so no neuron can
  /// fire during input accumulation.
  int rampThreshold() const { return rampThreshold_; }
  /// Race tick at which a projection exactly at the vote threshold would
  /// fire; the corelet's blanking signal closes the WTA right after it.
  int cutoffBucket() const { return cutoffBucket_; }

  /// Quantized integer projection weights, shared with the corelet builder.
  const std::vector<int>& cosWeights() const { return cosQ_; }
  const std::vector<int>& sinWeights() const { return sinQ_; }

  /// Histogram of one cell with top-left pixel (x0, y0).
  std::vector<float> cellHistogram(const vision::Image& img, int x0,
                                   int y0) const;

  hog::CellGrid computeCells(const vision::Image& img) const;
  std::vector<float> windowDescriptor(const vision::Image& window) const;
  std::vector<float> cellDescriptor(const vision::Image& window) const;

  /// Rate-coded spike count for a pixel value (round(v * spikeWindow)).
  int quantizePixel(float value) const;

 private:
  std::vector<float> cellHistogramTick(const vision::Image& img, int x0,
                                       int y0) const;
  std::vector<float> cellHistogramAnalytic(const vision::Image& img, int x0,
                                           int y0) const;
  NApproxParams params_;
  QuantizedParams quant_;
  QuantizedMode mode_;
  int threshold_;
  int rampThreshold_;
  int cutoffBucket_;
  std::vector<int> cosQ_, sinQ_;
};

}  // namespace pcnn::napprox
