#include "napprox/napprox.hpp"

#include <cmath>
#include <stdexcept>

#include "common/parallel.hpp"
#include "hog/gradient.hpp"

namespace pcnn::napprox {
namespace {
constexpr float kTwoPi = 6.28318530717958647692f;
}

NApproxHog::NApproxHog(const NApproxParams& params) : params_(params) {
  if (params.bins <= 0 || params.cellSize <= 0) {
    throw std::invalid_argument("NApproxHog: invalid params");
  }
  cosTable_.resize(static_cast<std::size_t>(params.bins));
  sinTable_.resize(static_cast<std::size_t>(params.bins));
  for (int k = 0; k < params.bins; ++k) {
    const float theta = kTwoPi * static_cast<float>(k) /
                        static_cast<float>(params.bins);
    cosTable_[k] = std::cos(theta);
    sinTable_[k] = std::sin(theta);
  }
}

float NApproxHog::projection(float ix, float iy, int k) const {
  return ix * cosTable_[k] + iy * sinTable_[k];
}

int NApproxHog::bestDirection(float ix, float iy) const {
  int best = -1;
  float bestValue = params_.minMagnitude;
  for (int k = 0; k < params_.bins; ++k) {
    const float value = projection(ix, iy, k);
    if (value > bestValue) {
      bestValue = value;
      best = k;
    }
  }
  return best;
}

std::vector<int> NApproxHog::voteDirections(float ix, float iy) const {
  std::vector<int> votes;
  const int best = bestDirection(ix, iy);
  if (best < 0) return votes;
  const float bestValue = projection(ix, iy, best);
  // Relative tolerance absorbs float table rounding so that geometric ties
  // (e.g. sin 80 deg vs sin 100 deg) are treated as equal.
  const float cutoff = bestValue - 1e-5f * std::abs(bestValue);
  for (int k = 0; k < params_.bins; ++k) {
    if (projection(ix, iy, k) >= cutoff) votes.push_back(k);
  }
  return votes;
}

std::vector<float> NApproxHog::cellHistogram(const vision::Image& img, int x0,
                                             int y0) const {
  std::vector<float> histogram(static_cast<std::size_t>(params_.bins), 0.0f);
  for (int dy = 0; dy < params_.cellSize; ++dy) {
    for (int dx = 0; dx < params_.cellSize; ++dx) {
      const int x = x0 + dx;
      const int y = y0 + dy;
      const float ix = img.atClamped(x + 1, y) - img.atClamped(x - 1, y);
      const float iy = img.atClamped(x, y - 1) - img.atClamped(x, y + 1);
      for (int k : voteDirections(ix, iy)) {
        histogram[k] += 1.0f;  // binned by count
      }
    }
  }
  return histogram;
}

hog::CellGrid NApproxHog::computeCells(const vision::Image& img) const {
  hog::CellGrid grid;
  grid.cellsX = img.width() / params_.cellSize;
  grid.cellsY = img.height() / params_.cellSize;
  grid.bins = params_.bins;
  grid.data.assign(static_cast<std::size_t>(grid.cellsX) * grid.cellsY *
                       grid.bins,
                   0.0f);
  const hog::GradientField field = hog::computeGradients(img);
  // Rows of cells are independent: each writes its own grid slice.
  parallelFor(0, grid.cellsY, [&](long cyL) {
    const int cy = static_cast<int>(cyL);
    for (int cx = 0; cx < grid.cellsX; ++cx) {
      float* hist = grid.cell(cx, cy);
      for (int dy = 0; dy < params_.cellSize; ++dy) {
        for (int dx = 0; dx < params_.cellSize; ++dx) {
          const int x = cx * params_.cellSize + dx;
          const int y = cy * params_.cellSize + dy;
          for (int k : voteDirections(field.gx(x, y), field.gy(x, y))) {
            hist[k] += 1.0f;
          }
        }
      }
    }
  });
  return grid;
}

hog::HogParams NApproxHog::blockParams() const {
  hog::HogParams hp;
  hp.cellSize = params_.cellSize;
  hp.numBins = params_.bins;
  hp.signedOrientation = true;
  hp.blockCells = params_.blockCells;
  hp.blockStrideCells = params_.blockStrideCells;
  hp.l2Normalize = params_.l2Normalize;
  return hp;
}

std::vector<float> NApproxHog::windowDescriptor(
    const vision::Image& window) const {
  const hog::HogExtractor assembler(blockParams());
  return assembler.blocksFromGrid(computeCells(window));
}

std::vector<float> NApproxHog::windowDescriptorFromGrid(
    const hog::CellGrid& grid, int cx0, int cy0, int windowCellsX,
    int windowCellsY) const {
  const hog::HogExtractor assembler(blockParams());
  return assembler.windowDescriptorFromGrid(grid, cx0, cy0, windowCellsX,
                                            windowCellsY);
}

std::vector<float> NApproxHog::cellDescriptor(
    const vision::Image& window) const {
  hog::CellGrid grid = computeCells(window);
  return std::move(grid.data);
}

std::vector<std::vector<float>> NApproxHog::cellDescriptorBatch(
    const std::vector<vision::Image>& windows) const {
  std::vector<std::vector<float>> out(windows.size());
  parallelFor(0, static_cast<long>(windows.size()), [&](long i) {
    out[static_cast<std::size_t>(i)] =
        cellDescriptor(windows[static_cast<std::size_t>(i)]);
  });
  return out;
}

}  // namespace pcnn::napprox
