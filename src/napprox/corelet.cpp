#include "napprox/corelet.hpp"

#include <stdexcept>

#include "tn/spike_coding.hpp"

namespace pcnn::napprox {
namespace {
constexpr int kInhibition = -1000;
constexpr int kFiredFloor = -1000000;
/// Stage-2 axon carrying the race-cutoff blanking pulse (the 7 pixel slots
/// use axons 0..251; 252 is free).
constexpr int kBlankingAxon = 252;
}  // namespace

NApproxCorelet::NApproxCorelet(const QuantizedNApproxHog& model)
    : bins_(model.params().bins),
      window_(model.quant().spikeWindow),
      quant_(model.quant()),
      threshold_(model.effectiveThreshold()),
      rampThreshold_(model.rampThreshold()),
      cutoffBucket_(model.cutoffBucket()),
      cosQ_(model.cosWeights()),
      sinQ_(model.sinWeights()) {
  if (model.params().cellSize != kCell) {
    throw std::invalid_argument("NApproxCorelet: cellSize must be 8");
  }
  if (2 * bins_ > tn::kNeuronsPerCore / 2) {
    throw std::invalid_argument("NApproxCorelet: too many bins");
  }
  // The race's last admissible vote fires at stage-1 tick cutoffBucket-1
  // and reaches the histogram three hops later; counters then need drain
  // slack to emit queued same-tick votes one per tick.
  runTicks_ = cutoffBucket_ + 4 + 16;
  build();
}

void NApproxCorelet::build() {
  const int numPixels = kCell * kCell;  // 64 gradient pixels
  pixelsPerCore1_ = tn::kNeuronsPerCore / bins_;           // 14 at 18 bins
  pixelsPerCore2_ = tn::kNeuronsPerCore / (2 * bins_);     // 7 at 18 bins

  const int numCores1 = (numPixels + pixelsPerCore1_ - 1) / pixelsPerCore1_;
  const int numCores2 = (numPixels + pixelsPerCore2_ - 1) / pixelsPerCore2_;
  const int numCores3 = (numCores2 + 1) / 2;  // two stage-2 cores per counter

  inputAxons_.assign(static_cast<std::size_t>(kSide) * kSide, {});
  for (int c = 0; c < numCores1; ++c) stage1Cores_.push_back(network_.addCore());
  for (int c = 0; c < numCores2; ++c) stage2Cores_.push_back(network_.addCore());
  for (int c = 0; c < numCores3; ++c) stage3Cores_.push_back(network_.addCore());

  // ---- Stage 3: per-direction counters --------------------------------
  for (int h = 0; h < numCores3; ++h) {
    tn::Core& core = network_.core(stage3Cores_[h]);
    for (int a = 0; a < tn::kAxonsPerCore; ++a) core.setAxonType(a, 0);
    for (int k = 0; k < bins_; ++k) {
      tn::NeuronConfig& cfg = core.neuron(k);
      cfg.synapticWeights = {1, 0, 0, 0};
      cfg.threshold = 1;
      cfg.resetMode = tn::ResetMode::kLinear;  // one output spike per vote
      cfg.floorPotential = 0;
      cfg.recordOutput = true;
    }
  }

  // ---- Stages 1 and 2 ---------------------------------------------------
  for (int p = 0; p < numPixels; ++p) {
    const int px = p % kCell;
    const int py = p / kCell;
    // Input-grid (10x10) coordinates of the four neighbours.
    const int east = (py + 1) * kSide + (px + 2);
    const int west = (py + 1) * kSide + px;
    const int north = py * kSide + (px + 1);
    const int south = (py + 2) * kSide + (px + 1);
    const int roles[4] = {east, west, north, south};

    // Stage-1 slot.
    const int c1 = stage1Cores_[p / pixelsPerCore1_];
    const int slot1 = p % pixelsPerCore1_;
    tn::Core& core1 = network_.core(c1);
    // Four role axons per pixel: E(type0) W(1) N(2) S(3).
    const int axonBase1 = slot1 * 4;
    for (int r = 0; r < 4; ++r) {
      core1.setAxonType(axonBase1 + r, r);
      inputAxons_[static_cast<std::size_t>(roles[r])].emplace_back(
          c1, axonBase1 + r);
    }

    // Stage-2 slot.
    const int c2Index = p / pixelsPerCore2_;
    const int c2 = stage2Cores_[c2Index];
    const int slot2 = p % pixelsPerCore2_;
    tn::Core& core2 = network_.core(c2);
    const int axonBase2 = slot2 * 2 * bins_;  // [votes | feedback]
    for (int k = 0; k < bins_; ++k) {
      core2.setAxonType(axonBase2 + k, 0);           // vote arrival
      core2.setAxonType(axonBase2 + bins_ + k, 1);   // recurrent feedback
    }
    core2.setAxonType(kBlankingAxon, 2);

    // Stage-3 slot for this pixel's relays.
    const int c3 = stage3Cores_[c2Index / 2];
    const int axonBase3 =
        (c2Index % 2) * (pixelsPerCore2_ * bins_) + slot2 * bins_;

    for (int k = 0; k < bins_; ++k) {
      // Stage-1 integration + ramp-race neuron (pixel p, direction k).
      {
        const int n = slot1 * bins_ + k;
        tn::NeuronConfig& cfg = core1.neuron(n);
        cfg.synapticWeights = {cosQ_[k], -cosQ_[k], sinQ_[k], -sinQ_[k]};
        cfg.leak = quant_.rampLeak;        // the race ramp
        cfg.threshold = rampThreshold_;    // unreachable during the window
        cfg.resetMode = tn::ResetMode::kAbsolute;
        cfg.resetValue = kFiredFloor;  // fire-once
        cfg.floorPotential = 2 * kFiredFloor;
        cfg.dest = tn::Destination{c2, axonBase2 + k, 1};
        for (int r = 0; r < 4; ++r) {
          core1.setConnection(axonBase1 + r, n, true);
        }
      }
      // Stage-2 winner neuron (latched WTA; the blanking axon -- type 2 --
      // closes the latch when the race passes the vote threshold).
      {
        const int n = slot2 * 2 * bins_ + k;
        tn::NeuronConfig& cfg = core2.neuron(n);
        cfg.synapticWeights = {1, kInhibition, kInhibition, 0};
        cfg.threshold = 1;
        cfg.resetMode = tn::ResetMode::kAbsolute;
        cfg.resetValue = 0;
        cfg.dest = tn::Destination{c2, axonBase2 + bins_ + k, 1};
        core2.setConnection(axonBase2 + k, n, true);
        for (int j = 0; j < bins_; ++j) {
          core2.setConnection(axonBase2 + bins_ + j, n, true);
        }
        core2.setConnection(kBlankingAxon, n, true);
      }
      // Stage-2 relay neuron (forwards the winning vote to the counter).
      {
        const int n = slot2 * 2 * bins_ + bins_ + k;
        tn::NeuronConfig& cfg = core2.neuron(n);
        cfg.synapticWeights = {0, 1, 0, 0};
        cfg.threshold = 1;
        cfg.resetMode = tn::ResetMode::kAbsolute;
        cfg.resetValue = 0;
        cfg.floorPotential = 0;
        cfg.dest = tn::Destination{c3, axonBase3 + k, 1};
        core2.setConnection(axonBase2 + bins_ + k, n, true);
        // Route this relay's stage-3 axon to counter k.
        network_.core(c3).setConnection(axonBase3 + k, k, true);
      }
    }
  }
}

std::vector<float> NApproxCorelet::extract(const vision::Image& img, int x0,
                                           int y0) {
  network_.reset(true);

  // Inject rate-coded input spike trains, duplicated to every role axon.
  for (int y = 0; y < kSide; ++y) {
    for (int x = 0; x < kSide; ++x) {
      const auto& targets = inputAxons_[static_cast<std::size_t>(y) * kSide + x];
      if (targets.empty()) continue;
      const float v = img.atClamped(x0 - 1 + x, y0 - 1 + y);
      for (long t : tn::rateCodeTicks(v, window_)) {
        for (const auto& [core, axon] : targets) {
          network_.scheduleInput(t, core, axon);
        }
      }
    }
  }

  // Blanking pulse: stage-1 votes fired at race tick cutoffBucket-1 arrive
  // at stage 2 at tick cutoffBucket; anything later is suppressed.
  for (int c2 : stage2Cores_) {
    network_.scheduleInput(cutoffBucket_ + 1, c2, kBlankingAxon);
  }

  lastRun_ = network_.run(runTicks_);

  std::vector<float> histogram(static_cast<std::size_t>(bins_), 0.0f);
  for (const tn::OutputSpike& spike : lastRun_.outputSpikes) {
    histogram[static_cast<std::size_t>(spike.neuron)] += 1.0f;
  }
  return histogram;
}

}  // namespace pcnn::napprox
