#include "tn/faults.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>

#include "common/env.hpp"
#include "obs/flight.hpp"
#include "obs/obs.hpp"
#include "tn/network.hpp"

namespace pcnn::tn {

namespace {

/// Process-wide fault tallies (always on; see FaultCounts doc).
std::atomic<long> gDropped{0};
std::atomic<long> gDeadDrops{0};
std::atomic<long> gStuckOn{0};
std::atomic<long> gStuckOff{0};
std::atomic<long> gFlips{0};

/// Stream-separation constants so the selection, flip, and drop RNGs never
/// correlate even though they share plan.seed.
constexpr std::uint64_t kSelectStream = 0xdeadc0de5e1ec7ULL;
constexpr std::uint64_t kDropStream = 0xd50bab1e57a7e5ULL;
constexpr std::uint64_t kFlipStream = 0xb17f11b5f1a6edULL;

bool parseDouble(const std::string& text, double& out) {
  if (text.empty()) return false;
  char* end = nullptr;
  out = std::strtod(text.c_str(), &end);
  return end == text.c_str() + text.size();
}

bool parseNonNegativeLong(const std::string& text, long long& out) {
  if (text.empty()) return false;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
  }
  char* end = nullptr;
  out = std::strtoll(text.c_str(), &end, 10);
  return end == text.c_str() + text.size();
}

std::string formatDouble(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", value);
  return buf;
}

}  // namespace

std::string FaultPlan::toString() const {
  std::string out;
  auto append = [&out](const std::string& piece) {
    if (!out.empty()) out += ',';
    out += piece;
  };
  if (spikeDropProb > 0.0) append("drop=" + formatDouble(spikeDropProb));
  if (deadCores > 0) append("dead_cores=" + std::to_string(deadCores));
  if (stuckOnNeurons > 0) append("stuck_on=" + std::to_string(stuckOnNeurons));
  if (stuckOffNeurons > 0) {
    append("stuck_off=" + std::to_string(stuckOffNeurons));
  }
  if (weightFlipProb > 0.0) {
    append("weight_flip=" + formatDouble(weightFlipProb));
  }
  append("seed=" + std::to_string(seed));
  return out;
}

StatusOr<FaultPlan> parseFaultPlan(const std::string& spec) {
  FaultPlan plan;
  if (spec.empty()) {
    return Status::InvalidArgument("parseFaultPlan: empty spec");
  }
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string token = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (token.empty()) continue;
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument(
          "parseFaultPlan: token \"" + token +
          "\" is not key=value (keys: drop, dead_cores, stuck_on, "
          "stuck_off, weight_flip, seed)");
    }
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    if (key == "drop" || key == "weight_flip") {
      double p = 0.0;
      if (!parseDouble(value, p) || p < 0.0 || p > 1.0) {
        return Status::InvalidArgument("parseFaultPlan: " + key + "=\"" +
                                       value +
                                       "\" is not a probability in [0, 1]");
      }
      (key == "drop" ? plan.spikeDropProb : plan.weightFlipProb) = p;
    } else if (key == "dead_cores" || key == "stuck_on" ||
               key == "stuck_off") {
      long long n = 0;
      if (!parseNonNegativeLong(value, n) || n > 1'000'000) {
        return Status::InvalidArgument("parseFaultPlan: " + key + "=\"" +
                                       value +
                                       "\" is not a count in [0, 1000000]");
      }
      if (key == "dead_cores") {
        plan.deadCores = static_cast<int>(n);
      } else if (key == "stuck_on") {
        plan.stuckOnNeurons = static_cast<int>(n);
      } else {
        plan.stuckOffNeurons = static_cast<int>(n);
      }
    } else if (key == "seed") {
      long long s = 0;
      if (!parseNonNegativeLong(value, s)) {
        return Status::InvalidArgument("parseFaultPlan: seed=\"" + value +
                                       "\" is not a non-negative integer");
      }
      plan.seed = static_cast<std::uint64_t>(s);
    } else {
      return Status::InvalidArgument(
          "parseFaultPlan: unknown key \"" + key +
          "\" (keys: drop, dead_cores, stuck_on, stuck_off, weight_flip, "
          "seed)");
    }
  }
  return plan;
}

const std::optional<FaultPlan>& envFaultPlan() {
  static const std::optional<FaultPlan> plan = []() -> std::optional<FaultPlan> {
    const std::optional<std::string> env = env::raw("PCNN_FAULTS");
    if (!env) return std::nullopt;
    StatusOr<FaultPlan> parsed = parseFaultPlan(*env);
    if (!parsed.ok()) {
      std::fprintf(stderr, "pcnn: ignoring invalid PCNN_FAULTS: %s\n",
                   parsed.status().toString().c_str());
      return std::nullopt;
    }
    return parsed.value();
  }();
  return plan;
}

FaultCounts globalFaultCounts() {
  FaultCounts counts;
  counts.droppedSpikes = gDropped.load(std::memory_order_relaxed);
  counts.deadCoreDrops = gDeadDrops.load(std::memory_order_relaxed);
  counts.stuckOnSpikes = gStuckOn.load(std::memory_order_relaxed);
  counts.stuckOffSuppressed = gStuckOff.load(std::memory_order_relaxed);
  counts.weightFlips = gFlips.load(std::memory_order_relaxed);
  return counts;
}

FaultModel::FaultModel(const FaultPlan& plan)
    : plan_(plan),
      dropRng_(plan.seed ^ kDropStream),
      obsDropped_(&obs::counter("tn.faults.dropped_spikes")),
      obsDeadDrops_(&obs::counter("tn.faults.dead_core_drops")),
      obsStuckOn_(&obs::counter("tn.faults.stuck_on_spikes")),
      obsStuckOff_(&obs::counter("tn.faults.stuck_off_suppressed")),
      obsFlips_(&obs::counter("tn.faults.weight_flips")) {
  obs::counter("tn.faults.plans").add();
}

void FaultModel::materialize(Network& network) {
  const int coreCount = network.coreCount();
  Rng select(plan_.seed ^ kSelectStream);

  // Dead cores: distinct draws over the core range, capped at the network
  // size. Selection is a pure function of (seed, coreCount).
  deadCore_.assign(static_cast<std::size_t>(coreCount), 0);
  int toKill = plan_.deadCores < coreCount ? plan_.deadCores : coreCount;
  int killed = 0;
  while (killed < toKill) {
    const int c = select.uniformInt(0, coreCount - 1);
    if (deadCore_[static_cast<std::size_t>(c)] == 0) {
      deadCore_[static_cast<std::size_t>(c)] = 1;
      ++killed;
    }
  }

  // Stuck neurons: distinct (core, neuron) draws restricted to live cores
  // (a stuck neuron on a dead core would be moot -- the core emits
  // nothing). Stuck-on and stuck-off draw from the same pool so no neuron
  // is both.
  stuckOn_.assign(static_cast<std::size_t>(coreCount), {});
  stuckOff_.assign(static_cast<std::size_t>(coreCount), {});
  stuckAny_.assign(static_cast<std::size_t>(coreCount), 0);
  const long liveCores = coreCount - toKill;
  const long pool = liveCores * kNeuronsPerCore;
  auto selectStuck = [&](int want, std::vector<std::vector<int>>& into,
                         long alreadyTaken) {
    int taken = 0;
    const long available = pool - alreadyTaken;
    const int target = want < available ? want : static_cast<int>(available);
    while (taken < target) {
      const int c = select.uniformInt(0, coreCount - 1);
      if (deadCore_[static_cast<std::size_t>(c)] != 0) continue;
      const int n = select.uniformInt(0, kNeuronsPerCore - 1);
      bool used = false;
      for (int existing : stuckOn_[static_cast<std::size_t>(c)]) {
        if (existing == n) used = true;
      }
      for (int existing : stuckOff_[static_cast<std::size_t>(c)]) {
        if (existing == n) used = true;
      }
      if (used) continue;
      auto& list = into[static_cast<std::size_t>(c)];
      list.insert(std::upper_bound(list.begin(), list.end(), n), n);
      stuckAny_[static_cast<std::size_t>(c)] = 1;
      ++taken;
    }
    return taken;
  };
  const int onTaken = liveCores > 0 ? selectStuck(plan_.stuckOnNeurons,
                                                  stuckOn_, 0)
                                    : 0;
  if (liveCores > 0) selectStuck(plan_.stuckOffNeurons, stuckOff_, onTaken);

  // Weight bit-flips: destructive, so each core is corrupted at most once
  // even if the network grows and gets re-materialized. The per-core flip
  // pattern is seeded by (seed, core) alone, so *when* a core gets flipped
  // does not change *how*.
  if (plan_.weightFlipProb > 0.0 && flippedCores_ < coreCount) {
    applyWeightFlips(network, flippedCores_, coreCount);
    flippedCores_ = coreCount;
  }

  materializedCores_ = coreCount;
}

void FaultModel::applyWeightFlips(Network& network, int firstCore,
                                  int endCore) {
  long flips = 0;
  for (int c = firstCore; c < endCore; ++c) {
    Rng flipRng(plan_.seed ^ kFlipStream ^
                (0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(c + 1)));
    Core& core = network.core(c);
    for (int n = 0; n < kNeuronsPerCore; ++n) {
      for (int t = 0; t < kAxonTypes; ++t) {
        if (flipRng.uniform() >= plan_.weightFlipProb) continue;
        const int bit = flipRng.uniformInt(0, 8);
        // Flip one bit of the signed 9-bit two's-complement encoding the
        // chip stores (weights outside that range are already clamped by
        // the corelet builder).
        int encoded = core.neuron(n).synapticWeights[t] & 0x1FF;
        encoded ^= 1 << bit;
        core.neuron(n).synapticWeights[t] =
            (encoded & 0x100) != 0 ? encoded - 0x200 : encoded;
        ++flips;
      }
    }
  }
  counts_.weightFlips += flips;
  gFlips.fetch_add(flips, std::memory_order_relaxed);
  obsFlips_->add(flips);
  if (flips > 0) obs::noteFaultEvent("tn.faults.weight_flips");
}

void FaultModel::countDeadCoreDrop() {
  ++counts_.deadCoreDrops;
  gDeadDrops.fetch_add(1, std::memory_order_relaxed);
  obsDeadDrops_->add();
  obs::noteFaultEvent("tn.faults.dead_core_drop");
}

bool FaultModel::dropDelivery() {
  if (plan_.spikeDropProb <= 0.0) return false;
  if (dropRng_.uniform() >= plan_.spikeDropProb) return false;
  ++counts_.droppedSpikes;
  gDropped.fetch_add(1, std::memory_order_relaxed);
  obsDropped_->add();
  obs::noteFaultEvent("tn.faults.dropped_spike");
  return true;
}

void FaultModel::applyStuckNeurons(int core, std::vector<int>& fired) {
  const auto& on = stuckOn_[static_cast<std::size_t>(core)];
  const auto& off = stuckOff_[static_cast<std::size_t>(core)];

  // Suppress stuck-at-off firings in place (fired is ascending).
  if (!off.empty() && !fired.empty()) {
    std::size_t out = 0;
    long suppressed = 0;
    for (std::size_t i = 0; i < fired.size(); ++i) {
      bool stuck = false;
      for (int n : off) {
        if (n == fired[i]) {
          stuck = true;
          break;
        }
      }
      if (stuck) {
        ++suppressed;
      } else {
        fired[out++] = fired[i];
      }
    }
    fired.resize(out);
    if (suppressed > 0) {
      counts_.stuckOffSuppressed += suppressed;
      gStuckOff.fetch_add(suppressed, std::memory_order_relaxed);
      obsStuckOff_->add(suppressed);
      obs::noteFaultEvent("tn.faults.stuck_off");
    }
  }

  // Merge stuck-at-on neurons, preserving ascending order; a stuck-on
  // neuron that genuinely fired this tick emits one spike, not two.
  if (!on.empty()) {
    scratch_.clear();
    scratch_.reserve(fired.size() + on.size());
    std::size_t i = 0;
    std::size_t j = 0;
    long injected = 0;
    while (i < fired.size() || j < on.size()) {
      if (j >= on.size() || (i < fired.size() && fired[i] < on[j])) {
        scratch_.push_back(fired[i++]);
      } else if (i >= fired.size() || on[j] < fired[i]) {
        scratch_.push_back(on[j++]);
        ++injected;
      } else {  // equal: fired naturally, counts once
        scratch_.push_back(fired[i++]);
        ++j;
      }
    }
    fired.swap(scratch_);
    if (injected > 0) {
      counts_.stuckOnSpikes += injected;
      gStuckOn.fetch_add(injected, std::memory_order_relaxed);
      obsStuckOn_->add(injected);
      obs::noteFaultEvent("tn.faults.stuck_on");
    }
  }
}

std::vector<int> FaultModel::deadCoreIndices() const {
  std::vector<int> out;
  for (std::size_t c = 0; c < deadCore_.size(); ++c) {
    if (deadCore_[c] != 0) out.push_back(static_cast<int>(c));
  }
  return out;
}

}  // namespace pcnn::tn
