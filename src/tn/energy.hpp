#pragma once

#include "tn/network.hpp"

namespace pcnn::tn {

/// Event-driven energy model for a simulated run.
///
/// TrueNorth's power splits into a near-constant leakage/clock baseline
/// and an activity component proportional to spike traffic. Merolla et
/// al. (Science 2014) report ~26 pJ per synaptic event and 65 mW for a
/// fully loaded chip; at typical workloads the baseline dominates, which
/// is why the paper's Table 2 scales power with provisioned cores. This
/// model exposes both components so benches can report how far a given
/// corelet's activity sits from the provisioned-power ceiling.
struct EnergyParams {
  double staticWattsPerCore = 65e-3 / 4096;  ///< leakage + clock baseline
  double joulesPerSpike = 26e-12;  ///< per synaptic event (Merolla 2014)
  double tickSeconds = 1e-3;       ///< 1 ms tick
};

struct EnergyReport {
  double staticJoules = 0.0;
  double dynamicJoules = 0.0;
  double totalJoules() const { return staticJoules + dynamicJoules; }
  /// Average power over the run.
  double watts = 0.0;
  double seconds = 0.0;
  long spikes = 0;
  long synapticEvents = 0;
};

/// Estimates the energy of a completed run on `network`.
///
/// Synaptic events are approximated as spikes x mean fan-out; we use the
/// configured synapse count per core to bound fan-out, which is an upper
/// estimate (every spike is charged for its core's densest row).
EnergyReport estimateEnergy(const Network& network, const RunResult& run,
                            const EnergyParams& params = {});

}  // namespace pcnn::tn
