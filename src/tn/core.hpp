#pragma once

#include <bitset>
#include <cassert>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "tn/types.hpp"

namespace pcnn::tn {

/// Crossbar rows as 64-bit words (256 neurons -> 4 words per axon).
constexpr int kConnWords = kNeuronsPerCore / 64;

/// Compiled structure-of-arrays image of one core's static configuration,
/// consumed by the event engine's vectorized tick (Core::tickSoA). Built
/// lazily from the AoS configuration and invalidated by any configuration
/// mutation, so the two views can never disagree.
///
///  - weights[type][neuron] are per-axon-type weight planes: integrating
///    one spiking axon walks a single contiguous plane instead of striding
///    through NeuronConfig records;
///  - connRows[axon] is the crossbar row as a 256-bit mask, iterated
///    word-by-word with count-trailing-zeros;
///  - leak / threshold / floorPotential are contiguous, so one core-tick
///    leaks, clamps, and thresholds all 256 neurons in vector lanes.
struct CoreSoA {
  std::array<std::array<std::uint64_t, kConnWords>, kAxonsPerCore> connRows{};
  std::array<std::uint8_t, kAxonsPerCore> axonTypes{};
  std::array<std::array<std::int32_t, kNeuronsPerCore>, kAxonTypes> weights{};
  alignas(64) std::array<std::int32_t, kNeuronsPerCore> leak{};
  alignas(64) std::array<std::int32_t, kNeuronsPerCore> threshold{};
  alignas(64) std::array<std::int32_t, kNeuronsPerCore> floorPotential{};
  std::array<std::int32_t, kNeuronsPerCore> resetValue{};
  std::array<std::int32_t, kNeuronsPerCore> stochasticMask{};
  std::array<std::uint8_t, kNeuronsPerCore> resetMode{};
  std::array<std::uint8_t, kNeuronsPerCore> stochastic{};
  /// Any neuron carries leak or a stochastic threshold: the core must tick
  /// every tick (stochastic cores must draw their RNG stream every tick to
  /// stay aligned with the dense reference).
  bool hasDynamics = false;
  bool hasStochastic = false;
};

/// One neurosynaptic core: a 256x256 binary crossbar between axons (input
/// lines) and neurons (output lines). Each axon carries one of four types;
/// each neuron holds a 4-entry signed weight LUT, so the effective synaptic
/// weight at crossbar point (axon i, neuron j) is
/// conn(i,j) * weights_j[type_i], exactly the TrueNorth abstraction.
class Core {
 public:
  Core();

  /// --- configuration ---------------------------------------------------
  void setAxonType(int axon, int type);
  int axonType(int axon) const { return axonTypes_[checkAxon(axon)]; }
  void setConnection(int axon, int neuron, bool connected);
  bool connection(int axon, int neuron) const;
  NeuronConfig& neuron(int index);
  const NeuronConfig& neuron(int index) const;

  /// --- runtime ----------------------------------------------------------
  /// Marks an axon as carrying a spike for the next tick() call. Hot path:
  /// called per delivered spike per tick, so the axon range is asserted in
  /// debug builds only -- external inputs are validated at schedule time
  /// (Network::scheduleInput) and routed destinations at configuration
  /// compile time (Core::compiled) or fire time (dense engine).
  void deliverSpike(int axon) {
    assert(axon >= 0 && axon < kAxonsPerCore);
    quiescent_ = false;
    if (!pendingMask_[static_cast<std::size_t>(axon)]) {
      pendingMask_[static_cast<std::size_t>(axon)] = true;
      pendingAxons_.push_back(axon);
    }
  }

  /// Advances one tick: integrates pending axon spikes into membrane
  /// potentials, applies leak, fires neurons at or above threshold, and
  /// appends fired neuron indices to `fired`. Clears the axon buffer.
  /// This is the scalar reference implementation (dense engine).
  void tick(Rng& rng, std::vector<int>& fired);

  /// Same contract and bitwise-identical results as tick(), implemented
  /// against the compiled SoA image (event engine). The caller must have
  /// called compiled() since the last configuration change.
  void tickSoA(Rng& rng, std::vector<int>& fired);

  /// Compiled SoA image, rebuilt when stale. Validates routed destinations
  /// (axon range, delay 1..kMaxDelayTicks) so the event tick loop can run
  /// assert-only.
  const CoreSoA& compiled();

  int potential(int neuron) const;
  void setPotential(int neuron, int value);

  /// True when the previous tick integrated nothing, fired nothing, and no
  /// neuron carries leak or a stochastic threshold: the core's state can
  /// only change when a new spike arrives.
  bool quiescent() const { return quiescent_; }
  /// True when at least one axon spike awaits the next tick.
  bool hasPending() const { return !pendingAxons_.empty(); }

  /// Total number of spikes this core's neurons have fired since the last
  /// clearActivity() (activity proxy for the dynamic-power model).
  long firedCount() const { return firedCount_; }
  void clearActivity() { firedCount_ = 0; }

  /// Number of configured (non-empty) crossbar connections.
  long synapseCount() const;

 private:
  static int checkAxon(int axon);
  static int checkNeuron(int neuron);
  void compileSoA();

  std::array<std::uint8_t, kAxonsPerCore> axonTypes_{};
  /// conn_[axon] = bitset over neurons connected to that axon.
  std::array<std::bitset<kNeuronsPerCore>, kAxonsPerCore> conn_{};
  std::array<NeuronConfig, kNeuronsPerCore> neurons_{};
  std::array<int, kNeuronsPerCore> potentials_{};
  std::vector<int> pendingAxons_;
  std::bitset<kAxonsPerCore> pendingMask_;
  long firedCount_ = 0;
  /// See quiescent(). Cleared by any configuration or potential mutation.
  bool quiescent_ = false;
  /// Lazily compiled SoA image (see CoreSoA); soaDirty_ is set by every
  /// configuration mutator, including the non-const neuron() accessor.
  std::unique_ptr<CoreSoA> soa_;
  bool soaDirty_ = true;
};

}  // namespace pcnn::tn
