#pragma once

#include <bitset>
#include <vector>

#include "common/rng.hpp"
#include "tn/types.hpp"

namespace pcnn::tn {

/// One neurosynaptic core: a 256x256 binary crossbar between axons (input
/// lines) and neurons (output lines). Each axon carries one of four types;
/// each neuron holds a 4-entry signed weight LUT, so the effective synaptic
/// weight at crossbar point (axon i, neuron j) is
/// conn(i,j) * weights_j[type_i], exactly the TrueNorth abstraction.
class Core {
 public:
  Core();

  /// --- configuration ---------------------------------------------------
  void setAxonType(int axon, int type);
  int axonType(int axon) const { return axonTypes_[checkAxon(axon)]; }
  void setConnection(int axon, int neuron, bool connected);
  bool connection(int axon, int neuron) const;
  NeuronConfig& neuron(int index);
  const NeuronConfig& neuron(int index) const;

  /// --- runtime ----------------------------------------------------------
  /// Marks an axon as carrying a spike for the next tick() call.
  void deliverSpike(int axon);

  /// Advances one tick: integrates pending axon spikes into membrane
  /// potentials, applies leak, fires neurons at or above threshold, and
  /// appends fired neuron indices to `fired`. Clears the axon buffer.
  void tick(Rng& rng, std::vector<int>& fired);

  int potential(int neuron) const;
  void setPotential(int neuron, int value);

  /// Total number of spikes this core's neurons have fired since the last
  /// clearActivity() (activity proxy for the dynamic-power model).
  long firedCount() const { return firedCount_; }
  void clearActivity() { firedCount_ = 0; }

  /// Number of configured (non-empty) crossbar connections.
  long synapseCount() const;

 private:
  static int checkAxon(int axon);
  static int checkNeuron(int neuron);

  std::array<std::uint8_t, kAxonsPerCore> axonTypes_{};
  /// conn_[axon] = bitset over neurons connected to that axon.
  std::array<std::bitset<kNeuronsPerCore>, kAxonsPerCore> conn_{};
  std::array<NeuronConfig, kNeuronsPerCore> neurons_{};
  std::array<int, kNeuronsPerCore> potentials_{};
  std::vector<int> pendingAxons_;
  std::bitset<kAxonsPerCore> pendingMask_;
  long firedCount_ = 0;
  /// True when the previous tick integrated nothing, fired nothing, and no
  /// neuron carries leak or a stochastic threshold: the core's state can
  /// only change when a new spike arrives, so tick() can return
  /// immediately. Cleared by any configuration or potential mutation.
  bool quiescent_ = false;
};

}  // namespace pcnn::tn
