#include "tn/energy.hpp"

namespace pcnn::tn {

EnergyReport estimateEnergy(const Network& network, const RunResult& run,
                            const EnergyParams& params) {
  EnergyReport report;
  report.seconds = static_cast<double>(run.ticksRun) * params.tickSeconds;
  report.spikes = run.totalSpikes;
  report.staticJoules = params.staticWattsPerCore *
                        static_cast<double>(network.coreCount()) *
                        report.seconds;

  // Charge each core's fired spikes at that core's mean crossbar fan-out.
  double synapticEvents = 0.0;
  for (int c = 0; c < network.coreCount(); ++c) {
    const Core& core = network.core(c);
    const long fired = core.firedCount();
    if (fired == 0) continue;
    const double meanFanOut =
        static_cast<double>(core.synapseCount()) / kAxonsPerCore;
    synapticEvents += static_cast<double>(fired) * meanFanOut;
  }
  report.synapticEvents = static_cast<long>(synapticEvents);
  report.dynamicJoules = synapticEvents * params.joulesPerSpike;
  report.watts =
      report.seconds > 0.0 ? report.totalJoules() / report.seconds : 0.0;
  return report;
}

}  // namespace pcnn::tn
