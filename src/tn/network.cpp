#include "tn/network.hpp"

#include <stdexcept>

#include "common/parallel.hpp"
#include "obs/obs.hpp"

namespace pcnn::tn {

Network::Network(std::uint64_t seed) : seed_(seed) {
  queues_.resize(kMaxDelayTicks + 1);
  // PCNN_FAULTS makes every network in the process fault-injected, so a
  // whole pipeline can be degraded from the environment without code
  // changes. Programmatic setFaultPlan/clearFaultPlan override it.
  if (const std::optional<FaultPlan>& env = envFaultPlan();
      env.has_value() && env->any()) {
    faults_ = std::make_unique<FaultModel>(*env);
  }
}

void Network::setFaultPlan(const FaultPlan& plan) {
  if (!plan.any()) {
    faults_.reset();
    return;
  }
  faults_ = std::make_unique<FaultModel>(plan);
}

int Network::addCore() {
  const auto index = static_cast<std::uint64_t>(cores_.size());
  cores_.push_back(std::make_unique<Core>());
  // Distinct deterministic stream per core; splitmix64-style spread so
  // adjacent cores do not get correlated seeds.
  coreRngs_.emplace_back(seed_ + 0x9e3779b97f4a7c15ULL * (index + 1));
  firedScratch_.emplace_back();
  return static_cast<int>(cores_.size()) - 1;
}

Core& Network::core(int index) {
  if (index < 0 || index >= coreCount()) {
    throw std::out_of_range("Network: core index out of range");
  }
  return *cores_[index];
}

const Core& Network::core(int index) const {
  if (index < 0 || index >= coreCount()) {
    throw std::out_of_range("Network: core index out of range");
  }
  return *cores_[index];
}

void Network::scheduleInput(long tick, int coreIndex, int axon) {
  if (tick < now_) {
    throw std::invalid_argument("Network: input scheduled in the past");
  }
  if (tick - now_ > kMaxDelayTicks) {
    // Far-future inputs are legal for the host environment; the hardware
    // buffers them off-chip. We keep a single ring, so clamp usage: callers
    // schedule at most kMaxDelayTicks ahead per run() step. To stay simple
    // and correct, store far events in an overflow list.
    overflow_.push_back({tick, coreIndex, axon});
    return;
  }
  queues_[tick % (kMaxDelayTicks + 1)].push_back({tick, coreIndex, axon});
}

RunResult Network::run(long ticks) {
  PCNN_SPAN_ARG("tn.run", "ticks", ticks);
  RunResult result;
  result.coreSpikes.assign(static_cast<std::size_t>(coreCount()), 0);
  // Realize the fault plan for the final core population (lazy so faults
  // can be configured before or after corelet construction).
  if (faults_ && !faults_->materializedFor(coreCount())) {
    faults_->materialize(*this);
  }
  for (long step = 0; step < ticks; ++step) {
    // Move due overflow events into the ring.
    for (std::size_t i = 0; i < overflow_.size();) {
      if (overflow_[i].tick - now_ <= kMaxDelayTicks) {
        queues_[overflow_[i].tick % (kMaxDelayTicks + 1)].push_back(
            overflow_[i]);
        overflow_[i] = overflow_.back();
        overflow_.pop_back();
      } else {
        ++i;
      }
    }

    // 1. Deliver spikes due this tick. Fault intercepts live here: a
    //    delivery to a dead core is discarded (dead-core check first, so
    //    the drop stream is only consumed for live targets), then the
    //    per-delivery drop fault fires. Both decisions happen in this
    //    sequential phase, so the drop stream's consumption order -- and
    //    therefore the whole degraded run -- is thread-count-independent.
    auto& due = queues_[now_ % (kMaxDelayTicks + 1)];
    for (const PendingSpike& spike : due) {
      if (spike.tick != now_) continue;  // stale slot from a different lap
      if (spike.core >= 0 && spike.core < coreCount()) {
        if (faults_) {
          if (faults_->coreDead(spike.core)) {
            faults_->countDeadCoreDrop();
            continue;
          }
          if (faults_->dropDelivery()) continue;
        }
        cores_[spike.core]->deliverSpike(spike.axon);
      }
    }
    due.clear();

    // 2. Tick every core concurrently -- exactly what the chip does, every
    //    core stepping in lockstep per 1 ms tick. Each core touches only
    //    its own state, RNG stream and fired list. Dead cores never tick.
    parallelFor(0, coreCount(), [&](long c) {
      auto& fired = firedScratch_[static_cast<std::size_t>(c)];
      fired.clear();
      if (faults_ && faults_->coreDead(static_cast<int>(c))) return;
      cores_[c]->tick(coreRngs_[static_cast<std::size_t>(c)], fired);
    });
    // 3. Route fired spikes sequentially in core order, so recorded
    //    outputs and queue contents are identical for any thread count.
    //    Stuck-at neurons are applied here, before counting and routing:
    //    stuck-off firings vanish, stuck-on neurons emit every tick.
    for (int c = 0; c < coreCount(); ++c) {
      if (faults_ && faults_->hasStuckNeurons(c) && !faults_->coreDead(c)) {
        faults_->applyStuckNeurons(c, firedScratch_[static_cast<std::size_t>(c)]);
      }
      const auto& fired = firedScratch_[static_cast<std::size_t>(c)];
      result.totalSpikes += static_cast<long>(fired.size());
      result.coreSpikes[static_cast<std::size_t>(c)] +=
          static_cast<long>(fired.size());
      for (int n : fired) {
        const NeuronConfig& cfg = cores_[c]->neuron(n);
        if (cfg.recordOutput) {
          result.outputSpikes.push_back({now_, c, n});
        }
        if (cfg.dest.core >= 0) {
          const int delay = cfg.dest.delay;
          if (delay < 1 || delay > kMaxDelayTicks) {
            throw std::logic_error("Network: destination delay out of range");
          }
          const long arrive = now_ + delay;
          queues_[arrive % (kMaxDelayTicks + 1)].push_back(
              {arrive, cfg.dest.core, cfg.dest.axon});
        }
      }
    }
    ++now_;
  }
  result.ticksRun = ticks;
  // Domain telemetry: spike and tick totals across every simulated network
  // in the process, so a detect/report run can surface measured activity
  // next to the analytic Table-2 numbers.
  static obs::Counter& spikeCounter = obs::counter("tn.spikes");
  static obs::Counter& tickCounter = obs::counter("tn.ticks");
  static obs::Counter& coreTickCounter = obs::counter("tn.core_ticks");
  static obs::Counter& runCounter = obs::counter("tn.runs");
  spikeCounter.add(result.totalSpikes);
  tickCounter.add(ticks);
  coreTickCounter.add(ticks * coreCount());
  runCounter.add();
  return result;
}

void Network::reset(bool resetTime) {
  for (auto& queue : queues_) queue.clear();
  overflow_.clear();
  for (auto& corePtr : cores_) {
    for (int n = 0; n < kNeuronsPerCore; ++n) {
      corePtr->setPotential(n, 0);
    }
    corePtr->clearActivity();
  }
  if (resetTime) now_ = 0;
}

}  // namespace pcnn::tn
