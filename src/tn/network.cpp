#include "tn/network.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "common/parallel.hpp"
#include "obs/obs.hpp"

namespace pcnn::tn {

Network::Network(std::uint64_t seed)
    : seed_(seed), engine_(engineFromEnv()) {
  queues_.resize(kMaxDelayTicks + 1);
  // PCNN_FAULTS makes every network in the process fault-injected, so a
  // whole pipeline can be degraded from the environment without code
  // changes. Programmatic setFaultPlan/clearFaultPlan override it.
  if (const std::optional<FaultPlan>& env = envFaultPlan();
      env.has_value() && env->any()) {
    faults_ = std::make_unique<FaultModel>(*env);
  }
}

void Network::setFaultPlan(const FaultPlan& plan) {
  if (!plan.any()) {
    faults_.reset();
    return;
  }
  faults_ = std::make_unique<FaultModel>(plan);
}

int Network::addCore() {
  const auto index = static_cast<std::uint64_t>(cores_.size());
  cores_.push_back(std::make_unique<Core>());
  // Distinct deterministic stream per core; splitmix64-style spread so
  // adjacent cores do not get correlated seeds.
  coreRngs_.emplace_back(seed_ + 0x9e3779b97f4a7c15ULL * (index + 1));
  firedScratch_.emplace_back();
  activeStamp_.push_back(-1);
  return static_cast<int>(cores_.size()) - 1;
}

Core& Network::core(int index) {
  if (index < 0 || index >= coreCount()) {
    throw std::out_of_range("Network: core index out of range");
  }
  return *cores_[index];
}

const Core& Network::core(int index) const {
  if (index < 0 || index >= coreCount()) {
    throw std::out_of_range("Network: core index out of range");
  }
  return *cores_[index];
}

void Network::scheduleInput(long tick, int coreIndex, int axon) {
  if (tick < now_) {
    throw std::invalid_argument("Network: input scheduled in the past");
  }
  if (axon < 0 || axon >= kAxonsPerCore) {
    throw std::out_of_range("Core: axon index out of range");
  }
  if (tick - now_ > kMaxDelayTicks) {
    // Far-future inputs are legal for the host environment; the hardware
    // buffers them off-chip. We keep a single ring, so clamp usage: callers
    // schedule at most kMaxDelayTicks ahead per run() step. To stay simple
    // and correct, store far events in an overflow list.
    overflow_.push_back({tick, coreIndex, axon});
    overflowMin_ = std::min(overflowMin_, tick);
    return;
  }
  queues_[tick % (kMaxDelayTicks + 1)].push_back({tick, coreIndex, axon});
}

void Network::drainOverflow() {
  long newMin = kNoOverflow;
  for (std::size_t i = 0; i < overflow_.size();) {
    if (overflow_[i].tick - now_ <= kMaxDelayTicks) {
      queues_[overflow_[i].tick % (kMaxDelayTicks + 1)].push_back(
          overflow_[i]);
      overflow_[i] = overflow_.back();
      overflow_.pop_back();
    } else {
      newMin = std::min(newMin, overflow_[i].tick);
      ++i;
    }
  }
  overflowMin_ = newMin;
}

RunResult Network::run(long ticks) {
  PCNN_SPAN_ARG("tn.run", "ticks", ticks);
  // Realize the fault plan for the final core population (lazy so faults
  // can be configured before or after corelet construction).
  if (faults_ && !faults_->materializedFor(coreCount())) {
    faults_->materialize(*this);
  }
  RunResult result =
      engine_ == EngineKind::kDense ? runDense(ticks) : runEvent(ticks);
  result.ticksRun = ticks;
  // Domain telemetry: spike and tick totals across every simulated network
  // in the process, so a detect/report run can surface measured activity
  // next to the analytic Table-2 numbers. core_ticks counts the work the
  // engine actually did: the dense engine ticks every core every tick, the
  // event engine only its active set (see DESIGN.md 5e).
  static obs::Counter& spikeCounter = obs::counter("tn.spikes");
  static obs::Counter& tickCounter = obs::counter("tn.ticks");
  static obs::Counter& coreTickCounter = obs::counter("tn.core_ticks");
  static obs::Counter& runCounter = obs::counter("tn.runs");
  spikeCounter.add(result.totalSpikes);
  tickCounter.add(ticks);
  coreTickCounter.add(coreTicksLastRun_);
  runCounter.add();
  // Mean cores actually ticked per tick this run: coreCount() under the
  // dense engine, the active-set size under the event engine -- the live
  // utilization signal for the streaming exporter.
  static obs::Gauge& activeCores = obs::gauge("tn.active_cores");
  if (ticks > 0) {
    activeCores.set(static_cast<double>(coreTicksLastRun_) /
                    static_cast<double>(ticks));
  }
  return result;
}

RunResult Network::runDense(long ticks) {
  RunResult result;
  result.coreSpikes.assign(static_cast<std::size_t>(coreCount()), 0);
  coreTicksLastRun_ = ticks * coreCount();
  for (long step = 0; step < ticks; ++step) {
    // Move due overflow events into the ring (no-op scan-free on quiet
    // ticks thanks to the min-tick track).
    if (overflowMin_ - now_ <= kMaxDelayTicks) drainOverflow();

    // 1. Deliver spikes due this tick. Fault intercepts live here: a
    //    delivery to a dead core is discarded (dead-core check first, so
    //    the drop stream is only consumed for live targets), then the
    //    per-delivery drop fault fires. Both decisions happen in this
    //    sequential phase, so the drop stream's consumption order -- and
    //    therefore the whole degraded run -- is thread-count-independent.
    auto& due = queues_[now_ % (kMaxDelayTicks + 1)];
    for (const PendingSpike& spike : due) {
      if (spike.tick != now_) continue;  // stale slot from a different lap
      if (spike.core >= 0 && spike.core < coreCount()) {
        if (faults_) {
          if (faults_->coreDead(spike.core)) {
            faults_->countDeadCoreDrop();
            continue;
          }
          if (faults_->dropDelivery()) continue;
        }
        cores_[spike.core]->deliverSpike(spike.axon);
      }
    }
    due.clear();

    // 2. Tick every core concurrently -- exactly what the chip does, every
    //    core stepping in lockstep per 1 ms tick. Each core touches only
    //    its own state, RNG stream and fired list. Dead cores never tick.
    parallelFor(0, coreCount(), [&](long c) {
      auto& fired = firedScratch_[static_cast<std::size_t>(c)];
      fired.clear();
      if (faults_ && faults_->coreDead(static_cast<int>(c))) return;
      cores_[c]->tick(coreRngs_[static_cast<std::size_t>(c)], fired);
    });
    // 3. Route fired spikes sequentially in core order, so recorded
    //    outputs and queue contents are identical for any thread count.
    //    Stuck-at neurons are applied here, before counting and routing:
    //    stuck-off firings vanish, stuck-on neurons emit every tick.
    for (int c = 0; c < coreCount(); ++c) {
      if (faults_ && faults_->hasStuckNeurons(c) && !faults_->coreDead(c)) {
        faults_->applyStuckNeurons(c, firedScratch_[static_cast<std::size_t>(c)]);
      }
      const auto& fired = firedScratch_[static_cast<std::size_t>(c)];
      result.totalSpikes += static_cast<long>(fired.size());
      result.coreSpikes[static_cast<std::size_t>(c)] +=
          static_cast<long>(fired.size());
      for (int n : fired) {
        const NeuronConfig& cfg = std::as_const(*cores_[c]).neuron(n);
        if (cfg.recordOutput) {
          result.outputSpikes.push_back({now_, c, n});
        }
        if (cfg.dest.core >= 0) {
          // Delivery no longer range-checks (hot path); validate the
          // routed destination here instead, at fire time.
          if (cfg.dest.axon < 0 || cfg.dest.axon >= kAxonsPerCore) {
            throw std::out_of_range("Core: axon index out of range");
          }
          const int delay = cfg.dest.delay;
          if (delay < 1 || delay > kMaxDelayTicks) {
            throw std::logic_error("Network: destination delay out of range");
          }
          const long arrive = now_ + delay;
          queues_[arrive % (kMaxDelayTicks + 1)].push_back(
              {arrive, cfg.dest.core, cfg.dest.axon});
        }
      }
    }
    ++now_;
  }
  return result;
}

RunResult Network::runEvent(long ticks) {
  RunResult result;
  result.coreSpikes.assign(static_cast<std::size_t>(coreCount()), 0);
  coreTicksLastRun_ = 0;

  // Compile every core's SoA image up front (no-op when unchanged since
  // the last run) so destination validation happens here, sequentially,
  // and the parallel tick phase below runs assert-only.
  for (auto& corePtr : cores_) (void)corePtr->compiled();

  // Seed the first tick's active set: any core whose state can evolve
  // without a new delivery this run -- pending axons from direct
  // deliverSpike() calls, a mutated potential/configuration, leak or
  // stochastic dynamics, a firing in its previous tick (ResetMode::kNone
  // re-fire) -- plus cores carrying stuck-at fault neurons, which must
  // appear in every routing phase. All other cores join the set when a
  // delivery targets them.
  for (int c = 0; c < coreCount(); ++c) {
    if (!cores_[c]->quiescent() || cores_[c]->hasPending() ||
        (faults_ && faults_->hasStuckNeurons(c))) {
      activate(now_, c, activeNext_);
    }
  }

  for (long step = 0; step < ticks; ++step) {
    if (overflowMin_ - now_ <= kMaxDelayTicks) drainOverflow();

    activeNow_.swap(activeNext_);
    activeNext_.clear();

    // 1. Delivery: identical fault-intercept order to the dense engine
    //    (dead-core check, then the drop stream), in the same sequential
    //    phase, so degraded runs stay bitwise-identical across engines
    //    and thread counts. Each live delivery activates its target.
    auto& due = queues_[now_ % (kMaxDelayTicks + 1)];
    for (const PendingSpike& spike : due) {
      if (spike.tick != now_) continue;  // stale slot from a different lap
      if (spike.core >= 0 && spike.core < coreCount()) {
        if (faults_) {
          if (faults_->coreDead(spike.core)) {
            faults_->countDeadCoreDrop();
            continue;
          }
          if (faults_->dropDelivery()) continue;
        }
        cores_[spike.core]->deliverSpike(spike.axon);
        activate(now_, spike.core, activeNow_);
      }
    }
    due.clear();

    // The routing phase below must visit cores in ascending index order
    // (recorded-output order, queue push order, and the fault drop
    // stream's consumption order all depend on it), so sort the active
    // list; the epoch stamps already guarantee uniqueness.
    std::sort(activeNow_.begin(), activeNow_.end());

    // 2. Tick only the active set, in parallel. Chunk boundaries are a
    //    pure function of the (sorted, deduplicated) list, and each core
    //    touches only its own state, RNG stream and fired list, so the
    //    result is thread-count-invariant.
    const long activeCount = static_cast<long>(activeNow_.size());
    parallelForChunked(
        0, activeCount, suggestedGrain(activeCount), [&](long lo, long hi) {
          for (long i = lo; i < hi; ++i) {
            const int c = activeNow_[static_cast<std::size_t>(i)];
            auto& fired = firedScratch_[static_cast<std::size_t>(c)];
            fired.clear();
            if (faults_ && faults_->coreDead(c)) continue;
            cores_[c]->tickSoA(coreRngs_[static_cast<std::size_t>(c)], fired);
          }
        });
    coreTicksLastRun_ += activeCount;

    // 3. Route the active set's firings, ascending. Inactive cores have
    //    empty fired lists and no stuck neurons by construction, so their
    //    dense-engine contribution is exactly zero. A core stays active
    //    for the next tick iff its own tick left it non-quiescent
    //    (integrated, fired, or carries dynamics) or it hosts stuck-at
    //    neurons; deliveries re-activate the rest.
    for (const int c : activeNow_) {
      const bool dead = faults_ && faults_->coreDead(c);
      if (faults_ && faults_->hasStuckNeurons(c) && !dead) {
        faults_->applyStuckNeurons(c, firedScratch_[static_cast<std::size_t>(c)]);
      }
      const auto& fired = firedScratch_[static_cast<std::size_t>(c)];
      result.totalSpikes += static_cast<long>(fired.size());
      result.coreSpikes[static_cast<std::size_t>(c)] +=
          static_cast<long>(fired.size());
      for (int n : fired) {
        const NeuronConfig& cfg = std::as_const(*cores_[c]).neuron(n);
        if (cfg.recordOutput) {
          result.outputSpikes.push_back({now_, c, n});
        }
        if (cfg.dest.core >= 0) {
          // Validated at compile time above; assert-only here.
          assert(cfg.dest.axon >= 0 && cfg.dest.axon < kAxonsPerCore);
          assert(cfg.dest.delay >= 1 && cfg.dest.delay <= kMaxDelayTicks);
          const long arrive = now_ + cfg.dest.delay;
          queues_[arrive % (kMaxDelayTicks + 1)].push_back(
              {arrive, cfg.dest.core, cfg.dest.axon});
        }
      }
      if (!dead && (!cores_[c]->quiescent() ||
                    (faults_ && faults_->hasStuckNeurons(c)))) {
        activate(now_ + 1, c, activeNext_);
      }
    }
    ++now_;
  }
  return result;
}

void Network::reset(bool resetTime) {
  for (auto& queue : queues_) queue.clear();
  overflow_.clear();
  overflowMin_ = kNoOverflow;
  for (auto& corePtr : cores_) {
    for (int n = 0; n < kNeuronsPerCore; ++n) {
      corePtr->setPotential(n, 0);
    }
    corePtr->clearActivity();
  }
  // Invalidate the event engine's active bookkeeping: stamps may alias
  // future tick values once the clock rewinds (or pending lists are
  // cleared), and setPotential above woke every core anyway -- the next
  // run() re-seeds the set from the quiescent flags.
  std::fill(activeStamp_.begin(), activeStamp_.end(), -1L);
  activeNow_.clear();
  activeNext_.clear();
  if (resetTime) now_ = 0;
}

}  // namespace pcnn::tn
