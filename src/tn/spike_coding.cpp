#include "tn/spike_coding.hpp"

#include <algorithm>
#include <cmath>

namespace pcnn::tn {

int rateCodeCount(float value, int window) {
  const float v = std::clamp(value, 0.0f, 1.0f);
  return static_cast<int>(std::lround(v * static_cast<float>(window)));
}

std::vector<long> rateCodeTicks(float value, int window) {
  std::vector<long> ticks;
  const int count = rateCodeCount(value, window);
  if (count <= 0) return ticks;
  ticks.reserve(static_cast<std::size_t>(count));
  // Even spread: tick t carries a spike when the cumulative count
  // floor((t+1)*count/window) increments.
  int emitted = 0;
  for (int t = 0; t < window; ++t) {
    const int target = static_cast<int>(
        (static_cast<long long>(t + 1) * count) / window);
    if (target > emitted) {
      ticks.push_back(t);
      ++emitted;
    }
  }
  return ticks;
}

std::vector<long> stochasticCodeTicks(float value, int window, Rng& rng) {
  std::vector<long> ticks;
  const float v = std::clamp(value, 0.0f, 1.0f);
  for (int t = 0; t < window; ++t) {
    if (rng.bernoulli(v)) ticks.push_back(t);
  }
  return ticks;
}

}  // namespace pcnn::tn
