#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "tn/core.hpp"
#include "tn/engine.hpp"
#include "tn/faults.hpp"

namespace pcnn::tn {

/// Result of a simulation run.
struct RunResult {
  std::vector<OutputSpike> outputSpikes;  ///< spikes of record-flagged neurons
  long totalSpikes = 0;                   ///< all spikes fired by all cores
  long ticksRun = 0;
  /// Spikes fired per core over this run (indexed by core). This is the
  /// measured activity the event-driven energy model consumes, as opposed
  /// to the provisioned-core analytic model of Table 2.
  std::vector<long> coreSpikes;

  /// Merges another run's statistics. By default outputSpikes are NOT
  /// concatenated -- the common use aggregates activity across e.g. one
  /// run per extracted cell, where per-run spikes were already decoded.
  /// Pass mergeOutputSpikes = true when the recorded spikes themselves are
  /// the aggregate of interest (fault sweeps, multi-run traces), so
  /// accumulation cannot silently discard them.
  void accumulate(const RunResult& other, bool mergeOutputSpikes = false) {
    if (mergeOutputSpikes) {
      outputSpikes.insert(outputSpikes.end(), other.outputSpikes.begin(),
                          other.outputSpikes.end());
    }
    totalSpikes += other.totalSpikes;
    ticksRun += other.ticksRun;
    if (coreSpikes.size() < other.coreSpikes.size()) {
      coreSpikes.resize(other.coreSpikes.size(), 0);
    }
    for (std::size_t c = 0; c < other.coreSpikes.size(); ++c) {
      coreSpikes[c] += other.coreSpikes[c];
    }
  }
};

/// A network of neurosynaptic cores with inter-core spike routing.
///
/// Semantics per tick (matching the chip's synchronous 1 ms tick):
///  1. spikes scheduled to arrive this tick are delivered to their target
///     axon buffers (external inputs and routed neuron outputs alike);
///  2. every core integrates, leaks, and fires;
///  3. fired spikes are enqueued for delivery at tick + delay.
///
/// Two engines implement these semantics (see tn/engine.hpp): the dense
/// reference ticks every core every tick; the event engine ticks only the
/// active set. Results are bitwise-identical; selection defaults to the
/// PCNN_TN_ENGINE environment variable and can be overridden per network
/// with setEngine().
class Network {
 public:
  explicit Network(std::uint64_t seed = 1);

  /// Adds a core and returns its index.
  int addCore();
  int coreCount() const { return static_cast<int>(cores_.size()); }
  Core& core(int index);
  const Core& core(int index) const;

  /// Schedules an external input spike to arrive at `tick` (>= current
  /// tick) on (core, axon). Off-chip input may target any number of axons,
  /// which is how corelets duplicate an input stream across cores. The
  /// axon index is validated here, once per scheduled spike, so delivery
  /// itself runs assert-only.
  void scheduleInput(long tick, int coreIndex, int axon);

  /// Runs `ticks` ticks from the current time, returning recorded output.
  RunResult run(long ticks);

  /// Resets membrane potentials and pending events; configuration and the
  /// current tick counter are kept unless resetTime is true.
  void reset(bool resetTime = true);

  long currentTick() const { return now_; }

  /// Engine selection. The default comes from PCNN_TN_ENGINE at
  /// construction ("dense" selects the reference engine; anything else,
  /// including unset, the event engine).
  void setEngine(EngineKind kind) { engine_ = kind; }
  EngineKind engine() const { return engine_; }

  /// Number of chips needed to host this network.
  int chipCount() const {
    return (coreCount() + kCoresPerChip - 1) / kCoresPerChip;
  }

  /// --- fault injection ----------------------------------------------------
  /// Attaches a fault plan (replacing any active one). A plan with
  /// any() == false detaches instead, so a zero plan is bitwise-identical
  /// to a fault-free network. The plan is realized lazily at the next
  /// run() (and re-realized if cores are added later); see tn/faults.hpp
  /// for the semantics of each fault class. Networks constructed while
  /// PCNN_FAULTS is set adopt the environment's plan automatically.
  void setFaultPlan(const FaultPlan& plan);
  void clearFaultPlan() { faults_.reset(); }
  bool faultsActive() const { return faults_ != nullptr; }
  /// Active plan, or nullptr when fault-free.
  const FaultPlan* faultPlan() const {
    return faults_ ? &faults_->plan() : nullptr;
  }
  /// Fault events injected into this network so far (zeros when fault-free).
  FaultCounts faultCounts() const {
    return faults_ ? faults_->counts() : FaultCounts{};
  }
  /// Realized fault model for inspection, or nullptr.
  const FaultModel* faultModel() const { return faults_.get(); }

 private:
  struct PendingSpike {
    long tick;
    int core;
    int axon;
  };

  static constexpr long kNoOverflow = std::numeric_limits<long>::max();

  /// Engine bodies. Both set coreTicksLastRun_ (the telemetry honesty gap
  /// between the engines: dense provisions ticks * coreCount, event counts
  /// cores actually ticked).
  RunResult runDense(long ticks);
  RunResult runEvent(long ticks);
  /// Moves due overflow events into the delivery ring and recomputes
  /// overflowMin_. Callers skip the call entirely while
  /// overflowMin_ - now_ > kMaxDelayTicks, so quiet ticks never scan.
  void drainOverflow();
  /// Appends `core` to `list` unless already stamped for `tick` (the O(1)
  /// epoch-stamped dedup of the event engine's dense active set).
  void activate(long tick, int core, std::vector<int>& list) {
    auto& stamp = activeStamp_[static_cast<std::size_t>(core)];
    if (stamp != tick) {
      stamp = tick;
      list.push_back(core);
    }
  }

  std::uint64_t seed_;
  /// One RNG stream per core (seeded from seed_ and the core index), so
  /// cores can tick concurrently and stochastic thresholds stay
  /// deterministic for any thread count.
  std::vector<Rng> coreRngs_;
  std::vector<std::unique_ptr<Core>> cores_;
  /// Ring buffer of delivery queues indexed by tick % (kMaxDelayTicks + 1).
  std::vector<std::vector<PendingSpike>> queues_;
  /// External inputs scheduled further ahead than the ring can hold, with
  /// the smallest pending tick tracked so quiet ticks skip the rescan.
  std::vector<PendingSpike> overflow_;
  long overflowMin_ = kNoOverflow;
  long now_ = 0;
  /// Per-core fired-neuron scratch, reused across ticks.
  std::vector<std::vector<int>> firedScratch_;
  EngineKind engine_;
  /// Event-engine active set: cores stamped for the tick they are queued
  /// to run in (activeStamp_[c] == tick <=> c is in that tick's list).
  /// activeNext_ carries activation across ticks and across run() calls.
  std::vector<long> activeStamp_;
  std::vector<int> activeNow_;
  std::vector<int> activeNext_;
  long coreTicksLastRun_ = 0;
  /// Active fault realization; nullptr on the (default) fault-free path,
  /// which therefore costs one pointer test per run phase.
  std::unique_ptr<FaultModel> faults_;
};

}  // namespace pcnn::tn
