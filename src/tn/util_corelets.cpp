#include "tn/util_corelets.hpp"

#include <stdexcept>

namespace pcnn::tn {

std::vector<int> buildSplitter(CoreletBuilder& builder, int core, int axon,
                               int ways, int firstNeuron) {
  if (ways <= 0 || firstNeuron + ways > kNeuronsPerCore) {
    throw std::invalid_argument("buildSplitter: bad fan-out geometry");
  }
  Core& c = builder.network().core(core);
  c.setAxonType(axon, 0);
  std::vector<int> neurons;
  neurons.reserve(static_cast<std::size_t>(ways));
  for (int i = 0; i < ways; ++i) {
    const int n = firstNeuron + i;
    NeuronConfig& cfg = c.neuron(n);
    cfg.synapticWeights = {1, 0, 0, 0};
    cfg.threshold = 1;
    cfg.resetMode = ResetMode::kAbsolute;
    cfg.resetValue = 0;
    cfg.floorPotential = 0;
    c.setConnection(axon, n, true);
    neurons.push_back(n);
  }
  return neurons;
}

int buildDelayLine(CoreletBuilder& builder, int core, int inputAxon,
                   int stages, int first) {
  if (stages <= 0 || first + stages > kNeuronsPerCore) {
    throw std::invalid_argument("buildDelayLine: bad geometry");
  }
  Core& c = builder.network().core(core);
  c.setAxonType(inputAxon, 0);
  int previousAxon = inputAxon;
  int lastNeuron = -1;
  for (int s = 0; s < stages; ++s) {
    const int n = first + s;
    NeuronConfig& cfg = c.neuron(n);
    cfg.synapticWeights = {1, 0, 0, 0};
    cfg.threshold = 1;
    cfg.resetMode = ResetMode::kAbsolute;
    cfg.resetValue = 0;
    cfg.floorPotential = 0;
    c.setConnection(previousAxon, n, true);
    if (s + 1 < stages) {
      // Feed the next relay through a dedicated intra-core axon.
      const int nextAxon = first + s + 1;
      if (nextAxon == inputAxon) {
        throw std::invalid_argument(
            "buildDelayLine: axon range collides with the input axon");
      }
      c.setAxonType(nextAxon, 0);
      builder.wire(core, n, core, nextAxon, 1);
      previousAxon = nextAxon;
    }
    lastNeuron = n;
  }
  return lastNeuron;
}

int buildBurstCounter(CoreletBuilder& builder, int core, int axon, int count,
                      int neuron) {
  if (count <= 0) {
    throw std::invalid_argument("buildBurstCounter: count must be positive");
  }
  Core& c = builder.network().core(core);
  c.setAxonType(axon, 0);
  NeuronConfig& cfg = c.neuron(neuron);
  cfg.synapticWeights = {1, 0, 0, 0};
  cfg.threshold = count;
  cfg.resetMode = ResetMode::kAbsolute;
  cfg.resetValue = 0;
  cfg.floorPotential = 0;
  c.setConnection(axon, neuron, true);
  return neuron;
}

}  // namespace pcnn::tn
