#pragma once

#include <iosfwd>
#include <memory>
#include <string>

#include "common/status.hpp"
#include "tn/network.hpp"

namespace pcnn::tn {

/// "Model file" serialization of a configured network -- the analogue of
/// the corelet environment's model files, which are "runnable on both the
/// TrueNorth hardware and a validated simulator (1:1 mapping)" (Sec. 2.2).
/// Everything static is stored: axon types, crossbar connections (sparse
/// row encoding), and full neuron configurations including destinations.
/// Runtime state (potentials, pending spikes, tick) is not part of a
/// model file.
///
/// The current wire format ("PTNM" v2) is a chunked binary container over
/// the shared io::Writer/io::Reader layer (one CORE chunk per core). The
/// v1 whitespace-text format ("pcnn-tn-v1") is still read -- the loader
/// sniffs the magic -- but no longer written.

/// Status-returning save (kDataLoss on write failure).
Status trySaveModel(const Network& network, std::ostream& out);
Status trySaveModelFile(const Network& network, const std::string& path);

/// Reconstructs a network from a model file (v2 binary or v1 text,
/// dispatched on magic) with every field bounds-checked before it touches
/// a core: core / axon / neuron indices, axon types, connection counts,
/// reset modes, destinations and delays. A corrupt or truncated stream
/// yields kDataLoss (structure damaged) or kOutOfRange (a field outside
/// hardware limits) instead of an exception or a silently wild write. The
/// RNG seed controls the stochastic-threshold draws of the new instance.
StatusOr<std::unique_ptr<Network>> tryLoadModel(std::istream& in,
                                                std::uint64_t seed = 1);
StatusOr<std::unique_ptr<Network>> tryLoadModelFile(const std::string& path,
                                                    std::uint64_t seed = 1);

/// Legacy throwing wrappers over the try* variants; they throw
/// std::runtime_error carrying the status text on any failure.
void saveModel(const Network& network, std::ostream& out);
void saveModelFile(const Network& network, const std::string& path);
[[deprecated("use tryLoadModel")]] std::unique_ptr<Network> loadModel(
    std::istream& in, std::uint64_t seed = 1);
[[deprecated("use tryLoadModelFile")]] std::unique_ptr<Network> loadModelFile(
    const std::string& path, std::uint64_t seed = 1);

}  // namespace pcnn::tn
