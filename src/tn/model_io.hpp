#pragma once

#include <iosfwd>
#include <memory>
#include <string>

#include "common/status.hpp"
#include "tn/network.hpp"

namespace pcnn::tn {

/// Text "model file" serialization of a configured network -- the analogue
/// of the corelet environment's model files, which are "runnable on both
/// the TrueNorth hardware and a validated simulator (1:1 mapping)"
/// (Sec. 2.2). Everything static is stored: axon types, crossbar
/// connections (sparse row encoding), and full neuron configurations
/// including destinations. Runtime state (potentials, pending spikes,
/// tick) is not part of a model file.
void saveModel(const Network& network, std::ostream& out);

/// Reconstructs a network from a model file with every field
/// bounds-checked before it touches a core: core / axon / neuron indices,
/// axon types, connection counts, reset modes, destinations and delays.
/// A corrupt or truncated stream yields kDataLoss (structure damaged) or
/// kOutOfRange (a field outside hardware limits) instead of an exception
/// or a silently wild write. The RNG seed controls the stochastic-
/// threshold draws of the new instance.
StatusOr<std::unique_ptr<Network>> tryLoadModel(std::istream& in,
                                                std::uint64_t seed = 1);

/// Legacy wrapper over tryLoadModel; throws std::runtime_error carrying
/// the status text on any failure.
std::unique_ptr<Network> loadModel(std::istream& in,
                                   std::uint64_t seed = 1);

/// File wrappers. tryLoadModelFile reports an unopenable path as
/// kUnavailable; the legacy forms throw std::runtime_error.
StatusOr<std::unique_ptr<Network>> tryLoadModelFile(const std::string& path,
                                                    std::uint64_t seed = 1);
void saveModelFile(const Network& network, const std::string& path);
std::unique_ptr<Network> loadModelFile(const std::string& path,
                                       std::uint64_t seed = 1);

}  // namespace pcnn::tn
