#pragma once

#include <iosfwd>
#include <memory>
#include <string>

#include "tn/network.hpp"

namespace pcnn::tn {

/// Text "model file" serialization of a configured network -- the analogue
/// of the corelet environment's model files, which are "runnable on both
/// the TrueNorth hardware and a validated simulator (1:1 mapping)"
/// (Sec. 2.2). Everything static is stored: axon types, crossbar
/// connections (sparse row encoding), and full neuron configurations
/// including destinations. Runtime state (potentials, pending spikes,
/// tick) is not part of a model file.
void saveModel(const Network& network, std::ostream& out);

/// Reconstructs a network from a model file; the RNG seed controls the
/// stochastic-threshold draws of the new instance.
std::unique_ptr<Network> loadModel(std::istream& in,
                                   std::uint64_t seed = 1);

/// File wrappers; throw std::runtime_error on I/O failure.
void saveModelFile(const Network& network, const std::string& path);
std::unique_ptr<Network> loadModelFile(const std::string& path,
                                       std::uint64_t seed = 1);

}  // namespace pcnn::tn
