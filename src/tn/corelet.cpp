#include "tn/corelet.hpp"

#include <stdexcept>

namespace pcnn::tn {

void CoreletBuilder::wire(int srcCore, int srcNeuron, int dstCore,
                          int dstAxon, int delay) {
  NeuronConfig& cfg = net_.core(srcCore).neuron(srcNeuron);
  if (cfg.dest.core >= 0) {
    throw std::logic_error(
        "CoreletBuilder: neuron already wired (one destination per neuron); "
        "use a splitter core for fan-out");
  }
  if (delay < 1 || delay > kMaxDelayTicks) {
    throw std::invalid_argument("CoreletBuilder: delay must be 1..15");
  }
  net_.core(dstCore);  // range check
  cfg.dest = Destination{dstCore, dstAxon, delay};
}

int CoreletBuilder::addInput(std::string name) {
  inputs_.push_back(InputLine{std::move(name), {}});
  return static_cast<int>(inputs_.size()) - 1;
}

void CoreletBuilder::bindInput(int inputIndex, int core, int axon) {
  if (inputIndex < 0 || inputIndex >= static_cast<int>(inputs_.size())) {
    throw std::out_of_range("CoreletBuilder: bad input index");
  }
  net_.core(core);  // range check
  inputs_[inputIndex].targets.emplace_back(core, axon);
}

int CoreletBuilder::addOutput(std::string name, int core, int neuron) {
  net_.core(core).neuron(neuron).recordOutput = true;
  outputs_.push_back(OutputLine{std::move(name), core, neuron});
  return static_cast<int>(outputs_.size()) - 1;
}

void CoreletBuilder::injectSpike(int inputIndex, long tick) {
  if (inputIndex < 0 || inputIndex >= static_cast<int>(inputs_.size())) {
    throw std::out_of_range("CoreletBuilder: bad input index");
  }
  for (const auto& [core, axon] : inputs_[inputIndex].targets) {
    net_.scheduleInput(tick, core, axon);
  }
}

int CoreletBuilder::checkWeight(int weight) {
  if (weight < -256 || weight > 255) {
    throw std::invalid_argument(
        "CoreletBuilder: synaptic weight exceeds 9-bit signed range");
  }
  return weight;
}

}  // namespace pcnn::tn
