#pragma once

#include <vector>

#include "tn/corelet.hpp"

namespace pcnn::tn {

/// Utility corelets: the small building blocks the corelet language
/// composes larger designs from. Each helper programs neurons on a core
/// allocated inside the given builder's network.

/// Splitter: TrueNorth neurons have fan-out 1, so duplicating a spike
/// stream requires a relay core -- one input axon driving `ways` identical
/// threshold-1 neurons, each with its own destination. Returns the neuron
/// indices allocated (callers wire their destinations). `axon` is the
/// splitter's input line on `core`.
std::vector<int> buildSplitter(CoreletBuilder& builder, int core, int axon,
                               int ways, int firstNeuron = 0);

/// Delay line: a chain of `stages` threshold-1 relay neurons on one core,
/// each feeding the next through an axon, adding `stages` ticks of latency
/// beyond routing (used to align pipeline phases). Returns the index of
/// the final neuron; its destination is left unset for the caller. Uses
/// axons/neurons [first, first + stages).
int buildDelayLine(CoreletBuilder& builder, int core, int inputAxon,
                   int stages, int first = 0);

/// Burst counter: a threshold-`count` neuron that fires once after
/// receiving `count` spikes on `axon` (an AND-over-time / token counter).
/// Returns the neuron index; destination left to the caller.
int buildBurstCounter(CoreletBuilder& builder, int core, int axon, int count,
                      int neuron = 0);

}  // namespace pcnn::tn
