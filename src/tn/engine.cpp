#include "tn/engine.hpp"

#include <optional>
#include <string>

#include "common/env.hpp"

namespace pcnn::tn {

EngineKind engineFromEnv() {
  static const EngineKind kind = [] {
    const std::optional<std::string> value =
        env::loweredToken("PCNN_TN_ENGINE");
    if (!value || *value == "event") return EngineKind::kEvent;
    if (*value == "dense") return EngineKind::kDense;
    env::warnMalformed("PCNN_TN_ENGINE", *value, "event or dense");
    return EngineKind::kEvent;
  }();
  return kind;
}

const char* engineName(EngineKind kind) {
  return kind == EngineKind::kDense ? "dense" : "event";
}

}  // namespace pcnn::tn
