#include "tn/engine.hpp"

#include <cctype>
#include <cstdlib>
#include <string>

namespace pcnn::tn {

EngineKind engineFromEnv() {
  static const EngineKind kind = [] {
    const char* env = std::getenv("PCNN_TN_ENGINE");
    if (env == nullptr) return EngineKind::kEvent;
    std::string value(env);
    for (char& c : value) {
      c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    }
    return value == "dense" ? EngineKind::kDense : EngineKind::kEvent;
  }();
  return kind;
}

const char* engineName(EngineKind kind) {
  return kind == EngineKind::kDense ? "dense" : "event";
}

}  // namespace pcnn::tn
