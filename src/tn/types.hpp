#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace pcnn::tn {

/// Architectural constants of the IBM TrueNorth neurosynaptic chip
/// (Akopyan et al. 2015, Merolla et al. 2014): 256 axons x 256 neurons per
/// core, 4 axon types, 4096 cores per chip, ~66 mW for a full chip at
/// 0.8 V (~16 uW per core).
constexpr int kAxonsPerCore = 256;
constexpr int kNeuronsPerCore = 256;
constexpr int kAxonTypes = 4;
constexpr int kCoresPerChip = 4096;
constexpr int kMaxDelayTicks = 15;  ///< routed spike delay range is 1..15
constexpr double kChipPowerWatts = 66e-3;
constexpr double kCorePowerWatts = kChipPowerWatts / kCoresPerChip;

/// Membrane-potential reset behaviour after a neuron fires.
enum class ResetMode {
  kAbsolute,  ///< V <- resetValue
  kLinear,    ///< V <- V - threshold (spike counts are conserved)
  kNone,      ///< V unchanged (free-running)
};

/// Where a neuron's output spike is routed. Exactly one destination per
/// neuron, as on the real chip (fan-out is achieved with splitter cores or
/// within the destination core's crossbar column). A negative core index
/// means the spike leaves the network (external output).
struct Destination {
  int core = -1;
  int axon = -1;
  int delay = 1;  ///< ticks of routing latency, 1..kMaxDelayTicks
};

/// Static configuration of one neuron.
struct NeuronConfig {
  /// Synaptic weight lookup table indexed by the axon type of the incoming
  /// spike (signed 9-bit on the real chip; int here, range-checked by the
  /// corelet builder).
  std::array<int, kAxonTypes> synapticWeights{0, 0, 0, 0};
  int leak = 0;        ///< added to V every tick
  int threshold = 1;   ///< alpha; fire when V >= alpha (+ stochastic draw)
  int resetValue = 0;  ///< target of ResetMode::kAbsolute
  ResetMode resetMode = ResetMode::kAbsolute;
  /// Floor clamp applied to V after integration; a deep floor emulates
  /// saturation, a floor equal to resetValue gives non-negative dynamics.
  int floorPotential = std::numeric_limits<int>::min() / 4;
  /// When true, a uniformly random value in [0, stochasticMask] is added to
  /// the threshold each tick (TrueNorth stochastic mode).
  bool stochasticThreshold = false;
  int stochasticMask = 0;
  Destination dest;
  bool recordOutput = false;  ///< capture this neuron's spikes in RunResult
};

/// A recorded output spike.
struct OutputSpike {
  long tick = 0;
  int core = 0;
  int neuron = 0;
};

}  // namespace pcnn::tn
