#include "tn/core.hpp"

#include <stdexcept>

namespace pcnn::tn {

Core::Core() { pendingAxons_.reserve(kAxonsPerCore); }

int Core::checkAxon(int axon) {
  if (axon < 0 || axon >= kAxonsPerCore) {
    throw std::out_of_range("Core: axon index out of range");
  }
  return axon;
}

int Core::checkNeuron(int neuron) {
  if (neuron < 0 || neuron >= kNeuronsPerCore) {
    throw std::out_of_range("Core: neuron index out of range");
  }
  return neuron;
}

void Core::setAxonType(int axon, int type) {
  if (type < 0 || type >= kAxonTypes) {
    throw std::invalid_argument("Core: axon type must be 0..3");
  }
  axonTypes_[checkAxon(axon)] = static_cast<std::uint8_t>(type);
}

void Core::setConnection(int axon, int neuron, bool connected) {
  conn_[checkAxon(axon)][checkNeuron(neuron)] = connected;
}

bool Core::connection(int axon, int neuron) const {
  return conn_[checkAxon(axon)][checkNeuron(neuron)];
}

NeuronConfig& Core::neuron(int index) {
  quiescent_ = false;  // caller may mutate the configuration
  return neurons_[checkNeuron(index)];
}

const NeuronConfig& Core::neuron(int index) const {
  return neurons_[checkNeuron(index)];
}

void Core::deliverSpike(int axon) {
  checkAxon(axon);
  quiescent_ = false;
  if (!pendingMask_[axon]) {
    pendingMask_[axon] = true;
    pendingAxons_.push_back(axon);
  }
}

int Core::potential(int neuron) const { return potentials_[checkNeuron(neuron)]; }

void Core::setPotential(int neuron, int value) {
  quiescent_ = false;
  potentials_[checkNeuron(neuron)] = value;
}

long Core::synapseCount() const {
  long count = 0;
  for (const auto& row : conn_) count += static_cast<long>(row.count());
  return count;
}

void Core::tick(Rng& rng, std::vector<int>& fired) {
  if (quiescent_ && pendingAxons_.empty()) return;
  const bool integrated = !pendingAxons_.empty();

  // 1. Synaptic integration: for every spiking axon, add the LUT weight to
  //    each connected neuron.
  for (int axon : pendingAxons_) {
    const int type = axonTypes_[axon];
    const auto& row = conn_[axon];
    if (row.none()) continue;
    for (int n = 0; n < kNeuronsPerCore; ++n) {
      if (row[n]) potentials_[n] += neurons_[n].synapticWeights[type];
    }
  }
  pendingAxons_.clear();
  pendingMask_.reset();

  // 2. Leak, floor clamp, threshold, fire, reset.
  bool anyDynamics = false;  // leak or stochastic threshold present
  bool anyFired = false;
  for (int n = 0; n < kNeuronsPerCore; ++n) {
    NeuronConfig& cfg = neurons_[n];
    if (cfg.leak != 0 || cfg.stochasticThreshold) anyDynamics = true;
    int& v = potentials_[n];
    v += cfg.leak;
    if (v < cfg.floorPotential) v = cfg.floorPotential;

    int effectiveThreshold = cfg.threshold;
    if (cfg.stochasticThreshold && cfg.stochasticMask > 0) {
      effectiveThreshold += rng.uniformInt(0, cfg.stochasticMask);
    }
    if (v >= effectiveThreshold) {
      fired.push_back(n);
      anyFired = true;
      ++firedCount_;
      switch (cfg.resetMode) {
        case ResetMode::kAbsolute:
          v = cfg.resetValue;
          break;
        case ResetMode::kLinear:
          v -= cfg.threshold;
          break;
        case ResetMode::kNone:
          break;
      }
    }
  }
  quiescent_ = !integrated && !anyDynamics && !anyFired;
}

}  // namespace pcnn::tn
