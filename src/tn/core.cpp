#include "tn/core.hpp"

#include <bit>
#include <stdexcept>

#include "common/target_clones.hpp"

namespace pcnn::tn {
namespace {

/// Leak + floor clamp + threshold compare over all 256 neurons, emitting
/// one fire-candidate bit per neuron. Pure contiguous int32 lanes, so both
/// clones auto-vectorize; the scalar select order matches Core::tick
/// exactly (leak add, then clamp, then compare).
PCNN_TARGET_CLONES
void leakClampThreshold(const std::int32_t* leak, const std::int32_t* floor,
                        const std::int32_t* threshold, int* pot,
                        std::uint64_t* fireMask) {
  for (int word = 0; word < kConnWords; ++word) {
    std::uint64_t mask = 0;
    const int base = word * 64;
    for (int bit = 0; bit < 64; ++bit) {
      const int n = base + bit;
      int v = pot[n] + leak[n];
      v = v < floor[n] ? floor[n] : v;
      pot[n] = v;
      mask |= static_cast<std::uint64_t>(v >= threshold[n]) << bit;
    }
    fireMask[word] = mask;
  }
}

}  // namespace

Core::Core() { pendingAxons_.reserve(kAxonsPerCore); }

int Core::checkAxon(int axon) {
  if (axon < 0 || axon >= kAxonsPerCore) {
    throw std::out_of_range("Core: axon index out of range");
  }
  return axon;
}

int Core::checkNeuron(int neuron) {
  if (neuron < 0 || neuron >= kNeuronsPerCore) {
    throw std::out_of_range("Core: neuron index out of range");
  }
  return neuron;
}

void Core::setAxonType(int axon, int type) {
  if (type < 0 || type >= kAxonTypes) {
    throw std::invalid_argument("Core: axon type must be 0..3");
  }
  axonTypes_[checkAxon(axon)] = static_cast<std::uint8_t>(type);
  soaDirty_ = true;
}

void Core::setConnection(int axon, int neuron, bool connected) {
  conn_[checkAxon(axon)][checkNeuron(neuron)] = connected;
  soaDirty_ = true;
}

bool Core::connection(int axon, int neuron) const {
  return conn_[checkAxon(axon)][checkNeuron(neuron)];
}

NeuronConfig& Core::neuron(int index) {
  quiescent_ = false;  // caller may mutate the configuration
  soaDirty_ = true;
  return neurons_[checkNeuron(index)];
}

const NeuronConfig& Core::neuron(int index) const {
  return neurons_[checkNeuron(index)];
}

int Core::potential(int neuron) const { return potentials_[checkNeuron(neuron)]; }

void Core::setPotential(int neuron, int value) {
  quiescent_ = false;
  potentials_[checkNeuron(neuron)] = value;
}

long Core::synapseCount() const {
  long count = 0;
  for (const auto& row : conn_) count += static_cast<long>(row.count());
  return count;
}

void Core::compileSoA() {
  if (!soa_) soa_ = std::make_unique<CoreSoA>();
  CoreSoA& soa = *soa_;
  soa.axonTypes = axonTypes_;
  for (int axon = 0; axon < kAxonsPerCore; ++axon) {
    const auto& row = conn_[axon];
    for (int word = 0; word < kConnWords; ++word) {
      std::uint64_t bits = 0;
      const int base = word * 64;
      for (int bit = 0; bit < 64; ++bit) {
        bits |= static_cast<std::uint64_t>(row[static_cast<std::size_t>(
                    base + bit)])
                << bit;
      }
      soa.connRows[axon][word] = bits;
    }
  }
  soa.hasDynamics = false;
  soa.hasStochastic = false;
  for (int n = 0; n < kNeuronsPerCore; ++n) {
    const NeuronConfig& cfg = neurons_[n];
    for (int type = 0; type < kAxonTypes; ++type) {
      soa.weights[type][n] = cfg.synapticWeights[static_cast<std::size_t>(type)];
    }
    soa.leak[n] = cfg.leak;
    soa.threshold[n] = cfg.threshold;
    soa.floorPotential[n] = cfg.floorPotential;
    soa.resetValue[n] = cfg.resetValue;
    soa.stochasticMask[n] = cfg.stochasticMask;
    soa.resetMode[n] = static_cast<std::uint8_t>(cfg.resetMode);
    soa.stochastic[n] = cfg.stochasticThreshold ? 1 : 0;
    if (cfg.leak != 0 || cfg.stochasticThreshold) soa.hasDynamics = true;
    if (cfg.stochasticThreshold) soa.hasStochastic = true;
    // Routed destinations are validated here, once per configuration
    // change, so the event tick loop needs no range checks at all.
    if (cfg.dest.core >= 0) {
      if (cfg.dest.axon < 0 || cfg.dest.axon >= kAxonsPerCore) {
        throw std::out_of_range("Core: axon index out of range");
      }
      if (cfg.dest.delay < 1 || cfg.dest.delay > kMaxDelayTicks) {
        throw std::logic_error("Network: destination delay out of range");
      }
    }
  }
}

const CoreSoA& Core::compiled() {
  if (soaDirty_) {
    compileSoA();
    soaDirty_ = false;
  }
  return *soa_;
}

void Core::tick(Rng& rng, std::vector<int>& fired) {
  if (quiescent_ && pendingAxons_.empty()) return;
  const bool integrated = !pendingAxons_.empty();

  // 1. Synaptic integration: for every spiking axon, add the LUT weight to
  //    each connected neuron.
  for (int axon : pendingAxons_) {
    const int type = axonTypes_[axon];
    const auto& row = conn_[axon];
    if (row.none()) continue;
    for (int n = 0; n < kNeuronsPerCore; ++n) {
      if (row[n]) potentials_[n] += neurons_[n].synapticWeights[type];
    }
  }
  pendingAxons_.clear();
  pendingMask_.reset();

  // 2. Leak, floor clamp, threshold, fire, reset.
  bool anyDynamics = false;  // leak or stochastic threshold present
  bool anyFired = false;
  for (int n = 0; n < kNeuronsPerCore; ++n) {
    NeuronConfig& cfg = neurons_[n];
    if (cfg.leak != 0 || cfg.stochasticThreshold) anyDynamics = true;
    int& v = potentials_[n];
    v += cfg.leak;
    if (v < cfg.floorPotential) v = cfg.floorPotential;

    int effectiveThreshold = cfg.threshold;
    if (cfg.stochasticThreshold && cfg.stochasticMask > 0) {
      effectiveThreshold += rng.uniformInt(0, cfg.stochasticMask);
    }
    if (v >= effectiveThreshold) {
      fired.push_back(n);
      anyFired = true;
      ++firedCount_;
      switch (cfg.resetMode) {
        case ResetMode::kAbsolute:
          v = cfg.resetValue;
          break;
        case ResetMode::kLinear:
          v -= cfg.threshold;
          break;
        case ResetMode::kNone:
          break;
      }
    }
  }
  quiescent_ = !integrated && !anyDynamics && !anyFired;
}

void Core::tickSoA(Rng& rng, std::vector<int>& fired) {
  if (quiescent_ && pendingAxons_.empty()) return;
  assert(!soaDirty_ && soa_ != nullptr);
  const CoreSoA& soa = *soa_;
  const bool integrated = !pendingAxons_.empty();

  // 1. Integration through the weight planes: one contiguous plane per
  //    spiking axon, touching only connected neurons via the row mask.
  for (int axon : pendingAxons_) {
    const std::int32_t* plane = soa.weights[soa.axonTypes[axon]].data();
    const auto& row = soa.connRows[axon];
    for (int word = 0; word < kConnWords; ++word) {
      std::uint64_t bits = row[word];
      const int base = word * 64;
      while (bits != 0) {
        const int n = base + std::countr_zero(bits);
        bits &= bits - 1;
        potentials_[n] += plane[n];
      }
    }
  }
  pendingAxons_.clear();
  pendingMask_.reset();

  bool anyFired = false;
  if (!soa.hasStochastic) {
    // 2a. Deterministic thresholds: leak/clamp/compare all 256 neurons in
    //     vector lanes, then walk only the fire-candidate bits. The reset
    //     bookkeeping per fired neuron is identical to the scalar path.
    std::uint64_t fireMask[kConnWords];
    leakClampThreshold(soa.leak.data(), soa.floorPotential.data(),
                       soa.threshold.data(), potentials_.data(), fireMask);
    for (int word = 0; word < kConnWords; ++word) {
      std::uint64_t bits = fireMask[word];
      const int base = word * 64;
      while (bits != 0) {
        const int n = base + std::countr_zero(bits);
        bits &= bits - 1;
        fired.push_back(n);
        anyFired = true;
        ++firedCount_;
        switch (static_cast<ResetMode>(soa.resetMode[n])) {
          case ResetMode::kAbsolute:
            potentials_[n] = soa.resetValue[n];
            break;
          case ResetMode::kLinear:
            potentials_[n] -= soa.threshold[n];
            break;
          case ResetMode::kNone:
            break;
        }
      }
    }
  } else {
    // 2b. Stochastic thresholds present: the RNG draw order is part of the
    //     result, so run the scalar neuron loop (in index order, one draw
    //     per stochastic neuron) exactly as the dense reference does.
    for (int n = 0; n < kNeuronsPerCore; ++n) {
      int& v = potentials_[n];
      v += soa.leak[n];
      if (v < soa.floorPotential[n]) v = soa.floorPotential[n];

      int effectiveThreshold = soa.threshold[n];
      if (soa.stochastic[n] != 0 && soa.stochasticMask[n] > 0) {
        effectiveThreshold += rng.uniformInt(0, soa.stochasticMask[n]);
      }
      if (v >= effectiveThreshold) {
        fired.push_back(n);
        anyFired = true;
        ++firedCount_;
        switch (static_cast<ResetMode>(soa.resetMode[n])) {
          case ResetMode::kAbsolute:
            v = soa.resetValue[n];
            break;
          case ResetMode::kLinear:
            v -= soa.threshold[n];
            break;
          case ResetMode::kNone:
            break;
        }
      }
    }
  }
  quiescent_ = !integrated && !soa.hasDynamics && !anyFired;
}

}  // namespace pcnn::tn
