#pragma once

namespace pcnn::tn {

/// Which tick-loop implementation a Network uses.
///
/// Both engines implement the same synchronous chip semantics and produce
/// bitwise-identical RunResults (gated by tests/tn_engine_test.cpp):
///  - kDense: the reference loop -- every core ticks every tick. Simple,
///    obviously correct, O(cores * ticks).
///  - kEvent: the event-driven loop -- per tick only cores with pending
///    axon deliveries, nonzero dynamics (leak / stochastic threshold),
///    a firing in the previous tick, or stuck-on fault neurons do any
///    work, tracked via an epoch-stamped dense active set. Cores tick
///    through a compiled SoA image of their crossbar (see tn/core.hpp).
enum class EngineKind {
  kEvent,
  kDense,
};

/// Engine selected by the PCNN_TN_ENGINE environment variable: "dense"
/// (any case) selects the reference engine, anything else -- including
/// unset -- the event engine. Read once per process, mirroring the
/// PCNN_SIMD=off precedent.
EngineKind engineFromEnv();

/// Stable lowercase name ("event" / "dense") for provenance tagging.
const char* engineName(EngineKind kind);

}  // namespace pcnn::tn
