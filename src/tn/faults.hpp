#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/status.hpp"

namespace pcnn::obs {
class Counter;
}  // namespace pcnn::obs

namespace pcnn::tn {

class Network;

/// Declarative description of the hardware faults to inject into a
/// tn::Network. Real TrueNorth deployments must tolerate dead cores,
/// dropped spike deliveries, stuck neurons, and flipped synaptic-weight
/// bits; this plan makes each of those injectable deterministically (the
/// whole realization -- which cores die, which neurons stick, which bits
/// flip, and the per-delivery drop stream -- is a pure function of `seed`
/// and the network's core count), so degradation experiments are exactly
/// reproducible.
///
/// Where each fault class intercepts the tick loop (see DESIGN.md 5d):
///  - dead cores: spike deliveries targeting the core are discarded and
///    the core never ticks, so none of its neurons ever fire;
///  - spike drop: every delivery (external inputs and routed neuron
///    outputs alike) is independently discarded with spikeDropProb,
///    modelling flaky inter-core links;
///  - stuck-at-on neurons: emit a spike every tick regardless of their
///    membrane state (routed and recorded like a real firing);
///  - stuck-at-off neurons: their genuine firings are suppressed before
///    routing;
///  - weight bit-flips: applied once when the plan is materialized -- each
///    synaptic LUT entry independently gets one random bit of its 9-bit
///    two's-complement encoding flipped with weightFlipProb.
struct FaultPlan {
  double spikeDropProb = 0.0;   ///< per-delivery drop probability, [0, 1]
  int deadCores = 0;            ///< cores disabled outright
  int stuckOnNeurons = 0;       ///< neurons (on live cores) firing every tick
  int stuckOffNeurons = 0;      ///< neurons (on live cores) never firing
  double weightFlipProb = 0.0;  ///< per-LUT-entry single-bit-flip probability
  std::uint64_t seed = 1;       ///< seeds selection and the drop stream

  /// True when the plan injects anything at all. A plan with any() == false
  /// is never attached, so a zero plan is bitwise-identical to no plan.
  bool any() const {
    return spikeDropProb > 0.0 || deadCores > 0 || stuckOnNeurons > 0 ||
           stuckOffNeurons > 0 || weightFlipProb > 0.0;
  }

  /// Canonical "drop=0.01,dead_cores=3,seed=7" form (round-trips through
  /// parseFaultPlan).
  std::string toString() const;
};

/// Parses the PCNN_FAULTS mini-language: comma-separated key=value pairs
/// with keys drop, dead_cores, stuck_on, stuck_off, weight_flip, seed.
/// Example: "drop=0.01,dead_cores=3,seed=7". Unknown keys, bad numbers,
/// and out-of-range probabilities are typed errors naming the offending
/// token.
StatusOr<FaultPlan> parseFaultPlan(const std::string& spec);

/// The plan configured via the PCNN_FAULTS environment variable, parsed
/// once per process. nullopt when the variable is unset or empty. An
/// invalid value is reported to stderr once and then ignored (a broken
/// fault spec must not silently pass as "no faults" without a trace, but
/// it also must not take the process down).
const std::optional<FaultPlan>& envFaultPlan();

/// Monotonic tallies of injected fault events. Kept process-wide and
/// always counted (independent of the obs metrics gate, which is usually
/// off) so DegradationReport can attribute observed quality loss to fault
/// activity in any run. The same events also feed the gated obs counters
/// tn.faults.* for metrics snapshots.
struct FaultCounts {
  long droppedSpikes = 0;       ///< deliveries lost to spikeDropProb
  long deadCoreDrops = 0;       ///< deliveries targeting a dead core
  long stuckOnSpikes = 0;       ///< spikes invented by stuck-at-on neurons
  long stuckOffSuppressed = 0;  ///< genuine firings eaten by stuck-at-off
  long weightFlips = 0;         ///< LUT entries corrupted at materialize

  /// Saturating sum: long-lived serving processes merge per-frame
  /// DegradationReports indefinitely, so fields (and their sum) clamp at
  /// the type maximum instead of wrapping into signed-overflow UB.
  long total() const {
    long sum = 0;
    for (long field : {droppedSpikes, deadCoreDrops, stuckOnSpikes,
                       stuckOffSuppressed, weightFlips}) {
      if (field > 0 && sum > std::numeric_limits<long>::max() - field) {
        return std::numeric_limits<long>::max();
      }
      sum += field;
    }
    return sum;
  }
  FaultCounts operator-(const FaultCounts& other) const {
    return {droppedSpikes - other.droppedSpikes,
            deadCoreDrops - other.deadCoreDrops,
            stuckOnSpikes - other.stuckOnSpikes,
            stuckOffSuppressed - other.stuckOffSuppressed,
            weightFlips - other.weightFlips};
  }
};

/// Current process-wide totals (sum over every FaultModel ever attached).
FaultCounts globalFaultCounts();

/// Runtime realization of a FaultPlan against one Network. Owned by the
/// Network (see Network::setFaultPlan); exposed so tests and reports can
/// inspect the concrete fault set.
///
/// Determinism: dead-core and stuck-neuron selection and the weight-flip
/// pattern depend only on (plan.seed, coreCount); the drop stream is
/// consumed exclusively from the Network's sequential phases (delivery and
/// routing), so RunResults are bitwise-identical for any thread count.
class FaultModel {
 public:
  explicit FaultModel(const FaultPlan& plan);

  const FaultPlan& plan() const { return plan_; }

  /// (Re)selects dead cores and stuck neurons for the network's current
  /// core count and applies weight bit-flips to cores not yet flipped.
  /// Called lazily by Network::run() whenever the core count changed since
  /// the last materialization.
  void materialize(Network& network);
  bool materializedFor(int coreCount) const {
    return materializedCores_ == coreCount;
  }

  bool coreDead(int core) const {
    return static_cast<std::size_t>(core) < deadCore_.size() &&
           deadCore_[static_cast<std::size_t>(core)] != 0;
  }
  /// Records a delivery discarded because its target core is dead.
  void countDeadCoreDrop();
  /// Consumes the drop stream: true when this delivery is lost. Must only
  /// be called from sequential network phases.
  bool dropDelivery();
  /// True when the core carries stuck-at neurons (cheap pre-check).
  bool hasStuckNeurons(int core) const {
    return static_cast<std::size_t>(core) < stuckAny_.size() &&
           stuckAny_[static_cast<std::size_t>(core)] != 0;
  }
  /// Rewrites a core's fired list in place: suppresses stuck-at-off
  /// neurons and injects stuck-at-on neurons (keeping ascending neuron
  /// order, so downstream routing order is deterministic).
  void applyStuckNeurons(int core, std::vector<int>& fired);

  /// Fault events injected through this model so far.
  const FaultCounts& counts() const { return counts_; }

  /// Concrete fault set (valid after materialize).
  std::vector<int> deadCoreIndices() const;
  const std::vector<std::vector<int>>& stuckOnByCore() const {
    return stuckOn_;
  }
  const std::vector<std::vector<int>>& stuckOffByCore() const {
    return stuckOff_;
  }

 private:
  void applyWeightFlips(Network& network, int firstCore, int endCore);

  FaultPlan plan_;
  Rng dropRng_;
  int materializedCores_ = -1;
  int flippedCores_ = 0;  ///< cores whose weights were already corrupted
  std::vector<char> deadCore_;
  std::vector<char> stuckAny_;
  std::vector<std::vector<int>> stuckOn_;   ///< per core, ascending
  std::vector<std::vector<int>> stuckOff_;  ///< per core, ascending
  FaultCounts counts_;
  std::vector<int> scratch_;  ///< merge buffer for applyStuckNeurons
  /// Gated obs counters, resolved once (tn.faults.*).
  obs::Counter* obsDropped_;
  obs::Counter* obsDeadDrops_;
  obs::Counter* obsStuckOn_;
  obs::Counter* obsStuckOff_;
  obs::Counter* obsFlips_;
};

}  // namespace pcnn::tn
