#pragma once

#include <vector>

#include "common/rng.hpp"

namespace pcnn::tn {

/// Rate coding used by the NApprox corelet: a value v in [0, 1] becomes
/// round(v * window) spikes spread evenly (Bresenham-style) over `window`
/// ticks. With window = 64 this is the paper's "64-spike representation
/// (6-bit fixed-point resolution)".
std::vector<long> rateCodeTicks(float value, int window);

/// Number of spikes rate coding emits for `value` over `window` ticks.
int rateCodeCount(float value, int window);

/// Stochastic coding used by the Parrot HoG: at each of `window` ticks a
/// spike fires with probability v (Bernoulli). "The representation of the
/// signals can be as simple as 1-spike with the probability proportional to
/// the value" -- window = 1 gives that 1-spike code.
std::vector<long> stochasticCodeTicks(float value, int window, Rng& rng);

/// Decodes a spike count over a window back to [0, 1].
inline float decodeRate(int spikes, int window) {
  return window > 0 ? static_cast<float>(spikes) / static_cast<float>(window)
                    : 0.0f;
}

}  // namespace pcnn::tn
