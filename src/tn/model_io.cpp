#include "tn/model_io.hpp"

#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace pcnn::tn {
namespace {

int resetModeToInt(ResetMode mode) {
  switch (mode) {
    case ResetMode::kAbsolute:
      return 0;
    case ResetMode::kLinear:
      return 1;
    case ResetMode::kNone:
      return 2;
  }
  return 0;
}

ResetMode intToResetMode(int value) {
  switch (value) {
    case 0:
      return ResetMode::kAbsolute;
    case 1:
      return ResetMode::kLinear;
    case 2:
      return ResetMode::kNone;
    default:
      throw std::runtime_error("loadModel: bad reset mode");
  }
}

/// A neuron is worth storing when any field differs from the default.
bool isDefault(const NeuronConfig& cfg) {
  const NeuronConfig def;
  return cfg.synapticWeights == def.synapticWeights &&
         cfg.leak == def.leak && cfg.threshold == def.threshold &&
         cfg.resetValue == def.resetValue &&
         cfg.resetMode == def.resetMode &&
         cfg.floorPotential == def.floorPotential &&
         cfg.stochasticThreshold == def.stochasticThreshold &&
         cfg.stochasticMask == def.stochasticMask &&
         cfg.dest.core == def.dest.core && cfg.dest.axon == def.dest.axon &&
         cfg.dest.delay == def.dest.delay &&
         cfg.recordOutput == def.recordOutput;
}

}  // namespace

void saveModel(const Network& network, std::ostream& out) {
  out << "pcnn-tn-v1 " << network.coreCount() << '\n';
  for (int c = 0; c < network.coreCount(); ++c) {
    const Core& core = network.core(c);
    out << "core " << c << '\n';

    out << "axontypes";
    for (int a = 0; a < kAxonsPerCore; ++a) out << ' ' << core.axonType(a);
    out << '\n';

    // Sparse crossbar rows: "conn <axon> <n connections> <neurons...>".
    for (int a = 0; a < kAxonsPerCore; ++a) {
      int count = 0;
      for (int n = 0; n < kNeuronsPerCore; ++n) {
        if (core.connection(a, n)) ++count;
      }
      if (count == 0) continue;
      out << "conn " << a << ' ' << count;
      for (int n = 0; n < kNeuronsPerCore; ++n) {
        if (core.connection(a, n)) out << ' ' << n;
      }
      out << '\n';
    }

    for (int n = 0; n < kNeuronsPerCore; ++n) {
      const NeuronConfig& cfg = core.neuron(n);
      if (isDefault(cfg)) continue;
      out << "neuron " << n;
      for (int w : cfg.synapticWeights) out << ' ' << w;
      out << ' ' << cfg.leak << ' ' << cfg.threshold << ' '
          << cfg.resetValue << ' ' << resetModeToInt(cfg.resetMode) << ' '
          << cfg.floorPotential << ' '
          << (cfg.stochasticThreshold ? 1 : 0) << ' ' << cfg.stochasticMask
          << ' ' << cfg.dest.core << ' ' << cfg.dest.axon << ' '
          << cfg.dest.delay << ' ' << (cfg.recordOutput ? 1 : 0) << '\n';
    }
    out << "endcore\n";
  }
  if (!out) throw std::runtime_error("saveModel: write failure");
}

std::unique_ptr<Network> loadModel(std::istream& in, std::uint64_t seed) {
  std::string magic;
  int coreCount = 0;
  if (!(in >> magic >> coreCount) || magic != "pcnn-tn-v1" ||
      coreCount < 0) {
    throw std::runtime_error("loadModel: bad header");
  }
  auto network = std::make_unique<Network>(seed);
  for (int c = 0; c < coreCount; ++c) network->addCore();

  std::string tag;
  int currentCore = -1;
  while (in >> tag) {
    if (tag == "core") {
      if (!(in >> currentCore) || currentCore < 0 ||
          currentCore >= coreCount) {
        throw std::runtime_error("loadModel: bad core index");
      }
    } else if (tag == "axontypes") {
      if (currentCore < 0) throw std::runtime_error("loadModel: stray tag");
      Core& core = network->core(currentCore);
      for (int a = 0; a < kAxonsPerCore; ++a) {
        int type = 0;
        if (!(in >> type)) throw std::runtime_error("loadModel: truncated");
        core.setAxonType(a, type);
      }
    } else if (tag == "conn") {
      if (currentCore < 0) throw std::runtime_error("loadModel: stray tag");
      Core& core = network->core(currentCore);
      int axon = 0, count = 0;
      if (!(in >> axon >> count)) {
        throw std::runtime_error("loadModel: bad conn row");
      }
      for (int i = 0; i < count; ++i) {
        int neuron = 0;
        if (!(in >> neuron)) throw std::runtime_error("loadModel: truncated");
        core.setConnection(axon, neuron, true);
      }
    } else if (tag == "neuron") {
      if (currentCore < 0) throw std::runtime_error("loadModel: stray tag");
      Core& core = network->core(currentCore);
      int index = 0;
      if (!(in >> index)) throw std::runtime_error("loadModel: bad neuron");
      NeuronConfig cfg;
      int resetMode = 0, stochastic = 0, record = 0;
      if (!(in >> cfg.synapticWeights[0] >> cfg.synapticWeights[1] >>
            cfg.synapticWeights[2] >> cfg.synapticWeights[3] >> cfg.leak >>
            cfg.threshold >> cfg.resetValue >> resetMode >>
            cfg.floorPotential >> stochastic >> cfg.stochasticMask >>
            cfg.dest.core >> cfg.dest.axon >> cfg.dest.delay >> record)) {
        throw std::runtime_error("loadModel: truncated neuron");
      }
      cfg.resetMode = intToResetMode(resetMode);
      cfg.stochasticThreshold = stochastic != 0;
      cfg.recordOutput = record != 0;
      core.neuron(index) = cfg;
    } else if (tag == "endcore") {
      currentCore = -1;
    } else {
      throw std::runtime_error("loadModel: unknown tag " + tag);
    }
  }
  return network;
}

void saveModelFile(const Network& network, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("saveModelFile: cannot open " + path);
  saveModel(network, out);
}

std::unique_ptr<Network> loadModelFile(const std::string& path,
                                       std::uint64_t seed) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("loadModelFile: cannot open " + path);
  return loadModel(in, seed);
}

}  // namespace pcnn::tn
