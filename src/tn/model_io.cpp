#include "tn/model_io.hpp"

#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace pcnn::tn {
namespace {

int resetModeToInt(ResetMode mode) {
  switch (mode) {
    case ResetMode::kAbsolute:
      return 0;
    case ResetMode::kLinear:
      return 1;
    case ResetMode::kNone:
      return 2;
  }
  return 0;
}

/// Model files bigger than this many cores are rejected up front -- a
/// corrupt header would otherwise commit us to allocating an arbitrary
/// number of 256x256 crossbars before the first real parse error.
constexpr int kMaxModelCores = 1 << 20;

/// A neuron is worth storing when any field differs from the default.
bool isDefault(const NeuronConfig& cfg) {
  const NeuronConfig def;
  return cfg.synapticWeights == def.synapticWeights &&
         cfg.leak == def.leak && cfg.threshold == def.threshold &&
         cfg.resetValue == def.resetValue &&
         cfg.resetMode == def.resetMode &&
         cfg.floorPotential == def.floorPotential &&
         cfg.stochasticThreshold == def.stochasticThreshold &&
         cfg.stochasticMask == def.stochasticMask &&
         cfg.dest.core == def.dest.core && cfg.dest.axon == def.dest.axon &&
         cfg.dest.delay == def.dest.delay &&
         cfg.recordOutput == def.recordOutput;
}

}  // namespace

void saveModel(const Network& network, std::ostream& out) {
  out << "pcnn-tn-v1 " << network.coreCount() << '\n';
  for (int c = 0; c < network.coreCount(); ++c) {
    const Core& core = network.core(c);
    out << "core " << c << '\n';

    out << "axontypes";
    for (int a = 0; a < kAxonsPerCore; ++a) out << ' ' << core.axonType(a);
    out << '\n';

    // Sparse crossbar rows: "conn <axon> <n connections> <neurons...>".
    for (int a = 0; a < kAxonsPerCore; ++a) {
      int count = 0;
      for (int n = 0; n < kNeuronsPerCore; ++n) {
        if (core.connection(a, n)) ++count;
      }
      if (count == 0) continue;
      out << "conn " << a << ' ' << count;
      for (int n = 0; n < kNeuronsPerCore; ++n) {
        if (core.connection(a, n)) out << ' ' << n;
      }
      out << '\n';
    }

    for (int n = 0; n < kNeuronsPerCore; ++n) {
      const NeuronConfig& cfg = core.neuron(n);
      if (isDefault(cfg)) continue;
      out << "neuron " << n;
      for (int w : cfg.synapticWeights) out << ' ' << w;
      out << ' ' << cfg.leak << ' ' << cfg.threshold << ' '
          << cfg.resetValue << ' ' << resetModeToInt(cfg.resetMode) << ' '
          << cfg.floorPotential << ' '
          << (cfg.stochasticThreshold ? 1 : 0) << ' ' << cfg.stochasticMask
          << ' ' << cfg.dest.core << ' ' << cfg.dest.axon << ' '
          << cfg.dest.delay << ' ' << (cfg.recordOutput ? 1 : 0) << '\n';
    }
    out << "endcore\n";
  }
  if (!out) throw std::runtime_error("saveModel: write failure");
}

StatusOr<std::unique_ptr<Network>> tryLoadModel(std::istream& in,
                                                std::uint64_t seed) {
  std::string magic;
  int coreCount = 0;
  if (!(in >> magic >> coreCount) || magic != "pcnn-tn-v1") {
    return Status::DataLoss("loadModel: bad header (expected pcnn-tn-v1)");
  }
  if (coreCount < 0 || coreCount > kMaxModelCores) {
    return Status::OutOfRange("loadModel: core count " +
                              std::to_string(coreCount) + " outside 0.." +
                              std::to_string(kMaxModelCores));
  }
  auto network = std::make_unique<Network>(seed);
  for (int c = 0; c < coreCount; ++c) network->addCore();

  std::string tag;
  int currentCore = -1;
  while (in >> tag) {
    if (tag == "core") {
      if (!(in >> currentCore) || currentCore < 0 ||
          currentCore >= coreCount) {
        return Status::DataLoss("loadModel: bad core index");
      }
    } else if (tag == "axontypes") {
      if (currentCore < 0) {
        return Status::DataLoss("loadModel: axontypes outside a core block");
      }
      Core& core = network->core(currentCore);
      for (int a = 0; a < kAxonsPerCore; ++a) {
        int type = 0;
        if (!(in >> type)) {
          return Status::DataLoss("loadModel: truncated axon types");
        }
        if (type < 0 || type >= kAxonTypes) {
          return Status::OutOfRange("loadModel: axon type " +
                                    std::to_string(type) + " outside 0.." +
                                    std::to_string(kAxonTypes - 1));
        }
        core.setAxonType(a, type);
      }
    } else if (tag == "conn") {
      if (currentCore < 0) {
        return Status::DataLoss("loadModel: conn outside a core block");
      }
      Core& core = network->core(currentCore);
      int axon = 0, count = 0;
      if (!(in >> axon >> count)) {
        return Status::DataLoss("loadModel: bad conn row");
      }
      if (axon < 0 || axon >= kAxonsPerCore) {
        return Status::OutOfRange("loadModel: conn axon " +
                                  std::to_string(axon) + " outside 0.." +
                                  std::to_string(kAxonsPerCore - 1));
      }
      if (count < 0 || count > kNeuronsPerCore) {
        return Status::OutOfRange("loadModel: conn count " +
                                  std::to_string(count) + " outside 0.." +
                                  std::to_string(kNeuronsPerCore));
      }
      for (int i = 0; i < count; ++i) {
        int neuron = 0;
        if (!(in >> neuron)) {
          return Status::DataLoss("loadModel: truncated conn row");
        }
        if (neuron < 0 || neuron >= kNeuronsPerCore) {
          return Status::OutOfRange("loadModel: conn neuron " +
                                    std::to_string(neuron) + " outside 0.." +
                                    std::to_string(kNeuronsPerCore - 1));
        }
        core.setConnection(axon, neuron, true);
      }
    } else if (tag == "neuron") {
      if (currentCore < 0) {
        return Status::DataLoss("loadModel: neuron outside a core block");
      }
      Core& core = network->core(currentCore);
      int index = 0;
      if (!(in >> index)) {
        return Status::DataLoss("loadModel: bad neuron index");
      }
      if (index < 0 || index >= kNeuronsPerCore) {
        return Status::OutOfRange("loadModel: neuron index " +
                                  std::to_string(index) + " outside 0.." +
                                  std::to_string(kNeuronsPerCore - 1));
      }
      NeuronConfig cfg;
      int resetMode = 0, stochastic = 0, record = 0;
      if (!(in >> cfg.synapticWeights[0] >> cfg.synapticWeights[1] >>
            cfg.synapticWeights[2] >> cfg.synapticWeights[3] >> cfg.leak >>
            cfg.threshold >> cfg.resetValue >> resetMode >>
            cfg.floorPotential >> stochastic >> cfg.stochasticMask >>
            cfg.dest.core >> cfg.dest.axon >> cfg.dest.delay >> record)) {
        return Status::DataLoss("loadModel: truncated neuron");
      }
      switch (resetMode) {
        case 0:
          cfg.resetMode = ResetMode::kAbsolute;
          break;
        case 1:
          cfg.resetMode = ResetMode::kLinear;
          break;
        case 2:
          cfg.resetMode = ResetMode::kNone;
          break;
        default:
          return Status::OutOfRange("loadModel: reset mode " +
                                    std::to_string(resetMode) +
                                    " outside 0..2");
      }
      // Destinations route on-chip only when dest.core >= 0; the routed
      // fields must then hold hardware-legal values or run() would fault
      // mid-simulation (or write to a core the model never declared).
      if (cfg.dest.core >= 0) {
        if (cfg.dest.core >= coreCount) {
          return Status::OutOfRange(
              "loadModel: destination core " +
              std::to_string(cfg.dest.core) + " outside 0.." +
              std::to_string(coreCount - 1));
        }
        if (cfg.dest.axon < 0 || cfg.dest.axon >= kAxonsPerCore) {
          return Status::OutOfRange("loadModel: destination axon " +
                                    std::to_string(cfg.dest.axon) +
                                    " outside 0.." +
                                    std::to_string(kAxonsPerCore - 1));
        }
        if (cfg.dest.delay < 1 || cfg.dest.delay > kMaxDelayTicks) {
          return Status::OutOfRange("loadModel: destination delay " +
                                    std::to_string(cfg.dest.delay) +
                                    " outside 1.." +
                                    std::to_string(kMaxDelayTicks));
        }
      }
      cfg.stochasticThreshold = stochastic != 0;
      cfg.recordOutput = record != 0;
      core.neuron(index) = cfg;
    } else if (tag == "endcore") {
      currentCore = -1;
    } else {
      return Status::DataLoss("loadModel: unknown tag " + tag);
    }
  }
  return network;
}

std::unique_ptr<Network> loadModel(std::istream& in, std::uint64_t seed) {
  StatusOr<std::unique_ptr<Network>> loaded = tryLoadModel(in, seed);
  if (!loaded.ok()) throw std::runtime_error(loaded.status().toString());
  return std::move(loaded).value();
}

void saveModelFile(const Network& network, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("saveModelFile: cannot open " + path);
  saveModel(network, out);
}

StatusOr<std::unique_ptr<Network>> tryLoadModelFile(const std::string& path,
                                                    std::uint64_t seed) {
  std::ifstream in(path);
  if (!in) {
    return Status::Unavailable("loadModelFile: cannot open " + path);
  }
  return tryLoadModel(in, seed);
}

std::unique_ptr<Network> loadModelFile(const std::string& path,
                                       std::uint64_t seed) {
  StatusOr<std::unique_ptr<Network>> loaded = tryLoadModelFile(path, seed);
  if (!loaded.ok()) throw std::runtime_error(loaded.status().toString());
  return std::move(loaded).value();
}

}  // namespace pcnn::tn
