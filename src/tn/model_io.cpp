#include "tn/model_io.hpp"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "io/io.hpp"

namespace pcnn::tn {
namespace {

constexpr char kMagic[5] = "PTNM";
constexpr std::uint32_t kVersion = 2;

int resetModeToInt(ResetMode mode) {
  switch (mode) {
    case ResetMode::kAbsolute:
      return 0;
    case ResetMode::kLinear:
      return 1;
    case ResetMode::kNone:
      return 2;
  }
  return 0;
}

Status resetModeFromInt(int value, ResetMode& mode) {
  switch (value) {
    case 0:
      mode = ResetMode::kAbsolute;
      return Status::Ok();
    case 1:
      mode = ResetMode::kLinear;
      return Status::Ok();
    case 2:
      mode = ResetMode::kNone;
      return Status::Ok();
    default:
      return Status::OutOfRange("loadModel: reset mode " +
                                std::to_string(value) + " outside 0..2");
  }
}

/// Model files bigger than this many cores are rejected up front -- a
/// corrupt header would otherwise commit us to allocating an arbitrary
/// number of 256x256 crossbars before the first real parse error.
constexpr int kMaxModelCores = 1 << 20;

/// A neuron is worth storing when any field differs from the default.
bool isDefault(const NeuronConfig& cfg) {
  const NeuronConfig def;
  return cfg.synapticWeights == def.synapticWeights &&
         cfg.leak == def.leak && cfg.threshold == def.threshold &&
         cfg.resetValue == def.resetValue &&
         cfg.resetMode == def.resetMode &&
         cfg.floorPotential == def.floorPotential &&
         cfg.stochasticThreshold == def.stochasticThreshold &&
         cfg.stochasticMask == def.stochasticMask &&
         cfg.dest.core == def.dest.core && cfg.dest.axon == def.dest.axon &&
         cfg.dest.delay == def.dest.delay &&
         cfg.recordOutput == def.recordOutput;
}

/// The destination fields of a routed neuron must hold hardware-legal
/// values or run() would fault mid-simulation (or write to a core the
/// model never declared). Shared by both wire-format readers.
Status checkDestination(const NeuronConfig& cfg, int coreCount) {
  if (cfg.dest.core < 0) return Status::Ok();
  if (cfg.dest.core >= coreCount) {
    return Status::OutOfRange("loadModel: destination core " +
                              std::to_string(cfg.dest.core) + " outside 0.." +
                              std::to_string(coreCount - 1));
  }
  if (cfg.dest.axon < 0 || cfg.dest.axon >= kAxonsPerCore) {
    return Status::OutOfRange("loadModel: destination axon " +
                              std::to_string(cfg.dest.axon) + " outside 0.." +
                              std::to_string(kAxonsPerCore - 1));
  }
  if (cfg.dest.delay < 1 || cfg.dest.delay > kMaxDelayTicks) {
    return Status::OutOfRange("loadModel: destination delay " +
                              std::to_string(cfg.dest.delay) + " outside 1.." +
                              std::to_string(kMaxDelayTicks));
  }
  return Status::Ok();
}

// --- v1 whitespace-text reader (legacy files; never written anymore) ----

StatusOr<std::unique_ptr<Network>> tryLoadModelV1(std::istream& in,
                                                  std::uint64_t seed) {
  std::string magic;
  int coreCount = 0;
  if (!(in >> magic >> coreCount) || magic != "pcnn-tn-v1") {
    return Status::DataLoss("loadModel: bad header (expected pcnn-tn-v1)");
  }
  if (coreCount < 0 || coreCount > kMaxModelCores) {
    return Status::OutOfRange("loadModel: core count " +
                              std::to_string(coreCount) + " outside 0.." +
                              std::to_string(kMaxModelCores));
  }
  auto network = std::make_unique<Network>(seed);
  for (int c = 0; c < coreCount; ++c) network->addCore();

  std::string tag;
  int currentCore = -1;
  while (in >> tag) {
    if (tag == "core") {
      if (!(in >> currentCore) || currentCore < 0 ||
          currentCore >= coreCount) {
        return Status::DataLoss("loadModel: bad core index");
      }
    } else if (tag == "axontypes") {
      if (currentCore < 0) {
        return Status::DataLoss("loadModel: axontypes outside a core block");
      }
      Core& core = network->core(currentCore);
      for (int a = 0; a < kAxonsPerCore; ++a) {
        int type = 0;
        if (!(in >> type)) {
          return Status::DataLoss("loadModel: truncated axon types");
        }
        if (type < 0 || type >= kAxonTypes) {
          return Status::OutOfRange("loadModel: axon type " +
                                    std::to_string(type) + " outside 0.." +
                                    std::to_string(kAxonTypes - 1));
        }
        core.setAxonType(a, type);
      }
    } else if (tag == "conn") {
      if (currentCore < 0) {
        return Status::DataLoss("loadModel: conn outside a core block");
      }
      Core& core = network->core(currentCore);
      int axon = 0, count = 0;
      if (!(in >> axon >> count)) {
        return Status::DataLoss("loadModel: bad conn row");
      }
      if (axon < 0 || axon >= kAxonsPerCore) {
        return Status::OutOfRange("loadModel: conn axon " +
                                  std::to_string(axon) + " outside 0.." +
                                  std::to_string(kAxonsPerCore - 1));
      }
      if (count < 0 || count > kNeuronsPerCore) {
        return Status::OutOfRange("loadModel: conn count " +
                                  std::to_string(count) + " outside 0.." +
                                  std::to_string(kNeuronsPerCore));
      }
      for (int i = 0; i < count; ++i) {
        int neuron = 0;
        if (!(in >> neuron)) {
          return Status::DataLoss("loadModel: truncated conn row");
        }
        if (neuron < 0 || neuron >= kNeuronsPerCore) {
          return Status::OutOfRange("loadModel: conn neuron " +
                                    std::to_string(neuron) + " outside 0.." +
                                    std::to_string(kNeuronsPerCore - 1));
        }
        core.setConnection(axon, neuron, true);
      }
    } else if (tag == "neuron") {
      if (currentCore < 0) {
        return Status::DataLoss("loadModel: neuron outside a core block");
      }
      Core& core = network->core(currentCore);
      int index = 0;
      if (!(in >> index)) {
        return Status::DataLoss("loadModel: bad neuron index");
      }
      if (index < 0 || index >= kNeuronsPerCore) {
        return Status::OutOfRange("loadModel: neuron index " +
                                  std::to_string(index) + " outside 0.." +
                                  std::to_string(kNeuronsPerCore - 1));
      }
      NeuronConfig cfg;
      int resetMode = 0, stochastic = 0, record = 0;
      if (!(in >> cfg.synapticWeights[0] >> cfg.synapticWeights[1] >>
            cfg.synapticWeights[2] >> cfg.synapticWeights[3] >> cfg.leak >>
            cfg.threshold >> cfg.resetValue >> resetMode >>
            cfg.floorPotential >> stochastic >> cfg.stochasticMask >>
            cfg.dest.core >> cfg.dest.axon >> cfg.dest.delay >> record)) {
        return Status::DataLoss("loadModel: truncated neuron");
      }
      if (Status status = resetModeFromInt(resetMode, cfg.resetMode);
          !status.ok()) {
        return status;
      }
      if (Status status = checkDestination(cfg, coreCount); !status.ok()) {
        return status;
      }
      cfg.stochasticThreshold = stochastic != 0;
      cfg.recordOutput = record != 0;
      core.neuron(index) = cfg;
    } else if (tag == "endcore") {
      currentCore = -1;
    } else {
      return Status::DataLoss("loadModel: unknown tag " + tag);
    }
  }
  return network;
}

// --- v2 chunked binary over io::Writer/io::Reader ------------------------

Status unpackCore(io::Reader& pr, Network& network, int coreCount) {
  std::uint32_t coreIndex = 0;
  if (!pr.u32(coreIndex).ok()) {
    return Status::DataLoss("loadModel: bad core index");
  }
  if (coreIndex >= static_cast<std::uint32_t>(coreCount)) {
    return Status::DataLoss("loadModel: bad core index");
  }
  Core& core = network.core(static_cast<int>(coreIndex));

  for (int a = 0; a < kAxonsPerCore; ++a) {
    std::uint8_t type = 0;
    if (!pr.u8(type).ok()) {
      return Status::DataLoss("loadModel: truncated axon types");
    }
    if (type >= kAxonTypes) {
      return Status::OutOfRange("loadModel: axon type " +
                                std::to_string(type) + " outside 0.." +
                                std::to_string(kAxonTypes - 1));
    }
    core.setAxonType(a, type);
  }

  std::uint32_t connRows = 0;
  if (!pr.u32(connRows).ok()) {
    return Status::DataLoss("loadModel: bad conn row");
  }
  if (connRows > static_cast<std::uint32_t>(kAxonsPerCore)) {
    return Status::OutOfRange("loadModel: conn row count " +
                              std::to_string(connRows) + " outside 0.." +
                              std::to_string(kAxonsPerCore));
  }
  for (std::uint32_t rowIdx = 0; rowIdx < connRows; ++rowIdx) {
    std::uint32_t axon = 0, count = 0;
    pr.u32(axon);
    if (!pr.u32(count).ok()) {
      return Status::DataLoss("loadModel: bad conn row");
    }
    if (axon >= static_cast<std::uint32_t>(kAxonsPerCore)) {
      return Status::OutOfRange("loadModel: conn axon " +
                                std::to_string(axon) + " outside 0.." +
                                std::to_string(kAxonsPerCore - 1));
    }
    if (count > static_cast<std::uint32_t>(kNeuronsPerCore)) {
      return Status::OutOfRange("loadModel: conn count " +
                                std::to_string(count) + " outside 0.." +
                                std::to_string(kNeuronsPerCore));
    }
    for (std::uint32_t i = 0; i < count; ++i) {
      std::uint32_t neuron = 0;
      if (!pr.u32(neuron).ok()) {
        return Status::DataLoss("loadModel: truncated conn row");
      }
      if (neuron >= static_cast<std::uint32_t>(kNeuronsPerCore)) {
        return Status::OutOfRange("loadModel: conn neuron " +
                                  std::to_string(neuron) + " outside 0.." +
                                  std::to_string(kNeuronsPerCore - 1));
      }
      core.setConnection(static_cast<int>(axon), static_cast<int>(neuron),
                         true);
    }
  }

  std::uint32_t neuronCount = 0;
  if (!pr.u32(neuronCount).ok()) {
    return Status::DataLoss("loadModel: bad neuron index");
  }
  if (neuronCount > static_cast<std::uint32_t>(kNeuronsPerCore)) {
    return Status::OutOfRange("loadModel: neuron count " +
                              std::to_string(neuronCount) + " outside 0.." +
                              std::to_string(kNeuronsPerCore));
  }
  for (std::uint32_t nIdx = 0; nIdx < neuronCount; ++nIdx) {
    std::uint32_t index = 0;
    if (!pr.u32(index).ok()) {
      return Status::DataLoss("loadModel: bad neuron index");
    }
    if (index >= static_cast<std::uint32_t>(kNeuronsPerCore)) {
      return Status::OutOfRange("loadModel: neuron index " +
                                std::to_string(index) + " outside 0.." +
                                std::to_string(kNeuronsPerCore - 1));
    }
    NeuronConfig cfg;
    std::uint8_t resetMode = 0, stochastic = 0, record = 0;
    for (int& w : cfg.synapticWeights) pr.i32(w);
    pr.i32(cfg.leak);
    pr.i32(cfg.threshold);
    pr.i32(cfg.resetValue);
    pr.u8(resetMode);
    pr.i32(cfg.floorPotential);
    pr.u8(stochastic);
    pr.i32(cfg.stochasticMask);
    pr.i32(cfg.dest.core);
    pr.i32(cfg.dest.axon);
    pr.i32(cfg.dest.delay);
    if (!pr.u8(record).ok()) {
      return Status::DataLoss("loadModel: truncated neuron");
    }
    if (Status status = resetModeFromInt(resetMode, cfg.resetMode);
        !status.ok()) {
      return status;
    }
    if (Status status = checkDestination(cfg, coreCount); !status.ok()) {
      return status;
    }
    cfg.stochasticThreshold = stochastic != 0;
    cfg.recordOutput = record != 0;
    core.neuron(static_cast<int>(index)) = cfg;
  }
  return Status::Ok();
}

StatusOr<std::unique_ptr<Network>> tryLoadModelV2(std::istream& in,
                                                  std::uint64_t seed) {
  io::Reader r(in);
  if (!r.header(kMagic, kVersion).ok()) return r.status();

  io::Reader::Chunk chunk;
  bool end = false;
  if (!r.nextChunk(chunk, end).ok()) return r.status();
  if (end || chunk.tag != "NETW") {
    return Status::DataLoss("loadModel: missing NETW chunk");
  }
  std::uint32_t coreCount = 0;
  {
    std::istringstream payload(chunk.payload);
    io::Reader pr(payload);
    if (!pr.u32(coreCount).ok()) return pr.status();
  }
  if (coreCount > static_cast<std::uint32_t>(kMaxModelCores)) {
    return Status::OutOfRange("loadModel: core count " +
                              std::to_string(coreCount) + " outside 0.." +
                              std::to_string(kMaxModelCores));
  }
  auto network = std::make_unique<Network>(seed);
  for (std::uint32_t c = 0; c < coreCount; ++c) network->addCore();

  for (;;) {
    if (!r.nextChunk(chunk, end).ok()) return r.status();
    if (end) break;
    if (chunk.tag != "CORE") continue;  // unknown chunks skipped
    std::istringstream payload(chunk.payload);
    io::Reader pr(payload);
    if (Status status =
            unpackCore(pr, *network, static_cast<int>(coreCount));
        !status.ok()) {
      return status;
    }
  }
  return network;
}

}  // namespace

Status trySaveModel(const Network& network, std::ostream& out) {
  io::Writer w(out);
  w.header(kMagic, kVersion);
  {
    std::ostringstream payload;
    io::Writer pw(payload);
    pw.u32(static_cast<std::uint32_t>(network.coreCount()));
    w.chunk("NETW", payload.str());
  }

  for (int c = 0; c < network.coreCount(); ++c) {
    const Core& core = network.core(c);
    std::ostringstream payload;
    io::Writer pw(payload);
    pw.u32(static_cast<std::uint32_t>(c));

    for (int a = 0; a < kAxonsPerCore; ++a) {
      pw.u8(static_cast<std::uint8_t>(core.axonType(a)));
    }

    // Sparse crossbar rows: only axons with at least one connection are
    // stored, as (axon, count, neurons...) -- the v1 "conn" rows in binary.
    std::uint32_t connRows = 0;
    for (int a = 0; a < kAxonsPerCore; ++a) {
      for (int n = 0; n < kNeuronsPerCore; ++n) {
        if (core.connection(a, n)) {
          ++connRows;
          break;
        }
      }
    }
    pw.u32(connRows);
    for (int a = 0; a < kAxonsPerCore; ++a) {
      std::uint32_t count = 0;
      for (int n = 0; n < kNeuronsPerCore; ++n) {
        if (core.connection(a, n)) ++count;
      }
      if (count == 0) continue;
      pw.u32(static_cast<std::uint32_t>(a));
      pw.u32(count);
      for (int n = 0; n < kNeuronsPerCore; ++n) {
        if (core.connection(a, n)) pw.u32(static_cast<std::uint32_t>(n));
      }
    }

    std::uint32_t neuronCount = 0;
    for (int n = 0; n < kNeuronsPerCore; ++n) {
      if (!isDefault(core.neuron(n))) ++neuronCount;
    }
    pw.u32(neuronCount);
    for (int n = 0; n < kNeuronsPerCore; ++n) {
      const NeuronConfig& cfg = core.neuron(n);
      if (isDefault(cfg)) continue;
      pw.u32(static_cast<std::uint32_t>(n));
      for (int weight : cfg.synapticWeights) pw.i32(weight);
      pw.i32(cfg.leak);
      pw.i32(cfg.threshold);
      pw.i32(cfg.resetValue);
      pw.u8(static_cast<std::uint8_t>(resetModeToInt(cfg.resetMode)));
      pw.i32(cfg.floorPotential);
      pw.u8(cfg.stochasticThreshold ? 1 : 0);
      pw.i32(cfg.stochasticMask);
      pw.i32(cfg.dest.core);
      pw.i32(cfg.dest.axon);
      pw.i32(cfg.dest.delay);
      pw.u8(cfg.recordOutput ? 1 : 0);
    }
    if (!pw.status().ok()) return pw.status();
    w.chunk("CORE", payload.str());
  }
  return w.status();
}

Status trySaveModelFile(const Network& network, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return Status::Unavailable("saveModelFile: cannot open " + path);
  }
  return trySaveModel(network, out);
}

StatusOr<std::unique_ptr<Network>> tryLoadModel(std::istream& in,
                                                std::uint64_t seed) {
  if (io::peekMagic(in) == kMagic) return tryLoadModelV2(in, seed);
  return tryLoadModelV1(in, seed);
}

StatusOr<std::unique_ptr<Network>> tryLoadModelFile(const std::string& path,
                                                    std::uint64_t seed) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::Unavailable("loadModelFile: cannot open " + path);
  }
  return tryLoadModel(in, seed);
}

void saveModel(const Network& network, std::ostream& out) {
  if (Status status = trySaveModel(network, out); !status.ok()) {
    throw std::runtime_error(status.toString());
  }
}

void saveModelFile(const Network& network, const std::string& path) {
  if (Status status = trySaveModelFile(network, path); !status.ok()) {
    throw std::runtime_error(status.toString());
  }
}

std::unique_ptr<Network> loadModel(std::istream& in, std::uint64_t seed) {
  StatusOr<std::unique_ptr<Network>> loaded = tryLoadModel(in, seed);
  if (!loaded.ok()) throw std::runtime_error(loaded.status().toString());
  return std::move(loaded).value();
}

std::unique_ptr<Network> loadModelFile(const std::string& path,
                                       std::uint64_t seed) {
  StatusOr<std::unique_ptr<Network>> loaded = tryLoadModelFile(path, seed);
  if (!loaded.ok()) throw std::runtime_error(loaded.status().toString());
  return std::move(loaded).value();
}

}  // namespace pcnn::tn
