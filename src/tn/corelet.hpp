#pragma once

#include <string>
#include <vector>

#include "tn/network.hpp"

namespace pcnn::tn {

/// Named handle to an external input line of a corelet: one logical input
/// channel may fan out to several (core, axon) targets, mirroring how the
/// corelet environment duplicates off-chip input streams.
struct InputLine {
  std::string name;
  std::vector<std::pair<int, int>> targets;  ///< (core, axon)
};

/// Named handle to an output neuron of a corelet.
struct OutputLine {
  std::string name;
  int core = -1;
  int neuron = -1;
};

/// Helper for building corelets: hierarchical, named sub-networks of cores
/// (Amir et al., "corelet language"). Tracks allocation within cores and
/// enforces the single-destination-per-neuron rule.
class CoreletBuilder {
 public:
  explicit CoreletBuilder(Network& net) : net_(net) {}

  Network& network() { return net_; }

  /// Allocates a fresh core and returns its index.
  int newCore() { return net_.addCore(); }

  /// Routes neuron (srcCore, srcNeuron) to axon (dstCore, dstAxon).
  /// Throws std::logic_error if the neuron already has a destination
  /// (TrueNorth neurons have exactly one output target).
  void wire(int srcCore, int srcNeuron, int dstCore, int dstAxon,
            int delay = 1);

  /// Declares a named external input that will be duplicated to the given
  /// targets; returns its index in inputs().
  int addInput(std::string name);
  void bindInput(int inputIndex, int core, int axon);

  /// Flags a neuron as a recorded output line and names it.
  int addOutput(std::string name, int core, int neuron);

  const std::vector<InputLine>& inputs() const { return inputs_; }
  const std::vector<OutputLine>& outputs() const { return outputs_; }

  /// Schedules a spike on logical input line `inputIndex` at `tick`,
  /// duplicating to every bound (core, axon) target.
  void injectSpike(int inputIndex, long tick);

  /// Range-checks a synaptic weight against the chip's 9-bit signed field.
  static int checkWeight(int weight);

 private:
  Network& net_;
  std::vector<InputLine> inputs_;
  std::vector<OutputLine> outputs_;
};

}  // namespace pcnn::tn
