#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "common/rng.hpp"
#include "nn/activations.hpp"
#include "nn/conv2d.hpp"
#include "nn/dense.hpp"
#include "nn/loss.hpp"
#include "nn/pooling.hpp"
#include "nn/sequential.hpp"

namespace pcnn::nn {
namespace {

TEST(Dense, ForwardComputesAffineMap) {
  pcnn::Rng rng(1);
  Dense layer(2, 2, rng);
  layer.weights() = {1.0f, 2.0f, 3.0f, 4.0f};  // rows: [1 2], [3 4]
  layer.biases() = {0.5f, -0.5f};
  const auto out = layer.forward({1.0f, 1.0f}, false);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_FLOAT_EQ(out[0], 3.5f);
  EXPECT_FLOAT_EQ(out[1], 6.5f);
}

TEST(Dense, BackwardGradientMatchesFiniteDifference) {
  pcnn::Rng rng(2);
  Dense layer(3, 2, rng);
  const std::vector<float> x = {0.3f, -0.7f, 1.2f};
  const std::vector<float> g = {1.0f, -2.0f};

  auto out = layer.forward(x, true);
  const auto gradIn = layer.backward(g);

  // Finite difference on input 1.
  const float eps = 1e-3f;
  std::vector<float> xp = x;
  xp[1] += eps;
  const auto outP = layer.forward(xp, false);
  float lossBase = 0, lossP = 0;
  for (int j = 0; j < 2; ++j) {
    lossBase += g[j] * out[j];
    lossP += g[j] * outP[j];
  }
  EXPECT_NEAR(gradIn[1], (lossP - lossBase) / eps, 1e-2f);
}

TEST(Dense, SizeMismatchThrows) {
  pcnn::Rng rng(3);
  Dense layer(3, 2, rng);
  EXPECT_THROW(layer.forward({1.0f}, false), std::invalid_argument);
  layer.forward({1, 2, 3}, true);
  EXPECT_THROW(layer.backward({1.0f}), std::invalid_argument);
}

TEST(Dense, LearnsLinearTarget) {
  // y = 2*x0 - x1; check SGD reduces MSE by 10x.
  pcnn::Rng rng(4);
  Dense layer(2, 1, rng);
  auto lossAt = [&](bool train) {
    double total = 0;
    pcnn::Rng dataRng(99);
    for (int i = 0; i < 64; ++i) {
      const float x0 = static_cast<float>(dataRng.uniform(-1, 1));
      const float x1 = static_cast<float>(dataRng.uniform(-1, 1));
      const float target = 2.0f * x0 - x1;
      const auto out = layer.forward({x0, x1}, train);
      const auto loss = mseLoss(out, {target});
      total += loss.value;
      if (train) {
        layer.backward(loss.grad);
        layer.applyGradients(0.1f, 0.0f, 1);
      }
    }
    return total / 64.0;
  };
  const double before = lossAt(false);
  for (int epoch = 0; epoch < 50; ++epoch) lossAt(true);
  EXPECT_LT(lossAt(false), before / 10.0);
}

TEST(Relu, ForwardAndBackward) {
  Relu relu(3);
  const auto out = relu.forward({-1.0f, 0.0f, 2.0f}, true);
  EXPECT_FLOAT_EQ(out[0], 0.0f);
  EXPECT_FLOAT_EQ(out[1], 0.0f);
  EXPECT_FLOAT_EQ(out[2], 2.0f);
  const auto grad = relu.backward({1.0f, 1.0f, 1.0f});
  EXPECT_FLOAT_EQ(grad[0], 0.0f);
  EXPECT_FLOAT_EQ(grad[2], 1.0f);
}

TEST(Sigmoid, SaturatesAndCentres) {
  Sigmoid sigmoid(3);
  const auto out = sigmoid.forward({-20.0f, 0.0f, 20.0f}, true);
  EXPECT_NEAR(out[0], 0.0f, 1e-6f);
  EXPECT_NEAR(out[1], 0.5f, 1e-6f);
  EXPECT_NEAR(out[2], 1.0f, 1e-6f);
  const auto grad = sigmoid.backward({1.0f, 1.0f, 1.0f});
  EXPECT_NEAR(grad[1], 0.25f, 1e-6f);  // sigma'(0)
  EXPECT_NEAR(grad[0], 0.0f, 1e-5f);
}

TEST(Sequential, ComposesAndValidatesSizes) {
  pcnn::Rng rng(5);
  Sequential net;
  net.add(std::make_unique<Dense>(4, 8, rng));
  net.add(std::make_unique<Relu>(8));
  net.add(std::make_unique<Dense>(8, 2, rng));
  EXPECT_EQ(net.inputSize(), 4);
  EXPECT_EQ(net.outputSize(), 2);
  EXPECT_EQ(net.layerCount(), 3u);
  EXPECT_EQ(net.parameterCount(), 4 * 8 + 8 + 8 * 2 + 2);
  EXPECT_THROW(net.add(std::make_unique<Dense>(3, 2, rng)),
               std::invalid_argument);
  const auto out = net.forward({1, 2, 3, 4}, false);
  EXPECT_EQ(out.size(), 2u);
}

TEST(Loss, MseZeroAtTarget) {
  const auto loss = mseLoss({1.0f, 2.0f}, {1.0f, 2.0f});
  EXPECT_FLOAT_EQ(loss.value, 0.0f);
  EXPECT_FLOAT_EQ(loss.grad[0], 0.0f);
}

TEST(Loss, MseGradientDirection) {
  const auto loss = mseLoss({2.0f}, {1.0f});
  EXPECT_FLOAT_EQ(loss.value, 1.0f);
  EXPECT_GT(loss.grad[0], 0.0f);  // decrease prediction
}

TEST(Loss, SoftmaxSumsToOne) {
  const auto probs = softmax({1.0f, 2.0f, 3.0f});
  float sum = 0;
  for (float p : probs) sum += p;
  EXPECT_NEAR(sum, 1.0f, 1e-6f);
  EXPECT_GT(probs[2], probs[0]);
}

TEST(Loss, SoftmaxCrossEntropyGradient) {
  const auto loss = softmaxCrossEntropy({0.0f, 0.0f}, 1);
  EXPECT_NEAR(loss.value, std::log(2.0f), 1e-5f);
  EXPECT_NEAR(loss.grad[0], 0.5f, 1e-5f);
  EXPECT_NEAR(loss.grad[1], -0.5f, 1e-5f);
  EXPECT_THROW(softmaxCrossEntropy({0.0f}, 5), std::invalid_argument);
}

TEST(Loss, HingeLossMarginBehaviour) {
  EXPECT_FLOAT_EQ(hingeLoss(2.0f, 1).value, 0.0f);     // past margin
  EXPECT_FLOAT_EQ(hingeLoss(0.0f, 1).value, 1.0f);     // on boundary
  EXPECT_FLOAT_EQ(hingeLoss(-1.0f, 1).value, 2.0f);
  EXPECT_FLOAT_EQ(hingeLoss(-2.0f, -1).value, 0.0f);
  EXPECT_THROW(hingeLoss(0.0f, 0), std::invalid_argument);
}

TEST(Conv2d, IdentityKernelPreservesInput) {
  pcnn::Rng rng(6);
  Conv2d conv(1, 3, 3, 1, 1, 0, rng);
  conv.weights() = {1.0f};
  const std::vector<float> x = {1, 2, 3, 4, 5, 6, 7, 8, 9};
  const auto out = conv.forward(x, false);
  ASSERT_EQ(out.size(), 9u);
  for (std::size_t i = 0; i < 9; ++i) EXPECT_NEAR(out[i], x[i], 1e-6f);
}

TEST(Conv2d, OutputGeometry) {
  pcnn::Rng rng(7);
  Conv2d conv(2, 8, 10, 4, 3, 1, rng);
  EXPECT_EQ(conv.outHeight(), 8);
  EXPECT_EQ(conv.outWidth(), 10);
  EXPECT_EQ(conv.inputSize(), 2 * 8 * 10);
  EXPECT_EQ(conv.outputSize(), 4 * 8 * 10);
  EXPECT_THROW(Conv2d(1, 2, 2, 1, 5, 0, rng), std::invalid_argument);
}

TEST(Conv2d, GradientMatchesFiniteDifference) {
  pcnn::Rng rng(8);
  Conv2d conv(1, 4, 4, 2, 3, 1, rng);
  std::vector<float> x(16);
  for (auto& v : x) v = static_cast<float>(rng.uniform(-1, 1));
  std::vector<float> g(conv.outputSize());
  for (auto& v : g) v = static_cast<float>(rng.uniform(-1, 1));

  const auto out = conv.forward(x, true);
  const auto gradIn = conv.backward(g);

  const float eps = 1e-3f;
  std::vector<float> xp = x;
  xp[5] += eps;
  const auto outP = conv.forward(xp, false);
  double lossBase = 0, lossP = 0;
  for (std::size_t i = 0; i < g.size(); ++i) {
    lossBase += g[i] * out[i];
    lossP += g[i] * outP[i];
  }
  EXPECT_NEAR(gradIn[5], (lossP - lossBase) / eps, 1e-2);
}

TEST(Conv2d, LearnsEdgeFilter) {
  // Train a 1-channel 3x3 conv to implement the [-1,0,1] horizontal mask.
  pcnn::Rng rng(9);
  Conv2d conv(1, 5, 5, 1, 3, 1, rng);
  pcnn::Rng dataRng(10);
  double finalLoss = 1e9;
  for (int step = 0; step < 2500; ++step) {
    std::vector<float> x(25);
    for (auto& v : x) v = static_cast<float>(dataRng.uniform());
    std::vector<float> target(25, 0.0f);
    for (int y = 0; y < 5; ++y) {
      for (int xx = 0; xx < 5; ++xx) {
        const float right = xx + 1 < 5 ? x[y * 5 + xx + 1] : 0.0f;
        const float left = xx - 1 >= 0 ? x[y * 5 + xx - 1] : 0.0f;
        target[y * 5 + xx] = right - left;
      }
    }
    const auto out = conv.forward(x, true);
    const auto loss = mseLoss(out, target);
    conv.backward(loss.grad);
    conv.applyGradients(0.05f, 0.9f, 1);
    finalLoss = loss.value;
  }
  EXPECT_LT(finalLoss, 0.01);
}

TEST(AvgPool2d, AveragesBlocks) {
  AvgPool2d pool(1, 4, 4, 2);
  std::vector<float> x(16);
  for (std::size_t i = 0; i < 16; ++i) x[i] = static_cast<float>(i);
  const auto out = pool.forward(x, false);
  ASSERT_EQ(out.size(), 4u);
  EXPECT_FLOAT_EQ(out[0], (0 + 1 + 4 + 5) / 4.0f);
  EXPECT_FLOAT_EQ(out[3], (10 + 11 + 14 + 15) / 4.0f);
}

TEST(AvgPool2d, BackwardDistributesEvenly) {
  AvgPool2d pool(1, 2, 2, 2);
  pool.forward({1, 2, 3, 4}, true);
  const auto grad = pool.backward({4.0f});
  for (float g : grad) EXPECT_FLOAT_EQ(g, 1.0f);
}

TEST(AvgPool2d, RejectsNonDividingDims) {
  EXPECT_THROW(AvgPool2d(1, 5, 4, 2), std::invalid_argument);
}

TEST(MaxPool2d, TakesBlockMaxima) {
  MaxPool2d pool(2, 2, 2, 2);
  const std::vector<float> x = {1, 7, 3, 2, -1, -9, -3, -2};
  const auto out = pool.forward(x, true);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_FLOAT_EQ(out[0], 7.0f);
  EXPECT_FLOAT_EQ(out[1], -1.0f);
}

TEST(MaxPool2d, BackwardRoutesToArgmax) {
  MaxPool2d pool(1, 2, 2, 2);
  pool.forward({1, 9, 3, 4}, true);
  const auto grad = pool.backward({2.0f});
  EXPECT_FLOAT_EQ(grad[0], 0.0f);
  EXPECT_FLOAT_EQ(grad[1], 2.0f);
  EXPECT_FLOAT_EQ(grad[2], 0.0f);
}

TEST(Rng, DeterministicAndUniform) {
  pcnn::Rng a(42), b(42);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.nextU64(), b.nextU64());
  pcnn::Rng c(42);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) sum += c.uniform();
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, NormalMoments) {
  pcnn::Rng rng(11);
  double sum = 0, sumSq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal();
    sum += v;
    sumSq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sumSq / n, 1.0, 0.05);
}

TEST(Rng, UniformIntCoversRange) {
  pcnn::Rng rng(12);
  bool sawLo = false, sawHi = false;
  for (int i = 0; i < 1000; ++i) {
    const int v = rng.uniformInt(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    sawLo |= (v == 3);
    sawHi |= (v == 7);
  }
  EXPECT_TRUE(sawLo);
  EXPECT_TRUE(sawHi);
}

}  // namespace
}  // namespace pcnn::nn
