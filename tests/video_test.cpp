// Tests for the full-HD video detection path: the deterministic synthetic
// video source (vision::SyntheticVideo), the incremental cell/block
// refresh primitives it drives, the pyramid geometry at 1920x1080, and
// GridDetector::detectBatch -- in particular the bitwise-parity contracts
// (PCNN_TEMPORAL=off == per-frame detect() at any thread count; the
// temporal path == the off path for deterministic backends).
#include <cmath>
#include <cstdlib>
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "core/detector.hpp"
#include "core/temporal.hpp"
#include "extract/registry.hpp"
#include "vision/geometry.hpp"
#include "vision/pyramid.hpp"
#include "vision/video.hpp"

namespace pcnn {
namespace {

using core::BatchDetectResult;
using core::GridDetector;
using core::GridDetectorParams;
using vision::Image;
using vision::SyntheticVideo;
using vision::VideoParams;

/// RAII PCNN_TEMPORAL override restored to unset on destruction.
class ScopedTemporalEnv {
 public:
  explicit ScopedTemporalEnv(const char* value) {
    ::setenv("PCNN_TEMPORAL", value, 1);
  }
  ~ScopedTemporalEnv() { ::unsetenv("PCNN_TEMPORAL"); }
};

VideoParams smallVideo(int persons = 1, std::uint64_t seed = 1) {
  VideoParams vp;
  vp.width = 320;
  vp.height = 240;
  vp.numPersons = persons;
  vp.seed = seed;
  return vp;
}

/// A fixed deterministic linear scorer (the tests exercise the scan
/// machinery, not classifier quality).
core::WindowScorer fixedScorer(int dim) {
  std::vector<float> weights(static_cast<std::size_t>(dim));
  Rng wrng(7);
  for (auto& w : weights) w = static_cast<float>(wrng.uniform()) - 0.5f;
  return [weights = std::move(weights)](const std::vector<float>& f) {
    float acc = 0.0f;
    const std::size_t n = f.size() < weights.size() ? f.size() : weights.size();
    for (std::size_t i = 0; i < n; ++i) acc += weights[i] * f[i];
    return acc;
  };
}

GridDetector makeDetector(const std::string& backend, bool temporal,
                          bool smooth = false, int maxLevels = 3) {
  auto extractor =
      extract::makeExtractor(backend, extract::FeatureLayout::kBlockNorm);
  GridDetectorParams params;
  params.scoreThreshold = 2.0f;  // keep a real but bounded detection set
  params.pyramid.maxLevels = maxLevels;
  params.temporal.enabled = temporal;
  params.temporal.smooth = smooth;
  return GridDetector(params, extractor, fixedScorer(extractor->featureDim()));
}

void expectSameDetections(const std::vector<vision::Detection>& a,
                          const std::vector<vision::Detection>& b,
                          const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].score, b[i].score) << what << " det " << i;
    EXPECT_EQ(a[i].box.x, b[i].box.x) << what << " det " << i;
    EXPECT_EQ(a[i].box.y, b[i].box.y) << what << " det " << i;
    EXPECT_EQ(a[i].box.w, b[i].box.w) << what << " det " << i;
    EXPECT_EQ(a[i].box.h, b[i].box.h) << what << " det " << i;
  }
}

// ---------------------------------------------------------------- synth

TEST(SyntheticVideo, SameSeedIsBitwiseDeterministic) {
  SyntheticVideo a(smallVideo(2, 9));
  SyntheticVideo b(smallVideo(2, 9));
  for (int f : {0, 3, 17}) {
    const vision::Scene sa = a.frame(f);
    const vision::Scene sb = b.frame(f);
    ASSERT_EQ(sa.image.data().size(), sb.image.data().size());
    EXPECT_EQ(sa.image.data(), sb.image.data()) << "frame " << f;
    ASSERT_EQ(sa.groundTruth.size(), sb.groundTruth.size());
  }
}

TEST(SyntheticVideo, FrameIsPureFunctionOfIndex) {
  SyntheticVideo v(smallVideo());
  const Image later = v.frame(5).image;   // out-of-order access
  const Image first = v.frame(2).image;
  const Image again = v.frame(2).image;
  EXPECT_EQ(first.data(), again.data());
  EXPECT_NE(later.data(), first.data());  // motion actually happens
}

TEST(SyntheticVideo, DifferentSeedsDiffer) {
  SyntheticVideo a(smallVideo(1, 1));
  SyntheticVideo b(smallVideo(1, 2));
  EXPECT_NE(a.frame(0).image.data(), b.frame(0).image.data());
}

TEST(SyntheticVideo, FirstActorVisibleAndMoving) {
  SyntheticVideo v(smallVideo(1, 4));
  ASSERT_EQ(v.numActors(), 1);
  EXPECT_TRUE(v.actorVisible(0, 0));  // actor 0 starts on-screen
  const vision::Rect b0 = v.actorBox(0, 0);
  const vision::Rect b5 = v.actorBox(0, 5);
  EXPECT_NE(b0.x, b5.x);
}

TEST(SyntheticVideo, MotionIsContinuous) {
  VideoParams vp = smallVideo(3, 11);
  SyntheticVideo v(vp);
  for (int a = 0; a < v.numActors(); ++a) {
    for (int f = 0; f < 30; ++f) {
      const vision::Rect cur = v.actorBox(a, f);
      const vision::Rect next = v.actorBox(a, f + 1);
      const float dx = std::abs(next.x - cur.x);
      // Per-frame translation is bounded by the speed cap (unless the
      // actor wrapped around the off-screen track).
      if (dx < vp.width / 2.0f) {
        EXPECT_LE(dx, vp.maxSpeedPx + 1.0f)
            << "actor " << a << " frame " << f;
        if (v.actorVisible(a, f) && v.actorVisible(a, f + 1)) {
          EXPECT_GT(vision::iou(cur, next), 0.5f)
              << "actor " << a << " frame " << f;
        }
      }
      // Scale oscillation is smooth: box height changes slowly.
      EXPECT_LE(std::abs(next.h - cur.h), cur.h * 0.1f);
    }
  }
}

TEST(SyntheticVideo, GroundTruthOnlyForVisibleActors) {
  SyntheticVideo v(smallVideo(3, 21));
  for (int f = 0; f < 10; ++f) {
    std::size_t visible = 0;
    for (int a = 0; a < v.numActors(); ++a) {
      if (v.actorVisible(a, f)) ++visible;
    }
    EXPECT_EQ(v.frame(f).groundTruth.size(), visible);
  }
}

TEST(SyntheticVideo, RejectsInvalidParams) {
  VideoParams vp;
  vp.width = 0;
  EXPECT_THROW(SyntheticVideo v(vp), std::invalid_argument);
  SyntheticVideo ok(smallVideo());
  EXPECT_THROW(ok.frame(-1), std::invalid_argument);
}

// ------------------------------------------------------------- pyramid

TEST(VideoPyramid, FullHdGeometryInvariants) {
  // The paper's full-HD analysis: 1920x1080, 6 levels at 1.1x.
  Image frame(1920, 1080, 0.5f);
  vision::PyramidParams pp;
  pp.maxLevels = 6;
  const auto levels = vision::buildPyramid(frame, pp);
  ASSERT_EQ(levels.size(), 6u);
  EXPECT_EQ(levels[0].image.width(), 1920);
  EXPECT_EQ(levels[0].image.height(), 1080);
  float scale = 1.0f;
  for (std::size_t i = 0; i < levels.size(); ++i) {
    EXPECT_NEAR(levels[i].scale, scale, 1e-4f) << "level " << i;
    EXPECT_EQ(levels[i].image.width(),
              static_cast<int>(std::lround(1920.0 / levels[i].scale)));
    EXPECT_EQ(levels[i].image.height(),
              static_cast<int>(std::lround(1080.0 / levels[i].scale)));
    // Every level still fits the 64x128 window.
    EXPECT_GE(levels[i].image.width(), 64);
    EXPECT_GE(levels[i].image.height(), 128);
    scale *= pp.scaleFactor;
  }
}

// ------------------------------------------- incremental grid refresh

/// Mutates a pixel region, then checks tryUpdateCellGrid patches the old
/// grid into bitwise equality with a fresh full-image grid.
void checkIncrementalParity(const std::string& backend) {
  auto extractor =
      extract::makeExtractor(backend, extract::FeatureLayout::kBlockNorm);
  SyntheticVideo video(smallVideo(1, 13));
  Image before = video.frame(0).image;
  Image after = before;
  // Scribble over a region that is interior on the left and touches cell
  // boundaries on the right (exercises the border-extension path).
  Rng rng(3);
  for (int y = 100; y < 150; ++y) {
    for (int x = 64; x < 140; ++x) {
      after.at(x, y) = static_cast<float>(rng.uniform());
    }
  }
  hog::CellGrid grid = extractor->cellGrid(before);
  // Cells whose 1-px gradient stencil can see a changed pixel.
  const int cell = extractor->cellSize();
  extract::CellRect dirty;
  dirty.cx0 = (64 - 1) / cell;
  dirty.cy0 = (100 - 1) / cell;
  dirty.cx1 = (140 + 1 + cell - 1) / cell;
  dirty.cy1 = (150 + 1 + cell - 1) / cell;
  StatusOr<long> updated =
      extractor->tryUpdateCellGrid(after, {dirty}, grid);
  ASSERT_TRUE(updated.ok()) << updated.status().toString();
  EXPECT_GT(updated.value(), 0);
  const hog::CellGrid full = extractor->cellGrid(after);
  ASSERT_EQ(grid.data.size(), full.data.size());
  EXPECT_EQ(grid.data, full.data) << backend;
}

TEST(IncrementalGrid, HogParity) { checkIncrementalParity("hog"); }
TEST(IncrementalGrid, FixedpointParity) {
  checkIncrementalParity("fixedpoint");
}
TEST(IncrementalGrid, NapproxParity) { checkIncrementalParity("napprox"); }

TEST(IncrementalGrid, UpdateBlocksMatchesPrepareBlocks) {
  auto extractor =
      extract::makeExtractor("hog", extract::FeatureLayout::kBlockNorm);
  SyntheticVideo video(smallVideo(1, 13));
  Image before = video.frame(0).image;
  Image after = before;
  for (int y = 40; y < 80; ++y) {
    for (int x = 40; x < 96; ++x) after.at(x, y) = 0.9f;
  }
  hog::CellGrid grid = extractor->cellGrid(before);
  hog::BlockGrid blocks = extractor->prepareBlocks(grid);
  const int cell = extractor->cellSize();
  extract::CellRect dirty;
  dirty.cx0 = (40 - 1) / cell;
  dirty.cy0 = (40 - 1) / cell;
  dirty.cx1 = (96 + cell) / cell;
  dirty.cy1 = (80 + cell) / cell;
  ASSERT_TRUE(extractor->tryUpdateCellGrid(after, {dirty}, grid).ok());
  const long refreshed = extractor->updateBlocks(grid, {dirty}, blocks);
  EXPECT_GT(refreshed, 0);
  const hog::BlockGrid full = extractor->prepareBlocks(grid);
  ASSERT_EQ(blocks.data.size(), full.data.size());
  EXPECT_EQ(blocks.data, full.data);
}

TEST(IncrementalGrid, RejectsGeometryMismatch) {
  auto extractor =
      extract::makeExtractor("hog", extract::FeatureLayout::kBlockNorm);
  Image img(160, 160, 0.5f);
  hog::CellGrid wrong = extractor->cellGrid(Image(80, 80, 0.5f));
  extract::CellRect rect;
  rect.cx1 = 2;
  rect.cy1 = 2;
  EXPECT_FALSE(extractor->tryUpdateCellGrid(img, {rect}, wrong).ok());
}

// ----------------------------------------------------------- detectBatch

TEST(DetectBatch, OffModeMatchesPerFrameDetectAtAnyThreadCount) {
  ScopedTemporalEnv off("off");
  SyntheticVideo video(smallVideo(2, 31));
  std::vector<Image> frames;
  for (int f = 0; f < 3; ++f) frames.push_back(video.frame(f).image);
  const int restoreThreads = threadCount();
  for (int threads : {1, 4}) {
    setThreadCount(threads);
    GridDetector batchDetector = makeDetector("hog", true, true);
    GridDetector refDetector = makeDetector("hog", true, true);
    const BatchDetectResult batch = batchDetector.detectBatch(frames);
    EXPECT_FALSE(batch.temporalEnabled);
    ASSERT_EQ(batch.frames.size(), frames.size());
    for (std::size_t f = 0; f < frames.size(); ++f) {
      EXPECT_TRUE(batch.frames[f].stats.fullRecompute);
      const auto ref = refDetector.detect(frames[f]);
      expectSameDetections(batch.frames[f].detections, ref, "off-mode");
    }
  }
  setThreadCount(restoreThreads);
}

void checkTemporalParity(const std::string& backend) {
  SyntheticVideo video(smallVideo(2, 31));
  std::vector<Image> frames;
  for (int f = 0; f < 4; ++f) frames.push_back(video.frame(f).image);
  // Smoothing off: parity is a statement about the raw per-frame
  // detections, and the smoother intentionally modifies boxes.
  GridDetector temporalDetector = makeDetector(backend, true, false);
  GridDetector offDetector = makeDetector(backend, false, false);
  const BatchDetectResult temporal = temporalDetector.detectBatch(frames);
  const BatchDetectResult off = offDetector.detectBatch(frames);
  EXPECT_TRUE(temporal.temporalEnabled);
  EXPECT_FALSE(off.temporalEnabled);
  ASSERT_EQ(temporal.frames.size(), off.frames.size());
  long reused = 0;
  for (std::size_t f = 0; f < frames.size(); ++f) {
    expectSameDetections(temporal.frames[f].detections,
                         off.frames[f].detections, backend.c_str());
    reused += temporal.frames[f].stats.tilesReused;
  }
  // The burst is mostly static, so the temporal path must actually reuse.
  EXPECT_GT(reused, 0) << backend;
}

TEST(DetectBatch, TemporalMatchesFullRecomputeHog) {
  checkTemporalParity("hog");
}
TEST(DetectBatch, TemporalMatchesFullRecomputeFixedpoint) {
  checkTemporalParity("fixedpoint");
}

TEST(DetectBatch, StaticSceneReusesEverythingAfterFirstFrame) {
  SyntheticVideo video(smallVideo(0, 7));  // no actors: perfectly static
  std::vector<Image> frames(4, video.frame(0).image);
  GridDetector detector = makeDetector("hog", true, false);
  const BatchDetectResult batch = detector.detectBatch(frames);
  ASSERT_EQ(batch.frames.size(), 4u);
  EXPECT_TRUE(batch.frames[0].stats.fullRecompute);
  EXPECT_GT(batch.frames[0].stats.tilesRecomputed, 0);
  for (std::size_t f = 1; f < 4; ++f) {
    EXPECT_EQ(batch.frames[f].stats.tilesRecomputed, 0) << "frame " << f;
    EXPECT_EQ(batch.frames[f].stats.windowsRescored, 0) << "frame " << f;
    EXPECT_GT(batch.frames[f].stats.tilesReused, 0) << "frame " << f;
    expectSameDetections(batch.frames[f].detections,
                         batch.frames[0].detections, "static");
  }
}

TEST(DetectBatch, CachePersistsAcrossCallsAndResets) {
  SyntheticVideo video(smallVideo(1, 17));
  GridDetector detector = makeDetector("hog", true, false);
  const Image frame = video.frame(0).image;
  (void)detector.detectBatch({frame});
  // Second call, same frame: the cache carried over, everything reused.
  BatchDetectResult warm = detector.detectBatch({frame});
  ASSERT_EQ(warm.frames.size(), 1u);
  EXPECT_EQ(warm.frames[0].stats.tilesRecomputed, 0);
  detector.resetTemporalCache();
  BatchDetectResult cold = detector.detectBatch({frame});
  EXPECT_TRUE(cold.frames[0].stats.fullRecompute);
  EXPECT_GT(cold.frames[0].stats.tilesRecomputed, 0);
}

TEST(DetectBatch, DimensionChangeFallsBackToFullRecompute) {
  GridDetector detector = makeDetector("hog", true, false);
  SyntheticVideo small(smallVideo(1, 5));
  VideoParams bigParams = smallVideo(1, 5);
  bigParams.width = 400;
  bigParams.height = 304;
  SyntheticVideo big(bigParams);
  (void)detector.detectBatch({small.frame(0).image});
  const BatchDetectResult next = detector.detectBatch({big.frame(0).image});
  EXPECT_TRUE(next.frames[0].stats.fullRecompute);
}

TEST(DetectBatch, SmoothingDampsBoxJitterWithoutInventingBoxes) {
  core::TemporalSmoother smoother;
  vision::Detection det;
  det.score = 1.0f;
  det.box = {100.0f, 50.0f, 64.0f, 128.0f};
  auto out = smoother.apply({det});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].box.x, 100.0f);  // first sighting passes through
  vision::Detection moved = det;
  moved.box.x = 110.0f;
  out = smoother.apply({moved});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_GT(out[0].box.x, 100.0f);  // follows the motion...
  EXPECT_LT(out[0].box.x, 110.0f);  // ...but lags it (EMA)
  // A frame with no detections emits nothing (no invented boxes).
  EXPECT_TRUE(smoother.apply({}).empty());
  EXPECT_GT(smoother.activeTracks(), 0u);  // track coasts for a while
  smoother.reset();
  EXPECT_EQ(smoother.activeTracks(), 0u);
}

TEST(DetectBatch, FrameProviderOverloadIsLazy) {
  SyntheticVideo video(smallVideo(1, 23));
  GridDetector detector = makeDetector("hog", true, false);
  int rendered = 0;
  const BatchDetectResult batch =
      detector.detectBatch(3, [&](int f) {
        ++rendered;
        return video.frame(f).image;
      });
  EXPECT_EQ(rendered, 3);
  ASSERT_EQ(batch.frames.size(), 3u);
}

}  // namespace
}  // namespace pcnn
