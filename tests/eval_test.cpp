#include <gtest/gtest.h>

#include <cmath>

#include "eval/detection_eval.hpp"
#include "eval/pr_curve.hpp"
#include "eval/stats.hpp"

namespace pcnn::eval {
namespace {

using vision::Detection;
using vision::Rect;

ImageResult makeImage(std::vector<Detection> dets, std::vector<Rect> gts) {
  ImageResult result;
  result.detections = std::move(dets);
  result.groundTruth = std::move(gts);
  return result;
}

TEST(DetectionEval, PerfectDetection) {
  std::vector<ImageResult> results = {
      makeImage({{{0, 0, 64, 128}, 2.0f}}, {{0, 0, 64, 128}})};
  const Counts counts = evaluateAtThreshold(results, 0.0f);
  EXPECT_EQ(counts.truePositives, 1);
  EXPECT_EQ(counts.falsePositives, 0);
  EXPECT_EQ(counts.misses, 0);
}

TEST(DetectionEval, LowOverlapIsFalsePositiveAndMiss) {
  std::vector<ImageResult> results = {
      makeImage({{{100, 100, 64, 128}, 2.0f}}, {{0, 0, 64, 128}})};
  const Counts counts = evaluateAtThreshold(results, 0.0f);
  EXPECT_EQ(counts.truePositives, 0);
  EXPECT_EQ(counts.falsePositives, 1);
  EXPECT_EQ(counts.misses, 1);
}

TEST(DetectionEval, HalfOverlapCriterion) {
  // Shifted by 25% of width: IoU = 48*128 / (2*64*128 - 48*128) = 0.6 > 0.5.
  std::vector<ImageResult> results = {
      makeImage({{{16, 0, 64, 128}, 2.0f}}, {{0, 0, 64, 128}})};
  EXPECT_EQ(evaluateAtThreshold(results, 0.0f).truePositives, 1);

  // Shifted by 60% of width: IoU well below 0.5.
  results = {makeImage({{{40, 0, 64, 128}, 2.0f}}, {{0, 0, 64, 128}})};
  EXPECT_EQ(evaluateAtThreshold(results, 0.0f).truePositives, 0);
}

TEST(DetectionEval, OnlyOneDetectionMatchesEachGroundTruth) {
  std::vector<ImageResult> results = {makeImage(
      {{{0, 0, 64, 128}, 2.0f}, {{2, 2, 64, 128}, 1.5f}}, {{0, 0, 64, 128}})};
  const Counts counts = evaluateAtThreshold(results, 0.0f);
  EXPECT_EQ(counts.truePositives, 1);
  EXPECT_EQ(counts.falsePositives, 1);
}

TEST(DetectionEval, ThresholdFiltersDetections) {
  std::vector<ImageResult> results = {
      makeImage({{{0, 0, 64, 128}, 0.4f}}, {{0, 0, 64, 128}})};
  EXPECT_EQ(evaluateAtThreshold(results, 0.5f).truePositives, 0);
  EXPECT_EQ(evaluateAtThreshold(results, 0.5f).misses, 1);
}

TEST(DetectionEval, CurveMonotonicallyTradesOff) {
  // Two images: one with a good detection and a spurious one.
  std::vector<ImageResult> results = {
      makeImage({{{0, 0, 64, 128}, 0.9f}, {{300, 0, 64, 128}, 0.2f}},
                {{0, 0, 64, 128}}),
      makeImage({{{10, 10, 64, 128}, 0.5f}}, {{8, 8, 64, 128}})};
  const auto curve = missRateCurve(results);
  ASSERT_FALSE(curve.empty());
  // FPPI non-decreasing, miss rate non-increasing with threshold descending.
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_LE(curve[i - 1].fppi, curve[i].fppi + 1e-6f);
    EXPECT_GE(curve[i - 1].missRate, curve[i].missRate - 1e-6f);
  }
  // At the most permissive threshold everything is found.
  EXPECT_FLOAT_EQ(curve.back().missRate, 0.0f);
}

TEST(DetectionEval, EmptyResultsGiveEmptyCurve) {
  EXPECT_TRUE(missRateCurve({}).empty());
}

TEST(DetectionEval, LogAverageMissRateBounds) {
  std::vector<CurvePoint> perfect = {{1.0f, 0.0f, 0.0f}, {0.0f, 10.0f, 0.0f}};
  EXPECT_NEAR(logAverageMissRate(perfect), 1e-4f, 1e-5f);
  std::vector<CurvePoint> hopeless = {{1.0f, 0.0f, 1.0f}, {0.0f, 10.0f, 1.0f}};
  EXPECT_NEAR(logAverageMissRate(hopeless), 1.0f, 1e-5f);
  EXPECT_FLOAT_EQ(logAverageMissRate({}), 1.0f);
}

TEST(Stats, PearsonPerfectCorrelation) {
  std::vector<double> a = {1, 2, 3, 4, 5};
  std::vector<double> b = {2, 4, 6, 8, 10};
  EXPECT_NEAR(pearsonCorrelation(a, b), 1.0, 1e-12);
}

TEST(Stats, PearsonAntiCorrelation) {
  std::vector<double> a = {1, 2, 3};
  std::vector<double> b = {3, 2, 1};
  EXPECT_NEAR(pearsonCorrelation(a, b), -1.0, 1e-12);
}

TEST(Stats, PearsonZeroVariance) {
  std::vector<double> a = {1, 1, 1};
  std::vector<double> b = {1, 2, 3};
  EXPECT_EQ(pearsonCorrelation(a, b), 0.0);
}

TEST(Stats, PearsonLengthMismatchThrows) {
  EXPECT_THROW(
      pearsonCorrelation(std::vector<double>{1.0}, std::vector<double>{}),
      std::invalid_argument);
}

TEST(Stats, FloatOverload) {
  std::vector<float> a = {0.f, 1.f, 2.f};
  std::vector<float> b = {0.f, 2.f, 4.f};
  EXPECT_NEAR(pearsonCorrelation(a, b), 1.0, 1e-9);
}

TEST(Stats, Accuracy) {
  EXPECT_NEAR(accuracy({1, -1, 1, 1}, {1, -1, -1, 1}), 0.75, 1e-12);
  EXPECT_EQ(accuracy({}, {}), 0.0);
}

TEST(Stats, MeanAndStddev) {
  std::vector<double> values = {2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_NEAR(mean(values), 5.0, 1e-12);
  EXPECT_NEAR(stddev(values), std::sqrt(32.0 / 7.0), 1e-9);
  EXPECT_EQ(stddev({1.0}), 0.0);
}

TEST(PrCurve, PerfectDetectorHasUnitAp) {
  std::vector<ImageResult> results = {
      makeImage({{{0, 0, 64, 128}, 2.0f}}, {{0, 0, 64, 128}}),
      makeImage({{{10, 10, 64, 128}, 1.5f}}, {{10, 10, 64, 128}})};
  const auto curve = precisionRecallCurve(results);
  ASSERT_FALSE(curve.empty());
  EXPECT_NEAR(averagePrecision(curve), 1.0f, 1e-5f);
}

TEST(PrCurve, SpuriousDetectionsLowerAp) {
  std::vector<ImageResult> clean = {
      makeImage({{{0, 0, 64, 128}, 2.0f}}, {{0, 0, 64, 128}})};
  std::vector<ImageResult> noisy = {
      makeImage({{{0, 0, 64, 128}, 1.0f}, {{300, 300, 64, 128}, 2.0f}},
                {{0, 0, 64, 128}})};
  EXPECT_GT(averagePrecision(precisionRecallCurve(clean)),
            averagePrecision(precisionRecallCurve(noisy)));
}

TEST(PrCurve, RecallNonDecreasingWithThreshold) {
  std::vector<ImageResult> results = {
      makeImage({{{0, 0, 64, 128}, 0.9f}, {{300, 0, 64, 128}, 0.4f}},
                {{0, 0, 64, 128}, {300, 2, 64, 128}})};
  const auto curve = precisionRecallCurve(results);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].recall, curve[i - 1].recall - 1e-6f);
  }
}

TEST(PrCurve, EmptyInputs) {
  EXPECT_TRUE(precisionRecallCurve({}).empty());
  EXPECT_FLOAT_EQ(averagePrecision({}), 0.0f);
}

TEST(Stats, Rmse) {
  EXPECT_NEAR(rmse({1, 2, 3}, {1, 2, 3}), 0.0, 1e-12);
  EXPECT_NEAR(rmse({0, 0}, {3, 4}), std::sqrt(12.5), 1e-9);
}

}  // namespace
}  // namespace pcnn::eval
