// Observability layer: counter thread safety under the pool, span nesting
// round-tripped through the Chrome trace JSON it exports, gauges, windowed
// deltas and quantiles, the flight-recorder ring, the streaming exporter,
// disabled-mode no-op behaviour, and PCNN_TRACE / PCNN_METRICS /
// PCNN_METRICS_PERIOD_MS / PCNN_FLIGHT / PCNN_OBS env gating.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/parallel.hpp"
#include "obs/flight.hpp"
#include "obs/obs.hpp"

namespace pcnn {
namespace {

/// Saves and restores the runtime obs switches plus the metric/trace/
/// flight stores and the exporter thread, so each test starts clean and
/// leaves no global residue.
class ObsStateGuard {
 public:
  ObsStateGuard()
      : traceWas_(obs::traceEnabled()),
        metricsWas_(obs::metricsEnabled()),
        flightWas_(obs::flightEnabled()) {
    obs::stopMetricsExporter();
    obs::resetMetrics();
    obs::clearTrace();
    obs::clearFlightRecorder();
  }
  ~ObsStateGuard() {
    obs::stopMetricsExporter();
    obs::resetMetrics();
    obs::clearTrace();
    obs::clearFlightRecorder();
    obs::setTraceEnabled(traceWas_);
    obs::setMetricsEnabled(metricsWas_);
    obs::setFlightEnabled(flightWas_);
  }

 private:
  bool traceWas_;
  bool metricsWas_;
  bool flightWas_;
};

std::string readWholeFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (!f) return {};
  std::string text;
  char buf[4096];
  std::size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    text.append(buf, got);
  }
  std::fclose(f);
  return text;
}

// --- A minimal JSON reader, enough to parse back what obs exports --------

struct JsonValue {
  enum Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  const JsonValue* find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonReader {
 public:
  explicit JsonReader(const std::string& text) : text_(text) {}

  /// Parses the whole document; false on any syntax error or trailing
  /// garbage.
  bool parse(JsonValue& out) {
    pos_ = 0;
    if (!parseValue(out)) return false;
    skipWs();
    return pos_ == text_.size();
  }

 private:
  void skipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool consume(char c) {
    skipWs();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool parseString(std::string& out) {
    if (!consume('"')) return false;
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u':
            if (pos_ + 4 > text_.size()) return false;
            pos_ += 4;  // codepoint value irrelevant to these tests
            out += '?';
            break;
          default:
            return false;
        }
      } else {
        out += c;
      }
    }
    return false;  // unterminated
  }

  bool parseValue(JsonValue& out) {
    skipWs();
    if (pos_ >= text_.size()) return false;
    const char c = text_[pos_];
    if (c == '{') {
      ++pos_;
      out.kind = JsonValue::kObject;
      skipWs();
      if (consume('}')) return true;
      while (true) {
        std::string key;
        JsonValue value;
        if (!parseString(key) || !consume(':') || !parseValue(value)) {
          return false;
        }
        out.object.emplace_back(std::move(key), std::move(value));
        if (consume('}')) return true;
        if (!consume(',')) return false;
      }
    }
    if (c == '[') {
      ++pos_;
      out.kind = JsonValue::kArray;
      skipWs();
      if (consume(']')) return true;
      while (true) {
        JsonValue value;
        if (!parseValue(value)) return false;
        out.array.push_back(std::move(value));
        if (consume(']')) return true;
        if (!consume(',')) return false;
      }
    }
    if (c == '"') {
      out.kind = JsonValue::kString;
      return parseString(out.str);
    }
    if (text_.compare(pos_, 4, "true") == 0) {
      out.kind = JsonValue::kBool;
      out.boolean = true;
      pos_ += 4;
      return true;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      out.kind = JsonValue::kBool;
      pos_ += 5;
      return true;
    }
    if (text_.compare(pos_, 4, "null") == 0) {
      out.kind = JsonValue::kNull;
      pos_ += 4;
      return true;
    }
    // Number.
    char* end = nullptr;
    out.kind = JsonValue::kNumber;
    out.number = std::strtod(text_.c_str() + pos_, &end);
    if (end == text_.c_str() + pos_) return false;
    pos_ = static_cast<std::size_t>(end - text_.c_str());
    return true;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

// --- Counters & histograms ------------------------------------------------

TEST(ObsCounters, ThreadSafeUnderParallelFor) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "built with PCNN_OBS=OFF";
  ObsStateGuard guard;
  obs::setMetricsEnabled(true);

  obs::Counter& hits = obs::counter("test.parallel_hits");
  obs::LatencyHistogram& lat = obs::histogram("test.parallel_us");
  const long n = 20000;
  double expectedSum = 0.0;
  for (long i = 0; i < n; ++i) expectedSum += static_cast<double>(i % 7) + 1.0;
  setThreadCount(4);
  parallelFor(0, n, [&](long i) {
    hits.add();
    lat.record(static_cast<double>(i % 7) + 1.0);
  });
  setThreadCount(1);

  EXPECT_EQ(hits.value(), n);
  EXPECT_EQ(lat.count(), n);
  EXPECT_DOUBLE_EQ(lat.minMicros(), 1.0);
  EXPECT_DOUBLE_EQ(lat.maxMicros(), 7.0);
  EXPECT_NEAR(lat.sumMicros(), expectedSum, 1.0);
}

TEST(ObsCounters, SnapshotReportsCountersHistogramsAndTags) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "built with PCNN_OBS=OFF";
  ObsStateGuard guard;
  obs::setMetricsEnabled(true);

  obs::counter("test.snapshot_counter").add(42);
  obs::histogram("test.snapshot_us").record(3.0);
  obs::setTag("test.tag", "value");

  const obs::MetricsSnapshot snap = obs::snapshot();
  bool sawCounter = false, sawHist = false, sawTag = false;
  for (const auto& [name, value] : snap.counters) {
    if (name == "test.snapshot_counter") {
      sawCounter = true;
      EXPECT_EQ(value, 42);
    }
  }
  for (const auto& hist : snap.histograms) {
    if (hist.name == "test.snapshot_us") {
      sawHist = true;
      EXPECT_EQ(hist.count, 1);
    }
  }
  for (const auto& [name, value] : snap.tags) {
    if (name == "test.tag") {
      sawTag = true;
      EXPECT_EQ(value, "value");
    }
  }
  EXPECT_TRUE(sawCounter);
  EXPECT_TRUE(sawHist);
  EXPECT_TRUE(sawTag);

  // The JSON rendering of the same snapshot must parse back.
  JsonValue doc;
  EXPECT_TRUE(JsonReader(obs::snapshotJson()).parse(doc));
  ASSERT_EQ(doc.kind, JsonValue::kObject);
  const JsonValue* counters = doc.find("counters");
  ASSERT_NE(counters, nullptr);
  const JsonValue* counter = counters->find("test.snapshot_counter");
  ASSERT_NE(counter, nullptr);
  EXPECT_DOUBLE_EQ(counter->number, 42.0);
}

// --- Gauges ---------------------------------------------------------------

TEST(ObsGauges, SetAddAndSnapshotVisibility) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "built with PCNN_OBS=OFF";
  ObsStateGuard guard;
  obs::setMetricsEnabled(true);

  obs::Gauge& g = obs::gauge("test.gauge");
  g.set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.add(1.5);
  EXPECT_DOUBLE_EQ(g.value(), 4.0);
  g.set(-0.25);  // gauges are not monotonic
  EXPECT_DOUBLE_EQ(g.value(), -0.25);
  EXPECT_EQ(g.updateCount(), 3);

  // A gauge legitimately set to 0 is reported; a never-touched one is not.
  obs::gauge("test.gauge_zero").set(0.0);
  obs::gauge("test.gauge_untouched");
  const obs::MetricsSnapshot snap = obs::snapshot();
  bool sawSet = false, sawZero = false, sawUntouched = false;
  for (const auto& [name, value] : snap.gauges) {
    if (name == "test.gauge") {
      sawSet = true;
      EXPECT_DOUBLE_EQ(value, -0.25);
    }
    if (name == "test.gauge_zero") sawZero = true;
    if (name == "test.gauge_untouched") sawUntouched = true;
  }
  EXPECT_TRUE(sawSet);
  EXPECT_TRUE(sawZero);
  EXPECT_FALSE(sawUntouched);

  // The JSON snapshot carries the same gauge object.
  JsonValue doc;
  ASSERT_TRUE(JsonReader(obs::snapshotJson()).parse(doc));
  const JsonValue* gauges = doc.find("gauges");
  ASSERT_NE(gauges, nullptr);
  ASSERT_NE(gauges->find("test.gauge"), nullptr);
  EXPECT_NEAR(gauges->find("test.gauge")->number, -0.25, 1e-9);
}

TEST(ObsGauges, DisabledModeIsANoOp) {
  ObsStateGuard guard;
  obs::setMetricsEnabled(false);
  obs::Gauge& g = obs::gauge("test.gauge_disabled");
  g.set(7.0);
  g.add(3.0);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  EXPECT_EQ(g.updateCount(), 0);
}

// --- Windowed snapshots ---------------------------------------------------

TEST(ObsWindows, CounterDeltasArePerWindow) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "built with PCNN_OBS=OFF";
  ObsStateGuard guard;
  obs::setMetricsEnabled(true);
  obs::windowSnapshot();  // establish a baseline at the current values

  obs::Counter& c = obs::counter("test.win_counter");
  c.add(5);
  const obs::WindowSnapshot w1 = obs::windowSnapshot();
  c.add(3);
  const obs::WindowSnapshot w2 = obs::windowSnapshot();
  const obs::WindowSnapshot w3 = obs::windowSnapshot();

  auto deltaOf = [](const obs::WindowSnapshot& w, const std::string& name,
                    long fallback) {
    for (const auto& [n, v] : w.counters) {
      if (n == name) return v;
    }
    return fallback;
  };
  EXPECT_EQ(deltaOf(w1, "test.win_counter", -1), 5);
  EXPECT_EQ(deltaOf(w2, "test.win_counter", -1), 3);
  // An idle window omits the counter entirely (delta 0).
  EXPECT_EQ(deltaOf(w3, "test.win_counter", 0), 0);
  EXPECT_LT(w1.seq, w2.seq);
  EXPECT_LT(w2.seq, w3.seq);
  EXPECT_LE(w1.endUs, w2.endUs);

  // The cumulative value is untouched by windowing.
  EXPECT_EQ(c.value(), 8);

  // The NDJSON rendering of a window parses back.
  JsonValue doc;
  ASSERT_TRUE(JsonReader(obs::windowJson(w1)).parse(doc));
  const JsonValue* counters = doc.find("counters");
  ASSERT_NE(counters, nullptr);
  ASSERT_NE(counters->find("test.win_counter"), nullptr);
  EXPECT_DOUBLE_EQ(counters->find("test.win_counter")->number, 5.0);
  ASSERT_NE(doc.find("seq"), nullptr);
}

TEST(ObsWindows, QuantilesUnderConcurrentWriters) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "built with PCNN_OBS=OFF";
  ObsStateGuard guard;
  obs::setMetricsEnabled(true);
  obs::windowSnapshot();

  // 900 samples in the [2,4) us bucket and 100 in [64,128) us, recorded
  // from pool threads: p50 must land in the low bucket, p95/p99 in the
  // high one (interpolated within log2 buckets, so ranges not points).
  obs::LatencyHistogram& h = obs::histogram("test.win_us");
  setThreadCount(4);
  parallelFor(0, 1000, [&](long i) { h.record(i % 10 == 0 ? 100.0 : 3.0); });
  setThreadCount(1);

  const obs::WindowSnapshot w = obs::windowSnapshot();
  const obs::WindowHistogramStats* stats = nullptr;
  for (const auto& hist : w.histograms) {
    if (hist.name == "test.win_us") stats = &hist;
  }
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->count, 1000);
  EXPECT_NEAR(stats->sumUs, 900 * 3.0 + 100 * 100.0, 1.0);
  EXPECT_GE(stats->p50Us, 2.0);
  EXPECT_LE(stats->p50Us, 4.0);
  EXPECT_GE(stats->p95Us, 64.0);
  EXPECT_LE(stats->p95Us, 128.0);
  EXPECT_GE(stats->p99Us, 64.0);
  EXPECT_LE(stats->p99Us, 128.0);
  EXPECT_LE(stats->p50Us, stats->p95Us);
  EXPECT_LE(stats->p95Us, stats->p99Us);

  // The next window sees none of these samples.
  const obs::WindowSnapshot w2 = obs::windowSnapshot();
  for (const auto& hist : w2.histograms) {
    EXPECT_NE(hist.name, "test.win_us");
  }
}

TEST(ObsWindows, ResetRebaselinesInsteadOfNegativeDeltas) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "built with PCNN_OBS=OFF";
  ObsStateGuard guard;
  obs::setMetricsEnabled(true);
  obs::windowSnapshot();

  obs::counter("test.win_reset").add(100);
  obs::windowSnapshot();  // baseline now 100
  obs::counter("test.win_reset").add(10);
  obs::resetMetrics();  // value drops 110 -> 0 under the baseline
  obs::counter("test.win_reset").add(2);

  // The window spanning the reset reports no deltas -- flagged instead of
  // emitting -108.
  const obs::WindowSnapshot flagged = obs::windowSnapshot();
  EXPECT_TRUE(flagged.baselineReset);
  EXPECT_TRUE(flagged.counters.empty());
  EXPECT_TRUE(flagged.histograms.empty());

  // After rebaselining, windows are back to exact deltas.
  obs::counter("test.win_reset").add(4);
  const obs::WindowSnapshot next = obs::windowSnapshot();
  EXPECT_FALSE(next.baselineReset);
  long delta = -1;
  for (const auto& [n, v] : next.counters) {
    if (n == "test.win_reset") delta = v;
  }
  EXPECT_EQ(delta, 4);
}

// --- Flight recorder ------------------------------------------------------

TEST(ObsFlight, RingWraparoundKeepsNewestEventsInOrder) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "built with PCNN_OBS=OFF";
  ObsStateGuard guard;
  obs::setMetricsEnabled(false);
  obs::setFlightEnabled(true);

  // Overfill the calling thread's ring so it wraps: only the newest
  // kFlightCapacity events survive, still in recording order.
  const long total = obs::kFlightCapacity + 808;
  obs::Counter& c = obs::counter("test.flight_wrap");
  for (long i = 0; i < total; ++i) c.add(i + 1);
  EXPECT_EQ(c.value(), 0);  // metrics off: only the flight ring saw these
  EXPECT_EQ(obs::flightEventCount(), obs::kFlightCapacity);

  const std::string path = testing::TempDir() + "obs_flight_wrap.json";
  ASSERT_TRUE(obs::dumpFlightRecorder(path, "test"));
  const std::string text = readWholeFile(path);
  std::remove(path.c_str());

  JsonValue doc;
  ASSERT_TRUE(JsonReader(text).parse(doc));
  EXPECT_EQ(doc.find("reason")->str, "test");
  const JsonValue* events = doc.find("events");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->array.size(),
            static_cast<std::size_t>(obs::kFlightCapacity));

  // args were 1..total; the retained window must be the last capacity of
  // them, contiguous and increasing, with non-decreasing timestamps.
  double lastTs = -1.0;
  long expectedArg = total - obs::kFlightCapacity + 1;
  for (const JsonValue& event : events->array) {
    EXPECT_EQ(event.find("kind")->str, "count");
    EXPECT_EQ(event.find("name")->str, "test.flight_wrap");
    EXPECT_EQ(static_cast<long>(event.find("arg")->number), expectedArg);
    ++expectedArg;
    const double ts = event.find("ts_us")->number;
    EXPECT_GE(ts, lastTs);
    lastTs = ts;
  }

  obs::clearFlightRecorder();
  EXPECT_EQ(obs::flightEventCount(), 0);
}

TEST(ObsFlight, SpansLeaveBeginEndPairsAndFaultEventAutoDumpIsOnce) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "built with PCNN_OBS=OFF";
  ObsStateGuard guard;
  obs::setFlightEnabled(true);

  {
    PCNN_SPAN_ARG("test.flight_span", "item", 3);
  }
  EXPECT_EQ(obs::flightEventCount(), 2);

  const std::string path = testing::TempDir() + "obs_flight_span.json";
  ASSERT_TRUE(obs::dumpFlightRecorder(path, "test"));
  const std::string text = readWholeFile(path);
  std::remove(path.c_str());
  JsonValue doc;
  ASSERT_TRUE(JsonReader(text).parse(doc));
  const JsonValue* events = doc.find("events");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->array.size(), 2u);
  EXPECT_EQ(events->array[0].find("kind")->str, "begin");
  EXPECT_EQ(events->array[0].find("name")->str, "test.flight_span");
  EXPECT_DOUBLE_EQ(events->array[0].find("arg")->number, 3.0);
  EXPECT_EQ(events->array[1].find("kind")->str, "end");

  // Without a configured PCNN_FLIGHT path, fault events cannot auto-dump.
  EXPECT_FALSE(obs::flightAutoDumped());
  obs::noteFaultEvent("test.fault");
  EXPECT_FALSE(obs::flightAutoDumped());
}

// --- Streaming exporter ---------------------------------------------------

TEST(ObsExporter, PeriodicNdjsonStreamThroughEnv) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "built with PCNN_OBS=OFF";
  ObsStateGuard guard;
  const std::string path = testing::TempDir() + "obs_stream.ndjson";
  std::remove(path.c_str());

  ::setenv("PCNN_METRICS", path.c_str(), 1);
  ::setenv("PCNN_METRICS_PERIOD_MS", "20", 1);
  ::unsetenv("PCNN_OBS");
  obs::configureFromEnv();
  EXPECT_TRUE(obs::metricsExporterRunning());
  EXPECT_EQ(obs::configuredMetricsPeriodMs(), 20);
  obs::windowSnapshot();  // absorb the guard's reset epoch before counting

  obs::Counter& c = obs::counter("test.stream_counter");
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(90);
  while (std::chrono::steady_clock::now() < deadline) {
    c.add();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  ::unsetenv("PCNN_METRICS");
  ::unsetenv("PCNN_METRICS_PERIOD_MS");
  obs::configureFromEnv();
  EXPECT_FALSE(obs::metricsExporterRunning());

  // At least two windows over ~90ms of 20ms periods (plus the final
  // flush), each line independently parseable with increasing seq.
  const std::string text = readWholeFile(path);
  std::remove(path.c_str());
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start < text.size()) {
    const std::size_t nl = text.find('\n', start);
    if (nl == std::string::npos) break;
    if (nl > start) lines.push_back(text.substr(start, nl - start));
    start = nl + 1;
  }
  ASSERT_GE(lines.size(), 2u);
  double lastSeq = -1.0;
  long streamed = 0;
  for (const std::string& line : lines) {
    JsonValue doc;
    ASSERT_TRUE(JsonReader(line).parse(doc)) << line;
    const JsonValue* seq = doc.find("seq");
    ASSERT_NE(seq, nullptr);
    EXPECT_GT(seq->number, lastSeq);
    lastSeq = seq->number;
    const JsonValue* counters = doc.find("counters");
    if (counters != nullptr) {
      const JsonValue* delta = counters->find("test.stream_counter");
      if (delta != nullptr) {
        EXPECT_GT(delta->number, 0.0);  // per-window deltas, never totals
        streamed += static_cast<long>(delta->number);
      }
    }
  }
  // Deltas over all windows sum to at most the cumulative count (exactly,
  // unless a window raced the baseline absorption above).
  EXPECT_GT(streamed, 0);
  EXPECT_LE(streamed, c.value());
}

TEST(ObsExporter, PeriodWithoutPathStartsNothing) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "built with PCNN_OBS=OFF";
  ObsStateGuard guard;
  ::unsetenv("PCNN_METRICS");
  ::setenv("PCNN_METRICS_PERIOD_MS", "20", 1);
  ::unsetenv("PCNN_OBS");
  obs::configureFromEnv();
  EXPECT_FALSE(obs::metricsExporterRunning());
  ::unsetenv("PCNN_METRICS_PERIOD_MS");
  obs::configureFromEnv();
}

TEST(ObsExporter, ConcurrentResetNeverStreamsNegativeDeltas) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "built with PCNN_OBS=OFF";
  ObsStateGuard guard;
  obs::setMetricsEnabled(true);
  const std::string path = testing::TempDir() + "obs_stream_reset.ndjson";
  std::remove(path.c_str());

  obs::startMetricsExporter(path, 5);
  obs::Counter& c = obs::counter("test.reset_race");
  for (int burst = 0; burst < 8; ++burst) {
    for (int i = 0; i < 500; ++i) c.add();
    std::this_thread::sleep_for(std::chrono::milliseconds(4));
    obs::resetMetrics();  // races the exporter's windowSnapshot
  }
  // A quiet tail with no resets: these windows must emit normally (every
  // window spanning a reset above was legitimately skipped).
  for (int i = 0; i < 500; ++i) c.add();
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  obs::stopMetricsExporter();

  const std::string text = readWholeFile(path);
  std::remove(path.c_str());
  std::size_t start = 0, parsed = 0;
  while (start < text.size()) {
    const std::size_t nl = text.find('\n', start);
    if (nl == std::string::npos) break;
    const std::string line = text.substr(start, nl - start);
    start = nl + 1;
    if (line.empty()) continue;
    JsonValue doc;
    ASSERT_TRUE(JsonReader(line).parse(doc)) << line;
    ++parsed;
    const JsonValue* counters = doc.find("counters");
    if (counters == nullptr) continue;
    for (const auto& [name, value] : counters->object) {
      EXPECT_GE(value.number, 0.0) << name << " streamed a negative delta";
    }
  }
  EXPECT_GE(parsed, 1u);
}

// --- Prometheus exposition ------------------------------------------------

TEST(ObsProm, ExpositionTextDeclaresEachMetricOnce) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "built with PCNN_OBS=OFF";
  ObsStateGuard guard;
  obs::setMetricsEnabled(true);

  obs::counter("test.prom_counter").add(4);
  obs::gauge("test.prom_gauge").set(1.5);
  obs::histogram("test.prom_us").record(3.0);
  obs::setTag("test.prom_tag", "v");
  const std::string text = obs::expositionText();

  auto countOf = [&](const std::string& needle) {
    std::size_t n = 0, pos = 0;
    while ((pos = text.find(needle, pos)) != std::string::npos) {
      ++n;
      pos += needle.size();
    }
    return n;
  };
  // Names are prefixed and sanitized; one TYPE declaration per metric.
  EXPECT_EQ(countOf("# TYPE pcnn_test_prom_counter counter"), 1u);
  EXPECT_EQ(countOf("# TYPE pcnn_test_prom_gauge gauge"), 1u);
  EXPECT_EQ(countOf("# TYPE pcnn_test_prom_us histogram"), 1u);
  EXPECT_EQ(countOf("pcnn_test_prom_counter 4"), 1u);
  EXPECT_EQ(countOf("pcnn_test_prom_gauge 1.5"), 1u);
  // Histogram series: cumulative buckets ending at +Inf, plus sum/count.
  EXPECT_GE(countOf("pcnn_test_prom_us_bucket{le=\""), 2u);
  EXPECT_EQ(countOf("pcnn_test_prom_us_bucket{le=\"+Inf\"} 1"), 1u);
  EXPECT_EQ(countOf("pcnn_test_prom_us_count 1"), 1u);
  EXPECT_EQ(countOf("pcnn_test_prom_us_sum"), 1u);
  // Tags ride on a single info gauge.
  EXPECT_EQ(countOf("# TYPE pcnn_info gauge"), 1u);
  EXPECT_EQ(countOf("test_prom_tag=\"v\""), 1u);

  // Every TYPE'd metric name is known, and every sample line belongs to a
  // declared metric.
  std::vector<std::string> declared;
  std::size_t start = 0;
  while (start < text.size()) {
    const std::size_t nl = text.find('\n', start);
    const std::string line = text.substr(
        start, nl == std::string::npos ? std::string::npos : nl - start);
    start = nl == std::string::npos ? text.size() : nl + 1;
    if (line.empty()) continue;
    if (line.rfind("# TYPE ", 0) == 0) {
      const std::size_t sp = line.find(' ', 7);
      ASSERT_NE(sp, std::string::npos) << line;
      declared.push_back(line.substr(7, sp - 7));
      continue;
    }
    ASSERT_NE(line[0], '#') << "unexpected comment: " << line;
    bool known = false;
    for (const std::string& name : declared) {
      if (line.rfind(name, 0) == 0) known = true;
    }
    EXPECT_TRUE(known) << "sample without TYPE declaration: " << line;
  }
}

// --- Trace spans ----------------------------------------------------------

TEST(ObsSpans, NestingProducesWellFormedContainedTraceEvents) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "built with PCNN_OBS=OFF";
  ObsStateGuard guard;
  obs::setTraceEnabled(true);

  {
    PCNN_SPAN("test.outer");
    {
      PCNN_SPAN_ARG("test.inner", "item", 7);
      volatile long sink = 0;
      for (long i = 0; i < 10000; ++i) sink = sink + i;
    }
  }
  EXPECT_EQ(obs::traceEventCount(), 2);

  JsonValue doc;
  ASSERT_TRUE(JsonReader(obs::traceJson()).parse(doc));
  ASSERT_EQ(doc.kind, JsonValue::kObject);
  const JsonValue* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->kind, JsonValue::kArray);
  ASSERT_EQ(events->array.size(), 2u);

  const JsonValue* outer = nullptr;
  const JsonValue* inner = nullptr;
  for (const JsonValue& event : events->array) {
    const JsonValue* name = event.find("name");
    ASSERT_NE(name, nullptr);
    const JsonValue* ph = event.find("ph");
    ASSERT_NE(ph, nullptr);
    EXPECT_EQ(ph->str, "X");  // complete events
    if (name->str == "test.outer") outer = &event;
    if (name->str == "test.inner") inner = &event;
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);

  // The inner span's interval must nest inside the outer's.
  const double outerTs = outer->find("ts")->number;
  const double outerEnd = outerTs + outer->find("dur")->number;
  const double innerTs = inner->find("ts")->number;
  const double innerEnd = innerTs + inner->find("dur")->number;
  const double slack = 0.01;  // exported at microsecond precision
  EXPECT_GE(innerTs + slack, outerTs);
  EXPECT_LE(innerEnd, outerEnd + slack);

  // Both spans ran on this thread, so they share a tid.
  EXPECT_DOUBLE_EQ(outer->find("tid")->number, inner->find("tid")->number);
  // The span argument survives the export.
  const JsonValue* args = inner->find("args");
  ASSERT_NE(args, nullptr);
  ASSERT_NE(args->find("item"), nullptr);
  EXPECT_DOUBLE_EQ(args->find("item")->number, 7.0);
}

TEST(ObsSpans, SpansFromPoolThreadsAllExported) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "built with PCNN_OBS=OFF";
  ObsStateGuard guard;
  obs::setTraceEnabled(true);

  setThreadCount(4);
  parallelFor(0, 64, [](long) { PCNN_SPAN("test.pool_span"); });
  setThreadCount(1);

  // The pool itself emits a "pool.job" span around the parallelFor, so
  // count only our spans: all 64 must survive the per-thread buffers.
  EXPECT_GE(obs::traceEventCount(), 64);
  JsonValue doc;
  ASSERT_TRUE(JsonReader(obs::traceJson()).parse(doc));
  const JsonValue* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  long poolSpans = 0;
  for (const JsonValue& event : events->array) {
    const JsonValue* name = event.find("name");
    ASSERT_NE(name, nullptr);
    if (name->str == "test.pool_span") ++poolSpans;
  }
  EXPECT_EQ(poolSpans, 64);
}

// --- Disabled mode --------------------------------------------------------

TEST(ObsDisabled, RecordsNothingAndSnapshotIsEmpty) {
  ObsStateGuard guard;
  obs::setTraceEnabled(false);
  obs::setMetricsEnabled(false);

  obs::counter("test.disabled_counter").add(5);
  obs::histogram("test.disabled_us").record(1.0);
  obs::setTag("test.disabled_tag", "x");
  {
    PCNN_SPAN("test.disabled_span");
  }

  EXPECT_TRUE(obs::snapshot().empty());
  EXPECT_EQ(obs::traceEventCount(), 0);

  // The empty exports are still valid JSON documents.
  JsonValue metrics;
  EXPECT_TRUE(JsonReader(obs::snapshotJson()).parse(metrics));
  JsonValue trace;
  ASSERT_TRUE(JsonReader(obs::traceJson()).parse(trace));
  const JsonValue* events = trace.find("traceEvents");
  ASSERT_NE(events, nullptr);
  EXPECT_TRUE(events->array.empty());
}

// --- Environment gating ---------------------------------------------------

TEST(ObsEnv, GatingRoundTripsThroughConfigureFromEnv) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "built with PCNN_OBS=OFF";
  ObsStateGuard guard;
  const std::string tracePath = testing::TempDir() + "obs_env_trace.json";

  ::setenv("PCNN_TRACE", tracePath.c_str(), 1);
  ::setenv("PCNN_METRICS", "stderr", 1);
  ::unsetenv("PCNN_OBS");
  obs::configureFromEnv();
  EXPECT_TRUE(obs::traceEnabled());
  EXPECT_TRUE(obs::metricsEnabled());
  EXPECT_EQ(obs::configuredTracePath(), tracePath);
  EXPECT_EQ(obs::configuredMetricsPath(), "stderr");

  // PCNN_OBS=off is a master kill switch over both.
  ::setenv("PCNN_OBS", "off", 1);
  obs::configureFromEnv();
  EXPECT_FALSE(obs::traceEnabled());
  EXPECT_FALSE(obs::metricsEnabled());
  EXPECT_EQ(obs::configuredTracePath(), "");
  EXPECT_EQ(obs::configuredMetricsPath(), "");

  // Clearing the environment turns everything back off cleanly.
  ::unsetenv("PCNN_TRACE");
  ::unsetenv("PCNN_METRICS");
  ::unsetenv("PCNN_OBS");
  obs::configureFromEnv();
  EXPECT_FALSE(obs::traceEnabled());
  EXPECT_FALSE(obs::metricsEnabled());
  EXPECT_EQ(obs::configuredTracePath(), "");
  EXPECT_EQ(obs::configuredMetricsPath(), "");
}

TEST(ObsExport, WriteTraceProducesParsableFile) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "built with PCNN_OBS=OFF";
  ObsStateGuard guard;
  obs::setTraceEnabled(true);
  {
    PCNN_SPAN("test.file_span");
  }
  const std::string path = testing::TempDir() + "obs_write_trace.json";
  ASSERT_TRUE(obs::writeTrace(path));

  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::string text;
  char buf[4096];
  std::size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    text.append(buf, got);
  }
  std::fclose(f);
  std::remove(path.c_str());

  JsonValue doc;
  ASSERT_TRUE(JsonReader(text).parse(doc));
  const JsonValue* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  EXPECT_EQ(events->array.size(), 1u);
}

}  // namespace
}  // namespace pcnn
