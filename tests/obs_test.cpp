// Observability layer: counter thread safety under the pool, span nesting
// round-tripped through the Chrome trace JSON it exports, disabled-mode
// no-op behaviour, and PCNN_TRACE / PCNN_METRICS / PCNN_OBS env gating.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "common/parallel.hpp"
#include "obs/obs.hpp"

namespace pcnn {
namespace {

/// Saves and restores the runtime obs switches plus the metric/trace
/// stores, so each test starts clean and leaves no global residue.
class ObsStateGuard {
 public:
  ObsStateGuard()
      : traceWas_(obs::traceEnabled()), metricsWas_(obs::metricsEnabled()) {
    obs::resetMetrics();
    obs::clearTrace();
  }
  ~ObsStateGuard() {
    obs::resetMetrics();
    obs::clearTrace();
    obs::setTraceEnabled(traceWas_);
    obs::setMetricsEnabled(metricsWas_);
  }

 private:
  bool traceWas_;
  bool metricsWas_;
};

// --- A minimal JSON reader, enough to parse back what obs exports --------

struct JsonValue {
  enum Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  const JsonValue* find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonReader {
 public:
  explicit JsonReader(const std::string& text) : text_(text) {}

  /// Parses the whole document; false on any syntax error or trailing
  /// garbage.
  bool parse(JsonValue& out) {
    pos_ = 0;
    if (!parseValue(out)) return false;
    skipWs();
    return pos_ == text_.size();
  }

 private:
  void skipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool consume(char c) {
    skipWs();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool parseString(std::string& out) {
    if (!consume('"')) return false;
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u':
            if (pos_ + 4 > text_.size()) return false;
            pos_ += 4;  // codepoint value irrelevant to these tests
            out += '?';
            break;
          default:
            return false;
        }
      } else {
        out += c;
      }
    }
    return false;  // unterminated
  }

  bool parseValue(JsonValue& out) {
    skipWs();
    if (pos_ >= text_.size()) return false;
    const char c = text_[pos_];
    if (c == '{') {
      ++pos_;
      out.kind = JsonValue::kObject;
      skipWs();
      if (consume('}')) return true;
      while (true) {
        std::string key;
        JsonValue value;
        if (!parseString(key) || !consume(':') || !parseValue(value)) {
          return false;
        }
        out.object.emplace_back(std::move(key), std::move(value));
        if (consume('}')) return true;
        if (!consume(',')) return false;
      }
    }
    if (c == '[') {
      ++pos_;
      out.kind = JsonValue::kArray;
      skipWs();
      if (consume(']')) return true;
      while (true) {
        JsonValue value;
        if (!parseValue(value)) return false;
        out.array.push_back(std::move(value));
        if (consume(']')) return true;
        if (!consume(',')) return false;
      }
    }
    if (c == '"') {
      out.kind = JsonValue::kString;
      return parseString(out.str);
    }
    if (text_.compare(pos_, 4, "true") == 0) {
      out.kind = JsonValue::kBool;
      out.boolean = true;
      pos_ += 4;
      return true;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      out.kind = JsonValue::kBool;
      pos_ += 5;
      return true;
    }
    if (text_.compare(pos_, 4, "null") == 0) {
      out.kind = JsonValue::kNull;
      pos_ += 4;
      return true;
    }
    // Number.
    char* end = nullptr;
    out.kind = JsonValue::kNumber;
    out.number = std::strtod(text_.c_str() + pos_, &end);
    if (end == text_.c_str() + pos_) return false;
    pos_ = static_cast<std::size_t>(end - text_.c_str());
    return true;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

// --- Counters & histograms ------------------------------------------------

TEST(ObsCounters, ThreadSafeUnderParallelFor) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "built with PCNN_OBS=OFF";
  ObsStateGuard guard;
  obs::setMetricsEnabled(true);

  obs::Counter& hits = obs::counter("test.parallel_hits");
  obs::LatencyHistogram& lat = obs::histogram("test.parallel_us");
  const long n = 20000;
  double expectedSum = 0.0;
  for (long i = 0; i < n; ++i) expectedSum += static_cast<double>(i % 7) + 1.0;
  setThreadCount(4);
  parallelFor(0, n, [&](long i) {
    hits.add();
    lat.record(static_cast<double>(i % 7) + 1.0);
  });
  setThreadCount(1);

  EXPECT_EQ(hits.value(), n);
  EXPECT_EQ(lat.count(), n);
  EXPECT_DOUBLE_EQ(lat.minMicros(), 1.0);
  EXPECT_DOUBLE_EQ(lat.maxMicros(), 7.0);
  EXPECT_NEAR(lat.sumMicros(), expectedSum, 1.0);
}

TEST(ObsCounters, SnapshotReportsCountersHistogramsAndTags) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "built with PCNN_OBS=OFF";
  ObsStateGuard guard;
  obs::setMetricsEnabled(true);

  obs::counter("test.snapshot_counter").add(42);
  obs::histogram("test.snapshot_us").record(3.0);
  obs::setTag("test.tag", "value");

  const obs::MetricsSnapshot snap = obs::snapshot();
  bool sawCounter = false, sawHist = false, sawTag = false;
  for (const auto& [name, value] : snap.counters) {
    if (name == "test.snapshot_counter") {
      sawCounter = true;
      EXPECT_EQ(value, 42);
    }
  }
  for (const auto& hist : snap.histograms) {
    if (hist.name == "test.snapshot_us") {
      sawHist = true;
      EXPECT_EQ(hist.count, 1);
    }
  }
  for (const auto& [name, value] : snap.tags) {
    if (name == "test.tag") {
      sawTag = true;
      EXPECT_EQ(value, "value");
    }
  }
  EXPECT_TRUE(sawCounter);
  EXPECT_TRUE(sawHist);
  EXPECT_TRUE(sawTag);

  // The JSON rendering of the same snapshot must parse back.
  JsonValue doc;
  EXPECT_TRUE(JsonReader(obs::snapshotJson()).parse(doc));
  ASSERT_EQ(doc.kind, JsonValue::kObject);
  const JsonValue* counters = doc.find("counters");
  ASSERT_NE(counters, nullptr);
  const JsonValue* counter = counters->find("test.snapshot_counter");
  ASSERT_NE(counter, nullptr);
  EXPECT_DOUBLE_EQ(counter->number, 42.0);
}

// --- Trace spans ----------------------------------------------------------

TEST(ObsSpans, NestingProducesWellFormedContainedTraceEvents) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "built with PCNN_OBS=OFF";
  ObsStateGuard guard;
  obs::setTraceEnabled(true);

  {
    PCNN_SPAN("test.outer");
    {
      PCNN_SPAN_ARG("test.inner", "item", 7);
      volatile long sink = 0;
      for (long i = 0; i < 10000; ++i) sink = sink + i;
    }
  }
  EXPECT_EQ(obs::traceEventCount(), 2);

  JsonValue doc;
  ASSERT_TRUE(JsonReader(obs::traceJson()).parse(doc));
  ASSERT_EQ(doc.kind, JsonValue::kObject);
  const JsonValue* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->kind, JsonValue::kArray);
  ASSERT_EQ(events->array.size(), 2u);

  const JsonValue* outer = nullptr;
  const JsonValue* inner = nullptr;
  for (const JsonValue& event : events->array) {
    const JsonValue* name = event.find("name");
    ASSERT_NE(name, nullptr);
    const JsonValue* ph = event.find("ph");
    ASSERT_NE(ph, nullptr);
    EXPECT_EQ(ph->str, "X");  // complete events
    if (name->str == "test.outer") outer = &event;
    if (name->str == "test.inner") inner = &event;
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);

  // The inner span's interval must nest inside the outer's.
  const double outerTs = outer->find("ts")->number;
  const double outerEnd = outerTs + outer->find("dur")->number;
  const double innerTs = inner->find("ts")->number;
  const double innerEnd = innerTs + inner->find("dur")->number;
  const double slack = 0.01;  // exported at microsecond precision
  EXPECT_GE(innerTs + slack, outerTs);
  EXPECT_LE(innerEnd, outerEnd + slack);

  // Both spans ran on this thread, so they share a tid.
  EXPECT_DOUBLE_EQ(outer->find("tid")->number, inner->find("tid")->number);
  // The span argument survives the export.
  const JsonValue* args = inner->find("args");
  ASSERT_NE(args, nullptr);
  ASSERT_NE(args->find("item"), nullptr);
  EXPECT_DOUBLE_EQ(args->find("item")->number, 7.0);
}

TEST(ObsSpans, SpansFromPoolThreadsAllExported) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "built with PCNN_OBS=OFF";
  ObsStateGuard guard;
  obs::setTraceEnabled(true);

  setThreadCount(4);
  parallelFor(0, 64, [](long) { PCNN_SPAN("test.pool_span"); });
  setThreadCount(1);

  // The pool itself emits a "pool.job" span around the parallelFor, so
  // count only our spans: all 64 must survive the per-thread buffers.
  EXPECT_GE(obs::traceEventCount(), 64);
  JsonValue doc;
  ASSERT_TRUE(JsonReader(obs::traceJson()).parse(doc));
  const JsonValue* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  long poolSpans = 0;
  for (const JsonValue& event : events->array) {
    const JsonValue* name = event.find("name");
    ASSERT_NE(name, nullptr);
    if (name->str == "test.pool_span") ++poolSpans;
  }
  EXPECT_EQ(poolSpans, 64);
}

// --- Disabled mode --------------------------------------------------------

TEST(ObsDisabled, RecordsNothingAndSnapshotIsEmpty) {
  ObsStateGuard guard;
  obs::setTraceEnabled(false);
  obs::setMetricsEnabled(false);

  obs::counter("test.disabled_counter").add(5);
  obs::histogram("test.disabled_us").record(1.0);
  obs::setTag("test.disabled_tag", "x");
  {
    PCNN_SPAN("test.disabled_span");
  }

  EXPECT_TRUE(obs::snapshot().empty());
  EXPECT_EQ(obs::traceEventCount(), 0);

  // The empty exports are still valid JSON documents.
  JsonValue metrics;
  EXPECT_TRUE(JsonReader(obs::snapshotJson()).parse(metrics));
  JsonValue trace;
  ASSERT_TRUE(JsonReader(obs::traceJson()).parse(trace));
  const JsonValue* events = trace.find("traceEvents");
  ASSERT_NE(events, nullptr);
  EXPECT_TRUE(events->array.empty());
}

// --- Environment gating ---------------------------------------------------

TEST(ObsEnv, GatingRoundTripsThroughConfigureFromEnv) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "built with PCNN_OBS=OFF";
  ObsStateGuard guard;
  const std::string tracePath = testing::TempDir() + "obs_env_trace.json";

  ::setenv("PCNN_TRACE", tracePath.c_str(), 1);
  ::setenv("PCNN_METRICS", "stderr", 1);
  ::unsetenv("PCNN_OBS");
  obs::configureFromEnv();
  EXPECT_TRUE(obs::traceEnabled());
  EXPECT_TRUE(obs::metricsEnabled());
  EXPECT_EQ(obs::configuredTracePath(), tracePath);
  EXPECT_EQ(obs::configuredMetricsPath(), "stderr");

  // PCNN_OBS=off is a master kill switch over both.
  ::setenv("PCNN_OBS", "off", 1);
  obs::configureFromEnv();
  EXPECT_FALSE(obs::traceEnabled());
  EXPECT_FALSE(obs::metricsEnabled());
  EXPECT_EQ(obs::configuredTracePath(), "");
  EXPECT_EQ(obs::configuredMetricsPath(), "");

  // Clearing the environment turns everything back off cleanly.
  ::unsetenv("PCNN_TRACE");
  ::unsetenv("PCNN_METRICS");
  ::unsetenv("PCNN_OBS");
  obs::configureFromEnv();
  EXPECT_FALSE(obs::traceEnabled());
  EXPECT_FALSE(obs::metricsEnabled());
  EXPECT_EQ(obs::configuredTracePath(), "");
  EXPECT_EQ(obs::configuredMetricsPath(), "");
}

TEST(ObsExport, WriteTraceProducesParsableFile) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "built with PCNN_OBS=OFF";
  ObsStateGuard guard;
  obs::setTraceEnabled(true);
  {
    PCNN_SPAN("test.file_span");
  }
  const std::string path = testing::TempDir() + "obs_write_trace.json";
  ASSERT_TRUE(obs::writeTrace(path));

  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::string text;
  char buf[4096];
  std::size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    text.append(buf, got);
  }
  std::fclose(f);
  std::remove(path.c_str());

  JsonValue doc;
  ASSERT_TRUE(JsonReader(text).parse(doc));
  const JsonValue* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  EXPECT_EQ(events->array.size(), 1u);
}

}  // namespace
}  // namespace pcnn
