// Conformance suite for the polymorphic extractor layer: every registered
// backend, in both feature layouts, must honour the FeatureExtractor
// contract -- featureDim() is truthful, the cached-grid slicing path is
// bitwise-identical to standalone extraction, and batchFeatures matches
// the sequential loop at any thread count.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "core/pipeline.hpp"
#include "extract/backends.hpp"
#include "extract/extractor.hpp"
#include "extract/registry.hpp"
#include "vision/synth.hpp"

namespace pcnn::extract {
namespace {

class ThreadCountGuard {
 public:
  explicit ThreadCountGuard(int n) : saved_(threadCount()) {
    setThreadCount(n);
  }
  ~ThreadCountGuard() { setThreadCount(saved_); }

 private:
  int saved_;
};

vision::Image texturedImage(int width, int height, std::uint64_t seed) {
  Rng rng(seed);
  return vision::valueNoise(width, height, 16, 0.5f, 0.4f, rng);
}

std::vector<vision::Image> texturedWindows(int count, std::uint64_t seed) {
  std::vector<vision::Image> windows;
  windows.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    windows.push_back(
        texturedImage(64, 128, seed + static_cast<std::uint64_t>(i)));
  }
  return windows;
}

/// Deterministic specs: extraction consumes no randomness, so every path
/// (standalone, cached-grid, batch at any thread count) must agree bitwise.
const std::vector<std::string>& deterministicSpecs() {
  static const std::vector<std::string> specs = {
      "hog", "fixedpoint", "napprox", "napprox:64spike", "parrot"};
  return specs;
}

const std::vector<FeatureLayout>& bothLayouts() {
  static const std::vector<FeatureLayout> layouts = {FeatureLayout::kFlatCell,
                                                     FeatureLayout::kBlockNorm};
  return layouts;
}

std::string caseName(const std::string& spec, FeatureLayout layout) {
  return spec + "/" + layoutName(layout);
}

TEST(ExtractorConformance, FeatureDimMatchesActualVectorLength) {
  const vision::Image window = texturedImage(64, 128, 11);
  for (const auto& spec : deterministicSpecs()) {
    for (FeatureLayout layout : bothLayouts()) {
      auto ex = makeExtractor(spec, layout);
      SCOPED_TRACE(caseName(spec, layout));
      const auto features = ex->windowFeatures(window);
      EXPECT_EQ(static_cast<int>(features.size()), ex->featureDim());
      const int cells = ex->windowCellsX() * ex->windowCellsY();
      if (layout == FeatureLayout::kFlatCell) {
        EXPECT_EQ(ex->featureDim(), cells * ex->bins());
      } else {
        EXPECT_EQ(ex->featureDim(), (ex->windowCellsX() - 1) *
                                        (ex->windowCellsY() - 1) * 4 *
                                        ex->bins());
      }
    }
  }
}

TEST(ExtractorConformance, WindowFeaturesMatchesGridPathBitwise) {
  const vision::Image window = texturedImage(64, 128, 23);
  for (const auto& spec : deterministicSpecs()) {
    for (FeatureLayout layout : bothLayouts()) {
      auto ex = makeExtractor(spec, layout);
      SCOPED_TRACE(caseName(spec, layout));
      const auto direct = ex->windowFeatures(window);
      const auto viaGrid = ex->windowFromGrid(ex->cellGrid(window), 0, 0);
      EXPECT_EQ(direct, viaGrid);
    }
  }
}

TEST(ExtractorConformance, GridSlicingMatchesStandaloneSubgrid) {
  // A window sliced out of a big image's grid at cell offset (cx0, cy0)
  // must match assembling the corresponding sub-grid standalone: slicing
  // is pure indexing, independent of where the window sits in the level.
  const vision::Image scene = texturedImage(160, 224, 37);
  for (const auto& spec : deterministicSpecs()) {
    for (FeatureLayout layout : bothLayouts()) {
      auto ex = makeExtractor(spec, layout);
      SCOPED_TRACE(caseName(spec, layout));
      const hog::CellGrid grid = ex->cellGrid(scene);
      const int wx = ex->windowCellsX();
      const int wy = ex->windowCellsY();
      for (const auto& [cx0, cy0] : {std::pair{0, 0}, std::pair{3, 2},
                                    std::pair{grid.cellsX - wx,
                                              grid.cellsY - wy}}) {
        hog::CellGrid sub;
        sub.cellsX = wx;
        sub.cellsY = wy;
        sub.bins = grid.bins;
        sub.data.reserve(static_cast<std::size_t>(wx) * wy * grid.bins);
        for (int cy = 0; cy < wy; ++cy) {
          for (int cx = 0; cx < wx; ++cx) {
            const auto* cell = grid.cell(cx0 + cx, cy0 + cy);
            sub.data.insert(sub.data.end(), cell, cell + grid.bins);
          }
        }
        EXPECT_EQ(ex->windowFromGrid(grid, cx0, cy0),
                  ex->windowFromGrid(sub, 0, 0))
            << "offset (" << cx0 << ", " << cy0 << ")";
      }
    }
  }
}

TEST(ExtractorConformance, BatchMatchesSequentialLoopAtAnyThreadCount) {
  const auto windows = texturedWindows(6, 41);
  for (const auto& spec : deterministicSpecs()) {
    for (FeatureLayout layout : bothLayouts()) {
      SCOPED_TRACE(caseName(spec, layout));
      std::vector<std::vector<float>> sequential;
      {
        auto ex = makeExtractor(spec, layout);
        for (const auto& window : windows) {
          sequential.push_back(ex->windowFeatures(window));
        }
      }
      for (int threads : {1, 4}) {
        ThreadCountGuard guard(threads);
        auto ex = makeExtractor(spec, layout);
        EXPECT_EQ(ex->batchFeatures(windows), sequential)
            << threads << " threads";
      }
    }
  }
}

TEST(ExtractorConformance, StochasticParrotBatchIsThreadCountIndependent) {
  // A coding-noise realization depends only on the extractor's RNG stream
  // position, never on pool scheduling: two fresh identically-seeded
  // extractors produce the same batch at 1 and at 4 threads.
  const auto windows = texturedWindows(5, 53);
  std::vector<std::vector<float>> oneThread;
  {
    ThreadCountGuard guard(1);
    auto ex = makeExtractor("parrot:4spike", FeatureLayout::kFlatCell);
    oneThread = ex->batchFeatures(windows);
  }
  ThreadCountGuard guard(4);
  auto ex = makeExtractor("parrot:4spike", FeatureLayout::kFlatCell);
  EXPECT_EQ(ex->batchFeatures(windows), oneThread);
}

TEST(ExtractorRegistry, SpecVariantsConstructAndReportMetadata) {
  auto parrot4 = makeExtractor("parrot:4spike");
  EXPECT_EQ(parrot4->info().spikeWindow, 4);
  EXPECT_EQ(parrot4->info().coding, CodingScheme::kStochasticStream);

  auto napprox64 = makeExtractor("napprox:64spike");
  EXPECT_EQ(napprox64->info().spikeWindow, 64);
  EXPECT_EQ(napprox64->info().coding, CodingScheme::kRateAccumulate);

  auto fixed = makeExtractor("fixedpoint");
  EXPECT_TRUE(fixed->info().fpgaBaseline);
}

TEST(ExtractorRegistry, KnowsExactlyTheFourBackends) {
  const auto names = ExtractorRegistry::instance().names();
  EXPECT_EQ(names, (std::vector<std::string>{"fixedpoint", "hog", "napprox",
                                             "parrot"}));
  EXPECT_TRUE(ExtractorRegistry::instance().contains("parrot"));
  EXPECT_FALSE(ExtractorRegistry::instance().contains("resnet"));
}

TEST(ExtractorRegistry, RejectsUnknownSpecs) {
  EXPECT_THROW(makeExtractor("resnet"), std::invalid_argument);
  EXPECT_THROW(makeExtractor("hog:weird"), std::invalid_argument);
  EXPECT_THROW(makeExtractor("parrot:spike"), std::invalid_argument);
}

TEST(ExtractorPower, Table2RowsComeFromRegistryMetadata) {
  const auto rows = table2FromRegistry();
  ASSERT_EQ(rows.size(), table2Specs().size());
  // Row 0 is the FPGA baseline at its measured 8.6 W system power.
  EXPECT_NEAR(rows[0].watts, 8.6, 1e-6);
  // Software-only extractors report no hardware deployment.
  EXPECT_FALSE(makeExtractor("hog")->powerEstimate().has_value());
  EXPECT_FALSE(makeExtractor("napprox")->powerEstimate().has_value());
  EXPECT_TRUE(makeExtractor("parrot:32spike")->powerEstimate().has_value());
}

TEST(ExtractorPower, ResourceBudgetDerivesFromInfo) {
  const auto budget =
      core::makeResourceBudget(makeExtractor("parrot:4spike")->info());
  EXPECT_EQ(budget.parrotCoresPerCell, 8);  // the paper's per-cell count
  EXPECT_EQ(budget.parrotExtractorCores(), 1024);
  EXPECT_EQ(budget.combinedCores(), 3888);
}

}  // namespace
}  // namespace pcnn::extract
