#include <gtest/gtest.h>

#include <cmath>

#include "power/power.hpp"

namespace pcnn::power {
namespace {

TEST(Workload, CellCountsMatchPaper) {
  const FullHdWorkload workload;
  // Sec. 5.2: "a total of 57749 cells per image".
  EXPECT_EQ(workload.cellsPerFrame(), 57749);
  // "the system should have an overall throughput of 1.5 million cells/s".
  EXPECT_NEAR(workload.cellsPerSecond(), 1.5e6, 0.01e6);
}

TEST(PowerModel, CorePowerMatchesChipSpec) {
  EXPECT_NEAR(TrueNorthPowerModel::corePowerWatts(), 65e-3 / 4096, 1e-9);
}

TEST(PowerModel, NApproxMatchesPaperScale) {
  const TrueNorthPowerModel model;
  const auto estimate = model.napprox(FullHdWorkload{});
  // "a single NApprox HoG module ... can provide a throughput of 15
  // cells/sec" and the deployment needs "nearly 650 TrueNorth chips" at
  // ~40 W.
  EXPECT_NEAR(estimate.cellsPerSecondPerModule, 15.0, 0.1);
  EXPECT_NEAR(estimate.chips, 650.0, 30.0);
  EXPECT_NEAR(estimate.watts, 40.0, 3.0);
}

TEST(PowerModel, Parrot32SpikeMatchesPaper) {
  const TrueNorthPowerModel model;
  const auto estimate = model.parrot(FullHdWorkload{}, 32);
  // "each parrot HoG module provides a throughput of 31 cells/sec" ->
  // 6.15 W total.
  EXPECT_NEAR(estimate.cellsPerSecondPerModule, 31.25, 0.3);
  EXPECT_NEAR(estimate.watts, 6.15, 0.25);
}

TEST(PowerModel, Parrot4SpikeMatchesPaper) {
  const TrueNorthPowerModel model;
  const auto estimate = model.parrot(FullHdWorkload{}, 4);
  EXPECT_NEAR(estimate.watts, 0.768, 0.03);  // 768 mW
}

TEST(PowerModel, Parrot1SpikeMatchesPaper) {
  const TrueNorthPowerModel model;
  const auto estimate = model.parrot(FullHdWorkload{}, 1);
  EXPECT_NEAR(estimate.cellsPerSecondPerModule, 1000.0, 1.0);
  EXPECT_NEAR(estimate.watts, 0.192, 0.01);  // 192 mW
}

TEST(PowerModel, RatioRangeMatchesAbstract) {
  // "more power efficient ... by a factor of 6.5x-208x".
  const auto [low, high] = napproxOverParrotRatio();
  EXPECT_NEAR(low, 6.5, 0.4);
  EXPECT_NEAR(high, 208.0, 12.0);
}

TEST(PowerModel, Table2RowsComplete) {
  const auto rows = table2();
  ASSERT_EQ(rows.size(), 5u);
  EXPECT_NEAR(rows[0].watts, 8.6, 1e-9);   // FPGA system
  EXPECT_GT(rows[1].watts, rows[2].watts); // NApprox > Parrot 32
  EXPECT_GT(rows[2].watts, rows[3].watts); // Parrot 32 > 4
  EXPECT_GT(rows[3].watts, rows[4].watts); // Parrot 4 > 1
}

TEST(PowerModel, InvalidParameters) {
  const TrueNorthPowerModel model;
  EXPECT_THROW(model.napprox(FullHdWorkload{}, 0), std::invalid_argument);
  EXPECT_THROW(model.parrot(FullHdWorkload{}, 0), std::invalid_argument);
  EXPECT_THROW(model.parrot(FullHdWorkload{}, 32, 0), std::invalid_argument);
}

TEST(PowerModel, PowerScalesWithWorkload) {
  const TrueNorthPowerModel model;
  FullHdWorkload half;
  half.fps = 13;
  EXPECT_NEAR(model.parrot(half, 32).watts,
              model.parrot(FullHdWorkload{}, 32).watts / 2.0, 0.05);
}

}  // namespace
}  // namespace pcnn::power
