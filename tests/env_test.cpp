// Tests for the typed PCNN_* environment getters (common/env.hpp): the
// single place every runtime knob parses through.
#include "common/env.hpp"

#include <cstdlib>

#include <gtest/gtest.h>

namespace pcnn::env {
namespace {

/// RAII setenv that restores "unset" on destruction, so tests cannot leak
/// knob state into each other.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    ::setenv(name, value, 1);
  }
  ~ScopedEnv() { ::unsetenv(name_); }

 private:
  const char* name_;
};

TEST(Env, RawUnsetAndEmptyAreNullopt) {
  ::unsetenv("PCNN_TEST_RAW");
  EXPECT_FALSE(raw("PCNN_TEST_RAW").has_value());
  ScopedEnv e("PCNN_TEST_RAW", "");
  EXPECT_FALSE(raw("PCNN_TEST_RAW").has_value());
}

TEST(Env, RawAndStrReturnValue) {
  ScopedEnv e("PCNN_TEST_STR", "hello");
  EXPECT_EQ(raw("PCNN_TEST_STR").value(), "hello");
  EXPECT_EQ(str("PCNN_TEST_STR", "fallback"), "hello");
}

TEST(Env, StrFallsBackWhenUnset) {
  ::unsetenv("PCNN_TEST_STR2");
  EXPECT_EQ(str("PCNN_TEST_STR2", "fallback"), "fallback");
  EXPECT_EQ(str("PCNN_TEST_STR2"), "");
}

TEST(Env, LoweredTokenLowercases) {
  ScopedEnv e("PCNN_TEST_TOKEN", "OfF");
  EXPECT_EQ(loweredToken("PCNN_TEST_TOKEN").value(), "off");
  ::unsetenv("PCNN_TEST_TOKEN2");
  EXPECT_FALSE(loweredToken("PCNN_TEST_TOKEN2").has_value());
}

TEST(Env, FlagAcceptsAllSpellings) {
  for (const char* on : {"on", "1", "true", "yes", "ON", "TrUe"}) {
    ScopedEnv e("PCNN_TEST_FLAG_ON", on);
    EXPECT_TRUE(flag("PCNN_TEST_FLAG_ON", false)) << on;
  }
  for (const char* off : {"off", "0", "false", "no", "OFF", "No"}) {
    ScopedEnv e("PCNN_TEST_FLAG_OFF", off);
    EXPECT_FALSE(flag("PCNN_TEST_FLAG_OFF", true)) << off;
  }
}

TEST(Env, FlagFallsBackOnUnsetAndMalformed) {
  ::unsetenv("PCNN_TEST_FLAG_U");
  EXPECT_TRUE(flag("PCNN_TEST_FLAG_U", true));
  EXPECT_FALSE(flag("PCNN_TEST_FLAG_U", false));
  ScopedEnv e("PCNN_TEST_FLAG_BAD", "bananas");
  EXPECT_TRUE(flag("PCNN_TEST_FLAG_BAD", true));
  EXPECT_FALSE(flag("PCNN_TEST_FLAG_BAD", false));
}

TEST(Env, IntValueParsesInRange) {
  ScopedEnv e("PCNN_TEST_INT", "8");
  EXPECT_EQ(intValue("PCNN_TEST_INT", 1, 1, 64), 8);
}

TEST(Env, IntValueRejectsPartialParses) {
  // The lenient strtol reading ("8abc" -> 8) is exactly what this helper
  // exists to eliminate.
  ScopedEnv e("PCNN_TEST_INT_BAD", "8abc");
  EXPECT_EQ(intValue("PCNN_TEST_INT_BAD", 3, 1, 64), 3);
}

TEST(Env, IntValueRejectsOutOfRangeAndGarbage) {
  {
    ScopedEnv e("PCNN_TEST_INT_RANGE", "9999");
    EXPECT_EQ(intValue("PCNN_TEST_INT_RANGE", 5, 1, 64), 5);
  }
  {
    ScopedEnv e("PCNN_TEST_INT_NEG", "-2");
    EXPECT_EQ(intValue("PCNN_TEST_INT_NEG", 5, 1, 64), 5);
  }
  {
    ScopedEnv e("PCNN_TEST_INT_JUNK", "lots");
    EXPECT_EQ(intValue("PCNN_TEST_INT_JUNK", 5, 1, 64), 5);
  }
  ::unsetenv("PCNN_TEST_INT_UNSET");
  EXPECT_EQ(intValue("PCNN_TEST_INT_UNSET", 7, 1, 64), 7);
}

}  // namespace
}  // namespace pcnn::env
