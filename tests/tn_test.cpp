#include <gtest/gtest.h>

#include <numeric>

#include "common/rng.hpp"
#include "tn/core.hpp"
#include "tn/corelet.hpp"
#include "tn/energy.hpp"
#include "tn/model_io.hpp"
#include "tn/network.hpp"
#include "tn/spike_coding.hpp"
#include "tn/util_corelets.hpp"

#include <cstdio>
#include <sstream>

namespace pcnn::tn {
namespace {

TEST(Core, IntegratesWeightedSpikes) {
  Core core;
  Rng rng(1);
  core.setAxonType(0, 0);
  core.setAxonType(1, 1);
  core.setConnection(0, 0, true);
  core.setConnection(1, 0, true);
  core.neuron(0).synapticWeights = {3, -2, 0, 0};
  core.neuron(0).threshold = 100;  // never fires in this test
  core.deliverSpike(0);
  core.deliverSpike(1);
  std::vector<int> fired;
  core.tick(rng, fired);
  EXPECT_TRUE(fired.empty());
  EXPECT_EQ(core.potential(0), 1);  // 3 - 2
}

TEST(Core, DisconnectedAxonHasNoEffect) {
  Core core;
  Rng rng(1);
  core.setAxonType(0, 0);
  core.neuron(0).synapticWeights = {5, 0, 0, 0};
  core.neuron(0).threshold = 100;
  core.deliverSpike(0);  // not connected
  std::vector<int> fired;
  core.tick(rng, fired);
  EXPECT_EQ(core.potential(0), 0);
}

TEST(Core, FiresAtThresholdAndResetsAbsolute) {
  Core core;
  Rng rng(1);
  core.setConnection(0, 0, true);
  core.neuron(0).synapticWeights = {2, 0, 0, 0};
  core.neuron(0).threshold = 2;
  core.neuron(0).resetMode = ResetMode::kAbsolute;
  core.neuron(0).resetValue = 0;
  core.deliverSpike(0);
  std::vector<int> fired;
  core.tick(rng, fired);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], 0);
  EXPECT_EQ(core.potential(0), 0);
  EXPECT_EQ(core.firedCount(), 1);
}

TEST(Core, LinearResetConservesSpikeCount) {
  // Deliver 3 same-tick spikes to a threshold-1 counter with linear reset:
  // it must emit exactly 3 spikes over 3 ticks.
  Core core;
  Rng rng(1);
  for (int a = 0; a < 3; ++a) {
    core.setConnection(a, 0, true);
  }
  core.neuron(0).synapticWeights = {1, 0, 0, 0};
  core.neuron(0).threshold = 1;
  core.neuron(0).resetMode = ResetMode::kLinear;
  core.neuron(0).floorPotential = 0;
  for (int a = 0; a < 3; ++a) core.deliverSpike(a);
  std::vector<int> fired;
  int total = 0;
  for (int t = 0; t < 5; ++t) {
    fired.clear();
    core.tick(rng, fired);
    total += static_cast<int>(fired.size());
  }
  EXPECT_EQ(total, 3);
}

TEST(Core, LeakAccumulates) {
  Core core;
  Rng rng(1);
  core.neuron(0).leak = -1;
  core.neuron(0).threshold = 100;
  core.neuron(0).floorPotential = -3;
  std::vector<int> fired;
  for (int t = 0; t < 10; ++t) core.tick(rng, fired);
  EXPECT_EQ(core.potential(0), -3);  // clamped at floor
}

TEST(Core, StochasticThresholdFiresProbabilistically) {
  Core core;
  Rng rng(123);
  core.setConnection(0, 0, true);
  core.neuron(0).synapticWeights = {1, 0, 0, 0};
  core.neuron(0).threshold = 1;
  core.neuron(0).stochasticThreshold = true;
  core.neuron(0).stochasticMask = 3;  // effective threshold 1..4
  int firedTotal = 0;
  std::vector<int> fired;
  for (int t = 0; t < 400; ++t) {
    core.deliverSpike(0);
    fired.clear();
    core.tick(rng, fired);
    core.setPotential(0, 0);
    firedTotal += static_cast<int>(fired.size());
  }
  // V=1 fires only when the random addend is 0: expect ~25%.
  EXPECT_GT(firedTotal, 50);
  EXPECT_LT(firedTotal, 160);
}

TEST(Core, RangeChecks) {
  Core core;
  EXPECT_THROW(core.setAxonType(256, 0), std::out_of_range);
  EXPECT_THROW(core.setAxonType(0, 4), std::invalid_argument);
  EXPECT_THROW(core.setConnection(-1, 0, true), std::out_of_range);
  EXPECT_THROW(core.neuron(256), std::out_of_range);
}

TEST(Core, SynapseCount) {
  Core core;
  core.setConnection(0, 0, true);
  core.setConnection(0, 1, true);
  core.setConnection(5, 7, true);
  EXPECT_EQ(core.synapseCount(), 3);
  core.setConnection(0, 0, false);
  EXPECT_EQ(core.synapseCount(), 2);
}

TEST(Network, RoutesSpikesBetweenCores) {
  Network net(1);
  const int c0 = net.addCore();
  const int c1 = net.addCore();
  // Core 0 neuron 0: fires on any input, routes to core 1 axon 3.
  net.core(c0).setConnection(0, 0, true);
  net.core(c0).neuron(0).synapticWeights = {1, 0, 0, 0};
  net.core(c0).neuron(0).threshold = 1;
  net.core(c0).neuron(0).dest = Destination{c1, 3, 2};
  // Core 1 neuron 5 fires when axon 3 spikes.
  net.core(c1).setConnection(3, 5, true);
  net.core(c1).neuron(5).synapticWeights = {1, 0, 0, 0};
  net.core(c1).neuron(5).threshold = 1;
  net.core(c1).neuron(5).recordOutput = true;

  net.scheduleInput(0, c0, 0);
  const RunResult result = net.run(5);
  ASSERT_EQ(result.outputSpikes.size(), 1u);
  // Input at t=0 -> c0 fires at t=0 -> delay 2 -> c1 integrates at t=2.
  EXPECT_EQ(result.outputSpikes[0].tick, 2);
  EXPECT_EQ(result.outputSpikes[0].core, c1);
  EXPECT_EQ(result.outputSpikes[0].neuron, 5);
  EXPECT_EQ(result.totalSpikes, 2);
}

TEST(Network, FarFutureInputsDelivered) {
  Network net(1);
  const int c0 = net.addCore();
  net.core(c0).setConnection(0, 0, true);
  net.core(c0).neuron(0).synapticWeights = {1, 0, 0, 0};
  net.core(c0).neuron(0).threshold = 1;
  net.core(c0).neuron(0).recordOutput = true;
  net.scheduleInput(40, c0, 0);  // far beyond the delay ring
  const RunResult result = net.run(45);
  ASSERT_EQ(result.outputSpikes.size(), 1u);
  EXPECT_EQ(result.outputSpikes[0].tick, 40);
}

TEST(Network, PastInputRejected) {
  Network net(1);
  net.addCore();
  net.run(3);
  EXPECT_THROW(net.scheduleInput(1, 0, 0), std::invalid_argument);
}

TEST(Network, ResetClearsStateAndTime) {
  Network net(1);
  const int c0 = net.addCore();
  net.core(c0).setConnection(0, 0, true);
  net.core(c0).neuron(0).synapticWeights = {1, 0, 0, 0};
  net.core(c0).neuron(0).threshold = 5;
  net.scheduleInput(0, c0, 0);
  net.run(1);
  EXPECT_EQ(net.core(c0).potential(0), 1);
  net.reset(true);
  EXPECT_EQ(net.core(c0).potential(0), 0);
  EXPECT_EQ(net.currentTick(), 0);
}

TEST(Network, ChipCount) {
  Network net(1);
  for (int i = 0; i < 3; ++i) net.addCore();
  EXPECT_EQ(net.chipCount(), 1);
  EXPECT_EQ(net.coreCount(), 3);
}

TEST(Corelet, WireEnforcesSingleDestination) {
  Network net(1);
  CoreletBuilder builder(net);
  const int c0 = builder.newCore();
  const int c1 = builder.newCore();
  builder.wire(c0, 0, c1, 0);
  EXPECT_THROW(builder.wire(c0, 0, c1, 1), std::logic_error);
}

TEST(Corelet, WireRejectsBadDelay) {
  Network net(1);
  CoreletBuilder builder(net);
  const int c0 = builder.newCore();
  EXPECT_THROW(builder.wire(c0, 1, c0, 0, 0), std::invalid_argument);
  EXPECT_THROW(builder.wire(c0, 1, c0, 0, 16), std::invalid_argument);
}

TEST(Corelet, InputFanOutDuplicates) {
  Network net(1);
  CoreletBuilder builder(net);
  const int c0 = builder.newCore();
  const int input = builder.addInput("pixel");
  builder.bindInput(input, c0, 0);
  builder.bindInput(input, c0, 7);
  net.core(c0).setConnection(0, 0, true);
  net.core(c0).setConnection(7, 0, true);
  net.core(c0).neuron(0).synapticWeights = {1, 0, 0, 0};
  net.core(c0).neuron(0).threshold = 2;  // needs both axons
  net.core(c0).neuron(0).recordOutput = true;
  builder.injectSpike(input, 0);
  const RunResult result = net.run(1);
  EXPECT_EQ(result.outputSpikes.size(), 1u);
}

TEST(Corelet, WeightRangeCheck) {
  EXPECT_EQ(CoreletBuilder::checkWeight(255), 255);
  EXPECT_EQ(CoreletBuilder::checkWeight(-256), -256);
  EXPECT_THROW(CoreletBuilder::checkWeight(256), std::invalid_argument);
  EXPECT_THROW(CoreletBuilder::checkWeight(-257), std::invalid_argument);
}

TEST(ModelIo, RoundTripPreservesBehaviour) {
  // Build a small two-core network, save it, load it, and check the loaded
  // instance produces identical output spikes for the same input.
  Network net(1);
  const int c0 = net.addCore();
  const int c1 = net.addCore();
  net.core(c0).setAxonType(0, 2);
  net.core(c0).setConnection(0, 3, true);
  net.core(c0).neuron(3).synapticWeights = {0, 0, 5, 0};
  net.core(c0).neuron(3).threshold = 5;
  net.core(c0).neuron(3).leak = -1;
  net.core(c0).neuron(3).resetMode = ResetMode::kLinear;
  net.core(c0).neuron(3).floorPotential = -10;
  net.core(c0).neuron(3).dest = Destination{c1, 7, 3};
  net.core(c1).setConnection(7, 1, true);
  net.core(c1).neuron(1).synapticWeights = {1, 0, 0, 0};
  net.core(c1).neuron(1).threshold = 1;
  net.core(c1).neuron(1).recordOutput = true;

  std::stringstream buffer;
  ASSERT_TRUE(trySaveModel(net, buffer).ok());
  StatusOr<std::unique_ptr<Network>> loadedOr = tryLoadModel(buffer, 1);
  ASSERT_TRUE(loadedOr.ok()) << loadedOr.status().toString();
  std::unique_ptr<Network> loaded = std::move(loadedOr).value();
  ASSERT_EQ(loaded->coreCount(), 2);

  auto runBoth = [&](Network& a, Network& b) {
    a.reset(true);
    b.reset(true);
    for (long t : {0L, 1L, 2L}) {
      a.scheduleInput(t, c0, 0);
      b.scheduleInput(t, c0, 0);
    }
    const RunResult ra = a.run(10);
    const RunResult rb = b.run(10);
    ASSERT_EQ(ra.outputSpikes.size(), rb.outputSpikes.size());
    for (std::size_t i = 0; i < ra.outputSpikes.size(); ++i) {
      EXPECT_EQ(ra.outputSpikes[i].tick, rb.outputSpikes[i].tick);
      EXPECT_EQ(ra.outputSpikes[i].core, rb.outputSpikes[i].core);
      EXPECT_EQ(ra.outputSpikes[i].neuron, rb.outputSpikes[i].neuron);
    }
    EXPECT_EQ(ra.totalSpikes, rb.totalSpikes);
  };
  runBoth(net, *loaded);
}

TEST(ModelIo, PreservesConfigurationFields) {
  Network net(1);
  const int c0 = net.addCore();
  net.core(c0).neuron(9).stochasticThreshold = true;
  net.core(c0).neuron(9).stochasticMask = 7;
  net.core(c0).neuron(9).resetMode = ResetMode::kNone;
  std::stringstream buffer;
  ASSERT_TRUE(trySaveModel(net, buffer).ok());
  StatusOr<std::unique_ptr<Network>> loaded = tryLoadModel(buffer);
  ASSERT_TRUE(loaded.ok()) << loaded.status().toString();
  const NeuronConfig& cfg =
      static_cast<const Network&>(*loaded.value()).core(c0).neuron(9);
  EXPECT_TRUE(cfg.stochasticThreshold);
  EXPECT_EQ(cfg.stochasticMask, 7);
  EXPECT_EQ(cfg.resetMode, ResetMode::kNone);
}

TEST(ModelIo, BadInputRejected) {
  std::stringstream bad("wrong-magic 1");
  EXPECT_EQ(tryLoadModel(bad).status().code(), pcnn::StatusCode::kDataLoss);
  std::stringstream truncated("pcnn-tn-v1 1\ncore 0\nconn 0 3 1 2");
  EXPECT_FALSE(tryLoadModel(truncated).ok());
}

// The deprecated throwing wrappers stay covered: existing callers rely on
// their exception contract until they migrate to the try* forms.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
TEST(ModelIo, LegacyLoadWrapperThrows) {
  std::stringstream bad("wrong-magic 1");
  EXPECT_THROW(loadModel(bad), std::runtime_error);
  std::stringstream truncated("pcnn-tn-v1 1\ncore 0\nconn 0 3 1 2");
  EXPECT_THROW(loadModel(truncated), std::runtime_error);
}
#pragma GCC diagnostic pop

TEST(ModelIo, FileRoundTrip) {
  Network net(1);
  net.addCore();
  net.core(0).setConnection(4, 4, true);
  const std::string path = "/tmp/pcnn_test_tn_model.txt";
  ASSERT_TRUE(trySaveModelFile(net, path).ok());
  StatusOr<std::unique_ptr<Network>> loaded = tryLoadModelFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().toString();
  EXPECT_TRUE(
      static_cast<const Network&>(*loaded.value()).core(0).connection(4, 4));
  std::remove(path.c_str());
}

TEST(UtilCorelets, SplitterDuplicatesStream) {
  Network net(1);
  CoreletBuilder builder(net);
  const int relay = builder.newCore();
  const int sink = builder.newCore();
  const auto outs = buildSplitter(builder, relay, 0, 3);
  ASSERT_EQ(outs.size(), 3u);
  // Route the three copies to three sink axons; count arrivals.
  for (int i = 0; i < 3; ++i) {
    builder.wire(relay, outs[i], sink, i, 1);
    net.core(sink).setConnection(i, i, true);
    net.core(sink).neuron(i).synapticWeights = {1, 0, 0, 0};
    net.core(sink).neuron(i).threshold = 1;
    net.core(sink).neuron(i).recordOutput = true;
  }
  net.scheduleInput(0, relay, 0);
  const RunResult result = net.run(4);
  EXPECT_EQ(result.outputSpikes.size(), 3u);
}

TEST(UtilCorelets, DelayLineAddsStageLatency) {
  Network net(1);
  CoreletBuilder builder(net);
  const int core = builder.newCore();
  const int last = buildDelayLine(builder, core, 100, 4, 0);
  net.core(core).neuron(last).recordOutput = true;
  net.scheduleInput(0, core, 100);
  const RunResult result = net.run(10);
  ASSERT_EQ(result.outputSpikes.size(), 1u);
  // 4 relays, each adding one routed tick after the first integration:
  // fires at tick 3 relative to injection at tick 0.
  EXPECT_EQ(result.outputSpikes[0].tick, 3);
}

TEST(UtilCorelets, BurstCounterFiresAtCount) {
  Network net(1);
  CoreletBuilder builder(net);
  const int core = builder.newCore();
  const int n = buildBurstCounter(builder, core, 0, 3);
  net.core(core).neuron(n).recordOutput = true;
  for (long t : {0L, 2L, 5L}) net.scheduleInput(t, core, 0);
  const RunResult result = net.run(8);
  ASSERT_EQ(result.outputSpikes.size(), 1u);
  EXPECT_EQ(result.outputSpikes[0].tick, 5);  // third spike crosses
}

TEST(UtilCorelets, GeometryValidation) {
  Network net(1);
  CoreletBuilder builder(net);
  const int core = builder.newCore();
  EXPECT_THROW(buildSplitter(builder, core, 0, 0), std::invalid_argument);
  EXPECT_THROW(buildSplitter(builder, core, 0, 300), std::invalid_argument);
  EXPECT_THROW(buildDelayLine(builder, core, 2, 5, 0),
               std::invalid_argument);  // axon range collides with input
  EXPECT_THROW(buildBurstCounter(builder, core, 0, 0),
               std::invalid_argument);
}

TEST(Energy, StaticTermScalesWithCoresAndTime) {
  Network net(1);
  net.addCore();
  net.addCore();
  RunResult run;
  run.ticksRun = 100;  // 0.1 s at 1 ms ticks
  const EnergyReport report = estimateEnergy(net, run);
  EXPECT_NEAR(report.staticJoules, 2 * (65e-3 / 4096) * 0.1, 1e-9);
  EXPECT_EQ(report.dynamicJoules, 0.0);
  EXPECT_NEAR(report.watts, 2 * (65e-3 / 4096), 1e-9);
}

TEST(Energy, DynamicTermTracksSpikes) {
  Network net(1);
  const int c0 = net.addCore();
  // One synapse per axon row on average: fan-out 1 for the fired neuron.
  for (int a = 0; a < 256; ++a) net.core(c0).setConnection(a, 0, true);
  net.core(c0).neuron(0).synapticWeights = {1, 0, 0, 0};
  net.core(c0).neuron(0).threshold = 1;
  net.scheduleInput(0, c0, 0);
  const RunResult run = net.run(3);
  EXPECT_EQ(run.totalSpikes, 1);
  const EnergyReport report = estimateEnergy(net, run);
  EXPECT_EQ(report.synapticEvents, 1);  // 1 spike x mean fan-out 1
  EXPECT_NEAR(report.dynamicJoules, 26e-12, 1e-15);
}

TEST(Energy, ActivityClearsOnReset) {
  Network net(1);
  const int c0 = net.addCore();
  net.core(c0).setConnection(0, 0, true);
  net.core(c0).neuron(0).synapticWeights = {1, 0, 0, 0};
  net.core(c0).neuron(0).threshold = 1;
  net.scheduleInput(0, c0, 0);
  net.run(1);
  EXPECT_EQ(net.core(c0).firedCount(), 1);
  net.reset(true);
  EXPECT_EQ(net.core(c0).firedCount(), 0);
}

TEST(SpikeCoding, RateCodeCountRounds) {
  EXPECT_EQ(rateCodeCount(0.0f, 64), 0);
  EXPECT_EQ(rateCodeCount(1.0f, 64), 64);
  EXPECT_EQ(rateCodeCount(0.5f, 64), 32);
  EXPECT_EQ(rateCodeCount(1.5f, 64), 64);   // clamped
  EXPECT_EQ(rateCodeCount(-0.5f, 64), 0);   // clamped
}

TEST(SpikeCoding, RateCodeTicksEvenlySpread) {
  const auto ticks = rateCodeTicks(0.5f, 64);
  ASSERT_EQ(ticks.size(), 32u);
  // Even spread: consecutive spikes exactly 2 ticks apart.
  for (std::size_t i = 1; i < ticks.size(); ++i) {
    EXPECT_EQ(ticks[i] - ticks[i - 1], 2);
  }
  EXPECT_LT(ticks.back(), 64);
}

TEST(SpikeCoding, RateCodeTicksCountMatches) {
  for (float v : {0.0f, 0.1f, 0.33f, 0.77f, 1.0f}) {
    EXPECT_EQ(static_cast<int>(rateCodeTicks(v, 64).size()),
              rateCodeCount(v, 64));
  }
}

TEST(SpikeCoding, StochasticCodeMeanApproximatesValue) {
  Rng rng(77);
  int total = 0;
  const int windows = 200;
  for (int i = 0; i < windows; ++i) {
    total += static_cast<int>(stochasticCodeTicks(0.3f, 32, rng).size());
  }
  const double meanRate = static_cast<double>(total) / (windows * 32.0);
  EXPECT_NEAR(meanRate, 0.3, 0.03);
}

TEST(SpikeCoding, DecodeRate) {
  EXPECT_FLOAT_EQ(decodeRate(32, 64), 0.5f);
  EXPECT_FLOAT_EQ(decodeRate(0, 0), 0.0f);
}

class RatePrecisionTest : public ::testing::TestWithParam<int> {};

TEST_P(RatePrecisionTest, QuantizationErrorBoundedByHalfStep) {
  const int window = GetParam();
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    const float v = static_cast<float>(rng.uniform());
    const float decoded = decodeRate(rateCodeCount(v, window), window);
    EXPECT_LE(std::abs(decoded - v), 0.5f / static_cast<float>(window) + 1e-6f);
  }
}

INSTANTIATE_TEST_SUITE_P(Windows, RatePrecisionTest,
                         ::testing::Values(1, 2, 4, 8, 16, 32, 64));

}  // namespace
}  // namespace pcnn::tn
