#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/rng.hpp"
#include "vision/draw.hpp"
#include "vision/geometry.hpp"
#include "vision/image.hpp"
#include "vision/nms.hpp"
#include "vision/pgm.hpp"
#include "vision/pyramid.hpp"
#include "vision/sliding_window.hpp"
#include "vision/synth.hpp"

namespace pcnn::vision {
namespace {

TEST(Image, ConstructionAndFill) {
  Image img(4, 3, 0.5f);
  EXPECT_EQ(img.width(), 4);
  EXPECT_EQ(img.height(), 3);
  EXPECT_FALSE(img.empty());
  EXPECT_FLOAT_EQ(img.at(0, 0), 0.5f);
  EXPECT_FLOAT_EQ(img.at(3, 2), 0.5f);
}

TEST(Image, DefaultIsEmpty) {
  Image img;
  EXPECT_TRUE(img.empty());
  EXPECT_EQ(img.width(), 0);
}

TEST(Image, NegativeDimensionsThrow) {
  EXPECT_THROW(Image(-1, 4), std::invalid_argument);
  EXPECT_THROW(Image(4, -1), std::invalid_argument);
}

TEST(Image, ClampedAccessReplicatesBorder) {
  Image img(2, 2);
  img.at(0, 0) = 1.0f;
  img.at(1, 0) = 2.0f;
  img.at(0, 1) = 3.0f;
  img.at(1, 1) = 4.0f;
  EXPECT_FLOAT_EQ(img.atClamped(-5, -5), 1.0f);
  EXPECT_FLOAT_EQ(img.atClamped(10, 0), 2.0f);
  EXPECT_FLOAT_EQ(img.atClamped(0, 10), 3.0f);
  EXPECT_FLOAT_EQ(img.atClamped(10, 10), 4.0f);
}

TEST(Image, BilinearSamplingInterpolates) {
  Image img(2, 1);
  img.at(0, 0) = 0.0f;
  img.at(1, 0) = 1.0f;
  EXPECT_NEAR(img.sampleBilinear(0.5f, 0.0f), 0.5f, 1e-6f);
  EXPECT_NEAR(img.sampleBilinear(0.25f, 0.0f), 0.25f, 1e-6f);
}

TEST(Image, CropTakesSubImage) {
  Image img(4, 4);
  for (int y = 0; y < 4; ++y) {
    for (int x = 0; x < 4; ++x) img.at(x, y) = static_cast<float>(y * 4 + x);
  }
  Image sub = img.crop(1, 1, 2, 2);
  EXPECT_EQ(sub.width(), 2);
  EXPECT_FLOAT_EQ(sub.at(0, 0), 5.0f);
  EXPECT_FLOAT_EQ(sub.at(1, 1), 10.0f);
}

TEST(Image, ClampValuesBoundsRange) {
  Image img(2, 1);
  img.at(0, 0) = -3.0f;
  img.at(1, 0) = 7.0f;
  img.clampValues(0.0f, 1.0f);
  EXPECT_FLOAT_EQ(img.at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(img.at(1, 0), 1.0f);
}

TEST(Image, ResizePreservesConstantImage) {
  Image img(10, 20, 0.3f);
  Image out = resizeBilinear(img, 7, 13);
  EXPECT_EQ(out.width(), 7);
  EXPECT_EQ(out.height(), 13);
  for (float v : out.data()) EXPECT_NEAR(v, 0.3f, 1e-6f);
}

TEST(Image, ResizeRejectsBadTarget) {
  Image img(10, 10);
  EXPECT_THROW(resizeBilinear(img, 0, 5), std::invalid_argument);
}

TEST(Image, RgbToGrayUsesLumaWeights) {
  const unsigned char rgb[3] = {255, 0, 0};
  Image img = rgbToGray(rgb, 1, 1);
  EXPECT_NEAR(img.at(0, 0), 0.299f, 1e-3f);
}

TEST(Image, MeanValue) {
  Image img(2, 1);
  img.at(0, 0) = 0.0f;
  img.at(1, 0) = 1.0f;
  EXPECT_NEAR(meanValue(img), 0.5f, 1e-6f);
  EXPECT_FLOAT_EQ(meanValue(Image{}), 0.0f);
}

TEST(Geometry, IouIdentityAndDisjoint) {
  Rect a{0, 0, 10, 10};
  EXPECT_NEAR(iou(a, a), 1.0f, 1e-6f);
  Rect b{20, 20, 10, 10};
  EXPECT_FLOAT_EQ(iou(a, b), 0.0f);
}

TEST(Geometry, IouHalfOverlap) {
  Rect a{0, 0, 10, 10};
  Rect b{5, 0, 10, 10};
  // intersection 50, union 150.
  EXPECT_NEAR(iou(a, b), 50.0f / 150.0f, 1e-5f);
}

TEST(Geometry, OverlapOverMin) {
  Rect big{0, 0, 100, 100};
  Rect small{10, 10, 10, 10};
  EXPECT_NEAR(overlapOverMin(big, small), 1.0f, 1e-6f);
}

TEST(Nms, SuppressesNestedWeakerBoxes) {
  std::vector<Detection> dets = {
      {{0, 0, 100, 100}, 0.9f},
      {{5, 5, 90, 90}, 0.5f},   // inside the first
      {{300, 300, 50, 50}, 0.7f},
  };
  auto kept = nonMaximumSuppression(dets, 0.2f);
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_FLOAT_EQ(kept[0].score, 0.9f);
  EXPECT_FLOAT_EQ(kept[1].score, 0.7f);
}

TEST(Nms, KeepsPartiallyOverlappingBoxes) {
  std::vector<Detection> dets = {
      {{0, 0, 100, 100}, 0.9f},
      {{70, 0, 100, 100}, 0.8f},  // 30% of the smaller box overlaps
  };
  auto kept = nonMaximumSuppression(dets, 0.2f);
  EXPECT_EQ(kept.size(), 2u);
}

TEST(Nms, Idempotent) {
  Rng rng(99);
  std::vector<Detection> dets;
  for (int i = 0; i < 40; ++i) {
    dets.push_back({{static_cast<float>(rng.uniformInt(0, 200)),
                     static_cast<float>(rng.uniformInt(0, 200)),
                     static_cast<float>(rng.uniformInt(20, 80)),
                     static_cast<float>(rng.uniformInt(40, 160))},
                    static_cast<float>(rng.uniform())});
  }
  const auto once = nonMaximumSuppression(dets, 0.2f);
  const auto twice = nonMaximumSuppression(once, 0.2f);
  ASSERT_EQ(once.size(), twice.size());
  for (std::size_t i = 0; i < once.size(); ++i) {
    EXPECT_FLOAT_EQ(once[i].score, twice[i].score);
  }
}

TEST(Nms, KeptSetRespectsOverlapBound) {
  Rng rng(101);
  std::vector<Detection> dets;
  for (int i = 0; i < 60; ++i) {
    dets.push_back({{static_cast<float>(rng.uniformInt(0, 100)),
                     static_cast<float>(rng.uniformInt(0, 100)),
                     64.0f, 128.0f},
                    static_cast<float>(rng.uniform())});
  }
  const float epsilon = 0.2f;
  const auto kept = nonMaximumSuppression(dets, epsilon);
  for (std::size_t i = 0; i < kept.size(); ++i) {
    for (std::size_t j = i + 1; j < kept.size(); ++j) {
      EXPECT_LE(overlapOverMin(kept[i].box, kept[j].box),
                1.0f - epsilon + 1e-6f);
    }
  }
}

TEST(Nms, EmptyInput) {
  EXPECT_TRUE(nonMaximumSuppression({}, 0.2f).empty());
}

TEST(Pyramid, ScalesByFactor) {
  Image img(220, 440, 0.5f);
  PyramidParams pp;
  pp.scaleFactor = 1.1f;
  pp.minWidth = 64;
  pp.minHeight = 128;
  auto levels = buildPyramid(img, pp);
  ASSERT_GE(levels.size(), 3u);
  EXPECT_EQ(levels[0].image.width(), 220);
  EXPECT_FLOAT_EQ(levels[0].scale, 1.0f);
  EXPECT_NEAR(levels[1].image.width(), 200, 1);
  EXPECT_NEAR(levels[1].scale, 1.1f, 1e-5f);
  // Smallest level still fits the window.
  EXPECT_GE(levels.back().image.width(), 64);
  EXPECT_GE(levels.back().image.height(), 128);
}

TEST(Pyramid, RejectsNonShrinkingFactor) {
  Image img(100, 100);
  PyramidParams pp;
  pp.scaleFactor = 1.0f;
  EXPECT_THROW(buildPyramid(img, pp), std::invalid_argument);
}

// The deprecated brute-force scan stays covered until it is removed.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

TEST(SlidingWindow, CountMatchesClosedForm) {
  Image img(128, 256, 0.0f);
  SlidingWindowParams params;
  params.pyramid.maxLevels = 1;  // single level
  const long expected =
      ((128 - 64) / 8 + 1) * ((256 - 128) / 8 + 1);
  EXPECT_EQ(countWindows(img, params), expected);
}

TEST(SlidingWindow, OriginalCoordinatesScaled) {
  Image img(141, 282, 0.0f);  // second level ~128x256
  SlidingWindowParams params;
  bool sawScaled = false;
  forEachWindow(img, params,
                [&](const Image&, const Rect& inLevel, const Rect& inOrig) {
                  // Restrict to level 1 (level 2 windows scale by 1.21).
                  if (inOrig.w > 64.5f && inOrig.w < 75.0f) {
                    sawScaled = true;
                    EXPECT_NEAR(inOrig.w / inLevel.w, 1.1f, 0.02f);
                  }
                });
  EXPECT_TRUE(sawScaled);
}

#pragma GCC diagnostic pop

TEST(Pgm, RoundTrip) {
  Image img(16, 8);
  Rng rng(11);
  for (float& v : img.data()) v = static_cast<float>(rng.uniform());
  const std::string path = "/tmp/pcnn_test_roundtrip.pgm";
  writePgm(img, path);
  Image back = readPgm(path);
  ASSERT_EQ(back.width(), 16);
  ASSERT_EQ(back.height(), 8);
  for (std::size_t i = 0; i < img.data().size(); ++i) {
    EXPECT_NEAR(back.data()[i], img.data()[i], 1.0f / 255.0f);
  }
  std::remove(path.c_str());
}

TEST(Pgm, MissingFileThrows) {
  EXPECT_THROW(readPgm("/tmp/definitely_missing_pcnn.pgm"),
               std::runtime_error);
}

TEST(Synth, ValueNoiseStaysInRange) {
  Rng rng(5);
  Image img = valueNoise(64, 64, 8, 0.5f, 0.3f, rng);
  for (float v : img.data()) {
    EXPECT_GE(v, 0.0f);
    EXPECT_LE(v, 1.0f);
  }
}

TEST(Synth, PositiveWindowHasPersonContrast) {
  SyntheticPersonDataset dataset;
  Rng rng(7);
  // A positive window must contain more gradient energy in its centre
  // column band than a flat background would.
  const Image img = dataset.positiveWindow(rng);
  EXPECT_EQ(img.width(), 64);
  EXPECT_EQ(img.height(), 128);
  double centerVar = 0.0;
  const float mean = meanValue(img);
  for (int y = 20; y < 110; ++y) {
    for (int x = 24; x < 40; ++x) {
      centerVar += (img.at(x, y) - mean) * (img.at(x, y) - mean);
    }
  }
  EXPECT_GT(centerVar, 1.0);
}

TEST(Synth, WindowsAreDeterministicGivenSeed) {
  SyntheticPersonDataset dataset;
  Rng rngA(42), rngB(42);
  const Image a = dataset.positiveWindow(rngA);
  const Image b = dataset.positiveWindow(rngB);
  EXPECT_EQ(a.data(), b.data());
}

TEST(Synth, SceneGroundTruthInsideImage) {
  SyntheticPersonDataset dataset;
  Rng rng(3);
  const Scene scene = dataset.scene(rng, 320, 240, 3, 96, 160);
  EXPECT_EQ(scene.groundTruth.size(), 3u);
  for (const Rect& gt : scene.groundTruth) {
    EXPECT_GT(gt.w, 0.0f);
    EXPECT_GT(gt.h, 0.0f);
    // Window-aligned boxes keep the 1:2 aspect.
    EXPECT_NEAR(gt.h / gt.w, 2.0f, 0.01f);
  }
}

TEST(Draw, RgbFromGrayReplicatesChannels) {
  Image gray(2, 1);
  gray.at(0, 0) = 0.25f;
  gray.at(1, 0) = 0.75f;
  RgbImage rgb(gray);
  for (int c = 0; c < 3; ++c) {
    EXPECT_FLOAT_EQ(rgb.at(0, 0, c), 0.25f);
    EXPECT_FLOAT_EQ(rgb.at(1, 0, c), 0.75f);
  }
}

TEST(Draw, RectOutlineAndClipping) {
  RgbImage img(10, 10);
  drawRect(img, Rect{2, 3, 4, 5}, Color{1, 0, 0});
  EXPECT_FLOAT_EQ(img.at(2, 3, 0), 1.0f);   // top-left corner
  EXPECT_FLOAT_EQ(img.at(5, 7, 0), 1.0f);   // bottom-right corner
  EXPECT_FLOAT_EQ(img.at(3, 5, 0), 0.0f);   // interior untouched
  // Clipping: a rect hanging off the image must not crash or wrap.
  drawRect(img, Rect{-5, -5, 8, 8}, Color{0, 1, 0});
  EXPECT_FLOAT_EQ(img.at(2, 0, 1), 1.0f);
}

TEST(Draw, LineEndpoints) {
  RgbImage img(10, 10);
  drawLine(img, 0, 0, 9, 9, Color{0, 0, 1});
  EXPECT_FLOAT_EQ(img.at(0, 0, 2), 1.0f);
  EXPECT_FLOAT_EQ(img.at(9, 9, 2), 1.0f);
  EXPECT_FLOAT_EQ(img.at(5, 5, 2), 1.0f);  // on the diagonal
}

TEST(Draw, PpmWriteProducesCorrectSize) {
  RgbImage img(7, 3, 0.5f, 0.5f, 0.5f);
  const std::string path = "/tmp/pcnn_test_draw.ppm";
  writePpm(img, path);
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  ASSERT_TRUE(in.good());
  // header "P6\n7 3\n255\n" = 11 bytes + 7*3*3 payload.
  EXPECT_EQ(static_cast<long>(in.tellg()), 11 + 7 * 3 * 3);
  std::remove(path.c_str());
}

TEST(Draw, NegativeDimensionsThrow) {
  EXPECT_THROW(RgbImage(-1, 3), std::invalid_argument);
}

TEST(Synth, NegativeWindowsVary) {
  SyntheticPersonDataset dataset;
  Rng rng(9);
  const Image a = dataset.negativeWindow(rng);
  const Image b = dataset.negativeWindow(rng);
  EXPECT_NE(a.data(), b.data());
}

}  // namespace
}  // namespace pcnn::vision
