#include <gtest/gtest.h>

#include <cmath>

#include <cstdio>
#include <sstream>

#include "common/rng.hpp"
#include "svm/linear_svm.hpp"
#include "svm/mining.hpp"
#include "svm/serialize.hpp"
#include "vision/synth.hpp"

namespace pcnn::svm {
namespace {

TEST(LinearSvm, RejectsBadInput) {
  LinearSvm svm;
  EXPECT_THROW(svm.train({}, {}), std::invalid_argument);
  EXPECT_THROW(svm.train({{1.0f}}, {2}), std::invalid_argument);
  EXPECT_THROW(svm.train({{1.0f}, {1.0f, 2.0f}}, {1, -1}),
               std::invalid_argument);
  SvmParams params;
  params.C = 0.0;
  EXPECT_THROW(LinearSvm{params}, std::invalid_argument);
}

TEST(LinearSvm, SeparatesTrivialData) {
  LinearSvm svm;
  std::vector<std::vector<float>> x = {{2.0f}, {1.5f}, {-1.0f}, {-2.5f}};
  std::vector<int> y = {1, 1, -1, -1};
  svm.train(x, y);
  EXPECT_TRUE(svm.trained());
  EXPECT_DOUBLE_EQ(svm.accuracy(x, y), 1.0);
  EXPECT_GT(svm.decision({3.0f}), 0.0);
  EXPECT_LT(svm.decision({-3.0f}), 0.0);
}

TEST(LinearSvm, LearnsBiasedHyperplane) {
  // Separable at x > 5, so a bias is required.
  LinearSvm svm;
  std::vector<std::vector<float>> x;
  std::vector<int> y;
  for (int i = 0; i < 40; ++i) {
    const float v = static_cast<float>(i) * 0.25f;
    x.push_back({v});
    y.push_back(v > 5.0f ? 1 : -1);
  }
  svm.train(x, y);
  // The boundary sample at v = 5.0 may fall on the margin; everything
  // else must classify correctly.
  EXPECT_GE(svm.accuracy(x, y), 0.95);
}

TEST(LinearSvm, MarginMaximisation2D) {
  // Canonical 2-point problem: w = (1,0), margin at x=0.
  LinearSvm svm;
  SvmParams params;
  params.C = 100.0;
  params.maxIterations = 2000;
  LinearSvm strict(params);
  strict.train({{1.0f, 0.0f}, {-1.0f, 0.0f}}, {1, -1});
  EXPECT_NEAR(strict.weights()[0], 1.0, 0.05);
  EXPECT_NEAR(strict.weights()[1], 0.0, 0.05);
  EXPECT_NEAR(strict.bias(), 0.0, 0.05);
}

TEST(LinearSvm, NoisyDataStillMostlyCorrect) {
  pcnn::Rng rng(3);
  std::vector<std::vector<float>> x;
  std::vector<int> y;
  for (int i = 0; i < 300; ++i) {
    const bool positive = i % 2 == 0;
    std::vector<float> f(10);
    for (auto& v : f) {
      v = static_cast<float>(rng.normal()) +
          (positive ? 0.8f : -0.8f);
    }
    x.push_back(std::move(f));
    y.push_back(positive ? 1 : -1);
  }
  LinearSvm svm;
  svm.train(x, y);
  EXPECT_GT(svm.accuracy(x, y), 0.9);
}

TEST(LinearSvm, DecisionDimensionCheck) {
  LinearSvm svm;
  svm.train({{1.0f, 0.0f}, {-1.0f, 0.0f}}, {1, -1});
  EXPECT_THROW(svm.decision({1.0f}), std::invalid_argument);
}

TEST(Serialize, RoundTripPreservesDecisions) {
  LinearSvm model;
  model.train({{1.0f, 0.2f}, {0.5f, -1.0f}, {-1.0f, 0.1f}, {-0.4f, 1.0f}},
              {1, 1, -1, -1});
  std::stringstream buffer;
  ASSERT_TRUE(trySaveModel(model, buffer).ok());
  StatusOr<LinearSvm> loaded = tryLoadModel(buffer);
  ASSERT_TRUE(loaded.ok()) << loaded.status().toString();
  const LinearSvm restored = std::move(loaded).value();
  for (float a : {-1.0f, 0.0f, 0.7f}) {
    for (float b : {-0.5f, 0.3f}) {
      EXPECT_DOUBLE_EQ(model.decision({a, b}), restored.decision({a, b}));
    }
  }
  EXPECT_DOUBLE_EQ(restored.params().C, model.params().C);
}

TEST(Serialize, UntrainedModelRejected) {
  LinearSvm model;
  std::stringstream buffer;
  EXPECT_THROW(saveModel(model, buffer), std::invalid_argument);
  EXPECT_EQ(trySaveModel(model, buffer).code(),
            pcnn::StatusCode::kFailedPrecondition);
}

// The deprecated throwing wrappers stay covered: existing callers rely on
// their exception contract until they migrate to the try* forms.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
TEST(Serialize, BadHeaderThrows) {
  std::stringstream buffer("not-a-model 3");
  EXPECT_THROW(loadModel(buffer), std::runtime_error);
}
#pragma GCC diagnostic pop

TEST(Serialize, FileRoundTrip) {
  LinearSvm model;
  model.train({{2.0f}, {-2.0f}}, {1, -1});
  const std::string path = "/tmp/pcnn_test_svm_model.txt";
  ASSERT_TRUE(trySaveModelFile(model, path).ok());
  StatusOr<LinearSvm> loaded = tryLoadModelFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().toString();
  EXPECT_DOUBLE_EQ(model.decision({1.5f}), loaded.value().decision({1.5f}));
  std::remove(path.c_str());
}

TEST(Mining, RequiresBothClasses) {
  LinearSvm svm;
  auto extractor = [](const vision::Image& img) { return img.data(); };
  EXPECT_THROW(
      trainWithHardNegatives(svm, extractor, {}, {vision::Image(2, 2)}, {}),
      std::invalid_argument);
}

TEST(Mining, MinesFalsePositivesAndImproves) {
  // Tiny synthetic setup: features are 8x16 windows flattened; positives
  // are bright-centre windows.
  pcnn::Rng rng(5);
  auto makeWindow = [&](bool positive) {
    vision::Image img(8, 16, 0.2f);
    for (int y = 4; y < 12; ++y) {
      for (int x = 2; x < 6; ++x) {
        img.at(x, y) = positive ? 0.9f : 0.25f;
      }
    }
    for (float& v : img.data()) {
      v += 0.05f * static_cast<float>(rng.normal());
    }
    return img;
  };
  std::vector<vision::Image> pos, neg, scenes;
  for (int i = 0; i < 30; ++i) pos.push_back(makeWindow(true));
  for (int i = 0; i < 30; ++i) neg.push_back(makeWindow(false));
  // Negative scenes containing decoys that replicate the positive pattern:
  // by construction the initial SVM scores them high, so mining must find
  // and absorb them.
  for (int i = 0; i < 2; ++i) {
    vision::Image scene(32, 48, 0.2f);
    const vision::Image decoy = makeWindow(true);
    // On the scan grid so the initial model is guaranteed to fire on it.
    for (int y = 0; y < 16; ++y) {
      for (int x = 0; x < 8; ++x) {
        scene.at(8 + x, 16 + y) = decoy.at(x, y);
      }
    }
    scenes.push_back(scene);
  }

  MiningParams params;
  params.mineThreshold = -0.5f;  // mine near-boundary windows too
  params.scan.windowWidth = 8;
  params.scan.windowHeight = 16;
  params.scan.strideX = 4;
  params.scan.strideY = 4;
  params.scan.pyramid.minWidth = 8;
  params.scan.pyramid.minHeight = 16;
  params.scan.pyramid.maxLevels = 1;
  auto extractor = [](const vision::Image& img) { return img.data(); };

  // Baseline without mining for comparison.
  LinearSvm baseline;
  MiningParams noMining = params;
  noMining.rounds = 0;
  trainWithHardNegatives(baseline, extractor, pos, neg, scenes, noMining);

  LinearSvm svm;
  const MiningResult result =
      trainWithHardNegatives(svm, extractor, pos, neg, scenes, params);
  EXPECT_GT(result.minedNegatives, 0);
  EXPECT_GT(result.finalTrainAccuracy, 0.8);

  // Mining must lower the scene windows' decision values overall.
  auto maxSceneScore = [&](const LinearSvm& model) {
    double best = -1e9;
    // Deliberately the deprecated per-crop scan: mining's own loop.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
    vision::forEachWindow(
        scenes[0], params.scan,
        [&](const vision::Image& level, const vision::Rect& r,
            const vision::Rect&) {
          const vision::Image w =
              level.crop(static_cast<int>(r.x), static_cast<int>(r.y),
                         static_cast<int>(r.w), static_cast<int>(r.h));
          best = std::max(best, model.decision(extractor(w)));
        });
#pragma GCC diagnostic pop
    return best;
  };
  EXPECT_LT(maxSceneScore(svm), maxSceneScore(baseline));
}

}  // namespace
}  // namespace pcnn::svm
