// Scalar-vs-batched parity suite for the cell-kernel layer
// (src/hog/cell_kernels.*). Pins the numerics contract down:
//  - the fixed-point row kernel is bitwise-identical to the scalar
//    reference at any image size and dispatch setting;
//  - the float row kernel tracks the scalar atan2/sqrt reference within
//    the polynomial's documented tolerance, across bin counts, signed /
//    unsigned orientations, vote modes, and the bilinear wraparound bins;
//  - PCNN_SIMD=off really forces the scalar path.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "extract/registry.hpp"
#include "hog/cell_kernels.hpp"
#include "hog/fixed_point.hpp"
#include "hog/gradient.hpp"
#include "hog/hog.hpp"
#include "vision/image.hpp"

namespace pcnn::hog {
namespace {

vision::Image randomImage(int width, int height, std::uint64_t seed) {
  vision::Image img(width, height);
  Rng rng(seed);
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      img.at(x, y) = static_cast<float>(rng.uniform());
    }
  }
  return img;
}

/// Runs both float kernels over the same image and returns the grids.
struct FloatPair {
  CellGrid scalar;
  CellGrid batched;
};

FloatPair runFloatKernels(const vision::Image& img, const HogParams& params) {
  const GradientField field = computeGradients(img);
  FloatPair out;
  for (CellGrid* grid : {&out.scalar, &out.batched}) {
    grid->cellsX = img.width() / params.cellSize;
    grid->cellsY = img.height() / params.cellSize;
    grid->bins = params.numBins;
    grid->data.assign(static_cast<std::size_t>(grid->cellsX) * grid->cellsY *
                          grid->bins,
                      0.0f);
  }
  kernels::hogCellRowsScalar(field, params, out.scalar, 0, out.scalar.cellsY);
  kernels::hogCellRowsBatched(field, params, out.batched, 0,
                              out.batched.cellsY);
  return out;
}

void expectGridsClose(const FloatPair& grids, float tolerance) {
  ASSERT_EQ(grids.scalar.data.size(), grids.batched.data.size());
  ASSERT_FALSE(grids.scalar.data.empty());
  for (std::size_t i = 0; i < grids.scalar.data.size(); ++i) {
    ASSERT_NEAR(grids.scalar.data[i], grids.batched.data[i], tolerance)
        << "bin " << i;
  }
}

TEST(CellKernelParity, FixedPointBitwiseOnRandomImages) {
  const FixedPointHog model;
  ASSERT_TRUE(kernels::fixedBatchedFits(model));
  // Non-multiple-of-8 sizes exercise the ragged row tails and the
  // replicate-clamped borders of the batched gradient pass.
  const int sizes[][2] = {{64, 128}, {67, 45}, {8, 8}, {33, 9}, {320, 240}};
  for (const auto& size : sizes) {
    const vision::Image img = randomImage(size[0], size[1], 17u + size[0]);
    const std::vector<std::int32_t> pix =
        kernels::quantizePixels(img, model.params().pixelBits);
    FixedPointHog::IntCellGrid scalar, batched;
    for (FixedPointHog::IntCellGrid* grid : {&scalar, &batched}) {
      grid->cellsX = img.width() / model.params().cellSize;
      grid->cellsY = img.height() / model.params().cellSize;
      grid->bins = model.params().numBins;
      grid->data.assign(static_cast<std::size_t>(grid->cellsX) *
                            grid->cellsY * grid->bins,
                        0);
    }
    kernels::fixedCellRowsScalar(model, pix.data(), img.width(), img.height(),
                                 scalar, 0, scalar.cellsY);
    kernels::fixedCellRowsBatched(model, pix.data(), img.width(),
                                  img.height(), batched, 0, batched.cellsY);
    ASSERT_EQ(scalar.data.size(), batched.data.size());
    for (std::size_t i = 0; i < scalar.data.size(); ++i) {
      ASSERT_EQ(scalar.data[i], batched.data[i])
          << size[0] << "x" << size[1] << " bin " << i;
    }
  }
}

TEST(CellKernelParity, FloatToleranceAcrossConfigs) {
  // The four configurations the extractors actually use: classic 9-bin
  // unsigned weighted bilinear HoG, the 18-bin signed NApprox layout, and
  // the hard-binning / count-vote variants.
  std::vector<HogParams> configs(4);
  configs[1].numBins = 18;
  configs[1].signedOrientation = true;
  configs[2].weightedVote = false;
  configs[3].bilinearBinning = false;
  for (const HogParams& params : configs) {
    const vision::Image img = randomImage(72, 56, 99);
    // A cell accumulates 64 votes; each vote's angle is off by at most
    // ~1e-5 rad, so a per-bin slack of a few 1e-3 on O(1) magnitudes
    // covers the worst case (hard binning can flip a borderline pixel's
    // bin entirely -- see the wraparound test -- but not on this smooth
    // random image at these bin widths).
    expectGridsClose(runFloatKernels(img, params), 5e-3f);
  }
}

TEST(CellKernelParity, BilinearWraparoundNearBinBoundaries) {
  // Gradients aimed at the wraparound seam: angles just below/above 0 and
  // just below 180/360 deg, where bilinear voting splits between bin 0 and
  // bin numBins-1. A hand-built field isolates the interpolation from the
  // gradient pass.
  for (const bool signedOrientation : {false, true}) {
    HogParams params;
    params.cellSize = 4;
    params.signedOrientation = signedOrientation;
    const float full = signedOrientation ? 6.28318530718f : 3.14159265359f;
    GradientField field;
    field.width = 4;
    field.height = 4;
    field.ix.resize(16);
    field.iy.resize(16);
    const float angles[16] = {
        -1e-4f,        1e-4f,        full - 1e-4f, full + 1e-4f,
        -1e-3f,        1e-3f,        full - 1e-3f, full / 2,
        full / 9.0f,   full / 4.5f,  full * 0.999f, full * 0.001f,
        full * 0.499f, full * 0.501f, 0.0f,         full / 3.0f};
    for (int i = 0; i < 16; ++i) {
      field.ix[i] = std::cos(angles[i]);
      field.iy[i] = std::sin(angles[i]);
    }
    FloatPair out;
    for (CellGrid* grid : {&out.scalar, &out.batched}) {
      grid->cellsX = 1;
      grid->cellsY = 1;
      grid->bins = params.numBins;
      grid->data.assign(static_cast<std::size_t>(params.numBins), 0.0f);
    }
    kernels::hogCellRowsScalar(field, params, out.scalar, 0, 1);
    kernels::hogCellRowsBatched(field, params, out.batched, 0, 1);
    // All magnitudes are 1; every vote splits across the seam exactly as
    // the scalar path does, up to the angle approximation scaled by the
    // 1/binWidth interpolation slope.
    expectGridsClose(out, 1e-3f);
  }
}

TEST(CellKernelParity, ZeroGradientPixelsVoteNowhere) {
  HogParams params;
  params.cellSize = 4;
  GradientField field;
  field.width = 4;
  field.height = 4;
  field.ix.assign(16, 0.0f);
  field.iy.assign(16, 0.0f);
  FloatPair out;
  for (CellGrid* grid : {&out.scalar, &out.batched}) {
    grid->cellsX = 1;
    grid->cellsY = 1;
    grid->bins = params.numBins;
    grid->data.assign(static_cast<std::size_t>(params.numBins), 0.0f);
  }
  kernels::hogCellRowsScalar(field, params, out.scalar, 0, 1);
  kernels::hogCellRowsBatched(field, params, out.batched, 0, 1);
  for (int b = 0; b < params.numBins; ++b) {
    EXPECT_EQ(out.scalar.data[b], 0.0f);
    EXPECT_EQ(out.batched.data[b], 0.0f);
  }
}

TEST(CellKernelDispatch, EnvironmentOverrideForcesScalar) {
  ASSERT_EQ(unsetenv("PCNN_SIMD"), 0);
  EXPECT_EQ(kernels::activeKind(), kernels::Kind::kBatched);
  for (const char* off : {"off", "0", "scalar", "false"}) {
    ASSERT_EQ(setenv("PCNN_SIMD", off, 1), 0);
    EXPECT_EQ(kernels::activeKind(), kernels::Kind::kScalar) << off;
  }
  ASSERT_EQ(setenv("PCNN_SIMD", "on", 1), 0);
  EXPECT_EQ(kernels::activeKind(), kernels::Kind::kBatched);
  ASSERT_EQ(unsetenv("PCNN_SIMD"), 0);
  EXPECT_STRNE(kernels::kindName(kernels::Kind::kScalar),
               kernels::kindName(kernels::Kind::kBatched));
  EXPECT_NE(kernels::simdLevel(), nullptr);
}

TEST(CellKernelDispatch, ExtractorGridsAgreeAcrossDispatch) {
  // End-to-end: the registry extractors must produce (near-)identical cell
  // grids whether the env forces scalar or leaves the batched default.
  const vision::Image img = randomImage(96, 80, 4242);
  for (const char* spec : {"hog", "fixedpoint"}) {
    const auto extractor =
        extract::makeExtractor(spec, extract::FeatureLayout::kBlockNorm);
    ASSERT_EQ(unsetenv("PCNN_SIMD"), 0);
    const CellGrid batched = extractor->cellGrid(img);
    ASSERT_EQ(setenv("PCNN_SIMD", "off", 1), 0);
    const CellGrid scalar = extractor->cellGrid(img);
    ASSERT_EQ(unsetenv("PCNN_SIMD"), 0);
    ASSERT_EQ(batched.data.size(), scalar.data.size());
    ASSERT_FALSE(batched.data.empty());
    const bool exact = std::string(spec) == "fixedpoint";
    for (std::size_t i = 0; i < batched.data.size(); ++i) {
      if (exact) {
        ASSERT_EQ(batched.data[i], scalar.data[i]) << spec << " bin " << i;
      } else {
        ASSERT_NEAR(batched.data[i], scalar.data[i], 5e-3f)
            << spec << " bin " << i;
      }
    }
  }
}

}  // namespace
}  // namespace pcnn::hog
