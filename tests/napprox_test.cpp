#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <tuple>

#include "common/rng.hpp"
#include "eval/stats.hpp"
#include "napprox/corelet.hpp"
#include "napprox/napprox.hpp"
#include "napprox/quantized.hpp"
#include "vision/synth.hpp"

namespace pcnn::napprox {
namespace {

vision::Image orientedEdge(int size, float angleRad, float lo = 0.1f,
                           float hi = 0.9f) {
  vision::Image img(size, size);
  const float c = std::cos(angleRad);
  const float s = std::sin(angleRad);
  const float half = static_cast<float>(size - 1) / 2.0f;
  for (int y = 0; y < size; ++y) {
    for (int x = 0; x < size; ++x) {
      const float proj = c * (static_cast<float>(x) - half) +
                         s * (static_cast<float>(y) - half);
      img.at(x, y) = proj > 0 ? hi : lo;
    }
  }
  return img;
}

TEST(NApproxHog, BestDirectionMatchesGradientAngle) {
  const NApproxHog hog;
  // Gradient pointing along +x (theta = 0) -> direction 0.
  EXPECT_EQ(hog.bestDirection(1.0f, 0.0f), 0);
}

TEST(NApproxHog, BestDirectionQuarterTurns) {
  const NApproxHog hog;
  // 18 directions at 20-degree spacing: 90 degrees sits exactly between
  // directions 4 (80 deg) and 5 (100 deg); argmax keeps the first maximum.
  EXPECT_EQ(hog.bestDirection(0.0f, 1.0f), 4);
  EXPECT_EQ(hog.bestDirection(-1.0f, 0.0f), 9);   // 180 deg
  EXPECT_EQ(hog.bestDirection(0.0f, -1.0f), 13);  // 270 deg (260/280 tie)
}

TEST(NApproxHog, SignedOrientationDistinguishesPolarity) {
  const NApproxHog hog;
  const int up = hog.bestDirection(0.3f, 0.4f);
  const int down = hog.bestDirection(-0.3f, -0.4f);
  EXPECT_EQ((up + 9) % 18, down);  // opposite gradients differ by 180 deg
}

TEST(NApproxHog, WeakGradientsVoteNothing) {
  const NApproxHog hog;  // minMagnitude 0.08
  EXPECT_EQ(hog.bestDirection(0.01f, 0.01f), -1);
  EXPECT_EQ(hog.bestDirection(0.0f, 0.0f), -1);
}

TEST(NApproxHog, ProjectionIsMagnitudeAtTrueAngle) {
  // Table 1: (Ix cos + Iy sin) at the winning angle approximates the
  // gradient magnitude within the 20-degree bin width (cos(10deg) floor).
  const NApproxHog hog;
  pcnn::Rng rng(3);
  for (int t = 0; t < 500; ++t) {
    const float ix = static_cast<float>(rng.uniform(-1, 1));
    const float iy = static_cast<float>(rng.uniform(-1, 1));
    const float mag = std::sqrt(ix * ix + iy * iy);
    if (mag < 0.2f) continue;
    const int k = hog.bestDirection(ix, iy);
    ASSERT_GE(k, 0);
    const float approx = hog.projection(ix, iy, k);
    EXPECT_LE(approx, mag + 1e-5f);
    EXPECT_GE(approx, mag * std::cos(10.0f * 3.14159f / 180.0f) - 1e-5f);
  }
}

TEST(NApproxHog, CellHistogramCountsVotes) {
  const NApproxHog hog;
  const auto img = orientedEdge(10, 0.0f);
  const auto hist = hog.cellHistogram(img, 1, 1);
  const float total = std::accumulate(hist.begin(), hist.end(), 0.0f);
  EXPECT_GT(total, 0.0f);
  // Votes are counts: every entry is an integer.
  for (float v : hist) EXPECT_FLOAT_EQ(v, std::round(v));
  // The edge is vertical with brighter right side: votes concentrate at
  // direction 0 (gradient +x).
  const int best = static_cast<int>(
      std::max_element(hist.begin(), hist.end()) - hist.begin());
  EXPECT_EQ(best, 0);
}

TEST(NApproxHog, DescriptorShapes) {
  const NApproxHog hog;
  vision::Image window(64, 128, 0.5f);
  EXPECT_EQ(hog.windowDescriptor(window).size(),
            static_cast<std::size_t>(7560));
  EXPECT_EQ(hog.cellDescriptor(window).size(),
            static_cast<std::size_t>(8 * 16 * 18));
}

TEST(NApproxHog, InvalidParamsThrow) {
  NApproxParams params;
  params.bins = 0;
  EXPECT_THROW(NApproxHog{params}, std::invalid_argument);
}

TEST(QuantizedNApprox, ValidatesParams) {
  NApproxParams params;
  QuantizedParams quant;
  quant.spikeWindow = 0;
  EXPECT_THROW(QuantizedNApproxHog(params, quant), std::invalid_argument);
  quant.spikeWindow = 65;
  EXPECT_THROW(QuantizedNApproxHog(params, quant), std::invalid_argument);
  quant = {};
  quant.weightScale = 0;
  EXPECT_THROW(QuantizedNApproxHog(params, quant), std::invalid_argument);
}

TEST(QuantizedNApprox, DerivedThreshold) {
  NApproxParams params;  // minMagnitude = 0.04
  QuantizedParams quant;  // 64 spikes, scale 64, leak 8
  const QuantizedNApproxHog hog(params, quant);
  EXPECT_EQ(hog.effectiveThreshold(), 164);  // round(0.04*64*64)
  // Ramp threshold: (2*64 + 8)*64 + 1 -- unreachable while inputs arrive.
  EXPECT_EQ(hog.rampThreshold(), 8705);
  // Race tick of a threshold-grade projection: ceil((8705-164)/8).
  EXPECT_EQ(hog.cutoffBucket(), 1068);
}

TEST(QuantizedNApprox, RampRaceOrdersByProjection) {
  // Larger accumulated projections must fire strictly earlier whenever
  // they differ by at least one leak step; the winning direction of a
  // strong gradient therefore matches the analytic argmax.
  const QuantizedNApproxHog tick({}, {}, QuantizedMode::kTickAccurate);
  const QuantizedNApproxHog analytic({}, {}, QuantizedMode::kAnalytic);
  vision::Image img = orientedEdge(10, 0.6f, 0.1f, 0.9f);
  const auto ha = tick.cellHistogram(img, 1, 1);
  const auto hb = analytic.cellHistogram(img, 1, 1);
  const int bestTick = static_cast<int>(
      std::max_element(ha.begin(), ha.end()) - ha.begin());
  const int bestAnalytic = static_cast<int>(
      std::max_element(hb.begin(), hb.end()) - hb.begin());
  EXPECT_EQ(bestTick, bestAnalytic);
}

TEST(QuantizedNApprox, WeightsInChipRange) {
  const QuantizedNApproxHog hog;
  for (int w : hog.cosWeights()) {
    EXPECT_GE(w, -255);  // TrueNorth synaptic weights are 9-bit signed
    EXPECT_LE(w, 255);
  }
  EXPECT_EQ(hog.cosWeights()[0], 64);
  EXPECT_EQ(hog.sinWeights()[0], 0);
}

TEST(QuantizedNApprox, AnalyticCloseToFloatModel) {
  // The quantized histogram must correlate strongly with the fp model over
  // realistic cells (this is the NApprox vs NApprox(fp) comparison
  // underlying Figure 4).
  const NApproxHog fp;
  const QuantizedNApproxHog quantized;
  vision::SyntheticPersonDataset dataset;
  pcnn::Rng rng(7);

  std::vector<double> a, b;
  for (int i = 0; i < 30; ++i) {
    const vision::Image window = dataset.positiveWindow(rng);
    for (int cy = 0; cy < 4; ++cy) {
      for (int cx = 0; cx < 4; ++cx) {
        const auto ha = fp.cellHistogram(window, cx * 8, cy * 8 + 32);
        const auto hb = quantized.cellHistogram(window, cx * 8, cy * 8 + 32);
        for (std::size_t k = 0; k < ha.size(); ++k) {
          a.push_back(ha[k]);
          b.push_back(hb[k]);
        }
      }
    }
  }
  EXPECT_GT(eval::pearsonCorrelation(a, b), 0.7);
}

TEST(QuantizedNApprox, ExactOnCleanEdges) {
  // On noise-free oriented edges the quantized and float models agree
  // essentially perfectly -- quantization error only matters for weak
  // texture gradients near the vote threshold.
  const NApproxHog fp;
  const QuantizedNApproxHog quantized;
  const QuantizedNApproxHog tick({}, {}, QuantizedMode::kTickAccurate);
  pcnn::Rng rng(41);
  std::vector<double> a, b, c;
  for (int t = 0; t < 200; ++t) {
    const float angle = static_cast<float>(rng.uniform(0.0, 6.283));
    const float lo = static_cast<float>(rng.uniform(0.05, 0.5));
    const float hi = lo + static_cast<float>(rng.uniform(0.1, 0.45));
    const vision::Image img = orientedEdge(10, angle, lo, hi);
    const auto ha = fp.cellHistogram(img, 1, 1);
    const auto hb = quantized.cellHistogram(img, 1, 1);
    const auto hc = tick.cellHistogram(img, 1, 1);
    for (std::size_t k = 0; k < ha.size(); ++k) {
      a.push_back(ha[k]);
      b.push_back(hb[k]);
      c.push_back(hc[k]);
    }
  }
  EXPECT_GT(eval::pearsonCorrelation(a, b), 0.99);
  EXPECT_GT(eval::pearsonCorrelation(a, c), 0.99);
}

TEST(QuantizedNApprox, TickAccurateAgreesWithAnalyticMostly) {
  const QuantizedNApproxHog tick({}, {}, QuantizedMode::kTickAccurate);
  const QuantizedNApproxHog analytic({}, {}, QuantizedMode::kAnalytic);
  vision::SyntheticPersonDataset dataset;
  pcnn::Rng rng(9);
  std::vector<double> a, b;
  for (int i = 0; i < 10; ++i) {
    const vision::Image window = dataset.positiveWindow(rng);
    for (int cy = 0; cy < 3; ++cy) {
      const auto ha = tick.cellHistogram(window, 8, cy * 8 + 40);
      const auto hb = analytic.cellHistogram(window, 8, cy * 8 + 40);
      for (std::size_t k = 0; k < ha.size(); ++k) {
        a.push_back(ha[k]);
        b.push_back(hb[k]);
      }
    }
  }
  // Ramp-bucket ties vs exact-maximum ties differ only in corner cases.
  EXPECT_GT(eval::pearsonCorrelation(a, b), 0.9);
}

TEST(QuantizedNApprox, FlatCellProducesNoVotes) {
  const QuantizedNApproxHog hog({}, {}, QuantizedMode::kTickAccurate);
  vision::Image img(16, 16, 0.5f);
  const auto hist = hog.cellHistogram(img, 4, 4);
  for (float v : hist) EXPECT_FLOAT_EQ(v, 0.0f);
}

TEST(Corelet, BitExactAgainstTickAccurateModel) {
  // The crucial substrate validation: the corelet running on the TrueNorth
  // simulator reproduces the tick-accurate software model exactly
  // (paper Sec. 3.1 reports >99.5% correlation; an exact architectural
  // simulator lets us demand equality).
  const QuantizedNApproxHog model({}, {}, QuantizedMode::kTickAccurate);
  NApproxCorelet corelet(model);
  EXPECT_EQ(corelet.coreCount(), 20);  // 5 integrate + 10 WTA + 5 histogram

  vision::SyntheticPersonDataset dataset;
  pcnn::Rng rng(11);
  for (int i = 0; i < 4; ++i) {
    const vision::Image window = dataset.positiveWindow(rng);
    for (int cy : {2, 7, 12}) {
      const auto expected = model.cellHistogram(window, 24, cy * 8);
      const auto actual = corelet.extract(window, 24, cy * 8);
      EXPECT_EQ(actual, expected) << "window " << i << " cell row " << cy;
    }
  }
}

TEST(Corelet, OrientedEdgesLandInRightBin) {
  const QuantizedNApproxHog model({}, {}, QuantizedMode::kTickAccurate);
  NApproxCorelet corelet(model);
  // Edge with gradient along +x.
  const auto img = orientedEdge(10, 0.0f);
  const auto hist = corelet.extract(img, 1, 1);
  const int best = static_cast<int>(
      std::max_element(hist.begin(), hist.end()) - hist.begin());
  EXPECT_EQ(best, 0);
}

TEST(Corelet, LastRunStatsPopulated) {
  const QuantizedNApproxHog model({}, {}, QuantizedMode::kTickAccurate);
  NApproxCorelet corelet(model);
  vision::Image img = orientedEdge(10, 0.0f);
  corelet.extract(img, 1, 1);
  EXPECT_EQ(corelet.lastRun().ticksRun, corelet.ticksPerCell());
  // A strong edge must produce activity through all three stages:
  // integration fires, WTA winners, relays, and counters.
  EXPECT_GT(corelet.lastRun().totalSpikes, 0);
  EXPECT_FALSE(corelet.lastRun().outputSpikes.empty());
}

TEST(Corelet, RejectsWrongCellSize) {
  NApproxParams params;
  params.cellSize = 16;
  const QuantizedNApproxHog model(params, {}, QuantizedMode::kTickAccurate);
  EXPECT_THROW(NApproxCorelet{model}, std::invalid_argument);
}

double sweepCorrelation(int window) {
  NApproxParams params;
  QuantizedParams quant;
  quant.spikeWindow = window;
  const NApproxHog fp;
  const QuantizedNApproxHog quantized(params, quant);
  vision::SyntheticPersonDataset dataset;
  pcnn::Rng rng(13);
  std::vector<double> a, b;
  for (int i = 0; i < 12; ++i) {
    const vision::Image win = dataset.positiveWindow(rng);
    for (int cy : {4, 8, 12}) {
      for (int cx : {8, 24, 40}) {
        const auto ha = fp.cellHistogram(win, cx, cy * 8);
        const auto hb = quantized.cellHistogram(win, cx, cy * 8);
        for (std::size_t k = 0; k < ha.size(); ++k) {
          a.push_back(ha[k]);
          b.push_back(hb[k]);
        }
      }
    }
  }
  return eval::pearsonCorrelation(a, b);
}

/// Parameterized hardware-validation sweep: the corelet must stay
/// bit-exact against its software twin at every input precision and race
/// granularity, not just the defaults.
class CoreletExactness
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(CoreletExactness, BitExactAcrossQuantizations) {
  const auto [window, leak] = GetParam();
  NApproxParams params;
  QuantizedParams quant;
  quant.spikeWindow = window;
  quant.rampLeak = leak;
  const QuantizedNApproxHog model(params, quant,
                                  QuantizedMode::kTickAccurate);
  NApproxCorelet corelet(model);

  vision::SyntheticPersonDataset dataset;
  pcnn::Rng rng(97);
  const vision::Image win = dataset.positiveWindow(rng);
  for (int cy : {3, 9}) {
    const auto expected = model.cellHistogram(win, 16, cy * 8);
    const auto actual = corelet.extract(win, 16, cy * 8);
    EXPECT_EQ(actual, expected) << "window=" << window << " leak=" << leak;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Quantizations, CoreletExactness,
    ::testing::Combine(::testing::Values(16, 32, 64),
                       ::testing::Values(4, 8, 32)));

TEST(SpikeWindowSweep, QuantizedModelDegradesGracefully) {
  // Coarser input codes must lose fidelity *monotonically*, with the
  // paper's chosen 64-spike (6-bit) code staying strongly correlated with
  // the float model (the quantization study behind the NApprox design).
  // Weak-texture cells are inherently noisy under coarse input codes, so
  // the low-window correlations are small but must still improve with
  // precision.
  const double c8 = sweepCorrelation(8);
  const double c16 = sweepCorrelation(16);
  const double c32 = sweepCorrelation(32);
  const double c64 = sweepCorrelation(64);
  EXPECT_GT(c64, 0.6);
  EXPECT_GT(c64, c32 - 0.02);
  EXPECT_GT(c32, c16 - 0.02);
  EXPECT_GT(c16, c8 - 0.05);
}

}  // namespace
}  // namespace pcnn::napprox
