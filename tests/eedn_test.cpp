#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "common/rng.hpp"
#include <cstdio>
#include <sstream>

#include "eedn/classifier.hpp"
#include "eedn/mapper.hpp"
#include "eedn/partitioned.hpp"
#include "eedn/serialize.hpp"
#include "eedn/trinary.hpp"
#include "eedn/trinary_conv.hpp"
#include "nn/dense.hpp"
#include "nn/loss.hpp"

namespace pcnn::eedn {
namespace {

TEST(Trinarize, DeadZoneAndSigns) {
  EXPECT_EQ(trinarize(0.9f, 0.5f), 1);
  EXPECT_EQ(trinarize(-0.9f, 0.5f), -1);
  EXPECT_EQ(trinarize(0.2f, 0.5f), 0);
  EXPECT_EQ(trinarize(-0.2f, 0.5f), 0);
  EXPECT_EQ(trinarize(0.5f, 0.5f), 0);  // boundary is inside the dead zone
}

TEST(TrinaryDense, ForwardUsesTrinaryWeights) {
  pcnn::Rng rng(1);
  TrinaryDense layer(3, 1, rng, 0.5f);
  layer.hiddenWeights() = {0.9f, -0.9f, 0.1f};  // effective: +1, -1, 0
  const auto out = layer.forward({1.0f, 2.0f, 100.0f}, false);
  EXPECT_FLOAT_EQ(out[0], 1.0f - 2.0f);  // bias 0
}

TEST(TrinaryDense, EffectiveWeightAccessor) {
  pcnn::Rng rng(2);
  TrinaryDense layer(2, 2, rng, 0.5f);
  layer.hiddenWeights() = {0.8f, -0.8f, 0.0f, 0.6f};
  EXPECT_EQ(layer.effectiveWeight(0, 0), 1);
  EXPECT_EQ(layer.effectiveWeight(0, 1), -1);
  EXPECT_EQ(layer.effectiveWeight(1, 0), 0);
  EXPECT_EQ(layer.effectiveWeight(1, 1), 1);
}

TEST(TrinaryDense, HiddenWeightsStayClipped) {
  pcnn::Rng rng(3);
  TrinaryDense layer(2, 1, rng, 0.5f);
  for (int step = 0; step < 50; ++step) {
    layer.forward({1.0f, 1.0f}, true);
    layer.backward({-10.0f});  // push weights up hard
    layer.applyGradients(1.0f, 0.0f, 1);
  }
  for (float w : layer.hiddenWeights()) {
    EXPECT_GE(w, -1.0f);
    EXPECT_LE(w, 1.0f);
  }
}

TEST(TrinaryDense, InvalidParamsThrow) {
  pcnn::Rng rng(4);
  EXPECT_THROW(TrinaryDense(0, 1, rng), std::invalid_argument);
  EXPECT_THROW(TrinaryDense(1, 1, rng, 0.0f), std::invalid_argument);
  EXPECT_THROW(TrinaryDense(1, 1, rng, 1.0f), std::invalid_argument);
}

TEST(TrinaryDense, LearnsSignPattern) {
  // Target: y = x0 - x1; a trinary layer can represent it exactly.
  pcnn::Rng rng(5);
  TrinaryDense layer(2, 1, rng, 0.5f);
  pcnn::Rng dataRng(6);
  for (int step = 0; step < 3000; ++step) {
    const float x0 = static_cast<float>(dataRng.uniform());
    const float x1 = static_cast<float>(dataRng.uniform());
    const auto out = layer.forward({x0, x1}, true);
    const float diff = out[0] - (x0 - x1);
    layer.backward({2.0f * diff});
    layer.applyGradients(0.02f, 0.9f, 1);
  }
  EXPECT_EQ(layer.effectiveWeight(0, 0), 1);
  EXPECT_EQ(layer.effectiveWeight(0, 1), -1);
  EXPECT_NEAR(layer.bias(0), 0.0f, 0.25f);
}

TEST(SpikingThreshold, HeavisideForward) {
  SpikingThreshold spike(3, 1.0f);
  const auto out = spike.forward({-0.5f, 0.0f, 3.0f}, false);
  EXPECT_FLOAT_EQ(out[0], 0.0f);
  EXPECT_FLOAT_EQ(out[1], 1.0f);  // fires at threshold
  EXPECT_FLOAT_EQ(out[2], 1.0f);
}

TEST(SpikingThreshold, BoxcarSurrogateGradient) {
  SpikingThreshold spike(3, 1.0f);
  spike.forward({-0.5f, -5.0f, 0.5f}, true);
  const auto grad = spike.backward({1.0f, 1.0f, 1.0f});
  EXPECT_FLOAT_EQ(grad[0], 1.0f);   // inside the window
  EXPECT_FLOAT_EQ(grad[1], 0.0f);   // outside
  EXPECT_FLOAT_EQ(grad[2], 1.0f);
}

TEST(PartitionedDense, GroupGeometry) {
  pcnn::Rng rng(7);
  PartitionedDense layer(300, 128, 16, rng);
  EXPECT_EQ(layer.groupCount(), 3);  // 128 + 128 + 44
  EXPECT_EQ(layer.outputSize(), 48);
  EXPECT_EQ(layer.group(0).inputOffset, 0);
  EXPECT_EQ(layer.group(2).inputOffset, 256);
  EXPECT_EQ(layer.group(2).inputSize, 44);
}

TEST(PartitionedDense, ForwardMatchesPerGroupDense) {
  pcnn::Rng rng(8);
  PartitionedDense layer(10, 5, 3, rng);
  std::vector<float> x(10);
  pcnn::Rng dataRng(9);
  for (auto& v : x) v = static_cast<float>(dataRng.uniform());
  const auto out = layer.forward(x, false);
  ASSERT_EQ(out.size(), 6u);
  // Group 1's outputs must ignore group 0's inputs.
  std::vector<float> x2 = x;
  for (int i = 0; i < 5; ++i) x2[i] += 1.0f;
  const auto out2 = layer.forward(x2, false);
  for (int j = 3; j < 6; ++j) EXPECT_FLOAT_EQ(out[j], out2[j]);
}

TEST(PartitionedDense, BackwardRoutesGradientsToGroups) {
  pcnn::Rng rng(10);
  PartitionedDense layer(8, 4, 2, rng);
  layer.forward(std::vector<float>(8, 1.0f), true);
  // Gradient only on group 1 outputs: input grads on group 0 must be zero.
  const auto gradIn = layer.backward({0, 0, 1.0f, -1.0f});
  for (int i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(gradIn[i], 0.0f);
}

TEST(EednClassifier, ConfigValidation) {
  EednClassifierConfig config;
  config.inputSize = 0;
  EXPECT_THROW(EednClassifier{config}, std::invalid_argument);
}

TEST(EednClassifier, LearnsLinearlySeparableData) {
  EednClassifierConfig config;
  config.inputSize = 16;
  config.groupInputSize = 16;
  config.outputsPerGroup = 16;
  config.hiddenWidths = {};
  config.outputPopulation = 4;
  EednClassifier classifier(config);

  // Positive: energy in the first half; negative: in the second half.
  BinaryDataset data;
  pcnn::Rng rng(11);
  for (int i = 0; i < 200; ++i) {
    std::vector<float> x(16, 0.0f);
    const bool positive = (i % 2 == 0);
    for (int d = 0; d < 8; ++d) {
      x[positive ? d : 8 + d] = 0.5f + 0.5f * static_cast<float>(rng.uniform());
    }
    data.features.push_back(std::move(x));
    data.labels.push_back(positive ? 1 : -1);
  }
  for (int epoch = 0; epoch < 40; ++epoch) {
    classifier.trainEpoch(data, 0.05f);
  }
  EXPECT_GT(classifier.evalAccuracy(data), 0.9);
}

TEST(EednClassifier, CoreEstimateCountsGroups) {
  EednClassifierConfig config;
  config.inputSize = 2304;
  config.groupInputSize = 126;
  config.outputsPerGroup = 16;
  config.hiddenWidths = {120};
  EednClassifier classifier(config);
  // ceil(2304/126) = 19 front cores + 1 hidden (fan-in 304 -> 3 splits)
  // + 1 output core.
  const long cores = classifier.coreCountEstimate();
  EXPECT_GE(cores, 19 + 1 + 1);
  EXPECT_LT(cores, 40);
}

/// Parameterized config sweep: every crossbar-compatible shape must learn
/// the same trivially separable task.
struct ClassifierShape {
  int groupInputSize;
  int outputsPerGroup;
  int hiddenCount;
};
class ClassifierConfigSweep
    : public ::testing::TestWithParam<ClassifierShape> {};

TEST_P(ClassifierConfigSweep, LearnsSeparableTask) {
  const ClassifierShape shape = GetParam();
  EednClassifierConfig config;
  config.inputSize = 64;
  config.groupInputSize = shape.groupInputSize;
  config.outputsPerGroup = shape.outputsPerGroup;
  config.hiddenWidths.assign(static_cast<std::size_t>(shape.hiddenCount),
                             64);
  config.outputPopulation = 4;
  config.seed = 5;
  EednClassifier classifier(config);

  BinaryDataset data;
  pcnn::Rng rng(11);
  for (int i = 0; i < 160; ++i) {
    std::vector<float> x(64, 0.0f);
    const bool positive = (i % 2 == 0);
    for (int d = 0; d < 32; ++d) {
      x[positive ? d : 32 + d] =
          0.5f + 0.5f * static_cast<float>(rng.uniform());
    }
    data.features.push_back(std::move(x));
    data.labels.push_back(positive ? 1 : -1);
  }
  for (int epoch = 0; epoch < 40; ++epoch) {
    classifier.trainEpoch(data, 0.05f);
  }
  EXPECT_GT(classifier.evalAccuracy(data), 0.85)
      << "groups of " << shape.groupInputSize << ", " << shape.hiddenCount
      << " hidden layers";
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ClassifierConfigSweep,
    ::testing::Values(ClassifierShape{16, 8, 0}, ClassifierShape{16, 8, 1},
                      ClassifierShape{32, 16, 1}, ClassifierShape{64, 32, 2},
                      ClassifierShape{8, 4, 0}));

TEST(EednClassifier, BlindDecisionRateDetectsCollapse) {
  EednClassifierConfig config;
  config.inputSize = 4;
  config.groupInputSize = 4;
  config.outputsPerGroup = 4;
  config.hiddenWidths = {};
  EednClassifier classifier(config);
  BinaryDataset data;
  for (int i = 0; i < 10; ++i) {
    data.features.push_back({0.1f, 0.2f, 0.3f, 0.4f});
    data.labels.push_back(i % 2 == 0 ? 1 : -1);
  }
  // Identical inputs: predictions are necessarily constant => rate 1.
  EXPECT_DOUBLE_EQ(classifier.blindDecisionRate(data), 1.0);
}

TEST(TrinaryConv2d, GeometryAndValidation) {
  pcnn::Rng rng(31);
  TrinaryConv2d conv(2, 8, 10, 4, 3, 1, rng);
  EXPECT_EQ(conv.outHeight(), 8);
  EXPECT_EQ(conv.outWidth(), 10);
  EXPECT_EQ(conv.fanIn(), 2 * 9);
  EXPECT_EQ(conv.parameterCount(), 4 * 2 * 9 + 4);
  EXPECT_THROW(TrinaryConv2d(1, 2, 2, 1, 5, 0, rng), std::invalid_argument);
  EXPECT_THROW(TrinaryConv2d(1, 4, 4, 1, 3, 0, rng, 0.0f),
               std::invalid_argument);
}

TEST(TrinaryConv2d, ForwardUsesTrinaryWeights) {
  pcnn::Rng rng(32);
  TrinaryConv2d conv(1, 3, 3, 1, 1, 0, rng);  // 1x1 kernel = scalar gate
  conv.hiddenWeights() = {0.9f};              // effective +1
  const std::vector<float> x = {1, 2, 3, 4, 5, 6, 7, 8, 9};
  EXPECT_EQ(conv.forward(x, false), x);
  conv.hiddenWeights() = {0.1f};  // effective 0
  for (float v : conv.forward(x, false)) EXPECT_FLOAT_EQ(v, 0.0f);
}

TEST(TrinaryConv2d, LearnsSignedEdgeMask) {
  // The [-1,0,1] horizontal mask is exactly representable with trinary
  // weights; SGD with the straight-through estimator must find it.
  pcnn::Rng rng(33);
  TrinaryConv2d conv(1, 5, 5, 1, 3, 1, rng);
  pcnn::Rng dataRng(34);
  for (int step = 0; step < 4000; ++step) {
    std::vector<float> x(25);
    for (auto& v : x) v = static_cast<float>(dataRng.uniform());
    std::vector<float> target(25, 0.0f);
    for (int y = 0; y < 5; ++y) {
      for (int xx = 0; xx < 5; ++xx) {
        const float right = xx + 1 < 5 ? x[y * 5 + xx + 1] : 0.0f;
        const float left = xx - 1 >= 0 ? x[y * 5 + xx - 1] : 0.0f;
        target[y * 5 + xx] = right - left;
      }
    }
    const auto out = conv.forward(x, true);
    conv.backward(nn::mseLoss(out, target).grad);
    conv.applyGradients(0.02f, 0.9f, 1);
  }
  // Centre row of the learned kernel: -1 0 +1.
  EXPECT_EQ(conv.effectiveWeight(0, 0, 1, 0), -1);
  EXPECT_EQ(conv.effectiveWeight(0, 0, 1, 1), 0);
  EXPECT_EQ(conv.effectiveWeight(0, 0, 1, 2), 1);
}

TEST(TrinaryConv2d, HiddenWeightsStayClipped) {
  pcnn::Rng rng(35);
  TrinaryConv2d conv(1, 3, 3, 1, 3, 1, rng);
  for (int step = 0; step < 30; ++step) {
    conv.forward(std::vector<float>(9, 1.0f), true);
    conv.backward(std::vector<float>(9, -5.0f));
    conv.applyGradients(1.0f, 0.0f, 1);
  }
  for (float w : conv.hiddenWeights()) {
    EXPECT_GE(w, -1.0f);
    EXPECT_LE(w, 1.0f);
  }
}

nn::Sequential makeSerializableNet(std::uint64_t seed) {
  pcnn::Rng rng(seed);
  nn::Sequential net;
  net.add(std::make_unique<PartitionedDense>(20, 10, 6, rng));
  net.add(std::make_unique<SpikingThreshold>(12, 3.0f));
  net.add(std::make_unique<TrinaryDense>(12, 5, rng));
  return net;
}

TEST(Serialize, RoundTripPreservesOutputs) {
  nn::Sequential original = makeSerializableNet(101);
  // Nudge some parameters so the round trip carries non-initial state.
  pcnn::Rng dataRng(7);
  for (int step = 0; step < 50; ++step) {
    std::vector<float> x(20);
    for (auto& v : x) v = static_cast<float>(dataRng.uniform());
    original.forward(x, true);
    original.backward(std::vector<float>(5, 0.3f));
    original.applyGradients(0.05f, 0.9f, 1);
  }

  std::stringstream buffer;
  ASSERT_TRUE(trySaveNetwork(original, buffer).ok());

  nn::Sequential restored = makeSerializableNet(999);  // different init
  const pcnn::Status status = tryLoadNetwork(restored, buffer);
  ASSERT_TRUE(status.ok()) << status.toString();

  // Parameters restored bit-exactly (9 significant digits round-trips
  // float exactly) ...
  const auto& originalOut = dynamic_cast<TrinaryDense&>(original.layer(2));
  const auto& restoredOut = dynamic_cast<TrinaryDense&>(restored.layer(2));
  EXPECT_EQ(originalOut.hiddenWeights(), restoredOut.hiddenWeights());
  EXPECT_EQ(originalOut.biases(), restoredOut.biases());

  // ... and therefore identical outputs.
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<float> x(20);
    for (auto& v : x) v = static_cast<float>(dataRng.uniform());
    EXPECT_EQ(original.forward(x, false), restored.forward(x, false));
  }
}

TEST(Serialize, ShapeMismatchRejected) {
  nn::Sequential original = makeSerializableNet(1);
  std::stringstream buffer;
  saveNetwork(original, buffer);

  pcnn::Rng rng(2);
  nn::Sequential different;
  different.add(std::make_unique<TrinaryDense>(20, 5, rng));
  EXPECT_EQ(tryLoadNetwork(different, buffer).code(),
            pcnn::StatusCode::kDataLoss);
}

TEST(Serialize, TruncatedStreamRejected) {
  nn::Sequential original = makeSerializableNet(3);
  std::stringstream buffer;
  saveNetwork(original, buffer);
  const std::string text = buffer.str();
  std::stringstream truncated(text.substr(0, text.size() / 2));
  nn::Sequential target = makeSerializableNet(4);
  EXPECT_EQ(tryLoadNetwork(target, truncated).code(),
            pcnn::StatusCode::kDataLoss);
}

// The deprecated throwing wrappers stay covered: existing callers rely on
// their exception contract until they migrate to the try* forms.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
TEST(Serialize, LegacyLoadWrapperThrows) {
  nn::Sequential original = makeSerializableNet(1);
  std::stringstream buffer;
  saveNetwork(original, buffer);
  pcnn::Rng rng(2);
  nn::Sequential different;
  different.add(std::make_unique<TrinaryDense>(20, 5, rng));
  EXPECT_THROW(loadNetwork(different, buffer), std::runtime_error);
}
#pragma GCC diagnostic pop

TEST(Serialize, UnsupportedLayerRejected) {
  pcnn::Rng rng(5);
  nn::Sequential net;
  net.add(std::make_unique<nn::Dense>(4, 2, rng));
  std::stringstream buffer;
  EXPECT_THROW(saveNetwork(net, buffer), std::invalid_argument);
}

TEST(Serialize, FileRoundTrip) {
  nn::Sequential original = makeSerializableNet(6);
  const std::string path = "/tmp/pcnn_test_eedn_model.txt";
  ASSERT_TRUE(trySaveNetworkFile(original, path).ok());
  nn::Sequential restored = makeSerializableNet(7);
  ASSERT_TRUE(tryLoadNetworkFile(restored, path).ok());
  std::vector<float> x(20, 0.5f);
  EXPECT_EQ(original.forward(x, false), restored.forward(x, false));
  std::remove(path.c_str());
}

TEST(TnMapper, MappedNetworkMatchesReferenceExactly) {
  // Small trainable net, random weights: simulator must agree with the
  // integer reference on every random binary input.
  pcnn::Rng rng(13);
  nn::Sequential net;
  net.add(std::make_unique<PartitionedDense>(20, 10, 6, rng));
  net.add(std::make_unique<SpikingThreshold>(12, 3.0f));
  net.add(std::make_unique<TrinaryDense>(12, 5, rng));

  auto mapped = TnMapper::map(net);
  EXPECT_EQ(mapped->inputSize(), 20);
  EXPECT_EQ(mapped->outputSize(), 5);
  EXPECT_EQ(mapped->depth(), 2);
  EXPECT_EQ(mapped->coreCount(), 3);

  pcnn::Rng dataRng(14);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<int> input(20);
    for (auto& v : input) v = dataRng.bernoulli(0.4) ? 1 : 0;
    EXPECT_EQ(mapped->forwardSpikes(input), mapped->referenceForward(input))
        << "trial " << trial;
  }
}

TEST(TnMapper, ReferenceMatchesFloatNetOnBinaryInputs) {
  // With integer-rounded biases the reference forward equals the float
  // network thresholded at 0 (biases trained here stay at 0).
  pcnn::Rng rng(15);
  nn::Sequential net;
  net.add(std::make_unique<TrinaryDense>(8, 6, rng));
  net.add(std::make_unique<SpikingThreshold>(6, 2.0f));
  net.add(std::make_unique<TrinaryDense>(6, 3, rng));
  auto mapped = TnMapper::map(net);

  pcnn::Rng dataRng(16);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<int> input(8);
    std::vector<float> fin(8);
    for (int i = 0; i < 8; ++i) {
      input[i] = dataRng.bernoulli(0.5) ? 1 : 0;
      fin[i] = static_cast<float>(input[i]);
    }
    const auto scores = net.forward(fin, false);
    const auto spikes = mapped->referenceForward(input);
    for (std::size_t j = 0; j < spikes.size(); ++j) {
      EXPECT_EQ(spikes[j], scores[j] >= 0.0f ? 1 : 0);
    }
  }
}

TEST(TnMapper, RejectsOversizedFanIn) {
  pcnn::Rng rng(17);
  nn::Sequential net;
  net.add(std::make_unique<TrinaryDense>(200, 4, rng));
  EXPECT_THROW(TnMapper::map(net), std::invalid_argument);
}

TEST(TnMapper, ChunksWideBanksAcrossCores) {
  // A 300-neuron bank exceeds one core: it must split into 128-neuron
  // chunks, the downstream merge stage reading across chunk boundaries,
  // with simulation still exactly matching the reference.
  pcnn::Rng rng(18);
  nn::Sequential net;
  net.add(std::make_unique<TrinaryDense>(20, 300, rng));
  net.add(std::make_unique<SpikingThreshold>(300, 4.0f));
  net.add(std::make_unique<PartitionedDense>(300, 100, 10, rng));
  net.add(std::make_unique<SpikingThreshold>(30, 10.0f));
  net.add(std::make_unique<TrinaryDense>(30, 4, rng));
  auto mapped = TnMapper::map(net);
  // 3 chunk cores + 3 merge groups + 1 output core.
  EXPECT_EQ(mapped->coreCount(), 7);
  pcnn::Rng dataRng(19);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<int> input(20);
    for (auto& v : input) v = dataRng.bernoulli(0.5) ? 1 : 0;
    EXPECT_EQ(mapped->forwardSpikes(input), mapped->referenceForward(input));
  }
}

TEST(TnMapper, MultiConsumerFanOut) {
  // A producer whose outputs feed a *chunked* wide bank downstream needs
  // one copy pair per chunk core; verify exactness in that topology.
  pcnn::Rng rng(20);
  nn::Sequential net;
  net.add(std::make_unique<TrinaryDense>(16, 40, rng));
  net.add(std::make_unique<SpikingThreshold>(40, 4.0f));
  net.add(std::make_unique<TrinaryDense>(40, 200, rng));  // 2 chunks
  net.add(std::make_unique<SpikingThreshold>(200, 6.0f));
  net.add(std::make_unique<PartitionedDense>(200, 100, 4, rng));
  auto mapped = TnMapper::map(net);
  EXPECT_EQ(mapped->coreCount(), 1 + 2 + 2);
  pcnn::Rng dataRng(21);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<int> input(16);
    for (auto& v : input) v = dataRng.bernoulli(0.5) ? 1 : 0;
    EXPECT_EQ(mapped->forwardSpikes(input), mapped->referenceForward(input));
  }
}

TEST(TnMapper, RejectsOverflowingDuplication) {
  // 128 logical producers x 2 consumers x 2 signs = 512 copies > 256.
  pcnn::Rng rng(22);
  nn::Sequential net;
  net.add(std::make_unique<TrinaryDense>(16, 128, rng));
  net.add(std::make_unique<SpikingThreshold>(128, 4.0f));
  net.add(std::make_unique<TrinaryDense>(128, 200, rng));  // 2 chunks
  EXPECT_THROW(TnMapper::map(net), std::invalid_argument);
}

TEST(TnMapper, RejectsUnsupportedLayers) {
  pcnn::Rng rng(19);
  nn::Sequential net;
  net.add(std::make_unique<nn::Dense>(4, 2, rng));
  EXPECT_THROW(TnMapper::map(net), std::invalid_argument);
}

}  // namespace
}  // namespace pcnn::eedn
