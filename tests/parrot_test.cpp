#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "common/rng.hpp"
#include "eedn/mapper.hpp"
#include "eval/stats.hpp"
#include "parrot/generator.hpp"
#include "parrot/parrot.hpp"
#include "vision/synth.hpp"

namespace pcnn::parrot {
namespace {

TEST(Generator, SampleShapes) {
  OrientedSampleGenerator generator;
  pcnn::Rng rng(1);
  const ParrotSample sample = generator.sample(rng);
  EXPECT_EQ(sample.pixels.size(), 100u);
  EXPECT_EQ(sample.target.size(), 18u);
  for (float v : sample.pixels) {
    EXPECT_GE(v, 0.0f);
    EXPECT_LE(v, 1.0f);
  }
  for (float v : sample.target) {
    EXPECT_GE(v, 0.0f);
    EXPECT_LE(v, 64.0f);  // vote counts of an 8x8 cell
  }
}

TEST(Generator, TargetsAreReferenceHistograms) {
  // The label is by construction the NApprox(fp) histogram / 64.
  OrientedSampleGenerator generator;
  napprox::NApproxHog reference;
  pcnn::Rng rng(2);
  for (int i = 0; i < 20; ++i) {
    const ParrotSample sample = generator.sample(rng);
    vision::Image img(10, 10);
    img.data() = sample.pixels;
    const auto hist = reference.cellHistogram(img, 1, 1);
    for (std::size_t k = 0; k < hist.size(); ++k) {
      EXPECT_NEAR(sample.target[k], hist[k], 1e-6f);
    }
  }
}

TEST(Generator, DominantBinConsistent) {
  OrientedSampleGenerator generator;
  pcnn::Rng rng(3);
  for (int i = 0; i < 30; ++i) {
    const ParrotSample sample = generator.sample(rng);
    if (sample.dominantBin < 0) continue;
    const float best = sample.target[sample.dominantBin];
    for (float v : sample.target) EXPECT_LE(v, best + 1e-6f);
    EXPECT_GT(best, 0.0f);
  }
}

TEST(Generator, FillRatioVariesAcrossSamples) {
  // "different ratio of 1's and 0's": the foreground fraction must spread.
  OrientedSampleGenerator generator;
  pcnn::Rng rng(4);
  float minFill = 1.0f, maxFill = 0.0f;
  for (int i = 0; i < 60; ++i) {
    const vision::Image patch = generator.patch(rng);
    const float fill = vision::meanValue(patch);
    minFill = std::min(minFill, fill);
    maxFill = std::max(maxFill, fill);
  }
  EXPECT_LT(minFill, 0.35f);
  EXPECT_GT(maxFill, 0.65f);
}

TEST(Generator, BatchSize) {
  OrientedSampleGenerator generator;
  pcnn::Rng rng(5);
  EXPECT_EQ(generator.batch(17, rng).size(), 17u);
  EXPECT_TRUE(generator.batch(0, rng).empty());
}

TEST(ParrotHog, ConfigValidation) {
  ParrotConfig config;
  config.hiddenWidth = 0;
  EXPECT_THROW(ParrotHog{config}, std::invalid_argument);
  config = ParrotConfig{};
  config.hiddenWidth = 505;  // 5 merge groups -> 130 > 127 output fan-in
  EXPECT_THROW(ParrotHog{config}, std::invalid_argument);
  config = ParrotConfig{};
  config.mergeGroupInput = 128;  // exceeds crossbar fan-in
  EXPECT_THROW(ParrotHog{config}, std::invalid_argument);
}

TEST(ParrotHog, InferShapeChecks) {
  ParrotHog hog;
  EXPECT_THROW(hog.infer(std::vector<float>(50)), std::invalid_argument);
  const auto out = hog.infer(std::vector<float>(100, 0.5f));
  EXPECT_EQ(out.size(), 18u);
}

TEST(ParrotHog, TrainingReducesLoss) {
  ParrotConfig config;
  config.seed = 7;
  ParrotHog hog(config);
  OrientedSampleGenerator generator;
  const float before = hog.validate(generator, 150);
  hog.train(generator, 1200, 8, 0.01f);
  const float after = hog.validate(generator, 150);
  EXPECT_LT(after, before * 0.8f);
}

TEST(ParrotHog, LearnsDominantOrientation) {
  // The headline parrot property: after training, the network's argmax bin
  // matches the reference HoG's dominant bin on most validation samples.
  ParrotConfig config;
  config.seed = 11;
  ParrotHog hog(config);
  OrientedSampleGenerator generator;  // full training distribution
  hog.train(generator, 4000, 16, 0.005f);
  // Evaluate mimicry on the clean binary patterns of the paper's Figure 3,
  // where the dominant orientation is unambiguous. 18-way task, chance is
  // 0.056.
  GeneratorParams cleanParams;
  cleanParams.grayLevels = false;
  cleanParams.gratingProbability = 0.0f;
  cleanParams.randomProbability = 0.0f;
  cleanParams.textureProbability = 0.0f;
  const OrientedSampleGenerator cleanGenerator(cleanParams);
  EXPECT_GT(hog.dominantBinAccuracy(cleanGenerator, 300), 0.5);
}

TEST(ParrotHog, CellGridLayout) {
  ParrotHog hog;
  vision::Image img(64, 128, 0.5f);
  const auto grid = hog.computeCells(img);
  EXPECT_EQ(grid.cellsX, 8);
  EXPECT_EQ(grid.cellsY, 16);
  EXPECT_EQ(grid.bins, 18);
  EXPECT_EQ(hog.cellDescriptor(img).size(),
            static_cast<std::size_t>(8 * 16 * 18));
  EXPECT_EQ(hog.windowDescriptor(img).size(), static_cast<std::size_t>(7560));
}

TEST(ParrotHog, StochasticCodingAddsBoundedNoise) {
  ParrotConfig config;
  config.seed = 13;
  ParrotHog exact(config);
  OrientedSampleGenerator generator;
  exact.train(generator, 800, 6, 0.01f);

  pcnn::Rng rng(17);
  const ParrotSample sample = generator.sample(rng);
  const auto cleanOut = exact.infer(sample.pixels);

  exact.setInputSpikes(32);
  const auto codedOut = exact.infer(sample.pixels);
  exact.setInputSpikes(0);

  // 32-spike coding perturbs outputs but keeps them close on average.
  double diff = 0;
  for (std::size_t k = 0; k < cleanOut.size(); ++k) {
    diff += std::abs(cleanOut[k] - codedOut[k]);
  }
  EXPECT_LT(diff / static_cast<double>(cleanOut.size()), 0.5);
}

TEST(ParrotHog, OneSpikeCodingIsCoarsest) {
  // With binary (0/1) patch inputs, 1-spike Bernoulli coding still conveys
  // the pattern; with graded inputs it quantizes hard. Check it runs and
  // produces finite outputs.
  ParrotHog hog;
  hog.setInputSpikes(1);
  const auto out = hog.infer(std::vector<float>(100, 0.5f));
  for (float v : out) EXPECT_TRUE(std::isfinite(v));
}

TEST(ParrotHog, MapsOntoTrueNorthCores) {
  // The trained parrot must deploy onto the simulator through the Eedn
  // mapper -- the paper's whole point is extractor and classifier sharing
  // the platform.
  ParrotConfig config;
  config.seed = 19;
  ParrotHog hog(config);
  auto mapped = eedn::TnMapper::map(hog.net());
  EXPECT_EQ(mapped->inputSize(), 100);
  EXPECT_EQ(mapped->outputSize(), 18);
  EXPECT_EQ(mapped->coreCount(), hog.mappedCoresPerCell());

  pcnn::Rng rng(23);
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<int> input(100);
    for (auto& v : input) v = rng.bernoulli(0.5) ? 1 : 0;
    EXPECT_EQ(mapped->forwardSpikes(input), mapped->referenceForward(input));
  }
}

}  // namespace
}  // namespace pcnn::parrot
