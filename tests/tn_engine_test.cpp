#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <vector>

#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "eedn/mapper.hpp"
#include "eedn/trinary.hpp"
#include "nn/sequential.hpp"
#include "tn/network.hpp"

// Engine-parity suite: the event-driven engine must produce
// bitwise-identical RunResults to the dense reference -- same recorded
// output spikes in the same order, same totals, same per-core counts --
// for any thread count, with and without fault injection. Every run in
// this file builds its networks from scratch so the two engines (and any
// two thread counts) see exactly the same initial state.

namespace {

using pcnn::Rng;
using pcnn::tn::EngineKind;
using pcnn::tn::FaultCounts;
using pcnn::tn::FaultPlan;
using pcnn::tn::Network;
using pcnn::tn::ResetMode;
using pcnn::tn::RunResult;

/// A deliberately mixed network: sparse crossbars, all three reset modes,
/// cross-core routing with varied delays, and -- on a subset of cores only,
/// so the active set stays genuinely sparse -- leak dynamics and
/// stochastic thresholds. Inputs arrive in bursts with quiet gaps, plus
/// far-future events that exercise the overflow list, plus a pre-run
/// potential mutation (the "restless start" the event engine must notice
/// without any delivery).
void buildMixedNetwork(Network& net, int cores, std::uint64_t seed) {
  Rng rng(seed);
  for (int c = 0; c < cores; ++c) net.addCore();
  for (int c = 0; c < cores; ++c) {
    pcnn::tn::Core& core = net.core(c);
    for (int a = 0; a < 64; ++a) {
      core.setAxonType(a, rng.uniformInt(0, 3));
      for (int k = 0; k < 4; ++k) {
        core.setConnection(a, rng.uniformInt(0, 255), true);
      }
    }
    for (int n = 0; n < pcnn::tn::kNeuronsPerCore; ++n) {
      pcnn::tn::NeuronConfig& cfg = core.neuron(n);
      for (int t = 0; t < pcnn::tn::kAxonTypes; ++t) {
        cfg.synapticWeights[static_cast<std::size_t>(t)] =
            rng.uniformInt(-3, 3);
      }
      cfg.threshold = rng.uniformInt(1, 4);
      cfg.floorPotential = -8;
      cfg.resetMode = n % 3 == 0   ? ResetMode::kAbsolute
                      : n % 3 == 1 ? ResetMode::kLinear
                                   : ResetMode::kNone;
      if (c % 3 == 0 && n % 16 == 0) cfg.leak = rng.uniformInt(-1, 1);
      if (c % 4 == 1 && n % 32 == 5) {
        cfg.stochasticThreshold = true;
        cfg.stochasticMask = 3;
      }
      cfg.recordOutput = n % 8 == 0;
      if (n % 2 == 0) {
        cfg.dest = {rng.uniformInt(0, cores - 1), rng.uniformInt(0, 255),
                    rng.uniformInt(1, pcnn::tn::kMaxDelayTicks)};
      }
    }
  }
  for (int i = 0; i < 200; ++i) {
    net.scheduleInput(rng.uniformInt(0, 12), rng.uniformInt(0, cores - 1),
                      rng.uniformInt(0, 255));
  }
  // Far-future inputs (the overflow list) after a quiet gap.
  for (int i = 0; i < 20; ++i) {
    net.scheduleInput(rng.uniformInt(30, 40), rng.uniformInt(0, cores - 1),
                      rng.uniformInt(0, 255));
  }
  net.core(0).setPotential(3, 100);
}

struct RunOutcome {
  RunResult result;
  FaultCounts faults;
};

RunOutcome runMixed(EngineKind kind, int threads,
                    const std::optional<FaultPlan>& plan, long ticks = 50) {
  const int before = pcnn::threadCount();
  pcnn::setThreadCount(threads);
  Network net(7);
  buildMixedNetwork(net, 12, 99);
  if (plan.has_value()) net.setFaultPlan(*plan);
  net.setEngine(kind);
  RunOutcome outcome{net.run(ticks), net.faultCounts()};
  pcnn::setThreadCount(before);
  return outcome;
}

void expectBitwiseEqual(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.totalSpikes, b.totalSpikes);
  EXPECT_EQ(a.ticksRun, b.ticksRun);
  EXPECT_EQ(a.coreSpikes, b.coreSpikes);
  ASSERT_EQ(a.outputSpikes.size(), b.outputSpikes.size());
  for (std::size_t i = 0; i < a.outputSpikes.size(); ++i) {
    EXPECT_EQ(a.outputSpikes[i].tick, b.outputSpikes[i].tick) << "spike " << i;
    EXPECT_EQ(a.outputSpikes[i].core, b.outputSpikes[i].core) << "spike " << i;
    EXPECT_EQ(a.outputSpikes[i].neuron, b.outputSpikes[i].neuron)
        << "spike " << i;
  }
}

void expectSameFaults(const FaultCounts& a, const FaultCounts& b) {
  EXPECT_EQ(a.droppedSpikes, b.droppedSpikes);
  EXPECT_EQ(a.deadCoreDrops, b.deadCoreDrops);
  EXPECT_EQ(a.stuckOnSpikes, b.stuckOnSpikes);
  EXPECT_EQ(a.stuckOffSuppressed, b.stuckOffSuppressed);
  EXPECT_EQ(a.weightFlips, b.weightFlips);
}

TEST(TnEngineParity, MatchesDenseAcrossThreadCounts) {
  const RunOutcome dense = runMixed(EngineKind::kDense, 1, std::nullopt);
  ASSERT_GT(dense.result.totalSpikes, 0);
  for (int threads : {1, 2, 4}) {
    const RunOutcome event =
        runMixed(EngineKind::kEvent, threads, std::nullopt);
    expectBitwiseEqual(dense.result, event.result);
  }
  // The dense engine itself is the thread-invariance reference.
  const RunOutcome dense4 = runMixed(EngineKind::kDense, 4, std::nullopt);
  expectBitwiseEqual(dense.result, dense4.result);
}

TEST(TnEngineParity, MatchesDenseUnderFaultPlan) {
  FaultPlan plan;
  plan.spikeDropProb = 0.05;
  plan.deadCores = 2;
  plan.stuckOnNeurons = 3;
  plan.stuckOffNeurons = 3;
  plan.weightFlipProb = 0.02;
  plan.seed = 5;
  const RunOutcome dense = runMixed(EngineKind::kDense, 1, plan);
  ASSERT_GT(dense.faults.total(), 0);
  for (int threads : {1, 2, 4}) {
    const RunOutcome event = runMixed(EngineKind::kEvent, threads, plan);
    expectBitwiseEqual(dense.result, event.result);
    expectSameFaults(dense.faults, event.faults);
  }
}

TEST(TnEngineParity, ContinuationAcrossRunsAndReset) {
  for (int threads : {1, 4}) {
    auto runSplit = [threads](EngineKind kind) {
      const int before = pcnn::threadCount();
      pcnn::setThreadCount(threads);
      Network net(7);
      buildMixedNetwork(net, 12, 99);
      net.setEngine(kind);
      // Two back-to-back runs (the active set must carry over), then a
      // reset and a fresh schedule (the bookkeeping must clear).
      RunResult first = net.run(25);
      first.accumulate(net.run(25), true);
      net.reset(true);
      net.scheduleInput(2, 1, 7);
      net.core(2).setPotential(11, 50);
      first.accumulate(net.run(10), true);
      pcnn::setThreadCount(before);
      return first;
    };
    expectBitwiseEqual(runSplit(EngineKind::kDense),
                       runSplit(EngineKind::kEvent));
  }
}

TEST(TnEngineParity, FreeRunningNeuronRefiresWithoutInput) {
  // A ResetMode::kNone neuron parked above threshold fires every tick with
  // no deliveries at all; the event engine must keep it active on its own.
  auto build = [](EngineKind kind) {
    auto net = std::make_unique<Network>(3);
    const int c = net->addCore();
    pcnn::tn::NeuronConfig& cfg = net->core(c).neuron(0);
    cfg.threshold = 1;
    cfg.resetMode = ResetMode::kNone;
    cfg.recordOutput = true;
    net->core(c).setPotential(0, 5);
    net->setEngine(kind);
    return net;
  };
  const RunResult dense = build(EngineKind::kDense)->run(20);
  const RunResult event = build(EngineKind::kEvent)->run(20);
  EXPECT_EQ(dense.totalSpikes, 20);
  expectBitwiseEqual(dense, event);
}

TEST(TnEngineParity, LongQuietGapBeforeOverflowInput) {
  // Nothing happens for 39 ticks; the event engine's tick loop must do no
  // per-core work yet still wake for the overflow-delivered input.
  auto run = [](EngineKind kind) {
    Network net(11);
    const int c = net.addCore();
    net.core(c).setAxonType(0, 0);
    net.core(c).setConnection(0, 0, true);
    pcnn::tn::NeuronConfig& cfg = net.core(c).neuron(0);
    cfg.synapticWeights[0] = 2;
    cfg.threshold = 1;
    cfg.recordOutput = true;
    net.scheduleInput(40, c, 0);
    net.setEngine(kind);
    return net.run(60);
  };
  const RunResult dense = run(EngineKind::kDense);
  const RunResult event = run(EngineKind::kEvent);
  ASSERT_EQ(dense.totalSpikes, 1);
  ASSERT_EQ(dense.outputSpikes.size(), 1u);
  EXPECT_EQ(dense.outputSpikes[0].tick, 40);
  expectBitwiseEqual(dense, event);
}

TEST(TnEngineParity, MappedEednAgreesWithReferenceOnBothEngines) {
  Rng rng(17);
  pcnn::nn::Sequential net;
  net.add(std::make_unique<pcnn::eedn::TrinaryDense>(8, 10, rng, 0.5f));
  net.add(std::make_unique<pcnn::eedn::SpikingThreshold>(10, 2.0f));
  net.add(std::make_unique<pcnn::eedn::TrinaryDense>(10, 4, rng, 0.5f));
  const auto mapped = pcnn::eedn::TnMapper::map(net);

  std::vector<std::vector<int>> inputs;
  Rng inputRng(23);
  for (int k = 0; k < 16; ++k) {
    std::vector<int> input(8);
    for (int& v : input) v = inputRng.uniformInt(0, 1);
    inputs.push_back(std::move(input));
  }
  for (const EngineKind kind : {EngineKind::kDense, EngineKind::kEvent}) {
    mapped->network().setEngine(kind);
    for (const std::vector<int>& input : inputs) {
      EXPECT_EQ(mapped->forwardSpikes(input), mapped->referenceForward(input));
    }
    // The window-major batch entry returns exactly the per-call results.
    std::vector<std::vector<int>> expected;
    for (const std::vector<int>& input : inputs) {
      expected.push_back(mapped->referenceForward(input));
    }
    EXPECT_EQ(mapped->forwardSpikesBatch(inputs), expected);
  }
}

TEST(TnEngineParity, ScheduleInputValidatesAxonRange) {
  Network net(1);
  const int c = net.addCore();
  EXPECT_THROW(net.scheduleInput(0, c, -1), std::out_of_range);
  EXPECT_THROW(net.scheduleInput(0, c, pcnn::tn::kAxonsPerCore),
               std::out_of_range);
}

TEST(TnEngineParity, CompiledSoaValidatesRoutedDestinations) {
  // Destination validation moved to configuration-compile time for the
  // event engine: a bad delay must still surface as the same error the
  // dense engine throws at fire time.
  Network net(1);
  const int c = net.addCore();
  pcnn::tn::NeuronConfig& cfg = net.core(c).neuron(0);
  cfg.threshold = 1;
  cfg.dest = {c, 0, 0};  // delay below the 1..15 routing range
  net.setEngine(EngineKind::kEvent);
  EXPECT_THROW(net.run(1), std::logic_error);
}

}  // namespace
